// E5 — Theorem 5.1: against the adaptive adversary, ANY filter-based
// online algorithm pays ≥ σ − k messages per phase while the offline
// optimum (which knows the drop schedule) pays k + 1: competitiveness
// Ω(σ/k), for every error regime.
//
// Table 5a: σ sweep at fixed k for three online algorithms — the ratio
// column grows linearly in σ for all of them. Table 5b: k sweep at fixed σ
// — the ratio shrinks ~1/k.
#include "bench_common.hpp"
#include "offline/opt.hpp"
#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/lb_adversary.hpp"

using namespace topkmon;
using bench::BenchArgs;

namespace {

struct LbRow {
  double online_msgs = 0;
  double opt_phases = 0;
  double drops = 0;
  double adversary_phases = 0;
};

LbRow run_lb(const std::string& protocol, std::size_t n, std::size_t k,
             std::size_t sigma, const BenchArgs& args) {
  LbRow acc;
  for (std::size_t trial = 0; trial < args.trials; ++trial) {
    LbAdversaryConfig cfg;
    cfg.n = n;
    cfg.k = k;
    cfg.sigma = sigma;
    cfg.epsilon = 0.2;
    auto stream = std::make_unique<LbAdversaryStream>(cfg);
    auto* adv = stream.get();
    SimConfig sim_cfg;
    sim_cfg.k = k;
    sim_cfg.epsilon = 0.2;
    sim_cfg.seed = splitmix_combine(args.seed, trial);
    sim_cfg.record_history = true;
    Simulator sim(sim_cfg, std::move(stream), make_protocol(protocol));
    const auto run = sim.run(args.steps);
    const auto opt = OfflineOpt::approx(sim.history(), k, 0.2);
    acc.online_msgs += static_cast<double>(run.messages);
    acc.opt_phases += static_cast<double>(opt.phases);
    acc.drops += static_cast<double>(adv->drops_performed());
    acc.adversary_phases += static_cast<double>(adv->phases_completed());
  }
  const double tn = static_cast<double>(args.trials);
  return {acc.online_msgs / tn, acc.opt_phases / tn, acc.drops / tn,
          acc.adversary_phases / tn};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);

  {
    Table t("E5a / Table 5a — Thm 5.1 adversary, σ sweep (n=64, k=4): "
            "every online algorithm pays Ω(σ/k) per OPT phase");
    t.header({"σ", "protocol", "online msgs", "forced drops", "OPT phases",
              "ratio", "σ/k"});
    for (const std::size_t sigma : {8u, 16u, 32u, 64u}) {
      for (const char* protocol : {"combined", "half_error", "topk_protocol"}) {
        const auto r = run_lb(protocol, 64, 4, sigma, args);
        t.add_row({std::to_string(sigma), protocol,
                   format_double(r.online_msgs, 0), format_double(r.drops, 0),
                   format_double(r.opt_phases, 1),
                   format_double(r.online_msgs / std::max(1.0, r.opt_phases), 1),
                   format_double(static_cast<double>(sigma) / 4.0, 1)});
      }
    }
    bench::emit(t, args);
  }

  {
    Table t("E5b / Table 5b — Thm 5.1 adversary, k sweep (n=64, σ=48, combined)");
    t.header({"k", "online msgs", "OPT phases", "OPT msgs (k+1)/phase", "ratio",
              "σ/k"});
    for (const std::size_t k : {2u, 4u, 8u, 16u, 32u}) {
      const auto r = run_lb("combined", 64, k, 48, args);
      t.add_row({std::to_string(k), format_double(r.online_msgs, 0),
                 format_double(r.opt_phases, 1),
                 format_double(r.opt_phases * static_cast<double>(k + 1), 0),
                 format_double(r.online_msgs / std::max(1.0, r.opt_phases), 1),
                 format_double(48.0 / static_cast<double>(k), 1)});
    }
    bench::emit(t, args);
  }
  return 0;
}
