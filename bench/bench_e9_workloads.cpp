// E9 — cross-workload evaluation: every monitor on every workload
// (the "evaluation section" a systems version of the paper would contain).
//
// Table 9 reports messages/step and the competitive ratio vs the
// appropriate offline optimum (exact OPT for exact monitors, OPT(ε)
// otherwise). Shapes to check:
//   * naive_central pays n+1 per step everywhere — the ceiling;
//   * on random walks all filter-based monitors are ~2 orders cheaper;
//   * on oscillating (dense churn) the ε-monitors beat exact_topk by a
//     widening margin (the paper's raison d'être);
//   * on uniform (no locality) filters cannot help much — everyone is
//     expensive, naive_change approaches naive_central.
#include "bench_common.hpp"

using namespace topkmon;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);

  const std::vector<std::string> protocols{"naive_central", "naive_change",
                                           "exact_topk", "topk_protocol",
                                           "combined", "half_error"};
  const std::vector<std::string> workloads{"uniform", "random_walk", "oscillating",
                                           "zipf_bursty", "sine_noise"};

  std::vector<SweepRow> rows;
  for (const auto& workload : workloads) {
    for (const auto& protocol : protocols) {
      ExperimentConfig cfg;
      cfg.stream.kind = workload;
      cfg.stream.n = 32;
      cfg.stream.sigma = 12;
      cfg.stream.delta = 1 << 16;
      cfg.protocol = protocol;
      cfg.k = 4;
      const bool exact = protocol == "exact_topk" || protocol == "naive_central" ||
                         protocol == "naive_change";
      cfg.epsilon = exact ? 0.0 : 0.15;
      cfg.stream.epsilon = 0.15;
      cfg.steps = args.steps;
      cfg.trials = args.trials;
      cfg.seed = args.seed;
      cfg.opt_kind = exact ? OptKind::kExact : OptKind::kApprox;
      rows.push_back({workload + "/" + protocol, cfg});
    }
  }
  const auto results = run_sweep(rows, args.threads, bench::sweep_sink(args));

  Table t("E9 / Table 9 — all monitors × all workloads (n=32, k=4, ε=0.15, " +
          std::to_string(args.steps) + " steps)");
  t.header({"workload", "protocol", "msgs/step", "total msgs", "OPT phases",
            "ratio", "max σ"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto slash = rows[i].label.find('/');
    t.add_row({rows[i].label.substr(0, slash), rows[i].label.substr(slash + 1),
               format_double(results[i].msgs_per_step.mean(), 2),
               format_double(results[i].messages.mean(), 0),
               format_double(results[i].opt_phases.mean(), 1),
               format_double(results[i].ratio.mean(), 1),
               format_double(results[i].max_sigma.max(), 0)});
  }
  bench::emit(t, args);
  bench::write_telemetry(args, bench::sweep_telemetry(), "bench_e9");
  return 0;
}
