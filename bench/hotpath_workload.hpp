// Hot-path workload grid shared by bench_micro (google-benchmark counters)
// and bench_e13_hotpath (the table/JSON twin gated by scripts/check_bench.py).
//
// Cells: n ∈ {64, 1k, 16k} × {instantaneous, W = 256} × {fault-free, churn}.
// The value stream is *quiescent*: one random vector drawn per cell, fed to
// step_with() every step. After the protocol's start round nothing violates,
// so fault-free cells measure the pure per-step engine overhead — the cost
// the incremental order / SoA refactor attacks — and the zero-allocation
// invariant must hold exactly. Churn cells keep the same constant stream but
// script membership toggles, so recovery rounds (and their allocations)
// appear at deterministic steps.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "faults/registry.hpp"
#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace topkmon::bench {

struct HotPathCell {
  std::size_t n;
  std::size_t window;  ///< kInfiniteWindow or 256
  bool churn;
};

inline std::vector<HotPathCell> hotpath_grid() {
  std::vector<HotPathCell> grid;
  for (const std::size_t n : {std::size_t{64}, std::size_t{1024}, std::size_t{16384}}) {
    for (const std::size_t w : {kInfiniteWindow, std::size_t{256}}) {
      for (const bool churn : {false, true}) {
        grid.push_back({n, w, churn});
      }
    }
  }
  return grid;
}

struct HotPathRun {
  std::unique_ptr<Simulator> sim;
  ValueVector values;  ///< the constant observation vector fed every step
};

/// Builds the cell's simulator (combined protocol, k = 8, ε = 0.1) with the
/// fault schedule scripted over `horizon` steps.
inline HotPathRun make_hotpath_run(const HotPathCell& cell, std::uint64_t seed,
                                   TimeStep horizon) {
  HotPathRun run;
  SimConfig cfg;
  cfg.k = 8;
  cfg.epsilon = 0.1;
  cfg.seed = seed;
  cfg.window = cell.window;
  if (cell.churn) {
    FaultConfig fcfg = fault_preset("churn");
    fcfg.horizon = horizon;
    fcfg.seed = splitmix_combine(seed, 0xC0);
    cfg.faults = make_fleet_schedule(fcfg, cell.n);
  }
  run.sim = std::make_unique<Simulator>(cfg, cell.n, make_protocol("combined"));
  run.values.resize(cell.n);
  Rng rng(splitmix_combine(seed, cell.n));
  for (auto& v : run.values) {
    v = 1'000'000 + rng.below(1'000'000);
  }
  return run;
}

inline std::string hotpath_workload_name(const HotPathCell& cell) {
  std::string name = cell.window == kInfiniteWindow ? "instant" : "W=256";
  name += cell.churn ? "/churn" : "/quiet";
  return name;
}

// ---------------------------------------------------------------------------
// Churn-path cells (bench_e14_churn + BM_ChurnPathStep): the *non*-quiescent
// regimes the quiescent grid above deliberately avoids. Every cell keeps k
// constant leaders with geometrically spaced huge values (pairwise ratio 2,
// so the combined protocol settles into TOPK mode with a separator far above
// the band) and churns the remaining nodes inside a low value band that
// never crosses any filter:
//
//   * churn  — every band node redraws its value every step. The order
//     maintenance diff finds ~n changed nodes, so each step takes the dense
//     fallback (the sort the packed-key radix path replaces), while the
//     protocol stays communication-quiescent — the cell isolates the local
//     step cost under maximal value churn.
//   * sparse — one rotating residue class (n/16 nodes) redraws per cycle
//     vector, so consecutive steps differ in two classes (~n/8 nodes, at
//     the rebuild threshold but not over it): the repair path engages,
//     burns its move budget on the scattered large displacements, and
//     bails into scan mode — the cell pins that bail (the exact-gated
//     repairs/rebuilds columns show a handful of repairs, one rebuild).
//   * osc    — churn plus one adversarial flapper oscillating between the
//     band and above every leader (the Theorem 5.1 shape): a filter
//     violation and an output change every step, so protocol rounds, probes
//     and filter broadcasts run on top of the dense order churn.
//
// Values are drawn once into a precomputed cycle of vectors so the measured
// loop contains no generator cost; messages stay bit-reproducible.

enum class ChurnKind { kChurn, kSparse, kOsc };

struct ChurnCell {
  std::size_t n;
  ChurnKind kind;
};

inline std::vector<ChurnCell> churn_grid() {
  return {{1024, ChurnKind::kChurn},  {16384, ChurnKind::kChurn},
          {1024, ChurnKind::kSparse}, {16384, ChurnKind::kSparse},
          {1024, ChurnKind::kOsc}};
}

struct ChurnRun {
  std::unique_ptr<Simulator> sim;
  std::vector<ValueVector> cycle;  ///< precomputed vectors, fed round-robin

  const ValueVector& vector_for(TimeStep t) const {
    return cycle[static_cast<std::size_t>(t) % cycle.size()];
  }
};

inline ChurnRun make_churn_run(const ChurnCell& cell, std::uint64_t seed) {
  constexpr std::size_t kCycleLen = 32;
  constexpr std::size_t kK = 8;
  constexpr Value kBandLo = Value{1} << 20;   // churning band: [2^20, 2^21)
  constexpr Value kSpike = Value{1} << 44;    // flapper peak, above every leader

  ChurnRun run;
  SimConfig cfg;
  cfg.k = kK;
  cfg.epsilon = 0.1;
  cfg.seed = seed;
  run.sim = std::make_unique<Simulator>(cfg, cell.n, make_protocol("combined"));

  Rng rng(splitmix_combine(seed, cell.n ^ 0xE14));
  ValueVector base(cell.n);
  for (std::size_t i = 0; i < cell.n; ++i) {
    // Leaders: 2^40, 2^39, ... 2^33 — every adjacent ratio is 2, so the k-th
    // and (k+1)-st values stay clearly separated even while the osc flapper
    // holds a top rank.
    base[i] = i < kK ? Value{1} << (40 - i) : kBandLo + rng.below(kBandLo);
  }
  run.cycle.assign(kCycleLen, base);
  for (std::size_t j = 0; j < kCycleLen; ++j) {
    ValueVector& vec = run.cycle[j];
    for (std::size_t i = kK; i < cell.n; ++i) {
      const bool redraw = cell.kind == ChurnKind::kSparse ? i % 16 == j % 16 : true;
      if (redraw) {
        vec[i] = kBandLo + rng.below(kBandLo);
      }
    }
    if (cell.kind == ChurnKind::kOsc && j % 2 == 1) {
      vec[kK] = kSpike;  // the flapper crosses every filter, every other step
    }
  }
  return run;
}

inline std::string churn_workload_name(const ChurnCell& cell) {
  switch (cell.kind) {
    case ChurnKind::kChurn:
      return "churn";
    case ChurnKind::kSparse:
      return "sparse";
    case ChurnKind::kOsc:
      return "osc";
  }
  return "?";
}

}  // namespace topkmon::bench
