// Hot-path workload grid shared by bench_micro (google-benchmark counters)
// and bench_e13_hotpath (the table/JSON twin gated by scripts/check_bench.py).
//
// Cells: n ∈ {64, 1k, 16k} × {instantaneous, W = 256} × {fault-free, churn}.
// The value stream is *quiescent*: one random vector drawn per cell, fed to
// step_with() every step. After the protocol's start round nothing violates,
// so fault-free cells measure the pure per-step engine overhead — the cost
// the incremental order / SoA refactor attacks — and the zero-allocation
// invariant must hold exactly. Churn cells keep the same constant stream but
// script membership toggles, so recovery rounds (and their allocations)
// appear at deterministic steps.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "faults/registry.hpp"
#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace topkmon::bench {

struct HotPathCell {
  std::size_t n;
  std::size_t window;  ///< kInfiniteWindow or 256
  bool churn;
};

inline std::vector<HotPathCell> hotpath_grid() {
  std::vector<HotPathCell> grid;
  for (const std::size_t n : {std::size_t{64}, std::size_t{1024}, std::size_t{16384}}) {
    for (const std::size_t w : {kInfiniteWindow, std::size_t{256}}) {
      for (const bool churn : {false, true}) {
        grid.push_back({n, w, churn});
      }
    }
  }
  return grid;
}

struct HotPathRun {
  std::unique_ptr<Simulator> sim;
  ValueVector values;  ///< the constant observation vector fed every step
};

/// Builds the cell's simulator (combined protocol, k = 8, ε = 0.1) with the
/// fault schedule scripted over `horizon` steps.
inline HotPathRun make_hotpath_run(const HotPathCell& cell, std::uint64_t seed,
                                   TimeStep horizon) {
  HotPathRun run;
  SimConfig cfg;
  cfg.k = 8;
  cfg.epsilon = 0.1;
  cfg.seed = seed;
  cfg.window = cell.window;
  if (cell.churn) {
    FaultConfig fcfg = fault_preset("churn");
    fcfg.horizon = horizon;
    fcfg.seed = splitmix_combine(seed, 0xC0);
    cfg.faults = make_fleet_schedule(fcfg, cell.n);
  }
  run.sim = std::make_unique<Simulator>(cfg, cell.n, make_protocol("combined"));
  run.values.resize(cell.n);
  Rng rng(splitmix_combine(seed, cell.n));
  for (auto& v : run.values) {
    v = 1'000'000 + rng.below(1'000'000);
  }
  return run;
}

inline std::string hotpath_workload_name(const HotPathCell& cell) {
  std::string name = cell.window == kInfiniteWindow ? "instant" : "W=256";
  name += cell.churn ? "/churn" : "/quiet";
  return name;
}

}  // namespace topkmon::bench
