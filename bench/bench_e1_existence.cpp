// E1 — Lemma 3.1: the EXISTENCE protocol decides a distributed disjunction
// with O(1) messages in expectation (paper bound: <= 6) and at most
// ceil(log2 n) + 1 rounds, for every n and every number b of ones.
//
// Table 1 reports, per (n, b): mean messages, p99 messages, mean rounds,
// max rounds, and the round budget. The "who wins" shape to check: the
// message column is flat in both n and b; a naive "everyone reports"
// protocol would pay b.
#include "bench_common.hpp"
#include "protocols/existence.hpp"
#include "util/rng.hpp"
#include "util/summary.hpp"

using namespace topkmon;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t trials = args.trials * 2000;  // cheap; sharpen the mean

  Table table("E1 / Table 1 — EXISTENCE (Lemma 3.1): expected messages are constant");
  table.header({"n", "b (ones)", "mean msgs", "p99 msgs", "bound", "mean rounds",
                "max rounds", "round budget"});

  Rng rng(args.seed);
  for (const std::size_t n : {16u, 256u, 4096u, 65536u}) {
    std::size_t prev_b = 0;
    for (const std::size_t b :
         {std::size_t{1}, std::size_t{8}, n / 16, n / 2, n}) {
      if (b == 0 || b > n || b == prev_b) continue;
      prev_b = b;
      std::vector<bool> bits(n, false);
      for (std::size_t i = 0; i < b; ++i) bits[i] = true;
      SampleSet msgs, rounds;
      for (std::size_t t = 0; t < trials / 4; ++t) {
        const auto res = ExistenceProtocol::run(bits, rng);
        msgs.add(static_cast<double>(res.messages));
        rounds.add(static_cast<double>(res.rounds));
      }
      table.add_row({std::to_string(n), std::to_string(b),
                     format_double(msgs.mean(), 3), format_double(msgs.quantile(0.99), 1),
                     "6", format_double(rounds.mean(), 2),
                     format_double(rounds.max(), 0),
                     std::to_string(ExistenceProtocol::max_rounds(n))});
    }
  }
  bench::emit(table, args);
  return 0;
}
