// E12 — sliding-window monitoring: window length × protocol × fault preset.
//
// Windowed readings (per-node maxima over the last W steps, src/model/
// window.hpp) change the economics of every protocol: maxima move less often
// than instantaneous values, so filters stay valid longer and messages drop —
// until window expiries (the old maximum sliding out) force re-validation
// bursts. Shapes to check:
//   * W = 0 (unwindowed) rows match the pre-window baseline exactly — the
//     disabled model is a strict no-op;
//   * messages/step falls as W grows (smoother readings, longer phases) while
//     expirations/step rises then falls (huge windows rarely expire);
//   * the windowed OPT (offline optimum on the windowed history) shrinks
//     with W, so competitive ratios stay comparable across windows;
//   * fault presets compose: a flaky fleet under windowing pays both the
//     recovery bursts and the expiry bursts.
// All counters are deterministic in the seed; messages/expirations/phases
// are gated exactly against bench/bench_baseline.json by scripts/
// check_bench.py.
#include <algorithm>

#include "bench_common.hpp"
#include "faults/registry.hpp"
#include "offline/opt.hpp"
#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/registry.hpp"

using namespace topkmon;
using bench::BenchArgs;

namespace {

StreamSpec fleet_spec(std::size_t n) {
  StreamSpec spec;
  spec.kind = "zipf_bursty";
  spec.n = n;
  spec.k = 4;
  spec.epsilon = 0.1;
  spec.sigma = 12;
  spec.delta = 1 << 16;
  return spec;
}

struct CellResult {
  std::uint64_t messages = 0;      ///< Σ over trials (deterministic)
  std::uint64_t expirations = 0;   ///< Σ window expiries over trials
  std::uint64_t opt_phases = 0;    ///< Σ windowed-OPT phases over trials
  double msgs_per_step = 0.0;      ///< mean over trials
};

CellResult run_cell(const std::string& protocol, std::size_t window,
                    const std::string& faults, const BenchArgs& args,
                    std::size_t n) {
  CellResult cell;
  for (std::size_t trial = 0; trial < args.trials; ++trial) {
    FaultConfig fcfg = fault_preset(faults);
    fcfg.horizon = args.steps;
    fcfg.seed = splitmix_combine(args.seed, trial);

    SimConfig cfg;
    cfg.k = 4;
    cfg.epsilon = 0.1;
    cfg.seed = splitmix_combine(args.seed, 1000 + trial);
    cfg.window = window;
    cfg.record_history = true;
    cfg.faults = make_fleet_schedule(fcfg, n);
    Simulator sim(cfg, make_stream(fleet_spec(n)), make_protocol(protocol));
    const RunResult r = sim.run(args.steps);

    cell.messages += r.messages;
    cell.expirations += r.window_expirations;
    // sim.history() is the windowed stream the protocol saw, so the plain
    // OfflineOpt on it IS the windowed offline optimum.
    cell.opt_phases += OfflineOpt::approx(sim.history(), cfg.k, cfg.epsilon).phases;
    cell.msgs_per_step += r.messages_per_step;
  }
  cell.msgs_per_step /= static_cast<double>(args.trials);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t n = 48;
  const std::vector<std::string> protocols{"combined", "topk_protocol",
                                           "half_error", "naive_change"};
  const std::vector<std::size_t> windows{0, 8, 64, 512};
  const std::vector<std::string> fault_presets{"none", "flaky"};

  Table t("E12 — sliding windows: W × protocol × faults (zipf_bursty, n=" +
          std::to_string(n) + ", k=4, ε=0.1, " + std::to_string(args.steps) +
          " steps, " + std::to_string(args.trials) +
          " trials, seed=" + std::to_string(args.seed) + ")");
  t.header({"protocol", "window", "faults", "messages", "expirations",
            "opt phases", "msgs/step", "ratio"});

  for (const std::string& protocol : protocols) {
    for (const std::size_t window : windows) {
      for (const std::string& faults : fault_presets) {
        const CellResult cell = run_cell(protocol, window, faults, args, n);
        t.add_row({protocol, std::to_string(window), faults,
                   std::to_string(cell.messages), std::to_string(cell.expirations),
                   std::to_string(cell.opt_phases),
                   format_double(cell.msgs_per_step, 2),
                   format_double(static_cast<double>(cell.messages) /
                                     static_cast<double>(std::max<std::uint64_t>(
                                         1, cell.opt_phases)),
                                 2)});
      }
    }
  }
  bench::emit(t, args);
  return 0;
}
