// Shared glue for the experiment-table binaries.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support/runner.hpp"
#include "telemetry/telemetry.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace topkmon::bench {

/// Common CLI: --trials, --steps, --seed, --csv (emit CSV after the table),
/// --json=<path> (append every emitted table to a machine-readable JSON
/// file for the perf trajectory), --threads (sweep pool size; 0 = auto),
/// --telemetry[=<path>] (attach the per-phase step profiler to every cell
/// and write the telemetry JSON document — src/telemetry — at exit; the
/// scoped timers run ONLY with this flag, keeping default bench runs
/// perf-identical to a telemetry-less build).
struct BenchArgs {
  std::size_t trials = 5;
  TimeStep steps = 600;
  std::uint64_t seed = 42;
  bool csv = false;
  std::string json;
  std::size_t threads = 0;
  std::string telemetry;  ///< telemetry JSON path; empty = off

  static BenchArgs parse(int argc, char** argv) {
    Flags flags(argc, argv);
    BenchArgs a;
    a.trials = flags.get_uint("trials", a.trials);
    a.steps = static_cast<TimeStep>(flags.get_uint("steps", a.steps));
    a.seed = flags.get_uint("seed", a.seed);
    a.csv = flags.get_bool("csv", false);
    a.json = flags.get_string("json", "");
    a.threads = flags.get_uint("threads", 0);
    if (flags.has("telemetry")) {
      const std::string v = flags.get_string("telemetry", "telemetry.json");
      a.telemetry = (v.empty() || v == "true") ? "telemetry.json" : v;
    }
    return a;
  }
};

/// The binary-wide telemetry sink of a sweep bench: run_sweep calls pass
/// sweep_sink(args) (null unless --telemetry is set, keeping the default run
/// profile-free), and main ends with write_telemetry(args, sweep_telemetry(),
/// source).
inline telemetry::TelemetrySink& sweep_telemetry() {
  static telemetry::TelemetrySink sink;
  return sink;
}

inline telemetry::TelemetrySink* sweep_sink(const BenchArgs& args) {
  return args.telemetry.empty() ? nullptr : &sweep_telemetry();
}

/// Writes the sink as telemetry JSON when --telemetry is set (no-op
/// otherwise); benches call this once after the last cell.
inline void write_telemetry(const BenchArgs& args,
                            const telemetry::TelemetrySink& sink,
                            std::string_view source) {
  if (args.telemetry.empty()) return;
  if (telemetry::write_text_file(args.telemetry,
                                 telemetry::to_json(sink, source))) {
    std::cout << "wrote telemetry JSON (" << telemetry::kTelemetrySchema
              << ") to " << args.telemetry << "\n";
  }
}

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Emits a table cell as a JSON number when it parses as one (ignoring the
/// thousands separators format_count inserts), else as a string.
inline std::string json_cell(const std::string& cell) {
  std::string stripped;
  stripped.reserve(cell.size());
  for (const char c : cell) {
    if (c != ',') stripped += c;
  }
  if (!stripped.empty()) {
    char* end = nullptr;
    const double v = std::strtod(stripped.c_str(), &end);
    if (end != nullptr && *end == '\0') {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", v);
      return buf;
    }
  }
  return "\"" + json_escape(cell) + "\"";
}

inline void append_table_json(std::string& out, const Table& table) {
  out += "    {\"title\": \"" + json_escape(table.title()) + "\", \"rows\": [\n";
  const auto& header = table.header_row();
  const auto& rows = table.data();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out += "      {";
    for (std::size_t c = 0; c < header.size(); ++c) {
      out += "\"" + json_escape(header[c]) + "\": " + json_cell(rows[r][c]);
      if (c + 1 < header.size()) out += ", ";
    }
    out += r + 1 < rows.size() ? "},\n" : "}\n";
  }
  out += "    ]}";
}

/// Tables emitted so far by this binary; the JSON file is rewritten on every
/// emit so benches need no explicit finalize hook.
inline std::vector<Table>& emitted_tables() {
  static std::vector<Table> tables;
  return tables;
}

inline void write_json(const BenchArgs& args) {
  std::string out = "{\n  \"params\": {\"trials\": " + std::to_string(args.trials) +
                    ", \"steps\": " + std::to_string(args.steps) +
                    ", \"seed\": " + std::to_string(args.seed) + "},\n  \"tables\": [\n";
  const auto& tables = emitted_tables();
  for (std::size_t i = 0; i < tables.size(); ++i) {
    append_table_json(out, tables[i]);
    out += i + 1 < tables.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  std::ofstream f(args.json, std::ios::trunc);
  if (!f) {
    std::cerr << "warning: cannot write --json file " << args.json << "\n";
    return;
  }
  f << out;
}

}  // namespace detail

inline void emit(const Table& table, const BenchArgs& args) {
  std::cout << table.to_ascii() << "\n";
  if (args.csv) {
    std::cout << table.to_csv() << "\n";
  }
  if (!args.json.empty()) {
    detail::emitted_tables().push_back(table);
    detail::write_json(args);
  }
}

}  // namespace topkmon::bench
