// Shared glue for the experiment-table binaries.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_support/runner.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace topkmon::bench {

/// Common CLI: --trials, --steps, --seed, --csv (emit CSV after the table).
struct BenchArgs {
  std::size_t trials = 5;
  TimeStep steps = 600;
  std::uint64_t seed = 42;
  bool csv = false;

  static BenchArgs parse(int argc, char** argv) {
    Flags flags(argc, argv);
    BenchArgs a;
    a.trials = flags.get_uint("trials", a.trials);
    a.steps = static_cast<TimeStep>(flags.get_uint("steps", a.steps));
    a.seed = flags.get_uint("seed", a.seed);
    a.csv = flags.get_bool("csv", false);
    return a;
  }
};

inline void emit(const Table& table, const BenchArgs& args) {
  std::cout << table.to_ascii() << "\n";
  if (args.csv) {
    std::cout << table.to_csv() << "\n";
  }
}

}  // namespace topkmon::bench
