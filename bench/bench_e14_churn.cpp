// E14 — churn path: steps/s under heavy value churn and adversarial
// oscillation, over the churn cell grid of bench/hotpath_workload.hpp.
//
// Where bench_e13_hotpath measures the *quiescent* per-step overhead, this
// table measures the regimes the paper actually studies — dense order churn
// and Theorem 5.1-style oscillation — where every step pays the order
// maintenance dense fallback (packed-key radix sort), the violation sweep,
// and (on the osc cell) real protocol rounds. CI-gated twin rules:
//
//   * "query-steps/s"       — throughput, tolerance-gated; the n=16k churn
//     row is the tentpole target (≥3× over the pre-vectorization engine);
//   * "messages"            — EXACT-gated protocol traffic;
//   * "repairs"/"rebuilds"  — EXACT-gated order-maintenance path counters:
//     they prove the cells exercise the dense fallback / repair path they
//     claim to, and pin the rebuild-vs-repair policy (a pure performance
//     choice whose outputs are identical either way) against silent drift.
#include <chrono>

#include "bench_common.hpp"
#include "hotpath_workload.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

using namespace topkmon;
using bench::BenchArgs;
using bench::ChurnCell;

namespace {

constexpr TimeStep kWarmupSteps = 64;

struct CellResult {
  double steps_per_sec = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t repairs = 0;
  std::uint64_t rebuilds = 0;
  TimeStep steps = 0;
};

CellResult run_cell(const ChurnCell& cell, const BenchArgs& args,
                    telemetry::StepProfiler* profiler) {
  // Per-cell step multipliers keep every row's wall time in the range where
  // the tolerance gate measures code, not scheduler jitter (osc steps pay
  // protocol rounds and are two orders of magnitude slower than the
  // vectorized churn steps).
  const TimeStep mult = cell.kind == bench::ChurnKind::kOsc ? 1
                        : cell.n <= 1024                    ? 64
                                                            : 8;
  const TimeStep steps = args.steps * mult;
  auto run = bench::make_churn_run(cell, args.seed);
  // Phase timers only on request (see bench_e13_hotpath.cpp).
  run.sim->set_profiler(profiler);
  for (TimeStep t = 0; t < kWarmupSteps; ++t) {
    run.sim->step_with(run.vector_for(t));
  }
  CellResult res;
  const auto start = std::chrono::steady_clock::now();
  for (TimeStep t = 0; t < steps; ++t) {
    run.sim->step_with(run.vector_for(kWarmupSteps + t));
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  res.steps = steps;
  res.steps_per_sec = elapsed > 0.0 ? static_cast<double>(steps) / elapsed : 0.0;
  res.messages = run.sim->result().messages;
  if (const TopKOrder* order = run.sim->fleet().order_if_ready()) {
    res.repairs = order->repairs();
    res.rebuilds = order->rebuilds();
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);

  // The active SIMD tier is reported outside the table title: baseline row
  // matching must not depend on the gate runner's ISA.
  std::cout << "simd dispatch: " << simd::active_isa() << "\n";
  Table table("E14 — churn path: steps/s under dense churn (combined, k=8, ε=0.1, " +
              std::to_string(args.steps) + " steps, seed=" +
              std::to_string(args.seed) + ")");
  table.header({"n", "workload", "steps", "query-steps/s", "messages", "repairs",
                "rebuilds"});

  telemetry::TelemetrySink sink;
  telemetry::StepProfiler* profiler =
      args.telemetry.empty() ? nullptr : &sink.profiler();
  for (const ChurnCell& cell : bench::churn_grid()) {
    const CellResult res = run_cell(cell, args, profiler);
    table.add_row({std::to_string(cell.n), bench::churn_workload_name(cell),
                   std::to_string(res.steps),
                   std::to_string(static_cast<std::uint64_t>(res.steps_per_sec)),
                   std::to_string(res.messages), std::to_string(res.repairs),
                   std::to_string(res.rebuilds)});
  }
  bench::emit(table, args);
  bench::write_telemetry(args, sink, "bench_e14");
  return 0;
}
