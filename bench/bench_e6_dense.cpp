// E6 — Theorem 5.8: the combined monitor against an equal-error offline
// optimum on dense ε-neighborhood churn. Bound:
// O(σ² log(ε v_k) + σ log²(ε v_k) + log log Δ + log 1/ε).
//
// Table 6a: σ sweep — the ratio may grow up to quadratically in σ (compare
// the σ and σ² reference columns). Table 6b: value-scale sweep — growth is
// polylog in (ε·v_k), not polynomial. The oscillating workload keeps
// σ(t) constant by construction, so the parameter is exact.
#include <cmath>

#include "bench_common.hpp"
#include "protocols/combined.hpp"
#include "sim/simulator.hpp"
#include "streams/oscillating.hpp"

using namespace topkmon;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);

  {
    Table t("E6a / Table 6a — combined vs OPT(ε): σ sweep "
            "(k=4, ε=0.15, drifting band ~2^16, oscillating)");
    t.header({"σ", "msgs (mean)", "OPT phases", "ratio", "σ ref", "σ² ref",
              "sub calls"});
    for (const std::size_t sigma : {4u, 8u, 16u, 32u}) {
      ExperimentConfig cfg;
      cfg.stream.kind = "oscillating";
      cfg.stream.n = 2 * sigma + 8;
      cfg.stream.sigma = sigma;
      cfg.stream.delta = Value{1} << 19;  // band_top = delta/8 = 2^16
      cfg.stream.drift = 0.02;  // the band moves: OPT must keep paying too
      cfg.protocol = "combined";
      cfg.k = 4;
      cfg.epsilon = 0.15;
      cfg.steps = args.steps;
      cfg.trials = args.trials;
      cfg.seed = args.seed;
      cfg.opt_kind = OptKind::kApprox;
      const auto res = run_experiment(cfg);

      // One extra instrumented run for the sub-protocol counter.
      SimConfig sim_cfg;
      sim_cfg.k = cfg.k;
      sim_cfg.epsilon = cfg.epsilon;
      sim_cfg.seed = args.seed;
      OscillatingConfig osc;
      osc.n = cfg.stream.n;
      osc.k = cfg.k;
      osc.epsilon = cfg.epsilon;
      osc.sigma = sigma;
      osc.band_top = Value{1} << 16;
      osc.drift = 0.02;
      auto protocol = std::make_unique<CombinedMonitor>();
      auto* proto = protocol.get();
      Simulator sim(sim_cfg, std::make_unique<OscillatingStream>(osc),
                    std::move(protocol));
      sim.run(args.steps);

      t.add_row({std::to_string(sigma), format_double(res.messages.mean(), 0),
                 format_double(res.opt_phases.mean(), 1),
                 format_double(res.ratio.mean(), 1),
                 format_double(static_cast<double>(sigma), 0),
                 format_double(static_cast<double>(sigma * sigma), 0),
                 std::to_string(proto->dense().sub_calls())});
    }
    bench::emit(t, args);
  }

  {
    Table t("E6b / Table 6b — combined vs OPT(ε): value-scale sweep "
            "(σ=8, k=4, ε=0.15): cost is polylog in ε·v_k");
    t.header({"log2 band", "msgs (mean)", "OPT phases", "ratio",
              "log2(ε·v_k)"});
    for (const int log_band : {10, 14, 18, 24, 30}) {
      ExperimentConfig cfg;
      cfg.stream.kind = "oscillating";
      cfg.stream.n = 24;
      cfg.stream.sigma = 8;
      cfg.stream.delta = Value{1} << (log_band + 3);
      cfg.stream.drift = 0.02;
      cfg.protocol = "combined";
      cfg.k = 4;
      cfg.epsilon = 0.15;
      cfg.steps = args.steps;
      cfg.trials = args.trials;
      cfg.seed = args.seed;
      cfg.opt_kind = OptKind::kApprox;
      const auto res = run_experiment(cfg);
      t.add_row({std::to_string(log_band), format_double(res.messages.mean(), 0),
                 format_double(res.opt_phases.mean(), 1),
                 format_double(res.ratio.mean(), 1),
                 format_double(std::log2(0.15 * std::exp2(log_band)), 1)});
    }
    bench::emit(t, args);
  }
  return 0;
}
