// E10 — multi-query engine scaling: Q concurrent queries multiplexed over
// one node fleet vs Q one-Simulator-per-query serial runs.
//
// The engine's two levers are (a) shard parallelism across the thread pool
// and (b) cross-query work sharing (the generator runs once per step; one
// shared probe round serves every query that probes). Shapes to check:
//   * engine @ 1 thread already beats serial (generator + probe sharing);
//   * speedup grows with threads until shards < workers;
//   * per-query message counts are bit-identical across thread counts
//     (the "identical" column must read yes everywhere).
#include <chrono>

#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "protocols/registry.hpp"
#include "streams/registry.hpp"

using namespace topkmon;
using bench::BenchArgs;

namespace {

StreamSpec fleet_spec() {
  StreamSpec spec;
  spec.kind = "zipf_bursty";
  spec.n = 64;
  spec.k = 4;
  spec.epsilon = 0.1;
  spec.sigma = 16;
  spec.delta = 1 << 16;
  return spec;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct SerialBaseline {
  double sec = 0.0;
  std::uint64_t messages = 0;
};

/// Q independent Simulator runs, back to back — the pre-engine serving model.
SerialBaseline run_serial(std::size_t q_count, TimeStep steps, std::uint64_t seed) {
  SerialBaseline base;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t q = 0; q < q_count; ++q) {
    SimConfig cfg;
    cfg.k = 4;
    cfg.epsilon = 0.1;
    cfg.seed = splitmix_combine(seed, q);
    Simulator sim(cfg, make_stream(fleet_spec()), make_protocol("combined"));
    base.messages += sim.run(steps).messages;
  }
  base.sec = seconds_since(start);
  return base;
}

struct EngineOutcome {
  EngineStats stats;
  std::vector<std::uint64_t> per_query_messages;
};

EngineOutcome run_engine(std::size_t q_count, std::size_t threads, TimeStep steps,
                         std::uint64_t seed) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.seed = seed;
  MonitoringEngine engine(cfg, make_stream(fleet_spec()));
  for (std::size_t q = 0; q < q_count; ++q) {
    QuerySpec spec;
    spec.protocol = "combined";
    spec.k = 4;
    spec.epsilon = 0.1;
    engine.add_query(spec);
  }
  EngineOutcome out;
  out.stats = engine.run(steps);
  out.per_query_messages.reserve(q_count);
  for (const auto& q : out.stats.queries) {
    out.per_query_messages.push_back(q.run.messages);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::vector<std::size_t> query_counts{1, 8, 64, 256};
  const std::vector<std::size_t> thread_counts{1, 4, 8};

  Table t("E10 — engine scaling: Q concurrent queries × threads "
          "(combined on zipf_bursty, n=64, k=4, ε=0.1, " +
          std::to_string(args.steps) + " steps, seed=" + std::to_string(args.seed) +
          ")");
  t.header({"Q", "threads", "engine ms", "query-steps/s", "ns/step", "serial ms",
            "speedup", "messages", "serial messages", "shared probe msgs",
            "identical"});

  for (const std::size_t q_count : query_counts) {
    const SerialBaseline serial = run_serial(q_count, args.steps, args.seed);
    std::vector<std::uint64_t> reference;  // per-query counts @ 1 thread
    for (const std::size_t threads : thread_counts) {
      const EngineOutcome out = run_engine(q_count, threads, args.steps, args.seed);
      if (threads == thread_counts.front()) {
        reference = out.per_query_messages;
      }
      const bool identical = out.per_query_messages == reference;
      const double engine_sec = out.stats.elapsed_sec;
      const double ns_per_step = engine_sec * 1e9 /
                                 (static_cast<double>(args.steps) *
                                  static_cast<double>(q_count));
      t.add_row({std::to_string(q_count), std::to_string(threads),
                 format_double(engine_sec * 1e3, 1),
                 format_double(out.stats.query_steps_per_sec, 0),
                 format_double(ns_per_step, 0),
                 format_double(serial.sec * 1e3, 1),
                 format_double(serial.sec / std::max(engine_sec, 1e-12), 2),
                 format_count(out.stats.total_messages),
                 format_count(serial.messages),
                 format_count(out.stats.shared_probe_messages),
                 identical ? "yes" : "NO"});
    }
  }
  bench::emit(t, args);
  return 0;
}
