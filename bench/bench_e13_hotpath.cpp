// E13 — batched hot path: steps/s and allocations/step over the workload
// grid n × {instantaneous, W=256} × {fault-free, churn}.
//
// This is the CI-gated twin of the bench_micro hot-path suite (same cells
// via bench/hotpath_workload.hpp, emitted as a table + JSON so scripts/
// check_bench.py can gate it against bench/bench_baseline.json):
//
//   * "query-steps/s" — throughput, tolerance-gated; the n=16k quiescent
//     row is the tentpole target (≥3× over the pre-refactor engine);
//   * "allocs/step"   — EXACT-gated; fault-free steady state must be 0 (the
//     zero-allocation invariant), measured with the counting allocator hook
//     (util/alloc_counter.hpp; build with -DTOPKMON_COUNT_ALLOCS=ON). The
//     column reads "off" without the hook and "n/a" on churn rows, where
//     deterministic recovery bursts allocate by design;
//   * "messages"      — EXACT-gated protocol traffic (bit-reproducible).
#include <algorithm>
#include <chrono>

#include "bench_common.hpp"
#include "hotpath_workload.hpp"
#include "util/alloc_counter.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

using namespace topkmon;
using bench::BenchArgs;
using bench::HotPathCell;

namespace {

constexpr TimeStep kWarmupSteps = 64;

struct CellResult {
  double steps_per_sec = 0.0;
  std::uint64_t allocs = 0;  ///< over the measured (post-warmup) phase
  std::uint64_t messages = 0;
  TimeStep steps = 0;  ///< measured steps (args.steps × per-cell multiplier)
};

CellResult run_cell(const HotPathCell& cell, const BenchArgs& args,
                    telemetry::StepProfiler* profiler) {
  // Small fleets step in microseconds; scale their step count up so every
  // cell's wall time is long enough for the ±tolerance throughput gate to
  // measure code, not scheduler jitter (churn cells pay deterministic
  // recovery bursts and need far fewer steps for the same wall time).
  // Deterministic per cell, so the exact-gated counters stay comparable
  // across runs.
  const TimeStep mult = cell.n <= 64     ? (cell.churn ? 64 : 1024)
                        : cell.n <= 1024 ? (cell.churn ? 8 : 128)
                                         : (cell.churn ? 1 : 16);
  const TimeStep steps = args.steps * mult;
  auto run = bench::make_hotpath_run(cell, args.seed, kWarmupSteps + steps);
  // Phase timers only on request: the scoped clock reads would dominate the
  // small-n rows and skew the tolerance gate against a profile-free baseline.
  run.sim->set_profiler(profiler);
  for (TimeStep t = 0; t < kWarmupSteps; ++t) {
    run.sim->step_with(run.values);
  }
  CellResult res;
  AllocProbe probe;
  const auto start = std::chrono::steady_clock::now();
  for (TimeStep t = 0; t < steps; ++t) {
    run.sim->step_with(run.values);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  res.allocs = probe.delta();
  res.steps = steps;
  res.steps_per_sec = elapsed > 0.0 ? static_cast<double>(steps) / elapsed : 0.0;
  res.messages = run.sim->result().messages;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);

  Table table("E13 — hot path: steps/s + allocs/step (combined, k=8, ε=0.1, " +
              std::to_string(args.steps) + " steps, seed=" +
              std::to_string(args.seed) + ")");
  table.header({"n", "workload", "steps", "query-steps/s", "allocs/step", "messages"});

  telemetry::TelemetrySink sink;
  telemetry::StepProfiler* profiler =
      args.telemetry.empty() ? nullptr : &sink.profiler();
  for (const HotPathCell& cell : bench::hotpath_grid()) {
    const CellResult res = run_cell(cell, args, profiler);
    std::string allocs_cell;
    if (cell.churn) {
      // Recovery bursts allocate by design; the count is an implementation
      // detail of the standard library, not a gated invariant.
      allocs_cell = "n/a";
    } else if (!alloc_counting_active()) {
      allocs_cell = "off";
    } else {
      allocs_cell = std::to_string(
          res.allocs / static_cast<std::uint64_t>(std::max<TimeStep>(res.steps, 1)));
      TOPKMON_ASSERT_MSG(res.allocs == 0,
                         "zero-allocation invariant violated on a fault-free "
                         "steady-state hot-path cell");
    }
    table.add_row({std::to_string(cell.n), bench::hotpath_workload_name(cell),
                   std::to_string(res.steps),
                   std::to_string(static_cast<std::uint64_t>(res.steps_per_sec)),
                   allocs_cell, std::to_string(res.messages)});
  }
  bench::emit(table, args);
  bench::write_telemetry(args, sink, "bench_e13");
  return 0;
}
