// E7 — Corollary 5.9: when the offline optimum is restricted to error
// ε′ ≤ ε/2, the half-error monitor achieves O(σ + k log n + log log Δ +
// log 1/ε) — linear in σ where Theorem 5.8's bound is quadratic.
//
// Table 7 runs the same dense workloads as E6 and reports, per σ, the
// half-error monitor's ratio vs OPT(ε/2) next to the combined monitor's
// ratio vs OPT(ε). The shape to check: half_error's column grows ~σ while
// combined's grows faster (up to σ²) — and the crossover in absolute
// message counts favors half_error as σ rises.
#include "bench_common.hpp"

using namespace topkmon;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);

  Table t("E7 / Table 7 — half-error (vs OPT(ε/2)) against combined (vs OPT(ε)): "
          "σ sweep (k=4, ε=0.2, oscillating)");
  t.header({"σ", "half msgs", "half ratio", "combined msgs", "combined ratio",
            "σ ref", "σ² ref"});

  for (const std::size_t sigma : {4u, 8u, 16u, 32u}) {
    auto make_cfg = [&](const char* protocol, double opt_eps) {
      ExperimentConfig cfg;
      cfg.stream.kind = "oscillating";
      cfg.stream.n = 2 * sigma + 8;
      cfg.stream.sigma = sigma;
      cfg.stream.delta = Value{1} << 19;
      cfg.stream.drift = 0.02;
      cfg.protocol = protocol;
      cfg.k = 4;
      cfg.epsilon = 0.2;
      cfg.steps = args.steps;
      cfg.trials = args.trials;
      cfg.seed = args.seed;
      cfg.opt_kind = OptKind::kApprox;
      cfg.opt_epsilon = opt_eps;
      return cfg;
    };
    const auto half = run_experiment(make_cfg("half_error", 0.1));   // ε/2
    const auto comb = run_experiment(make_cfg("combined", 0.2));     // ε
    t.add_row({std::to_string(sigma), format_double(half.messages.mean(), 0),
               format_double(half.ratio.mean(), 1),
               format_double(comb.messages.mean(), 0),
               format_double(comb.ratio.mean(), 1),
               format_double(static_cast<double>(sigma), 0),
               format_double(static_cast<double>(sigma * sigma), 0)});
  }
  bench::emit(t, args);
  return 0;
}
