// E3 — Corollary 3.3: the exact Top-k monitor is O(k log n + log Δ)-
// competitive against the exact filter-based offline optimum (improving the
// O(k log n + log Δ · log n) of [6] by EXISTENCE-batched violation
// reporting).
//
// Table 3a sweeps Δ at fixed (n, k): the ratio column must grow ~linearly
// in log Δ (each doubling of log Δ adds a constant). Table 3b sweeps k at
// fixed Δ: growth ~ k log n. Workload: reflected random walks (ranks
// change, neighborhood stays sparse).
#include <cmath>

#include "bench_common.hpp"

using namespace topkmon;
using bench::BenchArgs;

namespace {

ExperimentConfig base_cfg(const BenchArgs& args) {
  ExperimentConfig cfg;
  cfg.stream.kind = "random_walk";
  cfg.stream.n = 32;
  cfg.protocol = "exact_topk";
  cfg.k = 4;
  cfg.epsilon = 0.0;
  cfg.steps = args.steps;
  cfg.trials = args.trials;
  cfg.seed = args.seed;
  cfg.opt_kind = OptKind::kExact;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);

  {
    Table t("E3a / Table 3a — exact monitor vs exact OPT: ratio ~ k log n + log Δ "
            "(n=8, k=2, phase-torture climber)");
    t.header({"log2 Δ", "msgs (mean)", "OPT phases", "ratio", "ratio/(k·log2 n + log2 Δ)"});
    std::vector<SweepRow> rows;
    for (const int log_delta : {8, 12, 16, 24, 32, 40}) {
      auto cfg = base_cfg(args);
      cfg.stream.kind = "phase_torture";
      cfg.stream.n = 8;
      cfg.k = 2;
      cfg.stream.delta = Value{1} << log_delta;
      rows.push_back({std::to_string(log_delta), cfg});
    }
    const auto results = run_sweep(rows, args.threads, bench::sweep_sink(args));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const double log_delta = std::stod(rows[i].label);
      const double bound = 2.0 * std::log2(8.0) + log_delta;
      t.add_row({rows[i].label, format_double(results[i].messages.mean(), 0),
                 format_double(results[i].opt_phases.mean(), 1),
                 format_double(results[i].ratio.mean(), 1),
                 format_double(results[i].ratio.mean() / bound, 2)});
    }
    bench::emit(t, args);
  }

  {
    Table t("E3b / Table 3b — exact monitor vs exact OPT: k sweep (n=32, Δ=2^16)");
    t.header({"k", "msgs (mean)", "OPT phases", "ratio", "ratio/(k·log2 n + 16)"});
    std::vector<SweepRow> rows;
    for (const std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
      auto cfg = base_cfg(args);
      cfg.k = k;
      cfg.stream.delta = Value{1} << 16;
      cfg.stream.walk_step = 64;
      rows.push_back({std::to_string(k), cfg});
    }
    const auto results = run_sweep(rows, args.threads, bench::sweep_sink(args));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const double k = std::stod(rows[i].label);
      const double bound = k * std::log2(32.0) + 16.0;
      t.add_row({rows[i].label, format_double(results[i].messages.mean(), 0),
                 format_double(results[i].opt_phases.mean(), 1),
                 format_double(results[i].ratio.mean(), 1),
                 format_double(results[i].ratio.mean() / bound, 2)});
    }
    bench::emit(t, args);
  }
  bench::write_telemetry(args, bench::sweep_telemetry(), "bench_e3");
  return 0;
}
