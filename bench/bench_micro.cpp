// E10 — google-benchmark micro suite: simulator throughput and the CPU
// cost of the protocol primitives. These are engineering numbers (steps/s),
// not paper claims; message counts are attached as counters so regressions
// in *communication* are also visible here.
//
// The BM_HotPath* family measures the batched hot path on the shared grid
// of bench/hotpath_workload.hpp — n ∈ {64, 1k, 16k} × {instantaneous,
// W=256} × {fault-free, churn} — reporting steps/s (items_per_second) and
// allocs/step (counting allocator hook; 0 when the hook is compiled out).
// bench_e13_hotpath emits the same cells as a table/JSON for the CI gate.
#include <benchmark/benchmark.h>

#include "hotpath_workload.hpp"
#include "offline/opt.hpp"
#include "protocols/existence.hpp"
#include "protocols/registry.hpp"
#include "protocols/sampling.hpp"
#include "sim/simulator.hpp"
#include "streams/registry.hpp"
#include "util/alloc_counter.hpp"
#include "util/simd.hpp"

namespace topkmon {
namespace {

void BM_ExistenceProtocol(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<bool> bits(n, false);
  for (std::size_t i = 0; i < n / 4 + 1; ++i) bits[i] = true;
  Rng rng(42);
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const auto res = ExistenceProtocol::run(bits, rng);
    messages += res.messages;
    benchmark::DoNotOptimize(res.any);
  }
  state.counters["msgs/op"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ExistenceProtocol)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SampleMax(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(43);
  std::vector<Value> values(n);
  for (auto& v : values) v = rng.next_u64() >> 16;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const auto out = sample_max_standalone(values, rng);
    messages += out.messages;
    benchmark::DoNotOptimize(out.id);
  }
  state.counters["msgs/op"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SampleMax)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SimulatorStep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  StreamSpec spec;
  spec.kind = "random_walk";
  spec.n = n;
  spec.k = 4;
  spec.delta = 1 << 16;
  SimConfig cfg;
  cfg.k = 4;
  cfg.epsilon = 0.15;
  cfg.seed = 44;
  Simulator sim(cfg, make_stream(spec), make_protocol("combined"));
  for (auto _ : state) {
    sim.step();
  }
  state.counters["msgs/step"] = benchmark::Counter(
      static_cast<double>(sim.result().messages), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorStep)->Arg(16)->Arg(128)->Arg(1024);

void BM_DenseChurnStep(benchmark::State& state) {
  StreamSpec spec;
  spec.kind = "oscillating";
  spec.n = static_cast<std::size_t>(state.range(0));
  spec.k = 4;
  spec.sigma = spec.n / 2;
  spec.epsilon = 0.15;
  SimConfig cfg;
  cfg.k = 4;
  cfg.epsilon = 0.15;
  cfg.seed = 45;
  Simulator sim(cfg, make_stream(spec), make_protocol("combined"));
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DenseChurnStep)->Arg(16)->Arg(64)->Arg(256);

// The batched hot path over the shared workload grid. Quiescent stepping —
// the common case the paper's protocols are designed to make free — must be
// O(#changed) with zero steady-state allocations; churn variants show the
// deterministic recovery cost on top. Args: n, W (0 = instantaneous),
// churn (0/1).
void BM_HotPathStep(benchmark::State& state) {
  bench::HotPathCell cell;
  cell.n = static_cast<std::size_t>(state.range(0));
  cell.window = static_cast<std::size_t>(state.range(1));
  cell.churn = state.range(2) != 0;
  // Churn events are scripted over this horizon; steps beyond it simply see
  // no further membership changes (the schedule answers online() fine).
  auto run = bench::make_hotpath_run(cell, /*seed=*/42, /*horizon=*/1 << 20);
  for (int i = 0; i < 64; ++i) {
    run.sim->step_with(run.values);  // warm buffers past the start round
  }
  const std::uint64_t allocs_before = thread_alloc_count();
  const std::uint64_t msgs_before = run.sim->result().messages;
  for (auto _ : state) {
    run.sim->step_with(run.values);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs/step"] = benchmark::Counter(
      static_cast<double>(thread_alloc_count() - allocs_before),
      benchmark::Counter::kAvgIterations);
  // Delta past the warmup phase, like allocs/step — the start-round burst
  // must not smear into the steady-state per-step figure.
  state.counters["msgs/step"] = benchmark::Counter(
      static_cast<double>(run.sim->result().messages - msgs_before),
      benchmark::Counter::kAvgIterations);
  state.SetLabel(bench::hotpath_workload_name(cell) +
                 (alloc_counting_active() ? "" : " [alloc hook off]"));
}
BENCHMARK(BM_HotPathStep)
    ->ArgsProduct({{64, 1024, 16384}, {0, 256}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

// The churn path over the shared churn cell grid (bench_e14_churn's twin):
// dense value churn, scattered large-displacement updates, and adversarial
// oscillation. The vectorized step kernel — diff scan, scan-mode σ, packed-
// key radix rebuilds, violation sweep — is what keeps these steps
// bandwidth-bound. Args: n, kind (0 = churn, 1 = sparse, 2 = osc).
void BM_ChurnPathStep(benchmark::State& state) {
  bench::ChurnCell cell;
  cell.n = static_cast<std::size_t>(state.range(0));
  cell.kind = static_cast<bench::ChurnKind>(state.range(1));
  auto run = bench::make_churn_run(cell, /*seed=*/42);
  TimeStep t = 0;
  for (; t < 64; ++t) {
    run.sim->step_with(run.vector_for(t));  // warm past the start round
  }
  const std::uint64_t msgs_before = run.sim->result().messages;
  for (auto _ : state) {
    run.sim->step_with(run.vector_for(t++));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["msgs/step"] = benchmark::Counter(
      static_cast<double>(run.sim->result().messages - msgs_before),
      benchmark::Counter::kAvgIterations);
  state.SetLabel(bench::churn_workload_name(cell) + "/simd=" + simd::active_isa());
}
BENCHMARK(BM_ChurnPathStep)
    ->ArgsProduct({{1024, 16384}, {0, 1, 2}})
    ->Unit(benchmark::kMicrosecond);

void BM_OfflineOptApprox(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(46);
  std::vector<ValueVector> history;
  ValueVector v(n);
  for (auto& x : v) x = 1000 + rng.below(1000);
  for (int t = 0; t < 256; ++t) {
    for (auto& x : v) {
      const auto step = rng.below(32);
      x = (rng.bernoulli(0.5) && x > step) ? x - step : x + step;
    }
    history.push_back(v);
  }
  for (auto _ : state) {
    const auto r = OfflineOpt::approx(history, 4, 0.15);
    benchmark::DoNotOptimize(r.phases);
  }
}
BENCHMARK(BM_OfflineOptApprox)->Arg(16)->Arg(128)->Arg(512);

}  // namespace
}  // namespace topkmon
