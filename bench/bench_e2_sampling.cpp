// E2 — Lemma 2.6: the threshold-sampling maximum protocol uses O(log n)
// messages in expectation; the top-(k+1) probe used by every monitor costs
// O(k log n).
//
// Table 2a sweeps n for the single-maximum protocol (mean messages vs
// log2 n — the ratio column must stay ~constant). Table 2b sweeps k for the
// probe at fixed n (messages per probed rank must stay ~constant).
#include <cmath>

#include "bench_common.hpp"
#include "protocols/sampling.hpp"
#include "util/summary.hpp"

using namespace topkmon;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  Rng rng(args.seed);
  const std::size_t trials = 400 * args.trials;

  Table t1("E2a / Table 2a — max-value protocol (Lemma 2.6): messages ~ c·log2 n");
  t1.header({"n", "mean msgs", "p99 msgs", "log2 n", "msgs/log2 n"});
  for (const std::size_t n : {16u, 64u, 256u, 1024u, 4096u, 16384u}) {
    SampleSet msgs;
    for (std::size_t t = 0; t < trials / 10; ++t) {
      std::vector<Value> values(n);
      for (auto& v : values) v = rng.next_u64() >> 16;
      const auto out = sample_max_standalone(values, rng);
      msgs.add(static_cast<double>(out.messages));
    }
    const double lg = std::log2(static_cast<double>(n));
    t1.add_row({std::to_string(n), format_double(msgs.mean(), 2),
                format_double(msgs.quantile(0.99), 1), format_double(lg, 1),
                format_double(msgs.mean() / lg, 3)});
  }
  bench::emit(t1, args);

  Table t2("E2b / Table 2b — top-(k+1) probe: messages ~ c·(k+1)·log2 n (n = 1024)");
  t2.header({"k", "mean msgs", "msgs/(k+1)", "msgs/((k+1)·log2 n)"});
  const std::size_t n = 1024;
  for (const std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    SampleSet msgs;
    for (std::size_t t = 0; t < trials / 40; ++t) {
      std::vector<Value> values(n);
      for (auto& v : values) v = rng.next_u64() >> 16;
      const auto out = probe_top_standalone(values, k + 1, rng);
      msgs.add(static_cast<double>(out.messages));
    }
    const double per_rank = msgs.mean() / static_cast<double>(k + 1);
    t2.add_row({std::to_string(k), format_double(msgs.mean(), 1),
                format_double(per_rank, 2),
                format_double(per_rank / std::log2(static_cast<double>(n)), 3)});
  }
  bench::emit(t2, args);
  return 0;
}
