// E8 — design ablations (the choices DESIGN.md calls out):
//
//  (a) EXISTENCE-mediated violation reporting vs direct reporting when many
//      nodes violate simultaneously (the Corollary 3.2 batching): simulate
//      b simultaneous one-bit reports and compare message counts.
//  (b) interval-shrinking strategy in the witnessing game: the four-phase
//      TOP-K-PROTOCOL (doubly-exponential + geometric + midpoint) vs the
//      midpoint-only exact monitor, both driven by the phase-torture
//      climber: log log Δ vs log Δ violations per phase.
//  (c) broadcast filter redistribution vs per-node unicasts: cost model
//      comparison for one round update over n nodes.
#include <cmath>

#include "bench_common.hpp"
#include "protocols/existence.hpp"
#include "protocols/registry.hpp"
#include "protocols/sampling.hpp"
#include "sim/simulator.hpp"
#include "streams/phase_torture.hpp"
#include "util/assert.hpp"
#include "util/summary.hpp"

using namespace topkmon;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  Rng rng(args.seed);

  {
    Table t("E8a — EXISTENCE batching vs direct reporting of b simultaneous "
            "violations (n=4096)");
    t.header({"b (violators)", "existence msgs (mean)", "direct msgs", "saving x"});
    const std::size_t n = 4096;
    for (const std::size_t b : {1u, 16u, 256u, 2048u, 4096u}) {
      std::vector<bool> bits(n, false);
      for (std::size_t i = 0; i < b; ++i) bits[i] = true;
      SampleSet msgs;
      for (int rep = 0; rep < 2000; ++rep) {
        msgs.add(static_cast<double>(ExistenceProtocol::run(bits, rng).messages));
      }
      t.add_row({std::to_string(b), format_double(msgs.mean(), 2), std::to_string(b),
                 format_double(static_cast<double>(b) / msgs.mean(), 1)});
    }
    bench::emit(t, args);
  }

  {
    Table t("E8b — interval strategy ablation on phase-torture: four-phase "
            "(TOP-K-PROTOCOL) vs midpoint-only (exact monitor), msgs per "
            "climb→cross macro-phase");
    t.header({"log2 Δ", "four-phase msgs/phase", "midpoint msgs/phase",
              "log2 log2 Δ", "log2 Δ"});
    for (const int log_delta : {12, 20, 28, 36, 44}) {
      auto per_phase = [&](const char* protocol, double eps) {
        PhaseTortureConfig torture;
        torture.n = 8;
        torture.k = 2;
        torture.top = Value{1} << log_delta;
        auto stream = std::make_unique<PhaseTortureStream>(torture);
        auto* adv = stream.get();
        SimConfig cfg;
        cfg.k = 2;
        cfg.epsilon = eps;
        cfg.seed = args.seed;
        Simulator sim(cfg, std::move(stream), make_protocol(protocol));
        TimeStep step_count = 0;
        while (adv->macro_phases() < 8 && step_count < 100000) {
          sim.step();
          ++step_count;
        }
        return static_cast<double>(sim.result().messages) /
               static_cast<double>(std::max<std::uint64_t>(1, adv->macro_phases()));
      };
      const double four_phase = per_phase("topk_protocol", 0.2);
      const double midpoint = per_phase("exact_topk", 0.0);
      t.add_row({std::to_string(log_delta), format_double(four_phase, 1),
                 format_double(midpoint, 1),
                 format_double(std::log2(static_cast<double>(log_delta)), 2),
                 std::to_string(log_delta)});
    }
    bench::emit(t, args);
  }

  {
    Table t("E8c — filter redistribution: broadcast rule vs per-node unicasts "
            "(one round update)");
    t.header({"n", "broadcast msgs", "unicast msgs"});
    for (const std::size_t n : {16u, 256u, 4096u, 65536u}) {
      t.add_row({std::to_string(n), "1", std::to_string(n)});
    }
    bench::emit(t, args);
  }

  {
    Table t("E8d — max-finding ablation: Lemma 2.6 sampling (O(log n)) vs "
            "value-domain bisection (O(log Δ)), n=256");
    t.header({"log2 Δ", "sampling msgs", "bisection msgs", "log2 n", "log2 Δ"});
    const std::size_t n = 256;
    for (const int log_delta : {10, 16, 24, 32, 40}) {
      const Value delta = Value{1} << log_delta;
      SampleSet sampling, bisection;
      for (int trial = 0; trial < 300; ++trial) {
        std::vector<Value> values(n);
        for (auto& v : values) v = rng.below(delta + 1);
        Rng r1 = Rng::derive(args.seed, trial);
        Rng r2 = Rng::derive(args.seed, trial);
        const auto s = sample_max_standalone(values, r1);
        const auto b = bisect_max_standalone(values, delta, r2);
        TOPKMON_ASSERT(s.id == b.id);
        sampling.add(static_cast<double>(s.messages));
        bisection.add(static_cast<double>(b.messages));
      }
      t.add_row({std::to_string(log_delta), format_double(sampling.mean(), 1),
                 format_double(bisection.mean(), 1), "8",
                 std::to_string(log_delta)});
    }
    bench::emit(t, args);
  }
  return 0;
}
