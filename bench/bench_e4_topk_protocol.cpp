// E4 — Theorem 4.5: TOP-K-PROTOCOL (error ε allowed) against the *exact*
// offline optimum costs O(k log n + log log Δ + log 1/ε) per OPT phase —
// the approximation buys log Δ → log log Δ.
//
// Table 4a: Δ sweep under the phase-torture adversary (the worst case for
// the interval game). The headline shape: per-phase cost grows ~log log Δ —
// compare with the exact monitor's log Δ growth on the same adversary.
// Table 4b: ε sweep at fixed Δ — additive log(1/ε) growth.
#include <cmath>

#include "bench_common.hpp"

using namespace topkmon;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);

  {
    Table t("E4a / Table 4a — Δ sweep on phase-torture: TOP-K-PROTOCOL (ε=0.2) vs "
            "exact monitor, both against exact OPT (n=8, k=2)");
    t.header({"log2 Δ", "topk ratio", "exact ratio", "log2 log2 Δ", "log2 Δ",
              "topk wins by"});
    std::vector<SweepRow> rows;
    for (const char* protocol : {"topk_protocol", "exact_topk"}) {
      for (const int log_delta : {10, 16, 24, 32, 40}) {
        ExperimentConfig cfg;
        cfg.stream.kind = "phase_torture";
        cfg.stream.n = 8;
        cfg.stream.delta = Value{1} << log_delta;
        cfg.protocol = protocol;
        cfg.k = 2;
        cfg.epsilon = protocol == std::string("exact_topk") ? 0.0 : 0.2;
        cfg.steps = args.steps;
        cfg.trials = args.trials;
        cfg.seed = args.seed;
        cfg.opt_kind = OptKind::kExact;
        rows.push_back({std::string(protocol) + "@" + std::to_string(log_delta), cfg});
      }
    }
    const auto results = run_sweep(rows, args.threads, bench::sweep_sink(args));
    const std::size_t half = rows.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
      const double log_delta = std::stod(rows[i].label.substr(rows[i].label.find('@') + 1));
      const double topk_ratio = results[i].ratio.mean();
      const double exact_ratio = results[half + i].ratio.mean();
      t.add_row({format_double(log_delta, 0), format_double(topk_ratio, 1),
                 format_double(exact_ratio, 1),
                 format_double(std::log2(log_delta), 2), format_double(log_delta, 0),
                 format_double(exact_ratio / std::max(1.0, topk_ratio), 2)});
    }
    bench::emit(t, args);
  }

  {
    Table t("E4b / Table 4b — ε sweep on phase-torture (Δ=2^32): additive log2(1/ε)");
    t.header({"ε", "msgs (mean)", "OPT phases", "ratio", "log2(1/ε)"});
    std::vector<SweepRow> rows;
    for (const double eps : {0.5, 0.25, 0.125, 0.0625, 0.03125, 0.015625}) {
      ExperimentConfig cfg;
      cfg.stream.kind = "phase_torture";
      cfg.stream.n = 8;
      cfg.stream.delta = Value{1} << 32;
      cfg.protocol = "topk_protocol";
      cfg.k = 2;
      cfg.epsilon = eps;
      cfg.steps = args.steps;
      cfg.trials = args.trials;
      cfg.seed = args.seed;
      cfg.opt_kind = OptKind::kExact;
      rows.push_back({format_double(eps, 6), cfg});
    }
    const auto results = run_sweep(rows, args.threads, bench::sweep_sink(args));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const double eps = std::stod(rows[i].label);
      t.add_row({rows[i].label, format_double(results[i].messages.mean(), 0),
                 format_double(results[i].opt_phases.mean(), 1),
                 format_double(results[i].ratio.mean(), 1),
                 format_double(std::log2(1.0 / eps), 1)});
    }
    bench::emit(t, args);
  }
  bench::write_telemetry(args, bench::sweep_telemetry(), "bench_e4");
  return 0;
}
