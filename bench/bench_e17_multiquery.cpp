// E17 — multi-function engine: heterogeneous query kinds on one fleet.
//
// The api_redesign promise is that one engine serves top-k positions,
// k-select, count-distinct and threshold alerts concurrently without the
// kinds taxing each other. Shapes to check:
//   * mixed-kind Q×threads scaling mirrors the homogeneous E10 curves —
//     per-query message counts stay bit-identical across thread counts
//     (the "identical" column must read yes everywhere);
//   * the shared probe keeps batching: only the top-k/k-select queries
//     probe, and adding the violation-only kinds (distinct/threshold) does
//     not move "shared probe msgs" per probing query;
//   * per-kind message economics: the two new kinds are violation-drain
//     protocols (one broadcast at start, then accounted reports only), so
//     their per-query message totals sit far below the position monitors'.
// "messages"/"shared probe msgs"/"identical"/"broadcasts" are deterministic
// in the seed and gated exactly against bench/bench_baseline.json by
// scripts/check_bench.py.
#include <chrono>

#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "streams/registry.hpp"

using namespace topkmon;
using bench::BenchArgs;

namespace {

constexpr Value kBound = 1 << 14;  // mid-range for the zipf_bursty fleet

StreamSpec fleet_spec() {
  StreamSpec spec;
  spec.kind = "zipf_bursty";
  spec.n = 48;
  spec.k = 4;
  spec.epsilon = 0.1;
  spec.sigma = 12;
  spec.delta = 1 << 16;
  return spec;
}

/// Q queries cycling through all four kinds on their default protocols.
void add_mixed_queries(MonitoringEngine& engine, std::size_t q_count) {
  for (std::size_t q = 0; q < q_count; ++q) {
    QuerySpec spec;
    spec.kind = static_cast<QueryKind>(q % kNumQueryKinds);
    spec.k = 4;
    spec.epsilon = 0.1;
    spec.threshold = kBound;
    engine.add_query(spec);
  }
}

struct EngineOutcome {
  EngineStats stats;
  std::vector<std::uint64_t> per_query_messages;
};

EngineOutcome run_engine(std::size_t q_count, std::size_t threads, TimeStep steps,
                         std::uint64_t seed) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.seed = seed;
  MonitoringEngine engine(cfg, make_stream(fleet_spec()));
  add_mixed_queries(engine, q_count);
  EngineOutcome out;
  out.stats = engine.run(steps);
  out.per_query_messages.reserve(q_count);
  for (const auto& q : out.stats.queries) {
    out.per_query_messages.push_back(q.run.messages);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::vector<std::size_t> query_counts{4, 16, 64};
  const std::vector<std::size_t> thread_counts{1, 4, 8};

  Table t("E17 — multi-function engine: mixed-kind queries × threads "
          "(4 kinds cycling on zipf_bursty, n=48, k=4, ε=0.1, T=" +
          std::to_string(kBound) + ", " + std::to_string(args.steps) +
          " steps, seed=" + std::to_string(args.seed) + ")");
  t.header({"Q", "threads", "engine ms", "query-steps/s", "ns/step", "messages",
            "shared probe msgs", "identical"});

  for (const std::size_t q_count : query_counts) {
    std::vector<std::uint64_t> reference;  // per-query counts @ 1 thread
    for (const std::size_t threads : thread_counts) {
      const EngineOutcome out = run_engine(q_count, threads, args.steps, args.seed);
      if (threads == thread_counts.front()) {
        reference = out.per_query_messages;
      }
      const bool identical = out.per_query_messages == reference;
      const double engine_sec = out.stats.elapsed_sec;
      const double ns_per_step = engine_sec * 1e9 /
                                 (static_cast<double>(args.steps) *
                                  static_cast<double>(q_count));
      t.add_row({std::to_string(q_count), std::to_string(threads),
                 format_double(engine_sec * 1e3, 1),
                 format_double(out.stats.query_steps_per_sec, 0),
                 format_double(ns_per_step, 0),
                 format_count(out.stats.total_messages),
                 format_count(out.stats.shared_probe_messages),
                 identical ? "yes" : "NO"});
    }
  }
  bench::emit(t, args);

  // Per-kind message economics at one mixed working point: the per-query
  // RunResults already carry the split, summed here by QueryStats::kind.
  const EngineOutcome mixed = run_engine(16, 4, args.steps, args.seed);
  Table k("E17 — per-kind message economics (Q=16, threads=4, zipf_bursty, "
          "n=48, k=4, ε=0.1, T=" + std::to_string(kBound) + ", " +
          std::to_string(args.steps) + " steps, seed=" +
          std::to_string(args.seed) + ")");
  k.header({"kind", "queries", "messages", "broadcasts", "msgs/step"});
  for (std::size_t kind = 0; kind < kNumQueryKinds; ++kind) {
    std::uint64_t queries = 0, messages = 0, broadcasts = 0;
    double msgs_per_step = 0.0;
    for (const QueryStats& q : mixed.stats.queries) {
      if (q.kind != static_cast<QueryKind>(kind)) continue;
      ++queries;
      messages += q.run.messages;
      broadcasts += q.run.broadcasts;
      msgs_per_step += q.run.messages_per_step;
    }
    k.add_row({std::string(to_string(static_cast<QueryKind>(kind))),
               std::to_string(queries), std::to_string(messages),
               std::to_string(broadcasts), format_double(msgs_per_step, 2)});
  }
  bench::emit(k, args);
  return 0;
}
