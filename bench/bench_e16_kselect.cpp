// E16 — the k-select structure vs the position monitors: message economics
// across the cross-workload grid (E9) plus windowed/faulty composition rows
// (E12/E14 style).
//
// The structure answers strictly more than the position protocols (every
// j-select value, not just the top-k set), so the interesting question is
// what that costs. Shapes to check:
//   * on random walks the band ladder's re-band-without-messages path keeps
//     kselect within a small factor of topk_protocol;
//   * on oscillating/zipf churn the one-broadcast floor moves amortize:
//     kselect stays far below naive re-probing even while serving all ranks;
//   * windowed rows drop for every protocol (smoother maxima), and the
//     kselect/offline-OPT ratio stays bounded as W grows;
//   * fault rows compose — recovery restarts re-run start() (one probe +
//     one filter broadcast), visible as a broadcasts uptick, not a message
//     explosion.
// "messages"/"broadcasts"/"opt phases" are deterministic in the seed and
// gated exactly against bench/bench_baseline.json by scripts/check_bench.py;
// "opt phases" is the offline k-select optimum (offline/kselect_opt.hpp) on
// the recorded history, the competitive-ratio denominator for this family.
#include <algorithm>

#include "bench_common.hpp"
#include "faults/registry.hpp"
#include "offline/kselect_opt.hpp"
#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/registry.hpp"

using namespace topkmon;
using bench::BenchArgs;

namespace {

StreamSpec fleet_spec(const std::string& kind) {
  StreamSpec spec;
  spec.kind = kind;
  spec.n = 32;
  spec.k = 4;
  spec.epsilon = 0.15;
  spec.sigma = 12;
  spec.delta = 1 << 16;
  spec.walk_step = 64;
  return spec;
}

struct CellResult {
  std::uint64_t messages = 0;    ///< Σ over trials (deterministic)
  std::uint64_t broadcasts = 0;  ///< Σ over trials (deterministic)
  std::uint64_t opt_phases = 0;  ///< Σ offline k-select OPT phases
  double msgs_per_step = 0.0;    ///< mean over trials
};

CellResult run_cell(const std::string& workload, const std::string& protocol,
                    std::size_t window, const std::string& faults,
                    const BenchArgs& args) {
  CellResult cell;
  for (std::size_t trial = 0; trial < args.trials; ++trial) {
    FaultConfig fcfg = fault_preset(faults);
    fcfg.horizon = args.steps;
    fcfg.seed = splitmix_combine(args.seed, trial);

    SimConfig cfg;
    cfg.k = 4;
    cfg.epsilon = 0.15;
    cfg.seed = splitmix_combine(args.seed, 1000 + trial);
    cfg.window = window;
    cfg.record_history = true;
    cfg.faults = make_fleet_schedule(fcfg, 32);
    Simulator sim(cfg, make_stream(fleet_spec(workload)), make_protocol(protocol));
    const RunResult r = sim.run(args.steps);

    cell.messages += r.messages;
    cell.broadcasts += r.broadcasts;
    // sim.history() is the (windowed, fault-degraded) stream the protocol
    // saw, so KSelectOpt on it IS this cell's offline optimum.
    cell.opt_phases +=
        KSelectOpt::approx(sim.history(), cfg.k, cfg.epsilon).phases;
    cell.msgs_per_step += r.messages_per_step;
  }
  cell.msgs_per_step /= static_cast<double>(args.trials);
  return cell;
}

void add_cell(Table& t, const std::string& workload, const std::string& protocol,
              std::size_t window, const std::string& faults,
              const BenchArgs& args) {
  const CellResult cell = run_cell(workload, protocol, window, faults, args);
  t.add_row({workload, protocol, std::to_string(window), faults,
             std::to_string(cell.messages), std::to_string(cell.broadcasts),
             std::to_string(cell.opt_phases),
             format_double(cell.msgs_per_step, 2),
             format_double(static_cast<double>(cell.messages) /
                               static_cast<double>(
                                   std::max<std::uint64_t>(1, cell.opt_phases)),
                           2)});
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::vector<std::string> workloads{"uniform", "random_walk",
                                           "oscillating", "zipf_bursty",
                                           "sine_noise"};
  const std::vector<std::string> protocols{"kselect", "topk_protocol",
                                           "combined"};

  Table t("E16 — k-select structure vs position monitors (n=32, k=4, ε=0.15, " +
          std::to_string(args.steps) + " steps, " + std::to_string(args.trials) +
          " trials, seed=" + std::to_string(args.seed) + ")");
  t.header({"workload", "protocol", "window", "faults", "messages",
            "broadcasts", "opt phases", "msgs/step", "ratio"});

  // The E9 cross-workload grid, instantaneous and fault-free.
  for (const std::string& workload : workloads) {
    for (const std::string& protocol : protocols) {
      add_cell(t, workload, protocol, 0, "none", args);
    }
  }
  // Composition rows for the structure itself: windows and fault presets on
  // the two churn-heavy workloads (the E12/E14 axes).
  for (const std::string& workload : {"oscillating", "zipf_bursty"}) {
    for (const std::size_t window : {std::size_t{8}, std::size_t{64}}) {
      for (const std::string& faults : {"none", "datacenter"}) {
        add_cell(t, workload, "kselect", window, faults, args);
      }
    }
  }
  bench::emit(t, args);
  return 0;
}
