// E11 — protocols under a degraded fleet: churn rate × loss rate × protocol.
//
// The paper's cost model assumes a static fleet on reliable links; this
// sweep measures what each protocol pays when that assumption breaks
// (src/faults). Shapes to check:
//   * the (churn 0, loss 0) row of every protocol matches the fault-free
//     baseline exactly — the zero schedule is a strict no-op;
//   * loss inflates messages by exactly the retransmission count
//     (messages = fault-free protocol cost + lost), linearly in p/(1−p);
//   * churn adds recovery rounds whose cost is protocol-dependent: the
//     naive monitors recover for free (they re-collect anyway), the
//     filter-based protocols pay a re-validation burst per membership change;
//   * stale reads scale with straggler count × delay, not with the protocol.
#include "bench_common.hpp"
#include "faults/registry.hpp"
#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/registry.hpp"

using namespace topkmon;
using bench::BenchArgs;

namespace {

StreamSpec fleet_spec(std::size_t n) {
  StreamSpec spec;
  spec.kind = "zipf_bursty";
  spec.n = n;
  spec.k = 4;
  spec.epsilon = 0.1;
  spec.sigma = 16;
  spec.delta = 1 << 16;
  return spec;
}

struct CellResult {
  double messages_per_step = 0.0;
  double lost_per_step = 0.0;
  double stale_per_step = 0.0;
  double recoveries = 0.0;
};

CellResult run_cell(const std::string& protocol, double churn, double loss,
                    const BenchArgs& args, std::size_t n) {
  CellResult cell;
  for (std::size_t trial = 0; trial < args.trials; ++trial) {
    FaultConfig fcfg;
    fcfg.churn_rate = churn;
    fcfg.loss = loss;
    fcfg.straggler_fraction = 0.0;  // isolated axes: churn × loss only
    fcfg.horizon = args.steps;
    fcfg.seed = splitmix_combine(args.seed, trial);

    SimConfig cfg;
    cfg.k = 4;
    cfg.epsilon = 0.1;
    cfg.seed = splitmix_combine(args.seed, 1000 + trial);
    cfg.faults = make_fleet_schedule(fcfg, n);
    Simulator sim(cfg, make_stream(fleet_spec(n)), make_protocol(protocol));
    const RunResult r = sim.run(args.steps);

    const double steps = static_cast<double>(r.steps);
    cell.messages_per_step += static_cast<double>(r.messages) / steps;
    cell.lost_per_step += static_cast<double>(r.messages_lost) / steps;
    cell.stale_per_step += static_cast<double>(r.stale_reads) / steps;
    cell.recoveries += static_cast<double>(r.recovery_rounds);
  }
  const double t = static_cast<double>(args.trials);
  cell.messages_per_step /= t;
  cell.lost_per_step /= t;
  cell.stale_per_step /= t;
  cell.recoveries /= t;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t n = 64;
  const std::vector<std::string> protocols{"combined", "topk_protocol",
                                           "half_error", "naive_change"};
  const std::vector<double> churn_rates{0.0, 0.01, 0.05};
  const std::vector<double> loss_rates{0.0, 0.02, 0.1};

  Table t("E11 — faults: churn × loss × protocol (zipf_bursty, n=" +
          std::to_string(n) + ", k=4, ε=0.1, " + std::to_string(args.steps) +
          " steps, " + std::to_string(args.trials) +
          " trials, seed=" + std::to_string(args.seed) + ")");
  t.header({"protocol", "churn", "loss", "msgs/step", "lost/step",
            "stale/step", "recoveries"});

  for (const std::string& protocol : protocols) {
    for (const double churn : churn_rates) {
      for (const double loss : loss_rates) {
        const CellResult cell = run_cell(protocol, churn, loss, args, n);
        t.add_row({protocol, format_double(churn, 3), format_double(loss, 3),
                   format_double(cell.messages_per_step, 2),
                   format_double(cell.lost_per_step, 2),
                   format_double(cell.stale_per_step, 2),
                   format_double(cell.recoveries, 1)});
      }
    }
  }
  bench::emit(t, args);

  // Second table: stragglers in isolation (fraction × max delay, one
  // protocol) — stale reads are injector-side and protocol-independent.
  Table s("E11b — stragglers: fraction × max delay (combined, n=" +
          std::to_string(n) + ", " + std::to_string(args.steps) + " steps)");
  s.header({"fraction", "max delay", "msgs/step", "stale/step"});
  for (const double frac : {0.125, 0.25, 0.5}) {
    for (const std::size_t delay : {2u, 8u, 32u}) {
      FaultConfig fcfg;
      fcfg.straggler_fraction = frac;
      fcfg.max_delay = delay;
      fcfg.horizon = args.steps;
      fcfg.seed = args.seed;

      SimConfig cfg;
      cfg.k = 4;
      cfg.epsilon = 0.1;
      cfg.seed = args.seed;
      cfg.faults = make_fleet_schedule(fcfg, n);
      Simulator sim(cfg, make_stream(fleet_spec(n)), make_protocol("combined"));
      const RunResult r = sim.run(args.steps);
      const double steps = static_cast<double>(r.steps);
      s.add_row({format_double(frac, 3), std::to_string(delay),
                 format_double(static_cast<double>(r.messages) / steps, 2),
                 format_double(static_cast<double>(r.stale_reads) / steps, 2)});
    }
  }
  bench::emit(s, args);
  return 0;
}
