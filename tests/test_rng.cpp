#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace topkmon {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, DeriveProducesIndependentStreams) {
  Rng a = Rng::derive(42, 0);
  Rng b = Rng::derive(42, 1);
  Rng a2 = Rng::derive(42, 0);
  EXPECT_NE(a.next_u64(), b.next_u64());
  Rng a3 = Rng::derive(42, 0);
  EXPECT_EQ(a2.next_u64(), a3.next_u64());
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.below(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformU64RespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_u64(100, 200);
    EXPECT_GE(v, 100u);
    EXPECT_LE(v, 200u);
  }
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(19);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  const double p = static_cast<double>(hits) / trials;
  EXPECT_NEAR(p, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0.0, sq = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / trials;
  const double var = sq / trials - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, GeometricMean) {
  Rng rng(29);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(rng.geometric(0.25));
  }
  // E[failures before success] = (1-p)/p = 3.
  EXPECT_NEAR(sum / trials, 3.0, 0.1);
}

TEST(Zipf, RankOneMostProbable) {
  ZipfSampler zipf(100, 1.2);
  Rng rng(31);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    counts[zipf.sample(rng)]++;
  }
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[1], counts[10]);
  for (const auto& [rank, cnt] : counts) {
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 100u);
  }
}

TEST(Zipf, AlphaZeroIsUniformish) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(37);
  std::map<std::size_t, int> counts;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    counts[zipf.sample(rng)]++;
  }
  for (const auto& [rank, cnt] : counts) {
    EXPECT_NEAR(static_cast<double>(cnt) / trials, 0.1, 0.02) << "rank " << rank;
  }
}

TEST(Splitmix, KnownProgression) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
}

}  // namespace
}  // namespace topkmon
