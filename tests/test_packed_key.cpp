// Packed-key encoding edge cases (util/packed_key.hpp) and ordering
// equivalence of the radix rebuild against the comparator sort it replaced.
//
// The claims under test:
//   * descending uint64 order of rank_key(value, id) is exactly the
//     ranks_above order (value desc, id asc), including exact value ties and
//     the extremes 0 / kMaxObservableValue;
//   * order_key_f64 embeds NaN-free doubles monotonically into uint64 —
//     ±0.0 collapse onto one key (operator< ties them), denormals,
//     infinities and exact ties order correctly;
//   * sorting with packed keys and the radix sorter is bit-identical to
//     std::sort with the comparator, and σ answered from a radix-sorted
//     order equals the oracle's ε-comparison σ on the raw vector.
#include "util/packed_key.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "model/oracle.hpp"
#include "util/radix.hpp"
#include "util/rng.hpp"

namespace topkmon {
namespace {

TEST(PackedKey, RoundTripsValueAndId) {
  Rng rng(7);
  for (int it = 0; it < 1000; ++it) {
    const Value v = rng.below(kMaxObservableValue + 1);
    const NodeId id = static_cast<NodeId>(rng.below(kRankKeyMaxNodes));
    const std::uint64_t key = rank_key(v, id);
    EXPECT_EQ(rank_key_value(key), v);
    EXPECT_EQ(rank_key_id(key), id);
  }
}

TEST(PackedKey, DescendingKeyOrderIsRanksAboveOrder) {
  Rng rng(11);
  for (int it = 0; it < 2000; ++it) {
    // Bias toward collisions so exact value ties are exercised constantly.
    const Value va = rng.below(8);
    const Value vb = rng.below(8);
    const NodeId a = static_cast<NodeId>(rng.below(64));
    NodeId b = static_cast<NodeId>(rng.below(64));
    if (a == b) b = (b + 1) % 64;
    EXPECT_EQ(rank_key(va, a) > rank_key(vb, b), ranks_above(va, a, vb, b))
        << "va=" << va << " a=" << a << " vb=" << vb << " b=" << b;
  }
}

TEST(PackedKey, ExtremeValuesStayOrdered) {
  const NodeId last = static_cast<NodeId>(kRankKeyMaxNodes - 1);
  // Highest possible key: max value, node 0; lowest: value 0, last node.
  EXPECT_GT(rank_key(kMaxObservableValue, 0), rank_key(kMaxObservableValue, last));
  EXPECT_GT(rank_key(kMaxObservableValue, last), rank_key(0, 0));
  EXPECT_GT(rank_key(0, 0), rank_key(0, last));
  EXPECT_GT(rank_key(1, last), rank_key(0, 0)) << "value beats any id gap";
}

TEST(PackedKey, OrderKeyF64CollapsesSignedZeros) {
  EXPECT_EQ(order_key_f64(0.0), order_key_f64(-0.0))
      << "-0.0 and +0.0 compare equal under <, so their keys must tie";
}

TEST(PackedKey, OrderKeyF64IsMonotoneOnEdgeCases) {
  const double denorm_min = std::numeric_limits<double>::denorm_min();
  const double norm_min = std::numeric_limits<double>::min();
  const double inf = std::numeric_limits<double>::infinity();
  // Strictly increasing probe sequence across the tricky regions of the
  // IEEE line: -inf, huge negatives, negative denormals, zero, denormals,
  // normals, +inf.
  const std::vector<double> probes = {
      -inf, -1e300, -1.0, -norm_min, -denorm_min * 2, -denorm_min, 0.0,
      denorm_min, denorm_min * 2, norm_min, 1.0, 1e300, inf};
  for (std::size_t i = 0; i + 1 < probes.size(); ++i) {
    EXPECT_LT(order_key_f64(probes[i]), order_key_f64(probes[i + 1]))
        << probes[i] << " vs " << probes[i + 1];
  }
}

TEST(PackedKey, OrderKeyF64MatchesOperatorLessOnRandomDoubles) {
  Rng rng(13);
  for (int it = 0; it < 5000; ++it) {
    const double a = rng.uniform(-1e6, 1e6);
    const double b = rng.below(4) == 0 ? a : rng.uniform(-1e6, 1e6);  // force ties
    EXPECT_EQ(order_key_f64(a) < order_key_f64(b), a < b);
    EXPECT_EQ(order_key_f64(a) == order_key_f64(b), a == b);
  }
}

TEST(PackedKey, RadixSortedKeysMatchComparatorSort) {
  Rng rng(17);
  for (const std::size_t n : {1ul, 2ul, 7ul, 64ul, 1000ul}) {
    for (int rep = 0; rep < 20; ++rep) {
      ValueVector values(n);
      for (auto& v : values) {
        // Heavy tie mass plus occasional extremes.
        v = rng.below(4) == 0 ? rng.below(8) : rng.below(kMaxObservableValue + 1);
      }
      std::vector<NodeId> expected(n);
      std::iota(expected.begin(), expected.end(), NodeId{0});
      std::sort(expected.begin(), expected.end(), [&](NodeId a, NodeId b) {
        return ranks_above(values[a], a, values[b], b);
      });

      std::vector<std::uint64_t> keys(n);
      for (NodeId i = 0; i < n; ++i) {
        keys[i] = rank_key(values[i], i);
      }
      RadixScratch scratch(n);
      radix_sort_desc(keys.data(), n, scratch);
      for (std::size_t r = 0; r < n; ++r) {
        ASSERT_EQ(rank_key_id(keys[r]), expected[r]) << "rank " << r;
        ASSERT_EQ(rank_key_value(keys[r]), values[expected[r]]);
      }
    }
  }
}

TEST(PackedKey, PairRadixMatchesComparatorSortBeyondPackedRange) {
  // The pair path (keys + co-sorted ids) must reproduce the identical
  // permutation; exercised here directly since fleets past 2^15 nodes are
  // too slow to fuzz end-to-end.
  Rng rng(19);
  const std::size_t n = 3000;
  ValueVector values(n);
  for (auto& v : values) v = rng.below(64);  // massive tie pressure
  std::vector<NodeId> expected(n);
  std::iota(expected.begin(), expected.end(), NodeId{0});
  std::sort(expected.begin(), expected.end(), [&](NodeId a, NodeId b) {
    return ranks_above(values[a], a, values[b], b);
  });

  std::vector<std::uint64_t> keys(values.begin(), values.end());
  std::vector<std::uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  RadixScratch scratch(n);
  radix_sort_desc(keys.data(), ids.data(), n, scratch);
  for (std::size_t r = 0; r < n; ++r) {
    ASSERT_EQ(ids[r], expected[r]) << "rank " << r;
    ASSERT_EQ(keys[r], values[expected[r]]);
  }
}

TEST(PackedKey, SigmaOnRadixSortedOrderMatchesOracleEpsilonComparisons) {
  Rng rng(23);
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t n = 1 + rng.below(300);
    ValueVector values(n);
    for (auto& v : values) v = rng.below(1000) + 1;
    const std::size_t k = 1 + rng.below(n);
    const double epsilon = rng.below(2) == 0 ? 0.0 : rng.uniform(0.01, 0.5);

    ValueVector sorted(values);
    RadixScratch scratch(n);
    radix_sort_desc(sorted.data(), n, scratch);
    EXPECT_EQ(Oracle::sigma_sorted({sorted.data(), sorted.size()}, k, epsilon),
              Oracle::sigma({values.data(), values.size()}, k, epsilon))
        << "n=" << n << " k=" << k << " eps=" << epsilon;
  }
}

}  // namespace
}  // namespace topkmon
