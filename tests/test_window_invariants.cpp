// Sliding-window invariants (src/model/window.hpp and its plumbing):
//   * the monotonic-deque window maximum matches naive O(W) recomputation on
//     random streams for many (n, W) shapes, expiries included;
//   * the W = ∞ path is bit-identical to pre-window snapshots (W = 1 runs —
//     the windowed pipeline with identity values — match W = ∞ runs message
//     for message, and W ≥ T equals the running maximum);
//   * engine results are bit-identical across 1/2/8 threads with
//     mixed-window queries, with and without probe sharing;
//   * an engine-served windowed query matches a standalone windowed
//     Simulator bit-for-bit (the injection seam agrees on both paths);
//   * WindowedOpt equals OfflineOpt on the naively windowed history and the
//     brute-force minimal phase partition on small instances;
//   * the on_window_expiry hook fires exactly on expiry steps.
#include "model/window.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bench_support/runner.hpp"
#include "engine/engine.hpp"
#include "model/oracle.hpp"
#include "offline/brute_force.hpp"
#include "offline/windowed_opt.hpp"
#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/registry.hpp"
#include "util/rng.hpp"

namespace topkmon {
namespace {

std::vector<ValueVector> random_history(std::size_t n, std::size_t steps,
                                        std::uint64_t seed, Value hi = 1000) {
  Rng rng(seed);
  std::vector<ValueVector> h(steps, ValueVector(n));
  for (auto& row : h) {
    for (auto& v : row) {
      v = rng.uniform_u64(0, hi);
    }
  }
  return h;
}

StreamSpec walk_spec(std::size_t n = 16, std::size_t k = 3) {
  StreamSpec spec;
  spec.kind = "random_walk";
  spec.n = n;
  spec.k = k;
  spec.epsilon = 0.1;
  spec.sigma = n / 2;
  spec.delta = 1 << 14;
  return spec;
}

// --- deque vs naive recomputation ------------------------------------------

TEST(WindowModel, MatchesNaiveRecomputationOnRandomStreams) {
  for (const std::size_t n : {1u, 3u, 8u}) {
    for (const std::size_t window : {1u, 2u, 5u, 17u, 40u}) {
      const auto history = random_history(n, 60, 1000 + n * 100 + window, 50);
      WindowedValueModel model(n, window);
      for (std::size_t t = 0; t < history.size(); ++t) {
        const ValueVector& got = model.push(static_cast<TimeStep>(t), history[t]);
        EXPECT_EQ(got, naive_window_max(history, t, window))
            << "n=" << n << " W=" << window << " t=" << t;
      }
    }
  }
}

TEST(WindowModel, SparseFallbackMatchesArenaMode) {
  // Forcing max_arena_entries = 0 routes the same stream through the
  // per-node-deque fallback (used when n·W would over-commit the flat
  // arena); outputs and expiry counters must be identical entry for entry.
  for (const std::size_t n : {1u, 4u, 9u}) {
    for (const std::size_t window : {1u, 3u, 16u, 33u}) {
      const auto history = random_history(n, 80, 7000 + n * 100 + window, 40);
      WindowedValueModel arena(n, window);
      WindowedValueModel sparse(n, window, /*max_arena_entries=*/0);
      for (std::size_t t = 0; t < history.size(); ++t) {
        const ValueVector& a = arena.push(static_cast<TimeStep>(t), history[t]);
        const ValueVector& s = sparse.push(static_cast<TimeStep>(t), history[t]);
        ASSERT_EQ(a, s) << "n=" << n << " W=" << window << " t=" << t;
        ASSERT_EQ(arena.last_expirations(), sparse.last_expirations());
      }
      EXPECT_EQ(arena.total_expirations(), sparse.total_expirations());
    }
  }
}

TEST(WindowModel, WindowedHistoryMatchesNaivePerRow) {
  const auto history = random_history(5, 40, 77, 30);
  for (const std::size_t window : {1u, 3u, 9u, 100u}) {
    const auto windowed = windowed_history(history, window);
    ASSERT_EQ(windowed.size(), history.size());
    for (std::size_t t = 0; t < history.size(); ++t) {
      EXPECT_EQ(windowed[t], naive_window_max(history, t, window));
    }
  }
  // W = ∞ is the identity.
  EXPECT_EQ(windowed_history(history, kInfiniteWindow), history);
}

TEST(WindowModel, CountsExpiriesExactly) {
  // W=2, one node, values 5 3 1 4: max 5,5,3,4 — one expiry (t=2, the 5
  // slid out and 3 < 5). t=3 evicts the 3 but 4 > 3: not an expiry.
  WindowedValueModel model(1, 2);
  model.push(0, {5});
  EXPECT_EQ(model.last_expirations(), 0u);
  model.push(1, {3});
  EXPECT_EQ(model.last_expirations(), 0u);
  EXPECT_EQ(model.values()[0], 5u);
  model.push(2, {1});
  EXPECT_EQ(model.last_expirations(), 1u);
  EXPECT_EQ(model.values()[0], 3u);
  model.push(3, {4});
  EXPECT_EQ(model.last_expirations(), 0u);
  EXPECT_EQ(model.values()[0], 4u);
  EXPECT_EQ(model.total_expirations(), 1u);
}

// --- W = ∞ bit-identity ----------------------------------------------------

RunResult run_walk(const std::string& protocol, std::size_t window,
                   std::uint64_t seed, OutputSet* out = nullptr,
                   std::vector<ValueVector>* history = nullptr) {
  SimConfig cfg;
  cfg.k = 3;
  cfg.epsilon = protocol == "exact_topk" ? 0.0 : 0.1;
  cfg.seed = seed;
  cfg.strict = true;
  cfg.window = window;
  cfg.record_history = history != nullptr;
  Simulator sim(cfg, make_stream(walk_spec()), make_protocol(protocol));
  const RunResult r = sim.run(120);
  if (out != nullptr) *out = sim.protocol().output();
  if (history != nullptr) *history = sim.history();
  return r;
}

TEST(WindowBitIdentity, WindowOneEqualsUnwindowed) {
  // W = 1 exercises the full windowed pipeline (model installed, expiry
  // bookkeeping live) but the window maximum of one observation is the
  // observation: every protocol must run message-for-message like W = ∞.
  for (const auto& protocol : protocol_names()) {
    OutputSet out_inf, out_one;
    const RunResult inf = run_walk(protocol, kInfiniteWindow, 42, &out_inf);
    const RunResult one = run_walk(protocol, 1, 42, &out_one);
    EXPECT_EQ(inf.messages, one.messages) << protocol;
    EXPECT_EQ(inf.by_tag, one.by_tag) << protocol;
    EXPECT_EQ(inf.max_rounds_per_step, one.max_rounds_per_step) << protocol;
    EXPECT_EQ(inf.max_sigma, one.max_sigma) << protocol;
    EXPECT_EQ(out_inf, out_one) << protocol;
    EXPECT_EQ(one.window_expirations, 0u) << protocol;
    EXPECT_EQ(inf.window_expirations, 0u) << protocol;
  }
}

TEST(WindowBitIdentity, HugeWindowIsRunningMax) {
  std::vector<ValueVector> raw, windowed;
  run_walk("combined", kInfiniteWindow, 7, nullptr, &raw);
  run_walk("combined", 100000, 7, nullptr, &windowed);
  ASSERT_EQ(raw.size(), windowed.size());
  ValueVector running = raw.front();
  for (std::size_t t = 0; t < raw.size(); ++t) {
    for (std::size_t i = 0; i < running.size(); ++i) {
      running[i] = std::max(running[i], raw[t][i]);
    }
    EXPECT_EQ(windowed[t], running) << "t=" << t;
  }
}

// --- engine: mixed windows, thread invariance, seam agreement ---------------

EngineStats run_engine(std::size_t threads, bool share, std::uint64_t seed) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.shard_count = threads;
  cfg.seed = seed;
  cfg.share_probes = share;
  MonitoringEngine engine(cfg, make_stream(walk_spec(24, 4)));
  const std::vector<std::string> protocols{"combined", "topk_protocol",
                                           "half_error", "naive_change"};
  const std::vector<std::size_t> windows{kInfiniteWindow, 4, 16, 4};
  for (std::size_t q = 0; q < 12; ++q) {
    QuerySpec spec;
    spec.protocol = protocols[q % protocols.size()];
    spec.k = 2 + q % 3;
    spec.epsilon = 0.05 + 0.05 * (q % 3);
    spec.window = windows[q % windows.size()];
    spec.strict = true;
    engine.add_query(spec);
  }
  return engine.run(100);
}

TEST(WindowEngine, MixedWindowResultsAreThreadScheduleInvariant) {
  for (const bool share : {true, false}) {
    const EngineStats one = run_engine(1, share, 99);
    for (const std::size_t threads : {2u, 8u}) {
      const EngineStats many = run_engine(threads, share, 99);
      ASSERT_EQ(one.queries.size(), many.queries.size());
      EXPECT_EQ(one.query_messages, many.query_messages);
      EXPECT_EQ(one.shared_probe_messages, many.shared_probe_messages);
      EXPECT_EQ(one.window_expirations, many.window_expirations);
      for (std::size_t q = 0; q < one.queries.size(); ++q) {
        EXPECT_EQ(one.queries[q].run.messages, many.queries[q].run.messages)
            << "share=" << share << " threads=" << threads << " q=" << q;
        EXPECT_EQ(one.queries[q].output, many.queries[q].output);
      }
    }
  }
}

TEST(WindowEngine, WindowedQueryMatchesStandaloneSimulator) {
  // One windowed query served by the engine (sharing off, explicit seed)
  // must be bit-identical to a standalone Simulator with SimConfig::window —
  // the two sides of the injection seam. Exercised with faults on top.
  FaultConfig fcfg;
  fcfg.straggler_fraction = 0.25;
  fcfg.max_delay = 4;
  fcfg.churn_rate = 0.02;
  fcfg.horizon = 100;
  fcfg.seed = 5;

  for (const std::size_t window : {kInfiniteWindow, std::size_t{6}}) {
    SimConfig scfg;
    scfg.k = 3;
    scfg.epsilon = 0.1;
    scfg.seed = 31;
    scfg.strict = true;
    scfg.window = window;
    scfg.faults = make_fleet_schedule(fcfg, 16);
    Simulator solo(scfg, make_stream(walk_spec()), make_protocol("combined"));
    const RunResult solo_run = solo.run(100);

    EngineConfig ecfg;
    ecfg.threads = 1;
    ecfg.seed = 31;
    ecfg.share_probes = false;
    ecfg.faults = make_fleet_schedule(fcfg, 16);
    MonitoringEngine engine(ecfg, make_stream(walk_spec()));
    QuerySpec spec;
    spec.protocol = "combined";
    spec.k = 3;
    spec.epsilon = 0.1;
    spec.window = window;
    spec.strict = true;
    spec.seed = 31;
    engine.add_query(spec);
    engine.run(100);
    const RunResult engine_run = engine.query_sim(0).result();

    EXPECT_EQ(solo_run.messages, engine_run.messages) << "W=" << window;
    EXPECT_EQ(solo_run.by_tag, engine_run.by_tag) << "W=" << window;
    EXPECT_EQ(solo_run.window_expirations, engine_run.window_expirations);
    EXPECT_EQ(solo.protocol().output(), engine.output(0)) << "W=" << window;
  }
}

TEST(WindowEngine, SweepRunnerGroupsMixedWindowCellsBitIdentically) {
  // Cells differing only in (protocol, W) share one engine group in
  // run_sweep; each must still report exactly what its standalone
  // run_experiment (one Simulator per trial, windowed history + plain OPT)
  // reports — including the windowed competitive baseline.
  std::vector<SweepRow> rows;
  for (const auto& protocol : {"combined", "naive_change"}) {
    for (const std::size_t window : {kInfiniteWindow, std::size_t{5}}) {
      ExperimentConfig cfg;
      cfg.stream = walk_spec(12, 3);
      cfg.protocol = protocol;
      cfg.k = 3;
      cfg.epsilon = 0.1;
      cfg.steps = 80;
      cfg.trials = 2;
      cfg.seed = 11;
      cfg.window = window;
      rows.push_back({std::string(protocol) + "/W" + std::to_string(window), cfg});
    }
  }
  const std::vector<ExperimentResult> swept = run_sweep(rows, 2);
  ASSERT_EQ(swept.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ExperimentResult solo = run_experiment(rows[i].cfg);
    EXPECT_EQ(swept[i].messages.mean(), solo.messages.mean()) << rows[i].label;
    EXPECT_EQ(swept[i].opt_phases.mean(), solo.opt_phases.mean()) << rows[i].label;
    EXPECT_EQ(swept[i].last_run.messages, solo.last_run.messages) << rows[i].label;
    EXPECT_EQ(swept[i].last_run.window_expirations,
              solo.last_run.window_expirations)
        << rows[i].label;
  }
}

// --- windowed offline optimum ----------------------------------------------

TEST(WindowedOptTest, EqualsPlainOptOnNaivelyWindowedHistory) {
  const auto history = random_history(6, 50, 1234, 200);
  for (const std::size_t window : {1u, 4u, 12u}) {
    std::vector<ValueVector> naive;
    naive.reserve(history.size());
    for (std::size_t t = 0; t < history.size(); ++t) {
      naive.push_back(naive_window_max(history, t, window));
    }
    for (const double eps : {0.0, 0.1}) {
      const OptReport a = WindowedOpt::approx(history, 2, eps, window);
      const OptReport b = OfflineOpt::approx(naive, 2, eps);
      EXPECT_EQ(a.phases, b.phases) << "W=" << window << " eps=" << eps;
      EXPECT_EQ(a.phase_starts, b.phase_starts);
    }
    const OptReport a = WindowedOpt::exact(history, 2, window);
    const OptReport b = OfflineOpt::exact(naive, 2);
    EXPECT_EQ(a.phases, b.phases);
  }
}

TEST(WindowedOptTest, GreedyPartitionIsMinimalOnSmallInstances) {
  const auto history = random_history(4, 16, 9, 40);
  for (const std::size_t window : {2u, 5u}) {
    const auto windowed = windowed_history(history, window);
    const OptReport greedy = WindowedOpt::approx(history, 2, 0.1, window);
    EXPECT_EQ(greedy.phases, min_phases_brute(windowed, 2, 0.1)) << "W=" << window;
  }
}

// --- expiry hook dispatch ---------------------------------------------------

/// Minimal valid protocol that counts how dispatch happens: reports all
/// values every step (naive-central style) so output is always correct.
class HookProbeProtocol : public MonitoringProtocol {
 public:
  void start(SimContext& ctx) override { collect(ctx); }
  void on_step(SimContext& ctx) override {
    ++steps_;
    collect(ctx);
  }
  void on_window_expiry(SimContext& ctx) override {
    ++expiries_;
    collect(ctx);
  }
  const OutputSet& output() const override { return out_; }
  std::string_view name() const override { return "hook_probe"; }

  int steps_ = 0;
  int expiries_ = 0;

 private:
  void collect(SimContext& ctx) {
    ValueVector values;
    for (NodeId i = 0; i < ctx.n(); ++i) {
      values.push_back(ctx.report_value(i));
    }
    out_ = Oracle::top_k(values, ctx.k());
    for (NodeId i = 0; i < ctx.n(); ++i) {
      ctx.set_filter_unicast(i, Filter::all());
    }
  }

  OutputSet out_;
};

TEST(WindowExpiryHook, FiresExactlyOnExpirySteps) {
  // Externally driven, W=2, n=1: values 5 3 1 4 → expiry exactly at t=2.
  SimConfig cfg;
  cfg.k = 1;
  cfg.epsilon = 0.1;
  cfg.seed = 1;
  cfg.window = 2;
  auto protocol = std::make_unique<HookProbeProtocol>();
  HookProbeProtocol* hook = protocol.get();
  Simulator sim(cfg, /*n=*/1, std::move(protocol));
  sim.step_with({5});
  sim.step_with({3});
  EXPECT_EQ(hook->expiries_, 0);
  sim.step_with({1});
  EXPECT_EQ(hook->expiries_, 1);
  sim.step_with({4});
  EXPECT_EQ(hook->expiries_, 1);
  EXPECT_EQ(hook->steps_, 2);
  EXPECT_EQ(sim.result().window_expirations, 1u);
}

}  // namespace
}  // namespace topkmon
