#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace topkmon {
namespace {

Flags make(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  auto f = make({"prog", "--n=42", "--eps=0.25", "--name=hello"});
  EXPECT_EQ(f.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(f.get_double("eps", 0.0), 0.25);
  EXPECT_EQ(f.get_string("name", ""), "hello");
}

TEST(Flags, SpaceSyntax) {
  auto f = make({"prog", "--steps", "1000", "--kind", "uniform"});
  EXPECT_EQ(f.get_uint("steps", 0), 1000u);
  EXPECT_EQ(f.get_string("kind", ""), "uniform");
}

TEST(Flags, BooleanFlags) {
  auto f = make({"prog", "--verbose", "--strict=false"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.get_bool("strict", true));
  EXPECT_TRUE(f.get_bool("absent", true));
  EXPECT_FALSE(f.get_bool("absent", false));
}

TEST(Flags, Positional) {
  auto f = make({"prog", "input.csv", "--k=3", "output.csv"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.csv");
  EXPECT_EQ(f.positional()[1], "output.csv");
}

TEST(Flags, DefaultsWhenMissing) {
  auto f = make({"prog"});
  EXPECT_EQ(f.get_int("n", 7), 7);
  EXPECT_EQ(f.get_string("s", "dflt"), "dflt");
  EXPECT_FALSE(f.has("n"));
}

TEST(Flags, ProgramName) {
  auto f = make({"./bench_e1", "--n=1"});
  EXPECT_EQ(f.program(), "./bench_e1");
}

}  // namespace
}  // namespace topkmon
