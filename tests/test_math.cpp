#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace topkmon {
namespace {

TEST(Ilog2, FloorValues) {
  EXPECT_EQ(ilog2_floor(1), 0);
  EXPECT_EQ(ilog2_floor(2), 1);
  EXPECT_EQ(ilog2_floor(3), 1);
  EXPECT_EQ(ilog2_floor(4), 2);
  EXPECT_EQ(ilog2_floor(1023), 9);
  EXPECT_EQ(ilog2_floor(1024), 10);
  EXPECT_EQ(ilog2_floor(~0ULL), 63);
}

TEST(Ilog2, CeilValues) {
  EXPECT_EQ(ilog2_ceil(1), 0);
  EXPECT_EQ(ilog2_ceil(2), 1);
  EXPECT_EQ(ilog2_ceil(3), 2);
  EXPECT_EQ(ilog2_ceil(4), 2);
  EXPECT_EQ(ilog2_ceil(5), 3);
  EXPECT_EQ(ilog2_ceil(1024), 10);
  EXPECT_EQ(ilog2_ceil(1025), 11);
}

class Ilog2Param : public ::testing::TestWithParam<int> {};

TEST_P(Ilog2Param, FloorCeilConsistentOnPowersOfTwo) {
  const int e = GetParam();
  const std::uint64_t v = std::uint64_t{1} << e;
  EXPECT_EQ(ilog2_floor(v), e);
  EXPECT_EQ(ilog2_ceil(v), e);
  if (e > 1) {
    EXPECT_EQ(ilog2_floor(v - 1), e - 1);
    EXPECT_EQ(ilog2_ceil(v + 1), e + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Powers, Ilog2Param,
                         ::testing::Values(1, 2, 3, 8, 16, 31, 32, 47, 62));

TEST(LogLog, ClampedAtSmallValues) {
  EXPECT_DOUBLE_EQ(loglog2(0.0), 0.0);
  EXPECT_DOUBLE_EQ(loglog2(1.0), 0.0);
  EXPECT_DOUBLE_EQ(loglog2(2.0), 0.0);
}

TEST(LogLog, KnownValues) {
  EXPECT_NEAR(loglog2(4.0), 1.0, 1e-9);            // log2(log2 4) = log2 2
  EXPECT_NEAR(loglog2(16.0), 2.0, 1e-9);           // log2(log2 16) = log2 4
  EXPECT_NEAR(loglog2(65536.0), 4.0, 1e-9);        // log2(16)
  EXPECT_NEAR(loglog2(std::exp2(256.0)), 8.0, 1e-9);
}

TEST(LogLog, MonotoneNondecreasing) {
  double prev = -1.0;
  for (double x = 0.0; x < 1e6; x = x * 1.5 + 1.0) {
    const double v = loglog2(x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Pow2Saturated, NormalRange) {
  EXPECT_DOUBLE_EQ(pow2_saturated(0.0), 1.0);
  EXPECT_DOUBLE_EQ(pow2_saturated(10.0), 1024.0);
}

TEST(Pow2Saturated, SaturatesHugeExponents) {
  const double cap = 4.611686018427387904e18;
  EXPECT_DOUBLE_EQ(pow2_saturated(63.0), cap);
  EXPECT_DOUBLE_EQ(pow2_saturated(1000.0), cap);
  EXPECT_DOUBLE_EQ(pow2_saturated(100.0, 42.0), 42.0);
}

TEST(Midpoint, Basics) {
  EXPECT_DOUBLE_EQ(midpoint(0.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(midpoint(3.0, 4.0), 3.5);
  EXPECT_DOUBLE_EQ(midpoint(7.0, 7.0), 7.0);
}

TEST(Midpoint, NoOverflowAtLargeMagnitudes) {
  const double big = 1e300;
  EXPECT_DOUBLE_EQ(midpoint(big, big), big);
}

TEST(ApproxEqual, Tolerances) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1e12, 1e12 + 1.0));
}

TEST(RoundToU64, ClampsAndRounds) {
  EXPECT_EQ(round_to_u64(-5.0), 0u);
  EXPECT_EQ(round_to_u64(0.4), 0u);
  EXPECT_EQ(round_to_u64(0.6), 1u);
  EXPECT_EQ(round_to_u64(1e30), std::uint64_t{1} << 63);
}

}  // namespace
}  // namespace topkmon
