// Sweep-runner determinism under the work-stealing (cell × trial) scheduler.
//
// run_sweep splits every cell's trials into independent tasks, runs them on
// a work-stealing pool, and folds the per-trial outcomes back in (cell,
// trial) order on the caller thread. The contract under test: results —
// message counters, σ, rounds, opt phases, competitive ratios, the full
// RunResult of the last trial — are bit-identical whatever the worker
// count or steal pattern, and bit-identical to the serial run_experiment
// fold for solo cells.
#include "bench_support/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bench_support/experiment.hpp"

namespace topkmon {
namespace {

/// A grid that exercises all three scheduler paths: an engine-served group
/// (three protocols on one stream config), a solo cell (unique stream
/// config), and an adaptive-adversary cell (never grouped).
std::vector<SweepRow> mixed_rows() {
  std::vector<SweepRow> rows;
  ExperimentConfig base;
  base.stream.kind = "random_walk";
  base.stream.n = 24;
  base.k = 4;
  base.epsilon = 0.15;
  base.steps = 120;
  base.trials = 3;
  base.seed = 99;
  for (const char* protocol : {"combined", "exact_topk", "half_error"}) {
    SweepRow row;
    row.label = protocol;
    row.cfg = base;
    row.cfg.protocol = protocol;
    rows.push_back(row);
  }
  {
    SweepRow solo;
    solo.label = "solo";
    solo.cfg = base;
    solo.cfg.stream.kind = "zipf_bursty";
    rows.push_back(solo);
  }
  {
    SweepRow adaptive;
    adaptive.label = "adaptive";
    adaptive.cfg = base;
    adaptive.cfg.stream.kind = "lb_adversary";
    adaptive.cfg.steps = 60;
    adaptive.cfg.trials = 2;
    rows.push_back(adaptive);
  }
  return rows;
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.messages.samples(), b.messages.samples()) << label;
  EXPECT_EQ(a.msgs_per_step.samples(), b.msgs_per_step.samples()) << label;
  EXPECT_EQ(a.max_sigma.samples(), b.max_sigma.samples()) << label;
  EXPECT_EQ(a.max_rounds.samples(), b.max_rounds.samples()) << label;
  EXPECT_EQ(a.opt_phases.samples(), b.opt_phases.samples()) << label;
  EXPECT_EQ(a.ratio.samples(), b.ratio.samples()) << label;
  EXPECT_EQ(a.last_run.messages, b.last_run.messages) << label;
  EXPECT_EQ(a.last_run.by_tag, b.last_run.by_tag) << label;
  EXPECT_EQ(a.last_run.max_sigma, b.last_run.max_sigma) << label;
  EXPECT_EQ(a.last_run.stale_reads, b.last_run.stale_reads) << label;
}

TEST(SweepScheduler, ResultsBitIdenticalAcross1_2_8Threads) {
  const auto rows = mixed_rows();
  const auto r1 = run_sweep(rows, 1);
  const auto r2 = run_sweep(rows, 2);
  const auto r8 = run_sweep(rows, 8);
  ASSERT_EQ(r1.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    expect_identical(r1[i], r2[i], rows[i].label + " (1 vs 2 threads)");
    expect_identical(r1[i], r8[i], rows[i].label + " (1 vs 8 threads)");
  }
}

TEST(SweepScheduler, SoloCellsMatchSerialRunExperiment) {
  const auto rows = mixed_rows();
  const auto swept = run_sweep(rows, 8);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].cfg.stream.kind == "random_walk") continue;  // grouped path
    const ExperimentResult serial = run_experiment(rows[i].cfg);
    expect_identical(swept[i], serial, rows[i].label + " (sweep vs serial)");
  }
}

TEST(SweepScheduler, TrialFoldMatchesPerTrialOutcomes) {
  // accumulate_trial over run_experiment_trial in trial order must equal
  // run_experiment — the invariant the (cell × trial) split rests on.
  ExperimentConfig cfg;
  cfg.stream.kind = "sine_noise";
  cfg.stream.n = 16;
  cfg.k = 3;
  cfg.epsilon = 0.2;
  cfg.steps = 80;
  cfg.trials = 4;
  cfg.seed = 7;
  ExperimentResult folded;
  for (std::size_t t = 0; t < cfg.trials; ++t) {
    accumulate_trial(folded, cfg, run_experiment_trial(cfg, t));
  }
  expect_identical(folded, run_experiment(cfg), "fold vs run_experiment");
}

}  // namespace
}  // namespace topkmon
