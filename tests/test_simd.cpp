// Differential fuzz of the SIMD lane primitives (util/simd.hpp) against
// straight scalar references written inline here.
//
// The dispatcher picks the widest ISA the CPU offers (or the scalar tier
// under TOPKMON_SIMD=OFF), so running this suite on both CI legs pins the
// vector and scalar paths to bit-identical results. Sizes straddle every
// lane boundary (0, 1, lane−1, lane, lane+1, odd tails) and values sit on
// the conversion/compare edges (0, 2^48, exact ties, ±inf bounds).
#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "model/filter.hpp"
#include "model/oracle.hpp"
#include "util/rng.hpp"

namespace topkmon {
namespace {

const std::vector<std::size_t> kSizes = {0,  1,  2,  3,  4,  5,  7,  8,
                                         9,  15, 16, 17, 31, 33, 100, 1024};

ValueVector random_values(Rng& rng, std::size_t n, Value lo, Value hi) {
  ValueVector v(n);
  for (auto& x : v) x = lo + rng.below(hi - lo + 1);
  return v;
}

TEST(Simd, ActiveIsaIsReported) {
  const std::string isa = simd::active_isa();
  EXPECT_TRUE(isa == "avx2" || isa == "sse2" || isa == "neon" || isa == "scalar")
      << isa;
}

TEST(Simd, CountAndCollectDiffMatchScalar) {
  Rng rng(1);
  for (const std::size_t n : kSizes) {
    for (int rep = 0; rep < 20; ++rep) {
      ValueVector a = random_values(rng, n, 0, 7);
      ValueVector b = a;
      for (auto& x : b) {
        if (rng.below(3) == 0) x = rng.below(8);
      }
      std::vector<std::uint32_t> expected;
      for (std::size_t i = 0; i < n; ++i) {
        if (a[i] != b[i]) expected.push_back(static_cast<std::uint32_t>(i));
      }
      EXPECT_EQ(simd::count_diff(a.data(), b.data(), n), expected.size());
      std::vector<std::uint32_t> out(n + 1, 0xDEAD);
      const std::size_t got = simd::collect_diff(a.data(), b.data(), n, out.data());
      ASSERT_EQ(got, expected.size());
      for (std::size_t j = 0; j < got; ++j) {
        EXPECT_EQ(out[j], expected[j]) << "dirty index " << j;
      }
    }
  }
}

TEST(Simd, ViolationMaskMatchesFilterCheck) {
  Rng rng(2);
  const double inf = std::numeric_limits<double>::infinity();
  for (const std::size_t n : kSizes) {
    for (int rep = 0; rep < 20; ++rep) {
      ValueVector v = random_values(rng, n, 0, 1000);
      if (n > 0) v[rng.below(n)] = kMaxObservableValue;  // conversion edge
      std::vector<double> lo(n), hi(n);
      std::vector<Filter> filters(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Mix open, closed, point and boundary-exact filters.
        const double bound = static_cast<double>(rng.below(1001));
        switch (rng.below(4)) {
          case 0: filters[i] = Filter::all(); break;
          case 1: filters[i] = Filter::at_least(bound); break;
          case 2: filters[i] = Filter::at_most(bound); break;
          default: filters[i] = Filter::point(static_cast<double>(v[i])); break;
        }
        if (rng.below(8) == 0) filters[i] = Filter{0.0, inf};
        lo[i] = filters[i].lo;
        hi[i] = filters[i].hi;
      }
      std::vector<std::uint8_t> mask(n, 0xAA);
      const std::size_t count =
          simd::violation_mask(v.data(), lo.data(), hi.data(), n, mask.data());
      std::size_t expected = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t want = filters[i].check(v[i]) != Violation::kNone ? 1 : 0;
        ASSERT_EQ(mask[i], want) << "lane " << i;
        expected += want;
      }
      EXPECT_EQ(count, expected);
    }
  }
}

TEST(Simd, MaxMergeAndScansMatchScalar) {
  Rng rng(3);
  for (const std::size_t n : kSizes) {
    for (int rep = 0; rep < 10; ++rep) {
      ValueVector a = random_values(rng, n, 0, kMaxObservableValue);
      ValueVector b = random_values(rng, n, 0, kMaxObservableValue);

      Value expected_max = 0;
      Value expected_min = ~Value{0};
      std::size_t expected_lt = 0;
      for (std::size_t i = 0; i < n; ++i) {
        expected_max = std::max(expected_max, a[i]);
        expected_min = std::min(expected_min, a[i]);
        expected_lt += a[i] < b[i];
      }
      EXPECT_EQ(simd::max_value(a.data(), n), expected_max);
      EXPECT_EQ(simd::min_value(a.data(), n), expected_min);
      EXPECT_EQ(simd::count_lt(a.data(), b.data(), n), expected_lt);

      const Value bound = n == 0 ? 0 : a[rng.below(n)];  // an attained bound
      std::size_t expected_ge = 0;
      for (std::size_t i = 0; i < n; ++i) expected_ge += a[i] >= bound;
      EXPECT_EQ(simd::count_ge(a.data(), bound, n), expected_ge);

      ValueVector merged = a;
      simd::max_merge(merged.data(), b.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(merged[i], std::max(a[i], b[i])) << "lane " << i;
      }
    }
  }
}

TEST(Simd, CountEqU32MatchesScalar) {
  Rng rng(4);
  for (const std::size_t n : kSizes) {
    std::vector<std::uint32_t> v(n);
    for (auto& x : v) x = static_cast<std::uint32_t>(rng.below(4));
    for (std::uint32_t needle = 0; needle < 5; ++needle) {
      std::size_t expected = 0;
      for (const auto x : v) expected += x == needle;
      EXPECT_EQ(simd::count_eq_u32(v.data(), needle, n), expected);
    }
  }
}

TEST(Simd, EpsilonPartitionScansMatchOracleHelpers) {
  Rng rng(5);
  for (const std::size_t n : kSizes) {
    for (int rep = 0; rep < 10; ++rep) {
      ValueVector v = random_values(rng, n, 0, kMaxObservableValue);
      const Value vk = n == 0 ? 1 : v[rng.below(n)];
      const double eps = rep % 3 == 0 ? 0.0 : rng.uniform(0.0, 0.6);
      const double vkd = static_cast<double>(vk);

      std::size_t expected_not_smaller = 0;
      std::size_t expected_larger = 0;
      for (std::size_t i = 0; i < n; ++i) {
        expected_not_smaller += !clearly_smaller(v[i], vk, eps);
        expected_larger += clearly_larger(v[i], vk, eps);
      }
      EXPECT_EQ(simd::count_f64_ge(v.data(), (1.0 - eps) * vkd, n),
                expected_not_smaller);
      EXPECT_EQ(simd::count_scaled_gt(v.data(), 1.0 - eps, vkd, n), expected_larger);
    }
  }
}

TEST(Simd, SigmaScanEqualsSigmaAndSigmaSorted) {
  Rng rng(6);
  for (int rep = 0; rep < 200; ++rep) {
    const std::size_t n = 1 + rng.below(500);
    // Tie-heavy bands around a pivot keep the ε-boundaries busy.
    ValueVector v = random_values(rng, n, 900, 1100);
    const std::size_t k = 1 + rng.below(std::min<std::size_t>(n, Oracle::kMaxScanK));
    const double eps = rep % 4 == 0 ? 0.0 : rng.uniform(0.0, 0.5);
    const std::size_t expected = Oracle::sigma({v.data(), v.size()}, k, eps);
    EXPECT_EQ(Oracle::sigma_scan({v.data(), v.size()}, k, eps), expected)
        << "n=" << n << " k=" << k << " eps=" << eps;
    EXPECT_EQ(Oracle::kth_largest({v.data(), v.size()}, k),
              Oracle::kth_value({v.data(), v.size()}, k));
  }
}

}  // namespace
}  // namespace topkmon
