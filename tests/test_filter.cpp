#include "model/filter.hpp"

#include <gtest/gtest.h>

namespace topkmon {
namespace {

TEST(Filter, Factories) {
  const auto all = Filter::all();
  EXPECT_TRUE(all.contains(0));
  EXPECT_TRUE(all.contains(~Value{0} >> 1));

  const auto least = Filter::at_least(10.0);
  EXPECT_TRUE(least.contains(10));
  EXPECT_FALSE(least.contains(9));

  const auto most = Filter::at_most(10.0);
  EXPECT_TRUE(most.contains(10));
  EXPECT_FALSE(most.contains(11));

  const auto pt = Filter::point(5.0);
  EXPECT_TRUE(pt.contains(5));
  EXPECT_FALSE(pt.contains(4));
  EXPECT_FALSE(pt.contains(6));
}

TEST(Filter, ViolationNamingFollowsPaper) {
  // "from below": value exceeds the UPPER bound.
  const Filter f{10.0, 20.0};
  EXPECT_EQ(f.check(25), Violation::kFromBelow);
  // "from above": value drops below the LOWER bound.
  EXPECT_EQ(f.check(5), Violation::kFromAbove);
  EXPECT_EQ(f.check(15), Violation::kNone);
  EXPECT_EQ(f.check(10), Violation::kNone);
  EXPECT_EQ(f.check(20), Violation::kNone);
}

TEST(Filter, FractionalBoundsOnIntegerValues) {
  const Filter f{9.5, 10.5};
  EXPECT_TRUE(f.contains(10));
  EXPECT_EQ(f.check(9), Violation::kFromAbove);
  EXPECT_EQ(f.check(11), Violation::kFromBelow);
}

TEST(ToString, ViolationNames) {
  EXPECT_EQ(to_string(Violation::kNone), "none");
  EXPECT_EQ(to_string(Violation::kFromBelow), "from-below");
  EXPECT_EQ(to_string(Violation::kFromAbove), "from-above");
}

class FiltersValidTest : public ::testing::Test {
 protected:
  // 4 nodes; output = {0, 1}.
  std::vector<Filter> filters_{Filter::at_least(100.0), Filter::at_least(95.0),
                               Filter::at_most(90.0), Filter::at_most(100.0)};
  OutputSet output_{0, 1};
};

TEST_F(FiltersValidTest, ValidWithEnoughEpsilon) {
  // min lo in F = 95; max hi outside = 100; need 95 >= (1-eps)*100.
  EXPECT_TRUE(filters_valid(filters_, output_, 0.05));
  EXPECT_TRUE(filters_valid(filters_, output_, 0.5));
}

TEST_F(FiltersValidTest, InvalidWithSmallEpsilon) {
  EXPECT_FALSE(filters_valid(filters_, output_, 0.01));
  EXPECT_FALSE(filters_valid(filters_, output_, 0.0));
}

TEST_F(FiltersValidTest, ExactTouchingAllowedAtEpsZero) {
  filters_[1] = Filter::at_least(100.0);
  EXPECT_TRUE(filters_valid(filters_, output_, 0.0));
}

TEST(FiltersValid, VacuousWhenAllInOutput) {
  std::vector<Filter> filters{Filter::all(), Filter::all()};
  OutputSet output{0, 1};
  EXPECT_TRUE(filters_valid(filters, output, 0.0));
}

TEST(FiltersValid, InfiniteUpperBoundOutsideIsInvalid) {
  std::vector<Filter> filters{Filter::at_least(100.0), Filter::all()};
  OutputSet output{0};
  EXPECT_FALSE(filters_valid(filters, output, 0.3));
}

TEST(AllWithin, DetectsStragglers) {
  std::vector<Filter> filters{Filter{0.0, 10.0}, Filter{5.0, 15.0}};
  std::vector<Value> ok{7, 12};
  std::vector<Value> bad{11, 12};
  EXPECT_TRUE(all_within(filters, std::span<const Value>(ok)));
  EXPECT_FALSE(all_within(filters, std::span<const Value>(bad)));
}

}  // namespace
}  // namespace topkmon
