#include "model/oracle.hpp"

#include <gtest/gtest.h>

namespace topkmon {
namespace {

TEST(Oracle, RankingDescendingWithIdTieBreak) {
  std::vector<Value> v{5, 9, 9, 1};
  const auto r = Oracle::ranking(v);
  // Node 1 and 2 tie at 9; lower id ranks first.
  EXPECT_EQ(r, (std::vector<NodeId>{1, 2, 0, 3}));
}

TEST(Oracle, TopKSortedByIdAscending) {
  std::vector<Value> v{5, 9, 7, 1, 8};
  EXPECT_EQ(Oracle::top_k(v, 3), (OutputSet{1, 2, 4}));
  EXPECT_EQ(Oracle::top_k(v, 1), (OutputSet{1}));
  EXPECT_EQ(Oracle::top_k(v, 5), (OutputSet{0, 1, 2, 3, 4}));
}

TEST(Oracle, KthNodeAndValue) {
  std::vector<Value> v{5, 9, 7, 1, 8};
  EXPECT_EQ(Oracle::kth_node(v, 1), 1u);
  EXPECT_EQ(Oracle::kth_value(v, 1), 9u);
  EXPECT_EQ(Oracle::kth_node(v, 3), 2u);
  EXPECT_EQ(Oracle::kth_value(v, 3), 7u);
  EXPECT_EQ(Oracle::kth_value(v, 5), 1u);
}

TEST(EpsilonHelpers, ClearlyLargerNeighborhoodSmaller) {
  // vk = 100, eps = 0.1: E = (111.1.., inf), A = [90, 111.1..].
  EXPECT_TRUE(clearly_larger(112, 100, 0.1));
  EXPECT_FALSE(clearly_larger(111, 100, 0.1));
  EXPECT_TRUE(in_neighborhood(90, 100, 0.1));
  EXPECT_TRUE(in_neighborhood(111, 100, 0.1));
  EXPECT_FALSE(in_neighborhood(89, 100, 0.1));
  EXPECT_FALSE(in_neighborhood(112, 100, 0.1));
  EXPECT_TRUE(clearly_smaller(89, 100, 0.1));
  EXPECT_FALSE(clearly_smaller(90, 100, 0.1));
}

TEST(EpsilonHelpers, EpsZeroDegeneratesToEquality) {
  EXPECT_TRUE(clearly_larger(101, 100, 0.0));
  EXPECT_FALSE(clearly_larger(100, 100, 0.0));
  EXPECT_TRUE(in_neighborhood(100, 100, 0.0));
  EXPECT_FALSE(in_neighborhood(99, 100, 0.0));
  EXPECT_FALSE(in_neighborhood(101, 100, 0.0));
}

TEST(Oracle, NeighborhoodAndSigma) {
  // vk for k=2 is 100 (values: 200, 105, 100, 95, 50), eps = 0.1
  // A = [90, 111.1]; nodes 1,2,3 inside; node 0 clearly larger; node 4 below.
  std::vector<Value> v{200, 105, 100, 95, 50};
  const auto K = Oracle::neighborhood(v, 2, 0.1);
  EXPECT_EQ(K, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(Oracle::sigma(v, 2, 0.1), 3u);
}

TEST(Oracle, OutputValidAcceptsNeighborhoodSwaps) {
  std::vector<Value> v{200, 105, 100, 95, 50};
  const std::size_t k = 2;
  const double eps = 0.1;
  // Exact top-2 = {0, 1}. Node 0 is clearly larger (must appear); second
  // slot may be any of the neighborhood {1, 2, 3}.
  EXPECT_TRUE(Oracle::output_valid(v, k, eps, {0, 1}));
  EXPECT_TRUE(Oracle::output_valid(v, k, eps, {0, 2}));
  EXPECT_TRUE(Oracle::output_valid(v, k, eps, {0, 3}));
  EXPECT_FALSE(Oracle::output_valid(v, k, eps, {0, 4}));  // clearly smaller
  EXPECT_FALSE(Oracle::output_valid(v, k, eps, {1, 2}));  // misses node 0
}

TEST(Oracle, OutputValidChecksCardinality) {
  std::vector<Value> v{10, 20, 30};
  EXPECT_FALSE(Oracle::output_valid(v, 2, 0.1, {2}));
  EXPECT_FALSE(Oracle::output_valid(v, 2, 0.1, {0, 1, 2}));
  EXPECT_FALSE(Oracle::output_valid(v, 2, 0.1, {2, 2}));
}

TEST(Oracle, ExplainInvalidMentionsOffendingNode) {
  std::vector<Value> v{200, 105, 100, 95, 50};
  const auto why = Oracle::explain_invalid(v, 2, 0.1, {1, 2});
  EXPECT_NE(why.find("node 0"), std::string::npos);
  EXPECT_EQ(Oracle::explain_invalid(v, 2, 0.1, {0, 1}), "");
}

TEST(Oracle, ExactModeRequiresExactSet) {
  std::vector<Value> v{10, 20, 30, 40};
  EXPECT_TRUE(Oracle::output_valid(v, 2, 0.0, {2, 3}));
  EXPECT_FALSE(Oracle::output_valid(v, 2, 0.0, {1, 3}));
}

TEST(Oracle, TiesAtBoundaryInterchangeableAtEpsZero) {
  std::vector<Value> v{10, 10, 5};
  // k=1: vk = 10 (node 0 by tie-break); node 1 also has value 10 == vk,
  // so {1} is an acceptable output even in exact mode (the paper breaks
  // ties by identifier; both singletons are valid filter-based outputs).
  EXPECT_TRUE(Oracle::output_valid(v, 1, 0.0, {0}));
  EXPECT_TRUE(Oracle::output_valid(v, 1, 0.0, {1}));
  EXPECT_FALSE(Oracle::output_valid(v, 1, 0.0, {2}));
}

class SigmaParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SigmaParam, SigmaCountsExactlyTheBand) {
  const std::size_t sigma = GetParam();
  // sigma nodes at value 100, the rest far below.
  std::vector<Value> v(sigma + 5, 1);
  for (std::size_t i = 0; i < sigma; ++i) v[i] = 100;
  EXPECT_EQ(Oracle::sigma(v, 1, 0.1), sigma);
}

INSTANTIATE_TEST_SUITE_P(Bands, SigmaParam, ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace topkmon
