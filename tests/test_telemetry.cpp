// Telemetry subsystem tests: registry concurrency, profiler nesting against
// a manual clock, timeseries downsampling invariants, export smoke, and the
// non-perturbation guarantee (attaching telemetry leaves every deterministic
// run counter bit-identical).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace topkmon::telemetry {
namespace {

// ---------------------------------------------------------------- registry

TEST(MetricsRegistry, RegisterLookupAndUpdate) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("comm.messages");
  const MetricId g = reg.gauge("sim.sigma");
  const MetricId h = reg.histogram("comm.messages_per_step");
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.find("comm.messages"), c);
  EXPECT_EQ(reg.find("nope"), kInvalidMetric);
  EXPECT_EQ(reg.kind(c), MetricKind::kCounter);
  EXPECT_EQ(reg.name(g), "sim.sigma");

  reg.add(c);
  reg.add(c, 41);
  EXPECT_EQ(reg.value(c), 42u);
  reg.set(g, 7);
  reg.set(g, 5);
  EXPECT_EQ(reg.value(g), 5u);
  reg.observe(h, 0);
  reg.observe(h, 3);
  reg.observe(h, 3);
  EXPECT_EQ(reg.hist_count(h), 3u);
  EXPECT_EQ(reg.hist_sum(h), 6u);
  EXPECT_EQ(reg.hist_bucket(h, 0), 1u);                         // v == 0
  EXPECT_EQ(reg.hist_bucket(h, MetricsRegistry::bucket_of(3)), 2u);
}

TEST(MetricsRegistry, ReRegisteringSameNameReturnsSameId) {
  MetricsRegistry reg;
  const MetricId a = reg.counter("comm.messages");
  const MetricId b = reg.counter("comm.messages");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, ResetValuesKeepsRegistrations) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("c");
  const MetricId h = reg.histogram("h");
  reg.add(c, 9);
  reg.observe(h, 4);
  reg.reset_values();
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.value(c), 0u);
  EXPECT_EQ(reg.hist_count(h), 0u);
  EXPECT_EQ(reg.hist_sum(h), 0u);
}

TEST(MetricsRegistry, BucketOfIsLog2) {
  EXPECT_EQ(MetricsRegistry::bucket_of(0), 0u);
  EXPECT_EQ(MetricsRegistry::bucket_of(1), 1u);
  EXPECT_EQ(MetricsRegistry::bucket_of(2), 2u);
  EXPECT_EQ(MetricsRegistry::bucket_of(3), 2u);
  EXPECT_EQ(MetricsRegistry::bucket_of(4), 3u);
  EXPECT_EQ(MetricsRegistry::bucket_of(1023), 10u);
  EXPECT_EQ(MetricsRegistry::bucket_of(1024), 11u);
  EXPECT_EQ(MetricsRegistry::bucket_of(~std::uint64_t{0}),
            kHistogramBuckets - 1);  // saturates at the top bucket
}

// Wait-free hot path: hammer one counter and one histogram from 8 threads;
// every update must land (run under TSan in CI to prove race-freedom too).
TEST(MetricsRegistry, ConcurrentUpdatesAreLossless) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("hammered");
  const MetricId h = reg.histogram("hammered_hist");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&reg, c, h, w] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        reg.add(c);
        reg.observe(h, static_cast<std::uint64_t>(w));
        if (i % 1024 == 0) {
          (void)reg.value(c);  // concurrent reads are legal
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(reg.value(c), kThreads * kPerThread);
  EXPECT_EQ(reg.hist_count(h), kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    bucket_total += reg.hist_bucket(h, b);
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

// ---------------------------------------------------------------- profiler

// Manual clock for deterministic duration tests (ClockFn is a plain function
// pointer, so the fake state is a file-local global).
std::uint64_t g_fake_ns = 0;
std::uint64_t fake_clock() { return g_fake_ns; }

TEST(StepProfiler, ScopedPhaseMeasuresAgainstInjectedClock) {
  g_fake_ns = 100;
  StepProfiler prof(&fake_clock);
  {
    ScopedPhase scope(&prof, Phase::kProtocol);
    g_fake_ns = 135;
  }
  EXPECT_EQ(prof.total_ns(Phase::kProtocol), 35u);
  EXPECT_EQ(prof.calls(Phase::kProtocol), 1u);
  EXPECT_EQ(prof.latency_histogram(Phase::kProtocol)[StepProfiler::bucket_of(35)],
            1u);
  EXPECT_EQ(prof.calls(Phase::kSigma), 0u);
}

TEST(StepProfiler, NestedScopesAttributeInclusiveTime) {
  g_fake_ns = 0;
  StepProfiler prof(&fake_clock);
  {
    ScopedPhase outer(&prof, Phase::kProtocol);  // starts at 0
    g_fake_ns = 30;
    {
      ScopedPhase inner(&prof, Phase::kViolationCollect);  // starts at 30
      g_fake_ns = 50;
    }  // inner: 20 ns
    g_fake_ns = 80;
  }  // outer: 80 ns, inclusive of the nested 20
  EXPECT_EQ(prof.total_ns(Phase::kViolationCollect), 20u);
  EXPECT_EQ(prof.total_ns(Phase::kProtocol), 80u);
  EXPECT_EQ(prof.grand_total_ns(), 100u);  // inclusive sums double-count nests
}

TEST(StepProfiler, NullProfilerScopeIsANoOp) {
  ScopedPhase scope(nullptr, Phase::kSigma);  // must not crash or read a clock
  SUCCEED();
}

TEST(StepProfiler, MergeSumsTotalsCallsAndBuckets) {
  StepProfiler a;
  StepProfiler b;
  a.record(Phase::kSigma, 10);
  a.record(Phase::kSigma, 12);
  b.record(Phase::kSigma, 1000);
  b.record(Phase::kOrderUpdate, 5);
  a.merge(b);
  EXPECT_EQ(a.total_ns(Phase::kSigma), 1022u);
  EXPECT_EQ(a.calls(Phase::kSigma), 3u);
  EXPECT_EQ(a.total_ns(Phase::kOrderUpdate), 5u);
  EXPECT_EQ(a.latency_histogram(Phase::kSigma)[StepProfiler::bucket_of(10)], 2u);
  EXPECT_EQ(a.latency_histogram(Phase::kSigma)[StepProfiler::bucket_of(1000)], 1u);
  a.reset();
  EXPECT_EQ(a.grand_total_ns(), 0u);
}

TEST(StepProfiler, PhaseNamesAreStable) {
  // Exported names are part of the JSON/Prometheus contract.
  EXPECT_STREQ(phase_name(Phase::kGenerator), "generator");
  EXPECT_STREQ(phase_name(Phase::kFaultInject), "fault_inject");
  EXPECT_STREQ(phase_name(Phase::kProtocol), "protocol");
  EXPECT_STREQ(phase_name(Phase::kViolationCollect), "violation_collect");
  EXPECT_STREQ(phase_name(Phase::kOrderUpdate), "order_update");
  EXPECT_STREQ(phase_name(Phase::kSigma), "sigma");
  EXPECT_STREQ(phase_name(Phase::kShardAdvance), "shard_advance");
}

// -------------------------------------------------------------- timeseries

TEST(TimeseriesRecorder, RecordsEveryStepBeforeCapacity) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("c");
  const MetricId g = reg.gauge("g");
  TimeseriesRecorder ts(8);
  ts.add_channel("c", c, reg);
  ts.add_channel("g", g, reg);
  for (std::uint64_t t = 0; t < 6; ++t) {
    reg.add(c, 10);
    reg.set(g, t * t);
    ts.sample(reg, t);
  }
  EXPECT_EQ(ts.size(), 6u);
  EXPECT_EQ(ts.stride(), 1u);
  for (std::size_t r = 0; r < ts.size(); ++r) {
    EXPECT_EQ(ts.step_at(r), r);
    EXPECT_EQ(ts.value_at(r, 0), (r + 1) * 10);  // cumulative counter
    EXPECT_EQ(ts.value_at(r, 1), r * r);         // instantaneous gauge
  }
}

TEST(TimeseriesRecorder, DownsamplingInvariants) {
  MetricsRegistry reg;
  const MetricId g = reg.gauge("step_echo");
  TimeseriesRecorder ts(8);
  ts.add_channel("step_echo", g, reg);
  constexpr std::uint64_t kSteps = 1000;
  for (std::uint64_t t = 0; t < kSteps; ++t) {
    reg.set(g, t);
    ts.sample(reg, t);
  }
  // Row count bounded, stride a power of two.
  EXPECT_LE(ts.size(), ts.capacity());
  EXPECT_GT(ts.size(), 0u);
  EXPECT_EQ(ts.stride() & (ts.stride() - 1), 0u);
  // Retained steps are exactly the leading multiples of the stride, and each
  // surviving row still carries the value observed when it was recorded.
  for (std::size_t r = 0; r < ts.size(); ++r) {
    EXPECT_EQ(ts.step_at(r), r * ts.stride());
    EXPECT_EQ(ts.value_at(r, 0), ts.step_at(r));
  }
  // The whole run is covered: the last retained step is within one stride of
  // the end.
  EXPECT_GE(ts.step_at(ts.size() - 1) + ts.stride(), kSteps);
}

TEST(TimeseriesRecorder, ResetKeepsChannelsAndReArmsStride) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("c");
  TimeseriesRecorder ts(4);
  ts.add_channel("c", c, reg);
  for (std::uint64_t t = 0; t < 100; ++t) {
    ts.sample(reg, t);
  }
  EXPECT_GT(ts.stride(), 1u);
  ts.reset();
  EXPECT_EQ(ts.size(), 0u);
  EXPECT_EQ(ts.stride(), 1u);
  EXPECT_EQ(ts.channel_count(), 1u);
  ts.sample(reg, 0);
  EXPECT_EQ(ts.size(), 1u);
}

TEST(TimeseriesRecorder, OddCapacityRoundsUpEven) {
  TimeseriesRecorder ts(7);
  EXPECT_EQ(ts.capacity(), 8u);
  TimeseriesRecorder tiny(0);
  EXPECT_EQ(tiny.capacity(), 2u);
}

// ------------------------------------------------------------------ export

TEST(TelemetryExport, JsonCarriesSchemaMetricsPhasesAndRows) {
  TelemetrySink sink(8);
  MetricsRegistry& reg = sink.registry();
  const MetricId c = reg.counter("comm.messages");
  const MetricId h = reg.histogram("comm.messages_per_step");
  sink.timeseries().add_channel("comm.messages", c, reg);
  reg.add(c, 123);
  reg.observe(h, 9);
  sink.profiler().record(Phase::kSigma, 512);
  sink.timeseries().sample(reg, 0);

  const std::string json = to_json(sink, "unit_test");
  EXPECT_NE(json.find("\"schema\": \"topkmon.telemetry.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"source\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("comm.messages"), std::string::npos);
  EXPECT_NE(json.find("123"), std::string::npos);
  EXPECT_NE(json.find("\"sigma\""), std::string::npos);
  EXPECT_NE(json.find("\"timeseries\""), std::string::npos);
  // Quiet phases are omitted.
  EXPECT_EQ(json.find("\"fault_inject\""), std::string::npos);
}

TEST(TelemetryExport, PrometheusExposesMetricsAndPhaseSeries) {
  TelemetrySink sink;
  MetricsRegistry& reg = sink.registry();
  reg.add(reg.counter("comm.messages"), 5);
  reg.observe(reg.histogram("comm.messages_per_step"), 3);
  sink.profiler().record(Phase::kProtocol, 64);

  const std::string prom = to_prometheus(sink, "unit_test");
  EXPECT_NE(prom.find("# TYPE topkmon_comm_messages counter"), std::string::npos);
  EXPECT_NE(prom.find("topkmon_comm_messages{source=\"unit_test\"} 5"),
            std::string::npos);
  EXPECT_NE(
      prom.find("topkmon_comm_messages_per_step_count{source=\"unit_test\"} 1"),
      std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find(
                "topkmon_phase_total_ns{source=\"unit_test\", phase=\"protocol\"} 64"),
            std::string::npos);
}

TEST(TelemetrySink, MergedProfilerSumsMainAndShards) {
  TelemetrySink sink;
  sink.profiler().record(Phase::kGenerator, 10);
  sink.resize_shard_profilers(2);
  sink.shard_profiler(0).record(Phase::kShardAdvance, 100);
  sink.shard_profiler(1).record(Phase::kShardAdvance, 200);
  const StepProfiler merged = sink.merged_profiler();
  EXPECT_EQ(merged.total_ns(Phase::kGenerator), 10u);
  EXPECT_EQ(merged.total_ns(Phase::kShardAdvance), 300u);
  EXPECT_EQ(merged.calls(Phase::kShardAdvance), 2u);
  sink.reset();
  EXPECT_EQ(sink.merged_profiler().grand_total_ns(), 0u);
}

// --------------------------------------------------- non-perturbation check

ValueVector random_values(std::size_t n, Rng& rng) {
  ValueVector v(n);
  for (auto& x : v) x = 100000 + rng.below(100000);
  return v;
}

// Acceptance criterion: attaching a sink must leave every deterministic run
// counter bit-identical — publish_telemetry only mirrors existing counters
// (no RNG draw, no message, no allocation).
TEST(TelemetryIntegration, AttachedSinkLeavesCountersBitIdentical) {
  SimConfig cfg;
  cfg.k = 4;
  cfg.epsilon = 0.1;
  cfg.seed = 21;
  cfg.window = 24;
  Simulator plain(cfg, 128, make_protocol("combined"));
  Simulator instrumented(cfg, 128, make_protocol("combined"));
  TelemetrySink sink;
  instrumented.attach_telemetry(&sink);

  Rng rng(77);
  for (int t = 0; t < 200; ++t) {
    const ValueVector v = random_values(128, rng);
    plain.step_with(v);
    instrumented.step_with(v);
  }
  const RunResult a = plain.result();
  const RunResult b = instrumented.result();
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.node_to_server, b.node_to_server);
  EXPECT_EQ(a.server_to_node, b.server_to_node);
  EXPECT_EQ(a.broadcasts, b.broadcasts);
  EXPECT_EQ(a.by_tag, b.by_tag);
  EXPECT_EQ(a.max_rounds_per_step, b.max_rounds_per_step);
  EXPECT_EQ(a.max_sigma, b.max_sigma);
  EXPECT_EQ(a.window_expirations, b.window_expirations);

  // And the registry mirror agrees with the run result.
  const MetricsRegistry& reg = sink.registry();
  EXPECT_EQ(sink.registry().value(reg.find("comm.messages")), b.messages);
  EXPECT_EQ(sink.registry().value(reg.find("window.expirations")),
            b.window_expirations);
  if (kTelemetryEnabled) {
    EXPECT_GT(sink.profiler().calls(Phase::kProtocol), 0u);
  }
  EXPECT_GT(sink.timeseries().size(), 0u);
}

}  // namespace
}  // namespace topkmon::telemetry
