#include "protocols/dense_protocol.hpp"

#include <gtest/gtest.h>

#include "protocols/combined.hpp"
#include "sim/simulator.hpp"
#include "streams/oscillating.hpp"
#include "streams/registry.hpp"
#include "streams/trace_file.hpp"

namespace topkmon {
namespace {

SimConfig strict_cfg(std::size_t k, double eps, std::uint64_t seed) {
  SimConfig cfg;
  cfg.k = k;
  cfg.epsilon = eps;
  cfg.seed = seed;
  cfg.strict = true;
  return cfg;
}

// DenseComponent is exercised through CombinedMonitor (the Theorem 5.8
// driver), which enters dense mode exactly when v_{k+1} >= (1-eps)v_k.

TEST(Dense, CombinedEntersDenseModeOnDenseStream) {
  OscillatingConfig osc;
  osc.n = 16;
  osc.k = 4;
  osc.epsilon = 0.15;
  osc.sigma = 8;
  auto protocol = std::make_unique<CombinedMonitor>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(4, 0.15, 3), std::make_unique<OscillatingStream>(osc),
                std::move(protocol));
  sim.step();
  EXPECT_EQ(proto->mode(), CombinedMonitor::Mode::kDense);
  EXPECT_GE(proto->dense_entries(), 1u);
}

TEST(Dense, RolePartitionIsConsistentAtStart) {
  OscillatingConfig osc;
  osc.n = 20;
  osc.k = 5;
  osc.epsilon = 0.2;
  osc.sigma = 10;
  auto protocol = std::make_unique<CombinedMonitor>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(5, 0.2, 5), std::make_unique<OscillatingStream>(osc),
                std::move(protocol));
  sim.step();
  ASSERT_EQ(proto->mode(), CombinedMonitor::Mode::kDense);
  const auto& dense = proto->dense();
  const double z = dense.pivot_z();
  std::size_t v1 = 0, v2 = 0, v3 = 0;
  for (NodeId i = 0; i < 20; ++i) {
    const double v = static_cast<double>(sim.context().nodes()[i].value());
    switch (dense.role(i)) {
      case DenseComponent::Role::kV1:
        ++v1;
        EXPECT_GT(v * (1.0 - 0.2), z) << "V1 must be clearly larger";
        break;
      case DenseComponent::Role::kV2:
        ++v2;
        break;
      case DenseComponent::Role::kV3:
        ++v3;
        EXPECT_LT(v, (1.0 - 0.2) * z + 1e-9) << "V3 must be clearly smaller";
        break;
    }
  }
  EXPECT_EQ(v1 + v2 + v3, 20u);
  EXPECT_GE(v2, 1u);
}

TEST(Dense, StrictOnOscillatingStreams) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    OscillatingConfig osc;
    osc.n = 18;
    osc.k = 4;
    osc.epsilon = 0.1;
    osc.sigma = 9;
    Simulator sim(strict_cfg(4, 0.1, seed), std::make_unique<OscillatingStream>(osc),
                  std::make_unique<CombinedMonitor>());
    sim.run(300);
    SUCCEED();
  }
}

TEST(Dense, SilentWhenNeighborhoodQuiet) {
  // A dense configuration that never changes costs nothing after start-up.
  std::vector<ValueVector> rows(40, ValueVector{100, 99, 98, 97, 10, 9});
  auto protocol = std::make_unique<CombinedMonitor>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(2, 0.1, 7), std::make_unique<TraceFileStream>(rows),
                std::move(protocol));
  sim.step();
  ASSERT_EQ(proto->mode(), CombinedMonitor::Mode::kDense);
  const auto after_start = sim.context().stats().total();
  sim.run(39);
  EXPECT_EQ(sim.context().stats().total(), after_start);
}

TEST(Dense, ScriptedS1Promotion) {
  // Node 2 oscillates above u_r then above z/(1-eps): it must end in V1.
  // Layout: k=2; nodes 0,1 anchors at 100; node 2 starts at 99 (V2);
  // nodes 3,4 low.
  std::vector<ValueVector> rows;
  rows.push_back({100, 100, 99, 10, 9});
  rows.push_back({100, 100, 120, 10, 9});  // above u_r (<=111) -> S1
  rows.push_back({100, 100, 140, 10, 9});  // above z/(1-eps)=111.1 -> V1
  for (int t = 0; t < 5; ++t) rows.push_back({100, 100, 140, 10, 9});
  auto protocol = std::make_unique<CombinedMonitor>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(2, 0.1, 11), std::make_unique<TraceFileStream>(rows),
                std::move(protocol));
  for (std::size_t t = 0; t < rows.size(); ++t) sim.step();
  if (proto->mode() == CombinedMonitor::Mode::kDense) {
    EXPECT_EQ(proto->dense().role(2), DenseComponent::Role::kV1);
    // A node certified clearly-larger must be in the output.
    const auto& out = proto->output();
    EXPECT_NE(std::find(out.begin(), out.end(), 2u), out.end());
  }
}

TEST(Dense, ScriptedDemotionToV3) {
  // Node 2 drops below (1-eps)z: must leave the candidate set.
  std::vector<ValueVector> rows;
  rows.push_back({100, 100, 99, 98, 9});
  rows.push_back({100, 100, 50, 98, 9});  // far below (1-eps)z = 90
  for (int t = 0; t < 5; ++t) rows.push_back({100, 100, 50, 98, 9});
  auto protocol = std::make_unique<CombinedMonitor>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(2, 0.1, 13), std::make_unique<TraceFileStream>(rows),
                std::move(protocol));
  for (std::size_t t = 0; t < rows.size(); ++t) sim.step();
  const auto& out = proto->output();
  EXPECT_EQ(std::find(out.begin(), out.end(), 2u), out.end());
}

TEST(Dense, SubprotocolTriggersOnFlipFlop) {
  // Node 2 goes above u_r (-> S1) then below l_r (-> S1 ∩ S2 -> SUB).
  std::vector<ValueVector> rows;
  rows.push_back({100, 100, 100, 98, 9});
  rows.push_back({100, 100, 108, 98, 9});   // above u_r (~105.6) -> S1,
                                            // but below z/(1-eps) (111.1)
  rows.push_back({100, 100, 91, 98, 9});    // below l_r (~95) -> S2 -> SUB
  for (int t = 0; t < 10; ++t) rows.push_back({100, 100, 91, 98, 9});
  auto protocol = std::make_unique<CombinedMonitor>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(2, 0.1, 17), std::make_unique<TraceFileStream>(rows),
                std::move(protocol));
  for (std::size_t t = 0; t < rows.size(); ++t) sim.step();
  if (proto->dense_entries() > 0) {
    EXPECT_GE(proto->dense().sub_calls(), 1u);
  }
}

TEST(Dense, ChurnCostIndependentOfDeltaScale) {
  // The dense machinery works on [(1-eps)z, z]; scaling all values by 2^10
  // grows log(eps*z) only linearly in the exponent.
  auto run_messages = [&](Value band_top) {
    OscillatingConfig osc;
    osc.n = 16;
    osc.k = 4;
    osc.epsilon = 0.1;
    osc.sigma = 8;
    osc.band_top = band_top;
    Simulator sim(strict_cfg(4, 0.1, 23), std::make_unique<OscillatingStream>(osc),
                  std::make_unique<CombinedMonitor>());
    return sim.run(200).messages;
  };
  const auto small = run_messages(1 << 10);
  const auto large = run_messages(Value{1} << 30);
  EXPECT_LT(large, small * 8u) << "cost must scale ~log(eps z), not z";
}

class DenseGrid
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, double>> {
};

TEST_P(DenseGrid, StrictAcrossSigmaKEps) {
  const auto [sigma, k, eps] = GetParam();
  OscillatingConfig osc;
  osc.n = 2 * sigma + k + 2;
  osc.k = k;
  osc.epsilon = eps;
  osc.sigma = sigma;
  Simulator sim(strict_cfg(k, eps, 100 + sigma * 7 + k),
                std::make_unique<OscillatingStream>(osc),
                std::make_unique<CombinedMonitor>());
  sim.run(200);
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DenseGrid,
    ::testing::Values(std::make_tuple(2, 1, 0.1), std::make_tuple(4, 2, 0.1),
                      std::make_tuple(6, 6, 0.15), std::make_tuple(8, 3, 0.2),
                      std::make_tuple(12, 4, 0.05), std::make_tuple(3, 5, 0.3)));

}  // namespace
}  // namespace topkmon
