// Theorem 5.1: the adaptive adversary forces any filter-based online
// algorithm to pay ~(σ − k) messages per phase while the offline optimum
// pays at most k + 1.
#include <gtest/gtest.h>

#include "offline/opt.hpp"
#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/lb_adversary.hpp"

namespace topkmon {
namespace {

struct LbOutcome {
  double online_messages = 0;
  double opt_phases = 0;
  double phases = 0;
  double drops = 0;
};

LbOutcome run_lb(const std::string& protocol, std::size_t n, std::size_t k,
                 std::size_t sigma, double eps, std::uint64_t seed,
                 TimeStep steps) {
  LbAdversaryConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.sigma = sigma;
  cfg.epsilon = eps;
  auto stream = std::make_unique<LbAdversaryStream>(cfg);
  auto* adversary = stream.get();
  SimConfig sim_cfg;
  sim_cfg.k = k;
  sim_cfg.epsilon = eps;
  sim_cfg.seed = seed;
  sim_cfg.strict = true;
  sim_cfg.record_history = true;
  Simulator sim(sim_cfg, std::move(stream), make_protocol(protocol));
  const auto run = sim.run(steps);
  const auto opt = OfflineOpt::approx(sim.history(), k, eps);
  LbOutcome out;
  out.online_messages = static_cast<double>(run.messages);
  out.opt_phases = static_cast<double>(opt.phases);
  out.phases = static_cast<double>(adversary->phases_completed());
  out.drops = static_cast<double>(adversary->drops_performed());
  return out;
}

TEST(LowerBound, AdversaryForcesDropEveryStep) {
  const auto out = run_lb("combined", 16, 3, 12, 0.2, 1, 200);
  EXPECT_GE(out.phases, 10.0);
  // Each phase performs sigma - k = 9 drops.
  EXPECT_GE(out.drops, out.phases * 9.0);
}

TEST(LowerBound, OnlinePaysPerDropOptPaysPerPhase) {
  const auto out = run_lb("combined", 16, 3, 12, 0.2, 2, 300);
  ASSERT_GT(out.opt_phases, 0.0);
  // OPT needs only ~1 phase boundary per adversary phase (or less).
  EXPECT_LE(out.opt_phases, out.phases + 2.0);
  // Online pays at least one message per drop.
  EXPECT_GE(out.online_messages, out.drops);
}

TEST(LowerBound, RatioGrowsLinearlyInSigma) {
  // Ω(σ/k): the per-phase ratio is (restart overhead) + c·(σ − k) — the
  // additive term must grow by at least ~one message per extra forced drop.
  auto ratio = [&](std::size_t sigma) {
    const auto out = run_lb("combined", 64, 4, sigma, 0.2, 3, 400);
    return out.online_messages / std::max(1.0, out.opt_phases);
  };
  const double r8 = ratio(8);
  const double r32 = ratio(32);
  EXPECT_GT(r32, r8 + (32.0 - 8.0) * 0.8) << "ratio must scale with sigma";
}

TEST(LowerBound, HoldsForEveryOnlineProtocol) {
  // The bound is universal: every filter-based monitor pays per drop.
  for (const char* protocol : {"combined", "half_error", "topk_protocol"}) {
    const auto out = run_lb(protocol, 12, 2, 8, 0.25, 4, 150);
    EXPECT_GE(out.online_messages, out.drops) << protocol;
  }
}

TEST(LowerBound, StrictCorrectnessUnderAdversary) {
  // Strict mode in run_lb already asserts output validity; exercise a
  // couple of parameter corners.
  run_lb("combined", 10, 1, 5, 0.1, 5, 100);
  run_lb("half_error", 10, 4, 9, 0.4, 6, 100);
  SUCCEED();
}

}  // namespace
}  // namespace topkmon
