#include "util/summary.hpp"

#include <gtest/gtest.h>

namespace topkmon {
namespace {

TEST(StreamingMoments, EmptyIsZero) {
  StreamingMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
}

TEST(StreamingMoments, KnownSequence) {
  StreamingMoments m;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.add(x);
  EXPECT_EQ(m.count(), 8u);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
  EXPECT_DOUBLE_EQ(m.sum(), 40.0);
}

TEST(StreamingMoments, SingleValue) {
  StreamingMoments m;
  m.add(3.5);
  EXPECT_DOUBLE_EQ(m.mean(), 3.5);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.min(), 3.5);
  EXPECT_DOUBLE_EQ(m.max(), 3.5);
}

TEST(SampleSet, QuantilesExact) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.5);
}

TEST(SampleSet, AddAfterQuantileResorts) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
}

TEST(SampleSet, MeanStd) {
  SampleSet s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev() * s.stddev(), 32.0 / 7.0, 1e-12);
}

TEST(SampleSet, FormatMeanSd) {
  SampleSet s;
  s.add(1.0);
  s.add(3.0);
  const auto str = format_mean_sd(s, 1);
  EXPECT_EQ(str, "2.0±1.4");
}

TEST(SampleSet, EmptySafe) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

}  // namespace
}  // namespace topkmon
