#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "model/oracle.hpp"
#include "streams/lb_adversary.hpp"
#include "streams/oscillating.hpp"
#include "streams/phase_torture.hpp"
#include "streams/random_walk.hpp"
#include "streams/registry.hpp"
#include "streams/sine_noise.hpp"
#include "streams/trace_file.hpp"
#include "streams/uniform.hpp"
#include "streams/zipf_bursty.hpp"

namespace topkmon {
namespace {

AdversaryView dummy_view(const std::vector<Node>& nodes, const OutputSet& out,
                         std::size_t k, double eps) {
  return AdversaryView{{nodes.data(), nodes.size()}, &out, k, eps};
}

// ---- generic properties over every registered kind ------------------------

class StreamKindTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StreamKindTest, DeterministicForSameSeed) {
  StreamSpec spec;
  spec.kind = GetParam();
  spec.n = 12;
  spec.k = 3;
  spec.sigma = 6;
  spec.delta = 1 << 16;
  auto g1 = make_stream(spec);
  auto g2 = make_stream(spec);
  Rng r1(77), r2(77);
  ValueVector v1(g1->n()), v2(g2->n());
  g1->init(v1, r1);
  g2->init(v2, r2);
  EXPECT_EQ(v1, v2);
  std::vector<Node> nodes(g1->n());
  OutputSet out{0, 1, 2};
  for (TimeStep t = 1; t < 50; ++t) {
    g1->step(t, dummy_view(nodes, out, spec.k, spec.epsilon), v1, r1);
    g2->step(t, dummy_view(nodes, out, spec.k, spec.epsilon), v2, r2);
    EXPECT_EQ(v1, v2) << "kind=" << GetParam() << " t=" << t;
  }
}

TEST_P(StreamKindTest, ValuesWithinObservableRange) {
  StreamSpec spec;
  spec.kind = GetParam();
  spec.n = 12;
  spec.k = 3;
  spec.sigma = 6;
  spec.delta = 1 << 16;
  auto g = make_stream(spec);
  Rng rng(123);
  ValueVector v(g->n());
  g->init(v, rng);
  std::vector<Node> nodes(g->n());
  OutputSet out{0, 1, 2};
  for (TimeStep t = 1; t < 200; ++t) {
    g->step(t, dummy_view(nodes, out, spec.k, spec.epsilon), v, rng);
    for (const auto x : v) {
      EXPECT_LE(x, kMaxObservableValue);
    }
  }
}

TEST_P(StreamKindTest, CloneIsIndependentAndEquivalent) {
  StreamSpec spec;
  spec.kind = GetParam();
  spec.n = 8;
  spec.k = 2;
  spec.sigma = 4;
  auto g = make_stream(spec);
  auto c = g->clone();
  EXPECT_EQ(g->n(), c->n());
  EXPECT_EQ(g->name(), c->name());
  Rng r1(5), r2(5);
  ValueVector v1(g->n()), v2(c->n());
  g->init(v1, r1);
  c->init(v2, r2);
  EXPECT_EQ(v1, v2);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, StreamKindTest,
                         ::testing::Values("uniform", "random_walk", "oscillating",
                                           "zipf_bursty", "sine_noise",
                                           "lb_adversary", "phase_torture"));

TEST(StreamRegistry, UnknownKindThrows) {
  StreamSpec spec;
  spec.kind = "nope";
  EXPECT_THROW(make_stream(spec), std::runtime_error);
}

TEST(StreamRegistry, KindListMatchesFactories) {
  for (const auto& kind : stream_kinds()) {
    if (kind == "trace_file") continue;  // needs a file
    StreamSpec spec;
    spec.kind = kind;
    spec.n = 8;
    spec.k = 2;
    spec.sigma = 4;
    EXPECT_NO_THROW(make_stream(spec)) << kind;
  }
}

// ---- per-generator behaviour ----------------------------------------------

TEST(RandomWalk, StepsBounded) {
  RandomWalkConfig cfg;
  cfg.n = 4;
  cfg.lo = 100;
  cfg.hi = 200;
  cfg.max_step = 5;
  RandomWalkStream g(cfg);
  Rng rng(3);
  ValueVector v(4);
  g.init(v, rng);
  ValueVector prev = v;
  std::vector<Node> nodes(4);
  OutputSet out{0};
  for (TimeStep t = 1; t < 500; ++t) {
    g.step(t, dummy_view(nodes, out, 1, 0.1), v, rng);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_GE(v[i], 100u);
      EXPECT_LE(v[i], 200u);
      const auto diff = v[i] > prev[i] ? v[i] - prev[i] : prev[i] - v[i];
      EXPECT_LE(diff, 2 * cfg.max_step);  // reflection can double the step
    }
    prev = v;
  }
}

TEST(RandomWalk, SpreadInitIsEvenAndSorted) {
  RandomWalkConfig cfg;
  cfg.n = 10;
  cfg.lo = 0;
  cfg.hi = 1000;
  cfg.spread_init = true;
  RandomWalkStream g(cfg);
  Rng rng(3);
  ValueVector v(10);
  g.init(v, rng);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_GE(v.front(), 0u);
  EXPECT_LE(v.back(), 1000u);
}

TEST(Oscillating, SigmaIsExactEveryStep) {
  OscillatingConfig cfg;
  cfg.n = 24;
  cfg.k = 5;
  cfg.epsilon = 0.1;
  cfg.sigma = 9;
  OscillatingStream g(cfg);
  Rng rng(21);
  ValueVector v(cfg.n);
  g.init(v, rng);
  std::vector<Node> nodes(cfg.n);
  OutputSet out{0, 1, 2, 3, 4};
  for (TimeStep t = 0; t < 300; ++t) {
    if (t > 0) g.step(t, dummy_view(nodes, out, cfg.k, cfg.epsilon), v, rng);
    EXPECT_EQ(Oracle::sigma(v, cfg.k, cfg.epsilon), cfg.sigma) << "t=" << t;
  }
}

TEST(Oscillating, DriftingBandKeepsSigmaExact) {
  OscillatingConfig cfg;
  cfg.n = 24;
  cfg.k = 5;
  cfg.epsilon = 0.1;
  cfg.sigma = 9;
  cfg.drift = 0.05;
  OscillatingStream g(cfg);
  Rng rng(77);
  ValueVector v(cfg.n);
  g.init(v, rng);
  std::vector<Node> nodes(cfg.n);
  OutputSet out{0, 1, 2, 3, 4};
  Value min_top = cfg.band_top, max_top = 0;
  for (TimeStep t = 0; t < 400; ++t) {
    if (t > 0) g.step(t, dummy_view(nodes, out, cfg.k, cfg.epsilon), v, rng);
    EXPECT_EQ(Oracle::sigma(v, cfg.k, cfg.epsilon), cfg.sigma) << "t=" << t;
    min_top = std::min(min_top, g.band_hi());
    max_top = std::max(max_top, g.band_hi());
  }
  EXPECT_LT(min_top, max_top) << "band must actually move";
  EXPECT_GE(min_top, cfg.band_top / 2);
  EXPECT_LE(max_top, cfg.band_top);
}

TEST(Oscillating, SigmaSmallerThanKAlsoWorks) {
  OscillatingConfig cfg;
  cfg.n = 24;
  cfg.k = 8;
  cfg.epsilon = 0.2;
  cfg.sigma = 3;
  OscillatingStream g(cfg);
  Rng rng(22);
  ValueVector v(cfg.n);
  g.init(v, rng);
  for (TimeStep t = 0; t < 100; ++t) {
    std::vector<Node> nodes(cfg.n);
    OutputSet out;
    if (t > 0) g.step(t, dummy_view(nodes, out, cfg.k, cfg.epsilon), v, rng);
    EXPECT_EQ(Oracle::sigma(v, cfg.k, cfg.epsilon), cfg.sigma) << "t=" << t;
    // The k-th largest must be an oscillator value, inside the band.
    const Value vk = Oracle::kth_value(v, cfg.k);
    EXPECT_GE(vk, g.band_lo());
    EXPECT_LE(vk, g.band_hi());
  }
}

TEST(ZipfBursty, SkewedBaseLoads) {
  ZipfBurstyConfig cfg;
  cfg.n = 16;
  cfg.noise = 0.0;
  cfg.burst_prob = 0.0;
  ZipfBurstyStream g(cfg);
  Rng rng(31);
  ValueVector v(cfg.n);
  g.init(v, rng);
  EXPECT_GT(v[0], v[5]);
  EXPECT_GT(v[1], v[10]);
}

TEST(SineNoise, StaysNearMidWithoutNoise) {
  SineNoiseConfig cfg;
  cfg.n = 4;
  cfg.mid = 10000;
  cfg.amplitude = 1000;
  cfg.noise = 0;
  SineNoiseStream g(cfg);
  Rng rng(41);
  ValueVector v(4);
  g.init(v, rng);
  std::vector<Node> nodes(4);
  OutputSet out{0};
  for (TimeStep t = 1; t < 600; ++t) {
    g.step(t, dummy_view(nodes, out, 1, 0.1), v, rng);
    for (const auto x : v) {
      EXPECT_GE(x, 9000u);
      EXPECT_LE(x, 11000u);
    }
  }
}

TEST(TraceFile, ParsesAndReplays) {
  const auto rows = parse_trace_csv("1,2,3\n4,5,6\n7,8,9\n");
  ASSERT_EQ(rows.size(), 3u);
  TraceFileStream g(rows);
  EXPECT_EQ(g.n(), 3u);
  Rng rng(1);
  ValueVector v(3);
  g.init(v, rng);
  EXPECT_EQ(v, (ValueVector{1, 2, 3}));
  std::vector<Node> nodes(3);
  OutputSet out{0};
  g.step(1, dummy_view(nodes, out, 1, 0.1), v, rng);
  EXPECT_EQ(v, (ValueVector{4, 5, 6}));
  g.step(2, dummy_view(nodes, out, 1, 0.1), v, rng);
  EXPECT_EQ(v, (ValueVector{7, 8, 9}));
  // Exhausted: repeats last row.
  g.step(3, dummy_view(nodes, out, 1, 0.1), v, rng);
  EXPECT_EQ(v, (ValueVector{7, 8, 9}));
}

TEST(TraceFile, RejectsMalformedCsv) {
  EXPECT_THROW(parse_trace_csv(""), std::runtime_error);
  EXPECT_THROW(parse_trace_csv("1,2\n3\n"), std::runtime_error);
  EXPECT_THROW(parse_trace_csv("1,x\n"), std::runtime_error);
}

TEST(TraceFile, SkipsCommentsAndBlankLines) {
  const auto rows = parse_trace_csv("# header\n\n1,2\n3,4\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (ValueVector{3, 4}));
}

TEST(TraceFile, RoundTripThroughDisk) {
  const std::string path = ::testing::TempDir() + "/topkmon_trace.csv";
  std::vector<ValueVector> rows{{10, 20}, {30, 40}};
  write_trace(path, rows);
  TraceFileStream g(path);
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_EQ(g.n(), 2u);
}

}  // namespace
}  // namespace topkmon
