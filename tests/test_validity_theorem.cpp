// Property test of the load-bearing derivation (DESIGN.md §6 and
// offline/feasibility.hpp): for ANY output set F of size k and ANY filter
// assignment that is valid per Observation 2.2, if every node's value lies
// inside its filter then F is a correct ε-output per the Sect. 2
// definition. This theorem is what makes (a) the strict-mode validator
// sufficient and (b) the offline OPT's feasibility condition exact — so we
// fuzz it hard.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "model/filter.hpp"
#include "model/oracle.hpp"
#include "util/rng.hpp"

namespace topkmon {
namespace {

struct Instance {
  std::vector<Value> values;
  std::vector<Filter> filters;
  OutputSet output;
  double epsilon;
};

// Builds a random *valid* instance: choose F, choose a separator band, give
// F-nodes filters with lo >= (1-eps)*max-complement-hi, then draw values
// inside the filters.
Instance random_valid_instance(Rng& rng) {
  Instance inst;
  const std::size_t n = 2 + rng.below(12);
  const std::size_t k = 1 + rng.below(n - 1);
  inst.epsilon = 0.05 * static_cast<double>(rng.below(10));  // 0 .. 0.45

  std::vector<NodeId> ids(n);
  for (NodeId i = 0; i < n; ++i) ids[i] = i;
  // Random k-subset as output.
  for (std::size_t i = 0; i < n; ++i) {
    std::swap(ids[i], ids[i + rng.below(n - i)]);
  }
  inst.output.assign(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(k));
  std::sort(inst.output.begin(), inst.output.end());
  std::vector<bool> in_out(n, false);
  for (NodeId id : inst.output) in_out[id] = true;

  // Separator m; complement his <= m, output los >= (1-eps)*m.
  const double m = 100.0 + static_cast<double>(rng.below(10000));
  inst.filters.resize(n);
  inst.values.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    if (in_out[i]) {
      const double lo = (1.0 - inst.epsilon) * m + rng.uniform01() * 50.0;
      // Guarantee at least one integer inside the interval.
      const double hi = std::max(lo + rng.uniform01() * 1000.0, std::ceil(lo));
      inst.filters[i] = Filter{lo, hi};
    } else {
      const double hi = m - rng.uniform01() * 50.0;
      const double lo =
          std::min(std::max(0.0, hi - rng.uniform01() * 1000.0), std::floor(hi));
      inst.filters[i] = Filter{lo, hi};
    }
    // Value inside the filter (integer grid).
    const double lo = inst.filters[i].lo;
    const double hi = inst.filters[i].hi;
    const auto vlo = static_cast<Value>(std::ceil(lo));
    const auto vhi = static_cast<Value>(std::floor(hi));
    inst.values[i] = vlo + (vhi > vlo ? rng.below(vhi - vlo + 1) : 0);
  }
  return inst;
}

TEST(ValidityTheorem, ValidFiltersPlusContainmentImplyCorrectOutput) {
  Rng rng(0xABCDEF);
  for (int trial = 0; trial < 5000; ++trial) {
    const Instance inst = random_valid_instance(rng);
    ASSERT_TRUE(filters_valid(inst.filters, inst.output, inst.epsilon))
        << "instance construction must be valid";
    ASSERT_TRUE(all_within(inst.filters,
                           std::span<const Value>(inst.values.data(),
                                                  inst.values.size())));
    EXPECT_TRUE(Oracle::output_valid(inst.values, inst.output.size(), inst.epsilon,
                                     inst.output))
        << Oracle::explain_invalid(inst.values, inst.output.size(), inst.epsilon,
                                   inst.output);
  }
}

TEST(ValidityTheorem, BrokenValidityCanBreakOutput) {
  // Sanity for the test itself: if we *violate* Obs. 2.2 by a wide margin,
  // incorrect outputs do occur — i.e. the property above is not vacuous.
  std::vector<Value> values{10, 1000};
  std::vector<Filter> filters{Filter{5.0, 50.0}, Filter{500.0, 2000.0}};
  OutputSet output{0};  // node 0 in output although node 1 is far larger
  EXPECT_FALSE(filters_valid(filters, output, 0.1));
  EXPECT_FALSE(Oracle::output_valid(values, 1, 0.1, output));
}

TEST(ValidityTheorem, TwoFilterOptAssignmentIsValid) {
  // Proposition 2.4's normal form: F1 = [MIN_F, inf), F2 = [0, MAX_out]
  // is a valid filter set exactly when the (★) window condition holds.
  Rng rng(0x1234);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t n = 2 + rng.below(10);
    const std::size_t k = 1 + rng.below(n - 1);
    const double eps = 0.05 * static_cast<double>(rng.below(10));
    std::vector<Value> values(n);
    for (auto& v : values) v = rng.below(1 << 16);
    const OutputSet f = Oracle::top_k(values, k);
    std::vector<bool> in_f(n, false);
    for (NodeId id : f) in_f[id] = true;
    Value min_f = ~Value{0}, max_out = 0;
    bool has_out = false;
    for (NodeId i = 0; i < n; ++i) {
      if (in_f[i]) {
        min_f = std::min(min_f, values[i]);
      } else {
        max_out = std::max(max_out, values[i]);
        has_out = true;
      }
    }
    std::vector<Filter> filters(n);
    for (NodeId i = 0; i < n; ++i) {
      filters[i] = in_f[i] ? Filter::at_least(static_cast<double>(min_f))
                           : Filter::at_most(static_cast<double>(max_out));
    }
    const bool star = !has_out || static_cast<double>(min_f) >=
                                      (1.0 - eps) * static_cast<double>(max_out);
    EXPECT_EQ(filters_valid(filters, f, eps), star);
    if (star) {
      EXPECT_TRUE(Oracle::output_valid(values, k, eps, f));
    }
  }
}

}  // namespace
}  // namespace topkmon
