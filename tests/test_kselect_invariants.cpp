// Property suite for the k-select structure (protocols/kselect_structure):
//   * BandLadder geometry: the width condition lo ≥ (1−ε)·(hi − 1) on every
//     band, gap-free coverage of [0, kMaxObservableValue], and the unit-band
//     degeneracies (ε = 0 exactly; ε too small for kMaxLadderSize).
//   * Answer validity: every rank's estimate stays inside the oracle's
//     ε-neighborhood at every step — and inside the structure's tighter
//     one-sided bound (1−ε)·v_j ≤ est ≤ v_j — across streams and seeds.
//   * White-box invariants I1–I3 after every step: active filters are the
//     node's band clipped at band_hi − 1 with band ≥ floor, inactive filters
//     are [0, act_lo − 1], and the active set never shrinks below k.
//   * W = 1 degeneracy: a 1-step sliding window is the instantaneous run —
//     outputs, estimates and message totals match step by step.
//   * Engine seam: a Q = 1 engine query (share_probes = false, explicit
//     seed) reproduces the standalone Simulator bit-identically, estimates
//     included.
//   * All-zero fault schedule: attaching a no-op FleetSchedule leaves the
//     run bit-identical to the fault-free path.
//   * Offline baseline: the greedy KSelectOpt phase count equals the O(T²)
//     DP minimum on recorded histories and hand-crafted traces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "model/oracle.hpp"
#include "offline/brute_force.hpp"
#include "offline/kselect_opt.hpp"
#include "protocols/kselect_structure.hpp"
#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/registry.hpp"

namespace topkmon {
namespace {

StreamSpec spec_for(const std::string& kind, std::size_t n = 20,
                    std::size_t k = 4, double eps = 0.15) {
  StreamSpec spec;
  spec.kind = kind;
  spec.n = n;
  spec.k = k;
  spec.epsilon = eps;
  spec.delta = 1 << 16;
  spec.walk_step = 96;
  spec.sigma = 8;
  return spec;
}

/// The effective (post-fault, post-window) observation vector the protocol
/// is being validated against.
std::vector<Value> observed_values(const Simulator& sim) {
  std::vector<Value> values;
  values.reserve(sim.context().n());
  for (const Node& node : sim.context().nodes()) values.push_back(node.value());
  return values;
}

// --- BandLadder geometry ----------------------------------------------------

TEST(BandLadder, EveryBandSatisfiesTheWidthCondition) {
  for (const double eps : {0.05, 0.1, 0.15, 0.25, 0.5}) {
    BandLadder ladder;
    ladder.reset(eps);
    ASSERT_FALSE(ladder.unit_bands()) << "eps=" << eps;
    // Walk the ladder band by band: coverage is gap-free (band_hi of one
    // band is band_lo of the next) and every band satisfies (W).
    Value v = 0;
    std::size_t bands = 0;
    while (v <= kMaxObservableValue) {
      const Value lo = ladder.band_lo(v);
      const Value hi = ladder.band_hi(v);
      ASSERT_LE(lo, v) << "eps=" << eps;
      ASSERT_GT(hi, v) << "eps=" << eps;
      EXPECT_GE(static_cast<double>(lo),
                (1.0 - eps) * static_cast<double>(hi - 1))
          << "band [" << lo << ", " << hi << ") violates (W) at eps=" << eps;
      if (hi <= kMaxObservableValue) {
        EXPECT_EQ(ladder.band_lo(hi), hi) << "gap after band at eps=" << eps;
      }
      v = hi;
      ++bands;
      ASSERT_LE(bands, BandLadder::kMaxLadderSize) << "runaway walk";
    }
    EXPECT_EQ(bands, ladder.size()) << "eps=" << eps;
  }
}

TEST(BandLadder, DegeneratesToUnitBands) {
  BandLadder exact;
  exact.reset(0.0);
  EXPECT_TRUE(exact.unit_bands());
  for (const Value v : {Value{0}, Value{1}, Value{12345}, kMaxObservableValue}) {
    EXPECT_EQ(exact.band_lo(v), v);
    EXPECT_EQ(exact.band_hi(v), v + 1);
  }
  // ε so small the ladder would need far more than kMaxLadderSize
  // boundaries to reach 2^48: deterministic fallback to unit bands.
  BandLadder tiny;
  tiny.reset(1e-9);
  EXPECT_TRUE(tiny.unit_bands());
}

// --- step-by-step properties ------------------------------------------------

void check_structure_invariants(const KSelectStructure& proto,
                                const SimContext& ctx) {
  const std::size_t n = ctx.n();
  const Value floor = proto.activation_floor();
  std::size_t active = 0;
  for (NodeId i = 0; i < n; ++i) {
    const Filter& f = ctx.nodes()[i].filter();
    if (proto.is_active(i)) {
      ++active;
      const Value lo = proto.node_band_lo(i);
      ASSERT_GE(lo, floor) << "active node " << i << " below the floor";
      EXPECT_EQ(f.lo, static_cast<double>(lo)) << "node " << i;
      EXPECT_EQ(f.hi, static_cast<double>(proto.ladder().band_hi(lo) - 1))
          << "node " << i;
    } else {
      ASSERT_GT(floor, 0u) << "inactive node " << i << " with floor 0";
      EXPECT_EQ(f.lo, 0.0) << "node " << i;
      EXPECT_EQ(f.hi, static_cast<double>(floor - 1)) << "node " << i;
    }
  }
  EXPECT_EQ(active, proto.active_count());
  EXPECT_GE(active, ctx.k()) << "I3: fewer than k active nodes";
}

class KSelectProperties
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {};

TEST_P(KSelectProperties, EstimatesAndInvariantsHoldAtEveryStep) {
  const auto& [kind, seed] = GetParam();
  const StreamSpec spec = spec_for(kind);
  auto protocol = std::make_unique<KSelectStructure>();
  auto* proto = protocol.get();
  SimConfig cfg;
  cfg.k = spec.k;
  cfg.epsilon = spec.epsilon;
  cfg.seed = seed;
  cfg.strict = true;  // oracle output/filter/k-select validation per step
  Simulator sim(cfg, make_stream(spec), std::move(protocol));
  for (int t = 0; t < 300; ++t) {
    sim.step();
    check_structure_invariants(*proto, sim.context());
    // The structure promises MORE than the symmetric oracle contract:
    // (1−ε)·v_j ≤ estimate ≤ v_j for every rank, in the ε-helpers'
    // multiplication form.
    const std::vector<Value> values = observed_values(sim);
    for (std::size_t j = 1; j <= cfg.k; ++j) {
      const Value est = proto->kselect(j);
      const Value vj = Oracle::kth_value(values, j);
      EXPECT_LE(est, vj) << "j=" << j;
      EXPECT_GE(static_cast<double>(est),
                (1.0 - cfg.epsilon) * static_cast<double>(vj))
          << "j=" << j;
      EXPECT_EQ(Oracle::explain_kselect_invalid(values, j, cfg.epsilon, est), "");
    }
    if (::testing::Test::HasFailure()) {
      FAIL() << "property broken at t=" << t << " (" << kind << ", seed "
             << seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StreamsAndSeeds, KSelectProperties,
    ::testing::Combine(::testing::Values("oscillating", "zipf_bursty",
                                         "random_walk", "sine_noise"),
                       ::testing::Values(1u, 42u, 1337u)));

TEST(KSelectProperties, EpsilonZeroIsExact) {
  const StreamSpec spec = spec_for("random_walk", 16, 3, 0.0);
  auto protocol = std::make_unique<KSelectStructure>();
  auto* proto = protocol.get();
  SimConfig cfg;
  cfg.k = 3;
  cfg.epsilon = 0.0;
  cfg.seed = 7;
  cfg.strict = true;
  Simulator sim(cfg, make_stream(spec), std::move(protocol));
  for (int t = 0; t < 200; ++t) {
    sim.step();
    const std::vector<Value> values = observed_values(sim);
    EXPECT_EQ(proto->output(), Oracle::top_k(values, cfg.k)) << "t=" << t;
    for (std::size_t j = 1; j <= cfg.k; ++j) {
      EXPECT_EQ(proto->kselect(j), Oracle::kth_value(values, j))
          << "t=" << t << " j=" << j;
    }
  }
}

// --- degeneracies and seams --------------------------------------------------

TEST(KSelectProperties, OneStepWindowMatchesInstantaneousRun) {
  // max over the last 1 step IS the instantaneous value; the runs must agree
  // on outputs, estimates and message totals at every step.
  const StreamSpec spec = spec_for("oscillating");
  auto make_sim = [&](std::size_t window) {
    SimConfig cfg;
    cfg.k = spec.k;
    cfg.epsilon = spec.epsilon;
    cfg.seed = 11;
    cfg.strict = true;
    cfg.window = window;
    return std::make_unique<Simulator>(cfg, make_stream(spec),
                                       make_protocol("kselect"));
  };
  auto instant = make_sim(kInfiniteWindow);
  auto windowed = make_sim(1);
  const auto* qi = capability_for(instant->protocol(), QueryKind::kKSelect);
  const auto* qw = capability_for(windowed->protocol(), QueryKind::kKSelect);
  ASSERT_NE(qi, nullptr);
  ASSERT_NE(qw, nullptr);
  for (int t = 0; t < 250; ++t) {
    instant->step();
    windowed->step();
    ASSERT_EQ(instant->protocol().output(), windowed->protocol().output())
        << "t=" << t;
    for (std::size_t j = 1; j <= spec.k; ++j) {
      ASSERT_EQ(qi->kselect(j), qw->kselect(j)) << "t=" << t << " j=" << j;
    }
  }
  EXPECT_EQ(instant->result().messages, windowed->result().messages);
  EXPECT_EQ(instant->result().by_tag, windowed->result().by_tag);
}

TEST(KSelectProperties, EngineQueryMatchesStandaloneSimulator) {
  const StreamSpec spec = spec_for("zipf_bursty", 24, 4);
  const std::uint64_t seed = 99;

  SimConfig sim_cfg;
  sim_cfg.k = spec.k;
  sim_cfg.epsilon = spec.epsilon;
  sim_cfg.seed = seed;
  sim_cfg.strict = true;
  Simulator sim(sim_cfg, make_stream(spec), make_protocol("kselect"));
  const RunResult serial = sim.run(150);

  EngineConfig ecfg;
  ecfg.threads = 1;
  ecfg.seed = seed;
  ecfg.share_probes = false;  // per-query accounting, like a Simulator
  MonitoringEngine engine(ecfg, make_stream(spec));
  QuerySpec q;
  q.protocol = "kselect";
  q.k = spec.k;
  q.epsilon = spec.epsilon;
  q.strict = true;
  q.seed = seed;  // exactly the standalone seed
  const QueryHandle h = engine.add_query(q);
  const EngineStats stats = engine.run(150);

  EXPECT_EQ(stats.queries[h].run.messages, serial.messages);
  EXPECT_EQ(stats.queries[h].run.by_tag, serial.by_tag);
  EXPECT_EQ(engine.output(h), sim.protocol().output());
  const QueryCapabilities* eq = engine.kselect(h);
  const QueryCapabilities* sq = capability_for(sim.protocol(), QueryKind::kKSelect);
  ASSERT_NE(eq, nullptr);
  ASSERT_NE(sq, nullptr);
  for (std::size_t j = 1; j <= spec.k; ++j) {
    EXPECT_EQ(eq->kselect(j), sq->kselect(j)) << "j=" << j;
  }
}

TEST(KSelectProperties, AllZeroFaultScheduleIsBitIdentical) {
  const StreamSpec spec = spec_for("random_walk");
  auto run_with = [&](FleetSchedulePtr faults) {
    SimConfig cfg;
    cfg.k = spec.k;
    cfg.epsilon = spec.epsilon;
    cfg.seed = 23;
    cfg.strict = true;
    cfg.faults = std::move(faults);
    Simulator sim(cfg, make_stream(spec), make_protocol("kselect"));
    const RunResult run = sim.run(200);
    std::vector<Value> estimates;
    const QueryCapabilities* q = capability_for(sim.protocol(), QueryKind::kKSelect);
    for (std::size_t j = 1; j <= spec.k; ++j) estimates.push_back(q->kselect(j));
    return std::tuple<StatsSnapshot, OutputSet, std::vector<Value>>(
        run, sim.protocol().output(), std::move(estimates));
  };
  const auto clean = run_with(nullptr);
  const auto zeroed = run_with(std::make_shared<const FleetSchedule>(spec.n));
  EXPECT_EQ(std::get<0>(clean), std::get<0>(zeroed));
  EXPECT_EQ(std::get<1>(clean), std::get<1>(zeroed));
  EXPECT_EQ(std::get<2>(clean), std::get<2>(zeroed));
}

// --- offline baseline ---------------------------------------------------------

TEST(KSelectOpt, GreedyMatchesTheDpMinimumOnRecordedHistories) {
  for (const std::string kind : {"oscillating", "random_walk", "zipf_bursty"}) {
    for (const double eps : {0.0, 0.1, 0.25}) {
      const StreamSpec spec = spec_for(kind, 12, 3, std::max(eps, 0.05));
      SimConfig cfg;
      cfg.k = 3;
      cfg.epsilon = spec.epsilon;
      cfg.seed = 17;
      cfg.record_history = true;
      Simulator sim(cfg, make_stream(spec), make_protocol("kselect"));
      sim.run(60);
      const KSelectOptReport rep = KSelectOpt::approx(sim.history(), cfg.k, eps);
      EXPECT_EQ(rep.phases, min_kselect_phases_brute(sim.history(), cfg.k, eps))
          << kind << " eps=" << eps;
      EXPECT_EQ(rep.phases, rep.phase_starts.size());
      EXPECT_EQ(rep.messages_lower_bound, rep.phases);
    }
  }
}

TEST(KSelectOpt, HandCraftedTraces) {
  // Constant k-th value: one phase at any ε.
  std::vector<ValueVector> flat(10, ValueVector{100, 90, 80, 70});
  EXPECT_EQ(KSelectOpt::approx(flat, 2, 0.1).phases, 1u);
  EXPECT_EQ(min_kselect_phases_brute(flat, 2, 0.1), 1u);

  // v_2 doubles every row — no window of two rows satisfies (★k) at
  // ε = 0.1, so OPT pays one phase per row.
  std::vector<ValueVector> jumps;
  Value v = 64;
  for (int t = 0; t < 6; ++t, v *= 2) jumps.push_back({v + 1, v, 1, 0});
  EXPECT_EQ(KSelectOpt::approx(jumps, 2, 0.1).phases, jumps.size());
  EXPECT_EQ(min_kselect_phases_brute(jumps, 2, 0.1), jumps.size());

  // ε = 0 degenerates to one phase per distinct v_k run.
  std::vector<ValueVector> runs;
  for (const Value vk : {Value{50}, Value{50}, Value{51}, Value{51}, Value{50}}) {
    runs.push_back({100, vk, 1});
  }
  EXPECT_EQ(KSelectOpt::approx(runs, 2, 0.0).phases, 3u);
  EXPECT_EQ(min_kselect_phases_brute(runs, 2, 0.0), 3u);
}

}  // namespace
}  // namespace topkmon
