#include "util/table.hpp"

#include <gtest/gtest.h>

namespace topkmon {
namespace {

Table sample_table() {
  Table t("Sample");
  t.header({"n", "messages", "ratio"});
  t.add_row({"16", "120", "3.5"});
  t.add_row_values({32.0, 240.5, 7.25}, 2);
  return t;
}

TEST(Table, AsciiContainsAllCells) {
  const auto s = sample_table().to_ascii();
  EXPECT_NE(s.find("Sample"), std::string::npos);
  EXPECT_NE(s.find("messages"), std::string::npos);
  EXPECT_NE(s.find("240.5"), std::string::npos);
  EXPECT_NE(s.find("7.25"), std::string::npos);
}

TEST(Table, MarkdownShape) {
  const auto s = sample_table().to_markdown();
  EXPECT_NE(s.find("### Sample"), std::string::npos);
  EXPECT_NE(s.find("| n | messages | ratio |"), std::string::npos);
  EXPECT_NE(s.find("| --- | --- | --- |"), std::string::npos);
}

TEST(Table, CsvRoundTripShape) {
  const auto s = sample_table().to_csv();
  EXPECT_EQ(s, "n,messages,ratio\n16,120,3.5\n32,240.5,7.25\n");
}

TEST(Table, RowColumnCounts) {
  const auto t = sample_table();
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(1.5, 3), "1.5");
  EXPECT_EQ(format_double(2.0, 2), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
  EXPECT_EQ(format_double(0.1259, 2), "0.13");
}

TEST(FormatCount, ThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

}  // namespace
}  // namespace topkmon
