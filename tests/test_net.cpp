// Networked-runtime tests (ctest label: net).
//
// The central claim of src/net: the coordinator runs the UNMODIFIED
// monitoring protocol, so a networked run on a loss-free schedule reproduces
// the in-process Simulator's model-level counters bit-identically — same
// messages, same kinds, same tags, same rounds, same output — while the wire
// traffic is accounted separately (net.*). These tests pin that equivalence
// across protocols, streams, fault presets, window lengths and host counts
// (over loopback links, with real NodeHost threads), check the link fault
// emulation (probabilistic loss and scripted outages → reconnection and
// recovery rounds), and smoke the TCP transport end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "faults/registry.hpp"
#include "net/coordinator.hpp"
#include "net/link.hpp"
#include "net/node_host.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace topkmon::net {
namespace {

RunSpec base_spec() {
  RunSpec spec;
  spec.stream.kind = "random_walk";
  spec.stream.n = 16;
  spec.stream.k = 3;
  spec.stream.delta = 1 << 20;
  spec.stream.sigma = 8;
  spec.stream.walk_step = 64;
  spec.protocol = "combined";
  spec.protocol_epsilon = 0.1;
  spec.seed = 42;
  spec.steps = 120;
  return spec;
}

/// Final kselect(1..k) of a protocol that serves QueryKind::kKSelect; empty
/// otherwise. Mirrors how InprocNetReport::kselect_estimates is filled.
std::vector<Value> kselect_estimates_of(const MonitoringProtocol& protocol,
                                        std::size_t k) {
  std::vector<Value> estimates;
  if (const QueryCapabilities* q = capability_for(protocol, QueryKind::kKSelect)) {
    for (std::size_t j = 1; j <= std::min(q->kselect_max_rank(), k); ++j) {
      estimates.push_back(q->kselect(j));
    }
  }
  return estimates;
}

/// The oracle: the standalone in-process Simulator on the same spec.
RunResult standalone_run(const RunSpec& spec, OutputSet* output = nullptr,
                         std::vector<Value>* estimates = nullptr) {
  SimConfig cfg;
  cfg.k = spec.stream.k;
  cfg.epsilon = spec.protocol_epsilon;
  cfg.seed = spec.seed;
  cfg.window = spec.window;
  cfg.faults = make_fleet_schedule(spec.faults, spec.stream.n);
  Simulator sim(cfg, make_stream(spec.stream), make_protocol(spec.protocol));
  const RunResult run = sim.run(spec.steps);
  if (output != nullptr) *output = sim.protocol().output();
  if (estimates != nullptr) {
    *estimates = kselect_estimates_of(sim.protocol(), cfg.k);
  }
  return run;
}

/// Asserts the networked run reproduced the standalone model counters
/// bit-identically (the net.* block is wire-level and excluded by zeroing).
void expect_model_identical(const RunResult& networked, const RunResult& expected) {
  StatsSnapshot net_model = networked;
  net_model.net = NetChannelStats{};
  EXPECT_EQ(net_model, static_cast<const StatsSnapshot&>(expected));
  EXPECT_EQ(networked.steps, expected.steps);
  EXPECT_EQ(networked.max_rounds_per_step, expected.max_rounds_per_step);
  EXPECT_EQ(networked.max_sigma, expected.max_sigma);
  EXPECT_DOUBLE_EQ(networked.messages_per_step, expected.messages_per_step);
}

TEST(NetRuntime, LossFreeRunIsBitIdenticalToTheSimulator) {
  for (const std::uint32_t hosts : {1u, 2u, 3u, 5u}) {
    const RunSpec spec = base_spec();
    OutputSet expected_output;
    const RunResult expected = standalone_run(spec, &expected_output);

    InprocNetOptions opts;
    opts.hosts = hosts;
    const InprocNetReport rep = run_networked_inproc(spec, opts);

    for (const int status : rep.host_exit) EXPECT_EQ(status, 0);
    EXPECT_EQ(rep.quiescence_errors, 0u);
    EXPECT_EQ(rep.output, expected_output) << "hosts=" << hosts;
    expect_model_identical(rep.run, expected);
    EXPECT_GT(rep.run.net.frames_sent, 0u);
    EXPECT_GT(rep.run.net.bytes_sent, 0u);
    EXPECT_EQ(rep.run.net.send_retries, 0u);
    EXPECT_EQ(rep.run.net.reconnects, 0u);
  }
}

TEST(NetRuntime, BitIdentityHoldsAcrossProtocolsStreamsFaultsAndWindows) {
  struct Cell {
    const char* protocol;
    const char* stream;
    const char* faults;
    std::size_t window;
    double epsilon;
  };
  const std::vector<Cell> cells = {
      {"combined", "oscillating", "none", 0, 0.1},
      {"topk_protocol", "uniform", "none", 16, 0.15},
      {"exact_topk", "zipf_bursty", "none", 0, 0.0},
      {"half_error", "sine_noise", "none", 8, 0.2},
      {"combined", "random_walk", "churn", 0, 0.1},
      {"combined", "zipf_bursty", "stragglers", 4, 0.1},
      {"topk_protocol", "oscillating", "flaky", 0, 0.1},
      {"combined", "sine_noise", "datacenter", 32, 0.05},
      {"kselect", "oscillating", "none", 0, 0.15},
      {"kselect", "zipf_bursty", "churn", 8, 0.1},
      {"kselect", "random_walk", "datacenter", 0, 0.05},
  };
  for (const Cell& cell : cells) {
    RunSpec spec = base_spec();
    spec.protocol = cell.protocol;
    spec.stream.kind = cell.stream;
    spec.protocol_epsilon = cell.epsilon;
    spec.window = cell.window;
    spec.steps = 80;
    spec.faults = fault_preset(cell.faults);
    spec.faults.horizon = spec.steps;
    spec.faults.seed = 7;
    // Bit-identity needs loss-free LINKS; model-level loss accounting runs on
    // the coordinator's fault channel either way, so zeroing wire loss keeps
    // the model counters (incl. messages_lost) untouched.
    InprocNetOptions opts;
    opts.hosts = 3;
    opts.link_loss = 0.0;

    OutputSet expected_output;
    const RunResult expected = standalone_run(spec, &expected_output);
    const InprocNetReport rep = run_networked_inproc(spec, opts);

    for (const int status : rep.host_exit) EXPECT_EQ(status, 0);
    EXPECT_EQ(rep.quiescence_errors, 0u)
        << cell.protocol << "/" << cell.stream << "/" << cell.faults;
    EXPECT_EQ(rep.output, expected_output)
        << cell.protocol << "/" << cell.stream << "/" << cell.faults;
    expect_model_identical(rep.run, expected);
  }
}

TEST(NetRuntime, KSelectEstimatesAreBitIdenticalAcrossHostCounts) {
  // The k-select structure ships a query surface beyond output(): pin the
  // whole estimate vector, not just the top-k set, for every host count.
  for (const std::uint32_t hosts : {1u, 2u, 3u, 5u}) {
    RunSpec spec = base_spec();
    spec.protocol = "kselect";
    spec.protocol_epsilon = 0.15;
    OutputSet expected_output;
    std::vector<Value> expected_estimates;
    const RunResult expected =
        standalone_run(spec, &expected_output, &expected_estimates);
    ASSERT_EQ(expected_estimates.size(), spec.stream.k);

    InprocNetOptions opts;
    opts.hosts = hosts;
    const InprocNetReport rep = run_networked_inproc(spec, opts);

    for (const int status : rep.host_exit) EXPECT_EQ(status, 0);
    EXPECT_EQ(rep.quiescence_errors, 0u);
    EXPECT_EQ(rep.output, expected_output) << "hosts=" << hosts;
    EXPECT_EQ(rep.kselect_estimates, expected_estimates) << "hosts=" << hosts;
    expect_model_identical(rep.run, expected);
  }
}

TEST(NetRuntime, FrameLossBooksRetriesWithoutTouchingModelCounters) {
  RunSpec spec = base_spec();
  spec.steps = 100;

  const RunResult expected = standalone_run(spec);

  InprocNetOptions lossy;
  lossy.hosts = 2;
  lossy.link_loss = 0.2;
  const InprocNetReport rep = run_networked_inproc(spec, lossy);

  for (const int status : rep.host_exit) EXPECT_EQ(status, 0);
  expect_model_identical(rep.run, expected);
  EXPECT_GT(rep.run.net.send_retries, 0u);
  EXPECT_EQ(rep.run.net.reconnects, 0u);
}

TEST(NetRuntime, ScriptedOutageReconnectsAndBooksRecoveryRounds) {
  RunSpec spec = base_spec();
  spec.steps = 100;

  // Fault-free oracle for the OUTPUT check: link outages are wire events, and
  // recovery re-synchronizes the protocol, so the final top-k set must match
  // the fault-free run's.
  OutputSet expected_output;
  standalone_run(spec, &expected_output);

  InprocNetOptions opts;
  opts.hosts = 2;
  opts.link_loss = 0.0;
  opts.outages.push_back({/*host=*/1, /*coordinator_side=*/true,
                          LinkOutage{/*first_attempt=*/40, /*attempts=*/3}});
  opts.outages.push_back({/*host=*/0, /*coordinator_side=*/false,
                          LinkOutage{/*first_attempt=*/25, /*attempts=*/2}});
  const InprocNetReport rep = run_networked_inproc(spec, opts);

  for (const int status : rep.host_exit) EXPECT_EQ(status, 0);
  EXPECT_EQ(rep.quiescence_errors, 0u);
  EXPECT_EQ(rep.output, expected_output);
  // The coordinator-side outage fires the membership-recovery hook; the
  // node-side one books wire retries on the node link (summed into run.net
  // only for coordinator links, so assert via reconnect accounting instead).
  EXPECT_GT(rep.run.recovery_rounds, 0u);
  EXPECT_EQ(rep.run.net.reconnects, 1u);
  EXPECT_GE(rep.run.net.send_retries, 3u);
}

TEST(NetRuntime, CoordinatorTelemetryExportsModelAndNetCounters) {
  RunSpec spec = base_spec();
  spec.steps = 60;

  telemetry::TelemetrySink sink;
  InprocNetOptions opts;
  opts.hosts = 2;
  opts.sink = &sink;
  const InprocNetReport rep = run_networked_inproc(spec, opts);

  // register_stats_metrics is idempotent: re-registering returns the ids the
  // coordinator already published through.
  const StatsSnapshotIds ids = register_stats_metrics(sink.registry());
  const telemetry::MetricsRegistry& reg = sink.registry();
  EXPECT_EQ(reg.value(ids.messages), rep.run.messages);
  EXPECT_EQ(reg.value(ids.net_frames_sent), rep.run.net.frames_sent);
  EXPECT_EQ(reg.value(ids.net_frames_recv), rep.run.net.frames_recv);
  EXPECT_EQ(reg.value(ids.net_bytes_sent), rep.run.net.bytes_sent);
  EXPECT_EQ(reg.value(ids.net_reconnects), rep.run.net.reconnects);
}

TEST(NetRuntime, RejectsAdaptiveStreamsAndEmptyShards) {
  RunSpec spec = base_spec();
  spec.stream.kind = "lb_adversary";
  EXPECT_THROW(run_networked_inproc(spec, InprocNetOptions{}),
               std::runtime_error);

  spec = base_spec();
  spec.stream.n = 2;
  spec.stream.k = 1;
  InprocNetOptions opts;
  opts.hosts = 3;  // more hosts than nodes
  EXPECT_THROW(run_networked_inproc(spec, opts), std::runtime_error);
}

TEST(NetRuntime, TcpTransportRunsTheFullLockstep) {
  TcpListener listener;
  if (!listener.listen(0)) {
    GTEST_SKIP() << "TCP sockets unavailable in this environment";
  }
  const std::uint16_t port = listener.port();
  RunSpec spec = base_spec();
  spec.steps = 40;
  const std::uint32_t hosts = 2;

  OutputSet expected_output;
  const RunResult expected = standalone_run(spec, &expected_output);

  std::vector<std::unique_ptr<NodeHost>> node_hosts(hosts);
  std::vector<int> exits(hosts, -1);
  std::vector<std::thread> threads;
  for (std::uint32_t h = 0; h < hosts; ++h) {
    threads.emplace_back([&, h] {
      std::unique_ptr<Transport> t = tcp_connect("127.0.0.1", port);
      if (!t) return;
      node_hosts[h] = std::make_unique<NodeHost>(
          std::make_unique<Link>(std::move(t)), h, hosts);
      exits[h] = node_hosts[h]->run();
    });
  }

  std::vector<std::unique_ptr<Link>> links;
  for (std::uint32_t h = 0; h < hosts; ++h) {
    std::unique_ptr<Transport> t = listener.accept();
    ASSERT_NE(t, nullptr);
    links.push_back(std::make_unique<Link>(std::move(t)));
  }
  NetCoordinator coord(spec, std::move(links));
  const RunResult run = coord.run();
  for (std::thread& th : threads) th.join();

  for (const int status : exits) EXPECT_EQ(status, 0);
  EXPECT_EQ(coord.quiescence_errors(), 0u);
  EXPECT_EQ(coord.output(), expected_output);
  expect_model_identical(run, expected);
  EXPECT_GT(run.net.frames_sent, 0u);
  // Node binaries report from the Shutdown stats: every host saw the same
  // final aggregate the coordinator returned.
  for (std::uint32_t h = 0; h < hosts; ++h) {
    ASSERT_NE(node_hosts[h], nullptr);
    EXPECT_EQ(node_hosts[h]->final_stats(), static_cast<const StatsSnapshot&>(run));
  }
}

TEST(NetRuntime, TcpTransportServesKSelectBitIdentically) {
  TcpListener listener;
  if (!listener.listen(0)) {
    GTEST_SKIP() << "TCP sockets unavailable in this environment";
  }
  const std::uint16_t port = listener.port();
  RunSpec spec = base_spec();
  spec.protocol = "kselect";
  spec.protocol_epsilon = 0.15;
  spec.steps = 40;
  const std::uint32_t hosts = 2;

  OutputSet expected_output;
  std::vector<Value> expected_estimates;
  const RunResult expected =
      standalone_run(spec, &expected_output, &expected_estimates);

  std::vector<std::unique_ptr<NodeHost>> node_hosts(hosts);
  std::vector<int> exits(hosts, -1);
  std::vector<std::thread> threads;
  for (std::uint32_t h = 0; h < hosts; ++h) {
    threads.emplace_back([&, h] {
      std::unique_ptr<Transport> t = tcp_connect("127.0.0.1", port);
      if (!t) return;
      node_hosts[h] = std::make_unique<NodeHost>(
          std::make_unique<Link>(std::move(t)), h, hosts);
      exits[h] = node_hosts[h]->run();
    });
  }

  std::vector<std::unique_ptr<Link>> links;
  for (std::uint32_t h = 0; h < hosts; ++h) {
    std::unique_ptr<Transport> t = listener.accept();
    ASSERT_NE(t, nullptr);
    links.push_back(std::make_unique<Link>(std::move(t)));
  }
  NetCoordinator coord(spec, std::move(links));
  const RunResult run = coord.run();
  for (std::thread& th : threads) th.join();

  for (const int status : exits) EXPECT_EQ(status, 0);
  EXPECT_EQ(coord.quiescence_errors(), 0u);
  EXPECT_EQ(coord.output(), expected_output);
  EXPECT_EQ(kselect_estimates_of(coord.sim().protocol(), spec.stream.k),
            expected_estimates);
  expect_model_identical(run, expected);
}

TEST(NetRuntime, LoopbackTransportDeliversInOrderAndClosesCleanly) {
  TransportPair pair = make_loopback_pair();
  const std::vector<std::uint8_t> f1 = encode(StepBeginMsg{1});
  const std::vector<std::uint8_t> f2 = encode(StepBeginMsg{2});
  ASSERT_TRUE(pair.a->send(f1));
  ASSERT_TRUE(pair.a->send(f2));
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(pair.b->recv(got));
  EXPECT_EQ(got, f1);
  ASSERT_TRUE(pair.b->recv(got));
  EXPECT_EQ(got, f2);

  pair.a->close();
  EXPECT_FALSE(pair.b->recv(got));
  EXPECT_FALSE(pair.b->send(f1));
}

}  // namespace
}  // namespace topkmon::net
