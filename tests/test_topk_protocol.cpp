#include "protocols/topk_protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "offline/opt.hpp"
#include "sim/simulator.hpp"
#include "streams/phase_torture.hpp"
#include "streams/registry.hpp"
#include "streams/trace_file.hpp"

namespace topkmon {
namespace {

SimConfig strict_cfg(std::size_t k, double eps, std::uint64_t seed,
                     bool history = false) {
  SimConfig cfg;
  cfg.k = k;
  cfg.epsilon = eps;
  cfg.seed = seed;
  cfg.strict = true;
  cfg.record_history = history;
  return cfg;
}

TEST(TopKComponent, P1Predicate) {
  // P1: loglog(u) > loglog(l) + 1.
  EXPECT_TRUE(TopKComponent::p1_holds(2.0, 1 << 20));
  EXPECT_TRUE(TopKComponent::p1_holds(0.0, 1e9));
  EXPECT_FALSE(TopKComponent::p1_holds(1000.0, 2000.0));
  EXPECT_FALSE(TopKComponent::p1_holds(1 << 19, 1 << 20));
}

TEST(TopKProtocol, StartsInA1WithHugeGap) {
  std::vector<ValueVector> rows(3, ValueVector{Value{1} << 32, 4, 2, 1});
  auto protocol = std::make_unique<TopKProtocol>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(1, 0.25, 3), std::make_unique<TraceFileStream>(rows),
                std::move(protocol));
  sim.step();
  EXPECT_EQ(proto->core().phase(), TopKComponent::Phase::kA1);
  EXPECT_EQ(proto->output(), (OutputSet{0}));
}

TEST(TopKProtocol, StartsInP4WhenAlreadyTight) {
  // u/l = 100/99 < 1/(1-eps) for eps = 0.25.
  std::vector<ValueVector> rows(3, ValueVector{100, 99, 2, 1});
  auto protocol = std::make_unique<TopKProtocol>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(1, 0.25, 4), std::make_unique<TraceFileStream>(rows),
                std::move(protocol));
  sim.step();
  EXPECT_EQ(proto->core().phase(), TopKComponent::Phase::kP4);
}

TEST(TopKProtocol, PhaseProgressionUnderClimber) {
  PhaseTortureConfig cfg;
  cfg.n = 8;
  cfg.k = 2;
  cfg.top = Value{1} << 30;
  auto protocol = std::make_unique<TopKProtocol>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(2, 0.2, 5), std::make_unique<PhaseTortureStream>(cfg),
                std::move(protocol));
  sim.step();
  ASSERT_EQ(proto->core().phase(), TopKComponent::Phase::kA1);
  bool saw_a2 = false, saw_a3 = false, saw_p4 = false;
  for (int t = 1; t < 300; ++t) {
    sim.step();
    switch (proto->core().phase()) {
      case TopKComponent::Phase::kA2: saw_a2 = true; break;
      case TopKComponent::Phase::kA3: saw_a3 = true; break;
      case TopKComponent::Phase::kP4: saw_p4 = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_a2);
  EXPECT_TRUE(saw_a3);
  EXPECT_TRUE(saw_p4);
  EXPECT_GE(proto->phases(), 2u);  // the torture stream forces restarts
}

TEST(TopKProtocol, SilentInP4UntilCrossing) {
  std::vector<ValueVector> rows;
  for (int t = 0; t < 30; ++t) rows.push_back({100, 99, 2, 1});
  auto protocol = std::make_unique<TopKProtocol>();
  Simulator sim(strict_cfg(1, 0.25, 6), std::make_unique<TraceFileStream>(rows),
                std::move(protocol));
  sim.step();
  const auto after_start = sim.context().stats().total();
  sim.run(29);
  EXPECT_EQ(sim.context().stats().total(), after_start);
}

TEST(TopKProtocol, IntervalShrinksMonotonically) {
  PhaseTortureConfig cfg;
  cfg.n = 6;
  cfg.k = 1;
  cfg.top = Value{1} << 26;
  auto protocol = std::make_unique<TopKProtocol>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(1, 0.2, 7), std::make_unique<PhaseTortureStream>(cfg),
                std::move(protocol));
  sim.step();
  double prev_width = proto->core().upper() - proto->core().lower();
  std::uint64_t prev_phases = proto->phases();
  for (int t = 1; t < 120; ++t) {
    sim.step();
    const double width = proto->core().upper() - proto->core().lower();
    if (proto->phases() == prev_phases) {
      EXPECT_LE(width, prev_width + 1e-9) << "t=" << t;
    }
    prev_width = width;
    prev_phases = proto->phases();
  }
}

TEST(TopKProtocol, A1CostLogLogDelta) {
  // Against the climber, the number of violations per macro-phase must be
  // O(log log Δ + log 1/ε), not O(log Δ): compare Δ = 2^16 vs Δ = 2^40 —
  // a log-Δ algorithm would pay ~2.5x, loglog only ~1.2x.
  auto run_phase = [&](int log_delta) {
    PhaseTortureConfig cfg;
    cfg.n = 6;
    cfg.k = 1;
    cfg.top = Value{1} << log_delta;
    auto protocol = std::make_unique<TopKProtocol>();
    auto* proto = protocol.get();
    Simulator sim(strict_cfg(1, 0.25, 1000 + log_delta),
                  std::make_unique<PhaseTortureStream>(cfg), std::move(protocol));
    TimeStep t = 0;
    while (proto->phases() < 6 && t < 5000) {
      sim.step();
      ++t;
    }
    return static_cast<double>(sim.context().stats().total()) /
           static_cast<double>(proto->phases());
  };
  const double small = run_phase(16);
  const double large = run_phase(40);
  EXPECT_LT(large, small * 2.0)
      << "per-phase cost grew like log Δ, not log log Δ";
}

TEST(TopKProtocol, StrictOnAllBenignStreams) {
  for (const char* kind : {"uniform", "random_walk", "zipf_bursty", "sine_noise"}) {
    StreamSpec spec;
    spec.kind = kind;
    spec.n = 12;
    spec.k = 3;
    spec.delta = 1 << 14;
    Simulator sim(strict_cfg(3, 0.2, 17), make_stream(spec),
                  std::make_unique<TopKProtocol>());
    sim.run(150);
    SUCCEED() << kind;
  }
}

TEST(TopKProtocol, CompetitiveAgainstExactOptOnWalks) {
  StreamSpec spec;
  spec.kind = "random_walk";
  spec.n = 16;
  spec.k = 3;
  spec.delta = 1 << 16;
  spec.walk_step = 128;
  auto protocol = std::make_unique<TopKProtocol>();
  Simulator sim(strict_cfg(3, 0.2, 19, /*history=*/true), make_stream(spec),
                std::move(protocol));
  const auto run = sim.run(600);
  const auto opt = OfflineOpt::exact(sim.history(), 3);
  ASSERT_GE(opt.phases, 1u);
  const double ratio = static_cast<double>(run.messages) /
                       static_cast<double>(opt.phases);
  // Theorem 4.5: O(k log n + log log Δ + log 1/ε) ≈ 12 + 4 + 2.3; allow a
  // generous constant for probe/broadcast overheads.
  EXPECT_LT(ratio, 40.0 * (3 * std::log2(16.0) + std::log2(std::log2(1 << 16)) +
                           std::log2(1.0 / 0.2)));
}

}  // namespace
}  // namespace topkmon
