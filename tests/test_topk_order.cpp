// TopKOrder — incremental order maintenance vs. the full re-sort oracle.
//
// Every mutation path is differentially checked against Oracle::ranking /
// Oracle::sigma recomputed from scratch: bulk updates (repair and rebuild
// regimes), point updates, tie-breaking, and the two invalidation seams the
// engine feeds the structure through — sliding-window expiry (values drop
// by pure eviction) and fleet membership changes (values freeze and snap
// back on rejoin).
#include <gtest/gtest.h>

#include <algorithm>

#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "model/fleet_state.hpp"
#include "model/oracle.hpp"
#include "model/topk_order.hpp"
#include "model/window.hpp"
#include "util/rng.hpp"

namespace topkmon {
namespace {

/// Asserts the structure agrees with the from-scratch oracle on `values`.
void expect_matches_oracle(const TopKOrder& order, const ValueVector& values) {
  const std::vector<NodeId> ranked = Oracle::ranking(values);
  ASSERT_EQ(order.n(), values.size());
  const auto ids = order.sorted_ids();
  const auto vals = order.sorted_values();
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    ASSERT_EQ(ids[r], ranked[r]) << "rank " << r;
    ASSERT_EQ(vals[r], values[ranked[r]]) << "rank " << r;
    ASSERT_EQ(order.rank_of(ids[r]), r);
  }
  for (std::size_t k = 1; k <= values.size(); ++k) {
    ASSERT_EQ(order.kth_value(k), Oracle::kth_value(values, k)) << "k=" << k;
    ASSERT_EQ(order.kth_node(k), Oracle::kth_node(values, k)) << "k=" << k;
  }
  for (const double eps : {0.0, 0.05, 0.1, 0.3, 0.7}) {
    for (std::size_t k = 1; k <= values.size(); k += 3) {
      ASSERT_EQ(order.sigma(k, eps), Oracle::sigma(values, k, eps))
          << "k=" << k << " eps=" << eps;
    }
  }
}

TEST(TopKOrder, FirstUpdateSortsFromScratch) {
  const ValueVector v{5, 9, 1, 9, 3};
  TopKOrder order(v.size());
  EXPECT_FALSE(order.ready());
  order.update(v);
  EXPECT_TRUE(order.ready());
  EXPECT_EQ(order.rebuilds(), 1u);
  expect_matches_oracle(order, v);
}

TEST(TopKOrder, TiesBreakByLowerId) {
  const ValueVector v{7, 7, 7, 7};
  TopKOrder order(v.size());
  order.update(v);
  const auto ids = order.sorted_ids();
  for (NodeId i = 0; i < v.size(); ++i) {
    EXPECT_EQ(ids[i], i);
  }
}

TEST(TopKOrder, QuiescentUpdateDoesNoRepairWork) {
  Rng rng(7);
  ValueVector v(64);
  for (auto& x : v) x = rng.below(1000);
  TopKOrder order(v.size());
  order.update(v);
  const std::uint64_t repairs = order.repairs();
  const std::uint64_t rebuilds = order.rebuilds();
  for (int i = 0; i < 10; ++i) {
    order.update(v);
  }
  EXPECT_EQ(order.repairs(), repairs);
  EXPECT_EQ(order.rebuilds(), rebuilds);
  expect_matches_oracle(order, v);
}

TEST(TopKOrder, SparseUpdatesTakeTheRepairPath) {
  Rng rng(11);
  ValueVector v(200);
  for (auto& x : v) x = 1000 + rng.below(100000);
  TopKOrder order(v.size());
  order.update(v);
  ASSERT_EQ(order.rebuilds(), 1u);
  for (int step = 0; step < 50; ++step) {
    // Disturb a handful of nodes (< kRebuildFraction of n).
    for (int j = 0; j < 5; ++j) {
      v[rng.below(v.size())] = 1000 + rng.below(100000);
    }
    order.update(v);
    expect_matches_oracle(order, v);
  }
  EXPECT_EQ(order.rebuilds(), 1u) << "sparse steps must not trigger rebuilds";
  EXPECT_GT(order.repairs(), 0u);
}

TEST(TopKOrder, DenseUpdatesDeferRebuildUntilRanksAreRead) {
  Rng rng(13);
  ValueVector v(100);
  for (auto& x : v) x = rng.below(1 << 20);
  TopKOrder order(v.size());
  order.update(v);
  const std::uint64_t repairs = order.repairs();
  for (auto& x : v) x = rng.below(1 << 20);  // everything changes
  order.update(v);
  // A churn-storm update parks the vector: σ comes from partition scans and
  // no sort has run yet. Reading ranks then forces exactly one rebuild.
  EXPECT_EQ(order.rebuilds(), 1u) << "dense update must defer the sort";
  EXPECT_EQ(order.sigma(5, 0.1), Oracle::sigma(v, 5, 0.1))
      << "scan-mode sigma must equal the oracle";
  EXPECT_EQ(order.rebuilds(), 1u) << "sigma alone must not force the sort";
  expect_matches_oracle(order, v);
  EXPECT_EQ(order.rebuilds(), 2u) << "rank accessors force one rebuild";
  EXPECT_EQ(order.repairs(), repairs) << "rebuild path must not repair";
}

TEST(TopKOrder, PointUpdateMatchesOracle) {
  Rng rng(17);
  ValueVector v(48);
  for (auto& x : v) x = rng.below(5000);
  TopKOrder order(v.size());
  order.update(v);
  for (int step = 0; step < 200; ++step) {
    const NodeId i = static_cast<NodeId>(rng.below(v.size()));
    // Mix extremes (jump to top/bottom) with small jitter, and no-ops.
    const std::uint64_t kind = rng.below(4);
    const Value nv = kind == 0   ? 0
                     : kind == 1 ? 1 << 20
                     : kind == 2 ? v[i]
                                 : rng.below(5000);
    v[i] = nv;
    order.update_node(i, nv);
    expect_matches_oracle(order, v);
  }
}

TEST(TopKOrder, RandomWalkDifferentialAgainstFullSort) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    ValueVector v(33);
    for (auto& x : v) x = 10000 + rng.below(10000);
    TopKOrder order(v.size());
    for (int step = 0; step < 120; ++step) {
      // Random-walk a random subset; subset size sweeps across the
      // repair/rebuild threshold.
      const std::size_t disturb = rng.below(v.size() + 1);
      for (std::size_t j = 0; j < disturb; ++j) {
        auto& x = v[rng.below(v.size())];
        const std::uint64_t delta = rng.below(2000);
        x = rng.bernoulli(0.5) && x > delta ? x - delta : x + delta;
      }
      order.update(v);
      expect_matches_oracle(order, v);
    }
  }
}

TEST(TopKOrder, SigmaIsBitIdenticalOnBoundaryEpsilons) {
  // Values engineered to sit exactly on the (1−ε)-scaled boundaries, where
  // a reformulated comparison would diverge.
  const ValueVector v{1000, 900, 899, 810, 800, 100, 0};
  TopKOrder order(v.size());
  order.update(v);
  for (const double eps : {0.0, 0.1, 0.100000000000001, 0.19, 0.2, 0.5, 0.9}) {
    for (std::size_t k = 1; k <= v.size(); ++k) {
      ASSERT_EQ(order.sigma(k, eps), Oracle::sigma(v, k, eps))
          << "k=" << k << " eps=" << eps;
    }
  }
}

// --- SortedValues (the value-only engine-snapshot sibling) ------------------

TEST(SortedValues, DifferentialAgainstFullSortAcrossRegimes) {
  for (const std::uint64_t seed : {101u, 102u}) {
    Rng rng(seed);
    ValueVector v(40);
    for (auto& x : v) x = rng.below(300);  // small range: plenty of duplicates
    SortedValues sv(v.size());
    for (int step = 0; step < 150; ++step) {
      const std::size_t disturb = rng.below(v.size() + 1);
      for (std::size_t j = 0; j < disturb; ++j) {
        v[rng.below(v.size())] = rng.below(300);
      }
      sv.update(v);
      ValueVector expect = v;
      std::sort(expect.begin(), expect.end(), std::greater<Value>());
      const auto got = sv.sorted();
      ASSERT_TRUE(std::equal(expect.begin(), expect.end(), got.begin(), got.end()));
      for (std::size_t k = 1; k <= v.size(); k += 5) {
        ASSERT_EQ(sv.kth_value(k), Oracle::kth_value(v, k));
        ASSERT_EQ(sv.sigma(k, 0.15), Oracle::sigma(v, k, 0.15));
      }
    }
  }
}

TEST(SortedValues, AgreesWithTopKOrderOnEverySigma) {
  Rng rng(7777);
  ValueVector v(64);
  for (auto& x : v) x = 1000 + rng.below(400);
  SortedValues sv(v.size());
  TopKOrder order(v.size());
  for (int step = 0; step < 60; ++step) {
    for (int j = 0; j < 3; ++j) {
      v[rng.below(v.size())] = 1000 + rng.below(400);
    }
    sv.update(v);
    order.update(v);
    for (std::size_t k = 1; k <= v.size(); k += 7) {
      for (const double eps : {0.0, 0.1, 0.25}) {
        ASSERT_EQ(sv.sigma(k, eps), order.sigma(k, eps));
      }
    }
  }
}

// --- invalidation seams ----------------------------------------------------

TEST(TopKOrder, TracksWindowExpiryDrops) {
  // Feed the order the windowed vector; expiry steps drop values by pure
  // eviction (no fresh observation causes the change) and must re-rank.
  const std::size_t n = 6, W = 4;
  WindowedValueModel window(n, W);
  TopKOrder order(n);
  Rng rng(23);
  ValueVector raw(n);
  std::uint64_t expirations = 0;
  for (TimeStep t = 0; t < 80; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      // Spiky: occasional large peaks that later slide out of the window.
      raw[i] = rng.bernoulli(0.15) ? 1000 + rng.below(1000) : rng.below(50);
    }
    const ValueVector& windowed = window.push(t, raw);
    order.update(windowed);
    expect_matches_oracle(order, windowed);
    expirations += window.last_expirations();
  }
  EXPECT_GT(expirations, 0u) << "workload never exercised the expiry path";
}

TEST(TopKOrder, TracksMembershipChangeFreezesAndRejoins) {
  // Feed the order the fault-effective vector: offline nodes freeze, then
  // snap back on rejoin — exactly the engine's membership-change seam.
  const std::size_t n = 8;
  auto sched = std::make_shared<FleetSchedule>(n);
  sched->add_event(3, 1);   // node 1 leaves
  sched->add_event(3, 4);   // node 4 leaves
  sched->add_event(10, 1);  // node 1 rejoins
  sched->add_event(15, 4);  // node 4 rejoins
  sched->set_delay(6, 2);   // node 6 straggles throughout
  FaultInjector injector(sched);
  FleetState fleet(n);
  TopKOrder order(n);
  Rng rng(29);
  ValueVector truth(n);
  for (auto& x : truth) x = 500 + rng.below(500);
  for (TimeStep t = 0; t < 30; ++t) {
    for (auto& x : truth) x += rng.below(40);
    const ValueVector& eff = injector.transform(t, truth, fleet);
    order.update(eff);
    expect_matches_oracle(order, eff);
    // The injector also publishes per-node FaultFlag bits into the fleet's
    // SoA flag buffer — the step's degradation map for consumers that need
    // to know *which* observations are live.
    const auto flags = fleet.fault_flags();
    if (t >= 3 && t < 10) {
      EXPECT_EQ(flags[1], kFaultOffline | kFaultStale) << "t=" << t;
    }
    if (t >= 1) {
      EXPECT_EQ(flags[6], kFaultStale) << "t=" << t;  // straggler
      EXPECT_EQ(flags[0], kFaultNone) << "t=" << t;   // live node
    }
  }
  EXPECT_GT(injector.total_stale(), 0u);
}

}  // namespace
}  // namespace topkmon
