#include "protocols/exact_topk.hpp"

#include <gtest/gtest.h>

#include "model/oracle.hpp"
#include "offline/opt.hpp"
#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/random_walk.hpp"
#include "streams/registry.hpp"
#include "streams/trace_file.hpp"

namespace topkmon {
namespace {

SimConfig strict_cfg(std::size_t k, double eps, std::uint64_t seed,
                     bool history = false) {
  SimConfig cfg;
  cfg.k = k;
  cfg.epsilon = eps;
  cfg.seed = seed;
  cfg.strict = true;
  cfg.record_history = history;
  return cfg;
}

TEST(ExactTopK, TracksExactSetOnScriptedTrace) {
  // Two regime changes; output must always be the exact top-2.
  std::vector<ValueVector> rows;
  for (int t = 0; t < 5; ++t) rows.push_back({100, 80, 60, 40});
  for (int t = 0; t < 5; ++t) rows.push_back({100, 80, 90, 40});  // 2 overtakes 1
  for (int t = 0; t < 5; ++t) rows.push_back({30, 80, 90, 40});   // 0 collapses
  Simulator sim(strict_cfg(2, 0.0, 5), std::make_unique<TraceFileStream>(rows),
                std::make_unique<ExactTopKMonitor>());
  sim.step();
  EXPECT_EQ(sim.protocol().output(), (OutputSet{0, 1}));
  for (int t = 1; t < 10; ++t) sim.step();
  EXPECT_EQ(sim.protocol().output(), (OutputSet{0, 2}));
  for (int t = 10; t < 15; ++t) sim.step();
  EXPECT_EQ(sim.protocol().output(), (OutputSet{1, 2}));
}

TEST(ExactTopK, SilentOnStaticStream) {
  std::vector<ValueVector> rows(40, ValueVector{100, 80, 60, 40});
  Simulator sim(strict_cfg(2, 0.0, 6), std::make_unique<TraceFileStream>(rows),
                std::make_unique<ExactTopKMonitor>());
  sim.step();
  const auto after_start = sim.context().stats().total();
  sim.run(39);
  // After the initial probe + filters, a static stream costs nothing.
  EXPECT_EQ(sim.context().stats().total(), after_start);
}

TEST(ExactTopK, StrictValidationOnRandomWalks) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    RandomWalkConfig rw;
    rw.n = 16;
    rw.hi = 1 << 14;
    rw.max_step = 32;
    Simulator sim(strict_cfg(4, 0.0, seed),
                  std::make_unique<RandomWalkStream>(rw),
                  std::make_unique<ExactTopKMonitor>());
    sim.run(400);  // strict mode validates every step
    SUCCEED();
  }
}

TEST(ExactTopK, PhasesWitnessOptCommunication) {
  RandomWalkConfig rw;
  rw.n = 12;
  rw.hi = 1 << 12;
  rw.max_step = 64;
  auto protocol = std::make_unique<ExactTopKMonitor>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(3, 0.0, 77, /*history=*/true),
                std::make_unique<RandomWalkStream>(rw), std::move(protocol));
  sim.run(500);
  const auto opt = OfflineOpt::exact(sim.history(), 3);
  // Theorem-4.5-style witness: each completed online phase (beyond the
  // first) forces at least one OPT phase boundary.
  EXPECT_GE(opt.phases + 1, proto->phases());
}

class ExactTopKParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ExactTopKParam, CorrectAcrossNk) {
  const auto [n, k] = GetParam();
  StreamSpec spec;
  spec.kind = "random_walk";
  spec.n = n;
  spec.k = k;
  spec.delta = 1 << 12;
  Simulator sim(strict_cfg(k, 0.0, 31 * n + k), make_stream(spec),
                std::make_unique<ExactTopKMonitor>());
  sim.run(150);
  SUCCEED();  // strict mode is the assertion
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExactTopKParam,
    ::testing::Values(std::make_tuple(2, 1), std::make_tuple(4, 1),
                      std::make_tuple(8, 4), std::make_tuple(16, 8),
                      std::make_tuple(16, 15), std::make_tuple(32, 5)));

TEST(ExactTopK, CheaperThanNaiveOnWalks) {
  StreamSpec spec;
  spec.kind = "random_walk";
  spec.n = 32;
  spec.k = 4;
  spec.delta = 1 << 16;
  spec.walk_step = 16;

  Simulator filtered(strict_cfg(4, 0.0, 101), make_stream(spec),
                     std::make_unique<ExactTopKMonitor>());
  const auto rf = filtered.run(300);

  SimConfig cfg = strict_cfg(4, 0.0, 101);
  Simulator naive(cfg, make_stream(spec),
                  make_protocol("naive_central"));
  const auto rn = naive.run(300);

  EXPECT_LT(rf.messages, rn.messages / 2) << "filters must beat per-step collection";
}

}  // namespace
}  // namespace topkmon
