// The big integration matrix: every protocol × every benign workload runs
// under strict validation (oracle output check, Observation-2.2 filter
// validity, quiescence) for several hundred steps.
#include <gtest/gtest.h>

#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/registry.hpp"

namespace topkmon {
namespace {

struct MatrixCase {
  std::string protocol;
  std::string stream;
};

void PrintTo(const MatrixCase& c, std::ostream* os) {
  *os << c.protocol << "/" << c.stream;
}

class ProtocolStreamMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ProtocolStreamMatrix, StrictLongRun) {
  const auto& [protocol, stream] = GetParam();
  StreamSpec spec;
  spec.kind = stream;
  spec.n = 16;
  spec.k = 4;
  spec.sigma = 8;
  spec.delta = 1 << 14;
  SimConfig cfg;
  cfg.k = 4;
  // Exact protocols are validated with eps = 0 (harder), approximate ones
  // with a moderate error.
  cfg.epsilon = (protocol == "exact_topk" || protocol == "naive_central" ||
                 protocol == "naive_change")
                    ? 0.0
                    : 0.15;
  spec.epsilon = cfg.epsilon == 0.0 ? 0.15 : cfg.epsilon;  // streams need eps>0
  cfg.seed = 0xFEED;
  cfg.strict = true;
  Simulator sim(cfg, make_stream(spec), make_protocol(protocol));
  sim.run(300);
  SUCCEED();
}

std::vector<MatrixCase> matrix_cases() {
  std::vector<MatrixCase> cases;
  for (const auto& protocol : protocol_names()) {
    for (const char* stream :
         {"uniform", "random_walk", "oscillating", "zipf_bursty", "sine_noise"}) {
      // exact protocols cannot use the oscillating band at eps=0 cheaply but
      // must still be CORRECT — include everything.
      cases.push_back({protocol, stream});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(All, ProtocolStreamMatrix,
                         ::testing::ValuesIn(matrix_cases()),
                         [](const ::testing::TestParamInfo<MatrixCase>& param) {
                           return param.param.protocol + "_" + param.param.stream;
                         });

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, CombinedSurvivesManySeeds) {
  StreamSpec spec;
  spec.kind = "oscillating";
  spec.n = 14;
  spec.k = 3;
  spec.sigma = 7;
  SimConfig cfg;
  cfg.k = 3;
  cfg.epsilon = 0.2;
  spec.epsilon = 0.2;
  cfg.seed = GetParam();
  cfg.strict = true;
  Simulator sim(cfg, make_stream(spec), make_protocol("combined"));
  sim.run(250);
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace topkmon
