#include "bench_support/experiment.hpp"

#include <gtest/gtest.h>

#include "bench_support/runner.hpp"

namespace topkmon {
namespace {

ExperimentConfig small_cfg() {
  ExperimentConfig cfg;
  cfg.stream.kind = "random_walk";
  cfg.stream.n = 10;
  cfg.stream.delta = 1 << 12;
  cfg.protocol = "combined";
  cfg.k = 2;
  cfg.epsilon = 0.15;
  cfg.steps = 80;
  cfg.trials = 3;
  cfg.seed = 42;
  cfg.strict = true;
  return cfg;
}

TEST(Experiment, RunsTrialsAndAggregates) {
  const auto res = run_experiment(small_cfg());
  EXPECT_EQ(res.messages.count(), 3u);
  EXPECT_EQ(res.ratio.count(), 3u);
  EXPECT_GT(res.messages.mean(), 0.0);
  EXPECT_GE(res.ratio.min(), 1.0) << "online can never beat the phase count";
  EXPECT_EQ(res.last_run.steps, 80u);
}

TEST(Experiment, DeterministicAcrossInvocations) {
  const auto a = run_experiment(small_cfg());
  const auto b = run_experiment(small_cfg());
  EXPECT_EQ(a.messages.samples(), b.messages.samples());
  EXPECT_EQ(a.ratio.samples(), b.ratio.samples());
}

TEST(Experiment, OptKindNoneSkipsRatio) {
  auto cfg = small_cfg();
  cfg.opt_kind = OptKind::kNone;
  const auto res = run_experiment(cfg);
  EXPECT_EQ(res.ratio.count(), 0u);
  EXPECT_EQ(res.opt_phases.count(), 0u);
  EXPECT_EQ(res.messages.count(), 3u);
}

TEST(Experiment, ExactOptPhasesAtLeastApprox) {
  auto cfg = small_cfg();
  cfg.opt_kind = OptKind::kExact;
  const auto exact = run_experiment(cfg);
  cfg.opt_kind = OptKind::kApprox;
  const auto approx = run_experiment(cfg);
  EXPECT_GE(exact.opt_phases.mean(), approx.opt_phases.mean());
}

TEST(Runner, SweepPreservesOrderAndDeterminism) {
  std::vector<SweepRow> rows;
  for (std::size_t k : {1u, 2u, 3u}) {
    auto cfg = small_cfg();
    cfg.k = k;
    rows.push_back({"k=" + std::to_string(k), cfg});
  }
  const auto par = run_sweep(rows, 3);
  ASSERT_EQ(par.size(), 3u);
  // Re-run serially; results must be identical (per-cell derived seeds).
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto serial = run_experiment(rows[i].cfg);
    EXPECT_EQ(par[i].messages.samples(), serial.messages.samples()) << i;
  }
}

TEST(Runner, EngineGroupedSweepMatchesPerCellResults) {
  // Rows sharing one stream config (protocol comparison at fixed k/ε) are
  // multiplexed through the MonitoringEngine; per-cell results must stay
  // bit-identical to the one-Simulator-per-cell path.
  std::vector<SweepRow> rows;
  for (const std::string protocol :
       {"combined", "topk_protocol", "half_error", "naive_central"}) {
    auto cfg = small_cfg();
    cfg.protocol = protocol;
    rows.push_back({protocol, cfg});
  }
  const auto grouped = run_sweep(rows, 2);
  ASSERT_EQ(grouped.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto serial = run_experiment(rows[i].cfg);
    EXPECT_EQ(grouped[i].messages.samples(), serial.messages.samples()) << i;
    EXPECT_EQ(grouped[i].opt_phases.samples(), serial.opt_phases.samples()) << i;
    EXPECT_EQ(grouped[i].ratio.samples(), serial.ratio.samples()) << i;
    EXPECT_EQ(grouped[i].max_sigma.samples(), serial.max_sigma.samples()) << i;
    EXPECT_EQ(grouped[i].max_rounds.samples(), serial.max_rounds.samples()) << i;
    EXPECT_EQ(grouped[i].last_run.messages, serial.last_run.messages) << i;
  }
}

TEST(Runner, AdaptiveStreamsKeepPerCellPath) {
  // lb_adversary adapts against the monitored protocol; grouping cells
  // would change what each protocol sees, so the sweep must not group them.
  std::vector<SweepRow> rows;
  for (const std::string protocol : {"combined", "topk_protocol"}) {
    auto cfg = small_cfg();
    cfg.stream.kind = "lb_adversary";
    cfg.stream.sigma = 4;
    cfg.protocol = protocol;
    cfg.strict = false;
    cfg.opt_kind = OptKind::kNone;
    rows.push_back({protocol, cfg});
  }
  const auto swept = run_sweep(rows, 2);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto serial = run_experiment(rows[i].cfg);
    EXPECT_EQ(swept[i].messages.samples(), serial.messages.samples()) << i;
  }
}

TEST(SplitmixCombine, DistinctSalts) {
  const auto a = splitmix_combine(7, 0);
  const auto b = splitmix_combine(7, 1);
  const auto a2 = splitmix_combine(7, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, a2);
}

}  // namespace
}  // namespace topkmon
