#include "bench_support/experiment.hpp"

#include <gtest/gtest.h>

#include "bench_support/runner.hpp"

namespace topkmon {
namespace {

ExperimentConfig small_cfg() {
  ExperimentConfig cfg;
  cfg.stream.kind = "random_walk";
  cfg.stream.n = 10;
  cfg.stream.delta = 1 << 12;
  cfg.protocol = "combined";
  cfg.k = 2;
  cfg.epsilon = 0.15;
  cfg.steps = 80;
  cfg.trials = 3;
  cfg.seed = 42;
  cfg.strict = true;
  return cfg;
}

TEST(Experiment, RunsTrialsAndAggregates) {
  const auto res = run_experiment(small_cfg());
  EXPECT_EQ(res.messages.count(), 3u);
  EXPECT_EQ(res.ratio.count(), 3u);
  EXPECT_GT(res.messages.mean(), 0.0);
  EXPECT_GE(res.ratio.min(), 1.0) << "online can never beat the phase count";
  EXPECT_EQ(res.last_run.steps, 80u);
}

TEST(Experiment, DeterministicAcrossInvocations) {
  const auto a = run_experiment(small_cfg());
  const auto b = run_experiment(small_cfg());
  EXPECT_EQ(a.messages.samples(), b.messages.samples());
  EXPECT_EQ(a.ratio.samples(), b.ratio.samples());
}

TEST(Experiment, OptKindNoneSkipsRatio) {
  auto cfg = small_cfg();
  cfg.opt_kind = OptKind::kNone;
  const auto res = run_experiment(cfg);
  EXPECT_EQ(res.ratio.count(), 0u);
  EXPECT_EQ(res.opt_phases.count(), 0u);
  EXPECT_EQ(res.messages.count(), 3u);
}

TEST(Experiment, ExactOptPhasesAtLeastApprox) {
  auto cfg = small_cfg();
  cfg.opt_kind = OptKind::kExact;
  const auto exact = run_experiment(cfg);
  cfg.opt_kind = OptKind::kApprox;
  const auto approx = run_experiment(cfg);
  EXPECT_GE(exact.opt_phases.mean(), approx.opt_phases.mean());
}

TEST(Runner, SweepPreservesOrderAndDeterminism) {
  std::vector<SweepRow> rows;
  for (std::size_t k : {1u, 2u, 3u}) {
    auto cfg = small_cfg();
    cfg.k = k;
    rows.push_back({"k=" + std::to_string(k), cfg});
  }
  const auto par = run_sweep(rows, 3);
  ASSERT_EQ(par.size(), 3u);
  // Re-run serially; results must be identical (per-cell derived seeds).
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto serial = run_experiment(rows[i].cfg);
    EXPECT_EQ(par[i].messages.samples(), serial.messages.samples()) << i;
  }
}

TEST(SplitmixCombine, DistinctSalts) {
  const auto a = splitmix_combine(7, 0);
  const auto b = splitmix_combine(7, 1);
  const auto a2 = splitmix_combine(7, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, a2);
}

}  // namespace
}  // namespace topkmon
