// Failure injection and boundary conditions across the stack: constant and
// all-equal streams, two-node systems, extreme values, epsilon extremes,
// mid-run regime cliffs.
#include <gtest/gtest.h>

#include "protocols/registry.hpp"
#include "protocols/threshold.hpp"
#include "sim/simulator.hpp"
#include "streams/trace_file.hpp"

namespace topkmon {
namespace {

SimConfig strict_cfg(std::size_t k, double eps, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.k = k;
  cfg.epsilon = eps;
  cfg.seed = seed;
  cfg.strict = true;
  return cfg;
}

std::vector<ValueVector> repeat(ValueVector row, std::size_t times) {
  return std::vector<ValueVector>(times, std::move(row));
}

class AllProtocolsEdge : public ::testing::TestWithParam<std::string> {};

TEST_P(AllProtocolsEdge, AllEqualValues) {
  // Every node observes the same value: any k-subset is a valid output;
  // filters must still satisfy Obs. 2.2.
  Simulator sim(strict_cfg(3, 0.1),
                std::make_unique<TraceFileStream>(repeat({7, 7, 7, 7, 7, 7}, 30)),
                make_protocol(GetParam()));
  sim.run(30);
  SUCCEED();
}

TEST_P(AllProtocolsEdge, ConstantZeros) {
  Simulator sim(strict_cfg(2, 0.2),
                std::make_unique<TraceFileStream>(repeat({0, 0, 0, 0}, 20)),
                make_protocol(GetParam()));
  sim.run(20);
  SUCCEED();
}

TEST_P(AllProtocolsEdge, TwoNodesKOne) {
  std::vector<ValueVector> rows;
  for (int t = 0; t < 20; ++t) {
    rows.push_back({static_cast<Value>(100 + (t % 5)), static_cast<Value>(90 + (t % 7))});
  }
  Simulator sim(strict_cfg(1, 0.15), std::make_unique<TraceFileStream>(rows),
                make_protocol(GetParam()));
  sim.run(20);
  SUCCEED();
}

TEST_P(AllProtocolsEdge, HugeValuesNearCap) {
  const Value big = kMaxObservableValue - 16;
  std::vector<ValueVector> rows = repeat({big, big - 2, big - 5, 3, 1, 0}, 25);
  Simulator sim(strict_cfg(2, 0.1), std::make_unique<TraceFileStream>(rows),
                make_protocol(GetParam()));
  sim.run(25);
  SUCCEED();
}

TEST_P(AllProtocolsEdge, RegimeCliff) {
  // Everything collapses to near-zero mid-run, then recovers inverted.
  std::vector<ValueVector> rows;
  for (int t = 0; t < 10; ++t) rows.push_back({1000, 900, 800, 700, 50, 40});
  for (int t = 0; t < 10; ++t) rows.push_back({1, 2, 3, 4, 5, 6});
  for (int t = 0; t < 10; ++t) rows.push_back({40, 50, 700, 800, 900, 1000});
  Simulator sim(strict_cfg(3, 0.2), std::make_unique<TraceFileStream>(rows),
                make_protocol(GetParam()));
  sim.run(30);
  SUCCEED();
}

TEST_P(AllProtocolsEdge, TinyEpsilon) {
  const double eps = GetParam() == "exact_topk" || GetParam() == "naive_central" ||
                             GetParam() == "naive_change"
                         ? 0.0
                         : 1e-4;
  std::vector<ValueVector> rows;
  for (int t = 0; t < 20; ++t) {
    rows.push_back({1000000, 999000, 500000 + static_cast<Value>(t * 100), 10});
  }
  Simulator sim(strict_cfg(2, eps), std::make_unique<TraceFileStream>(rows),
                make_protocol(GetParam()));
  sim.run(20);
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(All, AllProtocolsEdge,
                         ::testing::Values("exact_topk", "topk_protocol", "combined",
                                           "half_error", "naive_central",
                                           "naive_change"));

TEST(Threshold, QueriesMatchOracle) {
  SimContext ctx(SimParams{6, 2, 0.1}, 99);
  ctx.advance_time({10, 50, 90, 30, 70, 20});
  EXPECT_TRUE(any_above(ctx, 80.0));
  EXPECT_FALSE(any_above(ctx, 90.0));
  EXPECT_TRUE(any_below(ctx, 15.0));
  EXPECT_FALSE(any_below(ctx, 10.0));
}

TEST(Threshold, CollectAtLeastFindsExactSet) {
  SimContext ctx(SimParams{6, 2, 0.1}, 101);
  ctx.advance_time({10, 50, 90, 30, 70, 20});
  auto hits = collect_at_least(ctx, 50.0);
  std::vector<NodeId> ids;
  for (const auto& h : hits) ids.push_back(h.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<NodeId>{1, 2, 4}));
}

TEST(Threshold, AllQuietReflectsFilters) {
  SimContext ctx(SimParams{3, 1, 0.1}, 103);
  ctx.advance_time({10, 20, 30});
  ctx.broadcast_filters([](const Node&) { return Filter::all(); });
  EXPECT_TRUE(all_quiet(ctx));
  ctx.broadcast_filters([](const Node&) { return Filter{0.0, 15.0}; });
  EXPECT_FALSE(all_quiet(ctx));
}

TEST(Threshold, DeterministicCollectCostsExactlyN) {
  SimContext ctx(SimParams{5, 1, 0.1}, 105);
  ctx.advance_time({1, 2, 3, 4, 5});
  const auto before = ctx.stats().total();
  const auto all = collect_all_deterministic(ctx);
  EXPECT_EQ(all.size(), 5u);
  EXPECT_EQ(ctx.stats().total() - before, 5u);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(all[i].id, i);
    EXPECT_EQ(all[i].value, Value{i} + 1);
  }
}

TEST(EdgeCases, SimulatorRejectsOverflowingGenerator) {
  // Generators must stay within kMaxObservableValue — the simulator
  // enforces the contract with a fatal assertion, which we can't catch
  // here; instead verify the boundary value itself is accepted.
  std::vector<ValueVector> rows = repeat({kMaxObservableValue, 1}, 3);
  Simulator sim(strict_cfg(1, 0.1), std::make_unique<TraceFileStream>(rows),
                make_protocol("naive_central"));
  sim.run(3);
  SUCCEED();
}

TEST(EdgeCases, SingleStepRun) {
  std::vector<ValueVector> rows = repeat({5, 3, 1}, 1);
  for (const auto& name : protocol_names()) {
    Simulator sim(strict_cfg(1, 0.1), std::make_unique<TraceFileStream>(rows),
                  make_protocol(name));
    sim.run(1);
    if (serves_topk(sim.protocol())) {
      EXPECT_EQ(sim.protocol().output().size(), 1u) << name;
    } else {
      // Non-top-k kinds keep output() empty and answer via capabilities.
      EXPECT_TRUE(sim.protocol().output().empty()) << name;
    }
  }
}

}  // namespace
}  // namespace topkmon
