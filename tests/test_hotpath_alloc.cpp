// Zero-allocation invariant of the batched hot path (regression tests).
//
// A steady-state step — quiescent protocol, warmed-up buffers — must not
// touch the heap: FleetState, TopKOrder, the window rings, the injector
// ring and the scratch arenas are all preallocated. These tests *measure*
// that with the counting allocator hook (util/alloc_counter.hpp) instead of
// trusting it; they skip when the hook is compiled out (sanitizer builds,
// which install their own allocator).
//
// This suite is also the regression test for the lazy strict-mode snapshot:
// the validator's filter snapshot must only be captured when strict
// validation actually consumes it — a non-strict simulator's step loop
// proves that by allocating nothing at all.
#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "faults/schedule.hpp"
#include "model/fleet_state.hpp"
#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "util/alloc_counter.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace topkmon {
namespace {

#define SKIP_WITHOUT_ALLOC_HOOK()                                            \
  if (!alloc_counting_active()) {                                            \
    GTEST_SKIP() << "counting allocator hook not compiled in "               \
                    "(TOPKMON_COUNT_ALLOCS off)";                            \
  }

ValueVector random_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  ValueVector v(n);
  for (auto& x : v) x = 100000 + rng.below(100000);
  return v;
}

/// Steps `sim` with `values` `warmup` times, then asserts that `measured`
/// further steps allocate exactly zero times on this thread.
void expect_steady_state_alloc_free(Simulator& sim, const ValueVector& values,
                                    int warmup = 8, int measured = 200) {
  for (int i = 0; i < warmup; ++i) {
    sim.step_with(values);
  }
  AllocProbe probe;
  for (int i = 0; i < measured; ++i) {
    sim.step_with(values);
  }
  EXPECT_EQ(probe.delta(), 0u)
      << probe.delta() << " allocations over " << measured << " steps";
}

TEST(HotPathAlloc, CounterObservesThisThreadsAllocations) {
  SKIP_WITHOUT_ALLOC_HOOK();
  AllocProbe probe;
  auto* p = new std::uint64_t[32];
  EXPECT_GE(probe.delta(), 1u);
  EXPECT_GE(probe.delta_bytes(), 32 * sizeof(std::uint64_t));
  delete[] p;
}

TEST(HotPathAlloc, QuiescentStandaloneStepIsAllocFree) {
  SKIP_WITHOUT_ALLOC_HOOK();
  for (const char* protocol : {"combined", "exact_topk", "topk_protocol"}) {
    SimConfig cfg;
    cfg.k = 4;
    cfg.epsilon = 0.1;
    cfg.seed = 5;
    Simulator sim(cfg, 256, make_protocol(protocol));
    expect_steady_state_alloc_free(sim, random_values(256, 5));
  }
}

TEST(HotPathAlloc, WindowedQuiescentStepIsAllocFree) {
  SKIP_WITHOUT_ALLOC_HOOK();
  SimConfig cfg;
  cfg.k = 4;
  cfg.epsilon = 0.1;
  cfg.seed = 6;
  cfg.window = 32;
  Simulator sim(cfg, 256, make_protocol("combined"));
  // Constant values: the window rings roll every step, maxima never change.
  expect_steady_state_alloc_free(sim, random_values(256, 6), /*warmup=*/40);
}

TEST(HotPathAlloc, StragglerSteadyStateIsAllocFree) {
  SKIP_WITHOUT_ALLOC_HOOK();
  // Stragglers exercise the injector's retention ring every step; with a
  // constant stream the effective vector equals the live one, so the
  // protocol stays quiescent while the fault machinery runs at full tilt.
  auto sched = std::make_shared<FleetSchedule>(256);
  for (NodeId i = 0; i < 64; ++i) {
    sched->set_delay(i, 1 + i % 7);
  }
  SimConfig cfg;
  cfg.k = 4;
  cfg.epsilon = 0.1;
  cfg.seed = 7;
  cfg.faults = std::move(sched);
  Simulator sim(cfg, 256, make_protocol("combined"));
  expect_steady_state_alloc_free(sim, random_values(256, 7), /*warmup=*/16);
}

// Acceptance criterion of the telemetry subsystem: with a sink attached —
// registry mirroring, per-phase scoped timers, timeseries sampling all live —
// the steady-state step still allocates exactly zero times. Registry slots
// are preallocated, timer records are plain adds, and the timeseries ring
// allocates once on its first sample (inside warmup) then downsamples in
// place.
TEST(HotPathAlloc, TelemetryAttachedStepIsAllocFree) {
  SKIP_WITHOUT_ALLOC_HOOK();
  SimConfig cfg;
  cfg.k = 4;
  cfg.epsilon = 0.1;
  cfg.seed = 5;
  cfg.window = 32;  // window expirations feed the registry mirror too
  Simulator sim(cfg, 256, make_protocol("combined"));
  telemetry::TelemetrySink sink(/*timeseries_capacity=*/64);
  sim.attach_telemetry(&sink);
  // 64-row ring over 248 steps: several in-place downsampling rounds land
  // inside the measured region.
  expect_steady_state_alloc_free(sim, random_values(256, 5), /*warmup=*/48);
  if (telemetry::kTelemetryEnabled) {
    EXPECT_GT(sink.profiler().calls(telemetry::Phase::kProtocol), 0u);
  }
  EXPECT_GT(sink.registry().value(sink.registry().find("comm.messages")), 0u);
  EXPECT_GT(sink.timeseries().size(), 0u);
}

/// Minimal constant stream for engine-path tests.
class ConstStream final : public StreamGenerator {
 public:
  explicit ConstStream(ValueVector values) : values_(std::move(values)) {}
  std::size_t n() const override { return values_.size(); }
  void init(ValueVector& out, Rng&) override { out = values_; }
  void step(TimeStep, const AdversaryView&, ValueVector& out, Rng&) override {
    out = values_;
  }
  std::string_view name() const override { return "const"; }
  std::unique_ptr<StreamGenerator> clone() const override {
    return std::make_unique<ConstStream>(values_);
  }

 private:
  ValueVector values_;
};

TEST(HotPathAlloc, EngineQuiescentStepIsAllocFree) {
  SKIP_WITHOUT_ALLOC_HOOK();
  EngineConfig cfg;
  cfg.threads = 1;  // inline shards: every allocation lands on this thread
  cfg.seed = 8;
  MonitoringEngine engine(cfg, std::make_unique<ConstStream>(random_values(256, 8)));
  for (std::size_t q = 0; q < 4; ++q) {
    QuerySpec spec;
    spec.protocol = "combined";
    spec.k = 2 + q;
    spec.epsilon = 0.1 + 0.02 * static_cast<double>(q);
    spec.window = q % 2 == 0 ? kInfiniteWindow : 16;
    engine.add_query(spec);
  }
  for (int i = 0; i < 40; ++i) {
    engine.step();
  }
  AllocProbe probe;
  for (int i = 0; i < 200; ++i) {
    engine.step();
  }
  EXPECT_EQ(probe.delta(), 0u);
}

// The multi-function engine keeps the invariant: one fleet serving all four
// query kinds — top-k, k-select, count-distinct, threshold alerts — still
// allocates exactly zero times per quiescent step. The two new kinds
// maintain their answers purely violation-driven (count_distinct's sketch
// and threshold_alert's above-set only move on reports), so a constant
// stream leaves them untouched after warmup.
TEST(HotPathAlloc, MixedKindEngineQuiescentStepIsAllocFree) {
  SKIP_WITHOUT_ALLOC_HOOK();
  EngineConfig cfg;
  cfg.threads = 1;  // inline shards: every allocation lands on this thread
  cfg.seed = 12;
  MonitoringEngine engine(cfg,
                          std::make_unique<ConstStream>(random_values(256, 12)));
  const QueryKind kinds[] = {QueryKind::kTopK, QueryKind::kKSelect,
                             QueryKind::kCountDistinct, QueryKind::kThreshold};
  for (std::size_t q = 0; q < 8; ++q) {
    QuerySpec spec;
    spec.kind = kinds[q % 4];
    spec.protocol = default_protocol_for(spec.kind);
    spec.k = 2 + q % 3;
    spec.epsilon = 0.1 + 0.02 * static_cast<double>(q % 4);
    spec.window = q % 2 == 0 ? kInfiniteWindow : 16;
    spec.threshold = 150000;  // inside random_values' [100000, 200000) range
    engine.add_query(spec);
  }
  for (int i = 0; i < 40; ++i) {
    engine.step();
  }
  AllocProbe probe;
  for (int i = 0; i < 200; ++i) {
    engine.step();
  }
  EXPECT_EQ(probe.delta(), 0u);
}

TEST(HotPathAlloc, EngineWithTelemetryStepIsAllocFree) {
  SKIP_WITHOUT_ALLOC_HOOK();
  EngineConfig cfg;
  cfg.threads = 1;  // inline shards: every allocation lands on this thread
  cfg.seed = 8;
  MonitoringEngine engine(cfg, std::make_unique<ConstStream>(random_values(256, 8)));
  for (std::size_t q = 0; q < 3; ++q) {
    QuerySpec spec;
    spec.protocol = "combined";
    spec.k = 2 + q;
    spec.epsilon = 0.1;
    spec.window = q == 2 ? 16 : kInfiniteWindow;
    engine.add_query(spec);
  }
  telemetry::TelemetrySink sink(/*timeseries_capacity=*/32);
  engine.attach_telemetry(&sink);
  for (int i = 0; i < 40; ++i) {
    engine.step();
  }
  AllocProbe probe;
  for (int i = 0; i < 200; ++i) {
    engine.step();
  }
  EXPECT_EQ(probe.delta(), 0u);
  EXPECT_GT(sink.registry().value(sink.registry().find("engine.total_messages")),
            0u);
}

TEST(HotPathAlloc, ScratchArenaReachesSteadyState) {
  SKIP_WITHOUT_ALLOC_HOOK();
  ScratchArena arena;
  for (int i = 0; i < 4; ++i) {  // warm to the high-water mark
    arena.reset();
    arena.get<std::uint64_t>(100);
    arena.get<std::uint8_t>(37);
  }
  AllocProbe probe;
  for (int i = 0; i < 100; ++i) {
    arena.reset();
    auto a = arena.get<std::uint64_t>(100);
    auto b = arena.get<std::uint8_t>(37);
    a[99] = 1;
    b[36] = 2;
  }
  EXPECT_EQ(probe.delta(), 0u);
}

// Satellite regression: the strict-mode filter snapshot is captured lazily.
// A non-strict simulator must never build it — proven by the zero-alloc
// loop above — and a strict one must keep working (validation still fires
// through the reusable arena).
TEST(HotPathAlloc, StrictModeStillValidatesThroughArena) {
  SimConfig cfg;
  cfg.k = 3;
  cfg.epsilon = 0.1;
  cfg.seed = 9;
  cfg.strict = true;
  Simulator sim(cfg, 64, make_protocol("combined"));
  const ValueVector v = random_values(64, 9);
  for (int i = 0; i < 50; ++i) {
    sim.step_with(v);  // aborts via TOPKMON_ASSERT if validation regressed
  }
  SUCCEED();
}

}  // namespace
}  // namespace topkmon
