// White-box invariant checks on DenseComponent, asserted after EVERY
// simulated step while the combined monitor runs in dense mode:
//   I1  roles partition the nodes; v1/v3 counters match.
//   I2  S1/S2 flags only on V2 nodes; no S1∩S2 node outside an active sub.
//   I3  the interval L stays inside the grid of [(1−ε)z, z]; the sub
//       interval stays inside [L.lo, ⌊ℓ_r⌋].
//   I4  the output contains every V1 node and no V3 node, and has size k.
//   I5  V1 members were certified clearly-larger at entry: their *entry*
//       certificates exceed z; V3 analogously below (1−ε)z — checked
//       indirectly: a V1 node's filter keeps lo ≥ ℓ_r, a V3 node's filter
//       keeps hi ≤ u_r-like bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "protocols/combined.hpp"
#include "sim/simulator.hpp"
#include "streams/oscillating.hpp"
#include "streams/trace_file.hpp"

namespace topkmon {
namespace {

void check_invariants(const CombinedMonitor& proto, const SimContext& ctx) {
  if (proto.mode() != CombinedMonitor::Mode::kDense) return;
  const DenseComponent& d = proto.dense();
  const std::size_t n = ctx.n();
  const std::size_t k = ctx.k();

  // I1: partition + counters.
  std::size_t v1 = 0, v2 = 0, v3 = 0;
  for (NodeId i = 0; i < n; ++i) {
    switch (d.role(i)) {
      case DenseComponent::Role::kV1: ++v1; break;
      case DenseComponent::Role::kV2: ++v2; break;
      case DenseComponent::Role::kV3: ++v3; break;
    }
  }
  EXPECT_EQ(v1 + v2 + v3, n);
  EXPECT_EQ(v1, d.v1_count());
  EXPECT_EQ(v3, d.v3_count());

  // I2: S-flags only on V2; S1∩S2 only under an active sub.
  for (NodeId i = 0; i < n; ++i) {
    if (d.role(i) != DenseComponent::Role::kV2) {
      EXPECT_FALSE(d.in_s1(i)) << "node " << i;
      EXPECT_FALSE(d.in_s2(i)) << "node " << i;
    }
    if (d.in_s1(i) && d.in_s2(i)) {
      EXPECT_TRUE(d.sub_active()) << "S1∩S2 node " << i << " without sub";
    }
  }

  // I3: interval geometry.
  if (!d.interval_empty()) {
    const double z = d.pivot_z();
    EXPECT_GE(static_cast<double>(d.interval_lo()),
              std::floor((1.0 - ctx.epsilon()) * z));
    EXPECT_LE(static_cast<double>(d.interval_hi()), z + 1e-9);
    if (d.sub_active()) {
      EXPECT_GE(d.sub_interval_lo(), d.interval_lo());
      EXPECT_LE(d.sub_interval_hi(), d.interval_hi());
    }
  }

  // I4: output composition.
  const OutputSet& out = d.output();
  EXPECT_EQ(out.size(), k);
  std::vector<bool> in_out(n, false);
  for (NodeId id : out) in_out[id] = true;
  for (NodeId i = 0; i < n; ++i) {
    if (d.role(i) == DenseComponent::Role::kV1) {
      EXPECT_TRUE(in_out[i]) << "V1 node " << i << " missing from output";
    }
    if (d.role(i) == DenseComponent::Role::kV3) {
      EXPECT_FALSE(in_out[i]) << "V3 node " << i << " in output";
    }
  }

  // I5: V1/V3 filter posture.
  for (NodeId i = 0; i < n; ++i) {
    const Filter& f = ctx.nodes()[i].filter();
    if (d.role(i) == DenseComponent::Role::kV1) {
      EXPECT_GT(f.lo, 0.0) << "V1 node " << i << " must have a lower bound";
      EXPECT_TRUE(std::isinf(f.hi));
    }
    if (d.role(i) == DenseComponent::Role::kV3) {
      EXPECT_DOUBLE_EQ(f.lo, 0.0);
      EXPECT_TRUE(std::isfinite(f.hi));
    }
  }
}

class DenseInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DenseInvariants, HoldAtEveryStep) {
  OscillatingConfig osc;
  osc.n = 20;
  osc.k = 4;
  osc.epsilon = 0.15;
  osc.sigma = 10;
  osc.drift = 0.03;  // keep the interval game running
  auto protocol = std::make_unique<CombinedMonitor>();
  auto* proto = protocol.get();
  SimConfig cfg;
  cfg.k = 4;
  cfg.epsilon = 0.15;
  cfg.seed = GetParam();
  cfg.strict = true;
  Simulator sim(cfg, std::make_unique<OscillatingStream>(osc), std::move(protocol));
  std::size_t dense_steps = 0;
  for (int t = 0; t < 400; ++t) {
    sim.step();
    if (proto->mode() == CombinedMonitor::Mode::kDense) ++dense_steps;
    check_invariants(*proto, sim.context());
    if (::testing::Test::HasFailure()) {
      FAIL() << "invariant broken at t=" << t << " (seed " << GetParam() << ")";
    }
  }
  EXPECT_GT(dense_steps, 100u) << "the workload must actually exercise dense mode";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseInvariants,
                         ::testing::Values(1, 7, 42, 1337, 99991));

TEST(DenseInvariants, SubIntervalNestsUnderFlipFlop) {
  // Drive the scripted S1∩S2 path and verify nesting while the sub runs.
  std::vector<ValueVector> rows;
  rows.push_back({100, 100, 100, 98, 9});
  rows.push_back({100, 100, 108, 98, 9});
  rows.push_back({100, 100, 91, 98, 9});
  for (int t = 0; t < 10; ++t) rows.push_back({100, 100, 91, 98, 9});
  auto protocol = std::make_unique<CombinedMonitor>();
  auto* proto = protocol.get();
  SimConfig cfg;
  cfg.k = 2;
  cfg.epsilon = 0.1;
  cfg.seed = 5;
  cfg.strict = true;
  Simulator sim(cfg, std::make_unique<TraceFileStream>(rows), std::move(protocol));
  for (std::size_t t = 0; t < rows.size(); ++t) {
    sim.step();
    check_invariants(*proto, sim.context());
  }
}

}  // namespace
}  // namespace topkmon
