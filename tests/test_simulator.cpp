#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "protocols/registry.hpp"
#include "streams/registry.hpp"

namespace topkmon {
namespace {

Simulator make_sim(const std::string& protocol, const std::string& kind,
                   std::size_t n, std::size_t k, double eps, std::uint64_t seed,
                   bool strict = true, bool history = false) {
  StreamSpec spec;
  spec.kind = kind;
  spec.n = n;
  spec.k = k;
  spec.epsilon = eps;
  spec.sigma = std::max<std::size_t>(2, n / 2);
  SimConfig cfg;
  cfg.k = k;
  cfg.epsilon = eps;
  cfg.seed = seed;
  cfg.strict = strict;
  cfg.record_history = history;
  return Simulator(cfg, make_stream(spec), make_protocol(protocol));
}

TEST(Simulator, RunsAndCounts) {
  auto sim = make_sim("naive_central", "random_walk", 8, 2, 0.1, 1);
  const auto r = sim.run(20);
  EXPECT_EQ(r.steps, 20u);
  // naive_central: n reports + 1 broadcast per step.
  EXPECT_EQ(r.messages, 20u * 9u);
  EXPECT_EQ(r.node_to_server, 20u * 8u);
  EXPECT_EQ(r.broadcasts, 20u);
}

TEST(Simulator, HistoryRecordedWhenRequested) {
  auto sim = make_sim("naive_central", "uniform", 6, 2, 0.1, 2, true, true);
  sim.run(15);
  EXPECT_EQ(sim.history().size(), 15u);
  EXPECT_EQ(sim.history().front().size(), 6u);
}

TEST(Simulator, HistoryEmptyByDefault) {
  auto sim = make_sim("naive_central", "uniform", 6, 2, 0.1, 3);
  sim.run(5);
  EXPECT_TRUE(sim.history().empty());
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto a = make_sim("combined", "random_walk", 12, 3, 0.15, 99);
  auto b = make_sim("combined", "random_walk", 12, 3, 0.15, 99);
  const auto ra = a.run(200);
  const auto rb = b.run(200);
  EXPECT_EQ(ra.messages, rb.messages);
  EXPECT_EQ(ra.max_sigma, rb.max_sigma);
  EXPECT_EQ(a.protocol().output(), b.protocol().output());
}

TEST(Simulator, TracksMaxSigma) {
  auto sim = make_sim("naive_central", "oscillating", 16, 4, 0.1, 7);
  sim.run(30);
  EXPECT_GE(sim.max_sigma(), 8u);  // sigma = n/2 in make_sim
}

TEST(Simulator, PolylogRoundsPerStep) {
  auto sim = make_sim("combined", "random_walk", 64, 4, 0.1, 11);
  const auto r = sim.run(100);
  // Each EXISTENCE run is <= log n + 1 rounds; a step may chain several
  // (probes + drains), but the budget must stay polylogarithmic — far
  // below, say, n.
  EXPECT_LE(r.max_rounds_per_step, 64u * 7u);
}

TEST(Simulator, MessagesPerStepAggregates) {
  auto sim = make_sim("naive_central", "uniform", 4, 1, 0.1, 13);
  const auto r = sim.run(10);
  EXPECT_DOUBLE_EQ(r.messages_per_step, 5.0);
}

TEST(RunResult, TagsSumToTotal) {
  auto sim = make_sim("combined", "oscillating", 16, 4, 0.1, 17);
  const auto r = sim.run(50);
  std::uint64_t tag_sum = 0;
  for (const auto t : r.by_tag) tag_sum += t;
  EXPECT_EQ(tag_sum, r.messages);
}

}  // namespace
}  // namespace topkmon
