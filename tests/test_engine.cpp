#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include "model/oracle.hpp"
#include "protocols/registry.hpp"
#include "streams/registry.hpp"

namespace topkmon {
namespace {

StreamSpec fleet_spec(const std::string& kind = "random_walk", std::size_t n = 24) {
  StreamSpec spec;
  spec.kind = kind;
  spec.n = n;
  spec.k = 4;
  spec.epsilon = 0.1;
  spec.sigma = n / 2;
  spec.delta = 1 << 14;
  return spec;
}

std::vector<std::uint64_t> per_query_messages(const EngineStats& stats) {
  std::vector<std::uint64_t> out;
  out.reserve(stats.queries.size());
  for (const auto& q : stats.queries) {
    out.push_back(q.run.messages);
  }
  return out;
}

std::vector<OutputSet> per_query_outputs(const EngineStats& stats) {
  std::vector<OutputSet> out;
  out.reserve(stats.queries.size());
  for (const auto& q : stats.queries) {
    out.push_back(q.output);
  }
  return out;
}

// --- Q = 1 equivalence with Simulator::run --------------------------------

TEST(Engine, QueryOfOneMatchesStandaloneSimulator) {
  for (const std::string protocol :
       {"combined", "topk_protocol", "exact_topk", "half_error", "naive_central"}) {
    const double eps = protocol == "exact_topk" ? 0.0 : 0.1;
    const std::uint64_t seed = 99;

    SimConfig sim_cfg;
    sim_cfg.k = 4;
    sim_cfg.epsilon = eps;
    sim_cfg.seed = seed;
    sim_cfg.strict = true;
    Simulator sim(sim_cfg, make_stream(fleet_spec()), make_protocol(protocol));
    const RunResult serial = sim.run(120);

    EngineConfig ecfg;
    ecfg.threads = 1;
    ecfg.seed = seed;
    ecfg.share_probes = false;  // per-query accounting, like a Simulator
    MonitoringEngine engine(ecfg, make_stream(fleet_spec()));
    QuerySpec q;
    q.protocol = protocol;
    q.k = 4;
    q.epsilon = eps;
    q.strict = true;
    q.seed = seed;  // exactly the standalone seed
    const QueryHandle h = engine.add_query(q);
    const EngineStats stats = engine.run(120);

    EXPECT_EQ(stats.queries[h].run.messages, serial.messages) << protocol;
    EXPECT_EQ(stats.queries[h].run.by_tag, serial.by_tag) << protocol;
    EXPECT_EQ(stats.queries[h].run.max_rounds_per_step, serial.max_rounds_per_step)
        << protocol;
    EXPECT_EQ(stats.queries[h].run.max_sigma, serial.max_sigma) << protocol;
    EXPECT_EQ(engine.output(h), sim.protocol().output()) << protocol;
    EXPECT_EQ(stats.shared_probe_messages, 0u);
  }
}

// --- determinism across thread counts --------------------------------------

EngineStats run_mixed_engine(std::size_t threads, bool share_probes,
                             std::uint64_t seed) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.seed = seed;
  cfg.share_probes = share_probes;
  MonitoringEngine engine(cfg, make_stream(fleet_spec("oscillating")));
  const std::vector<std::string> protocols{"combined", "topk_protocol", "half_error",
                                           "exact_topk"};
  for (std::size_t q = 0; q < 16; ++q) {
    QuerySpec spec;
    spec.protocol = protocols[q % protocols.size()];
    spec.k = 2 + q % 5;
    spec.epsilon = spec.protocol == "exact_topk" ? 0.0 : 0.05 + 0.05 * (q % 3);
    spec.strict = true;  // oracle-validate every query at every step
    engine.add_query(spec);
  }
  return engine.run(100);
}

TEST(Engine, BitIdenticalAcrossThreadCounts) {
  for (const bool share : {false, true}) {
    const EngineStats t1 = run_mixed_engine(1, share, 7);
    const EngineStats t4 = run_mixed_engine(4, share, 7);
    const EngineStats t8 = run_mixed_engine(8, share, 7);

    EXPECT_EQ(per_query_messages(t1), per_query_messages(t4)) << "share=" << share;
    EXPECT_EQ(per_query_messages(t1), per_query_messages(t8)) << "share=" << share;
    EXPECT_EQ(per_query_outputs(t1), per_query_outputs(t4)) << "share=" << share;
    EXPECT_EQ(per_query_outputs(t1), per_query_outputs(t8)) << "share=" << share;
    EXPECT_EQ(t1.shared_probe_messages, t4.shared_probe_messages) << "share=" << share;
    EXPECT_EQ(t1.shared_probe_messages, t8.shared_probe_messages) << "share=" << share;
    EXPECT_EQ(t1.total_messages, t8.total_messages) << "share=" << share;
    EXPECT_EQ(t1.probe_calls, t8.probe_calls) << "share=" << share;
    EXPECT_EQ(t1.probe_ranks_computed, t8.probe_ranks_computed) << "share=" << share;
  }
}

TEST(Engine, DeterministicAcrossRuns) {
  const EngineStats a = run_mixed_engine(8, true, 21);
  const EngineStats b = run_mixed_engine(8, true, 21);
  EXPECT_EQ(per_query_messages(a), per_query_messages(b));
  EXPECT_EQ(per_query_outputs(a), per_query_outputs(b));
  EXPECT_EQ(a.total_messages, b.total_messages);
}

// --- mixed (k, ε) correctness under the strict oracle validator ------------

TEST(Engine, MixedQueriesStayValidOnChurningStreams) {
  // run_mixed_engine already runs with strict = true (the Simulator aborts on
  // any invalid output/filter); additionally re-check every final output
  // against the oracle on the engine's shared history.
  EngineConfig cfg;
  cfg.threads = 4;
  cfg.seed = 13;
  cfg.record_history = true;
  MonitoringEngine engine(cfg, make_stream(fleet_spec("oscillating", 16)));
  std::vector<QuerySpec> specs;
  for (std::size_t q = 0; q < 12; ++q) {
    QuerySpec spec;
    spec.protocol = q % 2 == 0 ? "combined" : "half_error";
    spec.k = 1 + q % 6;
    spec.epsilon = 0.05 + 0.03 * (q % 4);
    spec.strict = true;
    specs.push_back(spec);
    engine.add_query(spec);
  }
  engine.run(150);

  ASSERT_EQ(engine.history().size(), 150u);
  const ValueVector& last = engine.history().back();
  for (std::size_t q = 0; q < specs.size(); ++q) {
    const auto& out = engine.output(static_cast<QueryHandle>(q));
    EXPECT_EQ(out.size(), specs[q].k);
    EXPECT_EQ(Oracle::explain_invalid(last, specs[q].k, specs[q].epsilon, out), "")
        << "query " << q;
  }
}

// --- cross-query probe sharing ----------------------------------------------

TEST(Engine, SharedProbesCutTotalMessages) {
  auto run_total = [](bool share) {
    EngineConfig cfg;
    cfg.threads = 1;
    cfg.seed = 5;
    cfg.share_probes = share;
    MonitoringEngine engine(cfg, make_stream(fleet_spec("oscillating")));
    for (std::size_t q = 0; q < 8; ++q) {
      QuerySpec spec;
      spec.protocol = "exact_topk";  // probes top-(k+1) every churn
      spec.k = 4;
      spec.epsilon = 0.0;
      spec.strict = true;
      engine.add_query(spec);
    }
    return engine.run(100);
  };
  const EngineStats unshared = run_total(false);
  const EngineStats shared = run_total(true);
  EXPECT_EQ(unshared.shared_probe_messages, 0u);
  // 8 queries ask per probing step (8 calls) but the 5 ranks they need are
  // computed once per step.
  EXPECT_GT(shared.probe_calls, shared.probe_ranks_computed);
  // 8 identical queries ask the identical top-5 question each step; sharing
  // must collapse nearly 8x of the probe traffic.
  EXPECT_LT(shared.total_messages, unshared.total_messages / 4);
}

TEST(Engine, SharedProbeResultsMatchUnshared) {
  // Probe *outcomes* depend only on the snapshot, so outputs of a
  // deterministic-after-probe protocol must agree between modes.
  auto run_outputs = [](bool share) {
    EngineConfig cfg;
    cfg.threads = 1;
    cfg.seed = 11;
    cfg.share_probes = share;
    MonitoringEngine engine(cfg, make_stream(fleet_spec()));
    QuerySpec spec;
    spec.protocol = "exact_topk";
    spec.k = 3;
    spec.epsilon = 0.0;
    spec.strict = true;
    spec.seed = 1234;
    engine.add_query(spec);
    engine.run(80);
    return OutputSet(engine.output(0));
  };
  EXPECT_EQ(run_outputs(false), run_outputs(true));
}

// --- engine plumbing ---------------------------------------------------------

TEST(Engine, HistoryRecordedOncePerStep) {
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.seed = 3;
  cfg.record_history = true;
  MonitoringEngine engine(cfg, make_stream(fleet_spec("uniform", 8)));
  for (std::size_t q = 0; q < 4; ++q) {
    engine.add_query(QuerySpec{});
  }
  engine.run(25);
  EXPECT_EQ(engine.history().size(), 25u);
  EXPECT_EQ(engine.history().front().size(), 8u);
}

TEST(Engine, StatsAggregateAcrossQueries) {
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.seed = 17;
  cfg.share_probes = false;
  MonitoringEngine engine(cfg, make_stream(fleet_spec("uniform", 8)));
  QuerySpec naive;
  naive.protocol = "naive_central";
  naive.k = 2;
  engine.add_query(naive);
  engine.add_query(naive);
  const EngineStats stats = engine.run(10);
  // naive_central pays n + 1 per step per query.
  EXPECT_EQ(stats.query_messages, 2u * 10u * 9u);
  EXPECT_EQ(stats.total_messages, stats.query_messages);
  EXPECT_EQ(stats.steps, 10u);
  ASSERT_EQ(stats.queries.size(), 2u);
  EXPECT_EQ(stats.queries[0].run.messages, stats.queries[1].run.messages);
}

TEST(Engine, LabelsDefaultToSpecDescription) {
  EngineConfig cfg;
  cfg.seed = 1;
  cfg.threads = 1;
  MonitoringEngine engine(cfg, make_stream(fleet_spec("uniform", 8)));
  QuerySpec spec;
  spec.protocol = "combined";
  spec.k = 2;
  spec.epsilon = 0.25;
  engine.add_query(spec);
  const EngineStats stats = engine.run(5);
  EXPECT_EQ(stats.queries[0].label, "combined k=2 eps=0.25");
}

}  // namespace
}  // namespace topkmon
