// Protocol registry (protocols/registry.hpp): sorted duplicate-free listing,
// name-based construction, extension registration, and conflict detection.
#include "protocols/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "protocols/naive.hpp"

namespace topkmon {
namespace {

TEST(ProtocolRegistry, ListsBuiltinsSortedAndDeduped) {
  const std::vector<std::string> names = protocol_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  for (const char* builtin : {"combined", "exact_topk", "half_error",
                              "naive_central", "naive_change", "topk_protocol"}) {
    EXPECT_TRUE(std::binary_search(names.begin(), names.end(), builtin)) << builtin;
  }
}

TEST(ProtocolRegistry, MakesEveryListedProtocol) {
  for (const std::string& name : protocol_names()) {
    const auto protocol = make_protocol(name);
    ASSERT_NE(protocol, nullptr) << name;
    EXPECT_EQ(protocol->name(), name);
  }
}

TEST(ProtocolRegistry, ThrowsOnUnknownName) {
  EXPECT_THROW(make_protocol("no_such_protocol"), std::runtime_error);
  EXPECT_THROW(make_protocol(""), std::runtime_error);
}

TEST(ProtocolRegistry, RegistersExtensionsIntoSortedListing) {
  register_protocol("zz_registry_test_monitor",
                    [] { return std::make_unique<NaiveCentralMonitor>(); });
  const std::vector<std::string> names = protocol_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  EXPECT_TRUE(std::binary_search(names.begin(), names.end(),
                                 std::string("zz_registry_test_monitor")));
  EXPECT_NE(make_protocol("zz_registry_test_monitor"), nullptr);
}

TEST(ProtocolRegistry, RejectsConflictingReRegistration) {
  register_protocol("aa_registry_conflict_probe",
                    [] { return std::make_unique<NaiveCentralMonitor>(); });
  // Same name again — regardless of the factory — is a conflict, not a
  // silent shadow or a duplicate listing entry.
  EXPECT_THROW(
      register_protocol("aa_registry_conflict_probe",
                        [] { return std::make_unique<NaiveChangeMonitor>(); }),
      std::runtime_error);
  const std::vector<std::string> names = protocol_names();
  EXPECT_EQ(std::count(names.begin(), names.end(), "aa_registry_conflict_probe"), 1);
}

TEST(ProtocolRegistry, RejectsBuiltinShadowingAndBadRegistrations) {
  EXPECT_THROW(register_protocol("combined",
                                 [] { return std::make_unique<NaiveCentralMonitor>(); }),
               std::runtime_error);
  EXPECT_THROW(register_protocol("", [] { return std::make_unique<NaiveCentralMonitor>(); }),
               std::runtime_error);
  EXPECT_THROW(register_protocol("null_factory_probe", nullptr), std::runtime_error);
}

}  // namespace
}  // namespace topkmon
