// Fault-model tests (src/faults):
//   * FleetSchedule generation is deterministic in the seed and matches the
//     configured shape (straggler count, churn event count, delay bounds);
//   * the FaultInjector realizes the documented semantics — identity without
//     faults, delayed reads for stragglers, frozen reads for offline nodes;
//   * with an all-zero schedule attached, every registered protocol's run is
//     bit-identical to the fault-free path (the core regression contract);
//   * loss/churn/straggler runs are deterministic, book the fault metrics,
//     and keep the strict validity contract;
//   * the engine path shares one degraded fleet across queries and stays
//     deterministic across thread counts.
#include "faults/injector.hpp"
#include "faults/registry.hpp"
#include "faults/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bench_support/runner.hpp"
#include "engine/engine.hpp"
#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/registry.hpp"

namespace topkmon {
namespace {

StreamSpec fleet_spec(std::size_t n = 16, std::size_t k = 3) {
  StreamSpec spec;
  spec.kind = "random_walk";
  spec.n = n;
  spec.k = k;
  spec.epsilon = 0.1;
  spec.sigma = std::max<std::size_t>(2, n / 2);
  spec.delta = 1 << 14;
  return spec;
}

Simulator make_sim(const std::string& protocol, FleetSchedulePtr faults,
                   std::uint64_t seed = 7, std::size_t n = 16, std::size_t k = 3) {
  SimConfig cfg;
  cfg.k = k;
  cfg.epsilon = protocol == "exact_topk" ? 0.0 : 0.1;
  cfg.seed = seed;
  cfg.strict = true;
  cfg.faults = std::move(faults);
  return Simulator(cfg, make_stream(fleet_spec(n, k)), make_protocol(protocol));
}

// --- FleetSchedule ---------------------------------------------------------

TEST(FleetSchedule, GenerateIsDeterministicInSeed) {
  FaultConfig cfg;
  cfg.churn_rate = 0.05;
  cfg.straggler_fraction = 0.25;
  cfg.max_delay = 6;
  cfg.loss = 0.02;
  cfg.horizon = 400;
  cfg.seed = 123;

  const FleetSchedule a = FleetSchedule::generate(cfg, 32);
  const FleetSchedule b = FleetSchedule::generate(cfg, 32);
  EXPECT_EQ(a.trace(), b.trace());
  EXPECT_EQ(a.events(), b.events());

  cfg.seed = 124;
  const FleetSchedule c = FleetSchedule::generate(cfg, 32);
  EXPECT_NE(a.trace(), c.trace());
}

TEST(FleetSchedule, GenerateMatchesConfiguredShape) {
  FaultConfig cfg;
  cfg.churn_rate = 0.1;
  cfg.straggler_fraction = 0.5;
  cfg.max_delay = 4;
  cfg.horizon = 200;
  cfg.seed = 9;

  const std::size_t n = 20;
  const FleetSchedule sched = FleetSchedule::generate(cfg, n);
  EXPECT_EQ(sched.events().size(), 20u);  // 0.1 * 200 toggles
  std::size_t stragglers = 0;
  for (NodeId i = 0; i < n; ++i) {
    const std::size_t d = sched.delay(i);
    if (d > 0) {
      ++stragglers;
      EXPECT_LE(d, cfg.max_delay);
    }
  }
  EXPECT_EQ(stragglers, 10u);  // 0.5 * 20 distinct nodes
  EXPECT_GE(sched.max_delay(), 1u);
  EXPECT_LE(sched.max_delay(), cfg.max_delay);
  for (const FleetEvent& ev : sched.events()) {
    EXPECT_GE(ev.step, 1);
    EXPECT_LT(ev.step, cfg.horizon);
    EXPECT_LT(ev.node, n);
  }
}

TEST(FleetSchedule, OnlineFollowsToggleEvents) {
  FleetSchedule sched(4);
  EXPECT_TRUE(sched.zero_fault());
  sched.add_event(3, 1);  // node 1 leaves at step 3
  sched.add_event(6, 1);  // node 1 rejoins at step 6
  EXPECT_FALSE(sched.zero_fault());

  EXPECT_TRUE(sched.online(1, 0));
  EXPECT_TRUE(sched.online(1, 2));
  EXPECT_FALSE(sched.online(1, 3));  // events take effect at their step
  EXPECT_FALSE(sched.online(1, 5));
  EXPECT_TRUE(sched.online(1, 6));
  EXPECT_TRUE(sched.online(1, 100));
  EXPECT_TRUE(sched.online(0, 3));  // other nodes unaffected

  EXPECT_TRUE(sched.membership_changed_at(3));
  EXPECT_TRUE(sched.membership_changed_at(6));
  EXPECT_FALSE(sched.membership_changed_at(4));
  // The first toggle recorded a leave, the second a join.
  ASSERT_EQ(sched.events().size(), 2u);
  EXPECT_FALSE(sched.events()[0].join);
  EXPECT_TRUE(sched.events()[1].join);
}

TEST(FleetSchedule, ZeroConfigYieldsNoSchedule) {
  const FaultConfig cfg;  // all defaults
  EXPECT_TRUE(zero_fault(cfg));
  EXPECT_EQ(make_fleet_schedule(cfg, 8), nullptr);

  FaultConfig lossy;
  lossy.loss = 0.1;
  EXPECT_FALSE(zero_fault(lossy));
  const FleetSchedulePtr sched = make_fleet_schedule(lossy, 8);
  ASSERT_NE(sched, nullptr);
  EXPECT_DOUBLE_EQ(sched->loss(), 0.1);
}

// --- FaultInjector ---------------------------------------------------------

TEST(FaultInjector, IdentityWithAllZeroSchedule) {
  FaultInjector inj(std::make_shared<FleetSchedule>(3));
  const ValueVector v0{10, 20, 30};
  const ValueVector v1{11, 21, 31};
  EXPECT_EQ(inj.transform(0, v0), v0);
  EXPECT_EQ(inj.transform(1, v1), v1);
  EXPECT_EQ(inj.last_stale(), 0u);
  EXPECT_EQ(inj.total_stale(), 0u);
}

TEST(FaultInjector, StragglerReadsDelayedValues) {
  auto sched = std::make_shared<FleetSchedule>(2);
  sched->set_delay(1, 2);
  FaultInjector inj(sched);

  // truth for node 1 over steps 0..4: 100, 101, 102, 103, 104
  EXPECT_EQ(inj.transform(0, {0, 100})[1], 100u);  // t=0: everyone current
  EXPECT_EQ(inj.transform(1, {1, 101})[1], 100u);  // clamped to step 0
  EXPECT_EQ(inj.transform(2, {2, 102})[1], 100u);  // exactly t-2
  EXPECT_EQ(inj.transform(3, {3, 103})[1], 101u);
  const ValueVector& eff = inj.transform(4, {4, 104});
  EXPECT_EQ(eff[1], 102u);
  EXPECT_EQ(eff[0], 4u);  // non-straggler tracks the live stream
  EXPECT_EQ(inj.last_stale(), 1u);
  EXPECT_EQ(inj.total_stale(), 4u);  // one stale read per step t>=1
}

TEST(FaultInjector, OfflineNodeFreezesUntilRejoin) {
  auto sched = std::make_shared<FleetSchedule>(2);
  sched->add_event(2, 0);  // node 0 offline during steps 2..3
  sched->add_event(4, 0);
  FaultInjector inj(sched);

  EXPECT_EQ(inj.transform(0, {10, 0})[0], 10u);
  EXPECT_EQ(inj.transform(1, {11, 0})[0], 11u);
  EXPECT_EQ(inj.transform(2, {12, 0})[0], 11u);  // frozen at last effective
  EXPECT_EQ(inj.transform(3, {13, 0})[0], 11u);
  EXPECT_EQ(inj.transform(4, {14, 0})[0], 14u);  // rejoined: live again
  EXPECT_EQ(inj.total_stale(), 2u);
}

// --- zero-fault bit-identity (the core regression contract) ----------------

TEST(Faults, AllZeroScheduleIsBitIdenticalForEveryProtocol) {
  for (const std::string& protocol : protocol_names()) {
    auto baseline = make_sim(protocol, nullptr);
    auto faulted = make_sim(protocol, std::make_shared<FleetSchedule>(16));
    const RunResult rb = baseline.run(150);
    const RunResult rf = faulted.run(150);

    EXPECT_EQ(rf.messages, rb.messages) << protocol;
    EXPECT_EQ(rf.by_tag, rb.by_tag) << protocol;
    EXPECT_EQ(rf.node_to_server, rb.node_to_server) << protocol;
    EXPECT_EQ(rf.server_to_node, rb.server_to_node) << protocol;
    EXPECT_EQ(rf.broadcasts, rb.broadcasts) << protocol;
    EXPECT_EQ(rf.max_rounds_per_step, rb.max_rounds_per_step) << protocol;
    EXPECT_EQ(rf.max_sigma, rb.max_sigma) << protocol;
    EXPECT_EQ(faulted.protocol().output(), baseline.protocol().output()) << protocol;
    EXPECT_EQ(rf.messages_lost, 0u) << protocol;
    EXPECT_EQ(rf.stale_reads, 0u) << protocol;
    EXPECT_EQ(rf.recovery_rounds, 0u) << protocol;
  }
}

// --- degraded runs ---------------------------------------------------------

TEST(Faults, LossInflatesMessagesByExactlyTheDropCount) {
  auto lossy = std::make_shared<FleetSchedule>(16);
  lossy->set_loss(0.2);

  auto baseline = make_sim("combined", nullptr);
  auto faulted = make_sim("combined", lossy);
  const RunResult rb = baseline.run(200);
  const RunResult rf = faulted.run(200);

  // Retransmission model: protocol decisions are unchanged; every drop costs
  // exactly one extra message of the same kind.
  EXPECT_GT(rf.messages_lost, 0u);
  EXPECT_EQ(rf.messages, rb.messages + rf.messages_lost);
  EXPECT_EQ(faulted.protocol().output(), baseline.protocol().output());

  auto again = make_sim("combined", lossy);
  EXPECT_EQ(again.run(200).messages_lost, rf.messages_lost);  // same seed
}

TEST(Faults, MembershipChangesFireRecoveryRounds) {
  auto churny = std::make_shared<FleetSchedule>(16);
  churny->add_event(5, 3);
  churny->add_event(9, 3);
  churny->add_event(9, 7);  // two toggles in one step = one recovery round

  auto sim = make_sim("combined", churny);
  const RunResult r = sim.run(50);
  EXPECT_EQ(r.recovery_rounds, 2u);
  EXPECT_GT(r.stale_reads, 0u);  // offline nodes read stale while away
}

TEST(Faults, StragglersKeepStrictValidity) {
  FaultConfig cfg;
  cfg.straggler_fraction = 0.25;
  cfg.max_delay = 5;
  cfg.seed = 11;
  const FleetSchedulePtr sched = make_fleet_schedule(cfg, 16);
  ASSERT_NE(sched, nullptr);

  for (const std::string& protocol : protocol_names()) {
    auto sim = make_sim(protocol, sched);  // strict=true throws on invalidity
    const RunResult r = sim.run(120);
    EXPECT_EQ(r.steps, 120u) << protocol;
    EXPECT_GT(r.stale_reads, 0u) << protocol;
  }
}

TEST(Faults, FlakyPresetRunIsDeterministic) {
  FaultConfig cfg = fault_preset("flaky");
  cfg.horizon = 300;
  cfg.seed = 21;
  const FleetSchedulePtr sched = make_fleet_schedule(cfg, 16);
  ASSERT_NE(sched, nullptr);

  auto a = make_sim("combined", sched);
  auto b = make_sim("combined", sched);
  const RunResult ra = a.run(300);
  const RunResult rb = b.run(300);
  EXPECT_EQ(ra.messages, rb.messages);
  EXPECT_EQ(ra.messages_lost, rb.messages_lost);
  EXPECT_EQ(ra.stale_reads, rb.stale_reads);
  EXPECT_EQ(ra.recovery_rounds, rb.recovery_rounds);
  EXPECT_EQ(a.protocol().output(), b.protocol().output());
}

// --- presets ---------------------------------------------------------------

TEST(FaultPresets, AllRegisteredNamesResolve) {
  for (const std::string& name : fault_preset_names()) {
    const FaultConfig cfg = fault_preset(name);
    if (name == "none") {
      EXPECT_TRUE(zero_fault(cfg));
    } else {
      EXPECT_FALSE(zero_fault(cfg)) << name;
    }
  }
  EXPECT_THROW(fault_preset("no_such_preset"), std::runtime_error);
}

// --- sweep path ------------------------------------------------------------

// Cells sharing one stream config are multiplexed through a single engine by
// run_sweep; with a fault scenario attached, the grouped path must still be
// bit-identical to one-Simulator-per-cell (same trial-derived schedules).
TEST(SweepFaults, GroupedCellsMatchSoloCellsUnderFaults) {
  ExperimentConfig base;
  base.stream = fleet_spec(16, 3);
  base.k = 3;
  base.epsilon = 0.1;
  base.steps = 120;
  base.trials = 3;
  base.seed = 31;
  base.opt_kind = OptKind::kNone;
  base.faults = fault_preset("flaky");
  base.faults.seed = 13;

  std::vector<SweepRow> rows;
  for (const std::string protocol : {"combined", "topk_protocol", "half_error"}) {
    ExperimentConfig cfg = base;
    cfg.protocol = protocol;
    rows.push_back({protocol, cfg});
  }
  const std::vector<ExperimentResult> grouped = run_sweep(rows, 2);

  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ExperimentResult solo = run_experiment(rows[i].cfg);
    EXPECT_EQ(grouped[i].messages.samples(), solo.messages.samples())
        << rows[i].label;
    EXPECT_EQ(grouped[i].last_run.messages_lost, solo.last_run.messages_lost)
        << rows[i].label;
    EXPECT_EQ(grouped[i].last_run.stale_reads, solo.last_run.stale_reads)
        << rows[i].label;
    EXPECT_EQ(grouped[i].last_run.recovery_rounds, solo.last_run.recovery_rounds)
        << rows[i].label;
  }
}

// --- engine path -----------------------------------------------------------

TEST(EngineFaults, AllZeroScheduleIsBitIdentical) {
  auto run_engine = [](FleetSchedulePtr faults) {
    EngineConfig cfg;
    cfg.threads = 1;
    cfg.seed = 42;
    cfg.faults = std::move(faults);
    MonitoringEngine engine(cfg, make_stream(fleet_spec(24, 4)));
    for (std::size_t q = 0; q < 4; ++q) {
      QuerySpec spec;
      spec.protocol = q % 2 == 0 ? "combined" : "topk_protocol";
      spec.k = 4;
      spec.epsilon = 0.1;
      spec.strict = true;
      engine.add_query(spec);
    }
    return engine.run(100);
  };

  const EngineStats base = run_engine(nullptr);
  const EngineStats faulted = run_engine(std::make_shared<FleetSchedule>(24));
  ASSERT_EQ(base.queries.size(), faulted.queries.size());
  for (std::size_t q = 0; q < base.queries.size(); ++q) {
    EXPECT_EQ(faulted.queries[q].run.messages, base.queries[q].run.messages);
    EXPECT_EQ(faulted.queries[q].output, base.queries[q].output);
  }
  EXPECT_EQ(faulted.total_messages, base.total_messages);
  EXPECT_EQ(faulted.messages_lost, 0u);
  EXPECT_EQ(faulted.stale_reads, 0u);
  EXPECT_EQ(faulted.recovery_rounds, 0u);
}

TEST(EngineFaults, DegradedFleetIsDeterministicAcrossThreadCounts) {
  FaultConfig fcfg = fault_preset("flaky");
  fcfg.horizon = 200;
  fcfg.seed = 5;
  const FleetSchedulePtr sched = make_fleet_schedule(fcfg, 24);
  ASSERT_NE(sched, nullptr);

  auto run_engine = [&](std::size_t threads) {
    EngineConfig cfg;
    cfg.threads = threads;
    cfg.seed = 42;
    cfg.faults = sched;
    MonitoringEngine engine(cfg, make_stream(fleet_spec(24, 4)));
    for (std::size_t q = 0; q < 8; ++q) {
      QuerySpec spec;
      spec.k = 4;
      spec.epsilon = 0.1;
      engine.add_query(spec);
    }
    return engine.run(200);
  };

  const EngineStats one = run_engine(1);
  const EngineStats four = run_engine(4);
  ASSERT_EQ(one.queries.size(), four.queries.size());
  for (std::size_t q = 0; q < one.queries.size(); ++q) {
    EXPECT_EQ(one.queries[q].run.messages, four.queries[q].run.messages);
    EXPECT_EQ(one.queries[q].run.messages_lost, four.queries[q].run.messages_lost);
    EXPECT_EQ(one.queries[q].output, four.queries[q].output);
  }
  EXPECT_EQ(one.messages_lost, four.messages_lost);
  EXPECT_EQ(one.stale_reads, four.stale_reads);
  EXPECT_GT(one.stale_reads, 0u);
  EXPECT_GT(one.messages_lost, 0u);
}

}  // namespace
}  // namespace topkmon
