#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace topkmon {
namespace {

TEST(Trace, DisabledByDefault) {
  Trace t;
  EXPECT_FALSE(t.enabled());
  t.emit(1, "phase", "A1");
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, RecordsWhenEnabled) {
  Trace t(10);
  t.emit(1, "phase", "A1");
  t.emit(2, "violation", "node 3 from-below");
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].category, "phase");
  EXPECT_EQ(t.events()[1].time, 2);
}

TEST(Trace, BoundedCapacityKeepsNewest) {
  Trace t(3);
  for (int i = 0; i < 10; ++i) {
    t.emit(i, "e", std::to_string(i));
  }
  ASSERT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.events().front().time, 7);
  EXPECT_EQ(t.events().back().time, 9);
}

TEST(Trace, RenderFormatsLines) {
  Trace t(4);
  t.emit(5, "interval", "L=[3,9]");
  const auto lines = t.render();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "t=5 [interval] L=[3,9]");
}

TEST(Trace, CapacityShrinkTrims) {
  Trace t(5);
  for (int i = 0; i < 5; ++i) t.emit(i, "e", "");
  t.set_capacity(2);
  EXPECT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events().front().time, 3);
}

TEST(Trace, ClearEmpties) {
  Trace t(5);
  t.emit(0, "e", "");
  t.clear();
  EXPECT_TRUE(t.events().empty());
}

// Regression: Trace::global() used to be a bare deque — concurrent emission
// from the shard-parallel engine corrupted it. Emission now serializes on an
// internal mutex; hammer it from many threads and check the bound holds.
TEST(Trace, ConcurrentEmissionIsSafe) {
  Trace t(64);
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&t, w] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        t.emit(i, "shard" + std::to_string(w), std::to_string(i));
        if (i % 256 == 0) {
          (void)t.snapshot();  // concurrent readers are legal too
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const auto events = t.snapshot();
  EXPECT_EQ(events.size(), 64u);
  EXPECT_EQ(t.render().size(), 64u);
  for (const auto& e : events) {
    EXPECT_EQ(e.category.substr(0, 5), "shard");
  }
}

TEST(Trace, SnapshotCopiesEvents) {
  Trace t(4);
  t.emit(1, "a", "x");
  auto snap = t.snapshot();
  t.emit(2, "b", "y");
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].category, "a");
  EXPECT_EQ(t.events().size(), 2u);
}

TEST(Trace, GlobalSingleton) {
  Trace::global().set_capacity(4);
  Trace::global().clear();
  Trace::global().emit(1, "g", "x");
  EXPECT_EQ(Trace::global().events().size(), 1u);
  Trace::global().set_capacity(0);
  Trace::global().clear();
}

}  // namespace
}  // namespace topkmon
