#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace topkmon {
namespace {

TEST(Trace, DisabledByDefault) {
  Trace t;
  EXPECT_FALSE(t.enabled());
  t.emit(1, "phase", "A1");
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, RecordsWhenEnabled) {
  Trace t(10);
  t.emit(1, "phase", "A1");
  t.emit(2, "violation", "node 3 from-below");
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].category, "phase");
  EXPECT_EQ(t.events()[1].time, 2);
}

TEST(Trace, BoundedCapacityKeepsNewest) {
  Trace t(3);
  for (int i = 0; i < 10; ++i) {
    t.emit(i, "e", std::to_string(i));
  }
  ASSERT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.events().front().time, 7);
  EXPECT_EQ(t.events().back().time, 9);
}

TEST(Trace, RenderFormatsLines) {
  Trace t(4);
  t.emit(5, "interval", "L=[3,9]");
  const auto lines = t.render();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "t=5 [interval] L=[3,9]");
}

TEST(Trace, CapacityShrinkTrims) {
  Trace t(5);
  for (int i = 0; i < 5; ++i) t.emit(i, "e", "");
  t.set_capacity(2);
  EXPECT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events().front().time, 3);
}

TEST(Trace, ClearEmpties) {
  Trace t(5);
  t.emit(0, "e", "");
  t.clear();
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, GlobalSingleton) {
  Trace::global().set_capacity(4);
  Trace::global().clear();
  Trace::global().emit(1, "g", "x");
  EXPECT_EQ(Trace::global().events().size(), 1u);
  Trace::global().set_capacity(0);
  Trace::global().clear();
}

}  // namespace
}  // namespace topkmon
