#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace topkmon {
namespace {

TEST(Trace, DisabledByDefault) {
  Trace t;
  EXPECT_FALSE(t.enabled());
  t.emit(1, TraceCategory::kPhase, "A1");
  EXPECT_EQ(t.size(), 0u);
}

TEST(Trace, RecordsWhenEnabled) {
  Trace t(10);
  t.emit(1, TraceCategory::kPhase, "A1");
  t.emit(2, TraceCategory::kViolation, "node 3 from-below");
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].category, TraceCategory::kPhase);
  EXPECT_EQ(events[1].time, 2);
  EXPECT_STREQ(events[1].detail, "node 3 from-below");
}

TEST(Trace, BoundedCapacityKeepsNewest) {
  Trace t(3);
  for (int i = 0; i < 10; ++i) {
    t.emit(i, TraceCategory::kOther, std::to_string(i));
  }
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().time, 7);
  EXPECT_EQ(events.back().time, 9);
}

TEST(Trace, RenderFormatsLines) {
  Trace t(4);
  t.emit(5, TraceCategory::kInterval, "L=[3,9]");
  const auto lines = t.render();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "t=5 [interval] L=[3,9]");
}

TEST(Trace, LongDetailTruncatesInsteadOfAllocating) {
  Trace t(2);
  const std::string detail(3 * kTraceDetailChars, 'x');
  t.emit(1, TraceCategory::kOther, detail);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::strlen(events[0].detail), kTraceDetailChars - 1);
  EXPECT_EQ(std::string(events[0].detail),
            detail.substr(0, kTraceDetailChars - 1));
}

TEST(Trace, CapacityShrinkTrims) {
  Trace t(5);
  for (int i = 0; i < 5; ++i) t.emit(i, TraceCategory::kOther, "");
  t.set_capacity(2);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events.front().time, 3);
  EXPECT_EQ(events.back().time, 4);
}

TEST(Trace, ClearEmpties) {
  Trace t(5);
  t.emit(0, TraceCategory::kOther, "");
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

// Regression: Trace::global() used to be a bare deque — concurrent emission
// from the shard-parallel engine corrupted it. Emission now serializes on an
// internal mutex; hammer it from many threads and check the bound holds.
TEST(Trace, ConcurrentEmissionIsSafe) {
  Trace t(64);
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&t, w] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        t.emit(i, TraceCategory::kProbe,
               "shard=" + std::to_string(w) + " i=" + std::to_string(i));
        if (i % 256 == 0) {
          (void)t.snapshot();  // concurrent readers are legal too
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const auto events = t.snapshot();
  EXPECT_EQ(events.size(), 64u);
  EXPECT_EQ(t.render().size(), 64u);
  for (const auto& e : events) {
    EXPECT_EQ(e.category, TraceCategory::kProbe);
    EXPECT_EQ(std::string(e.detail).substr(0, 6), "shard=");
  }
}

TEST(Trace, SnapshotCopiesEvents) {
  Trace t(4);
  t.emit(1, TraceCategory::kWindow, "x");
  auto snap = t.snapshot();
  t.emit(2, TraceCategory::kRecovery, "y");
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].category, TraceCategory::kWindow);
  EXPECT_EQ(t.size(), 2u);
}

TEST(Trace, GlobalSingleton) {
  Trace::global().set_capacity(4);
  Trace::global().clear();
  Trace::global().emit(1, TraceCategory::kOther, "x");
  EXPECT_EQ(Trace::global().size(), 1u);
  Trace::global().set_capacity(0);
  Trace::global().clear();
}

TEST(Trace, CategoryNamesRoundTrip) {
  EXPECT_STREQ(to_string(TraceCategory::kPhase), "phase");
  EXPECT_STREQ(to_string(TraceCategory::kViolation), "violation");
  EXPECT_STREQ(to_string(TraceCategory::kInterval), "interval");
  EXPECT_STREQ(to_string(TraceCategory::kRecovery), "recovery");
  EXPECT_STREQ(to_string(TraceCategory::kWindow), "window");
  EXPECT_STREQ(to_string(TraceCategory::kProbe), "probe");
  EXPECT_STREQ(to_string(TraceCategory::kOther), "other");
}

}  // namespace
}  // namespace topkmon
