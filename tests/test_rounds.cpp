// Model-compliance checks: the communication protocol between two
// consecutive time steps may use at most polylog(n, Δ) rounds (Sect. 2 of
// the paper). Every protocol must respect that budget on every workload.
#include <cmath>

#include <gtest/gtest.h>

#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/registry.hpp"

namespace topkmon {
namespace {

struct RoundsCase {
  std::string protocol;
  std::string stream;
  std::size_t n;
};

class RoundBudget : public ::testing::TestWithParam<RoundsCase> {};

TEST_P(RoundBudget, PolylogRoundsPerStep) {
  const auto& [protocol, stream, n] = GetParam();
  StreamSpec spec;
  spec.kind = stream;
  spec.n = n;
  spec.k = 4;
  spec.sigma = n / 2;
  spec.delta = 1 << 16;
  spec.epsilon = 0.15;
  SimConfig cfg;
  cfg.k = 4;
  cfg.epsilon = 0.15;
  cfg.seed = 0xB00;
  Simulator sim(cfg, make_stream(spec), make_protocol(protocol));
  const auto r = sim.run(200);
  // Budget: log^3(n * Delta) is a comfortable polylog envelope; a protocol
  // that serialized per-node communication would hit ~n * log n instead
  // (for n = 128: polylog ~ 9261 vs linear ~ 16k+ per heavy step... use a
  // tighter practical bound: c * log(n)^2 * log(Delta)).
  const double logn = std::log2(static_cast<double>(n)) + 1.0;
  const double budget = 8.0 * logn * logn * 17.0;  // c · log²n · logΔ
  EXPECT_LE(static_cast<double>(r.max_rounds_per_step), budget)
      << protocol << " on " << stream;
}

std::vector<RoundsCase> cases() {
  std::vector<RoundsCase> out;
  for (const char* protocol : {"exact_topk", "topk_protocol", "combined", "half_error"}) {
    for (const char* stream : {"random_walk", "oscillating", "uniform"}) {
      out.push_back({protocol, stream, 32});
      out.push_back({protocol, stream, 128});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(All, RoundBudget, ::testing::ValuesIn(cases()),
                         [](const ::testing::TestParamInfo<RoundsCase>& param) {
                           return param.param.protocol + "_" + param.param.stream +
                                  "_" + std::to_string(param.param.n);
                         });

TEST(RoundAccounting, ExistenceDominatedStepsStayTiny) {
  // A quiescent step costs one violation-existence check: <= log n + 1
  // rounds and zero messages.
  StreamSpec spec;
  spec.kind = "sine_noise";
  spec.n = 64;
  spec.k = 4;
  spec.delta = 1 << 14;
  SimConfig cfg;
  cfg.k = 4;
  cfg.epsilon = 0.3;  // wide band: mostly quiescent
  cfg.seed = 77;
  Simulator sim(cfg, make_stream(spec), make_protocol("combined"));
  sim.run(50);
  const auto before_msgs = sim.context().stats().total();
  sim.context().stats().begin_step();
  // Direct quiescence check at the context level.
  const bool quiet = !sim.context().collect_violations().any;
  if (quiet) {
    EXPECT_EQ(sim.context().stats().total(), before_msgs);
    EXPECT_LE(sim.context().stats().rounds_this_step(), 7u);  // log2 64 + 1
  }
}

}  // namespace
}  // namespace topkmon
