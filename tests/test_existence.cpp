#include "protocols/existence.hpp"

#include <gtest/gtest.h>

#include "util/summary.hpp"

namespace topkmon {
namespace {

TEST(Existence, AlwaysCorrectOnAllZeros) {
  Rng rng(1);
  for (std::size_t n : {1u, 2u, 5u, 64u, 1000u}) {
    std::vector<bool> bits(n, false);
    const auto res = ExistenceProtocol::run(bits, rng);
    EXPECT_FALSE(res.any) << "n=" << n;
    EXPECT_EQ(res.messages, 0u);
    EXPECT_TRUE(res.senders.empty());
  }
}

TEST(Existence, AlwaysCorrectWithOnes) {
  Rng rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<bool> bits(100, false);
    const std::size_t ones = 1 + rng.below(100);
    for (std::size_t i = 0; i < ones; ++i) bits[rng.below(100)] = true;
    const auto res = ExistenceProtocol::run(bits, rng);
    EXPECT_TRUE(res.any);
    EXPECT_GE(res.messages, 1u);
    for (const auto& hit : res.senders) {
      EXPECT_TRUE(bits[hit.id]) << "sender must hold a 1";
    }
  }
}

TEST(Existence, RoundBudgetRespected) {
  Rng rng(3);
  for (std::size_t n : {1u, 2u, 3u, 4u, 7u, 8u, 9u, 1000u, 1024u}) {
    std::vector<bool> bits(n, true);
    const auto res = ExistenceProtocol::run(bits, rng);
    EXPECT_LE(res.rounds, ExistenceProtocol::max_rounds(n)) << "n=" << n;
  }
}

TEST(Existence, MaxRoundsFormula) {
  EXPECT_EQ(ExistenceProtocol::max_rounds(1), 1u);
  EXPECT_EQ(ExistenceProtocol::max_rounds(2), 2u);
  EXPECT_EQ(ExistenceProtocol::max_rounds(1024), 11u);
  EXPECT_EQ(ExistenceProtocol::max_rounds(1000), 11u);
}

TEST(Existence, SendersCarryValues) {
  Rng rng(4);
  const std::size_t n = 32;
  const auto res = ExistenceProtocol::run(
      n, [](NodeId i) { return i % 2 == 0; }, [](NodeId i) { return Value{i} * 10; },
      rng);
  ASSERT_TRUE(res.any);
  for (const auto& hit : res.senders) {
    EXPECT_EQ(hit.value, Value{hit.id} * 10);
    EXPECT_EQ(hit.id % 2, 0u);
  }
}

// Lemma 3.1: expected messages bounded by a constant (paper derives <= 6)
// regardless of n and of the number b of ones.
struct ExistenceCase {
  std::size_t n;
  std::size_t b;
};

class ExistenceExpectation : public ::testing::TestWithParam<ExistenceCase> {};

TEST_P(ExistenceExpectation, ExpectedMessagesConstant) {
  const auto [n, b] = GetParam();
  Rng rng(1000 + n * 31 + b);
  StreamingMoments messages;
  std::vector<bool> bits(n, false);
  for (std::size_t i = 0; i < b; ++i) bits[i] = true;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    const auto res = ExistenceProtocol::run(bits, rng);
    ASSERT_EQ(res.any, b > 0);
    messages.add(static_cast<double>(res.messages));
  }
  EXPECT_LE(messages.mean(), 6.0) << "n=" << n << " b=" << b;
  if (b > 0) {
    EXPECT_GE(messages.mean(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExistenceExpectation,
    ::testing::Values(ExistenceCase{16, 1}, ExistenceCase{16, 8},
                      ExistenceCase{16, 16}, ExistenceCase{256, 1},
                      ExistenceCase{256, 16}, ExistenceCase{256, 128},
                      ExistenceCase{256, 256}, ExistenceCase{4096, 1},
                      ExistenceCase{4096, 64}, ExistenceCase{4096, 2048},
                      ExistenceCase{4096, 4096}, ExistenceCase{64, 0}));

TEST(Existence, SingleNode) {
  Rng rng(5);
  std::vector<bool> one{true};
  const auto res = ExistenceProtocol::run(one, rng);
  EXPECT_TRUE(res.any);
  EXPECT_EQ(res.messages, 1u);
  std::vector<bool> zero{false};
  const auto res0 = ExistenceProtocol::run(zero, rng);
  EXPECT_FALSE(res0.any);
}

}  // namespace
}  // namespace topkmon
