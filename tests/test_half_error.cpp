#include "protocols/half_error.hpp"

#include <gtest/gtest.h>

#include "offline/opt.hpp"
#include "sim/simulator.hpp"
#include "streams/oscillating.hpp"
#include "streams/registry.hpp"
#include "streams/trace_file.hpp"

namespace topkmon {
namespace {

SimConfig strict_cfg(std::size_t k, double eps, std::uint64_t seed,
                     bool history = false) {
  SimConfig cfg;
  cfg.k = k;
  cfg.epsilon = eps;
  cfg.seed = seed;
  cfg.strict = true;
  cfg.record_history = history;
  return cfg;
}

TEST(HalfError, GapRoutesToTopKMode) {
  std::vector<ValueVector> rows(5, ValueVector{1000, 10, 5, 2});
  auto protocol = std::make_unique<HalfErrorMonitor>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(1, 0.2, 1), std::make_unique<TraceFileStream>(rows),
                std::move(protocol));
  sim.step();
  EXPECT_TRUE(proto->in_topk_mode());
}

TEST(HalfError, DenseRoutesToDenseRound) {
  std::vector<ValueVector> rows(5, ValueVector{100, 99, 98, 2});
  auto protocol = std::make_unique<HalfErrorMonitor>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(2, 0.2, 2), std::make_unique<TraceFileStream>(rows),
                std::move(protocol));
  sim.step();
  EXPECT_FALSE(proto->in_topk_mode());
}

TEST(HalfError, StrictOnDenseStreams) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    OscillatingConfig osc;
    osc.n = 18;
    osc.k = 4;
    osc.epsilon = 0.2;
    osc.sigma = 9;
    Simulator sim(strict_cfg(4, 0.2, seed), std::make_unique<OscillatingStream>(osc),
                  std::make_unique<HalfErrorMonitor>());
    sim.run(300);
    SUCCEED();
  }
}

TEST(HalfError, CommitsCostConstantMessages) {
  // A V2 node that crosses u_r once is committed with O(1) messages: the
  // violation report (existence) — no broadcast, no probe.
  std::vector<ValueVector> rows;
  rows.push_back({100, 100, 99, 10, 9});
  rows.push_back({100, 100, 130, 10, 9});  // crosses u_r -> V1 commit
  for (int t = 0; t < 5; ++t) rows.push_back({100, 100, 130, 10, 9});
  auto protocol = std::make_unique<HalfErrorMonitor>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(2, 0.2, 3), std::make_unique<TraceFileStream>(rows),
                std::move(protocol));
  sim.step();
  const auto phases_before = proto->phases();
  const auto before = sim.context().stats().total();
  sim.step();  // the commit step
  const auto cost = sim.context().stats().total() - before;
  if (proto->phases() == phases_before) {  // no restart => pure commit
    EXPECT_LE(cost, 6u);
  }
}

TEST(HalfError, LinearInSigmaAgainstHalfErrorOpt) {
  // Cor 5.9's bound is O(σ + k log n + ...) per OPT(ε/2) phase. Verify the
  // measured ratio grows ~linearly (not quadratically) in σ.
  auto ratio_for = [&](std::size_t sigma) {
    OscillatingConfig osc;
    osc.n = 2 * sigma + 4;
    osc.k = 3;
    osc.epsilon = 0.2;
    osc.sigma = sigma;
    Simulator sim(strict_cfg(3, 0.2, 40 + sigma),
                  std::make_unique<OscillatingStream>(osc),
                  std::make_unique<HalfErrorMonitor>());
    SimConfig cfg = strict_cfg(3, 0.2, 40 + sigma, true);
    Simulator sim2(cfg, std::make_unique<OscillatingStream>(osc),
                   std::make_unique<HalfErrorMonitor>());
    const auto run = sim2.run(250);
    const auto opt = OfflineOpt::approx(sim2.history(), 3, 0.1);  // eps/2
    return static_cast<double>(run.messages) /
           static_cast<double>(std::max<std::uint64_t>(1, opt.phases));
  };
  const double r_small = ratio_for(4);
  const double r_large = ratio_for(16);
  // 4x sigma should not blow the ratio up by more than ~8x (linear + noise);
  // a sigma^2 protocol would show ~16x.
  EXPECT_LT(r_large, r_small * 10.0);
}

class HalfErrorGrid : public ::testing::TestWithParam<double> {};

TEST_P(HalfErrorGrid, StrictAcrossEpsilons) {
  const double eps = GetParam();
  OscillatingConfig osc;
  osc.n = 16;
  osc.k = 4;
  osc.epsilon = eps;
  osc.sigma = 8;
  Simulator sim(strict_cfg(4, eps, 60), std::make_unique<OscillatingStream>(osc),
                std::make_unique<HalfErrorMonitor>());
  sim.run(200);
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Epsilons, HalfErrorGrid,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.5));

}  // namespace
}  // namespace topkmon
