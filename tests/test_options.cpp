// Tests of the shared declarative CLI options layer (ctest label: net — it
// ships with the networked-runtime PR and gates the same binaries).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "apps/options.hpp"
#include "streams/registry.hpp"

namespace topkmon {
namespace {

/// argv builder: keeps the strings alive for the char* view Flags wants.
struct Argv {
  explicit Argv(std::vector<std::string> args) : strings(std::move(args)) {
    strings.insert(strings.begin(), "test_binary");
    for (std::string& s : strings) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }

  std::vector<std::string> strings;
  std::vector<char*> ptrs;
};

TEST(Options, BindingsApplyGivenFlagsAndKeepDefaults) {
  std::string proto = "combined";
  std::uint64_t steps = 1000;
  double eps = 0.1;
  bool strict = true;
  std::size_t window = 0;

  Options opts("t", "test");
  opts.add_string("protocol", &proto, "p");
  opts.add_uint("steps", &steps, "s");
  opts.add_double("eps", &eps, "e");
  opts.add_bool("strict", &strict, "st");
  opts.add_size("window", &window, "w");

  Argv a({"--protocol=exact_topk", "--eps", "0.25", "--window", "64"});
  std::ostringstream err;
  EXPECT_EQ(opts.parse(a.argc(), a.argv(), err), Options::ParseResult::kOk);
  EXPECT_EQ(proto, "exact_topk");
  EXPECT_EQ(steps, 1000u);  // untouched default
  EXPECT_DOUBLE_EQ(eps, 0.25);
  EXPECT_TRUE(strict);  // bool default survives
  EXPECT_EQ(window, 64u);
}

TEST(Options, RejectsUnknownFlags) {
  std::string proto = "combined";
  Options opts("t", "test");
  opts.add_string("protocol", &proto, "p");

  Argv a({"--protocl=exact_topk"});  // typo
  std::ostringstream err;
  EXPECT_EQ(opts.parse(a.argc(), a.argv(), err), Options::ParseResult::kError);
  EXPECT_NE(err.str().find("unknown flag --protocl"), std::string::npos);
}

TEST(Options, HelpListsEveryDeclaredFlagWithDefaults) {
  std::string proto = "combined";
  OutputOptions out;
  Options opts("t", "test");
  opts.add_string("protocol", &proto, "the protocol");
  opts.note("faults", "fault preset", "none");
  add_output_options(opts, out);

  Argv a({"--help"});
  std::ostringstream text;
  EXPECT_EQ(opts.parse(a.argc(), a.argv(), text), Options::ParseResult::kHelp);
  const std::string help = text.str();
  EXPECT_NE(help.find("--protocol"), std::string::npos);
  EXPECT_NE(help.find("[combined]"), std::string::npos);
  EXPECT_NE(help.find("--faults"), std::string::npos);
  EXPECT_NE(help.find("--telemetry[=PATH]"), std::string::npos);
  EXPECT_NE(help.find("--json"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST(Options, OptionalPathSemantics) {
  OutputOptions out;
  Options opts("t", "test");
  add_output_options(opts, out);

  {  // absent -> ""
    Argv a({});
    std::ostringstream err;
    ASSERT_EQ(opts.parse(a.argc(), a.argv(), err), Options::ParseResult::kOk);
    EXPECT_EQ(out.telemetry_json, "");
  }
  {  // bare flag -> default path
    Argv a({"--telemetry"});
    std::ostringstream err;
    ASSERT_EQ(opts.parse(a.argc(), a.argv(), err), Options::ParseResult::kOk);
    EXPECT_EQ(out.telemetry_json, "telemetry.json");
  }
  {  // explicit value -> that value
    Argv a({"--telemetry=custom.json", "--telemetry-prom", "m.prom"});
    std::ostringstream err;
    ASSERT_EQ(opts.parse(a.argc(), a.argv(), err), Options::ParseResult::kOk);
    EXPECT_EQ(out.telemetry_json, "custom.json");
    EXPECT_EQ(out.telemetry_prom, "m.prom");
  }
}

TEST(Options, StreamGroupBindsTheFullSpecAndDerivesSigma) {
  StreamSpec spec;
  spec.kind = "zipf_bursty";
  spec.n = 64;
  spec.k = 4;
  Options opts("t", "test");
  add_stream_options(opts, spec);

  Argv a({"--stream=oscillating", "--n", "32", "--churn", "0.5"});
  std::ostringstream err;
  ASSERT_EQ(opts.parse(a.argc(), a.argv(), err), Options::ParseResult::kOk);
  finalize_stream_options(opts, spec, 4);
  EXPECT_EQ(spec.kind, "oscillating");
  EXPECT_EQ(spec.n, 32u);
  EXPECT_EQ(spec.k, 4u);  // preset default untouched
  EXPECT_DOUBLE_EQ(spec.churn, 0.5);
  EXPECT_EQ(spec.sigma, 8u);  // n/4 from the post-parse default

  // An explicit --sigma wins over the derived default.
  Options opts2("t", "test");
  add_stream_options(opts2, spec);
  Argv b({"--sigma", "5"});
  ASSERT_EQ(opts2.parse(b.argc(), b.argv(), err), Options::ParseResult::kOk);
  finalize_stream_options(opts2, spec, 4);
  EXPECT_EQ(spec.sigma, 5u);
}

TEST(Options, FaultGroupFlagsAreKnownAndReachTheFaultParser) {
  Options opts("t", "test");
  add_fault_options(opts);

  Argv a({"--faults=lossy", "--loss", "0.5", "--fault-seed", "9"});
  std::ostringstream err;
  ASSERT_EQ(opts.parse(a.argc(), a.argv(), err), Options::ParseResult::kOk);
  const FaultConfig cfg = fault_config_from_flags(opts.flags(), 100);
  EXPECT_DOUBLE_EQ(cfg.loss, 0.5);
  EXPECT_EQ(cfg.seed, 9u);
}

TEST(Options, ListPrintsTheRegistries) {
  Options opts("t", "test");
  Argv a({"--list"});
  std::ostringstream text;
  EXPECT_EQ(opts.parse(a.argc(), a.argv(), text), Options::ParseResult::kHelp);
  EXPECT_NE(text.str().find("protocols:"), std::string::npos);
  EXPECT_NE(text.str().find("combined"), std::string::npos);
  EXPECT_NE(text.str().find("random_walk"), std::string::npos);
}

TEST(Options, PrintTableHonorsTheSharedOutputToggles) {
  Table t("title");
  t.header({"a", "b"});
  t.add_row({"1", "2"});

  OutputOptions out;
  std::ostringstream ascii;
  print_table(t, out, ascii);
  EXPECT_NE(ascii.str().find("== title =="), std::string::npos);

  out.json = true;
  std::ostringstream json;
  print_table(t, out, json);
  EXPECT_NE(json.str().find("\"title\": \"title\""), std::string::npos);
  EXPECT_NE(json.str().find("{\"a\": \"1\", \"b\": \"2\"}"), std::string::npos);

  out.json = false;
  out.markdown = true;
  out.csv = true;
  std::ostringstream md;
  print_table(t, out, md);
  EXPECT_NE(md.str().find("### title"), std::string::npos);
  EXPECT_NE(md.str().find("a,b\n1,2\n"), std::string::npos);
}

}  // namespace
}  // namespace topkmon
