#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace topkmon {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, WorkStealingCoversAllIndicesExactlyOnce) {
  for (const std::size_t threads : {1ul, 2ul, 3ul, 8ul}) {
    for (const std::size_t count : {0ul, 1ul, 2ul, 7ul, 64ul, 1000ul}) {
      ThreadPool pool(threads);
      std::vector<std::atomic<int>> hits(count);
      parallel_for_ws(pool, count, [&](std::size_t i) { hits[i].fetch_add(1); });
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
      }
    }
  }
}

TEST(ThreadPool, WorkStealingRebalancesSkewedTasks) {
  // One pathologically slow index at the front of chunk 0: the remaining
  // indices must still all run (stolen by the other workers) and the loop
  // must terminate.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  parallel_for_ws(pool, 64, [&](std::size_t i) {
    if (i == 0) {
      // Busy-wait until the others prove they are running concurrently, or
      // enough iterations pass that single-threaded execution also finishes.
      for (int spin = 0; spin < 1000000 && done.load() < 32; ++spin) {
      }
    }
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, WorkStealingReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    parallel_for_ws(pool, 100, [&](std::size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    parallel_for(pool, 20, [&](std::size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  // Single worker executes FIFO.
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

// threads=0 means "hardware concurrency", which the standard allows to
// report 0; the pool must clamp to >= 1 worker in every case — a zero-worker
// pool would leave submitted tasks queued forever and hang wait_idle().
TEST(ThreadPool, ZeroThreadRequestClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();  // must not hang
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, TransientHelper) {
  std::atomic<int> counter{0};
  parallel_for(64, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

}  // namespace
}  // namespace topkmon
