#include "protocols/sampling.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "model/oracle.hpp"
#include "util/summary.hpp"

namespace topkmon {
namespace {

TEST(SampleMax, FindsArgmaxOnRandomInputs) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.below(200);
    std::vector<Value> values(n);
    for (auto& v : values) v = rng.below(1 << 20);
    const auto out = sample_max_standalone(values, rng);
    ASSERT_TRUE(out.found);
    const NodeId expected = Oracle::ranking(values)[0];
    EXPECT_EQ(out.id, expected);
    EXPECT_EQ(out.value, values[expected]);
  }
}

TEST(SampleMax, TieBreaksByLowestId) {
  Rng rng(13);
  std::vector<Value> values{7, 7, 7, 7};
  for (int trial = 0; trial < 50; ++trial) {
    const auto out = sample_max_standalone(values, rng);
    ASSERT_TRUE(out.found);
    EXPECT_EQ(out.id, 0u);
  }
}

TEST(SampleMax, MessagesLogarithmic) {
  // Lemma 2.6: O(log n) messages expected. Check that the growth from
  // n=64 to n=65536 is ~ log-factor, far below linear.
  Rng rng(17);
  auto mean_messages = [&](std::size_t n) {
    StreamingMoments m;
    for (int t = 0; t < 300; ++t) {
      std::vector<Value> values(n);
      for (auto& v : values) v = rng.next_u64() >> 20;
      const auto out = sample_max_standalone(values, rng);
      m.add(static_cast<double>(out.messages));
    }
    return m.mean();
  };
  const double small = mean_messages(64);
  const double large = mean_messages(4096);
  EXPECT_LT(large, small * 4.0);          // log growth, not 64x
  EXPECT_LT(large, 12.0 * std::log2(4096.0));  // generous constant
}

TEST(ProbeTop, ReturnsDescendingRanks) {
  Rng rng(19);
  std::vector<Value> values{50, 10, 90, 70, 30, 60};
  const auto out = probe_top_standalone(values, 4, rng);
  ASSERT_EQ(out.top.size(), 4u);
  EXPECT_EQ(out.top[0].first, 2u);
  EXPECT_EQ(out.top[1].first, 3u);
  EXPECT_EQ(out.top[2].first, 5u);
  EXPECT_EQ(out.top[3].first, 0u);
  EXPECT_EQ(out.top[0].second, 90u);
}

TEST(ProbeTop, FullSortWhenMEqualsN) {
  Rng rng(23);
  std::vector<Value> values{5, 1, 4, 2, 3};
  const auto out = probe_top_standalone(values, 5, rng);
  ASSERT_EQ(out.top.size(), 5u);
  for (std::size_t i = 0; i + 1 < out.top.size(); ++i) {
    EXPECT_TRUE(ranks_above(out.top[i].second, out.top[i].first,
                            out.top[i + 1].second, out.top[i + 1].first));
  }
}

class ProbeCostParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ProbeCostParam, CostScalesWithM) {
  const std::size_t m = GetParam();
  Rng rng(29 + m);
  StreamingMoments msgs;
  for (int t = 0; t < 100; ++t) {
    std::vector<Value> values(512);
    for (auto& v : values) v = rng.next_u64() >> 16;
    const auto out = probe_top_standalone(values, m, rng);
    ASSERT_EQ(out.top.size(), m);
    msgs.add(static_cast<double>(out.messages));
  }
  // O(m log n) with a generous constant.
  EXPECT_LE(msgs.mean(), 12.0 * static_cast<double>(m) * std::log2(512.0));
}

INSTANTIATE_TEST_SUITE_P(Ms, ProbeCostParam, ::testing::Values(1, 2, 4, 8, 16));

TEST(BisectMax, AgreesWithSamplingOnRandomInputs) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.below(100);
    const Value delta = 1 + rng.below(1 << 20);
    std::vector<Value> values(n);
    for (auto& v : values) v = rng.below(delta + 1);
    const auto s = sample_max_standalone(values, rng);
    const auto b = bisect_max_standalone(values, delta, rng);
    ASSERT_TRUE(b.found);
    EXPECT_EQ(b.id, s.id);
    EXPECT_EQ(b.value, s.value);
  }
}

TEST(BisectMax, TieBreaksByLowestId) {
  Rng rng(37);
  std::vector<Value> values{9, 9, 9};
  const auto b = bisect_max_standalone(values, 16, rng);
  EXPECT_EQ(b.id, 0u);
  EXPECT_EQ(b.value, 9u);
}

TEST(BisectMax, AllZeros) {
  Rng rng(41);
  std::vector<Value> values{0, 0, 0, 0};
  const auto b = bisect_max_standalone(values, 1 << 10, rng);
  ASSERT_TRUE(b.found);
  EXPECT_EQ(b.value, 0u);
  EXPECT_EQ(b.id, 0u);
}

TEST(BisectMax, CostScalesWithLogDelta) {
  Rng rng(43);
  auto mean_messages = [&](Value delta) {
    StreamingMoments m;
    for (int t = 0; t < 200; ++t) {
      std::vector<Value> values(64);
      for (auto& v : values) v = rng.below(delta + 1);
      m.add(static_cast<double>(bisect_max_standalone(values, delta, rng).messages));
    }
    return m.mean();
  };
  const double small = mean_messages(1 << 10);
  const double large = mean_messages(Value{1} << 30);
  // ~3x the bisection depth => ~3x the messages (log Δ growth, not flat).
  EXPECT_GT(large, small * 1.8);
  EXPECT_LT(large, small * 5.0);
}

}  // namespace
}  // namespace topkmon
