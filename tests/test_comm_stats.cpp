#include "sim/comm_stats.hpp"

#include <gtest/gtest.h>

namespace topkmon {
namespace {

TEST(CommStats, CountsByKindAndTag) {
  CommStats s;
  s.count(MessageKind::kNodeToServer, MessageTag::kViolation, 3);
  s.count(MessageKind::kBroadcast, MessageTag::kFilterBroadcast);
  s.count(MessageKind::kServerToNode, MessageTag::kFilterUnicast, 2);
  EXPECT_EQ(s.total(), 6u);
  EXPECT_EQ(s.by_kind(MessageKind::kNodeToServer), 3u);
  EXPECT_EQ(s.by_kind(MessageKind::kBroadcast), 1u);
  EXPECT_EQ(s.by_kind(MessageKind::kServerToNode), 2u);
  EXPECT_EQ(s.by_tag(MessageTag::kViolation), 3u);
  EXPECT_EQ(s.by_tag(MessageTag::kFilterBroadcast), 1u);
  EXPECT_EQ(s.by_tag(MessageTag::kFilterUnicast), 2u);
  EXPECT_EQ(s.by_tag(MessageTag::kExistence), 0u);
}

TEST(CommStats, RoundTracking) {
  CommStats s;
  s.begin_step();
  s.add_rounds(4);
  s.add_rounds(3);
  EXPECT_EQ(s.rounds_this_step(), 7u);
  EXPECT_EQ(s.max_rounds_per_step(), 7u);
  s.begin_step();
  s.add_rounds(2);
  EXPECT_EQ(s.rounds_this_step(), 2u);
  EXPECT_EQ(s.max_rounds_per_step(), 7u);
  EXPECT_EQ(s.total_rounds(), 9u);
  EXPECT_EQ(s.steps(), 2u);
}

TEST(CommStats, MessagesThisStep) {
  CommStats s;
  s.begin_step();
  s.count(MessageKind::kBroadcast, MessageTag::kOther, 5);
  EXPECT_EQ(s.messages_this_step(), 5u);
  s.begin_step();
  EXPECT_EQ(s.messages_this_step(), 0u);
  s.count(MessageKind::kBroadcast, MessageTag::kOther, 2);
  EXPECT_EQ(s.messages_this_step(), 2u);
  EXPECT_EQ(s.total(), 7u);
}

TEST(CommStats, ResetClearsEverything) {
  CommStats s;
  s.begin_step();
  s.count(MessageKind::kBroadcast, MessageTag::kOther, 5);
  s.add_rounds(3);
  s.reset();
  EXPECT_EQ(s.total(), 0u);
  EXPECT_EQ(s.steps(), 0u);
  EXPECT_EQ(s.max_rounds_per_step(), 0u);
}

TEST(CommStats, ReportMentionsCounts) {
  CommStats s;
  s.count(MessageKind::kNodeToServer, MessageTag::kExistence, 11);
  const auto rep = s.report();
  EXPECT_NE(rep.find("total=11"), std::string::npos);
  EXPECT_NE(rep.find("existence=11"), std::string::npos);
}

TEST(ToString, Names) {
  EXPECT_EQ(to_string(MessageKind::kBroadcast), "broadcast");
  EXPECT_EQ(to_string(MessageTag::kProbe), "probe");
}

}  // namespace
}  // namespace topkmon
