#include <gtest/gtest.h>

#include "offline/brute_force.hpp"
#include "offline/feasibility.hpp"
#include "offline/opt.hpp"
#include "util/rng.hpp"

namespace topkmon {
namespace {

WindowExtrema extrema_from(std::vector<Value> mins, std::vector<Value> maxs) {
  WindowExtrema w(mins.size());
  w.reset(mins);
  // Absorb a row equal to maxs so per-node min = mins, max = maxs
  // (requires mins[i] <= maxs[i]).
  w.absorb(maxs);
  return w;
}

TEST(WindowExtrema, TracksMinMax) {
  WindowExtrema w(3);
  std::vector<Value> a{5, 10, 15}, b{7, 8, 20};
  w.reset(a);
  w.absorb(b);
  EXPECT_EQ(w.mins(), (std::vector<Value>{5, 8, 15}));
  EXPECT_EQ(w.maxs(), (std::vector<Value>{7, 10, 20}));
}

TEST(Feasibility, SingleStepAlwaysFeasible) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 2 + rng.below(10);
    const std::size_t k = 1 + rng.below(n);
    std::vector<Value> v(n);
    for (auto& x : v) x = rng.below(1000);
    WindowExtrema w(n);
    w.reset(v);
    EXPECT_TRUE(window_feasible_approx(w, k, 0.0));
    EXPECT_TRUE(window_feasible_approx(w, k, 0.3));
  }
}

TEST(Feasibility, PicksHighMaxNodeDespiteLowMin) {
  // Node 0: stable [10, 10]; node 1: volatile [9, 100]. k = 1, eps = 0.5.
  // F = {0}: 10 >= 0.5*100? no. F = {1}: 9 >= 0.5*10 = 5? yes.
  auto w = extrema_from({10, 9}, {10, 100});
  EXPECT_TRUE(window_feasible_approx(w, 1, 0.5));
  EXPECT_TRUE(window_feasible_approx_brute(w, 1, 0.5));
  // With eps = 0: F = {1} needs 9 >= 10 — infeasible either way.
  EXPECT_FALSE(window_feasible_approx(w, 1, 0.0));
  EXPECT_FALSE(window_feasible_approx_brute(w, 1, 0.0));
}

TEST(Feasibility, KEqualsNIsVacuouslyFeasible) {
  auto w = extrema_from({1, 2, 3}, {100, 200, 300});
  EXPECT_TRUE(window_feasible_approx(w, 3, 0.0));
}

TEST(Feasibility, FastMatchesBruteForceOnRandomWindows) {
  Rng rng(13);
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t n = 2 + rng.below(9);  // up to 10 nodes
    const std::size_t k = 1 + rng.below(n);
    const double eps = 0.05 * static_cast<double>(rng.below(10));
    std::vector<Value> lo(n), hi(n);
    for (std::size_t i = 0; i < n; ++i) {
      lo[i] = rng.below(64);
      hi[i] = lo[i] + rng.below(64);
    }
    WindowExtrema w(n);
    w.reset(lo);
    w.absorb(hi);
    EXPECT_EQ(window_feasible_approx(w, k, eps),
              window_feasible_approx_brute(w, k, eps))
        << "n=" << n << " k=" << k << " eps=" << eps;
  }
}

TEST(FeasibilityExact, RequiresConstantTopK) {
  std::vector<ValueVector> h{{10, 20, 5}, {10, 20, 6}, {25, 20, 6}};
  EXPECT_TRUE(window_feasible_exact(h, 0, 2, 1));   // top-1 = node 1 both steps
  EXPECT_FALSE(window_feasible_exact(h, 0, 3, 1));  // node 0 takes over at t=2
  EXPECT_TRUE(window_feasible_exact(h, 2, 3, 1));
}

TEST(FeasibilityExact, RequiresSeparation) {
  // Constant top-1 = node 0, but node 1's max (15) exceeds node 0's min (12).
  std::vector<ValueVector> h{{20, 15}, {12, 9}};
  EXPECT_FALSE(window_feasible_exact(h, 0, 2, 1));
  // With k=2 there is no complement: feasible.
  EXPECT_TRUE(window_feasible_exact(h, 0, 2, 2));
}

TEST(OfflineOpt, SinglePhaseOnStaticStream) {
  std::vector<ValueVector> h(50, ValueVector{100, 50, 10});
  const auto exact = OfflineOpt::exact(h, 1);
  EXPECT_EQ(exact.phases, 1u);
  const auto approx = OfflineOpt::approx(h, 1, 0.1);
  EXPECT_EQ(approx.phases, 1u);
  EXPECT_EQ(approx.messages_constructive, 2u);  // (k+1) per phase
}

TEST(OfflineOpt, PhaseBoundaryAtRankSwap) {
  std::vector<ValueVector> h;
  for (int t = 0; t < 10; ++t) h.push_back({100, 50});
  for (int t = 0; t < 10; ++t) h.push_back({40, 50});  // node 1 overtakes
  const auto exact = OfflineOpt::exact(h, 1);
  EXPECT_EQ(exact.phases, 2u);
  EXPECT_EQ(exact.phase_starts[1], 10u);
  // With a large allowed error the whole history is one phase:
  // F={1}: min 50 >= (1-0.6)*max(100) = 40.
  const auto approx = OfflineOpt::approx(h, 1, 0.6);
  EXPECT_EQ(approx.phases, 1u);
}

TEST(OfflineOpt, ApproxNeverMorePhasesThanExact) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<ValueVector> h;
    ValueVector v(5);
    for (auto& x : v) x = 100 + rng.below(100);
    for (int t = 0; t < 60; ++t) {
      for (auto& x : v) {
        const auto step = rng.below(21);
        x = (rng.bernoulli(0.5) && x > step) ? x - step : x + step;
      }
      h.push_back(v);
    }
    for (std::size_t k : {1u, 2u, 4u}) {
      const auto exact = OfflineOpt::exact(h, k);
      const auto approx = OfflineOpt::approx(h, k, 0.2);
      EXPECT_LE(approx.phases, exact.phases) << "k=" << k;
    }
  }
}

TEST(OfflineOpt, GreedyMatchesDpOnRandomHistories) {
  Rng rng(23);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 2 + rng.below(5);
    const std::size_t k = 1 + rng.below(n);
    const double eps = 0.1 * static_cast<double>(rng.below(4));
    std::vector<ValueVector> h;
    ValueVector v(n);
    for (auto& x : v) x = 50 + rng.below(100);
    for (int t = 0; t < 18; ++t) {
      for (auto& x : v) {
        const auto step = rng.below(30);
        x = (rng.bernoulli(0.5) && x > step) ? x - step : x + step;
      }
      h.push_back(v);
    }
    const auto greedy = OfflineOpt::approx(h, k, eps);
    const auto dp = min_phases_brute(h, k, eps);
    EXPECT_EQ(greedy.phases, dp) << "n=" << n << " k=" << k << " eps=" << eps;
  }
}

TEST(OfflineOpt, EmptyHistory) {
  const auto r = OfflineOpt::approx({}, 3, 0.1);
  EXPECT_EQ(r.phases, 0u);
  EXPECT_EQ(r.messages_lower_bound, 0u);
}

TEST(OfflineOpt, LargerEpsilonNeverIncreasesPhases) {
  Rng rng(29);
  std::vector<ValueVector> h;
  ValueVector v{100, 90, 80, 70};
  for (int t = 0; t < 80; ++t) {
    for (auto& x : v) {
      const auto step = rng.below(15);
      x = (rng.bernoulli(0.5) && x > step) ? x - step : x + step;
    }
    h.push_back(v);
  }
  std::uint64_t prev = ~0ULL;
  for (double eps : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    const auto r = OfflineOpt::approx(h, 2, eps);
    EXPECT_LE(r.phases, prev) << "eps=" << eps;
    prev = r.phases;
  }
}

}  // namespace
}  // namespace topkmon
