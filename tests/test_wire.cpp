// Wire-format tests (ctest label: net): every message round-trips through
// encode → parse_frame → decode, and malformed frames — wrong version,
// unknown type, truncation, trailing bytes, type mismatch — throw WireError
// instead of misparsing.
#include <gtest/gtest.h>

#include <vector>

#include "net/wire.hpp"

namespace topkmon::net {
namespace {

RunSpec sample_spec() {
  RunSpec spec;
  spec.stream.kind = "oscillating";
  spec.stream.n = 24;
  spec.stream.k = 5;
  spec.stream.epsilon = 0.15;
  spec.stream.delta = 1 << 18;
  spec.stream.sigma = 9;
  spec.stream.walk_step = 32;
  spec.stream.churn = 0.5;
  spec.stream.drift = 0.01;
  spec.stream.trace_path = "some/trace.csv";
  spec.protocol = "topk_protocol";
  spec.protocol_epsilon = 0.2;
  spec.seed = 1234567;
  spec.window = 64;
  spec.steps = 321;
  spec.faults.churn_rate = 0.01;
  spec.faults.straggler_fraction = 0.25;
  spec.faults.max_delay = 7;
  spec.faults.loss = 0.05;
  spec.faults.seed = 99;
  spec.faults.horizon = 321;
  return spec;
}

StatsSnapshot sample_stats() {
  StatsSnapshot s;
  s.messages = 101;
  s.node_to_server = 60;
  s.server_to_node = 11;
  s.broadcasts = 30;
  for (std::size_t t = 0; t < kNumMessageTags; ++t) s.by_tag[t] = 7 * t + 1;
  s.rounds = 500;
  s.messages_lost = 3;
  s.stale_reads = 44;
  s.recovery_rounds = 2;
  s.window_expirations = 12;
  s.net.frames_sent = 1000;
  s.net.frames_recv = 999;
  s.net.bytes_sent = 123456;
  s.net.bytes_recv = 654321;
  s.net.send_retries = 17;
  s.net.reconnects = 1;
  return s;
}

TEST(Wire, PrimitivesRoundTrip) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.141592653589793);
  w.str("hello wire");
  w.values(ValueVector{1, 2, 3, 1ull << 60});
  const std::vector<std::uint8_t> frame = w.frame(MsgType::kHello);

  const Frame f = parse_frame(frame);
  EXPECT_EQ(f.type, MsgType::kHello);
  WireReader r(f.payload);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_EQ(r.str(), "hello wire");
  EXPECT_EQ(r.values(), (ValueVector{1, 2, 3, 1ull << 60}));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Wire, HelloRoundTrips) {
  const HelloMsg m{3, 8};
  EXPECT_EQ(decode_hello(parse_frame(encode(m))), m);
}

TEST(Wire, ConfigRoundTripsTheFullRunSpec) {
  ConfigMsg m;
  m.spec = sample_spec();
  m.shard_lo = 6;
  m.shard_hi = 12;
  EXPECT_EQ(decode_config(parse_frame(encode(m))), m);
}

TEST(Wire, StepBeginRoundTrips) {
  const StepBeginMsg m{987654321};
  EXPECT_EQ(decode_step_begin(parse_frame(encode(m))), m);
}

TEST(Wire, ShardValuesRoundTrips) {
  ShardValuesMsg m;
  m.t = 17;
  m.lo = 8;
  m.values = {5, 0, 1ull << 40, 3};
  m.stale = 2;
  m.violations = 1;
  EXPECT_EQ(decode_shard_values(parse_frame(encode(m))), m);
}

TEST(Wire, FilterUpdateRoundTrips) {
  FilterUpdateMsg m;
  m.t = 3;
  m.filters = {{0, 1.5, 7.25}, {11, -1e18, 1e18}};
  EXPECT_EQ(decode_filter_update(parse_frame(encode(m))), m);

  const FilterUpdateMsg empty{42, {}};
  EXPECT_EQ(decode_filter_update(parse_frame(encode(empty))), empty);
}

TEST(Wire, StepAckRoundTrips) {
  const StepAckMsg m{55, 4};
  EXPECT_EQ(decode_step_ack(parse_frame(encode(m))), m);
}

TEST(Wire, ShutdownRoundTripsTheFullStatsSnapshot) {
  const ShutdownMsg m{sample_stats()};
  EXPECT_EQ(decode_shutdown(parse_frame(encode(m))), m);
}

TEST(Wire, RejectsVersionMismatch) {
  std::vector<std::uint8_t> frame = encode(HelloMsg{0, 1});
  frame[4] ^= 0xFF;  // low byte of the u16 version field
  EXPECT_THROW(parse_frame(frame), WireError);
}

TEST(Wire, RejectsUnknownType) {
  WireWriter w;
  w.u32(1);
  std::vector<std::uint8_t> frame = w.frame(MsgType::kHello);
  frame[6] = 0x77;  // low byte of the u16 type field
  frame[7] = 0x77;
  EXPECT_THROW(parse_frame(frame), WireError);
}

TEST(Wire, RejectsTruncation) {
  const std::vector<std::uint8_t> frame = encode(ConfigMsg{sample_spec(), 0, 4});
  // Every strict prefix must be rejected somewhere: short header/length
  // mismatch in parse_frame, or payload truncation in the decoder.
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const std::vector<std::uint8_t> cut(frame.begin(), frame.begin() + len);
    EXPECT_THROW(decode_config(parse_frame(cut)), WireError) << "prefix " << len;
  }
}

TEST(Wire, RejectsTrailingBytes) {
  // Grow the payload without updating the inner structure: the decoder must
  // notice the unconsumed tail. The length prefix is patched so parse_frame
  // accepts the frame and the tail check is what fires.
  std::vector<std::uint8_t> frame = encode(StepAckMsg{1, 2});
  frame.push_back(0xCC);
  const std::uint32_t len = static_cast<std::uint32_t>(frame.size() - 4);
  frame[0] = static_cast<std::uint8_t>(len);
  frame[1] = static_cast<std::uint8_t>(len >> 8);
  frame[2] = static_cast<std::uint8_t>(len >> 16);
  frame[3] = static_cast<std::uint8_t>(len >> 24);
  EXPECT_THROW(decode_step_ack(parse_frame(frame)), WireError);
}

TEST(Wire, RejectsLengthMismatch) {
  std::vector<std::uint8_t> frame = encode(HelloMsg{0, 1});
  frame[0] += 1;  // length field no longer matches the buffer
  EXPECT_THROW(parse_frame(frame), WireError);
}

TEST(Wire, DecodersRejectTheWrongType) {
  const std::vector<std::uint8_t> hello = encode(HelloMsg{0, 1});
  EXPECT_THROW(decode_config(parse_frame(hello)), WireError);
  EXPECT_THROW(decode_step_begin(parse_frame(hello)), WireError);
  EXPECT_THROW(decode_shard_values(parse_frame(hello)), WireError);
  EXPECT_THROW(decode_filter_update(parse_frame(hello)), WireError);
  EXPECT_THROW(decode_step_ack(parse_frame(hello)), WireError);
  EXPECT_THROW(decode_shutdown(parse_frame(hello)), WireError);
}

TEST(Wire, ValidateRunSpecRejectsAdaptiveStreamsAndDegenerateParams) {
  EXPECT_EQ(validate_run_spec(sample_spec()), "");

  RunSpec bad = sample_spec();
  bad.stream.kind = "lb_adversary";
  EXPECT_NE(validate_run_spec(bad), "");
  bad.stream.kind = "phase_torture";
  EXPECT_NE(validate_run_spec(bad), "");

  bad = sample_spec();
  bad.stream.k = 0;
  EXPECT_NE(validate_run_spec(bad), "");

  bad = sample_spec();
  bad.stream.k = bad.stream.n;
  EXPECT_NE(validate_run_spec(bad), "");

  bad = sample_spec();
  bad.steps = 0;
  EXPECT_NE(validate_run_spec(bad), "");
}

}  // namespace
}  // namespace topkmon::net
