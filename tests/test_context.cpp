#include "sim/context.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "model/oracle.hpp"
#include "protocols/generic_framework.hpp"

namespace topkmon {
namespace {

SimContext make_ctx(std::vector<Value> values, std::size_t k = 2,
                    double eps = 0.1, std::uint64_t seed = 7) {
  SimContext ctx(SimParams{values.size(), k, eps}, seed);
  ctx.advance_time(values);
  return ctx;
}

TEST(SimContext, ReportValueCostsOneMessage) {
  auto ctx = make_ctx({10, 20, 30});
  EXPECT_EQ(ctx.report_value(1), 20u);
  EXPECT_EQ(ctx.stats().total(), 1u);
  EXPECT_EQ(ctx.stats().by_kind(MessageKind::kNodeToServer), 1u);
}

TEST(SimContext, BroadcastFiltersCostsOneMessageAndSetsAll) {
  auto ctx = make_ctx({10, 20, 30});
  ctx.broadcast_filters([](const Node&) { return Filter::at_most(25.0); });
  EXPECT_EQ(ctx.stats().total(), 1u);
  EXPECT_EQ(ctx.stats().by_kind(MessageKind::kBroadcast), 1u);
  for (const auto& node : ctx.nodes()) {
    EXPECT_DOUBLE_EQ(node.filter().hi, 25.0);
  }
  EXPECT_TRUE(ctx.nodes()[2].violating());
  EXPECT_FALSE(ctx.nodes()[0].violating());
}

TEST(SimContext, SetFilterUnicastCostsOneMessage) {
  auto ctx = make_ctx({10, 20, 30});
  ctx.set_filter_unicast(0, Filter::at_least(5.0));
  EXPECT_EQ(ctx.stats().total(), 1u);
  EXPECT_EQ(ctx.stats().by_kind(MessageKind::kServerToNode), 1u);
  EXPECT_DOUBLE_EQ(ctx.nodes()[0].filter().lo, 5.0);
}

TEST(SimContext, ExistenceOverPredicate) {
  auto ctx = make_ctx({10, 20, 30, 40});
  auto res = ctx.existence([](const Node& n) { return n.value() > 25; });
  EXPECT_TRUE(res.any);
  for (const auto& hit : res.senders) {
    EXPECT_GT(hit.value, 25u);
  }
  auto none = ctx.existence([](const Node& n) { return n.value() > 100; });
  EXPECT_FALSE(none.any);
}

TEST(SimContext, CollectViolationsFindsViolators) {
  auto ctx = make_ctx({10, 20, 30});
  ctx.broadcast_filters([](const Node&) { return Filter{15.0, 25.0}; });
  auto res = ctx.collect_violations();
  ASSERT_TRUE(res.any);
  for (const auto& hit : res.senders) {
    EXPECT_TRUE(hit.id == 0 || hit.id == 2);
  }
}

TEST(SimContext, SampleMaxMatchesOracle) {
  auto ctx = make_ctx({13, 99, 45, 99, 7});
  auto best = ctx.sample_max([](const Node&) { return true; });
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->id, 1u);  // tie at 99 broken toward lower id
  EXPECT_EQ(best->value, 99u);
}

TEST(SimContext, SampleMaxEmptyPredicate) {
  auto ctx = make_ctx({1, 2, 3});
  auto best = ctx.sample_max([](const Node&) { return false; });
  EXPECT_FALSE(best.has_value());
}

TEST(SimContext, ProbeTopOrdered) {
  auto ctx = make_ctx({13, 99, 45, 80, 7});
  auto top = ctx.probe_top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 1u);
  EXPECT_EQ(top[1].id, 3u);
  EXPECT_EQ(top[2].id, 2u);
}

TEST(SimContext, RoundsTrackedPerStep) {
  auto ctx = make_ctx({1, 2, 3, 4, 5, 6, 7, 8});
  ctx.stats().begin_step();
  ctx.existence([](const Node&) { return true; });
  EXPECT_GE(ctx.stats().rounds_this_step(), 1u);
  EXPECT_LE(ctx.stats().rounds_this_step(), ExistenceProtocol::max_rounds(8));
}

TEST(GenericFramework, ProbeTopKPlus1Info) {
  auto ctx = make_ctx({10, 50, 40, 30, 20}, /*k=*/2);
  const auto info = probe_top_k_plus_1(ctx);
  EXPECT_EQ(info.top_ids, (OutputSet{1, 2}));
  EXPECT_EQ(info.vk, 40u);
  EXPECT_EQ(info.vk1, 30u);
  ASSERT_EQ(info.ranked.size(), 3u);
  EXPECT_EQ(info.ranked[0].id, 1u);
}

TEST(GenericFramework, EnumerateNodesFindsAllMatches) {
  auto ctx = make_ctx({10, 50, 40, 30, 20, 60, 5});
  auto found = enumerate_nodes(ctx, [](const Node& n) { return n.value() >= 30; });
  std::vector<NodeId> ids;
  for (const auto& f : found) ids.push_back(f.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<NodeId>{1, 2, 3, 5}));
}

TEST(GenericFramework, DrainViolationsReachesQuiescence) {
  auto ctx = make_ctx({10, 20, 30});
  ctx.broadcast_filters([](const Node&) { return Filter{15.0, 25.0}; });
  int handled = 0;
  drain_violations(ctx, [&](NodeId id, Value value, Violation side) {
    ++handled;
    // Resolve by widening the node's filter around its value.
    (void)side;
    ctx.set_filter_free(id, Filter{static_cast<double>(value) - 1.0,
                                   static_cast<double>(value) + 1.0});
  });
  EXPECT_EQ(handled, 2);
  for (const auto& node : ctx.nodes()) {
    EXPECT_FALSE(node.violating());
  }
}

TEST(SimContext, EnumerateCostLinearInMatches) {
  std::vector<Value> values(512, 1);
  for (int i = 0; i < 40; ++i) values[i] = 1000;
  auto ctx = make_ctx(values, 2, 0.1, 99);
  const auto before = ctx.stats().total();
  auto found = enumerate_nodes(ctx, [](const Node& n) { return n.value() == 1000; });
  EXPECT_EQ(found.size(), 40u);
  const auto cost = ctx.stats().total() - before;
  EXPECT_LE(cost, 40u + 30u);  // ~1 message per found node + slack
}

}  // namespace
}  // namespace topkmon
