// Differential fuzz harness (ctest label: fuzz).
//
// Draws hundreds of random configurations — (seed, n, k, ε, W, protocol,
// stream, fault preset) — and for each runs the full pipeline step by step,
// checking after EVERY step against the brute-force oracle (the centralized
// referee, free of protocol code):
//
//   * output validity: the protocol's F(t) satisfies the Sect. 2 contract on
//     the values the fleet actually holds (windowed and faulted);
//   * filter soundness: the filter set is valid (Obs. 2.2) and quiescent;
//   * exactness: exact_topk's output IS the exact top-k set;
//   * k-select validity: protocols serving QueryKind::kKSelect (the kselect
//     structure) keep every rank's estimate inside the oracle's
//     ε-neighborhood, every step;
//   * count-distinct / threshold exactness: protocols serving the new kinds
//     report the oracle's exact distinct-band count / above-T count;
//   * window differential: the windowed run's observed values equal the
//     naive window maximum over a reference unwindowed run of the same
//     (seed, stream, faults) — the monotonic-deque pipeline vs O(W)
//     recomputation, end to end through Simulator and FaultInjector.
//
// Failures print a minimal `topk_sim` reproducer command line.
//
// The base seed rotates via TOPKMON_FUZZ_SEED (CI sets it per run on main
// pushes and pins it on PRs); the tuple count via TOPKMON_FUZZ_CONFIGS.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "faults/registry.hpp"
#include "model/oracle.hpp"
#include "model/window.hpp"
#include "net/coordinator.hpp"
#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/registry.hpp"
#include "util/rng.hpp"

namespace topkmon {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::strtoull(v, nullptr, 10);
}

struct FuzzConfig {
  std::string protocol;
  std::string stream;
  std::string faults;
  std::size_t n = 8;
  std::size_t k = 2;
  double epsilon = 0.1;
  std::size_t window = 0;
  Value threshold = 0;  ///< bound T (drawn for threshold_alert only)
  std::uint64_t seed = 1;
  std::uint64_t fault_seed = 1;
  TimeStep steps = 40;
};

/// Minimal topk_sim command line reproducing this configuration (the CLI's
/// defaults — delta, sigma, walk parameters — match draw()'s choices). The
/// full c.steps is kept — the fault schedule is generated over the run
/// horizon, so truncating --steps would script a different fault trace —
/// and strict mode aborts at the originally failing step anyway.
std::string reproducer(const FuzzConfig& c) {
  std::ostringstream oss;
  oss << "topk_sim --protocol " << c.protocol << " --stream " << c.stream
      << " --n " << c.n << " --k " << c.k << " --eps "
      << (c.epsilon > 0.0 ? c.epsilon : 0.1) << " --protocol-eps " << c.epsilon
      << " --window " << c.window << " --seed " << c.seed << " --steps "
      << c.steps << " --strict";
  if (c.protocol == "threshold_alert") {
    oss << " --bound " << c.threshold;
  }
  if (c.faults != "none") {
    oss << " --faults " << c.faults << " --fault-seed " << c.fault_seed;
  }
  return oss.str();
}

/// Uniform draw over the fuzz space. Adaptive adversarial streams are
/// excluded: the reference (unwindowed) run would see a different stream
/// because the adversary reacts to the windowed protocol's state, so the
/// differential comparison is undefined for them.
FuzzConfig draw(Rng& rng, std::uint64_t tuple_seed) {
  static const std::vector<std::string> streams{"random_walk", "uniform",
                                                "oscillating", "zipf_bursty",
                                                "sine_noise"};
  static const std::vector<std::string> fault_presets{"none", "churn",
                                                      "stragglers", "lossy",
                                                      "flaky"};
  static const std::vector<std::size_t> windows{0, 1, 2, 3, 5, 8, 16, 64};

  const std::vector<std::string> protocols = protocol_names();
  FuzzConfig c;
  c.protocol = protocols[rng.below(protocols.size())];
  c.stream = streams[rng.below(streams.size())];
  c.faults = fault_presets[rng.below(fault_presets.size())];
  c.n = 4 + rng.below(21);  // 4..24
  c.k = 1 + rng.below(std::min<std::size_t>(c.n - 1, 5));
  c.epsilon = c.protocol == "exact_topk" ? 0.0 : 0.05 + 0.05 * rng.below(5);
  c.window = windows[rng.below(windows.size())];
  if (c.protocol == "threshold_alert") {
    // Somewhere inside the value range (delta = 1 << 20), so both filter
    // sides stay populated and side flips actually happen.
    c.threshold = rng.below(std::uint64_t{1} << 20);
  }
  c.seed = tuple_seed;
  c.fault_seed = splitmix_combine(tuple_seed, 0xFA);
  c.steps = 20 + static_cast<TimeStep>(rng.below(41));  // 20..60
  return c;
}

/// StreamSpec with exactly topk_sim's defaults, so the reproducer replays
/// the identical stream.
StreamSpec spec_for(const FuzzConfig& c) {
  StreamSpec spec;
  spec.kind = c.stream;
  spec.n = c.n;
  spec.k = c.k;
  spec.epsilon = c.epsilon > 0.0 ? c.epsilon : 0.1;  // band ε for exact cells
  spec.delta = 1 << 20;
  spec.sigma = c.n / 2;
  return spec;
}

FleetSchedulePtr schedule_for(const FuzzConfig& c) {
  FaultConfig fcfg = fault_preset(c.faults);
  fcfg.horizon = c.steps;
  fcfg.seed = c.fault_seed;
  return make_fleet_schedule(fcfg, c.n);
}

Simulator make_sim(const FuzzConfig& c, std::size_t window, bool record) {
  SimConfig cfg;
  cfg.k = c.k;
  cfg.epsilon = c.epsilon;
  cfg.seed = c.seed;
  cfg.window = window;
  cfg.threshold = c.threshold;
  cfg.record_history = record;
  cfg.faults = schedule_for(c);
  return Simulator(cfg, make_stream(spec_for(c)), make_protocol(c.protocol));
}

ValueVector observed_values(const Simulator& sim) {
  ValueVector v;
  v.reserve(sim.context().n());
  for (const Node& node : sim.context().nodes()) {
    v.push_back(node.value());
  }
  return v;
}

/// One fuzz tuple: returns false (with test failures recorded) on the first
/// violated invariant so a single bad config doesn't spam hundreds of lines.
bool run_config(const FuzzConfig& c) {
  Simulator sim = make_sim(c, c.window, /*record=*/false);
  // Reference fleet: same stream, same faults, no windowing. Its recorded
  // history is the raw effective stream the window model must aggregate.
  Simulator ref = make_sim(c, kInfiniteWindow, /*record=*/true);

  for (TimeStep t = 0; t < c.steps; ++t) {
    sim.step();
    ref.step();

    const ValueVector values = observed_values(sim);

    // (1) Differential window check: deque pipeline vs naive recomputation.
    if (c.window != kInfiniteWindow) {
      const ValueVector expected = naive_window_max(
          ref.history(), static_cast<std::size_t>(t), c.window);
      if (values != expected) {
        ADD_FAILURE() << "windowed values diverge from naive window max at t="
                      << t << "\n  repro: " << reproducer(c);
        return false;
      }
    } else if (values != ref.history().back()) {
      ADD_FAILURE() << "unwindowed run diverges from its reference at t=" << t
                    << "\n  repro: " << reproducer(c);
      return false;
    }

    // (2) Output validity against the brute-force oracle — top-k servers
    //     only; other kinds keep output() empty by contract.
    const bool topk = serves_topk(sim.protocol());
    const OutputSet& out = sim.protocol().output();
    if (topk) {
      const std::string why = Oracle::explain_invalid(values, c.k, c.epsilon, out);
      if (!why.empty()) {
        ADD_FAILURE() << "invalid output at t=" << t << " [" << c.protocol
                      << "]: " << why << "\n  repro: " << reproducer(c);
        return false;
      }
    }

    // (3) Exact protocols must report the exact top-k set.
    if (topk && c.epsilon == 0.0 && out != Oracle::top_k(values, c.k)) {
      ADD_FAILURE() << "exact protocol missed the exact top-k at t=" << t
                    << "\n  repro: " << reproducer(c);
      return false;
    }

    // (4) K-select estimates (when the protocol serves them) vs the oracle,
    //     for every supported rank.
    if (const QueryCapabilities* q =
            capability_for(sim.protocol(), QueryKind::kKSelect)) {
      const std::size_t jmax = std::min(q->kselect_max_rank(), c.k);
      for (std::size_t j = 1; j <= jmax; ++j) {
        const std::string bad =
            Oracle::explain_kselect_invalid(values, j, c.epsilon, q->kselect(j));
        if (!bad.empty()) {
          ADD_FAILURE() << "invalid k-select estimate at t=" << t << " j=" << j
                        << " [" << c.protocol << "]: " << bad
                        << "\n  repro: " << reproducer(c);
          return false;
        }
      }
    }

    // (5) Count-distinct / threshold answers must be EXACT vs the oracle.
    if (const QueryCapabilities* q =
            capability_for(sim.protocol(), QueryKind::kCountDistinct)) {
      const std::uint64_t expect = Oracle::distinct_count(
          std::span<const Value>(values.data(), values.size()), c.epsilon);
      if (q->distinct_count() != expect) {
        ADD_FAILURE() << "wrong distinct count at t=" << t << ": got "
                      << q->distinct_count() << ", oracle says " << expect
                      << "\n  repro: " << reproducer(c);
        return false;
      }
    }
    if (const QueryCapabilities* q =
            capability_for(sim.protocol(), QueryKind::kThreshold)) {
      const std::uint64_t expect = Oracle::count_above(
          std::span<const Value>(values.data(), values.size()), c.threshold);
      if (q->above_count() != expect || q->alert_active() != (expect > 0)) {
        ADD_FAILURE() << "wrong threshold answer at t=" << t << ": got "
                      << q->above_count() << " above T=" << c.threshold
                      << ", oracle says " << expect
                      << "\n  repro: " << reproducer(c);
        return false;
      }
    }

    // (6) Filter soundness: valid per Obs. 2.2 (top-k servers) and quiescent.
    std::vector<Filter> filters;
    filters.reserve(sim.context().n());
    for (const Node& node : sim.context().nodes()) {
      filters.push_back(node.filter());
    }
    const std::span<const Filter> fspan(filters.data(), filters.size());
    if ((topk && !filters_valid(fspan, out, c.epsilon)) ||
        !all_within(fspan, std::span<const Value>(values.data(), values.size()))) {
      ADD_FAILURE() << "invalid/violated filter set at t=" << t
                    << "\n  repro: " << reproducer(c);
      return false;
    }
  }
  return true;
}

TEST(DifferentialFuzz, RandomConfigurationsUpholdTheOracleContract) {
  const std::uint64_t base_seed = env_u64("TOPKMON_FUZZ_SEED", 20260730);
  const std::uint64_t configs = env_u64("TOPKMON_FUZZ_CONFIGS", 240);
  RecordProperty("fuzz_seed", static_cast<int>(base_seed));

  Rng rng(splitmix_combine(base_seed, 0xD1FF));
  std::size_t windowed = 0;
  for (std::uint64_t i = 0; i < configs; ++i) {
    const FuzzConfig c = draw(rng, splitmix_combine(base_seed, i));
    windowed += c.window != kInfiniteWindow;
    if (!run_config(c)) {
      GTEST_FAIL() << "fuzz config " << i << " of " << configs
                   << " failed (base seed " << base_seed << ")";
    }
  }
  // The draw space must keep exercising both modes.
  EXPECT_GT(windowed, configs / 4);
  EXPECT_GT(configs - windowed, 0u);
}

/// Sim-vs-network differential: the networked runtime (src/net) must
/// reproduce the standalone Simulator's model-level counters and final
/// output BIT-IDENTICALLY on loss-free links, for every drawn configuration.
/// The draw space is the same as the oracle fuzz above (all non-adaptive
/// streams, every fault preset, windowed and unwindowed), with a rotating
/// host count; node-hosts run as real threads over loopback links.
bool run_network_config(const FuzzConfig& c, std::uint32_t hosts) {
  net::RunSpec spec;
  spec.stream = spec_for(c);
  spec.protocol = c.protocol;
  spec.protocol_epsilon = c.epsilon;
  spec.seed = c.seed;
  spec.window = c.window;
  spec.steps = c.steps;
  spec.threshold = c.threshold;
  spec.faults = fault_preset(c.faults);
  spec.faults.horizon = c.steps;
  spec.faults.seed = c.fault_seed;

  Simulator sim = make_sim(c, c.window, /*record=*/false);
  const RunResult expected = sim.run(c.steps);

  net::InprocNetOptions opts;
  opts.hosts = hosts;
  opts.link_loss = 0.0;  // bit-identity needs loss-free links
  const net::InprocNetReport rep = net::run_networked_inproc(spec, opts);

  for (std::uint32_t h = 0; h < hosts; ++h) {
    if (rep.host_exit[h] != 0) {
      ADD_FAILURE() << "node-host " << h << " failed\n  repro: " << reproducer(c);
      return false;
    }
  }
  if (rep.quiescence_errors != 0) {
    ADD_FAILURE() << rep.quiescence_errors << " quiescence errors\n  repro: "
                  << reproducer(c);
    return false;
  }
  if (rep.output != sim.protocol().output()) {
    ADD_FAILURE() << "networked output diverges\n  repro: " << reproducer(c);
    return false;
  }
  if (const QueryCapabilities* q =
          capability_for(sim.protocol(), QueryKind::kKSelect)) {
    std::vector<Value> expected_est;
    for (std::size_t j = 1; j <= std::min(q->kselect_max_rank(), c.k); ++j) {
      expected_est.push_back(q->kselect(j));
    }
    if (rep.kselect_estimates != expected_est) {
      ADD_FAILURE() << "networked k-select estimates diverge\n  repro: "
                    << reproducer(c);
      return false;
    }
  }
  if (const QueryCapabilities* q =
          capability_for(sim.protocol(), QueryKind::kCountDistinct)) {
    if (rep.distinct_count != std::optional<std::uint64_t>(q->distinct_count())) {
      ADD_FAILURE() << "networked distinct count diverges\n  repro: "
                    << reproducer(c);
      return false;
    }
  }
  if (const QueryCapabilities* q =
          capability_for(sim.protocol(), QueryKind::kThreshold)) {
    if (rep.threshold_above != std::optional<std::uint64_t>(q->above_count())) {
      ADD_FAILURE() << "networked threshold count diverges\n  repro: "
                    << reproducer(c);
      return false;
    }
  }
  StatsSnapshot model = rep.run;
  model.net = NetChannelStats{};  // wire counters are networked-only
  if (model != static_cast<const StatsSnapshot&>(expected) ||
      rep.run.max_rounds_per_step != expected.max_rounds_per_step ||
      rep.run.max_sigma != expected.max_sigma) {
    ADD_FAILURE() << "networked model counters diverge from the simulator"
                  << "\n  repro: " << reproducer(c);
    return false;
  }
  return true;
}

TEST(DifferentialFuzz, NetworkedRuntimeReproducesTheSimulatorBitIdentically) {
  const std::uint64_t base_seed = env_u64("TOPKMON_FUZZ_SEED", 20260730);
  const std::uint64_t configs = env_u64("TOPKMON_FUZZ_NET_CONFIGS", 60);
  RecordProperty("fuzz_seed", static_cast<int>(base_seed));

  Rng rng(splitmix_combine(base_seed, 0x4E70));
  for (std::uint64_t i = 0; i < configs; ++i) {
    const FuzzConfig c = draw(rng, splitmix_combine(base_seed, 0x4E700000u + i));
    const std::uint32_t hosts =
        1 + static_cast<std::uint32_t>(rng.below(std::min<std::size_t>(c.n, 4)));
    if (!run_network_config(c, hosts)) {
      GTEST_FAIL() << "network fuzz config " << i << " of " << configs
                   << " failed (base seed " << base_seed << ", hosts " << hosts
                   << ")";
    }
  }
}

/// Mixed-kind engine fuzz: one fleet, a random mix of all four query kinds,
/// every query in strict mode — each strict validator checks its own kind's
/// oracle contract (top-k Sect. 2 validity, k-select ε-neighborhood, exact
/// distinct-band count, exact above-T count) after EVERY step, with shared
/// probes on and random sliding windows. Any contract violation aborts.
TEST(DifferentialFuzz, RandomQueryKindMixesUpholdEveryKindsContract) {
  const std::uint64_t base_seed = env_u64("TOPKMON_FUZZ_SEED", 20260730);
  const std::uint64_t mixes = env_u64("TOPKMON_FUZZ_MIX_CONFIGS", 40);
  RecordProperty("fuzz_seed", static_cast<int>(base_seed));

  static const std::vector<std::string> streams{"random_walk", "uniform",
                                                "oscillating", "zipf_bursty",
                                                "sine_noise"};
  static const std::vector<std::size_t> windows{0, 0, 1, 8, 16, 64};

  Rng rng(splitmix_combine(base_seed, 0x317E));
  for (std::uint64_t i = 0; i < mixes; ++i) {
    StreamSpec spec;
    spec.kind = streams[rng.below(streams.size())];
    spec.n = 6 + rng.below(19);  // 6..24
    spec.k = 1 + rng.below(std::min<std::size_t>(spec.n - 1, 4));
    spec.epsilon = 0.05 + 0.05 * rng.below(5);
    spec.delta = 1 << 20;
    spec.sigma = spec.n / 2;

    EngineConfig ecfg;
    ecfg.threads = 1 + rng.below(4);
    ecfg.seed = splitmix_combine(base_seed, 0x317E0000u + i);
    ecfg.share_probes = rng.below(2) == 0;
    MonitoringEngine engine(ecfg, make_stream(spec));

    const std::size_t q_count = 2 + rng.below(7);  // 2..8 queries
    for (std::size_t q = 0; q < q_count; ++q) {
      QuerySpec qs;
      qs.kind = static_cast<QueryKind>(rng.below(kNumQueryKinds));
      qs.protocol = default_protocol_for(qs.kind);
      qs.k = 1 + rng.below(std::min<std::size_t>(spec.n - 1, 4));
      qs.epsilon = 0.05 + 0.05 * rng.below(5);
      qs.window = windows[rng.below(windows.size())];
      qs.threshold = rng.below(std::uint64_t{1} << 20);
      qs.strict = true;
      engine.add_query(qs);
    }

    const TimeStep steps = 20 + static_cast<TimeStep>(rng.below(31));
    const EngineStats stats = engine.run(steps);
    EXPECT_EQ(stats.steps, static_cast<std::uint64_t>(steps))
        << "mix " << i << " (base seed " << base_seed << ")";
  }
}

}  // namespace
}  // namespace topkmon
