#include "protocols/combined.hpp"

#include <gtest/gtest.h>

#include "offline/opt.hpp"
#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/registry.hpp"
#include "streams/trace_file.hpp"

namespace topkmon {
namespace {

SimConfig strict_cfg(std::size_t k, double eps, std::uint64_t seed,
                     bool history = false) {
  SimConfig cfg;
  cfg.k = k;
  cfg.epsilon = eps;
  cfg.seed = seed;
  cfg.strict = true;
  cfg.record_history = history;
  return cfg;
}

TEST(Combined, GapSelectsTopKMode) {
  std::vector<ValueVector> rows(3, ValueVector{1000, 100, 50, 10});
  auto protocol = std::make_unique<CombinedMonitor>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(1, 0.1, 1), std::make_unique<TraceFileStream>(rows),
                std::move(protocol));
  sim.step();
  EXPECT_EQ(proto->mode(), CombinedMonitor::Mode::kTopK);
}

TEST(Combined, DenseSelectsDenseMode) {
  std::vector<ValueVector> rows(3, ValueVector{100, 99, 50, 10});
  auto protocol = std::make_unique<CombinedMonitor>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(1, 0.1, 2), std::make_unique<TraceFileStream>(rows),
                std::move(protocol));
  sim.step();
  EXPECT_EQ(proto->mode(), CombinedMonitor::Mode::kDense);
}

TEST(Combined, SwitchesModesAsRegimeChanges) {
  std::vector<ValueVector> rows;
  for (int t = 0; t < 10; ++t) rows.push_back({1000, 100, 50, 10});  // gap
  // Node 2 overtakes node 1: the witnessing interval empties (crossing),
  // forcing a recompute, and the new probe certifies a dense neighborhood.
  for (int t = 0; t < 10; ++t) rows.push_back({1000, 100, 105, 98});
  auto protocol = std::make_unique<CombinedMonitor>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(2, 0.1, 3), std::make_unique<TraceFileStream>(rows),
                std::move(protocol));
  for (int t = 0; t < 10; ++t) sim.step();
  EXPECT_EQ(proto->mode(), CombinedMonitor::Mode::kTopK);
  for (int t = 10; t < 20; ++t) sim.step();
  EXPECT_EQ(proto->mode(), CombinedMonitor::Mode::kDense);
}

TEST(Combined, StrictAcrossAllBenignStreams) {
  for (const char* kind :
       {"uniform", "random_walk", "oscillating", "zipf_bursty", "sine_noise"}) {
    StreamSpec spec;
    spec.kind = kind;
    spec.n = 14;
    spec.k = 3;
    spec.sigma = 7;
    spec.delta = 1 << 14;
    Simulator sim(strict_cfg(3, 0.15, 5), make_stream(spec),
                  std::make_unique<CombinedMonitor>());
    sim.run(250);
    SUCCEED() << kind;
  }
}

TEST(Combined, ApproximationBeatsExactOnDenseChurn) {
  StreamSpec spec;
  spec.kind = "oscillating";
  spec.n = 20;
  spec.k = 4;
  spec.sigma = 10;
  spec.delta = 1 << 16;

  Simulator approx(strict_cfg(4, 0.2, 7), make_stream(spec),
                   make_protocol("combined"));
  const auto ra = approx.run(400);

  SimConfig exact_cfg = strict_cfg(4, 0.0, 7);
  Simulator exact(exact_cfg, make_stream(spec), make_protocol("exact_topk"));
  const auto re = exact.run(400);

  // The entire point of the paper: inside the ε-band the approximate
  // monitor is silent while the exact one chases every swap.
  EXPECT_LT(ra.messages * 4, re.messages)
      << "approx=" << ra.messages << " exact=" << re.messages;
}

TEST(Combined, RatioAgainstApproxOptIsBounded) {
  StreamSpec spec;
  spec.kind = "oscillating";
  spec.n = 16;
  spec.k = 4;
  spec.sigma = 8;
  Simulator sim(strict_cfg(4, 0.2, 9, true), make_stream(spec),
                make_protocol("combined"));
  const auto run = sim.run(300);
  const auto opt = OfflineOpt::approx(sim.history(), 4, 0.2);
  const double ratio = static_cast<double>(run.messages) /
                       static_cast<double>(std::max<std::uint64_t>(1, opt.phases));
  // Theorem 5.8 bound with sigma=8, log(eps vk)~11: sigma^2 * log ~ 700.
  // Just assert it is finite and within a very generous envelope.
  EXPECT_LT(ratio, 5000.0);
}

TEST(Combined, OutputAlwaysSizeK) {
  StreamSpec spec;
  spec.kind = "oscillating";
  spec.n = 12;
  spec.k = 5;
  spec.sigma = 6;
  auto protocol = std::make_unique<CombinedMonitor>();
  auto* proto = protocol.get();
  Simulator sim(strict_cfg(5, 0.25, 11), make_stream(spec), std::move(protocol));
  for (int t = 0; t < 200; ++t) {
    sim.step();
    EXPECT_EQ(proto->output().size(), 5u);
  }
}

class CombinedEdge : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {
};

TEST_P(CombinedEdge, ExtremeKAndEps) {
  const auto [k, eps] = GetParam();
  StreamSpec spec;
  spec.kind = "random_walk";
  spec.n = 10;
  spec.k = k;
  spec.delta = 1 << 12;
  Simulator sim(strict_cfg(k, eps, 13 + k), make_stream(spec),
                std::make_unique<CombinedMonitor>());
  sim.run(150);
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    Edges, CombinedEdge,
    ::testing::Values(std::make_tuple(1, 0.01), std::make_tuple(1, 0.5),
                      std::make_tuple(9, 0.01), std::make_tuple(9, 0.5),
                      std::make_tuple(5, 0.25)));

}  // namespace
}  // namespace topkmon
