// Multi-function monitoring engine: heterogeneous query kinds behind the
// unified QuerySpec API (ctest label `multiquery`; runs on the TSan CI leg).
//
// What this suite pins:
//   * engine-vs-standalone bit-identity for each NEW kind (count-distinct,
//     threshold alerts): a one-query engine with an explicit per-query seed
//     and share_probes=false books exactly the messages a standalone
//     Simulator books, and answers identically;
//   * one fleet, all four kinds at once, strict: every query oracle-validates
//     every step, and the final answers match the exact baselines recomputed
//     from the engine's shared history;
//   * the redesign is invisible to the existing kinds: explicit-seed top-k
//     and k-select queries inside a mixed-kind engine remain bit-identical
//     to their standalone Simulators;
//   * the declarative --query surface: parse_query_spec round-trips every
//     kind, default_protocol_for maps kinds to registered protocols, and the
//     engine rejects kind/protocol mismatches;
//   * DistinctSketch is a real mergeable sketch (commutative, associative,
//     order-independent) — the shard-combining contract the data plane uses.
#include <gtest/gtest.h>

#include <stdexcept>

#include "engine/engine.hpp"
#include "model/distinct_sketch.hpp"
#include "model/oracle.hpp"
#include "protocols/count_distinct.hpp"
#include "protocols/registry.hpp"
#include "protocols/threshold_alert.hpp"
#include "streams/registry.hpp"
#include "util/rng.hpp"

namespace topkmon {
namespace {

StreamSpec fleet_spec(const std::string& kind = "random_walk", std::size_t n = 24) {
  StreamSpec spec;
  spec.kind = kind;
  spec.n = n;
  spec.k = 4;
  spec.epsilon = 0.1;
  spec.sigma = n / 2;
  spec.delta = 1 << 14;
  return spec;
}

constexpr Value kBound = 1 << 13;  // inside the fleet_spec value range

// --- engine vs standalone, per new kind -----------------------------------

TEST(MultiQuery, CountDistinctEngineMatchesStandaloneSimulator) {
  const std::uint64_t seed = 77;
  SimConfig sim_cfg;
  sim_cfg.k = 4;
  sim_cfg.epsilon = 0.1;
  sim_cfg.seed = seed;
  sim_cfg.strict = true;
  Simulator sim(sim_cfg, make_stream(fleet_spec()), make_protocol("count_distinct"));
  const RunResult serial = sim.run(150);
  const QueryCapabilities* serial_caps =
      capability_for(sim.protocol(), QueryKind::kCountDistinct);
  ASSERT_NE(serial_caps, nullptr);

  EngineConfig ecfg;
  ecfg.threads = 1;
  ecfg.seed = seed;
  ecfg.share_probes = false;  // per-query accounting, like a Simulator
  MonitoringEngine engine(ecfg, make_stream(fleet_spec()));
  QuerySpec q;
  q.kind = QueryKind::kCountDistinct;
  q.k = 4;
  q.epsilon = 0.1;
  q.strict = true;
  q.seed = seed;  // exactly the standalone seed
  const QueryHandle h = engine.add_query(q);
  const EngineStats stats = engine.run(150);

  EXPECT_EQ(stats.queries[h].run.messages, serial.messages);
  EXPECT_EQ(stats.queries[h].run.by_tag, serial.by_tag);
  EXPECT_EQ(stats.queries[h].run.broadcasts, serial.broadcasts);
  const QueryCapabilities* caps = engine.capability(h, QueryKind::kCountDistinct);
  ASSERT_NE(caps, nullptr);
  EXPECT_EQ(caps->distinct_count(), serial_caps->distinct_count());
  EXPECT_EQ(stats.queries[h].kind, QueryKind::kCountDistinct);
}

TEST(MultiQuery, ThresholdEngineMatchesStandaloneSimulator) {
  const std::uint64_t seed = 78;
  SimConfig sim_cfg;
  sim_cfg.k = 4;
  sim_cfg.epsilon = 0.1;
  sim_cfg.seed = seed;
  sim_cfg.strict = true;
  sim_cfg.threshold = kBound;
  Simulator sim(sim_cfg, make_stream(fleet_spec("oscillating")),
                make_protocol("threshold_alert"));
  const RunResult serial = sim.run(150);
  const QueryCapabilities* serial_caps =
      capability_for(sim.protocol(), QueryKind::kThreshold);
  ASSERT_NE(serial_caps, nullptr);

  EngineConfig ecfg;
  ecfg.threads = 1;
  ecfg.seed = seed;
  ecfg.share_probes = false;
  MonitoringEngine engine(ecfg, make_stream(fleet_spec("oscillating")));
  QuerySpec q;
  q.kind = QueryKind::kThreshold;
  q.k = 4;
  q.epsilon = 0.1;
  q.threshold = kBound;
  q.strict = true;
  q.seed = seed;
  const QueryHandle h = engine.add_query(q);
  const EngineStats stats = engine.run(150);

  EXPECT_EQ(stats.queries[h].run.messages, serial.messages);
  EXPECT_EQ(stats.queries[h].run.by_tag, serial.by_tag);
  const QueryCapabilities* caps = engine.capability(h, QueryKind::kThreshold);
  ASSERT_NE(caps, nullptr);
  EXPECT_EQ(caps->above_count(), serial_caps->above_count());
  EXPECT_EQ(caps->alert_active(), serial_caps->alert_active());
}

// --- all four kinds on one fleet, strict, vs exact baselines ---------------

TEST(MultiQuery, AllFourKindsOnOneFleetStrictMatchOracle) {
  EngineConfig ecfg;
  ecfg.threads = 4;
  ecfg.seed = 31;
  ecfg.record_history = true;
  MonitoringEngine engine(ecfg, make_stream(fleet_spec("oscillating", 32)));

  const QueryKind kinds[] = {QueryKind::kTopK, QueryKind::kKSelect,
                             QueryKind::kCountDistinct, QueryKind::kThreshold};
  std::vector<QueryHandle> handles;
  for (const QueryKind kind : kinds) {
    QuerySpec q;
    q.kind = kind;
    q.k = 3;
    q.epsilon = 0.12;
    q.threshold = kBound;
    q.strict = true;  // oracle-validate every query at every step
    handles.push_back(engine.add_query(q));
  }
  const EngineStats stats = engine.run(200);
  EXPECT_EQ(stats.steps, 200u);
  ASSERT_FALSE(engine.history().empty());
  const ValueVector& final_values = engine.history().back();

  // Top-k: the output is an ε-valid top-3 position set of the final vector
  // (strict mode already asserted this at every step; re-check the surface).
  const OutputSet& topk = engine.output(handles[0]);
  EXPECT_EQ(topk.size(), 3u);
  EXPECT_TRUE(Oracle::explain_invalid(final_values, 3, 0.12, topk).empty());

  // k-select: every rank estimate is within ε of the exact order statistic.
  const QueryCapabilities* ks = engine.capability(handles[1], QueryKind::kKSelect);
  ASSERT_NE(ks, nullptr);
  for (std::size_t j = 1; j <= 3; ++j) {
    EXPECT_TRUE(
        Oracle::explain_kselect_invalid(final_values, j, 0.12, ks->kselect(j))
            .empty())
        << "rank " << j;
  }

  // Count-distinct and threshold answers are EXACT, not approximate.
  const QueryCapabilities* cd =
      engine.capability(handles[2], QueryKind::kCountDistinct);
  ASSERT_NE(cd, nullptr);
  EXPECT_EQ(cd->distinct_count(), Oracle::distinct_count(final_values, 0.12));

  const QueryCapabilities* th = engine.capability(handles[3], QueryKind::kThreshold);
  ASSERT_NE(th, nullptr);
  const std::uint64_t above = Oracle::count_above(final_values, kBound);
  EXPECT_EQ(th->above_count(), above);
  EXPECT_EQ(th->alert_active(), above > 0);
}

TEST(MultiQuery, MixedKindEngineIsBitIdenticalAcrossThreadCounts) {
  auto run = [](std::size_t threads) {
    EngineConfig cfg;
    cfg.threads = threads;
    cfg.seed = 9;
    MonitoringEngine engine(cfg, make_stream(fleet_spec("zipf_bursty", 28)));
    for (std::size_t q = 0; q < 8; ++q) {
      QuerySpec spec;
      spec.kind = static_cast<QueryKind>(q % kNumQueryKinds);
      spec.k = 2 + q % 3;
      spec.epsilon = 0.08 + 0.04 * static_cast<double>(q % 2);
      spec.threshold = kBound;
      spec.window = q % 3 == 0 ? 16 : kInfiniteWindow;
      spec.strict = true;
      engine.add_query(spec);
    }
    return engine.run(120);
  };
  const EngineStats t1 = run(1);
  const EngineStats t4 = run(4);
  ASSERT_EQ(t1.queries.size(), t4.queries.size());
  for (std::size_t q = 0; q < t1.queries.size(); ++q) {
    EXPECT_EQ(t1.queries[q].run.messages, t4.queries[q].run.messages) << q;
    EXPECT_EQ(t1.queries[q].run.by_tag, t4.queries[q].run.by_tag) << q;
    EXPECT_EQ(t1.queries[q].output, t4.queries[q].output) << q;
  }
  EXPECT_EQ(t1.total_messages, t4.total_messages);
}

// --- the redesign is invisible to the existing kinds -----------------------

TEST(MultiQuery, TopKAndKSelectInMixedEngineStayBitIdenticalToStandalone) {
  const std::uint64_t seed = 55;
  const TimeStep steps = 140;

  // Standalone references over the same stream seed the engine will use —
  // one seed drives both the generator and the protocol-side RNG.
  SimConfig topk_cfg;
  topk_cfg.k = 4;
  topk_cfg.epsilon = 0.1;
  topk_cfg.seed = seed;
  Simulator topk_sim(topk_cfg, make_stream(fleet_spec()), make_protocol("combined"));
  const RunResult topk_serial = topk_sim.run(steps);

  SimConfig ks_cfg;
  ks_cfg.k = 3;
  ks_cfg.epsilon = 0.15;
  ks_cfg.seed = seed;
  Simulator ks_sim(ks_cfg, make_stream(fleet_spec()), make_protocol("kselect"));
  const RunResult ks_serial = ks_sim.run(steps);

  // The same two queries inside an engine ALSO serving the two new kinds:
  // adding heterogeneous queries must not perturb a single message.
  EngineConfig ecfg;
  ecfg.threads = 2;
  ecfg.seed = seed;  // the shared stream replays the standalone one
  ecfg.share_probes = false;
  MonitoringEngine engine(ecfg, make_stream(fleet_spec()));

  QuerySpec topk_q;
  topk_q.protocol = "combined";
  topk_q.k = 4;
  topk_q.epsilon = 0.1;
  topk_q.seed = seed;
  const QueryHandle topk_h = engine.add_query(topk_q);

  QuerySpec ks_q;
  ks_q.kind = QueryKind::kKSelect;
  ks_q.k = 3;
  ks_q.epsilon = 0.15;
  ks_q.seed = seed;
  const QueryHandle ks_h = engine.add_query(ks_q);

  QuerySpec cd_q;
  cd_q.kind = QueryKind::kCountDistinct;
  cd_q.k = 2;
  cd_q.epsilon = 0.1;
  engine.add_query(cd_q);

  QuerySpec th_q;
  th_q.kind = QueryKind::kThreshold;
  th_q.k = 2;
  th_q.epsilon = 0.1;
  th_q.threshold = kBound;
  engine.add_query(th_q);

  const EngineStats stats = engine.run(steps);

  EXPECT_EQ(stats.queries[topk_h].run.messages, topk_serial.messages);
  EXPECT_EQ(stats.queries[topk_h].run.by_tag, topk_serial.by_tag);
  EXPECT_EQ(engine.output(topk_h), topk_sim.protocol().output());

  EXPECT_EQ(stats.queries[ks_h].run.messages, ks_serial.messages);
  EXPECT_EQ(stats.queries[ks_h].run.by_tag, ks_serial.by_tag);
  const QueryCapabilities* engine_ks = engine.kselect(ks_h);
  const QueryCapabilities* serial_ks =
      capability_for(ks_sim.protocol(), QueryKind::kKSelect);
  ASSERT_NE(engine_ks, nullptr);
  ASSERT_NE(serial_ks, nullptr);
  for (std::size_t j = 1; j <= 3; ++j) {
    EXPECT_EQ(engine_ks->kselect(j), serial_ks->kselect(j)) << "rank " << j;
  }
}

// --- QuerySpec API surface -------------------------------------------------

TEST(MultiQuery, ParseQuerySpecRoundTripsEveryKind) {
  const QuerySpec topk = parse_query_spec("topk:k=5,eps=0.2,window=64");
  EXPECT_EQ(topk.kind, QueryKind::kTopK);
  EXPECT_EQ(topk.k, 5u);
  EXPECT_DOUBLE_EQ(topk.epsilon, 0.2);
  EXPECT_EQ(topk.window, 64u);

  const QuerySpec ks = parse_query_spec("kselect:k=3,proto=kselect");
  EXPECT_EQ(ks.kind, QueryKind::kKSelect);
  EXPECT_EQ(ks.protocol, "kselect");

  const QuerySpec cd = parse_query_spec("distinct:eps=0.05");
  EXPECT_EQ(cd.kind, QueryKind::kCountDistinct);
  EXPECT_DOUBLE_EQ(cd.epsilon, 0.05);

  const QuerySpec th = parse_query_spec("threshold:bound=9000,seed=4,strict=1");
  EXPECT_EQ(th.kind, QueryKind::kThreshold);
  EXPECT_EQ(th.threshold, Value{9000});
  ASSERT_TRUE(th.seed.has_value());
  EXPECT_EQ(*th.seed, 4u);
  EXPECT_TRUE(th.strict);

  // Aliases accepted by parse_query_kind keep scripts portable.
  EXPECT_EQ(parse_query_spec("count_distinct").kind, QueryKind::kCountDistinct);
  EXPECT_EQ(parse_query_spec("threshold_alert").kind, QueryKind::kThreshold);

  EXPECT_THROW(parse_query_spec("nosuchkind"), std::runtime_error);
  EXPECT_THROW(parse_query_spec("topk:k=abc"), std::runtime_error);
  EXPECT_THROW(parse_query_spec("topk:nosuchkey=1"), std::runtime_error);
}

TEST(MultiQuery, DefaultProtocolForMapsToRegisteredProtocols) {
  for (std::size_t i = 0; i < kNumQueryKinds; ++i) {
    const QueryKind kind = static_cast<QueryKind>(i);
    const std::string proto = default_protocol_for(kind);
    auto protocol = make_protocol(proto);
    ASSERT_NE(protocol, nullptr) << proto;
    if (kind == QueryKind::kTopK) {
      EXPECT_TRUE(serves_topk(*protocol)) << proto;
    } else {
      EXPECT_NE(capability_for(*protocol, kind), nullptr) << proto;
    }
  }
}

TEST(MultiQuery, EngineRejectsKindProtocolMismatch) {
  EngineConfig cfg;
  cfg.threads = 1;
  MonitoringEngine engine(cfg, make_stream(fleet_spec()));
  QuerySpec q;
  q.kind = QueryKind::kCountDistinct;
  q.protocol = "combined";  // a top-k protocol cannot serve count-distinct
  q.k = 2;
  q.epsilon = 0.1;
  EXPECT_THROW(engine.add_query(q), std::runtime_error);

  QuerySpec q2;
  q2.kind = QueryKind::kTopK;
  q2.protocol = "count_distinct";  // and vice versa
  q2.k = 2;
  q2.epsilon = 0.1;
  EXPECT_THROW(engine.add_query(q2), std::runtime_error);
}

// --- DistinctSketch: the shard-combining operator --------------------------

TEST(MultiQuery, DistinctSketchMergeIsOrderIndependent) {
  Rng rng(17);
  std::vector<Value> bands(200);
  for (auto& b : bands) b = rng.below(32);  // heavy band collisions

  // Split into 4 shard sketches, merge in two different orders.
  DistinctSketch shards[4];
  for (std::size_t i = 0; i < bands.size(); ++i) {
    shards[i % 4].add(bands[i]);
  }
  DistinctSketch forward;
  for (const auto& s : shards) forward.merge(s);
  DistinctSketch backward;
  for (std::size_t i = 4; i-- > 0;) backward.merge(shards[i]);

  DistinctSketch flat;
  for (const Value b : bands) flat.add(b);

  EXPECT_EQ(forward.distinct(), flat.distinct());
  EXPECT_EQ(backward.distinct(), flat.distinct());
  EXPECT_EQ(forward.total(), bands.size());
  EXPECT_EQ(backward.total(), bands.size());

  // remove() undoes add() exactly, band by band.
  for (const Value b : bands) flat.remove(b);
  EXPECT_EQ(flat.distinct(), 0u);
  EXPECT_EQ(flat.total(), 0u);
}

}  // namespace
}  // namespace topkmon
