#!/usr/bin/env python3
"""Bench-regression gate: compare bench --json runs against a baseline.

Usage:
  check_bench.py --current bench_e10.json [--current bench_e12.json ...]
                 --baseline bench/bench_baseline.json
                 [--tolerance 0.2] [--metric "query-steps/s"]
                 [--telemetry telemetry.json ...] [--emit-summary]
  check_bench.py --current bench_e10.json [--current ...]
                 --write-baseline bench/bench_baseline.json
  check_bench.py --telemetry telemetry.json --emit-summary

--emit-summary appends a markdown current-vs-baseline table (with Δ%) to
$GITHUB_STEP_SUMMARY — or stdout when unset — so PR reviewers see throughput
deltas without reading job logs.

--telemetry (repeatable) reads telemetry JSON documents as written by
`topk_sim --telemetry` or any bench's `--telemetry` flag (schema
"topkmon.telemetry.v1", src/telemetry) and renders their per-phase step
profiles into the summary. Unknown schema versions are a hard error (exit 2):
silently misreading a reshaped document would produce a wrong-but-plausible
table. With --telemetry alone (no --current), only the telemetry report is
produced — no baseline gating.

--current may repeat; the files' tables are concatenated (one baseline can
gate several benches). Rows are matched across files by their key columns
(every column that is not a measurement). Two classes of checks:

  * deterministic counters ("messages", "serial messages", "shared probe
    msgs", "identical", "expirations", "opt phases") must match EXACTLY —
    the simulator is bit-reproducible across machines, so any drift is a
    real behavioral change, not noise;
  * the throughput metric (default "query-steps/s") must not regress below
    (1 - tolerance) x baseline. Hardware differs between the machine that
    wrote the baseline and the one checking, so this gate only means much
    when CI refreshes the baseline on main pushes (see .github/workflows):
    then both sides ran on the same runner class.

Baseline tables whose title matches no table in the current run are skipped
with a note (not a failure): a gate invocation may legitimately run a subset
of the benches the baseline covers. Rows missing from a table that IS
present still fail — that's a schema regression of the bench itself.

Exit status: 0 = pass, 1 = regression/mismatch, 2 = usage or file error.
"""

from __future__ import annotations

import argparse
import json
import sys

# Columns whose values are deterministic counters: exact match required.
# "allocs/step" is the zero-allocation invariant of the hot-path bench
# (bench_e13_hotpath): fault-free steady-state rows must stay exactly 0
# ("n/a" on churn rows, "off" when the counting hook is compiled out — gate
# and baseline must agree on the build flavor, see .github/workflows).
# "repairs"/"rebuilds" pin the order-maintenance path choice of the churn
# bench (bench_e14_churn): outputs are identical on every path, so drift here
# is a deliberate policy change that must go through a baseline refresh.
# "broadcasts" gates the k-select structure's floor-move economics
# (bench_e16_kselect): the band ladder pays broadcasts only on refills and
# compactions, so a broadcast-count drift is a maintenance-policy change.
EXACT_COLUMNS = {"messages", "serial messages", "shared probe msgs", "identical",
                 "expirations", "opt phases", "allocs/step", "repairs", "rebuilds",
                 "broadcasts"}
# Columns that are wall-clock measurements or derived ratios: never compared
# directly (the throughput metric below is the one gated, with tolerance).
NOISY_COLUMNS = {"engine ms", "serial ms", "speedup", "ns/step", "query-steps/s",
                 "elapsed (s)", "steps / s", "msgs/step", "lost/step",
                 "stale/step", "ratio"}


# Telemetry JSON schema versions this script understands (keep in sync with
# telemetry::kTelemetrySchema in src/telemetry/telemetry.hpp).
KNOWN_TELEMETRY_SCHEMAS = {"topkmon.telemetry.v1"}


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def load_telemetry(path: str) -> dict:
    """Loads a telemetry JSON document, hard-failing on unknown schemas."""
    doc = load(path)
    schema = doc.get("schema")
    if schema not in KNOWN_TELEMETRY_SCHEMAS:
        print(f"check_bench: {path}: unknown telemetry schema {schema!r} "
              f"(this script understands {sorted(KNOWN_TELEMETRY_SCHEMAS)}); "
              "refusing to guess at a reshaped document — update "
              "scripts/check_bench.py alongside telemetry::kTelemetrySchema",
              file=sys.stderr)
        sys.exit(2)
    return doc


def telemetry_summary_lines(docs: list[tuple[str, dict]]) -> list[str]:
    """Markdown per-phase timing tables, one per telemetry document."""
    lines = ["## Telemetry: per-phase step profile", ""]
    for path, doc in docs:
        source = doc.get("source", "?")
        lines.append(f"### {source} (`{path}`)")
        lines.append("")
        if not doc.get("telemetry_enabled", True):
            lines.append("_built with -DTOPKMON_TELEMETRY=OFF — phase timers "
                         "compiled out_")
            lines.append("")
        phases = doc.get("profiler", {}).get("phases", [])
        if not phases:
            lines.append("_no phase samples recorded_")
            lines.append("")
            continue
        grand = sum(p.get("total_ns", 0) for p in phases) or 1
        lines.append("| phase | calls | total ms | ns/call | share |")
        lines.append("|---|---|---|---|---|")
        for p in sorted(phases, key=lambda p: -p.get("total_ns", 0)):
            total_ns = p.get("total_ns", 0)
            calls = p.get("calls", 0)
            per_call = total_ns / calls if calls else 0.0
            lines.append(f"| {p.get('phase', '?')} | {calls} "
                         f"| {total_ns / 1e6:.2f} | {per_call:.0f} "
                         f"| {total_ns / grand:.1%} |")
        lines.append("")
        lines.append("_shares are of inclusive time (nested phases count into "
                     "their enclosing scope)_")
        lines.append("")
    return lines


def row_key(row: dict, metric: str) -> tuple:
    """Key columns = everything that is neither noisy nor the gated metric."""
    return tuple(
        (k, v) for k, v in sorted(row.items())
        if k != metric and k not in NOISY_COLUMNS and k not in EXACT_COLUMNS
    )


def index_rows(doc: dict, metric: str) -> dict:
    out = {}
    for table in doc.get("tables", []):
        for row in table.get("rows", []):
            out[(table.get("title", ""), row_key(row, metric))] = row
    return out


def merge(docs: list[dict]) -> dict:
    """Concatenates the tables of several bench JSON files (params: first)."""
    out = {"params": docs[0].get("params", {}), "tables": []}
    for doc in docs:
        out["tables"].extend(doc.get("tables", []))
    return out


def emit_summary(current: dict, base_rows: dict, metric: str,
                 failures: list[str],
                 telemetry: list[tuple[str, dict]]) -> None:
    """Appends a markdown perf report to $GITHUB_STEP_SUMMARY (stdout when the
    variable is unset, e.g. local runs) so PR reviewers see throughput deltas
    without reading job logs."""
    import os

    lines = []
    if current.get("tables"):
        lines += ["## Bench results", ""]
    for table in current.get("tables", []):
        title = table.get("title", "")
        rows = table.get("rows", [])
        if not rows:
            continue
        lines.append(f"### {title}")
        lines.append("")
        header = list(rows[0].keys())
        cols = [c for c in header if c != metric]
        lines.append("| " + " | ".join(cols + [metric, "baseline", "Δ"]) + " |")
        lines.append("|" + "---|" * (len(cols) + 3))
        for row in rows:
            base = base_rows.get((title, row_key(row, metric)))
            cur_v = row.get(metric)
            base_v = base.get(metric) if base else None
            delta = ""
            if cur_v is not None and base_v is not None:
                try:
                    delta = f"{(float(cur_v) / float(base_v) - 1.0):+.1%}"
                except (ValueError, ZeroDivisionError):
                    delta = "—"
            cells = [str(row.get(c, "")) for c in cols]
            cells += [str(cur_v) if cur_v is not None else "—",
                      str(base_v) if base_v is not None else "—", delta]
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
    if failures:
        lines.append(f"**{len(failures)} gate failure(s):**")
        lines.extend(f"- {f}" for f in failures)
        lines.append("")
    if telemetry:
        lines.extend(telemetry_summary_lines(telemetry))
    text = "\n".join(lines) + "\n"
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if path:
        with open(path, "a", encoding="utf-8") as f:
            f.write(text)
    else:
        print(text, end="")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", action="append", default=[],
                    help="fresh bench --json output (repeatable)")
    ap.add_argument("--telemetry", action="append", default=[], metavar="FILE",
                    help="telemetry JSON document (topk_sim/bench --telemetry "
                         "output, repeatable); rendered as a per-phase timing "
                         "table in the summary")
    ap.add_argument("--baseline", help="checked-in baseline to compare against")
    ap.add_argument("--write-baseline", metavar="PATH",
                    help="write/refresh the baseline from --current and exit")
    ap.add_argument("--tolerance", type=float, default=0.2,
                    help="allowed fractional throughput regression (default 0.2)")
    ap.add_argument("--metric", default="query-steps/s",
                    help="throughput column gated with tolerance")
    ap.add_argument("--emit-summary", action="store_true",
                    help="append a markdown perf table to $GITHUB_STEP_SUMMARY "
                         "(stdout when unset)")
    args = ap.parse_args()

    if not args.current and not args.telemetry:
        ap.error("at least one of --current / --telemetry is required")

    # Schema-checked up front: a bad telemetry file must fail (exit 2) even
    # when the bench gate itself would pass.
    telemetry = [(path, load_telemetry(path)) for path in args.telemetry]

    if not args.current:
        # Telemetry-only invocation: no gating, just the report.
        if args.emit_summary:
            emit_summary({}, {}, args.metric, [], telemetry)
        for path, doc in telemetry:
            phases = doc.get("profiler", {}).get("phases", [])
            print(f"check_bench: {path}: telemetry OK "
                  f"(source={doc.get('source', '?')}, {len(phases)} active "
                  f"phases, {len(doc.get('metrics', []))} metrics)")
        return 0

    current = merge([load(path) for path in args.current])

    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as f:
            json.dump(current, f, indent=2)
            f.write("\n")
        print(f"check_bench: baseline written to {args.write_baseline}")
        return 0

    if not args.baseline:
        ap.error("one of --baseline / --write-baseline is required")

    baseline = load(args.baseline)
    base_rows = index_rows(baseline, args.metric)
    cur_rows = index_rows(current, args.metric)
    cur_titles = {t.get("title", "") for t in current.get("tables", [])}

    failures: list[str] = []
    skipped_titles: set[str] = set()
    checked = 0
    for key, base in base_rows.items():
        title = key[0]
        if title not in cur_titles:
            # This bench wasn't part of the current invocation; skip its
            # baseline rows rather than failing (see module docstring).
            skipped_titles.add(title)
            continue
        cur = cur_rows.get(key)
        label = ", ".join(f"{k}={v}" for k, v in key[1])
        if cur is None:
            failures.append(f"row missing from current run: [{label}]")
            continue

        # A counter the current run reports but the baseline lacks would
        # otherwise be silently ungated — fail loudly and name the metric so
        # the fix (refresh or regenerate the baseline) is obvious.
        for col in sorted((EXACT_COLUMNS | {args.metric}) & cur.keys() - base.keys()):
            failures.append(
                f"[{label}] metric missing from baseline: '{col}' — the current "
                f"run reports it but {args.baseline} has no entry to gate it "
                "against; regenerate the baseline to cover it")

        for col in EXACT_COLUMNS & base.keys() & cur.keys():
            if base[col] != cur[col]:
                failures.append(
                    f"[{label}] {col}: {cur[col]} != baseline {base[col]} "
                    "(deterministic counter — behavioral change)")
            checked += 1

        if args.metric in base and args.metric in cur:
            b, c = float(base[args.metric]), float(cur[args.metric])
            floor = b * (1.0 - args.tolerance)
            if c < floor:
                failures.append(
                    f"[{label}] {args.metric}: {c:.0f} < {floor:.0f} "
                    f"(baseline {b:.0f} - {args.tolerance:.0%})")
            elif c > b * (1.0 + args.tolerance):
                print(f"check_bench: note: [{label}] {args.metric} improved "
                      f"{b:.0f} -> {c:.0f}; consider refreshing the baseline")
            checked += 1

    # The converse direction: anything the current run produced that the
    # baseline cannot gate is an error, not a silent skip — a new bench, a
    # new grid row or a new counter must land together with its baseline
    # entry (run --write-baseline, see README "Refreshing bench_baseline").
    base_titles = {t.get("title", "") for t in baseline.get("tables", [])}
    missing_tables: set[str] = set()
    for (title, key), _row in cur_rows.items():
        if title not in base_titles:
            missing_tables.add(title)
        elif (title, key) not in base_rows:
            label = ", ".join(f"{k}={v}" for k, v in key)
            failures.append(
                f"[{label}] row missing from baseline table '{title}' — "
                "regenerate the baseline to gate it")
    for title in sorted(missing_tables):
        failures.append(
            f"table missing from baseline: '{title}' — the current run "
            "produced it but nothing gates it; regenerate the baseline")

    if not base_rows:
        failures.append("baseline contains no rows")
    elif checked == 0 and not failures:
        failures.append("no baseline table matched the current run "
                        "(every bench was skipped — wrong --current files?)")

    for title in sorted(skipped_titles):
        print(f"check_bench: note: baseline table not in this run, skipped: {title}")
    if args.emit_summary:
        emit_summary(current, base_rows, args.metric, failures, telemetry)
    if failures:
        print(f"check_bench: FAIL — {len(failures)} issue(s) over {checked} checks:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"check_bench: OK — {checked} checks against {len(base_rows)} baseline rows")
    return 0


if __name__ == "__main__":
    sys.exit(main())
