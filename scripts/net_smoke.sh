#!/usr/bin/env bash
# Two-process (well, 1+N-process) socket smoke of the networked runtime:
# one topk_coord listening on 127.0.0.1 and N topk_node processes connecting
# over real TCP. Exercises the whole distributed stack — listen/accept,
# Hello/Config handshake, per-step lockstep, filter shipping, shutdown —
# outside the in-process harness the tests use.
#
#   scripts/net_smoke.sh [BUILD_DIR] [PORT] [HOSTS]
#
# The coordinator exports its telemetry to coord_telemetry.json (validated in
# CI by scripts/check_bench.py --telemetry). Any nonzero exit — coordinator,
# node-host, or quiescence failure — fails the script.
set -euo pipefail

build=${1:-build}
port=${2:-7421}
hosts=${3:-2}

"$build"/topk_coord --listen "$port" --hosts "$hosts" \
  --stream oscillating --n 24 --k 4 --steps 300 --seed 7 \
  --faults flaky --window 32 \
  --telemetry=coord_telemetry.json &
coord_pid=$!

node_pids=()
for ((h = 0; h < hosts; ++h)); do
  "$build"/topk_node --connect 127.0.0.1:"$port" \
    --host-index "$h" --hosts "$hosts" &
  node_pids+=($!)
done

status=0
wait "$coord_pid" || status=$?
for pid in "${node_pids[@]}"; do
  wait "$pid" || status=$?
done

if [[ $status -ne 0 ]]; then
  echo "net_smoke: FAILED (status $status)" >&2
  exit "$status"
fi
[[ -s coord_telemetry.json ]] || { echo "net_smoke: no telemetry written" >&2; exit 1; }
echo "net_smoke: OK ($hosts node-hosts over 127.0.0.1:$port)"
