// The paper's motivating scenario (Sect. 1): a load balancer in a web
// cluster tracks the k most-loaded servers. Loads are Zipf-skewed with
// bursts and ±2% observation noise — noise that an exact monitor chases
// and an ε-monitor ignores.
//
//   $ ./load_balancer [--n 32] [--k 4] [--eps 0.15] [--steps 2000]
//
// Runs the exact monitor and the approximate combined monitor on the SAME
// load trace and prints the communication comparison.
#include <iostream>

#include "protocols/exact_topk.hpp"
#include "protocols/combined.hpp"
#include "sim/simulator.hpp"
#include "streams/zipf_bursty.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace topkmon;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  ZipfBurstyConfig stream_cfg;
  stream_cfg.n = flags.get_uint("n", 32);
  stream_cfg.base_scale = 1 << 16;
  stream_cfg.noise = flags.get_double("noise", 0.02);
  const std::size_t k = flags.get_uint("k", 4);
  const double eps = flags.get_double("eps", 0.15);
  const TimeStep steps = static_cast<TimeStep>(flags.get_uint("steps", 2000));
  const std::uint64_t seed = flags.get_uint("seed", 2024);

  auto run = [&](std::unique_ptr<MonitoringProtocol> protocol, double protocol_eps) {
    SimConfig cfg;
    cfg.k = k;
    cfg.epsilon = protocol_eps;
    cfg.seed = seed;  // same seed => identical load trace for both monitors
    cfg.strict = true;
    Simulator sim(cfg, std::make_unique<ZipfBurstyStream>(stream_cfg),
                  std::move(protocol));
    return sim.run(steps);
  };

  const auto exact = run(std::make_unique<ExactTopKMonitor>(), 0.0);
  const auto approx = run(std::make_unique<CombinedMonitor>(), eps);

  Table t("Load balancer: exact vs ε-approximate top-" + std::to_string(k) +
          " monitoring (" + std::to_string(stream_cfg.n) + " servers, " +
          std::to_string(steps) + " steps)");
  t.header({"monitor", "messages", "msgs/step", "broadcasts", "node->server"});
  t.add_row({"exact_topk (ε=0)", format_count(exact.messages),
             format_double(exact.messages_per_step, 2), format_count(exact.broadcasts),
             format_count(exact.node_to_server)});
  t.add_row({"combined (ε=" + format_double(eps, 2) + ")", format_count(approx.messages),
             format_double(approx.messages_per_step, 2),
             format_count(approx.broadcasts), format_count(approx.node_to_server)});
  std::cout << t.to_ascii();
  std::cout << "\nTolerating ±" << format_double(eps * 100, 0)
            << "% around the k-th load cut communication by "
            << format_double(static_cast<double>(exact.messages) /
                                 static_cast<double>(std::max<std::uint64_t>(
                                     1, approx.messages)),
                             1)
            << "x.\n";
  return 0;
}
