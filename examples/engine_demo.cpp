// engine_demo — 32 concurrent top-k queries over one zipf_bursty fleet.
//
// A multi-tenant dashboard scenario: one fleet of 64 web servers streams
// request loads; 32 independent dashboards each watch their own top-k with
// their own accuracy budget ε (some exact, most approximate). Instead of 32
// separate monitors (32× generator work, 32× probe traffic), the
// MonitoringEngine advances all queries in lockstep over a single shared
// value snapshot per tick and batches the probe rounds they share.
//
//   $ ./example_engine_demo [--steps 2000] [--threads 0] [--seed 7]
#include <iostream>

#include "engine/engine.hpp"
#include "streams/registry.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace topkmon;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const TimeStep steps = static_cast<TimeStep>(flags.get_uint("steps", 2000));

  StreamSpec fleet;
  fleet.kind = "zipf_bursty";
  fleet.n = 64;
  fleet.k = 4;
  fleet.epsilon = 0.1;
  fleet.sigma = 16;
  fleet.delta = 1 << 16;

  EngineConfig cfg;
  cfg.threads = flags.get_uint("threads", 0);
  cfg.seed = flags.get_uint("seed", 7);

  MonitoringEngine engine(cfg, make_stream(fleet));

  // 32 dashboards: a quarter need the exact top-k, the rest trade accuracy
  // for communication at increasing ε.
  for (std::size_t q = 0; q < 32; ++q) {
    QuerySpec spec;
    spec.k = 2 + q % 6;  // k in 2..7
    if (q % 4 == 0) {
      spec.protocol = "exact_topk";
      spec.epsilon = 0.0;
      spec.label = "dash" + std::to_string(q) + " exact k=" + std::to_string(spec.k);
    } else {
      spec.protocol = "combined";
      spec.epsilon = 0.05 * static_cast<double>(1 + q % 3);  // 0.05 / 0.10 / 0.15
      spec.label = "dash" + std::to_string(q) + " eps=" + format_double(spec.epsilon, 2);
    }
    engine.add_query(spec);
  }

  const EngineStats stats = engine.run(steps);

  std::cout << stats
                   .summary_table("engine_demo — 32 dashboards, one fleet (n=64, " +
                                  std::to_string(steps) + " ticks)")
                   .to_ascii()
            << "\n";
  std::cout << stats.per_query_table("per-dashboard breakdown").to_ascii() << "\n";

  const double naive = static_cast<double>(stats.queries.size()) *
                       static_cast<double>(fleet.n + 1) * static_cast<double>(steps);
  std::cout << "total messages: " << format_count(stats.total_messages) << "  ("
            << format_double(naive / static_cast<double>(stats.total_messages), 1)
            << "x cheaper than 32 naive central monitors)\n";
  std::cout << "shared probe channel: " << format_count(stats.probe_calls)
            << " probe_top requests served by "
            << format_count(stats.probe_ranks_computed)
            << " once-per-step rank computations\n";
  return 0;
}
