// Replay a CSV trace (one row per step, one column per node) through any
// monitor. Without a --trace argument, a demo trace is synthesized first
// so the example is runnable out of the box.
//
//   $ ./trace_replay [--trace loads.csv] [--protocol combined] [--k 3]
#include <cstdio>
#include <iostream>

#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/trace_file.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

using namespace topkmon;

namespace {

std::string synthesize_demo_trace() {
  const std::string path = "/tmp/topkmon_demo_trace.csv";
  Rng rng(31337);
  std::vector<ValueVector> rows;
  ValueVector v{900, 800, 700, 600, 500, 400};
  for (int t = 0; t < 300; ++t) {
    for (auto& x : v) {
      const Value step = rng.below(25);
      x = (rng.bernoulli(0.5) && x > step) ? x - step : x + step;
    }
    rows.push_back(v);
  }
  write_trace(path, rows);
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string path = flags.get_string("trace", "");
  if (path.empty()) {
    path = synthesize_demo_trace();
    std::cout << "(no --trace given; synthesized demo trace at " << path << ")\n";
  }
  const std::string protocol = flags.get_string("protocol", "combined");

  auto stream = std::make_unique<TraceFileStream>(path);
  const std::size_t rows = stream->rows();
  SimConfig cfg;
  cfg.k = flags.get_uint("k", 3);
  cfg.epsilon = flags.get_double("eps", 0.1);
  cfg.seed = flags.get_uint("seed", 1);
  cfg.strict = true;
  Simulator sim(cfg, std::move(stream), make_protocol(protocol));
  sim.run(static_cast<TimeStep>(rows));

  std::cout << "protocol  : " << protocol << "\n"
            << "trace     : " << path << " (" << rows << " rows)\n"
            << "output    : {";
  const auto& out = sim.protocol().output();
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::cout << out[i] << (i + 1 < out.size() ? ", " : "");
  }
  std::cout << "}\n" << sim.context().stats().report() << "\n";
  return 0;
}
