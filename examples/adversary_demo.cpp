// Theorem 5.1 live: the adaptive adversary inspects the monitor's filters
// each step and drops one output node below the (1−ε)-threshold, forcing a
// violation — σ − k forced messages per phase against an offline optimum
// that pays k + 1.
//
//   $ ./adversary_demo [--sigma 12] [--k 3] [--steps 200]
#include <iostream>

#include "offline/opt.hpp"
#include "protocols/combined.hpp"
#include "sim/simulator.hpp"
#include "streams/lb_adversary.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace topkmon;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  LbAdversaryConfig adv_cfg;
  adv_cfg.sigma = flags.get_uint("sigma", 12);
  adv_cfg.k = flags.get_uint("k", 3);
  adv_cfg.n = adv_cfg.sigma + 4;
  adv_cfg.epsilon = flags.get_double("eps", 0.2);
  const TimeStep steps = static_cast<TimeStep>(flags.get_uint("steps", 200));

  auto stream = std::make_unique<LbAdversaryStream>(adv_cfg);
  auto* adversary = stream.get();
  SimConfig cfg;
  cfg.k = adv_cfg.k;
  cfg.epsilon = adv_cfg.epsilon;
  cfg.seed = flags.get_uint("seed", 9);
  cfg.strict = true;
  cfg.record_history = true;
  Simulator sim(cfg, std::move(stream), std::make_unique<CombinedMonitor>());
  const auto run = sim.run(steps);
  const auto opt = OfflineOpt::approx(sim.history(), adv_cfg.k, adv_cfg.epsilon);

  Table t("Adaptive lower-bound adversary (Theorem 5.1): σ=" +
          std::to_string(adv_cfg.sigma) + ", k=" + std::to_string(adv_cfg.k));
  t.header({"quantity", "value"});
  t.add_row({"steps", std::to_string(run.steps)});
  t.add_row({"adversary phases completed", std::to_string(adversary->phases_completed())});
  t.add_row({"forced drops (>=1 online msg each)",
             std::to_string(adversary->drops_performed())});
  t.add_row({"online messages", format_count(run.messages)});
  t.add_row({"offline phases (greedy-optimal)", std::to_string(opt.phases)});
  t.add_row({"offline messages ((k+1)/phase)",
             std::to_string(opt.messages_constructive)});
  t.add_row({"competitive ratio (msgs / OPT phases)",
             format_double(static_cast<double>(run.messages) /
                               static_cast<double>(std::max<std::uint64_t>(
                                   1, opt.phases)),
                           1)});
  t.add_row({"Ω(σ/k) reference",
             format_double(static_cast<double>(adv_cfg.sigma) /
                               static_cast<double>(adv_cfg.k),
                           1)});
  std::cout << t.to_ascii();
  std::cout << "\nNo online algorithm can dodge this: the adversary sees the\n"
               "filters and always drops a node whose filter must break.\n";
  return 0;
}
