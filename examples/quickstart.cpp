// Quickstart: monitor the top-3 of 10 random-walking streams with ε = 0.1.
//
//   $ ./quickstart [--steps 100] [--seed 7]
//
// Shows the three core moves of the library:
//   1. build a stream generator (or implement StreamGenerator yourself),
//   2. pick a monitoring protocol (here: the Theorem 5.8 combined monitor),
//   3. drive the Simulator and read output + message statistics.
#include <iostream>

#include "protocols/combined.hpp"
#include "sim/simulator.hpp"
#include "streams/random_walk.hpp"
#include "util/flags.hpp"

using namespace topkmon;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const TimeStep steps = static_cast<TimeStep>(flags.get_uint("steps", 100));

  RandomWalkConfig stream_cfg;
  stream_cfg.n = 10;          // ten distributed nodes
  stream_cfg.hi = 10000;      // values in [0, 10000]
  stream_cfg.max_step = 50;   // smooth walks — the filter-friendly regime

  SimConfig sim_cfg;
  sim_cfg.k = 3;              // track the top-3 positions
  sim_cfg.epsilon = 0.1;      // ... up to 10% slack around the 3rd value
  sim_cfg.seed = flags.get_uint("seed", 7);
  sim_cfg.strict = true;      // re-validate the protocol contract every step

  Simulator sim(sim_cfg, std::make_unique<RandomWalkStream>(stream_cfg),
                std::make_unique<CombinedMonitor>());

  for (TimeStep t = 0; t < steps; ++t) {
    sim.step();
    if (t % 10 == 0) {
      std::cout << "t=" << t << "  F(t) = {";
      const auto& out = sim.protocol().output();
      for (std::size_t i = 0; i < out.size(); ++i) {
        std::cout << out[i] << (i + 1 < out.size() ? ", " : "");
      }
      std::cout << "}  messages so far = " << sim.context().stats().total() << "\n";
    }
  }

  const auto result = sim.result();
  std::cout << "\nRan " << result.steps << " steps.\n"
            << sim.context().stats().report() << "\n"
            << "\nA naive collect-everything server would have paid "
            << result.steps * (stream_cfg.n + 1) << " messages; filters paid "
            << result.messages << ".\n";
  return 0;
}
