// Dense-neighborhood scenario: a fleet of sensors whose readings oscillate
// inside the ε-band around the k-th value — the regime Sect. 5 of the
// paper is about. An exact monitor must react to every rank swap inside
// the band; the ε-monitors may stay silent.
//
//   $ ./sensor_noise [--sigma 10] [--k 4] [--eps 0.1] [--steps 1000]
#include <iostream>

#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/oscillating.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace topkmon;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  OscillatingConfig stream_cfg;
  stream_cfg.sigma = flags.get_uint("sigma", 10);
  stream_cfg.k = flags.get_uint("k", 4);
  stream_cfg.epsilon = flags.get_double("eps", 0.1);
  stream_cfg.n = 2 * stream_cfg.sigma + stream_cfg.k + 4;
  stream_cfg.band_top = 1 << 16;
  const TimeStep steps = static_cast<TimeStep>(flags.get_uint("steps", 1000));

  Table t("Sensor fleet with σ=" + std::to_string(stream_cfg.sigma) +
          " nodes oscillating in the ε-band (n=" + std::to_string(stream_cfg.n) +
          ", k=" + std::to_string(stream_cfg.k) + ", " + std::to_string(steps) +
          " steps)");
  t.header({"monitor", "ε used", "messages", "msgs/step"});

  for (const auto& [name, eps] :
       std::vector<std::pair<std::string, double>>{{"naive_central", 0.0},
                                                   {"exact_topk", 0.0},
                                                   {"combined", stream_cfg.epsilon},
                                                   {"half_error", stream_cfg.epsilon}}) {
    SimConfig cfg;
    cfg.k = stream_cfg.k;
    cfg.epsilon = eps;
    cfg.seed = flags.get_uint("seed", 5);
    cfg.strict = true;
    Simulator sim(cfg, std::make_unique<OscillatingStream>(stream_cfg),
                  make_protocol(name));
    const auto r = sim.run(steps);
    t.add_row({name, format_double(eps, 2), format_count(r.messages),
               format_double(r.messages_per_step, 2)});
  }
  std::cout << t.to_ascii();
  std::cout << "\nAll the churn lives inside the ε-neighborhood: the approximate\n"
               "monitors certify the band once and then stay silent, while the\n"
               "exact ones chase every swap of the k-th position.\n";
  return 0;
}
