// NodeHost — the data-plane process of the networked runtime.
//
// One node-host owns a contiguous shard [lo, hi) of the fleet. It receives
// the full RunSpec in the Config handshake (zero workload flags of its own)
// and then, per step, in lockstep with the coordinator:
//
//   1. StepBegin{t}  — runs the deterministic full-fleet generator and fault
//      injector locally (same seeds as the in-process Simulator, so every
//      host reproduces the identical effective vector) and slices out its
//      shard;
//   2. ShardValues   — reports the shard's effective values plus node-side
//      observations: stale-read count (kFaultStale flags in the shard) and
//      current filter violations;
//   3. FilterUpdate  — installs the filter deltas the coordinator's protocol
//      assigned to this shard, then checks quiescence: every shard node's
//      monitored (windowed) value must lie inside its fresh filter;
//   4. StepAck       — reports the quiescence verdict.
//
// Why full-fleet generation on every host: generators are cheap and
// deterministic, and running them whole keeps the RNG stream identical to
// the standalone Simulator (bit-identical values without any cross-host
// value exchange). Only the shard slice ever crosses the wire.
//
// Windowing: the coordinator owns the authoritative window model (its
// Simulator windows the assembled vector exactly as a standalone one would).
// The node-host keeps its own window model purely to evaluate filter
// quiescence against the same monitored values the protocol sees.
#pragma once

#include <memory>
#include <string>

#include "net/link.hpp"
#include "net/wire.hpp"
#include "sim/stats_snapshot.hpp"

namespace topkmon::net {

class NodeHost {
 public:
  /// `link` connects to the coordinator; `host_index` ∈ [0, host_count).
  NodeHost(std::unique_ptr<Link> link, std::uint32_t host_index,
           std::uint32_t host_count);
  ~NodeHost();

  /// Handshake + step loop until Shutdown. 0 on clean shutdown; nonzero on
  /// protocol/link errors (see error()).
  int run();

  /// The coordinator's final aggregate stats (valid after a clean run()).
  const StatsSnapshot& final_stats() const { return final_stats_; }

  /// This link's transport counters.
  const NetChannelStats& link_stats() const { return link_->stats(); }

  /// Quiescence errors this host reported across the run.
  std::uint64_t quiescence_errors() const { return quiescence_errors_; }

  const std::string& error() const { return error_; }

 private:
  struct State;  ///< workload machinery built from the Config message

  int fail(const std::string& why);
  bool handle_step_begin(TimeStep t);
  bool handle_filter_update(const FilterUpdateMsg& m);

  std::unique_ptr<Link> link_;
  std::uint32_t host_index_;
  std::uint32_t host_count_;
  std::unique_ptr<State> state_;
  StatsSnapshot final_stats_;
  std::uint64_t quiescence_errors_ = 0;
  std::string error_;
};

}  // namespace topkmon::net
