// Wire format of the networked runtime (src/net).
//
// Every message between the coordinator (topk_coord) and a node-host
// (topk_node) travels as one length-prefixed, versioned frame:
//
//   [u32 length][u16 version][u16 type][payload...]
//
// `length` counts everything after the length field itself (version + type +
// payload), so a stream reader needs exactly one fixed-size read to learn how
// much to pull next. All integers are little-endian fixed-width; doubles are
// the IEEE-754 bit pattern as u64. Containers are u32-count-prefixed.
//
// Version policy: `kWireVersion` bumps on ANY layout change — the format is
// an internal protocol between binaries built from one tree, not a public
// interchange format, so there is no cross-version negotiation: a frame whose
// version differs from the reader's is rejected (WireError) and the peer is
// expected to be rebuilt. The version check runs before any payload decode,
// so mixed-build deployments fail fast instead of misparsing.
//
// Decoding is bounds-checked: truncated or trailing-garbage payloads throw
// WireError rather than reading out of range (fuzzed in tests/test_wire.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "faults/schedule.hpp"
#include "model/types.hpp"
#include "model/window.hpp"
#include "sim/stats_snapshot.hpp"
#include "streams/registry.hpp"

namespace topkmon::net {

inline constexpr std::uint16_t kWireVersion = 2;  ///< v2: RunSpec.threshold

/// Malformed frame: wrong version, unknown type, truncation, trailing bytes.
struct WireError : std::runtime_error {
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

enum class MsgType : std::uint16_t {
  kHello = 1,         ///< node -> coord: host identity
  kConfig = 2,        ///< coord -> node: full run spec + shard assignment
  kStepBegin = 3,     ///< coord -> node: advance to step t
  kShardValues = 4,   ///< node -> coord: the shard's effective observations
  kFilterUpdate = 5,  ///< coord -> node: filter deltas for the shard
  kStepAck = 6,       ///< node -> coord: filters applied, quiescence verdict
  kShutdown = 7,      ///< coord -> node: run over; carries the final stats
};

std::string to_string(MsgType t);

// ---------------------------------------------------------------- primitives

/// Append-only little-endian encoder; `frame()` seals the buffer into a
/// complete [len][version][type][payload] frame.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(const std::string& s);
  void values(const ValueVector& v);

  /// Seals the payload written so far into a full frame of type `t`.
  std::vector<std::uint8_t> frame(MsgType t) const;

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder over one payload span.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();
  ValueVector values();

  std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws WireError unless the payload was consumed exactly.
  void expect_end() const;

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// A parsed frame header: the type plus a view of the payload bytes. The view
/// aliases the frame buffer passed to parse_frame and is valid as long as it.
struct Frame {
  MsgType type;
  std::span<const std::uint8_t> payload;
};

/// Validates [len][version][type] and returns the typed payload view.
/// Throws WireError on short buffers, length mismatch or version mismatch.
Frame parse_frame(std::span<const std::uint8_t> frame);

// ---------------------------------------------------------------- messages

/// node -> coord, first frame on a fresh link: which host this is.
struct HelloMsg {
  std::uint32_t host_index = 0;
  std::uint32_t host_count = 0;

  friend bool operator==(const HelloMsg&, const HelloMsg&) = default;
};

/// Everything a node-host needs to reproduce its share of the run: the
/// workload (stream + protocol + monitoring parameters) and the fault model.
/// Node-hosts receive the full spec in ConfigMsg and need zero workload
/// flags of their own — the coordinator is the single configuration source.
struct RunSpec {
  StreamSpec stream;                  ///< workload (stream.k is the query k)
  std::string protocol = "combined";  ///< protocols/registry name
  double protocol_epsilon = 0.1;      ///< the protocol's ε (cfg.epsilon)
  std::uint64_t seed = 42;            ///< master seed (generator/protocol/loss)
  std::size_t window = kInfiniteWindow;  ///< sliding-window length W (0 = off)
  TimeStep steps = 1000;              ///< run length
  Value threshold = 0;  ///< bound T for threshold-alert protocols (else unused)
  FaultConfig faults;                 ///< fleet degradation script knobs

  friend bool operator==(const RunSpec&, const RunSpec&) = default;
};

/// Rejects specs the networked runtime cannot serve: adaptive generators
/// (lb_adversary, phase_torture — they read the protocol's output, which
/// node-hosts do not have) and degenerate parameters. Returns "" when OK.
std::string validate_run_spec(const RunSpec& spec);

/// coord -> node: the run spec plus this host's contiguous shard [lo, hi).
struct ConfigMsg {
  RunSpec spec;
  std::uint32_t shard_lo = 0;
  std::uint32_t shard_hi = 0;

  friend bool operator==(const ConfigMsg&, const ConfigMsg&) = default;
};

struct StepBeginMsg {
  TimeStep t = 0;

  friend bool operator==(const StepBeginMsg&, const StepBeginMsg&) = default;
};

/// node -> coord: the shard's effective (post-fault, pre-window) values for
/// step t, plus the node-side fault/violation observations of the shard.
struct ShardValuesMsg {
  TimeStep t = 0;
  std::uint32_t lo = 0;  ///< first node id of the shard
  ValueVector values;    ///< effective values of nodes [lo, lo+size)
  std::uint64_t stale = 0;       ///< shard observations served from the past
  std::uint64_t violations = 0;  ///< shard nodes violating their filter

  friend bool operator==(const ShardValuesMsg&, const ShardValuesMsg&) = default;
};

struct FilterEntry {
  NodeId node = 0;
  double lo = 0.0;
  double hi = 0.0;

  friend bool operator==(const FilterEntry&, const FilterEntry&) = default;
};

/// coord -> node: the filters the protocol (re)assigned this step, restricted
/// to the receiving shard. Sent every step, possibly empty, so the node-host
/// always knows when the step's control phase is over.
struct FilterUpdateMsg {
  TimeStep t = 0;
  std::vector<FilterEntry> filters;

  friend bool operator==(const FilterUpdateMsg&, const FilterUpdateMsg&) = default;
};

/// node -> coord: filters applied; `quiescence_errors` counts shard nodes
/// whose monitored (windowed) value still violates the freshly installed
/// filter — zero whenever the protocol upheld its per-step contract.
struct StepAckMsg {
  TimeStep t = 0;
  std::uint64_t quiescence_errors = 0;

  friend bool operator==(const StepAckMsg&, const StepAckMsg&) = default;
};

/// coord -> node: the run is over. Carries the coordinator's final aggregate
/// statistics so node binaries can report without a second channel.
struct ShutdownMsg {
  StatsSnapshot stats;

  friend bool operator==(const ShutdownMsg&, const ShutdownMsg&) = default;
};

// Frame encoders: one complete wire frame per message.
std::vector<std::uint8_t> encode(const HelloMsg& m);
std::vector<std::uint8_t> encode(const ConfigMsg& m);
std::vector<std::uint8_t> encode(const StepBeginMsg& m);
std::vector<std::uint8_t> encode(const ShardValuesMsg& m);
std::vector<std::uint8_t> encode(const FilterUpdateMsg& m);
std::vector<std::uint8_t> encode(const StepAckMsg& m);
std::vector<std::uint8_t> encode(const ShutdownMsg& m);

// Payload decoders: call with the Frame returned by parse_frame (the type is
// re-checked; every decoder throws WireError on mismatch or malformation).
HelloMsg decode_hello(const Frame& f);
ConfigMsg decode_config(const Frame& f);
StepBeginMsg decode_step_begin(const Frame& f);
ShardValuesMsg decode_shard_values(const Frame& f);
FilterUpdateMsg decode_filter_update(const Frame& f);
StepAckMsg decode_step_ack(const Frame& f);
ShutdownMsg decode_shutdown(const Frame& f);

// StatsSnapshot (sim/stats_snapshot.hpp) payload codec — shared by
// ShutdownMsg and any future stats-bearing message. Serializes the full
// block: totals, kinds, per-tag counters, rounds, fault metrics, window
// metric and transport counters.
void write_stats(WireWriter& w, const StatsSnapshot& s);
StatsSnapshot read_stats(WireReader& r);

}  // namespace topkmon::net
