#include "net/node_host.hpp"

#include <vector>

#include "faults/injector.hpp"
#include "model/fleet_state.hpp"
#include "model/filter.hpp"
#include "model/window.hpp"
#include "sim/stream.hpp"
#include "streams/registry.hpp"

namespace topkmon::net {

/// The deterministic full-fleet workload machinery one host rebuilds from
/// the Config message. Seeds mirror the standalone Simulator exactly
/// (generator stream 0x5EED of the master seed), so the values a host
/// reports are bit-identical to what an in-process run would produce.
struct NodeHost::State {
  RunSpec spec;
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;

  std::unique_ptr<StreamGenerator> gen;
  Rng gen_rng{0};
  FleetState fleet;
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<WindowedValueModel> window;  ///< quiescence-check mirror
  std::vector<Filter> filters;                 ///< shard entries only
  OutputSet empty_output;  ///< the AdversaryView target (non-adaptive kinds)
  TimeStep expected_t = 0;
  const ValueVector* monitored = nullptr;  ///< this step's windowed view

  State(const ConfigMsg& cfg)
      : spec(cfg.spec),
        lo(cfg.shard_lo),
        hi(cfg.shard_hi),
        gen(make_stream(cfg.spec.stream)),
        gen_rng(Rng::derive(cfg.spec.seed, /*stream_id=*/0x5EED)),
        fleet(cfg.spec.stream.n),
        filters(cfg.spec.stream.n) {
    const FleetSchedulePtr schedule =
        make_fleet_schedule(spec.faults, spec.stream.n);
    if (schedule) injector = std::make_unique<FaultInjector>(schedule);
    if (spec.window != kInfiniteWindow) {
      window = std::make_unique<WindowedValueModel>(spec.stream.n, spec.window);
    }
  }
};

NodeHost::NodeHost(std::unique_ptr<Link> link, std::uint32_t host_index,
                   std::uint32_t host_count)
    : link_(std::move(link)), host_index_(host_index), host_count_(host_count) {}

NodeHost::~NodeHost() = default;

int NodeHost::fail(const std::string& why) {
  error_ = why;
  link_->close();
  return 1;
}

int NodeHost::run() {
  if (!link_->send(encode(HelloMsg{host_index_, host_count_}))) {
    return fail("coordinator unreachable (hello)");
  }
  std::vector<std::uint8_t> buf;
  if (!link_->recv(buf)) return fail("coordinator closed before config");
  try {
    const Frame f = parse_frame(buf);
    const ConfigMsg cfg = decode_config(f);
    const std::string bad = validate_run_spec(cfg.spec);
    if (!bad.empty()) return fail("invalid run spec: " + bad);
    if (cfg.shard_lo >= cfg.shard_hi || cfg.shard_hi > cfg.spec.stream.n) {
      return fail("invalid shard assignment [" + std::to_string(cfg.shard_lo) +
                  ", " + std::to_string(cfg.shard_hi) + ")");
    }
    state_ = std::make_unique<State>(cfg);
  } catch (const std::exception& e) {
    return fail(std::string("config rejected: ") + e.what());
  }

  for (;;) {
    if (!link_->recv(buf)) return fail("coordinator vanished mid-run");
    try {
      const Frame f = parse_frame(buf);
      switch (f.type) {
        case MsgType::kStepBegin: {
          const StepBeginMsg m = decode_step_begin(f);
          if (!handle_step_begin(m.t)) return 1;
          break;
        }
        case MsgType::kFilterUpdate: {
          if (!handle_filter_update(decode_filter_update(f))) return 1;
          break;
        }
        case MsgType::kShutdown: {
          final_stats_ = decode_shutdown(f).stats;
          link_->close();
          return 0;
        }
        default:
          return fail("unexpected frame: " + to_string(f.type));
      }
    } catch (const std::exception& e) {
      return fail(std::string("frame error: ") + e.what());
    }
  }
}

bool NodeHost::handle_step_begin(TimeStep t) {
  State& s = *state_;
  if (t != s.expected_t) {
    fail("step out of order: got t=" + std::to_string(t) + ", expected " +
         std::to_string(s.expected_t));
    return false;
  }
  // Deterministic full-fleet generation — same RNG stream as the standalone
  // Simulator. The AdversaryView is empty: adaptive kinds are rejected at
  // spec validation, and every other generator ignores the view.
  ValueVector& staging = s.fleet.staging();
  if (t == 0) {
    s.gen->init(staging, s.gen_rng);
  } else {
    const AdversaryView view{{}, &s.empty_output, s.spec.stream.k,
                             s.spec.stream.epsilon};
    s.gen->step(t, view, staging, s.gen_rng);
  }
  const ValueVector* eff = &staging;
  std::uint64_t stale = 0;
  if (s.injector) {
    eff = &s.injector->transform(t, staging, s.fleet);
    const auto flags = s.fleet.fault_flags();
    for (std::uint32_t i = s.lo; i < s.hi; ++i) {
      stale += (flags[i] & kFaultStale) ? 1 : 0;
    }
  }
  // The monitored view — what the coordinator's protocol sees and assigns
  // filters against — is the windowed effective vector.
  s.monitored = s.window ? &s.window->push(t, *eff) : eff;

  ShardValuesMsg msg;
  msg.t = t;
  msg.lo = s.lo;
  msg.values.assign(eff->begin() + s.lo, eff->begin() + s.hi);
  msg.stale = stale;
  for (std::uint32_t i = s.lo; i < s.hi; ++i) {
    msg.violations += s.filters[i].check((*s.monitored)[i]) != Violation::kNone;
  }
  if (!link_->send(encode(msg))) {
    fail("coordinator unreachable (shard values)");
    return false;
  }
  return true;
}

bool NodeHost::handle_filter_update(const FilterUpdateMsg& m) {
  State& s = *state_;
  if (m.t != s.expected_t || s.monitored == nullptr) {
    fail("filter update out of order at t=" + std::to_string(m.t));
    return false;
  }
  for (const FilterEntry& e : m.filters) {
    if (e.node < s.lo || e.node >= s.hi) {
      fail("filter for node " + std::to_string(e.node) + " outside shard");
      return false;
    }
    s.filters[e.node] = Filter{e.lo, e.hi};
  }
  // Quiescence: after the step's control phase every shard node's monitored
  // value must sit inside its filter (the protocols' per-step contract).
  StepAckMsg ack;
  ack.t = m.t;
  for (std::uint32_t i = s.lo; i < s.hi; ++i) {
    ack.quiescence_errors +=
        s.filters[i].check((*s.monitored)[i]) != Violation::kNone;
  }
  quiescence_errors_ += ack.quiescence_errors;
  s.monitored = nullptr;
  ++s.expected_t;
  if (!link_->send(encode(ack))) {
    fail("coordinator unreachable (step ack)");
    return false;
  }
  return true;
}

}  // namespace topkmon::net
