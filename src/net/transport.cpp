#include "net/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

namespace topkmon::net {

// ---------------------------------------------------------------- loopback

namespace {

/// One direction of a loopback channel: a closable blocking frame queue.
class FrameQueue {
 public:
  bool push(const std::vector<std::uint8_t>& frame) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      frames_.push_back(frame);
    }
    cv_.notify_one();
    return true;
  }

  bool pop(std::vector<std::uint8_t>& frame) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !frames_.empty(); });
    if (frames_.empty()) return false;  // closed and drained
    frame = std::move(frames_.front());
    frames_.pop_front();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::vector<std::uint8_t>> frames_;
  bool closed_ = false;
};

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<FrameQueue> out, std::shared_ptr<FrameQueue> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  ~LoopbackTransport() override { close(); }

  bool send(const std::vector<std::uint8_t>& frame) override {
    return out_->push(frame);
  }

  bool recv(std::vector<std::uint8_t>& frame) override { return in_->pop(frame); }

  void close() override {
    // Closing one end unblocks both directions: the peer's recv drains then
    // reports shutdown, and its sends start failing.
    out_->close();
    in_->close();
  }

 private:
  std::shared_ptr<FrameQueue> out_;
  std::shared_ptr<FrameQueue> in_;
};

}  // namespace

TransportPair make_loopback_pair() {
  auto a_to_b = std::make_shared<FrameQueue>();
  auto b_to_a = std::make_shared<FrameQueue>();
  TransportPair pair;
  pair.a = std::make_unique<LoopbackTransport>(a_to_b, b_to_a);
  pair.b = std::make_unique<LoopbackTransport>(b_to_a, a_to_b);
  return pair;
}

// ---------------------------------------------------------------- tcp

namespace {

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // 0 = orderly close
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpTransport() override { close(); }

  bool send(const std::vector<std::uint8_t>& frame) override {
    if (fd_ < 0 || frame.empty()) return false;
    return write_all(fd_, frame.data(), frame.size());
  }

  bool recv(std::vector<std::uint8_t>& frame) override {
    if (fd_ < 0) return false;
    // The frame's own length prefix delimits it on the stream: 4 bytes of
    // length, then length more. The returned buffer is the complete frame
    // (prefix included) so parse_frame treats both backends identically.
    std::uint8_t head[4];
    if (!read_all(fd_, head, 4)) return false;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(head[i]) << (8 * i);
    // A frame claiming >64 MiB is corruption, not a real message.
    if (len < 4 || len > (64u << 20)) return false;
    frame.resize(std::size_t{4} + len);
    std::memcpy(frame.data(), head, 4);
    return read_all(fd_, frame.data() + 4, len);
  }

  void close() override {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
};

}  // namespace

TcpListener::~TcpListener() { close(); }

bool TcpListener::listen(std::uint16_t port, const std::string& bind_addr) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    close();
    return false;
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 64) != 0) {
    close();
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    close();
    return false;
  }
  port_ = ntohs(bound.sin_port);
  return true;
}

std::unique_ptr<Transport> TcpListener::accept() {
  if (fd_ < 0) return nullptr;
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return std::make_unique<TcpTransport>(fd);
    if (errno != EINTR) return nullptr;
  }
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::unique_ptr<Transport> tcp_connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return nullptr;
  }
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return std::make_unique<TcpTransport>(fd);
    }
    if (errno != EINTR) {
      ::close(fd);
      return nullptr;
    }
  }
}

}  // namespace topkmon::net
