#include "net/wire.hpp"

#include <bit>
#include <cstring>

namespace topkmon::net {

namespace {

/// Containers on the wire are u32-count-prefixed; cap the count so a corrupt
/// or hostile frame cannot ask the decoder to reserve gigabytes.
constexpr std::uint32_t kMaxWireElements = 1u << 24;

constexpr std::size_t kHeaderBytes = 4 + 2 + 2;  // len + version + type

bool known_type(std::uint16_t t) {
  return t >= static_cast<std::uint16_t>(MsgType::kHello) &&
         t <= static_cast<std::uint16_t>(MsgType::kShutdown);
}

void check_type(const Frame& f, MsgType want) {
  if (f.type != want) {
    throw WireError("frame type mismatch: got " + to_string(f.type) +
                    ", want " + to_string(want));
  }
}

}  // namespace

std::string to_string(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kConfig: return "config";
    case MsgType::kStepBegin: return "step_begin";
    case MsgType::kShardValues: return "shard_values";
    case MsgType::kFilterUpdate: return "filter_update";
    case MsgType::kStepAck: return "step_ack";
    case MsgType::kShutdown: return "shutdown";
  }
  return "msg_type(" + std::to_string(static_cast<std::uint16_t>(t)) + ")";
}

// ---------------------------------------------------------------- writer

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireWriter::values(const ValueVector& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (const Value x : v) u64(x);
}

std::vector<std::uint8_t> WireWriter::frame(MsgType t) const {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + buf_.size());
  const std::uint32_t len = static_cast<std::uint32_t>(2 + 2 + buf_.size());
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  out.push_back(static_cast<std::uint8_t>(kWireVersion));
  out.push_back(static_cast<std::uint8_t>(kWireVersion >> 8));
  const std::uint16_t type = static_cast<std::uint16_t>(t);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(static_cast<std::uint8_t>(type >> 8));
  out.insert(out.end(), buf_.begin(), buf_.end());
  return out;
}

// ---------------------------------------------------------------- reader

void WireReader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) {
    throw WireError("truncated payload: need " + std::to_string(n) + " bytes, have " +
                    std::to_string(data_.size() - pos_));
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t WireReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double WireReader::f64() { return std::bit_cast<double>(u64()); }

std::string WireReader::str() {
  const std::uint32_t len = u32();
  if (len > kMaxWireElements) throw WireError("string length out of range");
  need(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

ValueVector WireReader::values() {
  const std::uint32_t count = u32();
  if (count > kMaxWireElements) throw WireError("value count out of range");
  need(std::size_t{count} * 8);
  ValueVector v(count);
  for (std::uint32_t i = 0; i < count; ++i) v[i] = u64();
  return v;
}

void WireReader::expect_end() const {
  if (pos_ != data_.size()) {
    throw WireError("trailing bytes in payload: " + std::to_string(data_.size() - pos_));
  }
}

// ---------------------------------------------------------------- frame

Frame parse_frame(std::span<const std::uint8_t> frame) {
  if (frame.size() < kHeaderBytes) {
    throw WireError("short frame: " + std::to_string(frame.size()) + " bytes");
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(frame[i]) << (8 * i);
  if (std::size_t{len} + 4 != frame.size()) {
    throw WireError("frame length mismatch: header says " + std::to_string(len) +
                    ", buffer has " + std::to_string(frame.size() - 4));
  }
  const std::uint16_t version = static_cast<std::uint16_t>(frame[4]) |
                                static_cast<std::uint16_t>(frame[5]) << 8;
  if (version != kWireVersion) {
    throw WireError("wire version mismatch: got " + std::to_string(version) +
                    ", want " + std::to_string(kWireVersion) +
                    " (rebuild the older binary)");
  }
  const std::uint16_t type = static_cast<std::uint16_t>(frame[6]) |
                             static_cast<std::uint16_t>(frame[7]) << 8;
  if (!known_type(type)) {
    throw WireError("unknown frame type " + std::to_string(type));
  }
  return Frame{static_cast<MsgType>(type), frame.subspan(kHeaderBytes)};
}

// ---------------------------------------------------------------- run spec

std::string validate_run_spec(const RunSpec& spec) {
  if (spec.stream.n == 0) return "spec.stream.n must be at least 1";
  if (spec.stream.k == 0 || spec.stream.k >= spec.stream.n) {
    return "k must satisfy 1 <= k < n (got k=" + std::to_string(spec.stream.k) +
           ", n=" + std::to_string(spec.stream.n) + ")";
  }
  if (spec.steps <= 0) return "steps must be positive";
  // Adaptive adversaries read the protocol's live output through the
  // AdversaryView; node-hosts run the generator without protocol state, so
  // these kinds cannot be distributed.
  if (spec.stream.kind == "lb_adversary" || spec.stream.kind == "phase_torture") {
    return "adaptive stream '" + spec.stream.kind +
           "' is not available in the networked runtime (the generator needs "
           "the protocol's live output; run topk_sim instead)";
  }
  return "";
}

namespace {

void write_stream_spec(WireWriter& w, const StreamSpec& s) {
  w.str(s.kind);
  w.u64(s.n);
  w.u64(s.k);
  w.f64(s.epsilon);
  w.u64(s.delta);
  w.u64(s.sigma);
  w.u64(s.walk_step);
  w.f64(s.churn);
  w.f64(s.drift);
  w.str(s.trace_path);
}

StreamSpec read_stream_spec(WireReader& r) {
  StreamSpec s;
  s.kind = r.str();
  s.n = r.u64();
  s.k = r.u64();
  s.epsilon = r.f64();
  s.delta = r.u64();
  s.sigma = r.u64();
  s.walk_step = r.u64();
  s.churn = r.f64();
  s.drift = r.f64();
  s.trace_path = r.str();
  return s;
}

void write_fault_config(WireWriter& w, const FaultConfig& f) {
  w.f64(f.churn_rate);
  w.f64(f.straggler_fraction);
  w.u64(f.max_delay);
  w.f64(f.loss);
  w.i64(f.horizon);
  w.u64(f.seed);
}

FaultConfig read_fault_config(WireReader& r) {
  FaultConfig f;
  f.churn_rate = r.f64();
  f.straggler_fraction = r.f64();
  f.max_delay = r.u64();
  f.loss = r.f64();
  f.horizon = r.i64();
  f.seed = r.u64();
  return f;
}

void write_run_spec(WireWriter& w, const RunSpec& spec) {
  write_stream_spec(w, spec.stream);
  w.str(spec.protocol);
  w.f64(spec.protocol_epsilon);
  w.u64(spec.seed);
  w.u64(spec.window);
  w.i64(spec.steps);
  w.u64(spec.threshold);
  write_fault_config(w, spec.faults);
}

RunSpec read_run_spec(WireReader& r) {
  RunSpec spec;
  spec.stream = read_stream_spec(r);
  spec.protocol = r.str();
  spec.protocol_epsilon = r.f64();
  spec.seed = r.u64();
  spec.window = r.u64();
  spec.steps = r.i64();
  spec.threshold = r.u64();
  spec.faults = read_fault_config(r);
  return spec;
}

}  // namespace

// ---------------------------------------------------------------- stats

void write_stats(WireWriter& w, const StatsSnapshot& s) {
  w.u64(s.messages);
  w.u64(s.node_to_server);
  w.u64(s.server_to_node);
  w.u64(s.broadcasts);
  w.u32(static_cast<std::uint32_t>(s.by_tag.size()));
  for (const std::uint64_t v : s.by_tag) w.u64(v);
  w.u64(s.rounds);
  w.u64(s.messages_lost);
  w.u64(s.stale_reads);
  w.u64(s.recovery_rounds);
  w.u64(s.window_expirations);
  w.u64(s.net.frames_sent);
  w.u64(s.net.frames_recv);
  w.u64(s.net.bytes_sent);
  w.u64(s.net.bytes_recv);
  w.u64(s.net.send_retries);
  w.u64(s.net.reconnects);
}

StatsSnapshot read_stats(WireReader& r) {
  StatsSnapshot s;
  s.messages = r.u64();
  s.node_to_server = r.u64();
  s.server_to_node = r.u64();
  s.broadcasts = r.u64();
  const std::uint32_t tags = r.u32();
  if (tags != kNumMessageTags) {
    throw WireError("stats tag-count mismatch: got " + std::to_string(tags) +
                    ", want " + std::to_string(kNumMessageTags));
  }
  for (std::size_t t = 0; t < kNumMessageTags; ++t) s.by_tag[t] = r.u64();
  s.rounds = r.u64();
  s.messages_lost = r.u64();
  s.stale_reads = r.u64();
  s.recovery_rounds = r.u64();
  s.window_expirations = r.u64();
  s.net.frames_sent = r.u64();
  s.net.frames_recv = r.u64();
  s.net.bytes_sent = r.u64();
  s.net.bytes_recv = r.u64();
  s.net.send_retries = r.u64();
  s.net.reconnects = r.u64();
  return s;
}

// ---------------------------------------------------------------- encoders

std::vector<std::uint8_t> encode(const HelloMsg& m) {
  WireWriter w;
  w.u32(m.host_index);
  w.u32(m.host_count);
  return w.frame(MsgType::kHello);
}

std::vector<std::uint8_t> encode(const ConfigMsg& m) {
  WireWriter w;
  write_run_spec(w, m.spec);
  w.u32(m.shard_lo);
  w.u32(m.shard_hi);
  return w.frame(MsgType::kConfig);
}

std::vector<std::uint8_t> encode(const StepBeginMsg& m) {
  WireWriter w;
  w.i64(m.t);
  return w.frame(MsgType::kStepBegin);
}

std::vector<std::uint8_t> encode(const ShardValuesMsg& m) {
  WireWriter w;
  w.i64(m.t);
  w.u32(m.lo);
  w.values(m.values);
  w.u64(m.stale);
  w.u64(m.violations);
  return w.frame(MsgType::kShardValues);
}

std::vector<std::uint8_t> encode(const FilterUpdateMsg& m) {
  WireWriter w;
  w.i64(m.t);
  w.u32(static_cast<std::uint32_t>(m.filters.size()));
  for (const FilterEntry& f : m.filters) {
    w.u32(f.node);
    w.f64(f.lo);
    w.f64(f.hi);
  }
  return w.frame(MsgType::kFilterUpdate);
}

std::vector<std::uint8_t> encode(const StepAckMsg& m) {
  WireWriter w;
  w.i64(m.t);
  w.u64(m.quiescence_errors);
  return w.frame(MsgType::kStepAck);
}

std::vector<std::uint8_t> encode(const ShutdownMsg& m) {
  WireWriter w;
  write_stats(w, m.stats);
  return w.frame(MsgType::kShutdown);
}

// ---------------------------------------------------------------- decoders

HelloMsg decode_hello(const Frame& f) {
  check_type(f, MsgType::kHello);
  WireReader r(f.payload);
  HelloMsg m;
  m.host_index = r.u32();
  m.host_count = r.u32();
  r.expect_end();
  return m;
}

ConfigMsg decode_config(const Frame& f) {
  check_type(f, MsgType::kConfig);
  WireReader r(f.payload);
  ConfigMsg m;
  m.spec = read_run_spec(r);
  m.shard_lo = r.u32();
  m.shard_hi = r.u32();
  r.expect_end();
  return m;
}

StepBeginMsg decode_step_begin(const Frame& f) {
  check_type(f, MsgType::kStepBegin);
  WireReader r(f.payload);
  StepBeginMsg m;
  m.t = r.i64();
  r.expect_end();
  return m;
}

ShardValuesMsg decode_shard_values(const Frame& f) {
  check_type(f, MsgType::kShardValues);
  WireReader r(f.payload);
  ShardValuesMsg m;
  m.t = r.i64();
  m.lo = r.u32();
  m.values = r.values();
  m.stale = r.u64();
  m.violations = r.u64();
  r.expect_end();
  return m;
}

FilterUpdateMsg decode_filter_update(const Frame& f) {
  check_type(f, MsgType::kFilterUpdate);
  WireReader r(f.payload);
  FilterUpdateMsg m;
  m.t = r.i64();
  const std::uint32_t count = r.u32();
  if (count > kMaxWireElements) throw WireError("filter count out of range");
  m.filters.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    m.filters[i].node = r.u32();
    m.filters[i].lo = r.f64();
    m.filters[i].hi = r.f64();
  }
  r.expect_end();
  return m;
}

StepAckMsg decode_step_ack(const Frame& f) {
  check_type(f, MsgType::kStepAck);
  WireReader r(f.payload);
  StepAckMsg m;
  m.t = r.i64();
  m.quiescence_errors = r.u64();
  r.expect_end();
  return m;
}

ShutdownMsg decode_shutdown(const Frame& f) {
  check_type(f, MsgType::kShutdown);
  WireReader r(f.payload);
  ShutdownMsg m;
  m.stats = read_stats(r);
  r.expect_end();
  return m;
}

}  // namespace topkmon::net
