#include "net/coordinator.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "net/node_host.hpp"
#include "protocols/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace topkmon::net {

std::uint32_t shard_lo(std::size_t n, std::uint32_t hosts, std::uint32_t host) {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(n) * host / hosts);
}

NetCoordinator::NetCoordinator(RunSpec spec, std::vector<std::unique_ptr<Link>> links)
    : spec_(std::move(spec)), links_(std::move(links)) {
  const std::string bad = validate_run_spec(spec_);
  if (!bad.empty()) throw std::runtime_error("invalid run spec: " + bad);
  if (links_.empty()) throw std::runtime_error("coordinator needs at least one link");
  if (links_.size() > spec_.stream.n) {
    throw std::runtime_error("more node-hosts (" + std::to_string(links_.size()) +
                             ") than nodes (" + std::to_string(spec_.stream.n) +
                             "): shards would be empty");
  }

  SimConfig cfg;
  cfg.k = spec_.stream.k;
  cfg.epsilon = spec_.protocol_epsilon;
  cfg.seed = spec_.seed;
  cfg.window = spec_.window;
  cfg.threshold = spec_.threshold;
  sim_ = std::make_unique<Simulator>(cfg, spec_.stream.n,
                                     make_protocol(spec_.protocol));
  // Fault *channel*, not injector: loss accounting + scripted membership
  // recovery run here; value degradation runs on the node-hosts.
  if (FleetSchedulePtr schedule = make_fleet_schedule(spec_.faults, spec_.stream.n)) {
    sim_->attach_fault_channel(std::move(schedule));
  }
  sim_->context().enable_filter_tracking();
  assembled_.assign(spec_.stream.n, 0);
}

NetCoordinator::~NetCoordinator() {
  for (auto& link : links_) link->close();
}

void NetCoordinator::attach_telemetry(telemetry::TelemetrySink* sink) {
  sim_->attach_telemetry(sink);
  telemetry_ = sink;
  stats_ids_ = register_stats_metrics(sink->registry());
}

void NetCoordinator::handshake() {
  link_of_host_.assign(links_.size(), nullptr);
  const std::uint32_t hosts = static_cast<std::uint32_t>(links_.size());
  for (auto& link : links_) {
    std::vector<std::uint8_t> buf;
    if (!link->recv(buf)) throw std::runtime_error("node-host left before hello");
    const HelloMsg hello = decode_hello(parse_frame(buf));
    if (hello.host_index >= hosts) {
      throw std::runtime_error("hello from host " + std::to_string(hello.host_index) +
                               " of " + std::to_string(hosts));
    }
    if (hello.host_count != hosts) {
      throw std::runtime_error("host " + std::to_string(hello.host_index) +
                               " expects " + std::to_string(hello.host_count) +
                               " hosts, coordinator has " + std::to_string(hosts));
    }
    if (link_of_host_[hello.host_index] != nullptr) {
      throw std::runtime_error("duplicate hello for host " +
                               std::to_string(hello.host_index));
    }
    link_of_host_[hello.host_index] = link.get();
  }
  for (std::uint32_t h = 0; h < hosts; ++h) {
    ConfigMsg cfg;
    cfg.spec = spec_;
    cfg.shard_lo = shard_lo(spec_.stream.n, hosts, h);
    cfg.shard_hi = shard_lo(spec_.stream.n, hosts, h + 1);
    if (!link_of_host_[h]->send(encode(cfg))) {
      throw std::runtime_error("host " + std::to_string(h) + " unreachable (config)");
    }
  }
}

void NetCoordinator::step(TimeStep t) {
  const std::uint32_t hosts = static_cast<std::uint32_t>(links_.size());
  const std::vector<std::uint8_t> begin = encode(StepBeginMsg{t});
  for (std::uint32_t h = 0; h < hosts; ++h) {
    if (!link_of_host_[h]->send(begin)) {
      throw std::runtime_error("host " + std::to_string(h) + " unreachable at t=" +
                               std::to_string(t));
    }
  }

  std::uint64_t stale = 0;
  std::vector<std::uint8_t> buf;
  for (std::uint32_t h = 0; h < hosts; ++h) {
    if (!link_of_host_[h]->recv(buf)) {
      throw std::runtime_error("host " + std::to_string(h) + " vanished at t=" +
                               std::to_string(t));
    }
    const ShardValuesMsg m = decode_shard_values(parse_frame(buf));
    const std::uint32_t lo = shard_lo(spec_.stream.n, hosts, h);
    const std::uint32_t hi = shard_lo(spec_.stream.n, hosts, h + 1);
    if (m.t != t || m.lo != lo || m.values.size() != hi - lo) {
      throw std::runtime_error("bad shard report from host " + std::to_string(h) +
                               " at t=" + std::to_string(t));
    }
    std::copy(m.values.begin(), m.values.end(), assembled_.begin() + lo);
    stale += m.stale;
  }

  // A link that came back from an outage during this step's exchange drives
  // the protocol's membership-recovery hook — reconnections cost a recovery
  // round exactly like scripted churn.
  for (auto& link : links_) {
    if (link->take_reconnected()) sim_->force_recovery_next_step();
  }
  // The node-hosts' stale observations feed the same counter the standalone
  // injector does, keeping RunResult::stale_reads bit-identical.
  sim_->context().stats().add_stale_reads(stale);
  sim_->step_with(assembled_);

  // Ship the step's filter deltas, shard by shard. Always send — an empty
  // update is the node-host's signal that the control phase is over.
  const std::vector<NodeId>& dirty = sim_->context().dirty_filters();
  const std::span<const Node> nodes = sim_->context().nodes();
  for (std::uint32_t h = 0; h < hosts; ++h) {
    const std::uint32_t lo = shard_lo(spec_.stream.n, hosts, h);
    const std::uint32_t hi = shard_lo(spec_.stream.n, hosts, h + 1);
    FilterUpdateMsg update;
    update.t = t;
    for (const NodeId id : dirty) {
      if (id >= lo && id < hi) {
        const Filter& f = nodes[id].filter();
        update.filters.push_back(FilterEntry{id, f.lo, f.hi});
      }
    }
    if (!link_of_host_[h]->send(encode(update))) {
      throw std::runtime_error("host " + std::to_string(h) +
                               " unreachable (filter update)");
    }
  }
  for (std::uint32_t h = 0; h < hosts; ++h) {
    if (!link_of_host_[h]->recv(buf)) {
      throw std::runtime_error("host " + std::to_string(h) + " vanished (step ack)");
    }
    const StepAckMsg ack = decode_step_ack(parse_frame(buf));
    if (ack.t != t) {
      throw std::runtime_error("stale step ack from host " + std::to_string(h));
    }
    quiescence_errors_ += ack.quiescence_errors;
  }
  if (telemetry_ != nullptr) publish_net_telemetry();
}

RunResult NetCoordinator::run() {
  try {
    handshake();
    for (TimeStep t = 0; t < spec_.steps; ++t) {
      step(t);
    }
  } catch (...) {
    for (auto& link : links_) link->close();
    throw;
  }
  RunResult result = sim_->result();
  result.net = net_total();
  // The final telemetry publish happens BEFORE the shutdown frames go out:
  // those frames sit outside the counters they deliver (by construction), so
  // the exported net.* matches the returned RunResult exactly.
  if (telemetry_ != nullptr) publish_net_telemetry();
  const ShutdownMsg bye{static_cast<const StatsSnapshot&>(result)};
  const std::vector<std::uint8_t> frame = encode(bye);
  for (auto& link : links_) {
    link->send(frame);
    link->close();
  }
  return result;
}

const OutputSet& NetCoordinator::output() const { return sim_->protocol().output(); }

const NetChannelStats& NetCoordinator::link_stats(std::uint32_t host) const {
  return link_of_host_.at(host)->stats();
}

NetChannelStats NetCoordinator::net_total() const {
  NetChannelStats total;
  for (const auto& link : links_) total += link->stats();
  return total;
}

void NetCoordinator::publish_net_telemetry() {
  telemetry::MetricsRegistry& reg = telemetry_->registry();
  const NetChannelStats net = net_total();
  reg.set(stats_ids_.net_frames_sent, net.frames_sent);
  reg.set(stats_ids_.net_frames_recv, net.frames_recv);
  reg.set(stats_ids_.net_bytes_sent, net.bytes_sent);
  reg.set(stats_ids_.net_bytes_recv, net.bytes_recv);
  reg.set(stats_ids_.net_send_retries, net.send_retries);
  reg.set(stats_ids_.net_reconnects, net.reconnects);
}

// ---------------------------------------------------------------- inproc

InprocNetReport run_networked_inproc(const RunSpec& spec,
                                     const InprocNetOptions& opts) {
  const std::uint32_t hosts = opts.hosts;
  if (hosts == 0) throw std::runtime_error("run_networked_inproc: hosts must be >= 1");
  const double loss = opts.link_loss >= 0.0 ? opts.link_loss : spec.faults.loss;

  std::vector<std::unique_ptr<Link>> coord_links;
  std::vector<std::unique_ptr<Link>> node_links;
  coord_links.reserve(hosts);
  node_links.reserve(hosts);
  for (std::uint32_t h = 0; h < hosts; ++h) {
    TransportPair pair = make_loopback_pair();
    auto coord_link = std::make_unique<Link>(std::move(pair.a));
    auto node_link = std::make_unique<Link>(std::move(pair.b));
    if (loss > 0.0) {
      // One frame-loss stream per link and direction, derived from the fault
      // seed — independent of the model's message-loss stream (0x1055).
      coord_link->set_loss(loss, Rng::derive(spec.faults.seed, 0xC0020000u + h));
      node_link->set_loss(loss, Rng::derive(spec.faults.seed, 0x10DE0000u + h));
    }
    for (const InprocNetOptions::ScriptedOutage& o : opts.outages) {
      if (o.host == h) {
        (o.coordinator_side ? coord_link : node_link)->add_outage(o.outage);
      }
    }
    coord_links.push_back(std::move(coord_link));
    node_links.push_back(std::move(node_link));
  }

  NetCoordinator coordinator(spec, std::move(coord_links));
  if (opts.sink != nullptr) coordinator.attach_telemetry(opts.sink);

  std::vector<std::unique_ptr<NodeHost>> node_hosts;
  node_hosts.reserve(hosts);
  for (std::uint32_t h = 0; h < hosts; ++h) {
    node_hosts.push_back(
        std::make_unique<NodeHost>(std::move(node_links[h]), h, hosts));
  }
  std::vector<int> exits(hosts, -1);
  std::vector<std::thread> threads;
  threads.reserve(hosts);
  for (std::uint32_t h = 0; h < hosts; ++h) {
    threads.emplace_back([&exits, &node_hosts, h] { exits[h] = node_hosts[h]->run(); });
  }

  InprocNetReport report;
  try {
    report.run = coordinator.run();
  } catch (...) {
    // run() closed the links; the hosts' recv loops exit on their own.
    for (std::thread& th : threads) th.join();
    throw;
  }
  for (std::thread& th : threads) th.join();
  report.output = coordinator.output();
  report.quiescence_errors = coordinator.quiescence_errors();
  report.host_exit = std::move(exits);
  const MonitoringProtocol& protocol = coordinator.sim().protocol();
  if (const QueryCapabilities* q = capability_for(protocol, QueryKind::kKSelect)) {
    const std::size_t jmax = std::min<std::size_t>(q->kselect_max_rank(),
                                                   coordinator.sim().config().k);
    for (std::size_t j = 1; j <= jmax; ++j) {
      report.kselect_estimates.push_back(q->kselect(j));
    }
  }
  if (const QueryCapabilities* q =
          capability_for(protocol, QueryKind::kCountDistinct)) {
    report.distinct_count = q->distinct_count();
  }
  if (const QueryCapabilities* q = capability_for(protocol, QueryKind::kThreshold)) {
    report.threshold_above = q->above_count();
  }
  return report;
}

}  // namespace topkmon::net
