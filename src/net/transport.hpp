// Transport — frame-oriented, blocking, reliable byte transports.
//
// The networked runtime moves whole wire frames (net/wire.hpp) between the
// coordinator and its node-hosts. Transport is the seam between the protocol
// logic and the actual byte movement, with two backends:
//
//   * loopback — a pair of in-process queues (mutex + condvar). Used by the
//     in-process runtime harness and the tests: same code paths as the
//     socket backend, zero sockets, deterministic, TSan-clean.
//   * tcp      — real POSIX stream sockets over 127.0.0.1 or the network.
//     Frames are delimited by their own length prefix: the receiver reads
//     the 4-byte length, then the rest, and hands back one complete frame.
//
// Both backends are blocking and reliable (loss/outage emulation lives one
// layer up, in net/link.hpp, where it can be deterministic). send()/recv()
// return false when the peer is gone — shutdown, not an exception, because
// peer departure is an expected event on every run's last frame.
//
// Thread contract: one sender and one receiver may use a transport
// concurrently (the coordinator sends StepBegin while a node's reply is in
// flight), but each direction is single-threaded.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace topkmon::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Delivers one complete frame. False = peer closed / connection dead.
  virtual bool send(const std::vector<std::uint8_t>& frame) = 0;

  /// Blocks for the next complete frame. False = peer closed (orderly end).
  virtual bool recv(std::vector<std::uint8_t>& frame) = 0;

  /// Unblocks both directions; subsequent send/recv fail.
  virtual void close() = 0;
};

/// The two ends of an in-process bidirectional channel: whatever one end
/// sends, the other receives, in order. Destroying either end closes both.
struct TransportPair {
  std::unique_ptr<Transport> a;
  std::unique_ptr<Transport> b;
};

TransportPair make_loopback_pair();

/// Listening TCP socket (IPv4). Port 0 binds an ephemeral port — query the
/// actual one with port(). Not copyable; closes on destruction.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds + listens on `port` (0 = ephemeral) at `bind_addr`. False on
  /// failure (errno preserved) — sandboxed environments may forbid sockets.
  bool listen(std::uint16_t port, const std::string& bind_addr = "127.0.0.1");

  /// The bound port (valid after a successful listen()).
  std::uint16_t port() const { return port_; }

  /// Blocks for the next inbound connection; null on failure/close.
  std::unique_ptr<Transport> accept();

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to host:port; null on failure (errno preserved).
std::unique_ptr<Transport> tcp_connect(const std::string& host, std::uint16_t port);

}  // namespace topkmon::net
