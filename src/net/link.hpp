// Link — a Transport wrapped with deterministic fault emulation + counters.
//
// The transports underneath (net/transport.hpp) are reliable; real links are
// not. A Link layers the fault model of src/faults on top of the reliable
// pipe the same way CommStats layers lossy-link accounting on top of the
// model's reliable primitives:
//
//   * probabilistic loss — the FleetSchedule's per-message drop probability
//     applied per frame: each send draws a geometric number of dropped
//     attempts from a per-link RNG before the frame gets through. Delivery
//     stays reliable (the retry loop is immediate), the cost is booked as
//     `send_retries`. p = 0 performs no draws at all, so loss-free links are
//     bit-identically free.
//   * scripted outages — "the next `attempts` send attempts starting at send
//     ordinal `first_attempt` fail". The sender's retry loop spins through
//     the outage (each attempt books one retry), delivers on the first
//     attempt past it, and books one `reconnects`. Outages are scripted by
//     ordinal, so they are deterministic and always terminate; the
//     coordinator consumes take_reconnected() to fire the protocol's
//     membership-recovery hook on the step a link came back.
//
// Every delivered frame updates the NetChannelStats block
// (sim/stats_snapshot.hpp) that flows into RunResult and telemetry.
//
// Backoff: attempts are immediate retries — in-process emulation has no
// reason to sleep. The attempt *count* is the deterministic cost surface the
// tests pin; wall-clock backoff would only add nondeterminism.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/transport.hpp"
#include "sim/stats_snapshot.hpp"
#include "util/rng.hpp"

namespace topkmon::net {

/// One scripted link outage, addressed by send-attempt ordinal (0-based
/// count of send() calls on this link, *not* wall time or step number).
struct LinkOutage {
  std::uint64_t first_attempt = 0;
  std::uint64_t attempts = 1;
};

class Link {
 public:
  explicit Link(std::unique_ptr<Transport> transport)
      : transport_(std::move(transport)) {}

  /// Arms per-frame probabilistic loss (accounting-only retransmission).
  void set_loss(double p, Rng rng) {
    loss_p_ = p;
    rng_ = rng;
  }

  /// Scripts an outage; outages must be added in ascending, non-overlapping
  /// `first_attempt` order before the link is used.
  void add_outage(LinkOutage outage) { outages_.push_back(outage); }

  /// Delivers one frame through the emulated faults. False = peer gone.
  bool send(const std::vector<std::uint8_t>& frame);

  /// Blocks for the next frame. False = peer closed.
  bool recv(std::vector<std::uint8_t>& frame);

  void close() { transport_->close(); }

  const NetChannelStats& stats() const { return stats_; }

  /// True once per recovered outage: did this link come back since the last
  /// call? The coordinator polls this per step to trigger protocol recovery.
  bool take_reconnected() {
    const bool r = reconnected_;
    reconnected_ = false;
    return r;
  }

 private:
  std::unique_ptr<Transport> transport_;
  NetChannelStats stats_;
  std::vector<LinkOutage> outages_;  ///< ascending by first_attempt
  std::size_t outage_cursor_ = 0;
  std::uint64_t attempt_ = 0;  ///< next send-attempt ordinal
  double loss_p_ = 0.0;
  Rng rng_{0};
  bool reconnected_ = false;
};

}  // namespace topkmon::net
