#include "net/link.hpp"

namespace topkmon::net {

bool Link::send(const std::vector<std::uint8_t>& frame) {
  // Scripted outage: every attempt inside the window fails (one retry each);
  // the first attempt past it delivers and books the reconnect.
  while (outage_cursor_ < outages_.size()) {
    const LinkOutage& o = outages_[outage_cursor_];
    if (attempt_ + 1 <= o.first_attempt) break;  // outage still ahead
    if (attempt_ >= o.first_attempt + o.attempts) {
      ++outage_cursor_;  // already past (can happen after loss drops)
      ++stats_.reconnects;
      reconnected_ = true;
      continue;
    }
    // Inside the outage: burn the remaining attempts as failed sends.
    const std::uint64_t end = o.first_attempt + o.attempts;
    stats_.send_retries += end - attempt_;
    attempt_ = end;
    ++outage_cursor_;
    ++stats_.reconnects;
    reconnected_ = true;
  }
  // Probabilistic loss: geometric number of dropped attempts before the one
  // that gets through — the frame-level mirror of CommStats::enable_loss
  // (drops-before-success is geometric in the delivery probability 1−p).
  if (loss_p_ > 0.0) {
    const std::uint64_t drops = rng_.geometric(1.0 - loss_p_);
    stats_.send_retries += drops;
    attempt_ += drops;
  }
  ++attempt_;
  if (!transport_->send(frame)) return false;
  ++stats_.frames_sent;
  stats_.bytes_sent += frame.size();
  return true;
}

bool Link::recv(std::vector<std::uint8_t>& frame) {
  if (!transport_->recv(frame)) return false;
  ++stats_.frames_recv;
  stats_.bytes_recv += frame.size();
  return true;
}

}  // namespace topkmon::net
