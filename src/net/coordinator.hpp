// NetCoordinator — the control-plane process of the networked runtime.
//
// The coordinator owns the *unmodified* monitoring protocol on an
// externally-driven Simulator: per step it assembles the full effective
// observation vector from the node-hosts' shard reports, feeds it through
// Simulator::step_with (which windows, books messages, and runs the
// protocol exactly as the in-process simulator does), then ships the step's
// filter deltas back to the shards. Consequences:
//
//   * Model-level accounting (CommStats: messages, kinds, tags, rounds,
//     losses, recoveries) is produced by the very same code as the
//     in-process Simulator — a loss-free networked run reproduces the
//     simulator's RunResult bit-identically (asserted in tests/test_net.cpp
//     and fuzzed in tests/test_differential.cpp).
//   * Wire-level traffic is accounted separately per link
//     (NetChannelStats), summed into RunResult::net.
//
// Fault plumbing: the coordinator attaches the FleetSchedule as a fault
// *channel* (loss accounting + scripted membership recovery) but installs no
// injector — value-level faults are produced by the node-hosts, which own
// the data plane. Stale-read counts reported per shard are summed into the
// same CommStats counter the standalone injector feeds. Link outages map
// onto the protocol's recovery machinery: when a link comes back from a
// scripted outage, the next step runs MonitoringProtocol::
// on_membership_change and books a recovery round
// (Simulator::force_recovery_next_step), so reconnections exercise the same
// path scripted churn does.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/wire.hpp"
#include "sim/simulator.hpp"

namespace topkmon::telemetry {
class TelemetrySink;
}

namespace topkmon::net {

/// Contiguous shard partition: host h of H owns [h·n/H, (h+1)·n/H).
std::uint32_t shard_lo(std::size_t n, std::uint32_t hosts, std::uint32_t host);

class NetCoordinator {
 public:
  /// One link per node-host, in accept order; the Hello handshake maps links
  /// to host indices. Throws std::runtime_error on an invalid spec.
  NetCoordinator(RunSpec spec, std::vector<std::unique_ptr<Link>> links);
  ~NetCoordinator();

  /// Attaches telemetry: the simulator's full namespace plus the net.*
  /// transport counters, refreshed after every step. Must precede run().
  void attach_telemetry(telemetry::TelemetrySink* sink);

  /// Handshake, all steps, shutdown. Returns the aggregate statistics —
  /// model counters bit-identical to the in-process Simulator on a loss-free
  /// schedule, plus the summed transport counters in `.net`. Throws
  /// std::runtime_error when a node-host misbehaves or a link dies.
  RunResult run();

  /// The protocol's final output F(T) (valid after run()).
  const OutputSet& output() const;

  /// Sum of the quiescence errors every host reported (0 on a correct run).
  std::uint64_t quiescence_errors() const { return quiescence_errors_; }

  const Simulator& sim() const { return *sim_; }
  Simulator& sim() { return *sim_; }

  /// Per-link transport counters, indexed by host (valid after handshake).
  const NetChannelStats& link_stats(std::uint32_t host) const;

 private:
  void handshake();
  void step(TimeStep t);
  NetChannelStats net_total() const;
  void publish_net_telemetry();

  RunSpec spec_;
  std::vector<std::unique_ptr<Link>> links_;       ///< accept order
  std::vector<Link*> link_of_host_;                ///< host index -> link
  std::unique_ptr<Simulator> sim_;
  ValueVector assembled_;                          ///< full effective vector
  std::uint64_t quiescence_errors_ = 0;
  telemetry::TelemetrySink* telemetry_ = nullptr;
  StatsSnapshotIds stats_ids_{};
};

/// In-process networked run: spawns `hosts` NodeHost threads over loopback
/// links, runs the coordinator on the calling thread, joins everything.
/// The differential oracle's entry point — same frames, zero sockets.
struct InprocNetReport {
  RunResult run;          ///< coordinator result (net counters filled)
  OutputSet output;       ///< final F(T)
  std::uint64_t quiescence_errors = 0;
  std::vector<int> host_exit;  ///< per-host run() status (all 0 on success)
  /// Final k-select estimates, kselect(1..k), when the protocol serves
  /// QueryKind::kKSelect (sim/protocol.hpp QueryCapabilities); empty
  /// otherwise. Bit-identical to a standalone Simulator's on a loss-free
  /// schedule, like the rest of `run`.
  std::vector<Value> kselect_estimates;

  /// Final count-distinct answer when the protocol serves
  /// QueryKind::kCountDistinct; nullopt otherwise.
  std::optional<std::uint64_t> distinct_count;

  /// Final nodes-above-T count when the protocol serves
  /// QueryKind::kThreshold; nullopt otherwise (alert ⇔ *threshold_above > 0).
  std::optional<std::uint64_t> threshold_above;
};

struct InprocNetOptions {
  std::uint32_t hosts = 2;

  /// Frame-level loss probability on every link; negative = inherit the
  /// spec's FaultConfig::loss (wire frames drop as often as model messages).
  double link_loss = -1.0;

  /// Scripted outages: {host, coordinator→node side?, outage}.
  struct ScriptedOutage {
    std::uint32_t host = 0;
    bool coordinator_side = true;  ///< outage on coord→node sends, else node→coord
    LinkOutage outage;
  };
  std::vector<ScriptedOutage> outages;

  telemetry::TelemetrySink* sink = nullptr;  ///< optional coordinator sink
};

InprocNetReport run_networked_inproc(const RunSpec& spec,
                                     const InprocNetOptions& opts);

}  // namespace topkmon::net
