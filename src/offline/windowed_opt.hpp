// Windowed offline optimum — the competitive-ratio baseline for
// sliding-window monitoring (src/model/window.hpp).
//
// A windowed monitor answers top-k over the per-node window maxima, so the
// fair offline opponent is OfflineOpt evaluated on the *windowed* history:
// feed it the same transformed value matrix the online algorithm saw and the
// greedy maximal-phase argument (opt.hpp) applies verbatim — the windowed
// vectors are just another value stream. These wrappers take the RAW
// recorded history plus W and window it internally (O(T·n) via the monotonic
// deque model), which is what engine-side callers hold: the engine records
// one shared pre-window history per step while queries with different W each
// see their own transform of it.
//
// Standalone Simulators record the windowed history directly (what the
// algorithm saw), so OfflineOpt on sim.history() and WindowedOpt on the raw
// trace agree — a property the window test suite pins down.
#pragma once

#include <cstddef>
#include <vector>

#include "model/types.hpp"
#include "offline/opt.hpp"

namespace topkmon {

class WindowedOpt {
 public:
  /// ε′-error offline optimum over the raw history windowed with W.
  /// W = kInfiniteWindow degenerates to OfflineOpt::approx on the raw rows.
  static OptReport approx(const std::vector<ValueVector>& raw_history, std::size_t k,
                          double eps_opt, std::size_t window);

  /// Exact offline optimum over the raw history windowed with W.
  static OptReport exact(const std::vector<ValueVector>& raw_history, std::size_t k,
                         std::size_t window);
};

}  // namespace topkmon
