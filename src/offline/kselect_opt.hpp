// Offline optimal k-select baseline (the competitive-ratio reference for
// KSelectQueries, mirroring offline/opt.hpp for top-k positions).
//
// An offline algorithm serving ε-approximate k-select may hold one answer
// v̂ fixed for as long as it stays valid, paying one message per change. A
// window [a, b) of the history admits a single answer iff
//   ∃ v̂ ≥ 0 : ∀ t ∈ [a, b):  v̂ ≥ (1−ε)·v_k(t)  ∧  (1−ε)·v̂ ≤ v_k(t)
// ⇔ (1−ε)² · max_t v_k(t) ≤ min_t v_k(t)                        (★k)
// (v̂ ranges over the reals — OPT is an information-theoretic baseline).
// Feasibility is monotone under shrinking, so the greedy maximal-window
// partition uses the minimum number of phases; one message per boundary is
// the canonical lower bound. Validated against the O(T²) DP in
// offline/brute_force.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "model/types.hpp"

namespace topkmon {

struct KSelectOptReport {
  std::uint64_t phases = 0;
  /// Starting row of each phase (first is always 0).
  std::vector<std::size_t> phase_starts;
  /// Lower bound on OPT's messages: one per phase.
  std::uint64_t messages_lower_bound = 0;
};

class KSelectOpt {
 public:
  /// ε-error offline k-select optimum over the recorded history (row = time
  /// step); ε = 0 degenerates to one phase per distinct v_k run.
  static KSelectOptReport approx(const std::vector<ValueVector>& history,
                                 std::size_t k, double epsilon);

  /// Window feasibility (★k) over the k-th-value extrema, in the same
  /// multiplication form the ε-helpers use.
  static bool window_feasible(Value vk_min, Value vk_max, double epsilon);
};

}  // namespace topkmon
