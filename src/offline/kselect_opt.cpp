#include "offline/kselect_opt.hpp"

#include <algorithm>

#include "model/oracle.hpp"
#include "util/assert.hpp"

namespace topkmon {

bool KSelectOpt::window_feasible(Value vk_min, Value vk_max, double epsilon) {
  TOPKMON_ASSERT(vk_min <= vk_max);
  const double scale = 1.0 - epsilon;
  return scale * scale * static_cast<double>(vk_max) <=
         static_cast<double>(vk_min);
}

KSelectOptReport KSelectOpt::approx(const std::vector<ValueVector>& history,
                                    std::size_t k, double epsilon) {
  KSelectOptReport r;
  if (history.empty()) {
    return r;
  }
  TOPKMON_ASSERT(k >= 1 && k <= history.front().size());
  Value lo = 0;
  Value hi = 0;
  for (std::size_t t = 0; t < history.size(); ++t) {
    const Value vk = Oracle::kth_value(history[t], k);
    if (r.phase_starts.empty()) {
      r.phase_starts.push_back(0);
      lo = hi = vk;
      continue;
    }
    const Value trial_lo = std::min(lo, vk);
    const Value trial_hi = std::max(hi, vk);
    if (window_feasible(trial_lo, trial_hi, epsilon)) {
      lo = trial_lo;
      hi = trial_hi;
    } else {
      r.phase_starts.push_back(t);
      lo = hi = vk;
    }
  }
  r.phases = r.phase_starts.size();
  r.messages_lower_bound = r.phases;
  return r;
}

}  // namespace topkmon
