#include "offline/feasibility.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "model/oracle.hpp"
#include "util/assert.hpp"

namespace topkmon {

WindowExtrema::WindowExtrema(std::size_t n) : min_(n, 0), max_(n, 0) {}

void WindowExtrema::reset(std::span<const Value> values) {
  TOPKMON_ASSERT(values.size() == min_.size());
  min_.assign(values.begin(), values.end());
  max_.assign(values.begin(), values.end());
}

void WindowExtrema::absorb(std::span<const Value> values) {
  TOPKMON_ASSERT(values.size() == min_.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    min_[i] = std::min(min_[i], values[i]);
    max_[i] = std::max(max_[i], values[i]);
  }
}

bool window_feasible_approx(const WindowExtrema& w, std::size_t k, double eps_opt) {
  const std::size_t n = w.n();
  TOPKMON_ASSERT(k >= 1 && k <= n);
  if (k == n) return true;  // empty complement: (★) is vacuous
  const auto& m = w.mins();
  const auto& M = w.maxs();

  // Nodes ordered by window-max descending (value, id tie-break).
  std::vector<NodeId> by_max(n);
  std::iota(by_max.begin(), by_max.end(), NodeId{0});
  std::sort(by_max.begin(), by_max.end(), [&](NodeId a, NodeId b) {
    return ranks_above(M[a], a, M[b], b);
  });

  // Prefix minima of m over the forced members (by_max[0..j*-2]).
  // For each candidate j* (1-based position of the highest-M outsider):
  double forced_min = std::numeric_limits<double>::infinity();
  const std::size_t max_jstar = std::min(k + 1, n);
  for (std::size_t jstar = 1; jstar <= max_jstar; ++jstar) {
    const NodeId outsider = by_max[jstar - 1];
    const double threshold = (1.0 - eps_opt) * static_cast<double>(M[outsider]);
    if (forced_min >= threshold) {
      // Count candidates after the outsider with m >= threshold; they can
      // fill F up to k while keeping every other node outside (their M is
      // at most M[outsider], so the complement maximum is unchanged).
      std::size_t avail = 0;
      const std::size_t needed = k - (jstar - 1);
      for (std::size_t p = jstar; p < n && avail < needed; ++p) {
        if (static_cast<double>(m[by_max[p]]) >= threshold) ++avail;
      }
      if (avail >= needed) return true;
    }
    // Node at position jstar-1 becomes forced for the next candidate.
    forced_min =
        std::min(forced_min, static_cast<double>(m[by_max[jstar - 1]]));
  }
  return false;
}

bool window_feasible_exact(const std::vector<ValueVector>& history, std::size_t begin,
                           std::size_t end, std::size_t k) {
  TOPKMON_ASSERT(begin < end && end <= history.size());
  const std::size_t n = history[begin].size();
  TOPKMON_ASSERT(k >= 1 && k <= n);
  const OutputSet f = Oracle::top_k(history[begin], k);
  std::vector<bool> in_f(n, false);
  for (NodeId id : f) in_f[id] = true;

  Value min_f = ~Value{0};
  Value max_out = 0;
  bool have_out = false;
  for (std::size_t t = begin; t < end; ++t) {
    if (Oracle::top_k(history[t], k) != f) return false;
    for (std::size_t i = 0; i < n; ++i) {
      if (in_f[i]) {
        min_f = std::min(min_f, history[t][i]);
      } else {
        max_out = std::max(max_out, history[t][i]);
        have_out = true;
      }
    }
  }
  // Touching filters ([x, ∞) and [0, x]) are allowed (Obs. 2.2, ε = 0).
  return !have_out || min_f >= max_out;
}

}  // namespace topkmon
