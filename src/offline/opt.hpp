// Offline optimal filter-based algorithm (the competitive-ratio baseline).
//
// Greedy maximal feasible windows: start a phase, extend while the window
// stays feasible (see feasibility.hpp), cut when it breaks, repeat. Because
// feasibility is monotone under shrinking, the greedy partition uses the
// minimum possible number of phases — the canonical lower bound on OPT's
// communication (OPT must send at least one message per phase boundary).
// We also report the cost of the constructive strategy the paper's
// Theorem 5.1 adversary analysis uses (k unicasts + 1 broadcast per phase).
#pragma once

#include <cstdint>
#include <vector>

#include "model/types.hpp"

namespace topkmon {

struct OptReport {
  std::uint64_t phases = 0;
  /// Starting row of each phase (first is always 0).
  std::vector<std::size_t> phase_starts;
  /// Lower bound on OPT's messages: one per phase.
  std::uint64_t messages_lower_bound = 0;
  /// Constructive two-filter strategy: (k+1) messages per phase.
  std::uint64_t messages_constructive = 0;
};

class OfflineOpt {
 public:
  /// ε′-error offline optimum over the recorded history (row = time step).
  static OptReport approx(const std::vector<ValueVector>& history, std::size_t k,
                          double eps_opt);

  /// Exact offline optimum (constant exact top-k per phase, ε′ = 0).
  static OptReport exact(const std::vector<ValueVector>& history, std::size_t k);
};

}  // namespace topkmon
