#include "offline/windowed_opt.hpp"

#include "model/window.hpp"

namespace topkmon {

OptReport WindowedOpt::approx(const std::vector<ValueVector>& raw_history,
                              std::size_t k, double eps_opt, std::size_t window) {
  if (window == kInfiniteWindow) {
    return OfflineOpt::approx(raw_history, k, eps_opt);
  }
  return OfflineOpt::approx(windowed_history(raw_history, window), k, eps_opt);
}

OptReport WindowedOpt::exact(const std::vector<ValueVector>& raw_history,
                             std::size_t k, std::size_t window) {
  if (window == kInfiniteWindow) {
    return OfflineOpt::exact(raw_history, k);
  }
  return OfflineOpt::exact(windowed_history(raw_history, window), k);
}

}  // namespace topkmon
