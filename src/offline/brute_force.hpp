// Exponential reference implementations used only by tests to validate the
// fast feasibility check and the greedy phase partition (small n / T).
#pragma once

#include <cstdint>
#include <vector>

#include "model/types.hpp"
#include "offline/feasibility.hpp"

namespace topkmon {

/// Enumerates every k-subset and tests (★) directly. O(C(n,k)·n).
bool window_feasible_approx_brute(const WindowExtrema& w, std::size_t k,
                                  double eps_opt);

/// Minimal number of feasible windows covering the history, by dynamic
/// programming over all O(T²) windows (uses the *brute-force* feasibility).
std::uint64_t min_phases_brute(const std::vector<ValueVector>& history, std::size_t k,
                               double eps_opt);

/// Minimal number of single-answer k-select phases (condition (★k) of
/// offline/kselect_opt.hpp) by the same O(T²) DP; validates the greedy
/// KSelectOpt partition.
std::uint64_t min_kselect_phases_brute(const std::vector<ValueVector>& history,
                                       std::size_t k, double epsilon);

}  // namespace topkmon
