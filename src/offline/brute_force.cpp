#include "offline/brute_force.hpp"

#include <algorithm>
#include <limits>

#include "model/oracle.hpp"
#include "offline/kselect_opt.hpp"
#include "util/assert.hpp"

namespace topkmon {

namespace {

bool subset_ok(const WindowExtrema& w, const std::vector<bool>& in_f, double eps_opt) {
  double min_f = std::numeric_limits<double>::infinity();
  double max_out = -std::numeric_limits<double>::infinity();
  bool any_out = false;
  for (std::size_t i = 0; i < w.n(); ++i) {
    if (in_f[i]) {
      min_f = std::min(min_f, static_cast<double>(w.mins()[i]));
    } else {
      max_out = std::max(max_out, static_cast<double>(w.maxs()[i]));
      any_out = true;
    }
  }
  return !any_out || min_f >= (1.0 - eps_opt) * max_out;
}

bool enumerate(const WindowExtrema& w, std::vector<bool>& in_f, std::size_t next,
               std::size_t remaining, double eps_opt) {
  if (remaining == 0) return subset_ok(w, in_f, eps_opt);
  if (next >= w.n() || w.n() - next < remaining) return false;
  in_f[next] = true;
  if (enumerate(w, in_f, next + 1, remaining - 1, eps_opt)) {
    in_f[next] = false;
    return true;
  }
  in_f[next] = false;
  return enumerate(w, in_f, next + 1, remaining, eps_opt);
}

}  // namespace

bool window_feasible_approx_brute(const WindowExtrema& w, std::size_t k,
                                  double eps_opt) {
  TOPKMON_ASSERT(w.n() <= 24);  // keep C(n,k) enumeration sane
  std::vector<bool> in_f(w.n(), false);
  return enumerate(w, in_f, 0, k, eps_opt);
}

std::uint64_t min_phases_brute(const std::vector<ValueVector>& history, std::size_t k,
                               double eps_opt) {
  const std::size_t T = history.size();
  if (T == 0) return 0;
  const std::size_t n = history.front().size();

  // feas[b][e): window feasibility via the brute-force subset test.
  auto feasible = [&](std::size_t b, std::size_t e) {
    WindowExtrema w(n);
    w.reset(history[b]);
    for (std::size_t t = b + 1; t < e; ++t) w.absorb(history[t]);
    return window_feasible_approx_brute(w, k, eps_opt);
  };

  constexpr std::uint64_t kInf = ~std::uint64_t{0};
  std::vector<std::uint64_t> dp(T + 1, kInf);
  dp[0] = 0;
  for (std::size_t e = 1; e <= T; ++e) {
    for (std::size_t b = 0; b < e; ++b) {
      if (dp[b] != kInf && feasible(b, e)) {
        dp[e] = std::min(dp[e], dp[b] + 1);
      }
    }
  }
  return dp[T];
}

std::uint64_t min_kselect_phases_brute(const std::vector<ValueVector>& history,
                                       std::size_t k, double epsilon) {
  const std::size_t T = history.size();
  if (T == 0) return 0;

  std::vector<Value> vk(T);
  for (std::size_t t = 0; t < T; ++t) {
    vk[t] = Oracle::kth_value(history[t], k);
  }
  auto feasible = [&](std::size_t b, std::size_t e) {
    Value lo = vk[b];
    Value hi = vk[b];
    for (std::size_t t = b + 1; t < e; ++t) {
      lo = std::min(lo, vk[t]);
      hi = std::max(hi, vk[t]);
    }
    return KSelectOpt::window_feasible(lo, hi, epsilon);
  };

  constexpr std::uint64_t kInf = ~std::uint64_t{0};
  std::vector<std::uint64_t> dp(T + 1, kInf);
  dp[0] = 0;
  for (std::size_t e = 1; e <= T; ++e) {
    for (std::size_t b = 0; b < e; ++b) {
      if (dp[b] != kInf && feasible(b, e)) {
        dp[e] = std::min(dp[e], dp[b] + 1);
      }
    }
  }
  return dp[T];
}

}  // namespace topkmon
