// Window feasibility for the offline filter-based optimum.
//
// By Proposition 2.4 an optimal offline algorithm uses two filters per
// phase: F1 = [MIN_F(t,t'), ∞) for its output F and F2 = [0, MAX_F̄(t,t')]
// for the complement. By Lemma 2.5 (and Observation 2.2 with error ε′) the
// phase [t,t'] requires
//
//     min_{i∈F} m_i  ≥  (1−ε′) · max_{j∉F} M_j                      (★)
//
// where m_i / M_i are node i's min/max over the window. Conversely, if (★)
// holds then the two-filter assignment is a valid filter set and — because
// filter validity plus containment implies output correctness (each i ∈ F,
// j ∉ F satisfies v_i ≥ ℓ_i ≥ (1−ε′)u_j ≥ (1−ε′)v_j at every step, which
// pins every clearly-larger node inside F and every clearly-smaller node
// outside) — OPT indeed need not communicate during the window. So
// ε′-feasibility of a window is *exactly* "∃ k-subset F satisfying (★)".
//
// The exact variant additionally requires the exact top-k set (value with
// id tie-break) to be constant across the window and (★) with ε′ = 0.
//
// Feasibility is monotone under window shrinking (m_i only grows, M_j only
// shrinks), which makes the greedy maximal-window partition in opt.hpp
// optimal.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "model/types.hpp"

namespace topkmon {

/// Per-node running min/max over a window, extended row by row.
class WindowExtrema {
 public:
  explicit WindowExtrema(std::size_t n);

  /// Resets the window to the single row `values`.
  void reset(std::span<const Value> values);

  /// Extends the window by one row.
  void absorb(std::span<const Value> values);

  std::size_t n() const { return min_.size(); }
  const std::vector<Value>& mins() const { return min_; }
  const std::vector<Value>& maxs() const { return max_; }

 private:
  std::vector<Value> min_;
  std::vector<Value> max_;
};

/// ∃ k-subset F with min_F m ≥ (1−ε′)·max_F̄ M? O(n log n + n·min(k+1,n)).
///
/// Candidate-cut argument: order nodes by M descending; for any F the
/// highest-M node outside F is at position j* ≤ k+1 in that order, F must
/// contain all nodes before j*, and the remaining members are best chosen
/// among the nodes with the largest m values ≥ the threshold
/// (1−ε′)·M_{j*}. Trying every j* in 1..k+1 is exhaustive.
bool window_feasible_approx(const WindowExtrema& w, std::size_t k, double eps_opt);

/// Exact-OPT feasibility for history rows [begin, end): constant exact
/// top-k set across the window plus (★) with ε′ = 0.
bool window_feasible_exact(const std::vector<ValueVector>& history, std::size_t begin,
                           std::size_t end, std::size_t k);

}  // namespace topkmon
