#include "offline/opt.hpp"

#include "offline/feasibility.hpp"
#include "util/assert.hpp"

namespace topkmon {

namespace {

OptReport finalize(OptReport r, std::size_t k) {
  r.phases = r.phase_starts.size();
  r.messages_lower_bound = r.phases;
  r.messages_constructive = r.phases * (static_cast<std::uint64_t>(k) + 1);
  return r;
}

}  // namespace

OptReport OfflineOpt::approx(const std::vector<ValueVector>& history, std::size_t k,
                             double eps_opt) {
  OptReport r;
  if (history.empty()) return finalize(r, k);
  const std::size_t n = history.front().size();
  TOPKMON_ASSERT(k >= 1 && k <= n);

  WindowExtrema w(n);
  w.reset(history[0]);
  r.phase_starts.push_back(0);
  TOPKMON_ASSERT_MSG(window_feasible_approx(w, k, eps_opt),
                     "single-step window must always be feasible");
  for (std::size_t t = 1; t < history.size(); ++t) {
    WindowExtrema trial = w;
    trial.absorb(history[t]);
    if (window_feasible_approx(trial, k, eps_opt)) {
      w = trial;
    } else {
      r.phase_starts.push_back(t);
      w.reset(history[t]);
    }
  }
  return finalize(r, k);
}

OptReport OfflineOpt::exact(const std::vector<ValueVector>& history, std::size_t k) {
  OptReport r;
  if (history.empty()) return finalize(r, k);
  std::size_t begin = 0;
  r.phase_starts.push_back(0);
  for (std::size_t t = 1; t < history.size(); ++t) {
    if (!window_feasible_exact(history, begin, t + 1, k)) {
      begin = t;
      r.phase_starts.push_back(t);
    }
  }
  return finalize(r, k);
}

}  // namespace topkmon
