#include "streams/lb_adversary.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace topkmon {

LbAdversaryStream::LbAdversaryStream(LbAdversaryConfig cfg) : cfg_(cfg) {
  TOPKMON_ASSERT(cfg_.k >= 1);
  TOPKMON_ASSERT(cfg_.sigma > cfg_.k);
  TOPKMON_ASSERT(cfg_.sigma <= cfg_.n);
  TOPKMON_ASSERT(cfg_.epsilon > 0.0 && cfg_.epsilon < 1.0);
  TOPKMON_ASSERT(cfg_.y0 >= 16 && cfg_.y0 <= kMaxObservableValue);
  // Strictly below (1−ε)·y0, with slack for any ε′ < 1 the offline uses.
  y1_floor_ = static_cast<Value>(
      std::floor((1.0 - cfg_.epsilon) * static_cast<double>(cfg_.y0) / 4.0));
}

void LbAdversaryStream::reset_phase(ValueVector& out) {
  for (std::size_t i = 0; i < cfg_.sigma; ++i) {
    out[i] = cfg_.y0;
  }
  // Non-candidates: fixed, clearly below everything relevant, distinct.
  for (std::size_t i = cfg_.sigma; i < cfg_.n; ++i) {
    out[i] = y1_floor_ / 2 + (i - cfg_.sigma);
  }
  drops_in_phase_ = 0;
}

void LbAdversaryStream::init(ValueVector& out, Rng&) { reset_phase(out); }

void LbAdversaryStream::step(TimeStep, const AdversaryView& view, ValueVector& out,
                             Rng&) {
  if (drops_in_phase_ >= cfg_.sigma - cfg_.k) {
    // Phase complete: restore all candidates and start over (Thm. 5.1's
    // "the input stream can be extended to an arbitrary length").
    ++phases_;
    reset_phase(out);
    return;
  }
  // Pick a candidate still at y0 that is currently in the online output;
  // among those prefer the one whose filter has the highest lower bound
  // (guarantees the drop violates the filter). While more than k candidates
  // remain at y0, the output must contain at least one of them — all other
  // nodes are clearly smaller — so a victim always exists for any *correct*
  // online algorithm.
  const OutputSet& output = *view.output;
  NodeId victim = cfg_.n;  // sentinel
  double best_lo = -1.0;
  for (NodeId id : output) {
    if (id < cfg_.sigma && out[id] == cfg_.y0) {
      const double lo = view.nodes[id].filter().lo;
      if (lo > best_lo) {
        best_lo = lo;
        victim = id;
      }
    }
  }
  if (victim == cfg_.n) {
    // The online algorithm's output is incorrect (or k candidates left);
    // drop any candidate still at y0 — correctness validation will flag the
    // former case in strict mode.
    for (NodeId i = 0; i < cfg_.sigma; ++i) {
      if (out[i] == cfg_.y0) {
        victim = i;
        break;
      }
    }
    TOPKMON_ASSERT(victim != cfg_.n);
  }
  // y1: below (1−ε)y0 *and* below the victim's filter lower bound.
  Value y1 = y1_floor_;
  const double lo = view.nodes[victim].filter().lo;
  if (lo > 1.0 && static_cast<double>(y1) >= lo) {
    y1 = static_cast<Value>(std::floor(lo - 1.0));
  }
  out[victim] = y1;
  ++drops_in_phase_;
  ++drops_total_;
}

std::unique_ptr<StreamGenerator> LbAdversaryStream::clone() const {
  return std::make_unique<LbAdversaryStream>(cfg_);
}

}  // namespace topkmon
