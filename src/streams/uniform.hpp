// i.i.d. uniform values in [lo, hi] each step — the chaotic baseline where
// filters help least (every step reshuffles ranks).
#pragma once

#include "sim/stream.hpp"

namespace topkmon {

struct UniformStreamConfig {
  std::size_t n = 10;
  Value lo = 0;
  Value hi = 1 << 20;
};

class UniformStream final : public StreamGenerator {
 public:
  explicit UniformStream(UniformStreamConfig cfg);

  std::size_t n() const override { return cfg_.n; }
  void init(ValueVector& out, Rng& rng) override;
  void step(TimeStep t, const AdversaryView& view, ValueVector& out, Rng& rng) override;
  std::string_view name() const override { return "uniform"; }
  std::unique_ptr<StreamGenerator> clone() const override;

 private:
  UniformStreamConfig cfg_;
};

}  // namespace topkmon
