#include "streams/oscillating.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace topkmon {

OscillatingStream::OscillatingStream(OscillatingConfig cfg) : cfg_(cfg) {
  TOPKMON_ASSERT(cfg_.n > 0);
  TOPKMON_ASSERT(cfg_.k >= 1 && cfg_.k <= cfg_.n);
  TOPKMON_ASSERT(cfg_.sigma >= 1);
  TOPKMON_ASSERT(cfg_.epsilon > 0.0 && cfg_.epsilon < 1.0);
  TOPKMON_ASSERT(cfg_.drift >= 0.0 && cfg_.drift <= 0.25);
  // Layout: [0, high_) anchors, [high_, high_+sigma) oscillators, rest low.
  if (cfg_.sigma >= cfg_.k) {
    high_ = 0;
  } else {
    high_ = cfg_.k - (cfg_.sigma + 1) / 2;
  }
  TOPKMON_ASSERT_MSG(high_ + cfg_.sigma <= cfg_.n,
                     "n too small for requested sigma/k layout");
  TOPKMON_ASSERT(high_ < cfg_.k && cfg_.k <= high_ + cfg_.sigma);

  band_floor_ = std::max<Value>(16, cfg_.band_top / 2);
  set_band(cfg_.band_top);
  TOPKMON_ASSERT_MSG(band_lo_ < cfg_.band_top, "epsilon too small for band_top");

  // Anchors: clearly larger than any possible v_k (≤ band_top): need
  // (1−ε)·high > band_top, with margin ×4. Lows: clearly smaller than any
  // possible v_k (≥ (1−ε)·band_floor), with margin /4.
  high_base_ = static_cast<Value>(
      std::ceil(4.0 * static_cast<double>(cfg_.band_top) / (1.0 - cfg_.epsilon)));
  TOPKMON_ASSERT(high_base_ + cfg_.n <= kMaxObservableValue);
  const double min_band_lo = (1.0 - cfg_.epsilon) * static_cast<double>(band_floor_);
  low_top_ = static_cast<Value>(
      std::floor((1.0 - cfg_.epsilon) * min_band_lo / 4.0));
}

void OscillatingStream::set_band(Value top) {
  band_top_cur_ = top;
  band_lo_ = static_cast<Value>(
      std::ceil((1.0 - cfg_.epsilon) * static_cast<double>(top)));
  if (band_lo_ >= band_top_cur_) {
    band_lo_ = band_top_cur_ - 1;
  }
}

Value OscillatingStream::draw_oscillator(Rng& rng) const {
  return rng.uniform_u64(band_lo_, band_top_cur_);
}

void OscillatingStream::init(ValueVector& out, Rng& rng) {
  set_band(cfg_.band_top);
  for (std::size_t i = 0; i < high_; ++i) {
    out[i] = high_base_ + i;  // distinct, clearly larger
  }
  for (std::size_t i = high_; i < high_ + cfg_.sigma; ++i) {
    out[i] = draw_oscillator(rng);
  }
  for (std::size_t i = high_ + cfg_.sigma; i < cfg_.n; ++i) {
    out[i] = rng.uniform_u64(0, low_top_);
  }
}

void OscillatingStream::step(TimeStep, const AdversaryView&, ValueVector& out,
                             Rng& rng) {
  if (cfg_.drift > 0.0) {
    const auto max_move = static_cast<Value>(
        std::max(1.0, cfg_.drift * static_cast<double>(cfg_.band_top)));
    const Value move = rng.uniform_u64(0, max_move);
    Value top = band_top_cur_;
    if (rng.bernoulli(0.5)) {
      top = (cfg_.band_top - top >= move) ? top + move : cfg_.band_top;
    } else {
      top = (top >= band_floor_ + move) ? top - move : band_floor_;
    }
    set_band(top);
    // Keep every oscillator inside the moved band (σ exactness).
    for (std::size_t i = high_; i < high_ + cfg_.sigma; ++i) {
      out[i] = std::clamp(out[i], band_lo_, band_top_cur_);
    }
  }
  for (std::size_t i = high_; i < high_ + cfg_.sigma; ++i) {
    if (rng.bernoulli(cfg_.churn)) {
      out[i] = draw_oscillator(rng);
    }
  }
  // Anchors and lows stay put: all churn is concentrated in the
  // ε-neighborhood, the worst case for exact monitors and the best case
  // for approximate ones.
}

std::unique_ptr<StreamGenerator> OscillatingStream::clone() const {
  return std::make_unique<OscillatingStream>(cfg_);
}

}  // namespace topkmon
