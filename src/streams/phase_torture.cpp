#include "streams/phase_torture.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace topkmon {

PhaseTortureStream::PhaseTortureStream(PhaseTortureConfig cfg) : cfg_(cfg) {
  TOPKMON_ASSERT(cfg_.k >= 1);
  TOPKMON_ASSERT(cfg_.n >= cfg_.k + 2);  // anchors + climber + >=1 low node
  TOPKMON_ASSERT(cfg_.climber_start >= 2);
  TOPKMON_ASSERT(cfg_.top > 64 * cfg_.climber_start);
  TOPKMON_ASSERT(cfg_.top + cfg_.k <= kMaxObservableValue);
  anchor_lo_ = cfg_.top;
}

void PhaseTortureStream::init(ValueVector& out, Rng&) {
  for (std::size_t i = 0; i < cfg_.k; ++i) {
    out[i] = cfg_.top + (cfg_.k - i);  // distinct anchors; lowest is cfg_.top + 1
  }
  anchor_lo_ = cfg_.top + 1;
  out[cfg_.k] = cfg_.climber_start;
  for (std::size_t i = cfg_.k + 1; i < cfg_.n; ++i) {
    out[i] = 1 + (i - cfg_.k - 1) % 2;  // static noise floor
  }
  crossed_ = false;
}

void PhaseTortureStream::step(TimeStep, const AdversaryView& view, ValueVector& out,
                              Rng&) {
  const NodeId climber = static_cast<NodeId>(cfg_.k);
  if (crossed_) {
    // Reset for the next macro-phase.
    out[climber] = cfg_.climber_start;
    crossed_ = false;
    ++phases_;
    return;
  }
  const double hi = view.nodes[climber].filter().hi;
  if (!std::isfinite(hi) ||
      hi + 1.0 >= static_cast<double>(anchor_lo_)) {
    // Chasing the filter further would pass the anchors: jump across, which
    // empties the protocol's interval L and forces offline communication.
    out[climber] = anchor_lo_ + cfg_.k + 7;  // strictly above every anchor
    crossed_ = true;
    return;
  }
  // Violate from below: one past the filter's upper bound.
  out[climber] = static_cast<Value>(std::floor(hi)) + 1;
}

std::unique_ptr<StreamGenerator> PhaseTortureStream::clone() const {
  return std::make_unique<PhaseTortureStream>(cfg_);
}

}  // namespace topkmon
