// Web-server load workload (the paper's motivating example: a load balancer
// tracking the k most-loaded servers in a cluster).
//
// Each node has a Zipf-distributed base load (popularity skew). Bursts
// arrive per node with probability `burst_prob` per step and multiply the
// load by `burst_factor`, then decay geometrically. Observed load includes
// multiplicative noise — small enough to stay within an ε-neighborhood, so
// approximate monitors ignore it while exact monitors chase it.
#pragma once

#include "sim/stream.hpp"
#include "util/rng.hpp"

namespace topkmon {

struct ZipfBurstyConfig {
  std::size_t n = 32;
  double zipf_alpha = 1.1;
  Value base_scale = 1 << 16;  ///< load of the most popular node (pre-burst)
  double burst_prob = 0.01;    ///< per node per step
  double burst_factor = 4.0;   ///< multiplier at burst onset
  double burst_decay = 0.9;    ///< per-step geometric decay toward 1.0
  double noise = 0.02;         ///< ±2% multiplicative observation noise
};

class ZipfBurstyStream final : public StreamGenerator {
 public:
  explicit ZipfBurstyStream(ZipfBurstyConfig cfg);

  std::size_t n() const override { return cfg_.n; }
  void init(ValueVector& out, Rng& rng) override;
  void step(TimeStep t, const AdversaryView& view, ValueVector& out, Rng& rng) override;
  std::string_view name() const override { return "zipf_bursty"; }
  std::unique_ptr<StreamGenerator> clone() const override;

 private:
  Value observe(std::size_t i, Rng& rng) const;

  ZipfBurstyConfig cfg_;
  std::vector<double> base_;   ///< per-node base load
  std::vector<double> boost_;  ///< current burst multiplier (≥ 1)
};

}  // namespace topkmon
