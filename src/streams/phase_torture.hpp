// Phase-torture adversary for TOP-K-PROTOCOL (Sect. 4).
//
// Layout: nodes 0..k−1 hold large, stable anchor values near `top`; node k
// is the *climber*; the rest sit at tiny values. The climber starts far
// below the anchors (so log log u − log log ℓ is large → phase P1) and then
// *chases its own filter*: every step it observes its current filter's
// upper bound + 1, violating from below. This forces the maximal number of
// interval updates through P1 (doubly-exponential probes), P2 (geometric
// midpoint), and P3 (arithmetic midpoint). Once the climber's value would
// cross the anchor region it jumps above the lowest anchor — terminating
// the protocol (L = ∅) and forcing *any* offline algorithm (even exact) to
// communicate — then resets. Each macro-phase therefore costs the online
// algorithm Θ(log log Δ + log 1/ε) violations versus O(1) offline phases:
// exactly the Theorem 4.5 regime.
#pragma once

#include "sim/stream.hpp"

namespace topkmon {

struct PhaseTortureConfig {
  std::size_t n = 8;
  std::size_t k = 2;
  Value top = Value{1} << 32;  ///< anchor scale (≈ Δ)
  Value climber_start = 4;     ///< initial climber value (≪ top)
};

class PhaseTortureStream final : public StreamGenerator {
 public:
  explicit PhaseTortureStream(PhaseTortureConfig cfg);

  const PhaseTortureConfig& config() const { return cfg_; }

  std::size_t n() const override { return cfg_.n; }
  void init(ValueVector& out, Rng& rng) override;
  void step(TimeStep t, const AdversaryView& view, ValueVector& out, Rng& rng) override;
  std::string_view name() const override { return "phase_torture"; }
  std::unique_ptr<StreamGenerator> clone() const override;

  /// Completed climb→cross→reset macro-phases.
  std::uint64_t macro_phases() const { return phases_; }

 private:
  PhaseTortureConfig cfg_;
  Value anchor_lo_ = 0;  ///< lowest anchor value
  bool crossed_ = false; ///< climber is above anchor_lo_, reset next step
  std::uint64_t phases_ = 0;
};

}  // namespace topkmon
