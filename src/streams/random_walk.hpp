// Reflected lazy random walk per node — the regime the filter technique is
// designed for: values at time t+1 are "similar" to time t.
//
// Each step a node stays put with probability `laziness`, otherwise moves by
// a uniform step in [1, max_step], up or down, reflected into [lo, hi].
#pragma once

#include "sim/stream.hpp"

namespace topkmon {

struct RandomWalkConfig {
  std::size_t n = 10;
  Value lo = 0;
  Value hi = 1 << 20;
  Value max_step = 64;
  double laziness = 0.25;
  /// If true, initial values are spread evenly over [lo, hi] (deterministic
  /// ranks at t = 0); otherwise uniform at random.
  bool spread_init = false;
};

class RandomWalkStream final : public StreamGenerator {
 public:
  explicit RandomWalkStream(RandomWalkConfig cfg);

  std::size_t n() const override { return cfg_.n; }
  void init(ValueVector& out, Rng& rng) override;
  void step(TimeStep t, const AdversaryView& view, ValueVector& out, Rng& rng) override;
  std::string_view name() const override { return "random_walk"; }
  std::unique_ptr<StreamGenerator> clone() const override;

 private:
  RandomWalkConfig cfg_;
};

}  // namespace topkmon
