// The adaptive lower-bound adversary of Theorem 5.1.
//
// Instance: sigma "candidate" nodes (ids 0..sigma−1) observe y0; the other
// n − sigma nodes observe clearly-smaller values. Each step the adversary
// inspects the online algorithm's *current filters and output* (allowed by
// the adaptive-adversary model) and drops one candidate that is presently in
// the output to a value y1 < (1−ε)·y0 chosen below that node's filter lower
// bound — forcing a filter violation and hence ≥ 1 online message. After
// sigma − k drops only k candidates remain at y0 (exactly the forced
// output); the phase ends and all candidates reset to y0.
//
// Per phase: the online algorithm sends ≥ sigma − k messages, while the
// offline algorithm — which knows the drop schedule — pays k unicasts plus
// one broadcast (k + 1 messages). Competitiveness is therefore Ω(σ/k),
// regardless of the (possibly different) error ε′ the offline side uses.
#pragma once

#include "sim/stream.hpp"

namespace topkmon {

struct LbAdversaryConfig {
  std::size_t n = 16;
  std::size_t k = 3;
  double epsilon = 0.1;  ///< the *online* algorithm's allowed error
  std::size_t sigma = 12;
  Value y0 = 1 << 20;
};

class LbAdversaryStream final : public StreamGenerator {
 public:
  explicit LbAdversaryStream(LbAdversaryConfig cfg);

  std::size_t n() const override { return cfg_.n; }
  void init(ValueVector& out, Rng& rng) override;
  void step(TimeStep t, const AdversaryView& view, ValueVector& out, Rng& rng) override;
  std::string_view name() const override { return "lb_adversary"; }
  std::unique_ptr<StreamGenerator> clone() const override;

  /// Completed adversary phases (each costs OPT ≤ k+1 messages).
  std::uint64_t phases_completed() const { return phases_; }
  /// Drops performed (each forces ≥ 1 online message).
  std::uint64_t drops_performed() const { return drops_total_; }
  /// Steps per phase: sigma − k drops + 1 reset step.
  std::size_t phase_length() const { return cfg_.sigma - cfg_.k + 1; }

 private:
  void reset_phase(ValueVector& out);

  LbAdversaryConfig cfg_;
  Value y1_floor_ = 0;          ///< guaranteed < (1−ε)·y0
  std::size_t drops_in_phase_ = 0;
  std::uint64_t phases_ = 0;
  std::uint64_t drops_total_ = 0;
};

}  // namespace topkmon
