#include "streams/registry.hpp"

#include <stdexcept>

#include "streams/lb_adversary.hpp"
#include "streams/oscillating.hpp"
#include "streams/phase_torture.hpp"
#include "streams/random_walk.hpp"
#include "streams/sine_noise.hpp"
#include "streams/trace_file.hpp"
#include "streams/uniform.hpp"
#include "streams/zipf_bursty.hpp"

namespace topkmon {

std::unique_ptr<StreamGenerator> make_stream(const StreamSpec& spec) {
  if (spec.kind == "uniform") {
    return std::make_unique<UniformStream>(UniformStreamConfig{spec.n, 0, spec.delta});
  }
  if (spec.kind == "random_walk") {
    RandomWalkConfig cfg;
    cfg.n = spec.n;
    cfg.lo = 0;
    cfg.hi = spec.delta;
    cfg.max_step = spec.walk_step;
    return std::make_unique<RandomWalkStream>(cfg);
  }
  if (spec.kind == "oscillating") {
    OscillatingConfig cfg;
    cfg.n = spec.n;
    cfg.k = spec.k;
    cfg.epsilon = spec.epsilon;
    cfg.sigma = spec.sigma;
    cfg.band_top = spec.delta / 8 < 16 ? 16 : spec.delta / 8;
    cfg.churn = spec.churn;
    cfg.drift = spec.drift;
    return std::make_unique<OscillatingStream>(cfg);
  }
  if (spec.kind == "zipf_bursty") {
    ZipfBurstyConfig cfg;
    cfg.n = spec.n;
    cfg.base_scale = spec.delta;
    return std::make_unique<ZipfBurstyStream>(cfg);
  }
  if (spec.kind == "sine_noise") {
    SineNoiseConfig cfg;
    cfg.n = spec.n;
    cfg.mid = spec.delta / 2 < 256 ? 256 : spec.delta / 2;
    cfg.amplitude = cfg.mid / 4;
    cfg.noise = cfg.mid / 512 < 1 ? 1 : cfg.mid / 512;
    return std::make_unique<SineNoiseStream>(cfg);
  }
  if (spec.kind == "lb_adversary") {
    LbAdversaryConfig cfg;
    cfg.n = spec.n;
    cfg.k = spec.k;
    cfg.epsilon = spec.epsilon;
    cfg.sigma = spec.sigma;
    cfg.y0 = spec.delta;
    return std::make_unique<LbAdversaryStream>(cfg);
  }
  if (spec.kind == "phase_torture") {
    PhaseTortureConfig cfg;
    cfg.n = spec.n;
    cfg.k = spec.k;
    cfg.top = spec.delta;
    return std::make_unique<PhaseTortureStream>(cfg);
  }
  if (spec.kind == "trace_file") {
    return std::make_unique<TraceFileStream>(spec.trace_path);
  }
  throw std::runtime_error("unknown stream kind: " + spec.kind);
}

std::vector<std::string> stream_kinds() {
  return {"uniform",    "random_walk",  "oscillating",   "zipf_bursty",
          "sine_noise", "lb_adversary", "phase_torture", "trace_file"};
}

}  // namespace topkmon
