#include "streams/random_walk.hpp"

#include "util/assert.hpp"

namespace topkmon {

RandomWalkStream::RandomWalkStream(RandomWalkConfig cfg) : cfg_(cfg) {
  TOPKMON_ASSERT(cfg_.n > 0);
  TOPKMON_ASSERT(cfg_.lo <= cfg_.hi);
  TOPKMON_ASSERT(cfg_.hi <= kMaxObservableValue);
  TOPKMON_ASSERT(cfg_.max_step >= 1);
  TOPKMON_ASSERT(cfg_.laziness >= 0.0 && cfg_.laziness <= 1.0);
}

void RandomWalkStream::init(ValueVector& out, Rng& rng) {
  if (cfg_.spread_init) {
    const double span = static_cast<double>(cfg_.hi - cfg_.lo);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = cfg_.lo + static_cast<Value>(span * (static_cast<double>(i) + 0.5) /
                                            static_cast<double>(out.size()));
    }
  } else {
    for (auto& v : out) {
      v = rng.uniform_u64(cfg_.lo, cfg_.hi);
    }
  }
}

void RandomWalkStream::step(TimeStep, const AdversaryView&, ValueVector& out,
                            Rng& rng) {
  for (auto& v : out) {
    if (rng.bernoulli(cfg_.laziness)) continue;
    const Value delta = rng.uniform_u64(1, cfg_.max_step);
    if (rng.bernoulli(0.5)) {
      // Move up, reflect at hi.
      const Value headroom = cfg_.hi - v;
      v = (delta <= headroom) ? v + delta : cfg_.hi - (delta - headroom);
    } else {
      // Move down, reflect at lo.
      const Value room = v - cfg_.lo;
      v = (delta <= room) ? v - delta : cfg_.lo + (delta - room);
    }
    if (v < cfg_.lo) v = cfg_.lo;
    if (v > cfg_.hi) v = cfg_.hi;
  }
}

std::unique_ptr<StreamGenerator> RandomWalkStream::clone() const {
  return std::make_unique<RandomWalkStream>(cfg_);
}

}  // namespace topkmon
