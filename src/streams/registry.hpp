// Name-based stream factory for CLI tools and benches.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/stream.hpp"

namespace topkmon {

/// Shared knobs; each generator maps these onto its own config. Fields that
/// a generator does not use are ignored.
struct StreamSpec {
  std::string kind = "random_walk";
  std::size_t n = 16;
  std::size_t k = 3;
  double epsilon = 0.1;
  Value delta = 1 << 20;   ///< value scale (Δ)
  std::size_t sigma = 8;   ///< neighborhood size for dense/adversary kinds
  Value walk_step = 64;    ///< random-walk step size
  double churn = 1.0;      ///< oscillator churn fraction
  double drift = 0.0;      ///< oscillating band drift fraction per step
  std::string trace_path;  ///< for kind == "trace_file"

  friend bool operator==(const StreamSpec&, const StreamSpec&) = default;
};

/// Constructs the generator named by `spec.kind`; throws std::runtime_error
/// for unknown kinds. Known kinds: uniform, random_walk, oscillating,
/// zipf_bursty, sine_noise, lb_adversary, phase_torture, trace_file.
std::unique_ptr<StreamGenerator> make_stream(const StreamSpec& spec);

/// All registered kind names (for --help output and matrix tests).
std::vector<std::string> stream_kinds();

}  // namespace topkmon
