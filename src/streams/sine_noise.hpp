// Sensor-fleet workload: slow per-node sinusoidal drift plus bounded noise.
//
// Models the introduction's "marginal changes due to noise" scenario: ranks
// change slowly (period >> 1) but raw values jitter every step.
#pragma once

#include "sim/stream.hpp"

namespace topkmon {

struct SineNoiseConfig {
  std::size_t n = 16;
  Value mid = 1 << 15;       ///< center of all sinusoids
  Value amplitude = 1 << 13; ///< per-node amplitude
  double period = 512.0;     ///< steps per full cycle
  Value noise = 64;          ///< uniform noise in [-noise, +noise]
};

class SineNoiseStream final : public StreamGenerator {
 public:
  explicit SineNoiseStream(SineNoiseConfig cfg);

  std::size_t n() const override { return cfg_.n; }
  void init(ValueVector& out, Rng& rng) override;
  void step(TimeStep t, const AdversaryView& view, ValueVector& out, Rng& rng) override;
  std::string_view name() const override { return "sine_noise"; }
  std::unique_ptr<StreamGenerator> clone() const override;

 private:
  Value sample(std::size_t i, TimeStep t, Rng& rng) const;

  SineNoiseConfig cfg_;
};

}  // namespace topkmon
