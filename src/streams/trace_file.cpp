#include "streams/trace_file.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace topkmon {

std::vector<ValueVector> parse_trace_csv(const std::string& content) {
  std::vector<ValueVector> rows;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    ValueVector row;
    std::istringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) {
      try {
        row.push_back(static_cast<Value>(std::stoull(cell)));
      } catch (const std::exception&) {
        throw std::runtime_error("trace CSV: bad cell '" + cell + "'");
      }
    }
    if (!rows.empty() && row.size() != rows.front().size()) {
      throw std::runtime_error("trace CSV: inconsistent row width");
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    throw std::runtime_error("trace CSV: no rows");
  }
  return rows;
}

TraceFileStream::TraceFileStream(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    throw std::runtime_error("trace CSV: cannot open " + path);
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  rows_ = parse_trace_csv(buf.str());
}

TraceFileStream::TraceFileStream(std::vector<ValueVector> rows)
    : rows_(std::move(rows)) {
  TOPKMON_ASSERT(!rows_.empty());
  for (const auto& r : rows_) {
    TOPKMON_ASSERT(r.size() == rows_.front().size());
  }
}

std::size_t TraceFileStream::n() const { return rows_.front().size(); }

void TraceFileStream::init(ValueVector& out, Rng&) {
  cursor_ = 0;
  out = rows_[0];
}

void TraceFileStream::step(TimeStep, const AdversaryView&, ValueVector& out, Rng&) {
  if (cursor_ + 1 < rows_.size()) {
    ++cursor_;
  }
  out = rows_[cursor_];
}

std::unique_ptr<StreamGenerator> TraceFileStream::clone() const {
  auto copy = std::make_unique<TraceFileStream>(rows_);
  return copy;
}

void write_trace(const std::string& path, const std::vector<ValueVector>& rows) {
  std::ofstream f(path);
  if (!f) {
    throw std::runtime_error("trace CSV: cannot write " + path);
  }
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      f << row[i];
      f << (i + 1 < row.size() ? ',' : '\n');
    }
  }
}

}  // namespace topkmon
