#include "streams/sine_noise.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace topkmon {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}

SineNoiseStream::SineNoiseStream(SineNoiseConfig cfg) : cfg_(cfg) {
  TOPKMON_ASSERT(cfg_.n > 0);
  TOPKMON_ASSERT(cfg_.period > 1.0);
  TOPKMON_ASSERT(cfg_.amplitude + cfg_.noise <= cfg_.mid);
  TOPKMON_ASSERT(cfg_.mid + cfg_.amplitude + cfg_.noise <= kMaxObservableValue);
}

Value SineNoiseStream::sample(std::size_t i, TimeStep t, Rng& rng) const {
  // Evenly spread phases keep node curves crossing each other regularly.
  const double phase =
      kTwoPi * static_cast<double>(i) / static_cast<double>(cfg_.n);
  const double base =
      static_cast<double>(cfg_.mid) +
      static_cast<double>(cfg_.amplitude) *
          std::sin(kTwoPi * static_cast<double>(t) / cfg_.period + phase);
  const double jitter =
      (2.0 * rng.uniform01() - 1.0) * static_cast<double>(cfg_.noise);
  const double v = std::max(0.0, base + jitter);
  return static_cast<Value>(std::llround(v));
}

void SineNoiseStream::init(ValueVector& out, Rng& rng) {
  for (std::size_t i = 0; i < cfg_.n; ++i) {
    out[i] = sample(i, 0, rng);
  }
}

void SineNoiseStream::step(TimeStep t, const AdversaryView&, ValueVector& out,
                           Rng& rng) {
  for (std::size_t i = 0; i < cfg_.n; ++i) {
    out[i] = sample(i, t, rng);
  }
}

std::unique_ptr<StreamGenerator> SineNoiseStream::clone() const {
  return std::make_unique<SineNoiseStream>(cfg_);
}

}  // namespace topkmon
