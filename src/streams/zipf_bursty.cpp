#include "streams/zipf_bursty.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace topkmon {

ZipfBurstyStream::ZipfBurstyStream(ZipfBurstyConfig cfg) : cfg_(cfg) {
  TOPKMON_ASSERT(cfg_.n > 0);
  TOPKMON_ASSERT(cfg_.burst_factor >= 1.0);
  TOPKMON_ASSERT(cfg_.burst_decay > 0.0 && cfg_.burst_decay <= 1.0);
  base_.resize(cfg_.n);
  boost_.assign(cfg_.n, 1.0);
  for (std::size_t i = 0; i < cfg_.n; ++i) {
    // Rank i+1 in the Zipf law; node ids are *not* sorted by popularity in
    // real clusters, but id order is irrelevant to the monitors.
    base_[i] = static_cast<double>(cfg_.base_scale) /
               std::pow(static_cast<double>(i + 1), cfg_.zipf_alpha);
    if (base_[i] < 1.0) base_[i] = 1.0;
  }
}

Value ZipfBurstyStream::observe(std::size_t i, Rng& rng) const {
  const double noisy =
      base_[i] * boost_[i] * (1.0 + cfg_.noise * (2.0 * rng.uniform01() - 1.0));
  const double clamped = std::max(0.0, noisy);
  return static_cast<Value>(std::llround(clamped));
}

void ZipfBurstyStream::init(ValueVector& out, Rng& rng) {
  boost_.assign(cfg_.n, 1.0);
  for (std::size_t i = 0; i < cfg_.n; ++i) {
    out[i] = observe(i, rng);
  }
}

void ZipfBurstyStream::step(TimeStep, const AdversaryView&, ValueVector& out,
                            Rng& rng) {
  for (std::size_t i = 0; i < cfg_.n; ++i) {
    // Decay toward 1.0, then maybe start a new burst.
    boost_[i] = 1.0 + (boost_[i] - 1.0) * cfg_.burst_decay;
    if (rng.bernoulli(cfg_.burst_prob)) {
      boost_[i] *= cfg_.burst_factor;
    }
    out[i] = observe(i, rng);
  }
}

std::unique_ptr<StreamGenerator> ZipfBurstyStream::clone() const {
  return std::make_unique<ZipfBurstyStream>(cfg_);
}

}  // namespace topkmon
