// Dense ε-neighborhood workload (the regime motivating the approximate
// problem, Sect. 1 and 5 of the paper).
//
// Construction guaranteeing σ(t) == sigma at every step:
//   * `sigma` oscillator nodes draw uniform values in [a, b] with
//     a = ceil((1−ε)·b): any two oscillator values x, y satisfy
//     x ≥ (1−ε)·y, so whenever the k-th largest value is an oscillator the
//     *entire* oscillator group lies inside A(t).
//   * `high` nodes (clearly larger) sit far above b/(1−ε); `low` nodes
//     (clearly smaller) sit far below (1−ε)·a; both drift mildly.
//   * high-count h is chosen so the k-th largest is always an oscillator:
//     h = 0 if sigma ≥ k, else h = k − (sigma+1)/2 (then h < k ≤ h + sigma).
// An exact monitor must chase every rank swap inside the group; an
// ε-monitor can stay silent — this is experiment E6/E7's workload.
#pragma once

#include "sim/stream.hpp"

namespace topkmon {

struct OscillatingConfig {
  std::size_t n = 20;
  std::size_t k = 5;
  double epsilon = 0.1;
  std::size_t sigma = 10;    ///< number of ε-neighborhood oscillators (≥ 1)
  Value band_top = 1 << 16;  ///< b; oscillators live in [(1−ε)b, b]
  /// Fraction of oscillators re-drawn each step (1.0 = all move every step).
  double churn = 1.0;
  /// Per-step random walk of the band ceiling, as a fraction of band_top
  /// (0 = stationary band). The ceiling is reflected inside
  /// [band_top/2, band_top]; a drifting band defeats any fixed filter
  /// assignment, so the offline optimum must also keep communicating —
  /// this is the regime where the DENSEPROTOCOL interval game plays out.
  double drift = 0.0;
};

class OscillatingStream final : public StreamGenerator {
 public:
  explicit OscillatingStream(OscillatingConfig cfg);

  std::size_t n() const override { return cfg_.n; }
  void init(ValueVector& out, Rng& rng) override;
  void step(TimeStep t, const AdversaryView& view, ValueVector& out, Rng& rng) override;
  std::string_view name() const override { return "oscillating"; }
  std::unique_ptr<StreamGenerator> clone() const override;

  std::size_t high_count() const { return high_; }
  Value band_lo() const { return band_lo_; }
  Value band_hi() const { return band_top_cur_; }

 private:
  Value draw_oscillator(Rng& rng) const;
  void set_band(Value top);

  OscillatingConfig cfg_;
  std::size_t high_ = 0;  ///< nodes [0, high_) are clearly-larger anchors
  Value band_top_cur_ = 0;
  Value band_lo_ = 0;     ///< a = ceil((1−ε)·band_top_cur_)
  Value band_floor_ = 0;  ///< drift reflection floor = band_top/2
  Value high_base_ = 0;
  Value low_top_ = 0;
};

}  // namespace topkmon
