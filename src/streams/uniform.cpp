#include "streams/uniform.hpp"

#include "util/assert.hpp"

namespace topkmon {

UniformStream::UniformStream(UniformStreamConfig cfg) : cfg_(cfg) {
  TOPKMON_ASSERT(cfg_.n > 0);
  TOPKMON_ASSERT(cfg_.lo <= cfg_.hi);
  TOPKMON_ASSERT(cfg_.hi <= kMaxObservableValue);
}

void UniformStream::init(ValueVector& out, Rng& rng) {
  for (auto& v : out) {
    v = rng.uniform_u64(cfg_.lo, cfg_.hi);
  }
}

void UniformStream::step(TimeStep, const AdversaryView&, ValueVector& out, Rng& rng) {
  init(out, rng);
}

std::unique_ptr<StreamGenerator> UniformStream::clone() const {
  return std::make_unique<UniformStream>(cfg_);
}

}  // namespace topkmon
