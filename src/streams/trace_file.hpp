// CSV trace replay: one row per time step, one column per node.
//
// Rows are replayed in order; when the file is exhausted the last row
// repeats (a stalled stream), keeping run lengths independent of trace
// length. `write_trace` is the matching serializer so examples and tests
// can round-trip value histories.
#pragma once

#include <string>
#include <vector>

#include "sim/stream.hpp"

namespace topkmon {

class TraceFileStream final : public StreamGenerator {
 public:
  /// Parses the CSV at `path`; throws std::runtime_error on malformed input.
  explicit TraceFileStream(const std::string& path);

  /// In-memory trace (used by tests and by generators that pre-render).
  explicit TraceFileStream(std::vector<ValueVector> rows);

  std::size_t n() const override;
  void init(ValueVector& out, Rng& rng) override;
  void step(TimeStep t, const AdversaryView& view, ValueVector& out, Rng& rng) override;
  std::string_view name() const override { return "trace_file"; }
  std::unique_ptr<StreamGenerator> clone() const override;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<ValueVector> rows_;
  std::size_t cursor_ = 0;
};

/// Serializes a value history as CSV readable by TraceFileStream.
void write_trace(const std::string& path, const std::vector<ValueVector>& rows);

/// Parses CSV content (used internally; exposed for tests).
std::vector<ValueVector> parse_trace_csv(const std::string& content);

}  // namespace topkmon
