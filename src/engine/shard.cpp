#include "engine/shard.hpp"

#include "util/assert.hpp"

namespace topkmon {

void EngineShard::add(QueryHandle handle, std::size_t window,
                      std::unique_ptr<Simulator> sim) {
  TOPKMON_ASSERT(sim != nullptr);
  handles_.push_back(handle);
  windows_.push_back(window);
  sims_.push_back(std::move(sim));
}

void EngineShard::set_profiler(telemetry::StepProfiler* prof) {
  profiler_ = prof;
  for (auto& sim : sims_) {
    sim->set_profiler(prof);
  }
}

void EngineShard::advance(const StepSnapshot& snapshot) {
  TOPKMON_PHASE_SCOPE(profiler_, telemetry::Phase::kShardAdvance);
  if (views_.size() != sims_.size()) {
    // First step: resolve each query's window to its stable view pointer.
    views_.resize(sims_.size());
    for (std::size_t i = 0; i < sims_.size(); ++i) {
      views_[i] = snapshot.view(windows_[i]);
    }
  }
  for (std::size_t i = 0; i < sims_.size(); ++i) {
    sims_[i]->step_with(views_[i]->current());
  }
}

}  // namespace topkmon
