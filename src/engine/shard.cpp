#include "engine/shard.hpp"

#include "util/assert.hpp"

namespace topkmon {

void EngineShard::add(QueryHandle handle, std::unique_ptr<Simulator> sim) {
  TOPKMON_ASSERT(sim != nullptr);
  handles_.push_back(handle);
  sims_.push_back(std::move(sim));
}

void EngineShard::step(const ValueVector& snapshot) {
  for (auto& sim : sims_) {
    sim->step_with(snapshot);
  }
}

}  // namespace topkmon
