#include "engine/stats.hpp"

#include <sstream>

namespace topkmon {

std::string describe(const QuerySpec& spec) {
  if (!spec.label.empty()) return spec.label;
  std::ostringstream oss;
  // The protocol name already names the query kind (the registry maps one to
  // one for the defaults), so the historical "protocol k=.. eps=.." shape
  // stays stable; only threshold queries append their bound.
  oss << spec.protocol << " k=" << spec.k << " eps=" << format_double(spec.epsilon, 3);
  if (spec.window != kInfiniteWindow) {
    oss << " W=" << spec.window;
  }
  if (spec.kind == QueryKind::kThreshold) {
    oss << " T=" << spec.threshold;
  }
  return oss.str();
}

StatsSnapshot EngineStats::totals() const {
  StatsSnapshot snap;
  snap.messages = total_messages;
  for (const QueryStats& q : queries) {
    snap.node_to_server += q.run.node_to_server;
    snap.server_to_node += q.run.server_to_node;
    snap.broadcasts += q.run.broadcasts;
    for (std::size_t t = 0; t < kNumMessageTags; ++t) {
      snap.by_tag[t] += q.run.by_tag[t];
    }
    snap.rounds += q.run.rounds;
  }
  snap.messages_lost = messages_lost;
  snap.stale_reads = stale_reads;
  snap.recovery_rounds = recovery_rounds;
  snap.window_expirations = window_expirations;
  return snap;
}

Table EngineStats::per_query_table(const std::string& title) const {
  // The "W" column appears only when some query actually windows, keeping
  // unwindowed serving reports byte-identical to the pre-window engine.
  Table t(title);
  std::vector<std::string> header{"query", "label", "k", "eps"};
  if (windowed) header.push_back("W");
  for (const char* col : {"messages", "msgs/step", "max rounds", "output F(T)"}) {
    header.push_back(col);
  }
  t.header(header);
  for (const auto& q : queries) {
    std::string out = "{";
    for (std::size_t i = 0; i < q.output.size(); ++i) {
      out += std::to_string(q.output[i]) + (i + 1 < q.output.size() ? "," : "");
    }
    out += "}";
    std::vector<std::string> row{std::to_string(q.handle), q.label,
                                 std::to_string(q.k), format_double(q.epsilon, 3)};
    if (windowed) {
      row.push_back(q.window == kInfiniteWindow ? "inf" : std::to_string(q.window));
    }
    row.push_back(format_count(q.run.messages));
    row.push_back(format_double(q.run.messages_per_step, 2));
    row.push_back(format_count(q.run.max_rounds_per_step));
    row.push_back(out);
    t.add_row(row);
  }
  return t;
}

Table EngineStats::summary_table(const std::string& title) const {
  Table t(title);
  t.header({"metric", "value"});
  t.add_row({"queries", format_count(queries.size())});
  t.add_row({"steps", format_count(steps)});
  t.add_row({"query messages", format_count(query_messages)});
  t.add_row({"shared probe messages", format_count(shared_probe_messages)});
  t.add_row({"total messages", format_count(total_messages)});
  t.add_row({"shared probe calls", format_count(probe_calls)});
  t.add_row({"shared probe ranks computed", format_count(probe_ranks_computed)});
  t.add_row({"messages lost (links)", format_count(messages_lost)});
  t.add_row({"stale reads (fleet)", format_count(stale_reads)});
  t.add_row({"recovery rounds", format_count(recovery_rounds)});
  if (windowed) {
    t.add_row({"window expirations (fleet)", format_count(window_expirations)});
  }
  t.add_row({"elapsed (s)", format_double(elapsed_sec, 3)});
  t.add_row({"steps / s", format_double(steps_per_sec, 1)});
  t.add_row({"query-steps / s", format_double(query_steps_per_sec, 1)});
  return t;
}

}  // namespace topkmon
