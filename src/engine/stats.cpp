#include "engine/stats.hpp"

#include <sstream>

namespace topkmon {

std::string describe(const QuerySpec& spec) {
  if (!spec.label.empty()) return spec.label;
  std::ostringstream oss;
  oss << spec.protocol << " k=" << spec.k << " eps=" << format_double(spec.epsilon, 3);
  return oss.str();
}

Table EngineStats::per_query_table(const std::string& title) const {
  Table t(title);
  t.header({"query", "label", "k", "eps", "messages", "msgs/step", "max rounds",
            "output F(T)"});
  for (const auto& q : queries) {
    std::string out = "{";
    for (std::size_t i = 0; i < q.output.size(); ++i) {
      out += std::to_string(q.output[i]) + (i + 1 < q.output.size() ? "," : "");
    }
    out += "}";
    t.add_row({std::to_string(q.handle), q.label, std::to_string(q.k),
               format_double(q.epsilon, 3), format_count(q.run.messages),
               format_double(q.run.messages_per_step, 2),
               format_count(q.run.max_rounds_per_step), out});
  }
  return t;
}

Table EngineStats::summary_table(const std::string& title) const {
  Table t(title);
  t.header({"metric", "value"});
  t.add_row({"queries", format_count(queries.size())});
  t.add_row({"steps", format_count(steps)});
  t.add_row({"query messages", format_count(query_messages)});
  t.add_row({"shared probe messages", format_count(shared_probe_messages)});
  t.add_row({"total messages", format_count(total_messages)});
  t.add_row({"shared probe calls", format_count(probe_calls)});
  t.add_row({"shared probe ranks computed", format_count(probe_ranks_computed)});
  t.add_row({"messages lost (links)", format_count(messages_lost)});
  t.add_row({"stale reads (fleet)", format_count(stale_reads)});
  t.add_row({"recovery rounds", format_count(recovery_rounds)});
  t.add_row({"elapsed (s)", format_double(elapsed_sec, 3)});
  t.add_row({"steps / s", format_double(steps_per_sec, 1)});
  t.add_row({"query-steps / s", format_double(query_steps_per_sec, 1)});
  return t;
}

}  // namespace topkmon
