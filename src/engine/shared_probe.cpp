#include "engine/shared_probe.hpp"

#include <algorithm>
#include <optional>

#include "protocols/existence.hpp"
#include "util/assert.hpp"

namespace topkmon {

SharedProbe::SharedProbe(std::uint64_t seed)
    : rng_(Rng::derive(seed, /*stream_id=*/0x5A4ED)) {}

void SharedProbe::begin_step(const ValueVector* snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  TOPKMON_ASSERT(snapshot != nullptr);
  snapshot_ = snapshot;
  cache_.clear();
  excluded_.assign(snapshot_->size(), false);
  exhausted_ = snapshot_->empty();
  stats_.begin_step();
}

std::vector<ProbeResult> SharedProbe::top(std::size_t m) {
  std::lock_guard<std::mutex> lock(mu_);
  TOPKMON_ASSERT_MSG(snapshot_ != nullptr, "SharedProbe::top before begin_step");
  ++calls_;
  extend_locked(m);
  const std::size_t take = std::min(m, cache_.size());
  return {cache_.begin(), cache_.begin() + static_cast<std::ptrdiff_t>(take)};
}

void SharedProbe::extend_locked(std::size_t m) {
  const ValueVector& values = *snapshot_;
  while (cache_.size() < m && !exhausted_) {
    // One Lemma 2.6 sample_max over the non-excluded nodes, with the exact
    // accounting SimContext::sample_max applies (shared core loop).
    auto best = SimContext::sample_max_over(
        values.size(),
        [&](NodeId i, const std::optional<ProbeResult>& so_far) {
          if (excluded_[i]) return false;
          if (!so_far) return true;
          return ranks_above(values[i], i, so_far->value, so_far->id);
        },
        [&](NodeId i) { return values[i]; }, stats_, rng_);
    if (!best) {
      exhausted_ = true;
      break;
    }
    excluded_[best->id] = true;
    cache_.push_back(*best);
    ++ranks_computed_;
    if (cache_.size() == values.size()) {
      exhausted_ = true;
    }
  }
}

}  // namespace topkmon
