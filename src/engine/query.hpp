// Query descriptors for the multi-query MonitoringEngine.
//
// A QuerySpec is everything one monitoring query needs beyond the shared
// fleet: which kind of question it asks (QueryKind), which protocol serves
// it, its parameters (k, ε, window, threshold), whether to validate
// strictly, and (optionally) an explicit seed. The engine returns a
// QueryHandle — a dense index usable to look up per-query results.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "model/types.hpp"
#include "model/window.hpp"
#include "sim/query_kind.hpp"

namespace topkmon {

/// Dense per-engine query index (assigned in add_query order).
using QueryHandle = std::uint32_t;

struct QuerySpec {
  /// What question this query asks; the chosen protocol must advertise the
  /// kind via QueryCapabilities (add_query rejects mismatches).
  QueryKind kind = QueryKind::kTopK;

  /// Name from protocols/registry; empty (the default) = the kind's default
  /// protocol, resolved by add_query/parse_query_spec (default_protocol_for;
  /// kTopK resolves to "combined", preserving the historical default).
  std::string protocol;
  std::size_t k = 3;
  double epsilon = 0.1;
  bool strict = false;  ///< oracle-validate output/filters after every step

  /// Threshold bound T (kThreshold queries only; ignored otherwise).
  Value threshold = 0;

  /// Sliding-window length W (src/model/window.hpp): the query monitors
  /// top-k over per-node window maxima of the last W steps. kInfiniteWindow
  /// (0) = the paper's instantaneous semantics. One engine serves queries
  /// with mixed W over one fleet; each distinct W maintains one shared
  /// windowed view of the step snapshot, not one per query.
  std::size_t window = kInfiniteWindow;

  /// Protocol-side seed. Unset: derived deterministically from the engine
  /// seed and the handle via splitmix_combine, so distinct queries get
  /// independent randomness and results are reproducible. Set explicitly to
  /// make a query bit-identical to a standalone `Simulator` with that seed.
  std::optional<std::uint64_t> seed;

  /// Display name for stats tables; empty = synthesized from the fields.
  std::string label;
};

/// "protocol k=.. eps=.." — default label used when spec.label is empty.
std::string describe(const QuerySpec& spec);

/// The registry protocol serving `kind` when QuerySpec::protocol is empty:
/// kTopK → "combined", kKSelect → "kselect", kCountDistinct →
/// "count_distinct", kThreshold → "threshold_alert".
std::string default_protocol_for(QueryKind kind);

/// Parses the CLI query syntax shared by every binary:
///
///   KIND[:key=value[,key=value...]]
///
/// KIND is any spelling parse_query_kind accepts; keys are k, eps, window,
/// bound (threshold T), proto, seed, strict (0/1), label. Unset keys keep
/// QuerySpec defaults; protocol defaults to the kind's default. Throws
/// std::runtime_error with a usable message on malformed input.
QuerySpec parse_query_spec(const std::string& text);

}  // namespace topkmon
