// Query descriptors for the multi-query MonitoringEngine.
//
// A QuerySpec is everything one top-k-position monitoring query needs beyond
// the shared fleet: which protocol to run, its (k, ε), whether to validate
// strictly, and (optionally) an explicit seed. The engine returns a
// QueryHandle — a dense index usable to look up per-query results.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "model/window.hpp"

namespace topkmon {

/// Dense per-engine query index (assigned in add_query order).
using QueryHandle = std::uint32_t;

struct QuerySpec {
  std::string protocol = "combined";  ///< name from protocols/registry
  std::size_t k = 3;
  double epsilon = 0.1;
  bool strict = false;  ///< oracle-validate output/filters after every step

  /// Sliding-window length W (src/model/window.hpp): the query monitors
  /// top-k over per-node window maxima of the last W steps. kInfiniteWindow
  /// (0) = the paper's instantaneous semantics. One engine serves queries
  /// with mixed W over one fleet; each distinct W maintains one shared
  /// windowed view of the step snapshot, not one per query.
  std::size_t window = kInfiniteWindow;

  /// Protocol-side seed. Unset: derived deterministically from the engine
  /// seed and the handle via splitmix_combine, so distinct queries get
  /// independent randomness and results are reproducible. Set explicitly to
  /// make a query bit-identical to a standalone `Simulator` with that seed.
  std::optional<std::uint64_t> seed;

  /// Display name for stats tables; empty = synthesized from the fields.
  std::string label;
};

/// "protocol k=.. eps=.." — default label used when spec.label is empty.
std::string describe(const QuerySpec& spec);

}  // namespace topkmon
