// Query descriptors for the multi-query MonitoringEngine.
//
// A QuerySpec is everything one top-k-position monitoring query needs beyond
// the shared fleet: which protocol to run, its (k, ε), whether to validate
// strictly, and (optionally) an explicit seed. The engine returns a
// QueryHandle — a dense index usable to look up per-query results.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace topkmon {

/// Dense per-engine query index (assigned in add_query order).
using QueryHandle = std::uint32_t;

struct QuerySpec {
  std::string protocol = "combined";  ///< name from protocols/registry
  std::size_t k = 3;
  double epsilon = 0.1;
  bool strict = false;  ///< oracle-validate output/filters after every step

  /// Protocol-side seed. Unset: derived deterministically from the engine
  /// seed and the handle via splitmix_combine, so distinct queries get
  /// independent randomness and results are reproducible. Set explicitly to
  /// make a query bit-identical to a standalone `Simulator` with that seed.
  std::optional<std::uint64_t> seed;

  /// Display name for stats tables; empty = synthesized from the fields.
  std::string label;
};

/// "protocol k=.. eps=.." — default label used when spec.label is empty.
std::string describe(const QuerySpec& spec);

}  // namespace topkmon
