// EngineStats — aggregate + per-query statistics of a MonitoringEngine run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/query.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace topkmon {

/// One query's view of an engine run: its spec, its individually accounted
/// communication (RunResult, same semantics as Simulator::result) and its
/// final output set.
struct QueryStats {
  QueryHandle handle = 0;
  std::string label;
  std::string protocol;
  QueryKind kind = QueryKind::kTopK;
  std::size_t k = 0;
  double epsilon = 0.0;
  std::size_t window = 0;  ///< sliding-window length W; 0 = unwindowed
  RunResult run;
  OutputSet output;
};

struct EngineStats {
  std::vector<QueryStats> queries;  ///< in handle order

  std::uint64_t steps = 0;
  std::uint64_t query_messages = 0;         ///< Σ per-query accounted messages
  std::uint64_t shared_probe_messages = 0;  ///< once-per-step shared probing
  std::uint64_t total_messages = 0;         ///< query + shared
  std::uint64_t probe_calls = 0;           ///< probe_top requests served shared
  std::uint64_t probe_ranks_computed = 0;  ///< ranks computed (once per step)

  // Fault metrics (src/faults; all zero on the fault-free path).
  std::uint64_t messages_lost = 0;    ///< retransmissions, queries + shared probe
  std::uint64_t stale_reads = 0;      ///< fleet observations served from the past
  std::uint64_t recovery_rounds = 0;  ///< Σ per-query membership recoveries

  // Window metrics (src/model/window.hpp; zero without windowed queries).
  bool windowed = false;                   ///< any query with W > 0
  std::uint64_t window_expirations = 0;    ///< Σ expiries across window views

  double elapsed_sec = 0.0;
  double steps_per_sec = 0.0;        ///< engine time steps per wall second
  double query_steps_per_sec = 0.0;  ///< steps × Q per wall second (vs serial)

  /// The engine run folded into the shared StatsSnapshot shape
  /// (sim/stats_snapshot.hpp): `messages` is total_messages (query + shared
  /// probe), kinds/tags/rounds are summed over the per-query RunResults, the
  /// fault/window metrics are the aggregates above. Net counters stay zero —
  /// the engine is in-process.
  StatsSnapshot totals() const;

  /// Per-query breakdown table.
  Table per_query_table(const std::string& title) const;

  /// One-table aggregate summary.
  Table summary_table(const std::string& title) const;
};

}  // namespace topkmon
