// MonitoringEngine — shard-parallel serving of many concurrent top-k queries
// over one node fleet.
//
// The paper's protocols monitor a single query; a production deployment
// serves many simultaneous top-k-position queries with different (k, ε) over
// the same distributed streams. The engine multiplexes Q independent queries
// (each its own protocol instance, SimContext, filters, and output) over ONE
// shared stream of observation vectors, in lockstep per time step:
//
//   1. The shared generator produces the step's value snapshot once (not
//      once per query as with one-Simulator-per-query).
//   2. Queries, partitioned into shards, advance in parallel on the thread
//      pool; each shard owns its queries' Simulators/SimContexts.
//   3. probe_top traffic is batched through a SharedProbe: the global top-m
//      ranking is computed and accounted once per step and reused by every
//      query that probes (see engine/shared_probe.hpp; disable with
//      `share_probes = false` for per-query accounting identical to
//      standalone Simulators).
//   4. Sliding-window queries (QuerySpec::window, src/model/window.hpp) are
//      served from per-window views of the shared snapshot: each distinct W
//      maintains its window maxima, sort, σ cache, and probe channel once
//      per step, shared by every query of that W.
//
// Determinism: per-query seeds derive from the engine seed via
// splitmix_combine, and the shared probe is schedule-independent, so results
// are bit-identical for any thread count or shard partition.
//
// Adaptive adversarial generators see the AdversaryView of query 0 (the
// reference query); with many concurrent queries there is no single
// algorithm state to adapt against, so the adversary torments the first.
#pragma once

#include <memory>
#include <vector>

#include "engine/query.hpp"
#include "engine/shard.hpp"
#include "engine/shared_probe.hpp"
#include "engine/snapshot.hpp"
#include "engine/stats.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "sim/stats_snapshot.hpp"
#include "model/fleet_state.hpp"
#include "sim/stream.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "util/thread_pool.hpp"

namespace topkmon::telemetry {
class TelemetrySink;
}

namespace topkmon {

struct EngineConfig {
  std::size_t threads = 0;  ///< worker threads; 0 = hardware concurrency
  std::uint64_t seed = 1;
  bool share_probes = true;     ///< batch probe_top across queries per step
  bool record_history = false;  ///< keep snapshot history (offline OPT input)
  std::size_t shard_count = 0;  ///< number of shards; 0 = one per worker

  /// Fault model (src/faults): null = reliable static fleet. The engine
  /// injects churn/straggler effects into the shared snapshot ONCE per step
  /// (queries observe one degraded fleet, not Q independent ones), arms
  /// lossy-link accounting on every query channel and the shared probe, and
  /// fires each query's recovery hook on membership changes. An all-zero
  /// schedule reproduces the fault-free engine bit-identically.
  FleetSchedulePtr faults;
};

class MonitoringEngine {
 public:
  MonitoringEngine(EngineConfig cfg, std::unique_ptr<StreamGenerator> gen);
  ~MonitoringEngine();

  MonitoringEngine(const MonitoringEngine&) = delete;
  MonitoringEngine& operator=(const MonitoringEngine&) = delete;

  /// Registers a query; must happen before the first step (query churn is a
  /// planned extension). Returns the dense handle used for result lookup.
  QueryHandle add_query(QuerySpec spec);

  std::size_t query_count() const { return specs_.size(); }
  std::size_t n() const { return gen_->n(); }
  TimeStep time() const { return next_t_; }
  const EngineConfig& config() const { return cfg_; }

  /// Advances every query by one time step (t = 0 on the first call).
  void step();

  /// Runs `steps` time steps and returns aggregate + per-query statistics.
  EngineStats run(TimeStep steps);

  /// Statistics of everything executed so far.
  EngineStats stats() const;

  /// Per-query introspection (valid once the engine has started).
  const Simulator& query_sim(QueryHandle h) const;
  const OutputSet& output(QueryHandle h) const;

  /// The query's capability surface (sim/protocol.hpp), or nullptr when its
  /// protocol serves only top-k positions. Valid once the engine has started.
  const QueryCapabilities* capabilities(QueryHandle h) const {
    return query_sim(h).protocol().capabilities();
  }

  /// The query's capability surface iff it serves `kind`, else nullptr.
  const QueryCapabilities* capability(QueryHandle h, QueryKind kind) const {
    return capability_for(query_sim(h).protocol(), kind);
  }

  /// The query's k-select surface, or nullptr when its protocol does not
  /// serve QueryKind::kKSelect. Valid once the engine has started.
  const QueryCapabilities* kselect(QueryHandle h) const {
    return capability(h, QueryKind::kKSelect);
  }

  /// Shared snapshot history (empty unless cfg.record_history); recorded
  /// once per step — not once per query — and *pre-window*: the effective
  /// (possibly fault-degraded) vector before any per-window transform.
  /// Windowed offline baselines re-window it per W (offline/windowed_opt).
  const std::vector<ValueVector>& history() const { return history_; }

  /// Attaches a telemetry sink: registers the engine's metric namespace
  /// (engine.*, faults.*, window.*), arms the engine-loop profiler
  /// (generator / fault-inject / snapshot phases) plus one single-writer
  /// profiler per shard (Phase::kShardAdvance and the per-simulator inner
  /// phases), and mirrors aggregates into the registry after every step.
  /// Must precede the first step; the sink must outlive the engine.
  /// Publishing only reads existing counters, so results stay bit-identical.
  void attach_telemetry(telemetry::TelemetrySink* sink);

 private:
  void ensure_started();
  void publish_telemetry();

  /// The shared probe channel of one window length: queries with the same W
  /// observe the same windowed fleet, so their probe_top traffic batches;
  /// queries with different W ask about different value vectors and need
  /// separate channels. probes_[0] is always the unwindowed channel and is
  /// seeded exactly as the pre-window engine seeded its single probe, so
  /// all-unwindowed engines stay bit-identical.
  struct WindowProbe {
    std::size_t window;
    std::unique_ptr<SharedProbe> probe;
  };

  /// The probe channel serving window length `window`, created on first use.
  SharedProbe& probe_for(std::size_t window);

  EngineConfig cfg_;
  std::unique_ptr<StreamGenerator> gen_;
  Rng gen_rng_;
  std::vector<WindowProbe> probes_;
  StepSnapshot step_snapshot_;
  std::unique_ptr<FaultInjector> injector_;  ///< null = fault-free fleet

  std::vector<QuerySpec> specs_;                     ///< handle order
  std::vector<std::unique_ptr<Simulator>> pending_;  ///< until ensure_started

  std::vector<EngineShard> shards_;
  /// handle -> (shard index, position within shard); valid once started.
  std::vector<std::pair<std::size_t, std::size_t>> locate_;

  std::unique_ptr<ThreadPool> pool_;  ///< null = run shards inline
  /// SoA step state: the generator writes the true vector into staging(),
  /// the injector rewrites it into effective() + fault flags, in place.
  FleetState fleet_;
  std::vector<ValueVector> history_;
  TimeStep next_t_ = 0;
  double elapsed_sec_ = 0.0;
  bool started_ = false;

  /// Registry ids of the engine's metric namespace (attach_telemetry): the
  /// shared StatsSnapshot block plus the engine-specific aggregates.
  struct TelemetryIds {
    StatsSnapshotIds stats;
    telemetry::MetricId step, queries;
    telemetry::MetricId query_messages, shared_probe_messages, total_messages;
    telemetry::MetricId probe_calls, probe_ranks_computed;
  };
  telemetry::TelemetrySink* telemetry_ = nullptr;
  telemetry::StepProfiler* profiler_ = nullptr;  ///< engine-loop phases
  TelemetryIds ids_{};
};

}  // namespace topkmon
