// SharedProbe — the engine's cross-query probe_top batching channel.
//
// All queries of one engine observe the same value snapshot, and
// `probe_top(m)` asks a query-independent question: the global top-m by
// (value, id). So within a time step the engine answers it ONCE: the first
// query needing rank j pays for computing it (Lemma 2.6 sampling over the
// snapshot, accounted into this object's CommStats); every other query reads
// the cached ranking for free — in the Cormode-style costing the server
// already holds the answer, and node-side recomputation is free.
//
// Determinism across shard/thread schedules: a probe's *outcome* depends
// only on the snapshot (the true ranking), never on randomness — randomness
// only drives the message cost. The cache extends rank by rank under a
// mutex with a dedicated RNG, and the existence/sampling cost of computing
// rank j is a function of (snapshot, ranks 0..j−1, RNG state); since ranks
// are always computed in order 0, 1, 2, … regardless of which shard asks
// first, the RNG consumption — and therefore every counter — is identical
// for any interleaving. The per-step total cost is determined by the deepest
// rank any query requests, which is itself deterministic.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/comm_stats.hpp"
#include "sim/context.hpp"
#include "util/rng.hpp"

namespace topkmon {

class SharedProbe : public ProbeSharer {
 public:
  explicit SharedProbe(std::uint64_t seed);

  /// Arms the sharer for the next time step: clears the per-step cache and
  /// points it at the step's value snapshot (borrowed; must stay alive for
  /// the step). Called serially by the engine before shards run.
  void begin_step(const ValueVector* snapshot);

  /// ProbeSharer: cached global top-m, extending the cache as needed.
  std::vector<ProbeResult> top(std::size_t m) override;

  /// Messages/rounds booked for shared probing (the once-per-step cost).
  const CommStats& stats() const { return stats_; }

  /// Arms lossy-link accounting (src/faults) on the shared probe channel.
  /// Deterministic for any shard schedule: ranks extend in order 0, 1, 2, …
  /// under the cache mutex, so the loss RNG consumption is schedule-free.
  void enable_loss(double p, Rng rng) { stats_.enable_loss(p, std::move(rng)); }

  /// probe_top requests served through the shared channel, and ranks
  /// actually computed (once per step each). Both are schedule-independent:
  /// every query's call count is deterministic, and per step exactly the
  /// ranks up to the deepest request are computed regardless of which shard
  /// asks first. calls × m vs ranks_computed is the work collapsed.
  std::uint64_t calls() const { return calls_; }
  std::uint64_t ranks_computed() const { return ranks_computed_; }

 private:
  /// Computes ranks until the cache holds `m` entries (or the fleet is
  /// exhausted). Caller holds mu_.
  void extend_locked(std::size_t m);

  mutable std::mutex mu_;
  Rng rng_;
  const ValueVector* snapshot_ = nullptr;
  std::vector<ProbeResult> cache_;
  std::vector<bool> excluded_;
  bool exhausted_ = false;
  CommStats stats_;
  std::uint64_t calls_ = 0;
  std::uint64_t ranks_computed_ = 0;
};

}  // namespace topkmon
