// StepSnapshot — the engine's shared per-step view of the fleet.
//
// Every query of an engine observes the same observation vector, so
// value-only derived quantities are computed once per step and shared:
// the descending sort of the values, and σ(t) per distinct (k, ε) — the
// validator-side quantity every query's Simulator tracks, which standalone
// costs an O(n log n) sort + allocations per query per step. All cached
// quantities are pure functions of the snapshot (no randomness), so sharing
// is exact and schedule-independent.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "model/types.hpp"

namespace topkmon {

class StepSnapshot {
 public:
  /// Points the snapshot at the step's observation vector (borrowed; must
  /// outlive the step) and invalidates the caches. Called serially by the
  /// engine before shards run.
  void begin_step(const ValueVector& values);

  const ValueVector& values() const { return *values_; }

  /// σ(t) for (k, ε) on the current snapshot; cached, thread-safe, and
  /// identical to Oracle::sigma on the same values.
  std::size_t sigma(std::size_t k, double epsilon);

 private:
  const ValueVector* values_ = nullptr;
  ValueVector sorted_desc_;

  struct SigmaEntry {
    std::size_t k;
    double epsilon;
    std::size_t sigma;
  };
  std::mutex mu_;
  std::vector<SigmaEntry> sigma_cache_;  ///< few distinct (k, ε); linear scan
};

}  // namespace topkmon
