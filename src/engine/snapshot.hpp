// StepSnapshot — the engine's shared per-step view of the fleet.
//
// Every query of an engine observes the same observation vector, so
// value-only derived quantities are computed once per step and shared. With
// sliding-window queries (src/model/window.hpp) the snapshot carries one
// *view* per distinct window length W registered before the first step: the
// windowed value vector (per-node window maxima, maintained once per step —
// not once per query), its descending sort, and σ(t) per distinct (k, ε) —
// the validator-side quantity every query's Simulator tracks, which
// standalone costs an O(n log n) sort + allocations per query per step. The
// W = kInfiniteWindow view borrows the raw snapshot untouched. All cached
// quantities are pure functions of the snapshot (no randomness), so sharing
// is exact and schedule-independent.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "model/types.hpp"
#include "model/window.hpp"

namespace topkmon {

class StepSnapshot {
 public:
  StepSnapshot();

  /// Registers a window length (idempotent); must happen before the first
  /// begin_step. The unwindowed view (kInfiniteWindow) is always present.
  void add_window(std::size_t window, std::size_t n);

  /// Points the snapshot at the step's observation vector (borrowed; must
  /// outlive the step), advances every windowed view by one step, and
  /// invalidates the caches. Called serially by the engine before shards
  /// run, once per step with consecutive t starting at 0.
  void begin_step(TimeStep t, const ValueVector& values);

  /// The step's value vector as queries with window `window` observe it.
  const ValueVector& values(std::size_t window = kInfiniteWindow) const;

  /// The window model behind a view; null for kInfiniteWindow. Stable across
  /// steps — per-query simulators hold it as their window channel.
  const WindowedValueModel* model(std::size_t window) const;

  /// σ(t) for (k, ε) on the view of `window`; cached, thread-safe, and
  /// identical to Oracle::sigma on the same values.
  std::size_t sigma(std::size_t window, std::size_t k, double epsilon);

  /// Window expiries across all views and steps so far (fleet-level metric).
  std::uint64_t window_expirations() const;

 private:
  struct View {
    std::size_t window = kInfiniteWindow;
    std::unique_ptr<WindowedValueModel> model;  ///< null for kInfiniteWindow
    const ValueVector* values = nullptr;
    ValueVector sorted_desc;

    struct SigmaEntry {
      std::size_t k;
      double epsilon;
      std::size_t sigma;
    };
    std::vector<SigmaEntry> sigma_cache;  ///< few distinct (k, ε); linear scan
  };

  View& view_for(std::size_t window);
  const View& view_for(std::size_t window) const;

  std::vector<View> views_;  ///< views_[0] is always the unwindowed view
  bool started_ = false;
  std::mutex mu_;  ///< guards the sigma caches (shards query concurrently)
};

}  // namespace topkmon
