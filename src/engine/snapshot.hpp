// StepSnapshot — the engine's shared per-step view of the fleet.
//
// Every query of an engine observes the same observation vector, so
// value-only derived quantities are computed once per step and shared. With
// sliding-window queries (src/model/window.hpp) the snapshot carries one
// *view* per distinct window length W registered before the first step. A
// view owns a FleetState: the per-node window maxima rings (maintained once
// per step — not once per query), the incremental TopKOrder that replaces
// the former per-step descending sort, and σ(t) per distinct (k, ε) — the
// validator-side quantity every query's Simulator tracks, which standalone
// costs an O(n log n) sort + allocations per query per step. The
// W = kInfiniteWindow view borrows the raw snapshot untouched. All cached
// quantities are pure functions of the snapshot (no randomness), so sharing
// is exact and schedule-independent. Steady-state begin_step allocates
// nothing: view buffers are preallocated and the order repairs in place.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "model/fleet_state.hpp"
#include "model/types.hpp"
#include "model/window.hpp"

namespace topkmon {

class StepSnapshot {
 public:
  /// One per-window view; stable address once the snapshot started (shards
  /// cache pointers to their queries' views).
  struct View {
    explicit View(std::size_t window) : window(window) {}

    /// The step's value vector as queries of this window observe it.
    const ValueVector& current() const { return *values; }

    std::size_t window = kInfiniteWindow;
    std::unique_ptr<FleetState> fleet;  ///< null for kInfiniteWindow
    const ValueVector* values = nullptr;

    struct SigmaEntry {
      std::size_t k;
      double epsilon;
      std::size_t sigma;
    };
    std::vector<SigmaEntry> sigma_cache;  ///< few distinct (k, ε); linear scan
    SortedValues* order = nullptr;        ///< set once n is known (first step)
  };

  StepSnapshot();

  /// Registers a window length (idempotent); must happen before the first
  /// begin_step. The unwindowed view (kInfiniteWindow) is always present.
  void add_window(std::size_t window, std::size_t n);

  /// Points the snapshot at the step's observation vector (borrowed; must
  /// outlive the step), advances every windowed view by one step, repairs
  /// each view's incremental order, and invalidates the σ caches. Called
  /// serially by the engine before shards run, once per step with
  /// consecutive t starting at 0.
  void begin_step(TimeStep t, const ValueVector& values);

  /// The step's value vector as queries with window `window` observe it.
  const ValueVector& values(std::size_t window = kInfiniteWindow) const;

  /// Stable handle to a window's view — shards resolve it once and then
  /// read `view->current()` per step without the per-query window lookup.
  const View* view(std::size_t window) const;

  /// The window model behind a view; null for kInfiniteWindow. Stable across
  /// steps — per-query simulators hold it as their window channel.
  const WindowedValueModel* model(std::size_t window) const;

  /// σ(t) for (k, ε) on the view of `window`; cached, thread-safe, and
  /// identical to Oracle::sigma on the same values.
  std::size_t sigma(std::size_t window, std::size_t k, double epsilon);

  /// Window expiries across all views and steps so far (fleet-level metric).
  std::uint64_t window_expirations() const;

 private:
  View& view_for(std::size_t window);
  const View& view_for(std::size_t window) const;

  std::vector<std::unique_ptr<View>> views_;  ///< [0] is the unwindowed view
  std::size_t n_ = 0;  ///< fleet size (fixed by the first begin_step)
  bool started_ = false;
  std::mutex mu_;  ///< guards the sigma caches (shards query concurrently)
};

}  // namespace topkmon
