#include "engine/query.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace topkmon {

std::string default_protocol_for(QueryKind kind) {
  switch (kind) {
    case QueryKind::kTopK:
      return "combined";
    case QueryKind::kKSelect:
      return "kselect";
    case QueryKind::kCountDistinct:
      return "count_distinct";
    case QueryKind::kThreshold:
      return "threshold_alert";
  }
  throw std::runtime_error("unknown query kind");
}

namespace {

[[noreturn]] void bad_query(const std::string& text, const std::string& why) {
  throw std::runtime_error(
      "bad --query '" + text + "': " + why +
      " (expected KIND[:key=value,...] with KIND one of topk|kselect|distinct|"
      "threshold and keys k, eps, window, bound, proto, seed, strict, label)");
}

std::uint64_t parse_u64(const std::string& text, const std::string& key,
                        const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || end == nullptr || *end != '\0') {
    bad_query(text, "key '" + key + "' needs an unsigned integer, got '" + value + "'");
  }
  return static_cast<std::uint64_t>(v);
}

double parse_f64(const std::string& text, const std::string& key,
                 const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0') {
    bad_query(text, "key '" + key + "' needs a number, got '" + value + "'");
  }
  return v;
}

}  // namespace

QuerySpec parse_query_spec(const std::string& text) {
  const std::size_t colon = text.find(':');
  const std::string kind_text = text.substr(0, colon);
  const std::optional<QueryKind> kind = parse_query_kind(kind_text);
  if (!kind) {
    bad_query(text, "unknown query kind '" + kind_text + "'");
  }

  QuerySpec spec;
  spec.kind = *kind;
  spec.protocol = default_protocol_for(*kind);

  std::string params = colon == std::string::npos ? "" : text.substr(colon + 1);
  std::size_t pos = 0;
  while (pos < params.size()) {
    std::size_t comma = params.find(',', pos);
    if (comma == std::string::npos) comma = params.size();
    const std::string item = params.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      bad_query(text, "expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "k") {
      spec.k = static_cast<std::size_t>(parse_u64(text, key, value));
    } else if (key == "eps") {
      spec.epsilon = parse_f64(text, key, value);
    } else if (key == "window") {
      spec.window = static_cast<std::size_t>(parse_u64(text, key, value));
    } else if (key == "bound") {
      spec.threshold = parse_u64(text, key, value);
    } else if (key == "proto") {
      if (value.empty()) bad_query(text, "key 'proto' needs a protocol name");
      spec.protocol = value;
    } else if (key == "seed") {
      spec.seed = parse_u64(text, key, value);
    } else if (key == "strict") {
      spec.strict = parse_u64(text, key, value) != 0;
    } else if (key == "label") {
      spec.label = value;
    } else {
      bad_query(text, "unknown key '" + key + "'");
    }
  }
  if (spec.kind == QueryKind::kThreshold && spec.threshold > kMaxObservableValue) {
    bad_query(text, "bound exceeds the observable domain");
  }
  return spec;
}

}  // namespace topkmon
