// EngineShard — one worker's slice of the query set.
//
// A shard owns the Simulators (and through them the SimContexts) of the
// queries assigned to it and advances them sequentially within a time step;
// different shards run concurrently on the thread pool. Each query carries
// the window length of its view; on the first step the shard resolves each
// query's view to a stable StepSnapshot::View pointer, so the per-step inner
// loop hands every simulator its view's current vector with zero lookups or
// vector construction. Because every query carries its own derived RNG
// streams and the only cross-shard touchpoints (SharedProbe, StepSnapshot
// sigma cache) are schedule-independent, results do not depend on the shard
// partition or thread count.
#pragma once

#include <memory>
#include <vector>

#include "engine/query.hpp"
#include "engine/snapshot.hpp"
#include "sim/simulator.hpp"
#include "telemetry/profiler.hpp"

namespace topkmon {

class EngineShard {
 public:
  void add(QueryHandle handle, std::size_t window, std::unique_ptr<Simulator> sim);

  /// Advances every owned query by one step on its window's view of the
  /// shared snapshot.
  void advance(const StepSnapshot& snapshot);

  /// Arms per-phase profiling: the shard times its whole advance under
  /// Phase::kShardAdvance and hands the (single-writer — shards never share
  /// profilers) profiler to each owned simulator for the inner phases.
  void set_profiler(telemetry::StepProfiler* prof);

  std::size_t size() const { return sims_.size(); }
  QueryHandle handle(std::size_t i) const { return handles_[i]; }
  Simulator& sim(std::size_t i) { return *sims_[i]; }
  const Simulator& sim(std::size_t i) const { return *sims_[i]; }

 private:
  std::vector<QueryHandle> handles_;
  std::vector<std::size_t> windows_;  ///< per query, parallel to sims_
  std::vector<std::unique_ptr<Simulator>> sims_;
  /// Per query: its window's snapshot view, resolved once on the first step.
  std::vector<const StepSnapshot::View*> views_;
  telemetry::StepProfiler* profiler_ = nullptr;
};

}  // namespace topkmon
