#include "engine/snapshot.hpp"

#include "util/assert.hpp"

namespace topkmon {

StepSnapshot::StepSnapshot() {
  views_.push_back(std::make_unique<View>(kInfiniteWindow));
}

void StepSnapshot::add_window(std::size_t window, std::size_t n) {
  if (window == kInfiniteWindow) return;
  TOPKMON_ASSERT_MSG(!started_, "windows must register before the first step");
  for (const auto& v : views_) {
    if (v->window == window) return;
  }
  auto v = std::make_unique<View>(window);
  v->fleet = std::make_unique<FleetState>(n, window);
  views_.push_back(std::move(v));
}

void StepSnapshot::begin_step(TimeStep t, const ValueVector& values) {
  if (!started_) {
    started_ = true;
    n_ = values.size();
    for (auto& v : views_) {
      if (!v->fleet) {
        v->fleet = std::make_unique<FleetState>(n_, kInfiniteWindow);
      }
      v->order = &v->fleet->value_order();
    }
  }
  for (auto& v : views_) {
    WindowedValueModel* wm = v->fleet->window();
    v->values = wm ? &wm->push(t, values) : &values;
    // Incremental repair replaces the former per-step assign + full sort;
    // quiescent steps cost one diff pass per distinct window.
    v->order->update(*v->values);
    v->sigma_cache.clear();
  }
}

StepSnapshot::View& StepSnapshot::view_for(std::size_t window) {
  for (auto& v : views_) {
    if (v->window == window) return *v;
  }
  TOPKMON_ASSERT_MSG(false, "window length was never registered");
  return *views_.front();  // unreachable
}

const StepSnapshot::View& StepSnapshot::view_for(std::size_t window) const {
  return const_cast<StepSnapshot*>(this)->view_for(window);
}

const ValueVector& StepSnapshot::values(std::size_t window) const {
  const View& v = view_for(window);
  TOPKMON_ASSERT(v.values != nullptr);
  return *v.values;
}

const StepSnapshot::View* StepSnapshot::view(std::size_t window) const {
  return &view_for(window);
}

const WindowedValueModel* StepSnapshot::model(std::size_t window) const {
  const View& v = view_for(window);
  return v.fleet ? v.fleet->window() : nullptr;
}

std::size_t StepSnapshot::sigma(std::size_t window, std::size_t k, double epsilon) {
  View& v = view_for(window);
  TOPKMON_ASSERT(v.order != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : v.sigma_cache) {
    if (e.k == k && e.epsilon == epsilon) return e.sigma;
  }
  const std::size_t s = v.order->sigma(k, epsilon);
  v.sigma_cache.push_back({k, epsilon, s});
  return s;
}

std::uint64_t StepSnapshot::window_expirations() const {
  std::uint64_t total = 0;
  for (const auto& v : views_) {
    if (v->fleet && v->fleet->window()) {
      total += v->fleet->window()->total_expirations();
    }
  }
  return total;
}

}  // namespace topkmon
