#include "engine/snapshot.hpp"

#include <algorithm>
#include <functional>

#include "model/oracle.hpp"
#include "util/assert.hpp"

namespace topkmon {

StepSnapshot::StepSnapshot() {
  views_.emplace_back();  // the unwindowed view
}

void StepSnapshot::add_window(std::size_t window, std::size_t n) {
  if (window == kInfiniteWindow) return;
  TOPKMON_ASSERT_MSG(!started_, "windows must register before the first step");
  for (const View& v : views_) {
    if (v.window == window) return;
  }
  View v;
  v.window = window;
  v.model = std::make_unique<WindowedValueModel>(n, window);
  views_.push_back(std::move(v));
}

void StepSnapshot::begin_step(TimeStep t, const ValueVector& values) {
  started_ = true;
  for (View& v : views_) {
    v.values = v.model ? &v.model->push(t, values) : &values;
    v.sorted_desc.assign(v.values->begin(), v.values->end());
    std::sort(v.sorted_desc.begin(), v.sorted_desc.end(), std::greater<Value>());
    v.sigma_cache.clear();
  }
}

StepSnapshot::View& StepSnapshot::view_for(std::size_t window) {
  for (View& v : views_) {
    if (v.window == window) return v;
  }
  TOPKMON_ASSERT_MSG(false, "window length was never registered");
  return views_.front();  // unreachable
}

const StepSnapshot::View& StepSnapshot::view_for(std::size_t window) const {
  return const_cast<StepSnapshot*>(this)->view_for(window);
}

const ValueVector& StepSnapshot::values(std::size_t window) const {
  const View& v = view_for(window);
  TOPKMON_ASSERT(v.values != nullptr);
  return *v.values;
}

const WindowedValueModel* StepSnapshot::model(std::size_t window) const {
  return view_for(window).model.get();
}

std::size_t StepSnapshot::sigma(std::size_t window, std::size_t k, double epsilon) {
  View& v = view_for(window);
  TOPKMON_ASSERT(v.values != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : v.sigma_cache) {
    if (e.k == k && e.epsilon == epsilon) return e.sigma;
  }
  const std::size_t s = Oracle::sigma_sorted(v.sorted_desc, k, epsilon);
  v.sigma_cache.push_back({k, epsilon, s});
  return s;
}

std::uint64_t StepSnapshot::window_expirations() const {
  std::uint64_t total = 0;
  for (const View& v : views_) {
    if (v.model) total += v.model->total_expirations();
  }
  return total;
}

}  // namespace topkmon
