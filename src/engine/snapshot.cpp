#include "engine/snapshot.hpp"

#include <algorithm>
#include <functional>

#include "model/oracle.hpp"
#include "util/assert.hpp"

namespace topkmon {

void StepSnapshot::begin_step(const ValueVector& values) {
  values_ = &values;
  sorted_desc_.assign(values.begin(), values.end());
  std::sort(sorted_desc_.begin(), sorted_desc_.end(), std::greater<Value>());
  sigma_cache_.clear();
}

std::size_t StepSnapshot::sigma(std::size_t k, double epsilon) {
  TOPKMON_ASSERT(values_ != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : sigma_cache_) {
    if (e.k == k && e.epsilon == epsilon) return e.sigma;
  }
  const std::size_t s = Oracle::sigma_sorted(sorted_desc_, k, epsilon);
  sigma_cache_.push_back({k, epsilon, s});
  return s;
}

}  // namespace topkmon
