#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "protocols/registry.hpp"
#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"

namespace topkmon {

MonitoringEngine::MonitoringEngine(EngineConfig cfg,
                                   std::unique_ptr<StreamGenerator> gen)
    : cfg_(cfg),
      gen_(std::move(gen)),
      // Same derivation as Simulator's generator stream, so a Q = 1 engine
      // seeded like a Simulator replays the identical stream.
      gen_rng_(Rng::derive(cfg.seed, /*stream_id=*/0x5EED)),
      fleet_(gen_ && gen_->n() > 0 ? gen_->n() : 1) {
  TOPKMON_ASSERT(gen_ != nullptr);
  TOPKMON_ASSERT(gen_->n() > 0);
  if (cfg_.faults) {
    TOPKMON_ASSERT_MSG(cfg_.faults->n() == gen_->n(),
                       "fault schedule sized for wrong fleet");
    injector_ = std::make_unique<FaultInjector>(cfg_.faults);
  }
  probe_for(kInfiniteWindow);  // always present, pre-window seeding
}

SharedProbe& MonitoringEngine::probe_for(std::size_t window) {
  for (WindowProbe& wp : probes_) {
    if (wp.window == window) return *wp.probe;
  }
  TOPKMON_ASSERT_MSG(!started_, "probe channels are fixed once the engine started");
  // The unwindowed channel keeps the historical seeding; windowed channels
  // derive theirs from (engine seed, W) so distinct windows get independent
  // sampling randomness while staying reproducible. The 0x57EB domain salt
  // keeps probe seeds disjoint from the per-query sim seeds
  // splitmix_combine(cfg_.seed, handle) — a handle numerically equal to a
  // window length must not yield correlated RNG streams.
  const std::uint64_t probe_seed =
      window == kInfiniteWindow
          ? cfg_.seed
          : splitmix_combine(splitmix_combine(cfg_.seed, 0x57EB), window);
  probes_.push_back({window, std::make_unique<SharedProbe>(probe_seed)});
  SharedProbe& probe = *probes_.back().probe;
  if (cfg_.faults) {
    probe.enable_loss(cfg_.faults->loss(),
                      Rng::derive(probe_seed, /*stream_id=*/0x1055));
  }
  return probe;
}

MonitoringEngine::~MonitoringEngine() = default;

QueryHandle MonitoringEngine::add_query(QuerySpec spec) {
  TOPKMON_ASSERT_MSG(!started_, "add_query after the engine started");
  const auto handle = static_cast<QueryHandle>(specs_.size());
  if (spec.protocol.empty()) {
    spec.protocol = default_protocol_for(spec.kind);
  }
  if (spec.label.empty()) {
    spec.label = describe(spec);
  }
  SimConfig sim_cfg;
  sim_cfg.k = spec.k;
  sim_cfg.epsilon = spec.epsilon;
  sim_cfg.seed = spec.seed ? *spec.seed : splitmix_combine(cfg_.seed, handle);
  sim_cfg.strict = spec.strict;
  sim_cfg.threshold = spec.threshold;
  sim_cfg.record_history = false;  // history is shared, kept engine-side
  sim_cfg.window = kInfiniteWindow;  // windowing is engine-side, per distinct W
  auto protocol = make_protocol(spec.protocol);
  // The protocol must actually answer the question the spec asks.
  const bool kind_ok = spec.kind == QueryKind::kTopK
                           ? serves_topk(*protocol)
                           : capability_for(*protocol, spec.kind) != nullptr;
  if (!kind_ok) {
    throw std::runtime_error("protocol '" + spec.protocol + "' does not serve " +
                             std::string(to_string(spec.kind)) + " queries");
  }
  auto sim = std::make_unique<Simulator>(sim_cfg, gen_->n(), std::move(protocol));
  step_snapshot_.add_window(spec.window, gen_->n());
  if (cfg_.share_probes) {
    sim->context().set_probe_sharer(&probe_for(spec.window));
  }
  // σ(t) is a pure function of the query's view of the shared snapshot;
  // memoize it per step per distinct (W, k, ε) instead of per query.
  sim->set_sigma_hook([this, window = spec.window](std::size_t k, double epsilon) {
    return step_snapshot_.sigma(window, k, epsilon);
  });
  if (cfg_.faults) {
    // Loss accounting + membership recovery per query; value injection stays
    // engine-side (the shared snapshot is transformed once per step).
    sim->attach_fault_channel(cfg_.faults);
  }
  // Expiry dispatch + metric come from the shared per-window model; the
  // value transform itself stays engine-side (see step()).
  sim->attach_window_channel(step_snapshot_.model(spec.window));
  pending_.push_back(std::move(sim));
  specs_.push_back(std::move(spec));
  return handle;
}

void MonitoringEngine::ensure_started() {
  if (started_) return;
  TOPKMON_ASSERT_MSG(!specs_.empty(), "engine needs at least one query");

  std::size_t threads = cfg_.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  std::size_t shard_count = cfg_.shard_count;
  if (shard_count == 0) {
    shard_count = std::min(specs_.size(), threads);
  }
  shard_count = std::max<std::size_t>(1, std::min(shard_count, specs_.size()));

  shards_.resize(shard_count);
  locate_.resize(specs_.size());
  for (std::size_t q = 0; q < pending_.size(); ++q) {
    const std::size_t s = q % shard_count;
    locate_[q] = {s, shards_[s].size()};
    shards_[s].add(static_cast<QueryHandle>(q), specs_[q].window,
                   std::move(pending_[q]));
  }
  pending_.clear();

  if (threads > 1 && shard_count > 1) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  if (telemetry_ != nullptr) {
    // One single-writer profiler per shard; export merges them with the
    // engine-loop profiler (TelemetrySink::merged_profiler).
    telemetry_->resize_shard_profilers(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      shards_[s].set_profiler(&telemetry_->shard_profiler(s));
    }
  }
  started_ = true;
}

void MonitoringEngine::attach_telemetry(telemetry::TelemetrySink* sink) {
  TOPKMON_ASSERT(sink != nullptr);
  TOPKMON_ASSERT_MSG(!started_ && next_t_ == 0,
                     "telemetry must attach before the first step");
  telemetry_ = sink;
  profiler_ = &sink->profiler();

  telemetry::MetricsRegistry& reg = sink->registry();
  ids_.stats = register_stats_metrics(reg);
  ids_.step = reg.gauge("engine.step");
  ids_.queries = reg.gauge("engine.queries");
  ids_.query_messages = reg.counter("engine.query_messages");
  ids_.shared_probe_messages = reg.counter("engine.shared_probe_messages");
  ids_.total_messages = reg.counter("engine.total_messages");
  ids_.probe_calls = reg.counter("engine.probe_calls");
  ids_.probe_ranks_computed = reg.counter("engine.probe_ranks_computed");

  if (sink->timeseries().channel_count() == 0) {
    sink->timeseries().add_channel("engine.total_messages", ids_.total_messages,
                                   reg);
    sink->timeseries().add_channel("engine.shared_probe_messages",
                                   ids_.shared_probe_messages, reg);
    sink->timeseries().add_channel("window.expirations",
                                   ids_.stats.window_expirations, reg);
  }
}

void MonitoringEngine::publish_telemetry() {
  // Aggregates are summed straight off the per-query CommStats and shared
  // probes — no EngineStats construction (that allocates), no RNG, no
  // messages — so per-step publishing keeps the step loop allocation-free
  // and the counters bit-identical.
  telemetry::MetricsRegistry& reg = telemetry_->registry();
  StatsSnapshot snap;  // POD on the stack — no heap traffic
  std::uint64_t query_messages = 0;
  for (const EngineShard& shard : shards_) {
    for (std::size_t i = 0; i < shard.size(); ++i) {
      const CommStats& s = shard.sim(i).context().stats();
      query_messages += s.total();
      snap += StatsSnapshot::from(s);
    }
  }
  std::uint64_t probe_messages = 0, probe_calls = 0, ranks = 0;
  for (const WindowProbe& wp : probes_) {
    probe_messages += wp.probe->stats().total();
    snap += StatsSnapshot::from(wp.probe->stats());
    probe_calls += wp.probe->calls();
    ranks += wp.probe->ranks_computed();
  }
  snap.messages = query_messages + probe_messages;
  snap.stale_reads = injector_ ? injector_->total_stale() : 0;
  snap.window_expirations = step_snapshot_.window_expirations();
  publish_stats(reg, ids_.stats, snap);
  reg.set(ids_.step, static_cast<std::uint64_t>(next_t_));
  reg.set(ids_.queries, specs_.size());
  reg.set(ids_.query_messages, query_messages);
  reg.set(ids_.shared_probe_messages, probe_messages);
  reg.set(ids_.total_messages, query_messages + probe_messages);
  reg.set(ids_.probe_calls, probe_calls);
  reg.set(ids_.probe_ranks_computed, ranks);
  telemetry_->timeseries().sample(reg, static_cast<std::uint64_t>(next_t_));
}

void MonitoringEngine::step() {
  ensure_started();

  // (1) One snapshot per step, shared by all queries, written in place into
  // the fleet's staging buffer. The adaptive-adversary view is query 0's
  // state (see header).
  {
    TOPKMON_PHASE_SCOPE(profiler_, telemetry::Phase::kGenerator);
    if (next_t_ == 0) {
      gen_->init(fleet_.staging(), gen_rng_);
    } else {
      const Simulator& ref = query_sim(0);
      const AdversaryView view{ref.context().nodes(), &ref.protocol().output(),
                               ref.config().k, ref.config().epsilon};
      gen_->step(next_t_, view, fleet_.staging(), gen_rng_);
    }
  }

  // (2) Fault injection on the shared snapshot path: staging keeps the
  // true stream (the generator evolves undisturbed); the fleet — and every
  // query — observes the effective vector.
  const ValueVector* eff = &fleet_.staging();
  if (injector_) {
    TOPKMON_PHASE_SCOPE(profiler_, telemetry::Phase::kFaultInject);
    eff = &injector_->transform(next_t_, fleet_.staging(), fleet_);
  }

  // (3) Arm the per-step caches — the snapshot advances every windowed view
  // exactly once, and each probe channel points at its window's vector —
  // then advance all shards.
  {
    TOPKMON_PHASE_SCOPE(profiler_, telemetry::Phase::kSnapshotBegin);
    step_snapshot_.begin_step(next_t_, *eff);
    if (cfg_.share_probes) {
      for (WindowProbe& wp : probes_) {
        wp.probe->begin_step(&step_snapshot_.values(wp.window));
      }
    }
  }
  if (pool_) {
    parallel_for(*pool_, shards_.size(),
                 [&](std::size_t s) { shards_[s].advance(step_snapshot_); });
  } else {
    for (auto& shard : shards_) {
      shard.advance(step_snapshot_);
    }
  }

  if (cfg_.record_history) {
    history_.push_back(*eff);
  }
  if (telemetry_ != nullptr) {
    publish_telemetry();
  }
  ++next_t_;
}

EngineStats MonitoringEngine::run(TimeStep steps) {
  const auto start = std::chrono::steady_clock::now();
  for (TimeStep i = 0; i < steps; ++i) {
    step();
  }
  elapsed_sec_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats();
}

EngineStats MonitoringEngine::stats() const {
  EngineStats s;
  s.steps = static_cast<std::uint64_t>(next_t_);
  s.queries.reserve(specs_.size());
  for (std::size_t q = 0; q < specs_.size(); ++q) {
    const Simulator& sim = query_sim(static_cast<QueryHandle>(q));
    QueryStats qs;
    qs.handle = static_cast<QueryHandle>(q);
    qs.label = specs_[q].label;
    qs.protocol = specs_[q].protocol;
    qs.kind = specs_[q].kind;
    qs.k = specs_[q].k;
    qs.epsilon = specs_[q].epsilon;
    qs.window = specs_[q].window;
    qs.run = sim.result();
    qs.output = sim.protocol().output();
    s.query_messages += qs.run.messages;
    s.messages_lost += qs.run.messages_lost;
    s.recovery_rounds += qs.run.recovery_rounds;
    s.windowed |= specs_[q].window != kInfiniteWindow;
    s.queries.push_back(std::move(qs));
  }
  for (const WindowProbe& wp : probes_) {
    s.shared_probe_messages += wp.probe->stats().total();
    s.messages_lost += wp.probe->stats().messages_lost();
    s.probe_calls += wp.probe->calls();
    s.probe_ranks_computed += wp.probe->ranks_computed();
  }
  s.stale_reads = injector_ ? injector_->total_stale() : 0;
  s.window_expirations = step_snapshot_.window_expirations();
  s.total_messages = s.query_messages + s.shared_probe_messages;
  s.elapsed_sec = elapsed_sec_;
  if (elapsed_sec_ > 0.0) {
    s.steps_per_sec = static_cast<double>(s.steps) / elapsed_sec_;
    s.query_steps_per_sec =
        static_cast<double>(s.steps) * static_cast<double>(specs_.size()) /
        elapsed_sec_;
  }
  return s;
}

const Simulator& MonitoringEngine::query_sim(QueryHandle h) const {
  TOPKMON_ASSERT(h < specs_.size());
  if (!started_) {
    return *pending_[h];
  }
  const auto [shard, pos] = locate_[h];
  return shards_[shard].sim(pos);
}

const OutputSet& MonitoringEngine::output(QueryHandle h) const {
  return query_sim(h).protocol().output();
}

}  // namespace topkmon
