#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "protocols/registry.hpp"
#include "util/assert.hpp"

namespace topkmon {

MonitoringEngine::MonitoringEngine(EngineConfig cfg,
                                   std::unique_ptr<StreamGenerator> gen)
    : cfg_(cfg),
      gen_(std::move(gen)),
      // Same derivation as Simulator's generator stream, so a Q = 1 engine
      // seeded like a Simulator replays the identical stream.
      gen_rng_(Rng::derive(cfg.seed, /*stream_id=*/0x5EED)),
      shared_probe_(cfg.seed) {
  TOPKMON_ASSERT(gen_ != nullptr);
  TOPKMON_ASSERT(gen_->n() > 0);
  snapshot_.resize(gen_->n());
  if (cfg_.faults) {
    TOPKMON_ASSERT_MSG(cfg_.faults->n() == gen_->n(),
                       "fault schedule sized for wrong fleet");
    injector_ = std::make_unique<FaultInjector>(cfg_.faults);
    shared_probe_.enable_loss(cfg_.faults->loss(),
                              Rng::derive(cfg_.seed, /*stream_id=*/0x1055));
  }
}

MonitoringEngine::~MonitoringEngine() = default;

QueryHandle MonitoringEngine::add_query(QuerySpec spec) {
  TOPKMON_ASSERT_MSG(!started_, "add_query after the engine started");
  const auto handle = static_cast<QueryHandle>(specs_.size());
  if (spec.label.empty()) {
    spec.label = describe(spec);
  }
  SimConfig sim_cfg;
  sim_cfg.k = spec.k;
  sim_cfg.epsilon = spec.epsilon;
  sim_cfg.seed = spec.seed ? *spec.seed : splitmix_combine(cfg_.seed, handle);
  sim_cfg.strict = spec.strict;
  sim_cfg.record_history = false;  // history is shared, kept engine-side
  auto sim = std::make_unique<Simulator>(sim_cfg, gen_->n(),
                                         make_protocol(spec.protocol));
  if (cfg_.share_probes) {
    sim->context().set_probe_sharer(&shared_probe_);
  }
  // σ(t) is a pure function of the shared snapshot; memoize it per step per
  // distinct (k, ε) instead of recomputing per query.
  sim->set_sigma_hook([this](std::size_t k, double epsilon) {
    return step_snapshot_.sigma(k, epsilon);
  });
  if (cfg_.faults) {
    // Loss accounting + membership recovery per query; value injection stays
    // engine-side (the shared snapshot is transformed once per step).
    sim->attach_fault_channel(cfg_.faults);
  }
  pending_.push_back(std::move(sim));
  specs_.push_back(std::move(spec));
  return handle;
}

void MonitoringEngine::ensure_started() {
  if (started_) return;
  TOPKMON_ASSERT_MSG(!specs_.empty(), "engine needs at least one query");

  std::size_t threads = cfg_.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  std::size_t shard_count = cfg_.shard_count;
  if (shard_count == 0) {
    shard_count = std::min(specs_.size(), threads);
  }
  shard_count = std::max<std::size_t>(1, std::min(shard_count, specs_.size()));

  shards_.resize(shard_count);
  locate_.resize(specs_.size());
  for (std::size_t q = 0; q < pending_.size(); ++q) {
    const std::size_t s = q % shard_count;
    locate_[q] = {s, shards_[s].size()};
    shards_[s].add(static_cast<QueryHandle>(q), std::move(pending_[q]));
  }
  pending_.clear();

  if (threads > 1 && shard_count > 1) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  started_ = true;
}

void MonitoringEngine::step() {
  ensure_started();

  // (1) One snapshot per step, shared by all queries. The adaptive-adversary
  // view is query 0's state (see header).
  if (next_t_ == 0) {
    gen_->init(snapshot_, gen_rng_);
  } else {
    const Simulator& ref = query_sim(0);
    const AdversaryView view{ref.context().nodes(), &ref.protocol().output(),
                             ref.config().k, ref.config().epsilon};
    gen_->step(next_t_, view, snapshot_, gen_rng_);
  }

  // (2) Fault injection on the shared snapshot path: snapshot_ keeps the
  // true stream (the generator evolves undisturbed); the fleet — and every
  // query — observes the effective vector.
  const ValueVector& eff =
      injector_ ? injector_->transform(next_t_, snapshot_) : snapshot_;

  // (3) Arm the per-step caches, then advance all shards.
  step_snapshot_.begin_step(eff);
  if (cfg_.share_probes) {
    shared_probe_.begin_step(&eff);
  }
  if (pool_) {
    parallel_for(*pool_, shards_.size(),
                 [&](std::size_t s) { shards_[s].step(eff); });
  } else {
    for (auto& shard : shards_) {
      shard.step(eff);
    }
  }

  if (cfg_.record_history) {
    history_.push_back(eff);
  }
  ++next_t_;
}

EngineStats MonitoringEngine::run(TimeStep steps) {
  const auto start = std::chrono::steady_clock::now();
  for (TimeStep i = 0; i < steps; ++i) {
    step();
  }
  elapsed_sec_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats();
}

EngineStats MonitoringEngine::stats() const {
  EngineStats s;
  s.steps = static_cast<std::uint64_t>(next_t_);
  s.queries.reserve(specs_.size());
  for (std::size_t q = 0; q < specs_.size(); ++q) {
    const Simulator& sim = query_sim(static_cast<QueryHandle>(q));
    QueryStats qs;
    qs.handle = static_cast<QueryHandle>(q);
    qs.label = specs_[q].label;
    qs.protocol = specs_[q].protocol;
    qs.k = specs_[q].k;
    qs.epsilon = specs_[q].epsilon;
    qs.run = sim.result();
    qs.output = sim.protocol().output();
    s.query_messages += qs.run.messages;
    s.messages_lost += qs.run.messages_lost;
    s.recovery_rounds += qs.run.recovery_rounds;
    s.queries.push_back(std::move(qs));
  }
  s.shared_probe_messages = shared_probe_.stats().total();
  s.messages_lost += shared_probe_.stats().messages_lost();
  s.stale_reads = injector_ ? injector_->total_stale() : 0;
  s.total_messages = s.query_messages + s.shared_probe_messages;
  s.probe_calls = shared_probe_.calls();
  s.probe_ranks_computed = shared_probe_.ranks_computed();
  s.elapsed_sec = elapsed_sec_;
  if (elapsed_sec_ > 0.0) {
    s.steps_per_sec = static_cast<double>(s.steps) / elapsed_sec_;
    s.query_steps_per_sec =
        static_cast<double>(s.steps) * static_cast<double>(specs_.size()) /
        elapsed_sec_;
  }
  return s;
}

const Simulator& MonitoringEngine::query_sim(QueryHandle h) const {
  TOPKMON_ASSERT(h < specs_.size());
  if (!started_) {
    return *pending_[h];
  }
  const auto [shard, pos] = locate_[h];
  return shards_[shard].sim(pos);
}

const OutputSet& MonitoringEngine::output(QueryHandle h) const {
  return query_sim(h).protocol().output();
}

}  // namespace topkmon
