// Parallel sweep runner: evaluates labelled experiment cells across a
// thread pool (deterministic — each cell derives its own RNG streams) and
// renders paper-style tables.
//
// Cell grids are routed through the MonitoringEngine where the model allows
// it: cells that share one stream configuration (same generator, n, k, ε,
// steps, seed — typically a protocol comparison sweep) are multiplexed as
// concurrent queries over a single fleet, so the generator runs once per
// step per trial and the offline OPT is evaluated once per trial instead of
// once per cell. Per-cell message accounting is preserved bit-for-bit
// (probe sharing stays off on this path and every query uses the exact seed
// a standalone Simulator would); cells on adaptive adversarial streams
// (lb_adversary, phase_torture) keep the one-Simulator-per-cell path so the
// adversary adapts against exactly the protocol it torments.
#pragma once

#include <string>
#include <vector>

#include "bench_support/experiment.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

namespace topkmon {

struct SweepRow {
  std::string label;
  ExperimentConfig cfg;
};

/// Runs all rows (cells) on a pool; results returned in row order. `sink`
/// (optional) collects per-phase step profiles: every (cell × trial) task
/// times its run into a worker-local profiler — solo trials directly,
/// engine-grouped trials through the engine's own telemetry — and the locals
/// are merged into the sink's profiler under a lock, so the aggregate is
/// deterministic in totals regardless of the steal pattern. Results are
/// bit-identical with or without a sink.
std::vector<ExperimentResult> run_sweep(const std::vector<SweepRow>& rows,
                                        std::size_t threads = 0,
                                        telemetry::TelemetrySink* sink = nullptr);

}  // namespace topkmon
