// Parallel sweep runner: evaluates labelled experiment cells across a
// thread pool (deterministic — each cell derives its own RNG streams) and
// renders paper-style tables.
#pragma once

#include <string>
#include <vector>

#include "bench_support/experiment.hpp"
#include "util/table.hpp"

namespace topkmon {

struct SweepRow {
  std::string label;
  ExperimentConfig cfg;
};

/// Runs all rows (cells) on a pool; results returned in row order.
std::vector<ExperimentResult> run_sweep(const std::vector<SweepRow>& rows,
                                        std::size_t threads = 0);

}  // namespace topkmon
