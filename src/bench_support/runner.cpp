#include "bench_support/runner.hpp"

#include <cmath>
#include <map>
#include <mutex>
#include <sstream>
#include <tuple>
#include <utility>

#include "engine/engine.hpp"
#include "offline/windowed_opt.hpp"
#include "util/thread_pool.hpp"

namespace topkmon {

namespace {

/// Streams whose next values depend on the monitored protocol's state; cells
/// on these cannot share one fleet without changing what each protocol sees.
bool stream_is_adaptive(const std::string& kind) {
  return kind == "lb_adversary" || kind == "phase_torture";
}

/// The stream spec run_experiment actually instantiates (k/ε overrides).
StreamSpec effective_spec(const ExperimentConfig& cfg) {
  StreamSpec spec = cfg.stream;
  spec.k = cfg.k;
  if (cfg.epsilon > 0.0) {
    spec.epsilon = cfg.epsilon;
  }
  return spec;
}

/// Cells agreeing on this key see the identical stream — and the identical
/// degraded fleet — per trial and can be served as concurrent queries of one
/// engine.
std::string group_key(const ExperimentConfig& cfg) {
  const StreamSpec s = effective_spec(cfg);
  std::ostringstream oss;
  oss.precision(17);
  oss << s.kind << '|' << s.n << '|' << s.k << '|' << s.epsilon << '|' << s.delta
      << '|' << s.sigma << '|' << s.walk_step << '|' << s.churn << '|' << s.drift
      << '|' << s.trace_path << '|' << cfg.k << '|' << cfg.epsilon << '|'
      << cfg.steps << '|' << cfg.trials << '|' << cfg.seed << '|' << cfg.strict
      << '|' << cfg.faults.churn_rate << '|' << cfg.faults.straggler_fraction
      << '|' << cfg.faults.max_delay << '|' << cfg.faults.loss << '|'
      << cfg.faults.seed;
  // Cells differing only in W still share a group: the engine serves
  // mixed-window queries from per-window views of one snapshot, so the key
  // deliberately omits cfg.window.
  return oss.str();
}

struct GroupTrialOutcome {
  std::vector<RunResult> runs;     ///< per cell, group order
  std::vector<double> opt_phases;  ///< per cell; NaN where OptKind::kNone
};

/// One trial of a cell group: one engine, Q = group size. Each query uses
/// the exact seed a standalone Simulator would, and probe sharing stays off,
/// so per-cell RunResults are bit-identical to the serial path; the shared
/// work is the generator (once per step) and the OPT (once per distinct
/// (kind, ε') instead of once per cell).
GroupTrialOutcome run_group_trial(const std::vector<const ExperimentConfig*>& cells,
                                  std::size_t trial,
                                  telemetry::StepProfiler* profiler) {
  const ExperimentConfig& base = *cells.front();
  const std::uint64_t sim_seed = splitmix_combine(base.seed, trial);

  EngineConfig ecfg;
  ecfg.threads = 1;  // cell/trial parallelism lives in the sweep pool
  ecfg.seed = sim_seed;
  ecfg.share_probes = false;
  ecfg.faults = trial_fleet_schedule(base, trial, effective_spec(base).n);
  for (const auto* c : cells) {
    ecfg.record_history |= c->opt_kind != OptKind::kNone;
  }

  MonitoringEngine engine(ecfg, make_stream(effective_spec(base)));
  // Profiled sweeps give the trial its own sink (profilers are
  // single-writer); the caller folds merged_profiler() into the sweep sink.
  telemetry::TelemetrySink trial_sink;
  if (profiler != nullptr) {
    engine.attach_telemetry(&trial_sink);
  }
  for (const auto* c : cells) {
    QuerySpec q;
    q.protocol = c->protocol;
    q.k = c->k;
    q.epsilon = c->epsilon;
    q.window = c->window;
    q.strict = c->strict;
    q.seed = sim_seed;
    engine.add_query(std::move(q));
  }
  // Stale reads are a fleet-level phenomenon: the engine's one injector books
  // them once, while a standalone Simulator (one fleet per cell) books them
  // into its own RunResult. Copy the fleet total into each cell so grouped
  // results stay bit-identical to the solo path.
  const std::uint64_t fleet_stale = engine.run(base.steps).stale_reads;
  if (profiler != nullptr) {
    profiler->merge(trial_sink.merged_profiler());
  }

  GroupTrialOutcome out;
  out.runs.reserve(cells.size());
  out.opt_phases.assign(cells.size(), std::nan(""));
  // The engine history is pre-window; the windowed OPT of a cell re-windows
  // it with the cell's W (exactly what that query's protocol saw), cached
  // per distinct (kind, ε′, W).
  std::map<std::tuple<int, double, std::size_t>, std::uint64_t> opt_cache;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto* c = cells[i];
    out.runs.push_back(engine.query_sim(static_cast<QueryHandle>(i)).result());
    out.runs.back().stale_reads = fleet_stale;
    if (c->opt_kind == OptKind::kNone) continue;
    const double eps_opt = c->opt_epsilon < 0.0 ? c->epsilon : c->opt_epsilon;
    const auto key = std::make_tuple(
        static_cast<int>(c->opt_kind),
        c->opt_kind == OptKind::kExact ? 0.0 : eps_opt, c->window);
    auto it = opt_cache.find(key);
    if (it == opt_cache.end()) {
      const OptReport opt =
          c->opt_kind == OptKind::kExact
              ? WindowedOpt::exact(engine.history(), c->k, c->window)
              : WindowedOpt::approx(engine.history(), c->k, eps_opt, c->window);
      it = opt_cache.emplace(key, opt.phases).first;
    }
    out.opt_phases[i] = static_cast<double>(it->second);
  }
  return out;
}

/// Folds group-trial outcomes into an ExperimentResult in the same order
/// run_experiment would (trial 0 .. T−1).
ExperimentResult merge_group_trials(const ExperimentConfig& cfg,
                                    const std::vector<GroupTrialOutcome>& trials,
                                    std::size_t cell_pos) {
  ExperimentResult res;
  for (const GroupTrialOutcome& t : trials) {
    const RunResult& run = t.runs[cell_pos];
    res.messages.add(static_cast<double>(run.messages));
    res.msgs_per_step.add(run.messages_per_step);
    res.max_sigma.add(static_cast<double>(run.max_sigma));
    res.max_rounds.add(static_cast<double>(run.max_rounds_per_step));
    if (cfg.opt_kind != OptKind::kNone) {
      const double phases = t.opt_phases[cell_pos];
      res.opt_phases.add(phases);
      res.ratio.add(static_cast<double>(run.messages) /
                    std::max(1.0, phases));
    }
    res.last_run = run;
  }
  return res;
}

}  // namespace

std::vector<ExperimentResult> run_sweep(const std::vector<SweepRow>& rows,
                                        std::size_t threads,
                                        telemetry::TelemetrySink* sink) {
  std::vector<ExperimentResult> results(rows.size());

  // Partition rows: groupable cells go through the engine, the rest (unique
  // stream configs, adaptive adversaries) stay one-Simulator-per-cell.
  std::map<std::string, std::vector<std::size_t>> grouped;
  std::vector<std::size_t> solo;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (stream_is_adaptive(rows[i].cfg.stream.kind)) {
      solo.push_back(i);
    } else {
      grouped[group_key(rows[i].cfg)].push_back(i);
    }
  }
  std::vector<std::vector<std::size_t>> groups;
  for (auto& [key, members] : grouped) {
    (void)key;
    if (members.size() < 2) {
      solo.push_back(members.front());
    } else {
      groups.push_back(std::move(members));
    }
  }

  // (cell × trial) task grid: every trial of every cell — solo or grouped —
  // is one independent unit for the work-stealing loop. Each task derives
  // its own RNG streams and writes into its own preassigned slot, and the
  // slots are folded on the caller thread in (cell, trial) order, so results
  // are bit-identical whatever the worker count or steal pattern.
  struct Task {
    std::size_t index;  ///< solo: row index; grouped: group index
    std::size_t trial;
    bool grouped;
  };
  std::vector<Task> tasks;
  std::vector<std::vector<TrialOutcome>> solo_outcomes(solo.size());
  std::vector<std::vector<GroupTrialOutcome>> group_outcomes(groups.size());
  for (std::size_t s = 0; s < solo.size(); ++s) {
    const std::size_t trials = rows[solo[s]].cfg.trials;
    solo_outcomes[s].resize(trials);
    for (std::size_t t = 0; t < trials; ++t) {
      tasks.push_back({s, t, false});
    }
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const std::size_t trials = rows[groups[g].front()].cfg.trials;
    group_outcomes[g].resize(trials);
    for (std::size_t t = 0; t < trials; ++t) {
      tasks.push_back({g, t, true});
    }
  }

  ThreadPool pool(threads);
  std::mutex sink_mutex;
  parallel_for_ws(pool, tasks.size(), [&](std::size_t i) {
    const Task task = tasks[i];
    // Worker-local profiler (single-writer), folded into the shared sink
    // under a lock after the trial; null stays a no-op end to end.
    telemetry::StepProfiler local;
    telemetry::StepProfiler* prof = sink != nullptr ? &local : nullptr;
    if (!task.grouped) {
      solo_outcomes[task.index][task.trial] =
          run_experiment_trial(rows[solo[task.index]].cfg, task.trial, prof);
    } else {
      std::vector<const ExperimentConfig*> cells;
      cells.reserve(groups[task.index].size());
      for (const std::size_t row : groups[task.index]) {
        cells.push_back(&rows[row].cfg);
      }
      group_outcomes[task.index][task.trial] =
          run_group_trial(cells, task.trial, prof);
    }
    if (sink != nullptr) {
      const std::lock_guard<std::mutex> lock(sink_mutex);
      sink->profiler().merge(local);
    }
  });

  for (std::size_t s = 0; s < solo.size(); ++s) {
    const std::size_t row = solo[s];
    ExperimentResult res;
    for (const TrialOutcome& t : solo_outcomes[s]) {
      accumulate_trial(res, rows[row].cfg, t);
    }
    results[row] = std::move(res);
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t pos = 0; pos < groups[g].size(); ++pos) {
      const std::size_t row = groups[g][pos];
      results[row] = merge_group_trials(rows[row].cfg, group_outcomes[g], pos);
    }
  }
  return results;
}

}  // namespace topkmon
