#include "bench_support/runner.hpp"

#include "util/thread_pool.hpp"

namespace topkmon {

std::vector<ExperimentResult> run_sweep(const std::vector<SweepRow>& rows,
                                        std::size_t threads) {
  std::vector<ExperimentResult> results(rows.size());
  ThreadPool pool(threads);
  parallel_for(pool, rows.size(),
               [&](std::size_t i) { results[i] = run_experiment(rows[i].cfg); });
  return results;
}

}  // namespace topkmon
