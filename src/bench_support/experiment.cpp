#include "bench_support/experiment.hpp"

#include "offline/opt.hpp"
#include "protocols/registry.hpp"
#include "util/assert.hpp"

namespace topkmon {

TrialOutcome run_experiment_trial(const ExperimentConfig& cfg, std::size_t trial,
                                  telemetry::StepProfiler* profiler) {
  SimConfig sim_cfg;
  sim_cfg.k = cfg.k;
  sim_cfg.epsilon = cfg.epsilon;
  sim_cfg.seed = splitmix_combine(cfg.seed, trial);
  sim_cfg.strict = cfg.strict;
  sim_cfg.window = cfg.window;
  sim_cfg.record_history = cfg.opt_kind != OptKind::kNone;

  StreamSpec spec = cfg.stream;
  spec.k = cfg.k;
  // Stream generators need a *band* epsilon even when the protocol under
  // test is exact (epsilon = 0); keep the spec's own value in that case.
  if (cfg.epsilon > 0.0) {
    spec.epsilon = cfg.epsilon;
  }

  sim_cfg.faults = trial_fleet_schedule(cfg, trial, spec.n);

  Simulator sim(sim_cfg, make_stream(spec), make_protocol(cfg.protocol));
  sim.set_profiler(profiler);

  TrialOutcome out;
  out.run = sim.run(cfg.steps);
  if (cfg.opt_kind != OptKind::kNone) {
    const double eps_opt = cfg.opt_epsilon < 0.0 ? cfg.epsilon : cfg.opt_epsilon;
    const OptReport opt = cfg.opt_kind == OptKind::kExact
                              ? OfflineOpt::exact(sim.history(), cfg.k)
                              : OfflineOpt::approx(sim.history(), cfg.k, eps_opt);
    out.opt_phases = opt.phases;
    out.has_opt = true;
  }
  return out;
}

void accumulate_trial(ExperimentResult& res, const ExperimentConfig& cfg,
                      const TrialOutcome& trial) {
  const RunResult& run = trial.run;
  res.messages.add(static_cast<double>(run.messages));
  res.msgs_per_step.add(run.messages_per_step);
  res.max_sigma.add(static_cast<double>(run.max_sigma));
  res.max_rounds.add(static_cast<double>(run.max_rounds_per_step));
  if (cfg.opt_kind != OptKind::kNone) {
    TOPKMON_ASSERT(trial.has_opt);
    res.opt_phases.add(static_cast<double>(trial.opt_phases));
    res.ratio.add(static_cast<double>(run.messages) /
                  static_cast<double>(std::max<std::uint64_t>(1, trial.opt_phases)));
  }
  res.last_run = run;
}

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  ExperimentResult res;
  for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
    accumulate_trial(res, cfg, run_experiment_trial(cfg, trial));
  }
  return res;
}

FleetSchedulePtr trial_fleet_schedule(const ExperimentConfig& cfg,
                                      std::size_t trial, std::size_t n) {
  FaultConfig fault_cfg = cfg.faults;
  fault_cfg.horizon = cfg.steps;
  fault_cfg.seed = splitmix_combine(cfg.faults.seed, trial);
  return make_fleet_schedule(fault_cfg, n);
}

}  // namespace topkmon
