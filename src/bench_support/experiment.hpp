// Experiment cells: protocol × stream × parameters × trials, with the
// offline OPT evaluated on exactly the (possibly adversary-generated)
// history the online algorithm saw, yielding empirical competitive ratios.
#pragma once

#include <string>

#include "faults/schedule.hpp"
#include "sim/simulator.hpp"
#include "streams/registry.hpp"
#include "util/summary.hpp"

namespace topkmon {

enum class OptKind : std::uint8_t {
  kNone,    ///< no offline baseline (ratio column empty)
  kApprox,  ///< ε′-error offline optimum
  kExact,   ///< exact offline optimum
};

struct ExperimentConfig {
  StreamSpec stream;
  std::string protocol = "combined";
  std::size_t k = 3;
  double epsilon = 0.1;
  TimeStep steps = 1000;
  std::size_t trials = 5;
  std::uint64_t seed = 42;
  bool strict = false;
  /// Sliding-window length W (src/model/window.hpp); kInfiniteWindow (0) =
  /// the paper's instantaneous semantics. The offline OPT of a windowed cell
  /// is evaluated on the windowed history — the stream the protocol saw.
  std::size_t window = kInfiniteWindow;
  OptKind opt_kind = OptKind::kApprox;
  /// ε′ for the offline optimum; negative = use `epsilon`.
  double opt_epsilon = -1.0;
  /// Fault scenario (src/faults); all-zero = reliable static fleet. Each
  /// trial generates its own schedule (horizon = steps, seed derived from
  /// faults.seed and the trial index), so trials degrade independently.
  FaultConfig faults;
};

struct ExperimentResult {
  SampleSet messages;        ///< total online messages per trial
  SampleSet msgs_per_step;
  SampleSet opt_phases;      ///< offline phases per trial
  SampleSet ratio;           ///< messages / max(1, opt phases)
  SampleSet max_sigma;
  SampleSet max_rounds;      ///< max communication rounds in one step
  RunResult last_run;        ///< full stats of the final trial
};

/// One trial's raw outcome — the unit of the sweep runner's (cell × trial)
/// work-stealing grid. Trials of a cell are independent (each derives its
/// own seeds), so they can run on any worker in any order; folding them back
/// in trial order (accumulate_trial) reproduces the serial run bit-for-bit.
struct TrialOutcome {
  RunResult run;
  std::uint64_t opt_phases = 0;  ///< meaningful iff has_opt
  bool has_opt = false;
};

/// Runs trial `trial` of one cell. `profiler` (optional) arms per-phase step
/// profiling on the trial's simulator — a single-writer hook, so concurrent
/// trials must each pass their own profiler (merge afterwards).
TrialOutcome run_experiment_trial(const ExperimentConfig& cfg, std::size_t trial,
                                  telemetry::StepProfiler* profiler = nullptr);

/// Folds one trial into the cell's result. Must be called in trial order —
/// the single aggregation point shared by run_experiment and the sweep
/// runner, so both fold with the identical floating-point operation order.
void accumulate_trial(ExperimentResult& res, const ExperimentConfig& cfg,
                      const TrialOutcome& trial);

/// Runs all trials of one cell (serially; parallelism lives in runner.hpp).
/// Per-trial seeds derive from cfg.seed via splitmix_combine (util/rng.hpp).
ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// The fault schedule of one trial of `cfg` over an n-node fleet (horizon =
/// cfg.steps, seed derived from cfg.faults.seed and the trial index); null
/// when the scenario is all-zero. The single derivation point shared by the
/// solo path (run_experiment) and the engine-grouped path (run_sweep) — both
/// must script the identical degraded fleet for bit-identical results.
FleetSchedulePtr trial_fleet_schedule(const ExperimentConfig& cfg,
                                      std::size_t trial, std::size_t n);

}  // namespace topkmon
