// DistinctSketch — a mergeable multiset of occupied value bands.
//
// The count-distinct protocol (protocols/count_distinct.hpp) tracks how many
// distinct ε-bands (model/band_ladder.hpp) the fleet occupies. The server's
// view decomposes naturally by shard: each shard contributes the multiset of
// bands its nodes occupy, and the fleet answer is the distinct-band count of
// the merged multiset. This sketch is that multiset — add/remove maintain
// per-band multiplicities, merge() is the shard-combining operator
// (commutative and associative, so any merge tree yields the same answer),
// and distinct() is O(1).
//
// Steady-state discipline: a quiescent step touches the sketch not at all,
// and a re-band does one erase + one insert. Only inserts of never-seen
// bands can allocate, so a warmed-up sketch keeps the engine's
// zero-steady-state-allocation guarantee (tests/test_hotpath_alloc.cpp).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "model/types.hpp"
#include "util/assert.hpp"

namespace topkmon {

class DistinctSketch {
 public:
  /// One value now occupies `band` (a band lower boundary).
  void add(Value band) { ++counts_[band]; }

  /// One value left `band`; the band must be occupied.
  void remove(Value band) {
    const auto it = counts_.find(band);
    TOPKMON_ASSERT_MSG(it != counts_.end(), "removing from an empty band");
    if (--it->second == 0) {
      counts_.erase(it);
    }
  }

  /// Folds another shard's occupancy into this one.
  void merge(const DistinctSketch& other) {
    for (const auto& [band, count] : other.counts_) {
      counts_[band] += count;
    }
  }

  /// The number of distinct occupied bands.
  std::uint64_t distinct() const { return counts_.size(); }

  /// Total values tracked (Σ multiplicities); for invariant checks.
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& [band, count] : counts_) {
      sum += count;
    }
    return sum;
  }

  void clear() { counts_.clear(); }

 private:
  std::unordered_map<Value, std::uint32_t> counts_;
};

}  // namespace topkmon
