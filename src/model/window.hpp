// Sliding-window value model — per-node window maxima over the last W steps.
//
// The paper's protocols monitor the *instantaneous* observation v_i^t of
// every node. Production monitoring is usually windowed ("top-k over the
// last W steps", cf. Chan–Lam–Lee–Ting): node i's monitored reading at step
// t becomes max{ v_i^s : t−W < s ≤ t }. The WindowedValueModel realizes that
// transform as a per-node monotonic deque — O(1) amortized per node per
// step, O(W) worst-case memory per node — and sits on the same injection
// seam as the fault layer (between Stream and Node), so every protocol runs
// unmodified against windowed readings: the windowed vector is just another
// value stream.
//
// Storage is structure-of-arrays: all n monotonic deques live in two flat
// preallocated arenas (timestamps and values) plus per-node head/length
// arrays. The arenas are *slot-major* — ring slot j of node i sits at
// j·n + i — so when deques are short and heads aligned (the overwhelmingly
// common case: a monotonic deque holds one entry per decreasing run), the
// per-step walk over all nodes reads contiguous memory instead of chasing
// per-node deque chunks W entries apart. A deque holds at most W entries
// (strictly decreasing values with timestamps inside the window), so the
// rings never grow: steady-state stepping allocates nothing. Semantics are
// bit-identical to the reference deque formulation (differentially fuzzed
// against naive_window_max in tests).
//
// The arena commits n·W entries up front; when that exceeds
// `max_arena_entries` (huge W on a huge fleet, e.g. `--window 100000` over
// 16k nodes would be tens of GB) the model falls back to per-node growable
// deques — occupancy-proportional memory, identical outputs, merely without
// the flat-arena locality and allocation-freedom.
//
// W = ∞ (represented as kInfiniteWindow = 0) means "no windowing": the model
// is simply not installed and observations pass through untouched, which is
// the paper's semantics and bit-identical to the pre-window code path.
//
// A *window expiry* at node i is a step where i's window maximum strictly
// drops because the old maximum slid out of the window and an older
// *retained* observation took over — the fresh observation did not replace
// it (so W = 1 never expires: the fresh observation is always the maximum,
// exactly the unwindowed semantics). Expiries are the windowed counterpart of the
// fault layer's stale reads: a fleet-level signal (surfaced as
// `window_expirations` in RunResult/EngineStats) and the trigger for the
// protocols' cache-invalidation hook (MonitoringProtocol::on_window_expiry).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "model/types.hpp"

namespace topkmon {

/// Window length meaning "unwindowed" (the paper's instantaneous semantics).
inline constexpr std::size_t kInfiniteWindow = 0;

class WindowedValueModel {
 public:
  /// Largest n·W the flat ring arenas may commit up front (2^22 entries
  /// ≈ 64 MB); beyond it the model uses per-node growable deques instead.
  static constexpr std::size_t kDefaultMaxArenaEntries = std::size_t{1} << 22;

  /// Model for an n-node fleet with window length `window` ≥ 1. The ring
  /// arenas (n·W entries) are allocated here, once — unless n·W exceeds
  /// `max_arena_entries` (see file comment; parameter exposed for tests).
  WindowedValueModel(std::size_t n, std::size_t window,
                     std::size_t max_arena_entries = kDefaultMaxArenaEntries);

  /// Absorbs the step-t observation vector (size n) and returns the per-node
  /// window maxima — max over the last min(W, t+1) observations. Must be
  /// called once per step with consecutive t starting at 0; the returned
  /// reference is owned by the model and valid until the next call.
  const ValueVector& push(TimeStep t, const ValueVector& raw);

  /// The current windowed vector (last push result).
  const ValueVector& values() const { return out_; }

  std::size_t n() const { return head_.size(); }
  std::size_t window() const { return window_; }

  /// Nodes whose window maximum dropped by pure eviction in the most recent
  /// push() (see file comment).
  std::uint64_t last_expirations() const { return last_expirations_; }

  /// Window expiries across all steps so far.
  std::uint64_t total_expirations() const { return total_expirations_; }

 private:
  struct Entry {
    TimeStep t;
    Value v;
  };

  void push_arena(TimeStep t, const ValueVector& raw);
  /// Whole-fleet vectorized row merge for the uniform single-entry shape;
  /// returns false (touching nothing) when any deque breaks the shape.
  bool try_push_arena_vectorized(TimeStep t, const ValueVector& raw);
  void push_sparse(TimeStep t, const ValueVector& raw);

  std::size_t window_;
  // SoA ring arenas, slot-major (entry (i, j) at j·n + i): node i's deque is
  // the len_[i] slots starting at ring slot head_[i], values strictly
  // decreasing front→back. Empty in sparse mode.
  std::vector<TimeStep> ring_t_;       ///< n·W entry timestamps
  ValueVector ring_v_;                 ///< n·W entry values
  std::vector<std::uint32_t> head_;    ///< per node: ring slot of the front
  std::vector<std::uint32_t> len_;     ///< per node: live entry count
  /// Sparse fallback (n·W over the arena cap): per-node growable deques,
  /// same monotonic algorithm, occupancy-proportional memory.
  std::vector<std::deque<Entry>> sparse_;
  ValueVector out_;
  TimeStep next_t_ = 0;
  std::uint32_t fastpath_cooldown_ = 0;  ///< steps to skip the vector probe
  std::uint64_t last_expirations_ = 0;
  std::uint64_t total_expirations_ = 0;
};

/// Reference recomputation for tests and offline tooling: row `row` of the
/// windowed history — per-node max over raw rows (row−W, row]. O(n·W).
ValueVector naive_window_max(const std::vector<ValueVector>& history,
                             std::size_t row, std::size_t window);

/// The whole history windowed: row t = per-node max over raw rows (t−W, t].
/// W = kInfiniteWindow returns the history unchanged. O(T·n) via the model.
std::vector<ValueVector> windowed_history(const std::vector<ValueVector>& history,
                                          std::size_t window);

}  // namespace topkmon
