// Sliding-window value model — per-node window maxima over the last W steps.
//
// The paper's protocols monitor the *instantaneous* observation v_i^t of
// every node. Production monitoring is usually windowed ("top-k over the
// last W steps", cf. Chan–Lam–Lee–Ting): node i's monitored reading at step
// t becomes max{ v_i^s : t−W < s ≤ t }. The WindowedValueModel realizes that
// transform as a per-node monotonic deque — O(1) amortized per node per
// step, O(W) worst-case memory per node — and sits on the same injection
// seam as the fault layer (between Stream and Node), so every protocol runs
// unmodified against windowed readings: the windowed vector is just another
// value stream.
//
// W = ∞ (represented as kInfiniteWindow = 0) means "no windowing": the model
// is simply not installed and observations pass through untouched, which is
// the paper's semantics and bit-identical to the pre-window code path.
//
// A *window expiry* at node i is a step where i's window maximum strictly
// drops because the old maximum slid out of the window and an older
// *retained* observation took over — the fresh observation did not replace
// it (so W = 1 never expires: the fresh observation is always the maximum,
// exactly the unwindowed semantics). Expiries are the windowed counterpart of the
// fault layer's stale reads: a fleet-level signal (surfaced as
// `window_expirations` in RunResult/EngineStats) and the trigger for the
// protocols' cache-invalidation hook (MonitoringProtocol::on_window_expiry).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "model/types.hpp"

namespace topkmon {

/// Window length meaning "unwindowed" (the paper's instantaneous semantics).
inline constexpr std::size_t kInfiniteWindow = 0;

class WindowedValueModel {
 public:
  /// Model for an n-node fleet with window length `window` ≥ 1.
  WindowedValueModel(std::size_t n, std::size_t window);

  /// Absorbs the step-t observation vector (size n) and returns the per-node
  /// window maxima — max over the last min(W, t+1) observations. Must be
  /// called once per step with consecutive t starting at 0; the returned
  /// reference is owned by the model and valid until the next call.
  const ValueVector& push(TimeStep t, const ValueVector& raw);

  /// The current windowed vector (last push result).
  const ValueVector& values() const { return out_; }

  std::size_t n() const { return deques_.size(); }
  std::size_t window() const { return window_; }

  /// Nodes whose window maximum dropped by pure eviction in the most recent
  /// push() (see file comment).
  std::uint64_t last_expirations() const { return last_expirations_; }

  /// Window expiries across all steps so far.
  std::uint64_t total_expirations() const { return total_expirations_; }

 private:
  struct Entry {
    TimeStep t;
    Value v;
  };

  std::size_t window_;
  std::vector<std::deque<Entry>> deques_;  ///< per node, values strictly decreasing
  ValueVector out_;
  TimeStep next_t_ = 0;
  std::uint64_t last_expirations_ = 0;
  std::uint64_t total_expirations_ = 0;
};

/// Reference recomputation for tests and offline tooling: row `row` of the
/// windowed history — per-node max over raw rows (row−W, row]. O(n·W).
ValueVector naive_window_max(const std::vector<ValueVector>& history,
                             std::size_t row, std::size_t window);

/// The whole history windowed: row t = per-node max over raw rows (t−W, t].
/// W = kInfiniteWindow returns the history unchanged. O(T·n) via the model.
std::vector<ValueVector> windowed_history(const std::vector<ValueVector>& history,
                                          std::size_t window);

}  // namespace topkmon
