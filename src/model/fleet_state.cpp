#include "model/fleet_state.hpp"

#include "util/assert.hpp"

namespace topkmon {

FleetState::FleetState(std::size_t n, std::size_t window) : n_(n) {
  TOPKMON_ASSERT(n > 0);
  if (window != kInfiniteWindow) {
    window_ = std::make_unique<WindowedValueModel>(n, window);
  }
}

TopKOrder& FleetState::order() {
  if (!order_) {
    order_ = std::make_unique<TopKOrder>(n());
  }
  return *order_;
}

SortedValues& FleetState::value_order() {
  if (!value_order_) {
    value_order_ = std::make_unique<SortedValues>(n());
  }
  return *value_order_;
}

}  // namespace topkmon
