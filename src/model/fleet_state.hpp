// FleetState — structure-of-arrays per-fleet state for the batched hot path.
//
// One step of the simulator (or one engine view) needs, per fleet: a staging
// buffer for the generator's raw vector, an effective-value buffer for the
// fault injector's rewrite, per-node fault flags, the sliding-window maxima
// (when windowed), and the incremental rank order that answers v_π(k,t) and
// σ(t). FleetState owns all of them as contiguous buffers allocated once at
// construction, so per-step work writes in place instead of constructing
// vectors — the zero-allocation invariant of the steady-state step (see
// util/alloc_counter.hpp) hangs off this class.
//
// Layout is SoA: values, flags, window rings, and rank arrays are separate
// flat arrays rather than per-node structs, keeping the per-step passes
// (diff scan, window roll, violation check) on dense cache lines.
//
// The rank order is created lazily: engine-driven query simulators get their
// σ(t) from the shared snapshot's per-window FleetState and must not pay n
// words per query for an order they never consult.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "model/topk_order.hpp"
#include "model/types.hpp"
#include "model/window.hpp"

namespace topkmon {

/// Per-node fault flags for one step (written by the FaultInjector into the
/// fleet's flag buffer; all-zero on the fault-free path).
enum FaultFlag : std::uint8_t {
  kFaultNone = 0,
  kFaultStale = 1u << 0,    ///< observation served from the past this step
  kFaultOffline = 1u << 1,  ///< node is outside the fleet this step
};

class FleetState {
 public:
  /// State for an n-node fleet; `window` ≥ 1 additionally owns the sliding
  /// window rings (kInfiniteWindow = unwindowed). The value/flag buffers are
  /// sized lazily on first access — an owner that only consults the window
  /// model and an order (the engine's per-window snapshot views) pays for
  /// exactly those.
  explicit FleetState(std::size_t n, std::size_t window = kInfiniteWindow);

  std::size_t n() const { return n_; }

  /// Generator staging buffer: the raw (true) observation vector of the
  /// step is written here in place.
  ValueVector& staging() {
    if (staging_.empty()) staging_.assign(n_, 0);
    return staging_;
  }

  /// Effective-value buffer: the fault injector rewrites the true vector
  /// into what the fleet actually observes, in place.
  ValueVector& effective() {
    if (effective_.empty()) effective_.assign(n_, 0);
    return effective_;
  }

  /// Per-node FaultFlag bits for the current step.
  std::span<std::uint8_t> fault_flags() {
    if (flags_.empty()) flags_.assign(n_, 0);
    return {flags_.data(), flags_.size()};
  }
  std::span<const std::uint8_t> fault_flags() const {
    return {flags_.data(), flags_.size()};
  }

  /// The sliding-window model (null when unwindowed). Its output vector —
  /// the per-node window maxima — is the model's contiguous `values()`.
  WindowedValueModel* window() { return window_.get(); }
  const WindowedValueModel* window() const { return window_.get(); }

  /// Incremental rank order (with node identities) over the fleet's current
  /// monitored values; created on first use (one allocation, then
  /// allocation-free). The standalone Simulator's σ path.
  TopKOrder& order();
  const TopKOrder* order_if_ready() const { return order_.get(); }

  /// Incremental value-only order — the engine snapshot's σ path, where
  /// rank identities are not needed and dense updates must cost no more
  /// than the plain sort they replace. Created on first use.
  SortedValues& value_order();
  const SortedValues* value_order_if_ready() const { return value_order_.get(); }

 private:
  std::size_t n_;
  ValueVector staging_;             ///< lazily sized (see class comment)
  ValueVector effective_;           ///< lazily sized
  std::vector<std::uint8_t> flags_;  ///< lazily sized
  std::unique_ptr<WindowedValueModel> window_;
  std::unique_ptr<TopKOrder> order_;
  std::unique_ptr<SortedValues> value_order_;
};

}  // namespace topkmon
