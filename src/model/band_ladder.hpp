// BandLadder — the geometric value grid shared (conceptually) by server and
// nodes: a pure function of ε, never communicated.
//
// Half-open bands [b_i, b_{i+1}) with b_0 = 0, b_1 = 1 and
// b_{i+1} = ⌊b_i/(1−ε)⌋ + 1 cover [0, kMaxObservableValue], so every band
// satisfies the width condition
//   lo ≥ (1−ε)·(hi − 1).                                   (W)
// Because the ladder is derivable from ε alone, a node can compute its own
// band locally (the DENSEPROTOCOL idiom) — re-banding costs zero server
// messages beyond the accounted violation report that carried the value.
//
// Consumers: the k-select structure (protocols/kselect_structure.hpp) builds
// its activation floor on the bands; the count-distinct protocol
// (protocols/count_distinct.hpp) counts occupied bands; the Oracle's exact
// count-distinct baseline (model/oracle.hpp) uses the same ladder so both
// sides agree bit-for-bit on borderline values.
#pragma once

#include <cstdint>
#include <vector>

#include "model/types.hpp"

namespace topkmon {

class BandLadder {
 public:
  /// Ladders needing more boundaries than this fall back to unit bands
  /// ([v, v+1), always correct). Deterministic in ε alone.
  static constexpr std::size_t kMaxLadderSize = std::size_t{1} << 20;

  /// (Re)builds the ladder for ε ∈ [0, 1). ε = 0 always means unit bands.
  void reset(double epsilon);

  /// Lower boundary of the band containing v (v ≤ kMaxObservableValue).
  Value band_lo(Value v) const;

  /// Exclusive upper boundary of the band containing v.
  Value band_hi(Value v) const;

  bool unit_bands() const { return boundaries_.empty(); }
  std::size_t size() const { return boundaries_.size(); }

 private:
  std::vector<Value> boundaries_;  ///< sorted band lower bounds; empty = unit
};

}  // namespace topkmon
