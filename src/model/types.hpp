// Fundamental types of the continuous distributed monitoring model.
//
// Values are natural numbers (paper: v_i^t ∈ ℕ). We use uint64 and restrict
// the observable maximum Δ to 2^48 so that (1−ε)-scaled comparisons in
// `double` are exact on the integer grid (53-bit mantissa).
#pragma once

#include <cstdint>
#include <vector>

namespace topkmon {

using Value = std::uint64_t;
using NodeId = std::uint32_t;
using TimeStep = std::int64_t;

/// Largest value any generator may emit (see file comment).
inline constexpr Value kMaxObservableValue = Value{1} << 48;

/// A full observation vector for one time step (index = node id).
using ValueVector = std::vector<Value>;

/// The server's output F(t): exactly k node ids, kept sorted ascending.
using OutputSet = std::vector<NodeId>;

/// Total order used for the *exact* problem: values with node-id tie-break
/// (the paper assumes distinct values via identifiers; this realizes that).
/// Returns true iff node a (value va) ranks strictly above node b (value vb).
inline bool ranks_above(Value va, NodeId a, Value vb, NodeId b) {
  if (va != vb) return va > vb;
  return a < b;
}

}  // namespace topkmon
