#include "model/band_ladder.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace topkmon {

void BandLadder::reset(double epsilon) {
  boundaries_.clear();
  if (epsilon <= 0.0) {
    return;  // unit bands
  }
  // b_0 = 0, b_1 = 1, b_{i+1} = ⌊b_i/(1−ε)⌋ + 1. The +1 guarantees strict
  // growth (non-empty bands); the floor keeps boundaries on the integer
  // grid, and width condition (W) holds because hi − 1 = ⌊lo/(1−ε)⌋ ≤
  // lo/(1−ε). 2^48 < 2^53, so the double division is exact enough to stay
  // monotone.
  std::vector<Value> b;
  b.push_back(0);
  Value cur = 1;
  while (cur <= kMaxObservableValue) {
    b.push_back(cur);
    if (b.size() > kMaxLadderSize) {
      return;  // ε too small for a bounded ladder; stay in unit-band mode
    }
    const Value next =
        static_cast<Value>(static_cast<double>(cur) / (1.0 - epsilon)) + 1;
    TOPKMON_ASSERT(next > cur);
    cur = next;
  }
  boundaries_ = std::move(b);
}

Value BandLadder::band_lo(Value v) const {
  TOPKMON_ASSERT(v <= kMaxObservableValue);
  if (unit_bands()) {
    return v;
  }
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), v);
  return *(it - 1);
}

Value BandLadder::band_hi(Value v) const {
  TOPKMON_ASSERT(v <= kMaxObservableValue);
  if (unit_bands()) {
    return v + 1;
  }
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), v);
  return it == boundaries_.end() ? kMaxObservableValue + 1 : *it;
}

}  // namespace topkmon
