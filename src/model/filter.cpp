#include "model/filter.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace topkmon {

std::string to_string(Violation v) {
  switch (v) {
    case Violation::kNone: return "none";
    case Violation::kFromBelow: return "from-below";
    case Violation::kFromAbove: return "from-above";
  }
  return "?";
}

bool filters_valid(std::span<const Filter> filters, const std::vector<bool>& in_output,
                   double epsilon) {
  TOPKMON_ASSERT(filters.size() == in_output.size());
  TOPKMON_ASSERT(epsilon >= 0.0 && epsilon < 1.0);
  // min over i in F of lo_i must be >= (1-eps) * max over j not in F of hi_j.
  double min_lo = std::numeric_limits<double>::infinity();
  double max_hi = -std::numeric_limits<double>::infinity();
  bool any_in = false, any_out = false;
  for (std::size_t i = 0; i < filters.size(); ++i) {
    if (in_output[i]) {
      any_in = true;
      min_lo = std::min(min_lo, filters[i].lo);
    } else {
      any_out = true;
      max_hi = std::max(max_hi, filters[i].hi);
    }
  }
  if (!any_in || !any_out) return true;  // vacuously valid
  // Relative tolerance: protocols legitimately set bounds like
  // u = ℓ/(1−ε), and the round-trip (1−ε)·u can land one ulp above ℓ.
  const double rhs = (1.0 - epsilon) * max_hi;
  const double tol = 1e-9 * std::max(1.0, std::abs(rhs));
  return min_lo >= rhs - tol;
}

bool filters_valid(std::span<const Filter> filters, const OutputSet& output,
                   double epsilon) {
  std::vector<bool> in_output(filters.size(), false);
  for (NodeId id : output) {
    TOPKMON_ASSERT(id < filters.size());
    in_output[id] = true;
  }
  return filters_valid(filters, in_output, epsilon);
}

bool all_within(std::span<const Filter> filters, std::span<const Value> values) {
  TOPKMON_ASSERT(filters.size() == values.size());
  for (std::size_t i = 0; i < filters.size(); ++i) {
    if (!filters[i].contains(values[i])) return false;
  }
  return true;
}

}  // namespace topkmon
