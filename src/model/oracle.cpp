#include "model/oracle.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/assert.hpp"
#include "util/simd.hpp"

namespace topkmon {

std::vector<NodeId> Oracle::ranking(std::span<const Value> values) {
  std::vector<NodeId> ids(values.size());
  std::iota(ids.begin(), ids.end(), NodeId{0});
  std::sort(ids.begin(), ids.end(), [&](NodeId a, NodeId b) {
    return ranks_above(values[a], a, values[b], b);
  });
  return ids;
}

OutputSet Oracle::top_k(std::span<const Value> values, std::size_t k) {
  TOPKMON_ASSERT(k <= values.size());
  auto ranked = ranking(values);
  OutputSet out(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(k));
  std::sort(out.begin(), out.end());
  return out;
}

NodeId Oracle::kth_node(std::span<const Value> values, std::size_t k) {
  TOPKMON_ASSERT(k >= 1 && k <= values.size());
  // nth_element over ids would be O(n); ranking is O(n log n) but n is small
  // in simulation and this is oracle-side (free) code.
  return ranking(values)[k - 1];
}

Value Oracle::kth_value(std::span<const Value> values, std::size_t k) {
  return values[kth_node(values, k)];
}

std::vector<NodeId> Oracle::neighborhood(std::span<const Value> values, std::size_t k,
                                         double epsilon) {
  const Value vk = kth_value(values, k);
  std::vector<NodeId> out;
  for (NodeId i = 0; i < values.size(); ++i) {
    if (in_neighborhood(values[i], vk, epsilon)) out.push_back(i);
  }
  return out;
}

std::size_t Oracle::sigma(std::span<const Value> values, std::size_t k, double epsilon) {
  return neighborhood(values, k, epsilon).size();
}

std::size_t Oracle::sigma_sorted(std::span<const Value> sorted_desc, std::size_t k,
                                 double epsilon) {
  TOPKMON_ASSERT(k >= 1 && k <= sorted_desc.size());
  const Value vk = sorted_desc[k - 1];
  // K(t) membership (in_neighborhood) is a conjunction of two predicates,
  // each monotone along the descending order: "not clearly smaller" holds on
  // a prefix, "clearly larger" on a (possibly empty) head of that prefix.
  // The neighborhood is exactly the band between the two partition points,
  // and the ε-helpers keep every double comparison identical to sigma().
  const auto first_clearly_smaller =
      std::partition_point(sorted_desc.begin(), sorted_desc.end(),
                           [&](Value v) { return !clearly_smaller(v, vk, epsilon); });
  const auto first_not_clearly_larger =
      std::partition_point(sorted_desc.begin(), sorted_desc.end(),
                           [&](Value v) { return clearly_larger(v, vk, epsilon); });
  return static_cast<std::size_t>(first_clearly_smaller - first_not_clearly_larger);
}

Value Oracle::kth_largest(std::span<const Value> values, std::size_t k) {
  TOPKMON_ASSERT(k >= 1 && k <= values.size() && k <= kMaxScanK);
  // top[0..filled) holds the largest values seen so far, descending; the
  // admission test against top[k-1] is almost never true once the buffer is
  // warm, so the pass costs one predictable branch per element.
  Value top[kMaxScanK];
  std::size_t filled = 0;
  for (const Value v : values) {
    if (filled == k) {
      if (v <= top[k - 1]) continue;
      std::size_t p = k - 1;
      while (p > 0 && top[p - 1] < v) {
        top[p] = top[p - 1];
        --p;
      }
      top[p] = v;
      continue;
    }
    std::size_t p = filled++;
    while (p > 0 && top[p - 1] < v) {
      top[p] = top[p - 1];
      --p;
    }
    top[p] = v;
  }
  return top[k - 1];
}

std::size_t Oracle::sigma_scan(std::span<const Value> values, std::size_t k,
                               double epsilon) {
  const Value vk = kth_largest(values, k);
  const double vkd = static_cast<double>(vk);
  // #{v : ¬clearly_smaller} − #{v : clearly_larger}; both counts are
  // order-independent, and each lane evaluates the ε-helper expression
  // verbatim (clearly_smaller's bound is one double that every comparison
  // shares, clearly_larger's scale multiplies per lane).
  const std::size_t not_smaller =
      simd::count_f64_ge(values.data(), (1.0 - epsilon) * vkd, values.size());
  const std::size_t larger =
      simd::count_scaled_gt(values.data(), 1.0 - epsilon, vkd, values.size());
  return not_smaller - larger;
}

bool Oracle::output_valid(std::span<const Value> values, std::size_t k, double epsilon,
                          const OutputSet& output) {
  return explain_invalid(values, k, epsilon, output).empty();
}

std::string Oracle::explain_invalid(std::span<const Value> values, std::size_t k,
                                    double epsilon, const OutputSet& output) {
  std::ostringstream oss;
  if (output.size() != k) {
    oss << "output size " << output.size() << " != k = " << k;
    return oss.str();
  }
  std::vector<bool> in_out(values.size(), false);
  for (NodeId id : output) {
    if (id >= values.size()) {
      oss << "output contains out-of-range id " << id;
      return oss.str();
    }
    if (in_out[id]) {
      oss << "output contains duplicate id " << id;
      return oss.str();
    }
    in_out[id] = true;
  }
  const Value vk = kth_value(values, k);
  for (NodeId i = 0; i < values.size(); ++i) {
    if (clearly_larger(values[i], vk, epsilon) && !in_out[i]) {
      oss << "node " << i << " (value " << values[i] << ") is clearly larger than v_k="
          << vk << " but missing from output";
      return oss.str();
    }
    if (in_out[i] && !clearly_larger(values[i], vk, epsilon) &&
        !in_neighborhood(values[i], vk, epsilon)) {
      oss << "node " << i << " (value " << values[i]
          << ") is in the output but clearly smaller than v_k=" << vk;
      return oss.str();
    }
  }
  return "";
}

bool Oracle::kselect_valid(std::span<const Value> values, std::size_t k,
                           double epsilon, Value answer) {
  return in_neighborhood(answer, kth_value(values, k), epsilon);
}

std::string Oracle::explain_kselect_invalid(std::span<const Value> values,
                                            std::size_t k, double epsilon,
                                            Value answer) {
  const Value vk = kth_value(values, k);
  if (in_neighborhood(answer, vk, epsilon)) return "";
  std::ostringstream oss;
  oss << "k-select answer " << answer << " outside the ε-neighborhood of v_" << k
      << " = " << vk << " (ε = " << epsilon << ")";
  return oss.str();
}

std::uint64_t Oracle::distinct_count(std::span<const Value> values,
                                     const BandLadder& ladder) {
  std::vector<Value> bands;
  bands.reserve(values.size());
  for (const Value v : values) {
    bands.push_back(ladder.band_lo(v));
  }
  std::sort(bands.begin(), bands.end());
  return static_cast<std::uint64_t>(
      std::unique(bands.begin(), bands.end()) - bands.begin());
}

std::uint64_t Oracle::distinct_count(std::span<const Value> values, double epsilon) {
  BandLadder ladder;
  ladder.reset(epsilon);
  return distinct_count(values, ladder);
}

std::uint64_t Oracle::count_above(std::span<const Value> values, Value threshold) {
  std::uint64_t count = 0;
  for (const Value v : values) {
    count += v > threshold ? 1 : 0;
  }
  return count;
}

}  // namespace topkmon
