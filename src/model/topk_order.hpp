// TopKOrder — incremental order maintenance for the batched hot path.
//
// The per-step quantities the simulator and the engine's shared snapshot
// need — the k-th largest value v_π(k,t), the neighborhood size σ(t), the
// full rank order for probes — used to be recomputed from scratch every
// step: allocate an index vector, sort O(n log n), scan. The protocols'
// whole point (Mäcker et al., IPDPS 2016) is that quiescent steps do no
// *communication* work; this structure makes them do (almost) no *local*
// work either.
//
// The structure keeps the descending rank order (by `ranks_above`: value,
// id tie-break) as two parallel preallocated arrays plus a node→rank index.
// Each step absorbs the fleet's observation vector by diffing it against a
// shadow copy: unchanged nodes cost one branch-predictable compare, changed
// nodes are repaired in place by bounded insertion moves (cost = rank
// displacement). When a step disturbs more than `kRebuildFraction` of the
// fleet, repairing degenerates, so the order is rebuilt with one in-place
// sort instead. Either way the result is the unique total order, so which
// path ran is unobservable — rebuild-vs-repair is a pure performance choice
// and results stay bit-identical across machines.
//
// Steady-state stepping allocates nothing: every buffer is sized once at
// construction (asserted via the counting allocator hook in
// util/alloc_counter.hpp where enabled). σ(t) is answered with two binary
// searches over the sorted values using the exact ε-comparison helpers of
// model/oracle.hpp, so it equals Oracle::sigma bit-for-bit.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "model/types.hpp"

namespace topkmon {

/// Incrementally maintained descending *multiset* of the fleet's values —
/// the value-only sibling of TopKOrder for consumers that need v_π(k,t) and
/// σ(t) but not rank identities (the engine's shared StepSnapshot). Same
/// diff-and-repair regime, but repairs are one binary search + memmove and
/// the dense-update rebuild is a plain value sort (no id indirection), so it
/// is never slower than re-sorting from scratch. Allocation-free after
/// construction.
class SortedValues {
 public:
  explicit SortedValues(std::size_t n);

  std::size_t n() const { return shadow_.size(); }

  /// Absorbs the step's observation vector; first call sorts, later calls
  /// diff against the previous vector and splice only changed values.
  void update(std::span<const Value> values);

  bool ready() const { return ready_; }

  /// The value of rank k (1-based): v_π(k,t).
  Value kth_value(std::size_t k) const;

  /// σ(t) = |K(t)| for (k, ε); bit-identical to Oracle::sigma.
  std::size_t sigma(std::size_t k, double epsilon) const;

  /// Values in descending order (valid until the next update).
  std::span<const Value> sorted() const {
    return {sorted_desc_.data(), sorted_desc_.size()};
  }

  /// Dense-update fallback threshold, as in TopKOrder.
  static constexpr double kRebuildFraction = 0.125;

 private:
  void splice(Value old_value, Value new_value);

  ValueVector shadow_;       ///< last absorbed vector, by node id
  ValueVector sorted_desc_;  ///< the same values, sorted descending
  bool ready_ = false;
};

class TopKOrder {
 public:
  /// Order over an n-node fleet; all buffers are allocated here, once.
  explicit TopKOrder(std::size_t n);

  std::size_t n() const { return shadow_.size(); }

  /// Absorbs the step's observation vector (size n). First call sorts;
  /// subsequent calls diff against the previous vector and repair only the
  /// changed nodes. Allocation-free.
  void update(std::span<const Value> values);

  /// Point update for callers that know the dirty set (must mirror what the
  /// full vector would contain — the shadow copy is updated too).
  void update_node(NodeId i, Value v);

  /// True once update() has absorbed a vector.
  bool ready() const { return ready_; }

  /// The value of rank k (1-based): v_π(k,t).
  Value kth_value(std::size_t k) const;

  /// The node of rank k (1-based): π(k,t).
  NodeId kth_node(std::size_t k) const;

  /// σ(t) = |K(t)| for (k, ε); two binary searches, O(log n), bit-identical
  /// to Oracle::sigma on the same vector.
  std::size_t sigma(std::size_t k, double epsilon) const;

  /// Values in descending rank order (contiguous; valid until next update).
  std::span<const Value> sorted_values() const {
    return {values_desc_.data(), values_desc_.size()};
  }

  /// Node ids in descending rank order.
  std::span<const NodeId> sorted_ids() const {
    return {ids_desc_.data(), ids_desc_.size()};
  }

  /// Rank (0-based) currently held by node i.
  std::size_t rank_of(NodeId i) const { return pos_[i]; }

  /// Nodes repaired incrementally / full rebuilds since construction —
  /// observability counters for tests and the hot-path bench.
  std::uint64_t repairs() const { return repairs_; }
  std::uint64_t rebuilds() const { return rebuilds_; }

  /// Steps whose diff pass found more changed nodes than this fraction of n
  /// fall back to one in-place sort. Exposed for tests.
  static constexpr double kRebuildFraction = 0.125;

 private:
  void rebuild();
  void repair(NodeId id, Value v);

  ValueVector shadow_;            ///< last absorbed vector, by node id
  ValueVector values_desc_;       ///< values in rank order (descending)
  std::vector<NodeId> ids_desc_;  ///< node at each rank
  std::vector<std::uint32_t> pos_;  ///< node id -> rank
  std::uint64_t repairs_ = 0;
  std::uint64_t rebuilds_ = 0;
  bool ready_ = false;
};

}  // namespace topkmon
