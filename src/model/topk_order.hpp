// TopKOrder — incremental order maintenance for the batched hot path.
//
// The per-step quantities the simulator and the engine's shared snapshot
// need — the k-th largest value v_π(k,t), the neighborhood size σ(t), the
// full rank order for probes — used to be recomputed from scratch every
// step: allocate an index vector, sort O(n log n), scan. The protocols'
// whole point (Mäcker et al., IPDPS 2016) is that quiescent steps do no
// *communication* work; this structure makes them do (almost) no *local*
// work either.
//
// The structure keeps the descending rank order (by `ranks_above`: value,
// id tie-break) as two parallel preallocated arrays plus a node→rank index.
// Each step absorbs the fleet's observation vector by diffing it against a
// shadow copy with one vectorized compare-and-extract pass (util/simd.hpp):
// unchanged nodes cost a fraction of a SIMD lane, changed nodes are repaired
// in place by bounded insertion moves (cost = rank displacement). Two
// triggers fall back to rebuilding instead: a step disturbing more than
// `kRebuildFraction` of the fleet, and a repair pass whose accumulated
// element moves exceed `kRepairBudgetFactor`·n (scattered large-displacement
// updates make individually-cheap repairs collectively quadratic). The
// rebuild is a packed-key LSD radix sort (util/packed_key.hpp +
// util/radix.hpp) — branchless, bandwidth-bound, and skipping digit
// positions the value range never exercises.
//
// Under *sustained* dense churn even one radix sort per step is wasted work:
// the hot path consumes only σ(t), which Oracle::sigma_scan answers exactly
// from the unsorted vector with a selection pass plus two vectorized
// ε-partition scans. So a dense update merely parks the raw vector in the
// shadow and marks the rank arrays stale; the rebuild runs lazily, when
// ranks are actually demanded — an accessor, a k past the scan cutoff, or
// churn subsiding into the repair regime. Whichever path serves a query, the
// answer is derived from the same unique total order, so repair / rebuild /
// scan is a pure performance choice and results stay bit-identical across
// machines and SIMD tiers.
//
// Steady-state stepping allocates nothing: every buffer is sized on
// construction or on the first rebuild (asserted via the counting allocator
// hook in util/alloc_counter.hpp where enabled). σ(t) is answered with two
// binary searches over the sorted values while the order is fresh, and by
// sigma_scan's partition scans while it is parked — both built on the exact
// ε-comparison helpers of model/oracle.hpp, so either equals Oracle::sigma
// bit-for-bit.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "model/types.hpp"
#include "util/radix.hpp"

namespace topkmon {

/// Lazy-order maintenance policy, shared by TopKOrder and its value-only
/// sibling SortedValues so the twins cannot drift apart (only TopKOrder's
/// path counters are bench-pinned; SortedValues follows by construction).
struct OrderPolicy {
  /// Steps disturbing more than this fraction of the fleet park the raw
  /// vector (scan mode) instead of repairing.
  static constexpr double kRebuildFraction = 0.125;

  /// Repair/splice passes whose accumulated element moves exceed this
  /// multiple of n bail into scan mode (identical results, bounded cost).
  static constexpr std::size_t kRepairBudgetFactor = 4;

  /// A stale order is only rebuilt — re-arming incremental repairs — once a
  /// step disturbs fewer than this fraction of the fleet; busier steps stay
  /// in scan mode, where σ(t) needs no order at all.
  static constexpr double kRepairResumeFraction = 1.0 / 64.0;
};

/// Incrementally maintained descending *multiset* of the fleet's values —
/// the value-only sibling of TopKOrder for consumers that need v_π(k,t) and
/// σ(t) but not rank identities (the engine's shared StepSnapshot). Same
/// diff-and-repair regime, but repairs are one binary search + memmove and
/// the dense-update rebuild is a plain descending value radix sort (no id
/// indirection), so it is never slower than re-sorting from scratch. Under
/// sustained dense churn the sorted array is not even maintained: updates
/// park the raw vector, σ(t) is answered by Oracle::sigma_scan's exact
/// ε-partition scans, and the radix rebuild runs only when the sorted order
/// is actually demanded (an accessor, a large k, or churn subsiding into the
/// repair regime). Allocation-free after the first rebuild.
class SortedValues {
 public:
  explicit SortedValues(std::size_t n);

  std::size_t n() const { return shadow_.size(); }

  /// Absorbs the step's observation vector; first call sorts, later calls
  /// diff against the previous vector and splice only changed values.
  void update(std::span<const Value> values);

  bool ready() const { return ready_; }

  /// The value of rank k (1-based): v_π(k,t).
  Value kth_value(std::size_t k) const;

  /// σ(t) = |K(t)| for (k, ε); bit-identical to Oracle::sigma. Served from
  /// the sorted order when fresh, by exact partition scans during churn
  /// storms (see class comment).
  std::size_t sigma(std::size_t k, double epsilon) const;

  /// Values in descending order (valid until the next update); forces the
  /// deferred rebuild if churn left the order stale.
  std::span<const Value> sorted() const {
    ensure_sorted();
    return {sorted_desc_.data(), sorted_desc_.size()};
  }

  // Policy knobs alias the shared OrderPolicy (see above).
  static constexpr double kRebuildFraction = OrderPolicy::kRebuildFraction;
  static constexpr std::size_t kRepairBudgetFactor = OrderPolicy::kRepairBudgetFactor;
  static constexpr double kRepairResumeFraction = OrderPolicy::kRepairResumeFraction;

 private:
  std::size_t splice(Value old_value, Value new_value);
  void rebuild_sorted() const;
  void ensure_sorted() const {
    if (!sorted_fresh_) rebuild_sorted();
  }

  ValueVector shadow_;  ///< last absorbed vector, by node id
  /// The same values sorted descending — lazily: stale while churn storms
  /// defer sorting (mutable so const accessors can force the rebuild).
  mutable ValueVector sorted_desc_;
  mutable std::unique_ptr<RadixScratch> radix_;  ///< rebuild scratch, first use
  mutable bool sorted_fresh_ = false;
  std::vector<std::uint32_t> dirty_;  ///< vector diff scratch (node ids)
  bool ready_ = false;
};

class TopKOrder {
 public:
  /// Order over an n-node fleet; all steady-state buffers are allocated here
  /// (the radix rebuild scratch on the first rebuild), once.
  explicit TopKOrder(std::size_t n);

  std::size_t n() const { return shadow_.size(); }

  /// Absorbs the step's observation vector (size n). First call sorts;
  /// subsequent calls diff against the previous vector and repair only the
  /// changed nodes. Allocation-free after the first call.
  void update(std::span<const Value> values);

  /// Point update for callers that know the dirty set (must mirror what the
  /// full vector would contain — the shadow copy is updated too).
  void update_node(NodeId i, Value v);

  /// True once update() has absorbed a vector.
  bool ready() const { return ready_; }

  /// The value of rank k (1-based): v_π(k,t).
  Value kth_value(std::size_t k) const;

  /// The node of rank k (1-based): π(k,t).
  NodeId kth_node(std::size_t k) const;

  /// σ(t) = |K(t)| for (k, ε); bit-identical to Oracle::sigma on the same
  /// vector. O(log n) binary searches while the order is fresh, exact
  /// ε-partition scans while churn keeps it parked (see file comment).
  std::size_t sigma(std::size_t k, double epsilon) const;

  /// Values in descending rank order (contiguous; valid until next update);
  /// forces the deferred rebuild if churn left the order stale.
  std::span<const Value> sorted_values() const {
    ensure_order();
    return {values_desc_.data(), values_desc_.size()};
  }

  /// Node ids in descending rank order.
  std::span<const NodeId> sorted_ids() const {
    ensure_order();
    return {ids_desc_.data(), ids_desc_.size()};
  }

  /// Rank (0-based) currently held by node i.
  std::size_t rank_of(NodeId i) const {
    ensure_pos();
    return pos_[i];
  }

  /// Nodes repaired incrementally / full rebuilds since construction —
  /// observability counters for tests and the hot-path bench.
  std::uint64_t repairs() const { return repairs_; }
  std::uint64_t rebuilds() const { return rebuilds_; }

  // Policy knobs alias the shared OrderPolicy (see above). Exposed for
  // tests: scattered large-displacement updates cost O(changed · n) as
  // repairs but O(n) as scans — a pure performance choice, every answer
  // still derives from the same unique order.
  static constexpr double kRebuildFraction = OrderPolicy::kRebuildFraction;
  static constexpr std::size_t kRepairBudgetFactor = OrderPolicy::kRepairBudgetFactor;
  static constexpr double kRepairResumeFraction = OrderPolicy::kRepairResumeFraction;

 private:
  void rebuild() const;
  std::size_t repair(NodeId id, Value v);  ///< returns elements moved

  /// Forces the deferred churn-storm rebuild (see file comment).
  void ensure_order() const {
    if (!order_fresh_) rebuild();
  }

  /// Re-derives pos_ from ids_desc_ when a rebuild left it stale. The rank
  /// index is only consumed by the repair path and rank_of(); on rebuild-
  /// dominated churn steps maintaining it eagerly would be a wasted
  /// n-element scatter per step, so rebuilds just mark it stale.
  void ensure_pos() const {
    ensure_order();  // pos_ derives from ids_desc_, which must be current
    if (pos_fresh_) return;
    for (std::size_t r = 0; r < ids_desc_.size(); ++r) {
      pos_[ids_desc_[r]] = static_cast<std::uint32_t>(r);
    }
    pos_fresh_ = true;
  }

  ValueVector shadow_;  ///< last absorbed vector, by node id
  // Rank arrays are maintained lazily: churn storms park the raw vector in
  // shadow_ and leave them stale until something actually consumes ranks
  // (mutable so const accessors can force the rebuild).
  mutable ValueVector values_desc_;       ///< values in rank order (descending)
  mutable std::vector<NodeId> ids_desc_;  ///< node at each rank
  mutable std::vector<std::uint32_t> pos_;  ///< node id -> rank (lazy)
  mutable bool order_fresh_ = false;
  mutable bool pos_fresh_ = false;
  std::vector<std::uint32_t> dirty_;  ///< vector diff scratch (node ids)
  mutable std::vector<std::uint64_t> keys_;  ///< packed rank keys, first rebuild
  mutable std::unique_ptr<RadixScratch> radix_;  ///< rebuild scratch, first rebuild
  std::uint64_t repairs_ = 0;
  mutable std::uint64_t rebuilds_ = 0;
  bool ready_ = false;
};

}  // namespace topkmon
