#include "model/topk_order.hpp"

#include <algorithm>
#include <functional>

#include "model/oracle.hpp"
#include "util/assert.hpp"
#include "util/packed_key.hpp"
#include "util/simd.hpp"

namespace topkmon {

SortedValues::SortedValues(std::size_t n)
    : shadow_(n, 0), sorted_desc_(n, 0), dirty_(n, 0) {
  TOPKMON_ASSERT(n > 0);
}

std::size_t SortedValues::splice(Value old_value, Value new_value) {
  if (old_value == new_value) return 0;
  // First slot holding a value <= old_value: an occurrence of old_value.
  const auto rm = std::lower_bound(sorted_desc_.begin(), sorted_desc_.end(),
                                   old_value, std::greater<Value>());
  if (new_value < old_value) {
    // New value moves toward the tail: first slot (beyond rm) <= new_value.
    const auto ins = std::lower_bound(rm + 1, sorted_desc_.end(), new_value,
                                      std::greater<Value>());
    std::move(rm + 1, ins, rm);  // close the gap leftward
    *(ins - 1) = new_value;
    return static_cast<std::size_t>(ins - rm);
  }
  // New value moves toward the head.
  const auto ins = std::lower_bound(sorted_desc_.begin(), rm, new_value,
                                    std::greater<Value>());
  std::move_backward(ins, rm, rm + 1);  // open a gap rightward
  *ins = new_value;
  return static_cast<std::size_t>(rm - ins) + 1;
}

void SortedValues::rebuild_sorted() const {
  const std::size_t n = shadow_.size();
  if (!radix_) {
    radix_ = std::make_unique<RadixScratch>(n);
  }
  std::copy(shadow_.begin(), shadow_.end(), sorted_desc_.begin());
  radix_sort_desc(sorted_desc_.data(), n, *radix_);
  sorted_fresh_ = true;
}

void SortedValues::update(std::span<const Value> values) {
  const std::size_t n = shadow_.size();
  TOPKMON_ASSERT_MSG(values.size() == n, "observation vector sized for wrong fleet");
  if (!ready_) {
    std::copy(values.begin(), values.end(), shadow_.begin());
    rebuild_sorted();
    ready_ = true;
    return;
  }
  const std::size_t changed = simd::count_diff(shadow_.data(), values.data(), n);
  if (changed == 0) return;
  if (static_cast<double>(changed) > kRebuildFraction * static_cast<double>(n)) {
    // Churn storm: park the raw vector and defer the sort — σ(t) is served
    // by exact partition scans until the order is actually demanded.
    std::copy(values.begin(), values.end(), shadow_.begin());
    sorted_fresh_ = false;
    return;
  }
  if (!sorted_fresh_) {
    std::copy(values.begin(), values.end(), shadow_.begin());
    if (static_cast<double>(changed) <
        kRepairResumeFraction * static_cast<double>(n)) {
      // Churn subsided for real: one rebuild re-arms incremental splicing.
      rebuild_sorted();
    }
    // Otherwise stay in scan mode — moderately busy steps are cheaper as
    // partition scans than as a sort or a storm of long splices.
    return;
  }
  simd::collect_diff(shadow_.data(), values.data(), n, dirty_.data());
  std::size_t budget = kRepairBudgetFactor * n;
  for (std::size_t j = 0; j < changed; ++j) {
    const std::uint32_t i = dirty_[j];
    const std::size_t moved = splice(shadow_[i], values[i]);
    shadow_[i] = values[i];
    budget -= std::min(budget, moved);
    if (budget == 0 && j + 1 < changed) {
      // Scattered large displacements: absorb the rest of the dirty set into
      // the shadow and fall into scan mode — identical results, bounded cost.
      for (std::size_t jj = j + 1; jj < changed; ++jj) {
        shadow_[dirty_[jj]] = values[dirty_[jj]];
      }
      sorted_fresh_ = false;
      return;
    }
  }
}

Value SortedValues::kth_value(std::size_t k) const {
  TOPKMON_ASSERT(ready_ && k >= 1 && k <= sorted_desc_.size());
  ensure_sorted();
  return sorted_desc_[k - 1];
}

std::size_t SortedValues::sigma(std::size_t k, double epsilon) const {
  TOPKMON_ASSERT(ready_);
  if (!sorted_fresh_ && k <= Oracle::kMaxScanK) {
    return Oracle::sigma_scan({shadow_.data(), shadow_.size()}, k, epsilon);
  }
  return Oracle::sigma_sorted(sorted(), k, epsilon);
}

TopKOrder::TopKOrder(std::size_t n)
    : shadow_(n, 0), values_desc_(n, 0), ids_desc_(n, 0), pos_(n, 0), dirty_(n, 0) {
  TOPKMON_ASSERT(n > 0);
}

void TopKOrder::rebuild() const {
  const std::size_t n = shadow_.size();
  if (!radix_) {
    radix_ = std::make_unique<RadixScratch>(n);
    if (rank_key_packable(n)) {
      keys_.assign(n, 0);
    }
  }
  if (rank_key_packable(n)) {
    // Packed path: one order-preserving key per (value, id); the sorted key
    // array yields values and ids in one unpacking sweep.
    for (NodeId i = 0; i < n; ++i) {
      keys_[i] = rank_key(shadow_[i], i);
    }
    radix_sort_desc(keys_.data(), n, *radix_);
    for (std::size_t r = 0; r < n; ++r) {
      const std::uint64_t key = keys_[r];
      values_desc_[r] = rank_key_value(key);
      ids_desc_[r] = rank_key_id(key);
    }
  } else {
    // Pair path for fleets past the packed-id range: stable co-sort of
    // (value, id) started in ascending-id order — stability is exactly the
    // ranks_above tie-break.
    for (NodeId i = 0; i < n; ++i) {
      values_desc_[i] = shadow_[i];
      ids_desc_[i] = i;
    }
    radix_sort_desc(values_desc_.data(), ids_desc_.data(), n, *radix_);
  }
  order_fresh_ = true;
  pos_fresh_ = false;  // rebuilt ranks; pos_ re-derived on demand
  ++rebuilds_;
}

std::size_t TopKOrder::repair(NodeId id, Value v) {
  ensure_pos();
  std::size_t p = pos_[id];
  const std::size_t start = p;
  const std::size_t n = values_desc_.size();
  std::size_t moved = 0;
  // Shift neighbors over the hole until (v, id) slots into rank order.
  while (p > 0 && ranks_above(v, id, values_desc_[p - 1], ids_desc_[p - 1])) {
    values_desc_[p] = values_desc_[p - 1];
    ids_desc_[p] = ids_desc_[p - 1];
    pos_[ids_desc_[p]] = static_cast<std::uint32_t>(p);
    --p;
  }
  while (p + 1 < n && ranks_above(values_desc_[p + 1], ids_desc_[p + 1], v, id)) {
    values_desc_[p] = values_desc_[p + 1];
    ids_desc_[p] = ids_desc_[p + 1];
    pos_[ids_desc_[p]] = static_cast<std::uint32_t>(p);
    ++p;
  }
  values_desc_[p] = v;
  ids_desc_[p] = id;
  pos_[id] = static_cast<std::uint32_t>(p);
  ++repairs_;
  moved = p > start ? p - start : start - p;
  return moved;
}

void TopKOrder::update(std::span<const Value> values) {
  const std::size_t n = shadow_.size();
  TOPKMON_ASSERT_MSG(values.size() == n, "observation vector sized for wrong fleet");
  if (!ready_) {
    std::copy(values.begin(), values.end(), shadow_.begin());
    rebuild();
    ready_ = true;
    return;
  }
  // Pass 1: one vectorized compare sweep counts the dirty set; on a
  // quiescent step this is the whole cost of order maintenance, and on a
  // dense step no index extraction is wasted on an order nobody reads.
  const std::size_t changed = simd::count_diff(shadow_.data(), values.data(), n);
  if (changed == 0) {
    return;
  }
  if (static_cast<double>(changed) > kRebuildFraction * static_cast<double>(n)) {
    // Churn storm: park the raw vector and mark the rank arrays stale —
    // σ(t) is served by exact partition scans, and the radix rebuild runs
    // only if ranks are actually demanded.
    std::copy(values.begin(), values.end(), shadow_.begin());
    order_fresh_ = false;
    return;
  }
  if (!order_fresh_) {
    std::copy(values.begin(), values.end(), shadow_.begin());
    if (static_cast<double>(changed) <
        kRepairResumeFraction * static_cast<double>(n)) {
      // Churn subsided for real: one rebuild re-arms incremental repairs.
      rebuild();
    }
    // Otherwise stay in scan mode — moderately busy steps are cheaper as
    // partition scans than as a sort or a storm of long repairs.
    return;
  }
  simd::collect_diff(shadow_.data(), values.data(), n, dirty_.data());
  // Pass 2: repair each dirty node. The array stays totally ordered w.r.t.
  // its current (partially updated) contents after every repair, so the
  // final state is the unique rank order of the new vector. A move budget
  // guards against scattered large displacements (see header).
  std::size_t budget = kRepairBudgetFactor * n;
  for (std::size_t j = 0; j < changed; ++j) {
    const NodeId i = static_cast<NodeId>(dirty_[j]);
    shadow_[i] = values[i];
    budget -= std::min(budget, repair(i, values[i]));
    if (budget == 0 && j + 1 < changed) {
      for (std::size_t jj = j + 1; jj < changed; ++jj) {
        shadow_[dirty_[jj]] = values[dirty_[jj]];
      }
      order_fresh_ = false;  // scan mode; lazily rebuilt if ranks are read
      return;
    }
  }
}

void TopKOrder::update_node(NodeId i, Value v) {
  TOPKMON_ASSERT(ready_);
  TOPKMON_ASSERT(i < shadow_.size());
  if (shadow_[i] == v) return;
  ensure_order();  // point repairs need current rank arrays
  shadow_[i] = v;
  repair(i, v);
}

Value TopKOrder::kth_value(std::size_t k) const {
  TOPKMON_ASSERT(ready_ && k >= 1 && k <= values_desc_.size());
  ensure_order();
  return values_desc_[k - 1];
}

NodeId TopKOrder::kth_node(std::size_t k) const {
  TOPKMON_ASSERT(ready_ && k >= 1 && k <= ids_desc_.size());
  ensure_order();
  return ids_desc_[k - 1];
}

std::size_t TopKOrder::sigma(std::size_t k, double epsilon) const {
  TOPKMON_ASSERT(ready_);
  if (!order_fresh_ && k <= Oracle::kMaxScanK) {
    return Oracle::sigma_scan({shadow_.data(), shadow_.size()}, k, epsilon);
  }
  return Oracle::sigma_sorted(sorted_values(), k, epsilon);
}

}  // namespace topkmon
