#include "model/topk_order.hpp"

#include <algorithm>
#include <functional>

#include "model/oracle.hpp"
#include "util/assert.hpp"

namespace topkmon {

SortedValues::SortedValues(std::size_t n) : shadow_(n, 0), sorted_desc_(n, 0) {
  TOPKMON_ASSERT(n > 0);
}

void SortedValues::splice(Value old_value, Value new_value) {
  if (old_value == new_value) return;
  // First slot holding a value <= old_value: an occurrence of old_value.
  const auto rm = std::lower_bound(sorted_desc_.begin(), sorted_desc_.end(),
                                   old_value, std::greater<Value>());
  if (new_value < old_value) {
    // New value moves toward the tail: first slot (beyond rm) <= new_value.
    const auto ins = std::lower_bound(rm + 1, sorted_desc_.end(), new_value,
                                      std::greater<Value>());
    std::move(rm + 1, ins, rm);  // close the gap leftward
    *(ins - 1) = new_value;
  } else {
    // New value moves toward the head.
    const auto ins = std::lower_bound(sorted_desc_.begin(), rm, new_value,
                                      std::greater<Value>());
    std::move_backward(ins, rm, rm + 1);  // open a gap rightward
    *ins = new_value;
  }
}

void SortedValues::update(std::span<const Value> values) {
  const std::size_t n = shadow_.size();
  TOPKMON_ASSERT_MSG(values.size() == n, "observation vector sized for wrong fleet");
  std::size_t changed = 0;
  if (ready_) {
    for (std::size_t i = 0; i < n; ++i) {
      changed += shadow_[i] != values[i];
    }
    if (changed == 0) return;
  }
  if (!ready_ ||
      static_cast<double>(changed) > kRebuildFraction * static_cast<double>(n)) {
    std::copy(values.begin(), values.end(), shadow_.begin());
    std::copy(values.begin(), values.end(), sorted_desc_.begin());
    std::sort(sorted_desc_.begin(), sorted_desc_.end(), std::greater<Value>());
    ready_ = true;
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (shadow_[i] != values[i]) {
      splice(shadow_[i], values[i]);
      shadow_[i] = values[i];
    }
  }
}

Value SortedValues::kth_value(std::size_t k) const {
  TOPKMON_ASSERT(ready_ && k >= 1 && k <= sorted_desc_.size());
  return sorted_desc_[k - 1];
}

std::size_t SortedValues::sigma(std::size_t k, double epsilon) const {
  TOPKMON_ASSERT(ready_);
  return Oracle::sigma_sorted(sorted(), k, epsilon);
}

TopKOrder::TopKOrder(std::size_t n)
    : shadow_(n, 0), values_desc_(n, 0), ids_desc_(n, 0), pos_(n, 0) {
  TOPKMON_ASSERT(n > 0);
}

void TopKOrder::rebuild() {
  const std::size_t n = shadow_.size();
  for (NodeId i = 0; i < n; ++i) {
    ids_desc_[i] = i;
  }
  std::sort(ids_desc_.begin(), ids_desc_.end(), [this](NodeId a, NodeId b) {
    return ranks_above(shadow_[a], a, shadow_[b], b);
  });
  for (std::size_t r = 0; r < n; ++r) {
    const NodeId id = ids_desc_[r];
    values_desc_[r] = shadow_[id];
    pos_[id] = static_cast<std::uint32_t>(r);
  }
  ++rebuilds_;
}

void TopKOrder::repair(NodeId id, Value v) {
  std::size_t p = pos_[id];
  const std::size_t n = values_desc_.size();
  // Shift neighbors over the hole until (v, id) slots into rank order.
  while (p > 0 && ranks_above(v, id, values_desc_[p - 1], ids_desc_[p - 1])) {
    values_desc_[p] = values_desc_[p - 1];
    ids_desc_[p] = ids_desc_[p - 1];
    pos_[ids_desc_[p]] = static_cast<std::uint32_t>(p);
    --p;
  }
  while (p + 1 < n && ranks_above(values_desc_[p + 1], ids_desc_[p + 1], v, id)) {
    values_desc_[p] = values_desc_[p + 1];
    ids_desc_[p] = ids_desc_[p + 1];
    pos_[ids_desc_[p]] = static_cast<std::uint32_t>(p);
    ++p;
  }
  values_desc_[p] = v;
  ids_desc_[p] = id;
  pos_[id] = static_cast<std::uint32_t>(p);
  ++repairs_;
}

void TopKOrder::update(std::span<const Value> values) {
  const std::size_t n = shadow_.size();
  TOPKMON_ASSERT_MSG(values.size() == n, "observation vector sized for wrong fleet");
  if (!ready_) {
    std::copy(values.begin(), values.end(), shadow_.begin());
    rebuild();
    ready_ = true;
    return;
  }
  // Pass 1: count the dirty set. One predictable compare per node; on a
  // quiescent step this is the whole cost of order maintenance.
  std::size_t changed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    changed += shadow_[i] != values[i];
  }
  if (changed == 0) {
    return;
  }
  if (static_cast<double>(changed) > kRebuildFraction * static_cast<double>(n)) {
    std::copy(values.begin(), values.end(), shadow_.begin());
    rebuild();
    return;
  }
  // Pass 2: repair each dirty node. The array stays totally ordered w.r.t.
  // its current (partially updated) contents after every repair, so the
  // final state is the unique rank order of the new vector.
  for (std::size_t i = 0; i < n; ++i) {
    if (shadow_[i] != values[i]) {
      shadow_[i] = values[i];
      repair(static_cast<NodeId>(i), values[i]);
    }
  }
}

void TopKOrder::update_node(NodeId i, Value v) {
  TOPKMON_ASSERT(ready_);
  TOPKMON_ASSERT(i < shadow_.size());
  if (shadow_[i] == v) return;
  shadow_[i] = v;
  repair(i, v);
}

Value TopKOrder::kth_value(std::size_t k) const {
  TOPKMON_ASSERT(ready_ && k >= 1 && k <= values_desc_.size());
  return values_desc_[k - 1];
}

NodeId TopKOrder::kth_node(std::size_t k) const {
  TOPKMON_ASSERT(ready_ && k >= 1 && k <= ids_desc_.size());
  return ids_desc_[k - 1];
}

std::size_t TopKOrder::sigma(std::size_t k, double epsilon) const {
  TOPKMON_ASSERT(ready_);
  return Oracle::sigma_sorted(sorted_values(), k, epsilon);
}

}  // namespace topkmon
