// Ground-truth oracle for one observation vector.
//
// Centralized (free) computation of the quantities in Sect. 2 of the paper:
// ranks π(i,t), the k-th largest value, the clearly-larger range E(t), the
// ε-neighborhood A(t), the neighborhood node set K(t), σ(t) = |K(t)|, and the
// output-correctness predicate for F(t). The simulator uses these to validate
// protocols after every step (strict mode); protocols themselves never touch
// the oracle.
//
// ε-comparisons are written in multiplication form — `(1−ε)·x ≤ y` — in
// exactly one place (the helpers below) so protocols and the validator agree
// bit-for-bit on borderline cases.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/band_ladder.hpp"
#include "model/types.hpp"

namespace topkmon {

/// v is "clearly larger" than the k-th value vk:  v > vk / (1−ε),
/// evaluated as (1−ε)·v > vk to avoid division.
inline bool clearly_larger(Value v, Value vk, double epsilon) {
  return (1.0 - epsilon) * static_cast<double>(v) > static_cast<double>(vk);
}

/// v lies in the ε-neighborhood A(t) = [(1−ε)·vk, vk/(1−ε)].
inline bool in_neighborhood(Value v, Value vk, double epsilon) {
  const double x = static_cast<double>(v);
  const double y = static_cast<double>(vk);
  return x >= (1.0 - epsilon) * y && (1.0 - epsilon) * x <= y;
}

/// v is "clearly smaller" than vk:  v < (1−ε)·vk.
inline bool clearly_smaller(Value v, Value vk, double epsilon) {
  return static_cast<double>(v) < (1.0 - epsilon) * static_cast<double>(vk);
}

class Oracle {
 public:
  /// Node ids ordered by rank (descending value, id tie-break); element 0 is
  /// the maximum. O(n log n).
  static std::vector<NodeId> ranking(std::span<const Value> values);

  /// Ids of the k highest-ranked nodes, sorted ascending by id.
  static OutputSet top_k(std::span<const Value> values, std::size_t k);

  /// The node π(k,t) observing the k-th largest value (1-based k).
  static NodeId kth_node(std::span<const Value> values, std::size_t k);

  /// The k-th largest value v_π(k,t).
  static Value kth_value(std::span<const Value> values, std::size_t k);

  /// K(t): ids of nodes inside the ε-neighborhood of the k-th value, sorted.
  static std::vector<NodeId> neighborhood(std::span<const Value> values, std::size_t k,
                                          double epsilon);

  /// σ(t) = |K(t)|.
  static std::size_t sigma(std::span<const Value> values, std::size_t k, double epsilon);

  /// σ(t) from values already sorted descending — O(n) without allocation
  /// (the neighborhood is a contiguous range of the sorted order). Used by
  /// the engine's shared snapshot so Q queries sort once, not Q times.
  static std::size_t sigma_sorted(std::span<const Value> sorted_desc, std::size_t k,
                                  double epsilon);

  /// Largest k for which sigma_scan is available (the single-pass selection
  /// buffer is fixed-size so scan mode stays allocation-free).
  static constexpr std::size_t kMaxScanK = 128;

  /// Exact k-th largest value of the multiset (duplicates count), k ≤
  /// kMaxScanK: one branch-predictable selection pass, no sort, no
  /// allocation.
  static Value kth_largest(std::span<const Value> values, std::size_t k);

  /// σ(t) from *unsorted* values, k ≤ kMaxScanK: selection scan for v_k plus
  /// two vectorized ε-partition scans (util/simd.hpp). The lane predicates
  /// are the exact expressions of the ε-helpers above, and neighborhood
  /// membership is order-independent, so the result is bit-identical to
  /// sigma()/sigma_sorted() — without materializing any order. This is the
  /// churn-storm σ path: O(n) bandwidth-bound instead of a sort per step.
  static std::size_t sigma_scan(std::span<const Value> values, std::size_t k,
                                double epsilon);

  /// Output correctness per Sect. 2: |F| = k, every clearly-larger node is in
  /// F, and every remaining member of F lies in the ε-neighborhood.
  static bool output_valid(std::span<const Value> values, std::size_t k, double epsilon,
                           const OutputSet& output);

  /// Human-readable reason why `output` is invalid ("" if valid); for tests.
  static std::string explain_invalid(std::span<const Value> values, std::size_t k,
                                     double epsilon, const OutputSet& output);

  /// ε-approximate k-select validity: the answer lies in the ε-neighborhood
  /// A(t) of the true k-th largest value, i.e. (1−ε)·v_k ≤ answer and
  /// (1−ε)·answer ≤ v_k — the correctness contract of KSelectQueries
  /// (arXiv:1709.07259), checked in strict mode and by the fuzz harness.
  static bool kselect_valid(std::span<const Value> values, std::size_t k,
                            double epsilon, Value answer);

  /// Human-readable reason why `answer` is invalid ("" if valid); for tests.
  static std::string explain_kselect_invalid(std::span<const Value> values,
                                             std::size_t k, double epsilon,
                                             Value answer);

  /// Exact count-distinct baseline (QueryKind::kCountDistinct): the number
  /// of distinct ladder bands occupied by `values`. With unit bands (ε = 0)
  /// this is the exact number of distinct values. O(n log n).
  static std::uint64_t distinct_count(std::span<const Value> values,
                                      const BandLadder& ladder);

  /// Convenience overload building the ε-ladder internally (tests/fuzz; the
  /// strict validator caches a ladder instead, ε is fixed per run).
  static std::uint64_t distinct_count(std::span<const Value> values, double epsilon);

  /// Exact threshold baseline (QueryKind::kThreshold): how many nodes hold a
  /// value strictly above `threshold`; the alert predicate is `> 0`. O(n).
  static std::uint64_t count_above(std::span<const Value> values, Value threshold);
};

}  // namespace topkmon
