// Filters (Definition 2.1 / Observation 2.2 of the paper).
//
// A filter is a closed interval [lo, hi] assigned by the server to a node;
// while the node's value stays inside, the output need not change. Bounds are
// doubles (DENSEPROTOCOL repeatedly halves real-valued intervals); ±infinity
// is representable. Violation naming follows the paper:
//   * "from below": the value exceeded the filter's *upper* bound
//     (the value broke through the top, coming from below), and
//   * "from above": the value dropped below the filter's *lower* bound.
#pragma once

#include <limits>
#include <span>
#include <string>
#include <vector>

#include "model/types.hpp"

namespace topkmon {

enum class Violation : std::uint8_t {
  kNone = 0,
  kFromBelow,  ///< value > hi
  kFromAbove,  ///< value < lo
};

std::string to_string(Violation v);

struct Filter {
  double lo = 0.0;
  double hi = std::numeric_limits<double>::infinity();

  static Filter all() { return Filter{0.0, std::numeric_limits<double>::infinity()}; }
  static Filter at_least(double l) {
    return Filter{l, std::numeric_limits<double>::infinity()};
  }
  static Filter at_most(double u) { return Filter{0.0, u}; }
  static Filter point(double v) { return Filter{v, v}; }

  bool contains(Value v) const {
    const double x = static_cast<double>(v);
    return x >= lo && x <= hi;
  }

  Violation check(Value v) const {
    const double x = static_cast<double>(v);
    if (x > hi) return Violation::kFromBelow;
    if (x < lo) return Violation::kFromAbove;
    return Violation::kNone;
  }

  bool operator==(const Filter&) const = default;
};

/// Observation 2.2: an n-tuple of intervals is a set of filters for output F
/// iff for all i ∈ F and j ∉ F: lo_i >= (1−ε)·hi_j.
/// `in_output[i]` marks membership of node i in F. ε in [0, 1).
bool filters_valid(std::span<const Filter> filters, const std::vector<bool>& in_output,
                   double epsilon);

/// Convenience overload taking the output as a sorted id set.
bool filters_valid(std::span<const Filter> filters, const OutputSet& output,
                   double epsilon);

/// True iff every node's current value lies inside its filter.
bool all_within(std::span<const Filter> filters, std::span<const Value> values);

}  // namespace topkmon
