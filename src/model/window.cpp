#include "model/window.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace topkmon {

WindowedValueModel::WindowedValueModel(std::size_t n, std::size_t window)
    : window_(window), deques_(n), out_(n, 0) {
  TOPKMON_ASSERT_MSG(window >= 1, "windowed model needs W >= 1 (W = 0 means no model)");
}

const ValueVector& WindowedValueModel::push(TimeStep t, const ValueVector& raw) {
  TOPKMON_ASSERT_MSG(raw.size() == deques_.size(), "observation vector sized for wrong fleet");
  TOPKMON_ASSERT_MSG(t == next_t_, "window model must see consecutive steps");
  ++next_t_;

  last_expirations_ = 0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    auto& dq = deques_[i];
    const Value prev_max = dq.empty() ? 0 : dq.front().v;
    const bool had_max = !dq.empty();

    // Evict entries that slid out of the window (t − W < s ≤ t stays).
    bool evicted = false;
    while (!dq.empty() &&
           dq.front().t + static_cast<TimeStep>(window_) <= t) {
      dq.pop_front();
      evicted = true;
    }
    // Monotonic insert: entries dominated by the new value can never be a
    // future window maximum (newer and no larger).
    const Value v = raw[i];
    while (!dq.empty() && dq.back().v <= v) {
      dq.pop_back();
    }
    dq.push_back({t, v});

    out_[i] = dq.front().v;
    // An expiry requires the drop to leave the node reading a *retained
    // older* observation: when the fresh observation itself becomes the
    // maximum (always the case for W = 1), the node simply tracks the live
    // stream — that is an ordinary value decrease, not an expiry.
    if (had_max && evicted && out_[i] < prev_max && dq.front().t != t) {
      ++last_expirations_;
    }
  }
  total_expirations_ += last_expirations_;
  return out_;
}

ValueVector naive_window_max(const std::vector<ValueVector>& history,
                             std::size_t row, std::size_t window) {
  TOPKMON_ASSERT(row < history.size());
  TOPKMON_ASSERT(window >= 1);
  ValueVector out = history[row];
  const std::size_t first = row + 1 >= window ? row + 1 - window : 0;
  for (std::size_t s = first; s < row; ++s) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = std::max(out[i], history[s][i]);
    }
  }
  return out;
}

std::vector<ValueVector> windowed_history(const std::vector<ValueVector>& history,
                                          std::size_t window) {
  if (window == kInfiniteWindow || history.empty()) {
    return history;
  }
  WindowedValueModel model(history.front().size(), window);
  std::vector<ValueVector> out;
  out.reserve(history.size());
  for (std::size_t t = 0; t < history.size(); ++t) {
    out.push_back(model.push(static_cast<TimeStep>(t), history[t]));
  }
  return out;
}

}  // namespace topkmon
