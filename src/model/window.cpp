#include "model/window.hpp"

#include <algorithm>
#include <cstring>

#include "util/assert.hpp"
#include "util/simd.hpp"

namespace topkmon {

WindowedValueModel::WindowedValueModel(std::size_t n, std::size_t window,
                                       std::size_t max_arena_entries)
    : window_(window), head_(n, 0), len_(n, 0), out_(n, 0) {
  TOPKMON_ASSERT_MSG(window >= 1, "windowed model needs W >= 1 (W = 0 means no model)");
  if (n != 0 && window <= max_arena_entries / n) {
    ring_t_.assign(n * window, 0);
    ring_v_.assign(n * window, 0);
  } else {
    sparse_.resize(n);
  }
}

const ValueVector& WindowedValueModel::push(TimeStep t, const ValueVector& raw) {
  TOPKMON_ASSERT_MSG(raw.size() == head_.size(),
                     "observation vector sized for wrong fleet");
  TOPKMON_ASSERT_MSG(t == next_t_, "window model must see consecutive steps");
  ++next_t_;

  last_expirations_ = 0;
  if (sparse_.empty()) {
    push_arena(t, raw);
  } else {
    push_sparse(t, raw);
  }
  total_expirations_ += last_expirations_;
  return out_;
}

bool WindowedValueModel::try_push_arena_vectorized(TimeStep t, const ValueVector& raw) {
  // Vectorized ring-row merge for the dominant shape: every deque holds
  // exactly one entry in the same ring slot, none of them expires at t, and
  // the fresh vector dominates every front (raw[i] >= ring_v[front]). Each
  // node's scalar step is then pop + reinsert into the *same* slot, so the
  // whole fleet collapses to three contiguous row operations: merge the
  // fresh values over the ring row, stamp the row's timestamps, publish the
  // row as the output. No eviction happens, so no expiry can occur — the
  // result is bit-identical to the scalar walk (asserted differentially in
  // the window fuzz/invariant suites).
  const std::size_t n = head_.size();
  if (n == 0 || simd::count_eq_u32(len_.data(), 1, n) != n) return false;
  const std::uint32_t h = head_[0];
  if (simd::count_eq_u32(head_.data(), h, n) != n) return false;
  const TimeStep* row_t = ring_t_.data() + static_cast<std::size_t>(h) * n;
  Value* row_v = ring_v_.data() + static_cast<std::size_t>(h) * n;
  // Timestamps are nonnegative, so the unsigned lane minimum is the signed
  // minimum; the oldest entry decides whether anything expires this step.
  const TimeStep oldest = static_cast<TimeStep>(
      simd::min_value(reinterpret_cast<const Value*>(row_t), n));
  if (oldest + static_cast<TimeStep>(window_) <= t) return false;
  if (simd::count_lt(raw.data(), row_v, n) != 0) return false;
  std::memcpy(row_v, raw.data(), n * sizeof(Value));
  std::fill_n(ring_t_.begin() + static_cast<std::ptrdiff_t>(
                                    static_cast<std::size_t>(h) * n),
              n, t);
  std::memcpy(out_.data(), raw.data(), n * sizeof(Value));
  return true;
}

void WindowedValueModel::push_arena(TimeStep t, const ValueVector& raw) {
  const std::size_t n = head_.size();
  const std::uint32_t cap = static_cast<std::uint32_t>(window_);
  // The vector fast path wins big on quiescent streaks but its four scans
  // are pure overhead while the fleet's deques are churning; a short
  // cooldown after a miss keeps the probe out of the adversarial regimes.
  if (fastpath_cooldown_ == 0) {
    if (try_push_arena_vectorized(t, raw)) return;
    fastpath_cooldown_ = 8;
  } else {
    --fastpath_cooldown_;
  }
  // Slot-major addressing: entry (node i, ring slot j) lives at j·n + i, so
  // the short-deque common case touches the same few contiguous rows for
  // every node.
  const auto at = [n](std::uint32_t slot, std::size_t i) { return slot * n + i; };
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t head = head_[i];
    std::uint32_t len = len_[i];

    const bool had_max = len > 0;
    const Value prev_max = had_max ? ring_v_[at(head, i)] : 0;

    // Evict entries that slid out of the window (t − W < s ≤ t stays).
    bool evicted = false;
    while (len > 0 && ring_t_[at(head, i)] + static_cast<TimeStep>(window_) <= t) {
      head = head + 1 == cap ? 0 : head + 1;
      --len;
      evicted = true;
    }
    // Monotonic insert: entries dominated by the new value can never be a
    // future window maximum (newer and no larger).
    const Value v = raw[i];
    while (len > 0) {
      std::uint32_t back = head + len - 1;
      if (back >= cap) back -= cap;
      if (ring_v_[at(back, i)] > v) break;
      --len;
    }
    std::uint32_t slot = head + len;
    if (slot >= cap) slot -= cap;
    ring_t_[at(slot, i)] = t;
    ring_v_[at(slot, i)] = v;
    ++len;

    head_[i] = head;
    len_[i] = len;
    out_[i] = ring_v_[at(head, i)];
    // An expiry requires the drop to leave the node reading a *retained
    // older* observation: when the fresh observation itself becomes the
    // maximum (always the case for W = 1), the node simply tracks the live
    // stream — that is an ordinary value decrease, not an expiry.
    if (had_max && evicted && out_[i] < prev_max && ring_t_[at(head, i)] != t) {
      ++last_expirations_;
    }
  }
}

void WindowedValueModel::push_sparse(TimeStep t, const ValueVector& raw) {
  // Reference monotonic-deque formulation, used when the flat arena would
  // over-commit (see file comment). Identical outputs to push_arena.
  for (std::size_t i = 0; i < raw.size(); ++i) {
    auto& dq = sparse_[i];
    const bool had_max = !dq.empty();
    const Value prev_max = had_max ? dq.front().v : 0;

    bool evicted = false;
    while (!dq.empty() && dq.front().t + static_cast<TimeStep>(window_) <= t) {
      dq.pop_front();
      evicted = true;
    }
    const Value v = raw[i];
    while (!dq.empty() && dq.back().v <= v) {
      dq.pop_back();
    }
    dq.push_back({t, v});

    out_[i] = dq.front().v;
    if (had_max && evicted && out_[i] < prev_max && dq.front().t != t) {
      ++last_expirations_;
    }
  }
}

ValueVector naive_window_max(const std::vector<ValueVector>& history,
                             std::size_t row, std::size_t window) {
  TOPKMON_ASSERT(row < history.size());
  TOPKMON_ASSERT(window >= 1);
  ValueVector out = history[row];
  const std::size_t first = row + 1 >= window ? row + 1 - window : 0;
  for (std::size_t s = first; s < row; ++s) {
    simd::max_merge(out.data(), history[s].data(), out.size());
  }
  return out;
}

std::vector<ValueVector> windowed_history(const std::vector<ValueVector>& history,
                                          std::size_t window) {
  if (window == kInfiniteWindow || history.empty()) {
    return history;
  }
  WindowedValueModel model(history.front().size(), window);
  std::vector<ValueVector> out;
  out.reserve(history.size());
  for (std::size_t t = 0; t < history.size(); ++t) {
    out.push_back(model.push(static_cast<TimeStep>(t), history[t]));
  }
  return out;
}

}  // namespace topkmon
