#include "sim/comm_stats.hpp"

#include <sstream>

namespace topkmon {

std::string to_string(MessageKind k) {
  switch (k) {
    case MessageKind::kNodeToServer: return "node->server";
    case MessageKind::kServerToNode: return "server->node";
    case MessageKind::kBroadcast: return "broadcast";
  }
  return "?";
}

std::string to_string(MessageTag t) {
  switch (t) {
    case MessageTag::kExistence: return "existence";
    case MessageTag::kViolation: return "violation";
    case MessageTag::kProbe: return "probe";
    case MessageTag::kFilterBroadcast: return "filter-broadcast";
    case MessageTag::kFilterUnicast: return "filter-unicast";
    case MessageTag::kOther: return "other";
  }
  return "?";
}

void CommStats::count(MessageKind kind, MessageTag tag, std::uint64_t n) {
  if (loss_p_ > 0.0) {
    // Lossy link: each of the n messages is retransmitted until delivered;
    // drops-before-success is geometric in the delivery probability 1−p.
    std::uint64_t drops = 0;
    for (std::uint64_t m = 0; m < n; ++m) {
      drops += loss_rng_.geometric(1.0 - loss_p_);
    }
    messages_lost_ += drops;
    n += drops;
  }
  total_ += n;
  kind_[static_cast<std::size_t>(kind)] += n;
  tag_[static_cast<std::size_t>(tag)] += n;
}

void CommStats::enable_loss(double p, Rng rng) {
  loss_p_ = p;
  loss_rng_ = rng;
}

void CommStats::begin_step() {
  ++steps_;
  rounds_this_step_ = 0;
  total_at_step_start_ = total_;
}

void CommStats::add_rounds(std::uint64_t r) {
  rounds_this_step_ += r;
  total_rounds_ += r;
  if (rounds_this_step_ > max_rounds_per_step_) {
    max_rounds_per_step_ = rounds_this_step_;
  }
}

void CommStats::reset() {
  const double p = loss_p_;
  const Rng rng = loss_rng_;
  *this = CommStats{};
  loss_p_ = p;
  loss_rng_ = rng;
}

std::string CommStats::report() const {
  std::ostringstream oss;
  oss << "messages total=" << total_;
  for (std::size_t k = 0; k < kNumMessageKinds; ++k) {
    oss << " " << to_string(static_cast<MessageKind>(k)) << "=" << kind_[k];
  }
  oss << "\n  by tag:";
  for (std::size_t t = 0; t < kNumMessageTags; ++t) {
    oss << " " << to_string(static_cast<MessageTag>(t)) << "=" << tag_[t];
  }
  oss << "\n  steps=" << steps_ << " max_rounds/step=" << max_rounds_per_step_
      << " total_rounds=" << total_rounds_;
  if (messages_lost_ > 0 || stale_reads_ > 0 || recovery_rounds_ > 0) {
    oss << "\n  faults: lost=" << messages_lost_ << " stale_reads=" << stale_reads_
        << " recovery_rounds=" << recovery_rounds_;
  }
  return oss.str();
}

}  // namespace topkmon
