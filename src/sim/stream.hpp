// Stream generator interface.
//
// Generators produce the observation vector for each time step. The paper's
// adversary model is *adaptive*: it knows the algorithm's code, the state of
// every node and the server, and past random outcomes. `AdversaryView`
// exposes exactly that — current values, current filters, and the server's
// current output — read-only; adversarial generators (Theorem 5.1) use it,
// benign synthetic workloads ignore it.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "model/filter.hpp"
#include "model/types.hpp"
#include "sim/node.hpp"
#include "util/rng.hpp"

namespace topkmon {

struct AdversaryView {
  std::span<const Node> nodes;  ///< values + filters as of *before* this step
  const OutputSet* output;      ///< server's current output (never null)
  std::size_t k;
  double epsilon;
};

class StreamGenerator {
 public:
  virtual ~StreamGenerator() = default;

  /// Number of nodes this generator drives.
  virtual std::size_t n() const = 0;

  /// Fills the t = 0 observation vector. `out` is pre-sized to n().
  virtual void init(ValueVector& out, Rng& rng) = 0;

  /// Fills the observation vector for step t ≥ 1. `out` holds the previous
  /// step's values on entry (generators may update in place).
  virtual void step(TimeStep t, const AdversaryView& view, ValueVector& out,
                    Rng& rng) = 0;

  virtual std::string_view name() const = 0;

  /// Fresh, state-reset copy for independent trials.
  virtual std::unique_ptr<StreamGenerator> clone() const = 0;
};

}  // namespace topkmon
