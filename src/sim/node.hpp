// A distributed node: current observation plus the server-assigned filter.
//
// Nodes evaluate their own filter locally (free, node-side computation);
// everything the *server* learns about a node's value must travel through
// the accounted primitives in SimContext.
#pragma once

#include "model/filter.hpp"
#include "model/types.hpp"

namespace topkmon {

class Node {
 public:
  Node() = default;
  explicit Node(NodeId id) : id_(id) {}

  NodeId id() const { return id_; }
  Value value() const { return value_; }
  const Filter& filter() const { return filter_; }

  void observe(Value v) { value_ = v; }
  void set_filter(const Filter& f) { filter_ = f; }

  /// Node-side check of the own filter.
  Violation violation() const { return filter_.check(value_); }
  bool violating() const { return violation() != Violation::kNone; }

 private:
  NodeId id_ = 0;
  Value value_ = 0;
  Filter filter_ = Filter::all();
};

}  // namespace topkmon
