// MonitoringProtocol — the online-algorithm interface.
//
// The simulator calls start() once after the t = 0 observations are in
// place and on_step() for every subsequent step. On return from either, the
// protocol must leave (a) a correct output F(t) (Sect. 2 definition, checked
// by the oracle in strict mode), (b) a valid filter set (Obs. 2.2), and
// (c) every node's value inside its filter — i.e. the per-step communication
// protocol has run to quiescence.
#pragma once

#include <string_view>

#include "model/types.hpp"
#include "sim/context.hpp"

namespace topkmon {

class MonitoringProtocol {
 public:
  virtual ~MonitoringProtocol() = default;

  virtual void start(SimContext& ctx) = 0;
  virtual void on_step(SimContext& ctx) = 0;

  /// Recovery hook: called *instead of* on_step() at steps where the fleet
  /// membership changed (a node joined or left, see src/faults). A rejoining
  /// node resumes the live stream and a leaving node freezes, so cached
  /// state/filters may be arbitrarily wrong; the default recovery re-runs
  /// start(), whose contract (correct output, valid filter set, quiescence)
  /// re-validates and redistributes filters from the current values.
  /// Protocols with cheaper incremental recovery override this. Never called
  /// on the fault-free path.
  virtual void on_membership_change(SimContext& ctx) { start(ctx); }

  /// Window-expiry hook: called *instead of* on_step() at steps where some
  /// node's window maximum dropped purely because its old maximum slid out
  /// of the window (sliding-window mode, src/model/window.hpp) — a value
  /// decrease no fresh observation caused. Cached filters/thresholds keyed
  /// to the expired maxima may now sit arbitrarily above the live window;
  /// the default treats the step as ordinary (the filter-violation machinery
  /// catches downward moves), protocols caching value-derived state override
  /// to invalidate it. Never called on the unwindowed (W = ∞) path; a
  /// membership change in the same step takes precedence.
  virtual void on_window_expiry(SimContext& ctx) { on_step(ctx); }

  /// The server's current output F(t); size k.
  virtual const OutputSet& output() const = 0;

  virtual std::string_view name() const = 0;
};

/// Optional query surface for protocols that also answer approximate
/// k-select (k-th value) queries, in the sense of Biermeier et al.
/// (arXiv:1709.07259): after every simulator hook, kselect(j) must return a
/// value inside the ε-neighborhood A_j(t) = [(1−ε)·v_j, v_j/(1−ε)] of the
/// true j-th largest value, for every 1 ≤ j ≤ kselect_max_rank(). The
/// strict-mode validator and the differential fuzz harness check exactly
/// this via Oracle::kselect_valid. Protocols opt in by inheriting from both
/// MonitoringProtocol and KSelectQueries; callers discover the surface with
/// as_kselect() below.
class KSelectQueries {
 public:
  virtual ~KSelectQueries() = default;

  /// Largest supported rank j (the structure's k unless documented wider).
  virtual std::size_t kselect_max_rank() const = 0;

  /// The ε-approximate j-th largest value, 1-based, j ≤ kselect_max_rank().
  virtual Value kselect(std::size_t j) const = 0;
};

/// The protocol's k-select surface, or nullptr when it only serves top-k
/// positions. Non-owning; valid as long as the protocol lives.
inline const KSelectQueries* as_kselect(const MonitoringProtocol& p) {
  return dynamic_cast<const KSelectQueries*>(&p);
}

}  // namespace topkmon
