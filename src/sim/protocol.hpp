// MonitoringProtocol — the online-algorithm interface.
//
// The simulator calls start() once after the t = 0 observations are in
// place and on_step() for every subsequent step. On return from either, the
// protocol must leave (a) a correct output F(t) (Sect. 2 definition, checked
// by the oracle in strict mode), (b) a valid filter set (Obs. 2.2), and
// (c) every node's value inside its filter — i.e. the per-step communication
// protocol has run to quiescence.
#pragma once

#include <string_view>

#include "model/types.hpp"
#include "sim/context.hpp"
#include "sim/query_kind.hpp"
#include "util/assert.hpp"

namespace topkmon {

/// The query surface a protocol advertises beyond the MonitoringProtocol
/// basics: which QueryKinds it answers, and the per-kind accessors. The
/// engine, the strict-mode validator, the networked runtime and the CLIs all
/// dispatch on this one interface — there is no per-kind discovery seam.
///
/// Contracts (checked by the Oracle in strict mode and the fuzz harness),
/// holding after every simulator hook returns:
///   kTopK           output() is a correct F(t) (Sect. 2). Protocols without
///                   capabilities() implicitly serve exactly this kind.
///   kKSelect        kselect(j) lies in the ε-neighborhood A_j(t) of the true
///                   j-th largest value for every 1 ≤ j ≤ kselect_max_rank()
///                   (arXiv:1709.07259).
///   kCountDistinct  distinct_count() is the exact number of distinct
///                   ε-bands (model/band_ladder.hpp) occupied by the fleet.
///   kThreshold      alert_active() == ∃i: v_i(t) > T and above_count() is
///                   the exact count of such nodes, T = SimContext::threshold.
///
/// Per-kind accessors may only be called when supports(kind) is true; the
/// defaults assert so a mis-dispatched caller fails loudly in tests.
class QueryCapabilities {
 public:
  virtual ~QueryCapabilities() = default;

  /// Which query kinds this protocol answers.
  virtual bool supports(QueryKind kind) const = 0;

  // ---- kKSelect -----------------------------------------------------------

  /// Largest supported rank j (the structure's k unless documented wider).
  virtual std::size_t kselect_max_rank() const {
    TOPKMON_ASSERT_MSG(false, "protocol does not serve k-select");
    return 0;
  }

  /// The ε-approximate j-th largest value, 1-based, j ≤ kselect_max_rank().
  virtual Value kselect(std::size_t j) const {
    (void)j;
    TOPKMON_ASSERT_MSG(false, "protocol does not serve k-select");
    return 0;
  }

  // ---- kCountDistinct -----------------------------------------------------

  /// The number of distinct ε-bands occupied by the fleet's current values.
  virtual std::uint64_t distinct_count() const {
    TOPKMON_ASSERT_MSG(false, "protocol does not serve count-distinct");
    return 0;
  }

  // ---- kThreshold ---------------------------------------------------------

  /// True iff some node's value is strictly above the threshold bound.
  virtual bool alert_active() const {
    TOPKMON_ASSERT_MSG(false, "protocol does not serve threshold alerts");
    return false;
  }

  /// The exact number of nodes strictly above the threshold bound.
  virtual std::uint64_t above_count() const {
    TOPKMON_ASSERT_MSG(false, "protocol does not serve threshold alerts");
    return 0;
  }
};

class MonitoringProtocol {
 public:
  virtual ~MonitoringProtocol() = default;

  virtual void start(SimContext& ctx) = 0;
  virtual void on_step(SimContext& ctx) = 0;

  /// Recovery hook: called *instead of* on_step() at steps where the fleet
  /// membership changed (a node joined or left, see src/faults). A rejoining
  /// node resumes the live stream and a leaving node freezes, so cached
  /// state/filters may be arbitrarily wrong; the default recovery re-runs
  /// start(), whose contract (correct output, valid filter set, quiescence)
  /// re-validates and redistributes filters from the current values.
  /// Protocols with cheaper incremental recovery override this. Never called
  /// on the fault-free path.
  virtual void on_membership_change(SimContext& ctx) { start(ctx); }

  /// Window-expiry hook: called *instead of* on_step() at steps where some
  /// node's window maximum dropped purely because its old maximum slid out
  /// of the window (sliding-window mode, src/model/window.hpp) — a value
  /// decrease no fresh observation caused. Cached filters/thresholds keyed
  /// to the expired maxima may now sit arbitrarily above the live window;
  /// the default treats the step as ordinary (the filter-violation machinery
  /// catches downward moves), protocols caching value-derived state override
  /// to invalidate it. Never called on the unwindowed (W = ∞) path; a
  /// membership change in the same step takes precedence.
  virtual void on_window_expiry(SimContext& ctx) { on_step(ctx); }

  /// The server's current output F(t); size k for top-k-serving protocols,
  /// empty for protocols that do not serve QueryKind::kTopK.
  virtual const OutputSet& output() const = 0;

  /// The protocol's advertised query surface, or nullptr when it serves
  /// exactly top-k positions (the paper's protocols). Non-owning; valid as
  /// long as the protocol lives. Protocols answering anything beyond (or
  /// instead of) top-k override this to return their QueryCapabilities.
  virtual const QueryCapabilities* capabilities() const { return nullptr; }

  virtual std::string_view name() const = 0;
};

/// The protocol's surface for `kind`, or nullptr when it does not serve it.
/// The replacement for the old as_kselect() dynamic discovery: callers name
/// the kind they dispatch on instead of downcasting to a per-kind interface.
inline const QueryCapabilities* capability_for(const MonitoringProtocol& p,
                                               QueryKind kind) {
  const QueryCapabilities* caps = p.capabilities();
  return caps != nullptr && caps->supports(kind) ? caps : nullptr;
}

/// True iff the protocol maintains a top-k-position output — every protocol
/// without explicit capabilities, plus any advertising QueryKind::kTopK.
inline bool serves_topk(const MonitoringProtocol& p) {
  const QueryCapabilities* caps = p.capabilities();
  return caps == nullptr || caps->supports(QueryKind::kTopK);
}

}  // namespace topkmon
