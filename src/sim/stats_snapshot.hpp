// StatsSnapshot — the one struct every run-statistics surface shares.
//
// RunResult (standalone Simulator), EngineStats (MonitoringEngine) and the
// networked coordinator (src/net) all report the same core: the model-level
// message accounting (CommStats totals, kinds, tags, rounds), the fault
// metrics, the window metric, and — new with the networked runtime — the
// transport-level per-link counters. Before this struct each surface
// mirrored the fields and registered its own metric names; now the block is
// declared once here, registered into a MetricsRegistry through ONE
// registration point (register_stats_metrics) and published through ONE
// write point (publish_stats), so a new counter is added in exactly one
// place.
//
// Model messages vs transport frames: CommStats counts the *paper's* cost
// measure (protocol messages of the monitoring model); NetChannelStats
// counts the *wire* (frames/bytes/retries of the real transport). A
// loss-free networked run reproduces the model counters of the in-process
// simulator bit-identically while still reporting real wire traffic.
#pragma once

#include <array>
#include <cstdint>

#include "sim/comm_stats.hpp"
#include "telemetry/metrics.hpp"

namespace topkmon {

/// Transport-level counters of one (or a sum of) coordinator⇄node-host
/// link(s) in the networked runtime (src/net). All-zero for in-process runs.
struct NetChannelStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_recv = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t send_retries = 0;  ///< frame retransmissions (lossy links)
  std::uint64_t reconnects = 0;    ///< link outages recovered

  NetChannelStats& operator+=(const NetChannelStats& o) {
    frames_sent += o.frames_sent;
    frames_recv += o.frames_recv;
    bytes_sent += o.bytes_sent;
    bytes_recv += o.bytes_recv;
    send_retries += o.send_retries;
    reconnects += o.reconnects;
    return *this;
  }

  friend bool operator==(const NetChannelStats&, const NetChannelStats&) = default;
};

struct StatsSnapshot {
  // ---- model-level communication (CommStats) ------------------------------
  std::uint64_t messages = 0;
  std::uint64_t node_to_server = 0;
  std::uint64_t server_to_node = 0;
  std::uint64_t broadcasts = 0;
  std::array<std::uint64_t, kNumMessageTags> by_tag{};
  std::uint64_t rounds = 0;  ///< total communication rounds across all steps

  // ---- fault metrics (src/faults; zero on the fault-free path) ------------
  std::uint64_t messages_lost = 0;    ///< retransmissions on lossy links
  std::uint64_t stale_reads = 0;      ///< observations served from the past
  std::uint64_t recovery_rounds = 0;  ///< membership/link recoveries run

  // ---- window metric (src/model/window.hpp; zero unwindowed) --------------
  std::uint64_t window_expirations = 0;

  // ---- transport counters (src/net; zero in-process) ----------------------
  NetChannelStats net{};

  /// The CommStats-derived part of the snapshot (net stays zero).
  static StatsSnapshot from(const CommStats& s,
                            std::uint64_t window_expirations = 0);

  /// Field-wise sum — aggregating many shards/queries/links into one report.
  StatsSnapshot& operator+=(const StatsSnapshot& o) {
    messages += o.messages;
    node_to_server += o.node_to_server;
    server_to_node += o.server_to_node;
    broadcasts += o.broadcasts;
    for (std::size_t t = 0; t < kNumMessageTags; ++t) by_tag[t] += o.by_tag[t];
    rounds += o.rounds;
    messages_lost += o.messages_lost;
    stale_reads += o.stale_reads;
    recovery_rounds += o.recovery_rounds;
    window_expirations += o.window_expirations;
    net += o.net;
    return *this;
  }

  friend bool operator==(const StatsSnapshot&, const StatsSnapshot&) = default;
};

/// Registry ids of the snapshot's metric namespace (comm.*, faults.*,
/// window.*, net.*) — returned by the single registration point below.
struct StatsSnapshotIds {
  telemetry::MetricId messages, node_to_server, server_to_node, broadcasts;
  std::array<telemetry::MetricId, kNumMessageTags> by_tag;
  telemetry::MetricId rounds;
  telemetry::MetricId messages_lost, stale_reads, recovery_rounds;
  telemetry::MetricId window_expirations;
  telemetry::MetricId net_frames_sent, net_frames_recv;
  telemetry::MetricId net_bytes_sent, net_bytes_recv;
  telemetry::MetricId net_send_retries, net_reconnects;
};

/// THE registration point: declares every StatsSnapshot counter in `reg`
/// (idempotent — re-registration returns the existing ids).
StatsSnapshotIds register_stats_metrics(telemetry::MetricsRegistry& reg);

/// THE publication point: mirrors `snap` into the registered ids by relaxed
/// stores (no RNG, no allocation — results stay bit-identical).
void publish_stats(telemetry::MetricsRegistry& reg, const StatsSnapshotIds& ids,
                   const StatsSnapshot& snap);

}  // namespace topkmon
