#include "sim/trace.hpp"

#include <sstream>

namespace topkmon {

void Trace::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_.store(capacity, std::memory_order_relaxed);
  trim_locked();
}

void Trace::emit(TimeStep t, std::string category, std::string detail) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(TraceEvent{t, std::move(category), std::move(detail)});
  trim_locked();
}

void Trace::trim_locked() {
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  while (events_.size() > cap) {
    events_.pop_front();
  }
}

std::vector<TraceEvent> Trace::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {events_.begin(), events_.end()};
}

std::vector<std::string> Trace::render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(events_.size());
  for (const auto& e : events_) {
    std::ostringstream oss;
    oss << "t=" << e.time << " [" << e.category << "] " << e.detail;
    out.push_back(oss.str());
  }
  return out;
}

void Trace::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

Trace& Trace::global() {
  static Trace trace;
  return trace;
}

}  // namespace topkmon
