#include "sim/trace.hpp"

#include <cstring>

namespace topkmon {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kPhase: return "phase";
    case TraceCategory::kViolation: return "violation";
    case TraceCategory::kInterval: return "interval";
    case TraceCategory::kRecovery: return "recovery";
    case TraceCategory::kWindow: return "window";
    case TraceCategory::kProbe: return "probe";
    case TraceCategory::kOther: return "other";
  }
  return "?";
}

std::string TraceEvent::render() const {
  std::string out = "t=" + std::to_string(time) + " [";
  out += to_string(category);
  out += "] ";
  out += detail;
  return out;
}

void Trace::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  // Rebuild the ring at the new size, keeping the newest events (matches the
  // old trim-on-shrink semantics).
  std::vector<TraceEvent> next(capacity);
  const std::size_t keep = count_ < capacity ? count_ : capacity;
  for (std::size_t i = 0; i < keep; ++i) {
    // i-th newest, oldest of the kept block first.
    const std::size_t src = (head_ + ring_.size() - keep + i) % ring_.size();
    next[i] = ring_[src];
  }
  ring_ = std::move(next);
  head_ = keep % (capacity == 0 ? 1 : capacity);
  count_ = keep;
  capacity_.store(capacity, std::memory_order_relaxed);
}

void Trace::emit(TimeStep t, TraceCategory category, std::string_view detail) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return;  // raced with set_capacity(0)
  TraceEvent& e = ring_[head_];
  e.time = t;
  e.category = category;
  const std::size_t n =
      detail.size() < kTraceDetailChars - 1 ? detail.size() : kTraceDetailChars - 1;
  std::memcpy(e.detail, detail.data(), n);
  e.detail[n] = '\0';
  head_ = (head_ + 1) % ring_.size();
  if (count_ < ring_.size()) ++count_;
}

std::size_t Trace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::vector<TraceEvent> Trace::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(head_ + ring_.size() - count_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<std::string> Trace::render() const {
  const std::vector<TraceEvent> events = snapshot();
  std::vector<std::string> out;
  out.reserve(events.size());
  for (const TraceEvent& e : events) {
    out.push_back(e.render());
  }
  return out;
}

void Trace::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
  count_ = 0;
}

Trace& Trace::global() {
  static Trace trace;
  return trace;
}

}  // namespace topkmon
