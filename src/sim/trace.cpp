#include "sim/trace.hpp"

#include <sstream>

namespace topkmon {

void Trace::emit(TimeStep t, std::string category, std::string detail) {
  if (!enabled()) return;
  events_.push_back(TraceEvent{t, std::move(category), std::move(detail)});
  trim();
}

void Trace::trim() {
  while (events_.size() > capacity_) {
    events_.pop_front();
  }
}

std::vector<std::string> Trace::render() const {
  std::vector<std::string> out;
  out.reserve(events_.size());
  for (const auto& e : events_) {
    std::ostringstream oss;
    oss << "t=" << e.time << " [" << e.category << "] " << e.detail;
    out.push_back(oss.str());
  }
  return out;
}

Trace& Trace::global() {
  static Trace trace;
  return trace;
}

}  // namespace topkmon
