#include "sim/stats_snapshot.hpp"

namespace topkmon {

StatsSnapshot StatsSnapshot::from(const CommStats& s,
                                  std::uint64_t window_expirations) {
  StatsSnapshot snap;
  snap.messages = s.total();
  snap.node_to_server = s.by_kind(MessageKind::kNodeToServer);
  snap.server_to_node = s.by_kind(MessageKind::kServerToNode);
  snap.broadcasts = s.by_kind(MessageKind::kBroadcast);
  for (std::size_t t = 0; t < kNumMessageTags; ++t) {
    snap.by_tag[t] = s.by_tag(static_cast<MessageTag>(t));
  }
  snap.rounds = s.total_rounds();
  snap.messages_lost = s.messages_lost();
  snap.stale_reads = s.stale_reads();
  snap.recovery_rounds = s.recovery_rounds();
  snap.window_expirations = window_expirations;
  return snap;
}

StatsSnapshotIds register_stats_metrics(telemetry::MetricsRegistry& reg) {
  StatsSnapshotIds ids;
  ids.messages = reg.counter("comm.messages");
  ids.node_to_server = reg.counter("comm.node_to_server");
  ids.server_to_node = reg.counter("comm.server_to_node");
  ids.broadcasts = reg.counter("comm.broadcasts");
  for (std::size_t t = 0; t < kNumMessageTags; ++t) {
    ids.by_tag[t] = reg.counter("comm.tag." + to_string(static_cast<MessageTag>(t)));
  }
  ids.rounds = reg.counter("comm.rounds");
  ids.messages_lost = reg.counter("faults.messages_lost");
  ids.stale_reads = reg.counter("faults.stale_reads");
  ids.recovery_rounds = reg.counter("faults.recovery_rounds");
  ids.window_expirations = reg.counter("window.expirations");
  ids.net_frames_sent = reg.counter("net.frames_sent");
  ids.net_frames_recv = reg.counter("net.frames_recv");
  ids.net_bytes_sent = reg.counter("net.bytes_sent");
  ids.net_bytes_recv = reg.counter("net.bytes_recv");
  ids.net_send_retries = reg.counter("net.send_retries");
  ids.net_reconnects = reg.counter("net.reconnects");
  return ids;
}

void publish_stats(telemetry::MetricsRegistry& reg, const StatsSnapshotIds& ids,
                   const StatsSnapshot& snap) {
  reg.set(ids.messages, snap.messages);
  reg.set(ids.node_to_server, snap.node_to_server);
  reg.set(ids.server_to_node, snap.server_to_node);
  reg.set(ids.broadcasts, snap.broadcasts);
  for (std::size_t t = 0; t < kNumMessageTags; ++t) {
    reg.set(ids.by_tag[t], snap.by_tag[t]);
  }
  reg.set(ids.rounds, snap.rounds);
  reg.set(ids.messages_lost, snap.messages_lost);
  reg.set(ids.stale_reads, snap.stale_reads);
  reg.set(ids.recovery_rounds, snap.recovery_rounds);
  reg.set(ids.window_expirations, snap.window_expirations);
  reg.set(ids.net_frames_sent, snap.net.frames_sent);
  reg.set(ids.net_frames_recv, snap.net.frames_recv);
  reg.set(ids.net_bytes_sent, snap.net.bytes_sent);
  reg.set(ids.net_bytes_recv, snap.net.bytes_recv);
  reg.set(ids.net_send_retries, snap.net.send_retries);
  reg.set(ids.net_reconnects, snap.net.reconnects);
}

}  // namespace topkmon
