// Simulator — drives generator → protocol → validation per time step.
//
// Strict mode re-checks after every step that the protocol upheld its
// contract (output correctness via the Oracle, filter validity via
// Observation 2.2, quiescence). History recording retains the full value
// matrix so the offline OPT (src/offline) can be evaluated on exactly the
// stream the online algorithm saw — required because adaptive adversaries
// make the stream depend on the algorithm's randomness.
//
// Hot path: all per-step state lives in a preallocated SoA FleetState
// (model/fleet_state.hpp) — generator staging, fault-effective values and
// flags, window rings — and σ(t) comes from the fleet's incremental
// TopKOrder instead of a per-step sort, so a steady-state step performs no
// heap allocation (see util/alloc_counter.hpp). Strict-mode scratch (the
// filter snapshot the validator consumes) is captured lazily into a
// reusable arena only when validation actually runs.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "model/band_ladder.hpp"
#include "model/fleet_state.hpp"
#include "model/window.hpp"
#include "sim/context.hpp"
#include "sim/protocol.hpp"
#include "sim/stats_snapshot.hpp"
#include "sim/stream.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "util/arena.hpp"
#include "util/assert.hpp"

namespace topkmon::telemetry {
class TelemetrySink;
}

namespace topkmon {

struct SimConfig {
  std::size_t k = 3;
  double epsilon = 0.1;
  std::uint64_t seed = 1;
  bool strict = false;          ///< validate output/filters after every step
  bool record_history = false;  ///< keep the n×T value matrix for offline OPT

  /// Threshold bound T for QueryKind::kThreshold protocols; ignored by
  /// every other protocol (and by the validator unless the protocol
  /// advertises the kind).
  Value threshold = 0;

  /// Fault model (src/faults): null = perfectly reliable static fleet. With
  /// a schedule attached the simulator injects churn/straggler effects into
  /// the observation vector, applies lossy-link accounting, and fires the
  /// protocol's recovery hook on membership changes. An all-zero schedule
  /// reproduces the fault-free run bit-identically.
  FleetSchedulePtr faults;

  /// Sliding-window mode (src/model/window.hpp): with window ≥ 1 the
  /// protocol monitors per-node window maxima over the last `window` steps
  /// instead of instantaneous values; kInfiniteWindow (0) keeps the paper's
  /// semantics bit-identically. The transform applies *after* fault
  /// injection — nodes window what they actually observed.
  std::size_t window = kInfiniteWindow;
};

/// The StatsSnapshot core (comm totals/kinds/tags/rounds, fault metrics —
/// all zero on the fault-free path — the fleet-level window_expirations
/// metric, and the networked runtime's per-link transport counters) plus the
/// per-run extrema the standalone simulator adds on top.
struct RunResult : StatsSnapshot {
  std::uint64_t steps = 0;
  std::uint64_t max_rounds_per_step = 0;
  std::size_t max_sigma = 0;
  double messages_per_step = 0.0;
};

class Simulator {
 public:
  Simulator(SimConfig cfg, std::unique_ptr<StreamGenerator> gen,
            std::unique_ptr<MonitoringProtocol> protocol);

  /// Externally-driven simulator: no generator; observation vectors are
  /// injected per step via `step_with`. Used by the MonitoringEngine, which
  /// runs one shared generator for many query simulators.
  Simulator(SimConfig cfg, std::size_t n,
            std::unique_ptr<MonitoringProtocol> protocol);

  /// Advances one time step (t = 0 on the first call).
  void step();

  /// Snapshot hook: advances one time step with an externally supplied
  /// observation vector (size n). Usable with or without a generator; the
  /// generator, if any, is bypassed for this step.
  void step_with(const ValueVector& values);

  /// Runs `steps` time steps and returns aggregate statistics.
  RunResult run(TimeStep steps);

  /// Aggregate statistics for everything executed so far.
  RunResult result() const;

  SimContext& context() { return ctx_; }
  const SimContext& context() const { return ctx_; }
  MonitoringProtocol& protocol() { return *protocol_; }
  const MonitoringProtocol& protocol() const { return *protocol_; }
  bool has_generator() const { return gen_ != nullptr; }
  const StreamGenerator& generator() const {
    TOPKMON_ASSERT_MSG(gen_ != nullptr, "externally-driven Simulator has no generator");
    return *gen_;
  }

  /// Recorded observation history (empty unless cfg.record_history).
  const std::vector<ValueVector>& history() const { return history_; }

  std::size_t max_sigma() const { return max_sigma_; }
  const SimConfig& config() const { return cfg_; }

  /// The fleet's SoA step state (staging/effective buffers, fault flags,
  /// window rings, incremental order).
  const FleetState& fleet() const { return fleet_; }

  /// Engine hook: supplies σ(t) for (k, ε) on the current step's values in
  /// place of the per-simulator incremental-order computation. Must return
  /// the identical quantity (shared-snapshot memoization, not
  /// approximation).
  using SigmaFn = std::function<std::size_t(std::size_t k, double epsilon)>;
  void set_sigma_hook(SigmaFn fn) { sigma_hook_ = std::move(fn); }

  /// Engine plumbing: arms lossy-link accounting and membership-change
  /// recovery from `faults` WITHOUT value injection — the engine transforms
  /// the shared snapshot once per step before fanning it out, so per-query
  /// simulators must not transform again. Standalone use goes through
  /// SimConfig::faults instead, which additionally installs the injector.
  void attach_fault_channel(FleetSchedulePtr faults);

  /// The attached fault schedule (null on the fault-free path).
  const FleetSchedule* faults() const { return faults_.get(); }

  /// Net-runtime plumbing: forces the next step to run the protocol's
  /// membership-change recovery (and book a recovery round) even if the
  /// fault schedule scripts none — the networked coordinator fires this when
  /// a node-host link comes back from an outage, so reconnections exercise
  /// the same recovery path scripted churn does. One-shot; never armed on
  /// the loss-free path, which therefore stays bit-identical.
  void force_recovery_next_step() { force_recovery_ = true; }

  /// Engine plumbing: points this query at the engine's shared per-window
  /// value model WITHOUT value transformation — the engine windows the
  /// shared snapshot once per step before fanning it out, and per-query
  /// simulators only consult the model for expiry dispatch (the
  /// on_window_expiry hook) and the window_expirations metric. Standalone
  /// use goes through SimConfig::window instead, which owns a model (inside
  /// the FleetState) and additionally applies the transform in step_with().
  void attach_window_channel(const WindowedValueModel* model);

  /// The window model in effect (owned or engine-shared); null = unwindowed.
  const WindowedValueModel* window_model() const { return window_view_; }

  // ---- telemetry (src/telemetry) ------------------------------------------

  /// Attaches a telemetry sink: registers this simulator's metric namespace
  /// (comm.*, faults.*, window.*, order.*, sim.*) in the sink's registry,
  /// adds the default timeseries channels (unless the sink already has
  /// channels), arms the per-phase step profiler, and mirrors current values
  /// into the registry after every step. Setup only — must precede the first
  /// step; the sink must outlive the simulator. Publishing reads existing
  /// counters (no RNG, no extra messages) and allocates nothing in steady
  /// state, so results stay bit-identical with telemetry attached.
  void attach_telemetry(telemetry::TelemetrySink* sink);

  /// Arms only the per-phase step profiler — the lighter hook benches and
  /// engine shards use. attach_telemetry() implies this with the sink's own
  /// profiler. Null detaches.
  void set_profiler(telemetry::StepProfiler* prof) {
    profiler_ = prof;
    ctx_.set_profiler(prof);
  }
  telemetry::StepProfiler* profiler() const { return profiler_; }

 private:
  void validate_strict(const ValueVector& values);
  void publish_telemetry(std::size_t sigma);

  SimConfig cfg_;
  std::unique_ptr<StreamGenerator> gen_;
  std::unique_ptr<MonitoringProtocol> protocol_;
  SimContext ctx_;
  Rng gen_rng_;
  FleetSchedulePtr faults_;                  ///< loss + recovery channel
  std::unique_ptr<FaultInjector> injector_;  ///< value faults (standalone only)
  FleetState fleet_;  ///< SoA step state: staging, effective, flags, window
  const WindowedValueModel* window_view_ = nullptr;   ///< owned or engine-shared
  std::vector<ValueVector> history_;
  SigmaFn sigma_hook_;
  ScratchArena strict_arena_;  ///< lazy validator scratch (strict mode only)
  BandLadder strict_ladder_;   ///< count-distinct oracle ladder (built once; ε fixed)
  bool strict_ladder_ready_ = false;
  std::size_t max_sigma_ = 0;
  TimeStep next_t_ = 0;
  bool force_recovery_ = false;  ///< one-shot link-reconnect recovery (net)

  /// Registry ids of the simulator's metric namespace (attach_telemetry):
  /// the shared StatsSnapshot block plus the sim-specific gauges.
  struct TelemetryIds {
    StatsSnapshotIds stats;
    telemetry::MetricId order_repairs, order_rebuilds;
    telemetry::MetricId step, sigma, violating;
    telemetry::MetricId messages_per_step;  ///< histogram
  };
  telemetry::TelemetrySink* telemetry_ = nullptr;
  telemetry::StepProfiler* profiler_ = nullptr;
  TelemetryIds ids_{};
};

}  // namespace topkmon
