// Simulator — drives generator → protocol → validation per time step.
//
// Strict mode re-checks after every step that the protocol upheld its
// contract (output correctness via the Oracle, filter validity via
// Observation 2.2, quiescence). History recording retains the full value
// matrix so the offline OPT (src/offline) can be evaluated on exactly the
// stream the online algorithm saw — required because adaptive adversaries
// make the stream depend on the algorithm's randomness.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "sim/context.hpp"
#include "sim/protocol.hpp"
#include "sim/stream.hpp"

namespace topkmon {

struct SimConfig {
  std::size_t k = 3;
  double epsilon = 0.1;
  std::uint64_t seed = 1;
  bool strict = false;          ///< validate output/filters after every step
  bool record_history = false;  ///< keep the n×T value matrix for offline OPT
};

struct RunResult {
  std::uint64_t messages = 0;
  std::uint64_t node_to_server = 0;
  std::uint64_t server_to_node = 0;
  std::uint64_t broadcasts = 0;
  std::array<std::uint64_t, kNumMessageTags> by_tag{};
  std::uint64_t steps = 0;
  std::uint64_t max_rounds_per_step = 0;
  std::size_t max_sigma = 0;
  double messages_per_step = 0.0;
};

class Simulator {
 public:
  Simulator(SimConfig cfg, std::unique_ptr<StreamGenerator> gen,
            std::unique_ptr<MonitoringProtocol> protocol);

  /// Advances one time step (t = 0 on the first call).
  void step();

  /// Runs `steps` time steps and returns aggregate statistics.
  RunResult run(TimeStep steps);

  /// Aggregate statistics for everything executed so far.
  RunResult result() const;

  SimContext& context() { return ctx_; }
  const SimContext& context() const { return ctx_; }
  MonitoringProtocol& protocol() { return *protocol_; }
  const StreamGenerator& generator() const { return *gen_; }

  /// Recorded observation history (empty unless cfg.record_history).
  const std::vector<ValueVector>& history() const { return history_; }

  std::size_t max_sigma() const { return max_sigma_; }
  const SimConfig& config() const { return cfg_; }

 private:
  void validate_strict() const;

  SimConfig cfg_;
  std::unique_ptr<StreamGenerator> gen_;
  std::unique_ptr<MonitoringProtocol> protocol_;
  SimContext ctx_;
  Rng gen_rng_;
  ValueVector scratch_values_;
  std::vector<ValueVector> history_;
  std::size_t max_sigma_ = 0;
  TimeStep next_t_ = 0;
};

}  // namespace topkmon
