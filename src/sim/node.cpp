#include "sim/node.hpp"

// Node is header-only; this TU anchors the header for build hygiene checks.
