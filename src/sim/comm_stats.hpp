// Message accounting — the cost measure of the continuous monitoring model.
//
// Every message crossing the (simulated) network is counted here with a kind
// (direction) and a purpose tag. The paper's efficiency metric is the total
// number of messages; tags exist so benches can attribute cost to protocol
// phases (probing vs violation reporting vs filter redistribution).
// Rounds are also tracked per time step to verify the polylog-round budget.
//
// Fault awareness (src/faults): with a lossy-link model enabled, each counted
// message independently drops with probability p and is retransmitted until
// delivered — protocol logic is unchanged, but every drop costs one extra
// message of the same kind/tag and increments `messages_lost`. Stale reads
// and recovery rounds are booked here too so RunResult/EngineStats can
// surface all fault metrics from one place.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace topkmon {

enum class MessageKind : std::uint8_t {
  kNodeToServer = 0,
  kServerToNode = 1,
  kBroadcast = 2,
};
inline constexpr std::size_t kNumMessageKinds = 3;

enum class MessageTag : std::uint8_t {
  kExistence = 0,     ///< sends inside the EXISTENCE subprotocol
  kViolation = 1,     ///< filter-violation reports
  kProbe = 2,         ///< max/top-m sampling traffic
  kFilterBroadcast = 3,  ///< broadcast separator / filter rule updates
  kFilterUnicast = 4, ///< per-node role or filter assignments
  kOther = 5,
};
inline constexpr std::size_t kNumMessageTags = 6;

std::string to_string(MessageKind k);
std::string to_string(MessageTag t);

class CommStats {
 public:
  void count(MessageKind kind, MessageTag tag, std::uint64_t n = 1);

  /// Called by the simulator at the start of each time step.
  void begin_step();
  /// Protocol-side: records `r` communication rounds consumed at this step.
  void add_rounds(std::uint64_t r);

  std::uint64_t total() const { return total_; }
  std::uint64_t by_kind(MessageKind k) const {
    return kind_[static_cast<std::size_t>(k)];
  }
  std::uint64_t by_tag(MessageTag t) const { return tag_[static_cast<std::size_t>(t)]; }

  std::uint64_t steps() const { return steps_; }
  std::uint64_t rounds_this_step() const { return rounds_this_step_; }
  std::uint64_t max_rounds_per_step() const { return max_rounds_per_step_; }
  std::uint64_t total_rounds() const { return total_rounds_; }
  std::uint64_t messages_this_step() const { return total_ - total_at_step_start_; }

  // ---- fault model (src/faults) ------------------------------------------

  /// Enables the lossy-link model: every subsequent count() draws, per
  /// message, a geometric number of drops with probability `p` from `rng`.
  /// p = 0 disables the model and performs no draws at all (bit-identical
  /// accounting to a CommStats without loss).
  void enable_loss(double p, Rng rng);
  double loss_p() const { return loss_p_; }

  /// Injector-side: `n` node observations served stale this step.
  void add_stale_reads(std::uint64_t n) { stale_reads_ += n; }
  /// Simulator-side: one membership-change recovery round executed.
  void add_recovery() { ++recovery_rounds_; }

  std::uint64_t messages_lost() const { return messages_lost_; }
  std::uint64_t stale_reads() const { return stale_reads_; }
  std::uint64_t recovery_rounds() const { return recovery_rounds_; }

  /// Resets all counters; the loss model (p and RNG state) is preserved.
  void reset();

  /// Multi-line human-readable report.
  std::string report() const;

 private:
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, kNumMessageKinds> kind_{};
  std::array<std::uint64_t, kNumMessageTags> tag_{};
  std::uint64_t steps_ = 0;
  std::uint64_t rounds_this_step_ = 0;
  std::uint64_t max_rounds_per_step_ = 0;
  std::uint64_t total_rounds_ = 0;
  std::uint64_t total_at_step_start_ = 0;

  double loss_p_ = 0.0;
  Rng loss_rng_{0};
  std::uint64_t messages_lost_ = 0;
  std::uint64_t stale_reads_ = 0;
  std::uint64_t recovery_rounds_ = 0;
};

}  // namespace topkmon
