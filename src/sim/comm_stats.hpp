// Message accounting — the cost measure of the continuous monitoring model.
//
// Every message crossing the (simulated) network is counted here with a kind
// (direction) and a purpose tag. The paper's efficiency metric is the total
// number of messages; tags exist so benches can attribute cost to protocol
// phases (probing vs violation reporting vs filter redistribution).
// Rounds are also tracked per time step to verify the polylog-round budget.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace topkmon {

enum class MessageKind : std::uint8_t {
  kNodeToServer = 0,
  kServerToNode = 1,
  kBroadcast = 2,
};
inline constexpr std::size_t kNumMessageKinds = 3;

enum class MessageTag : std::uint8_t {
  kExistence = 0,     ///< sends inside the EXISTENCE subprotocol
  kViolation = 1,     ///< filter-violation reports
  kProbe = 2,         ///< max/top-m sampling traffic
  kFilterBroadcast = 3,  ///< broadcast separator / filter rule updates
  kFilterUnicast = 4, ///< per-node role or filter assignments
  kOther = 5,
};
inline constexpr std::size_t kNumMessageTags = 6;

std::string to_string(MessageKind k);
std::string to_string(MessageTag t);

class CommStats {
 public:
  void count(MessageKind kind, MessageTag tag, std::uint64_t n = 1);

  /// Called by the simulator at the start of each time step.
  void begin_step();
  /// Protocol-side: records `r` communication rounds consumed at this step.
  void add_rounds(std::uint64_t r);

  std::uint64_t total() const { return total_; }
  std::uint64_t by_kind(MessageKind k) const {
    return kind_[static_cast<std::size_t>(k)];
  }
  std::uint64_t by_tag(MessageTag t) const { return tag_[static_cast<std::size_t>(t)]; }

  std::uint64_t steps() const { return steps_; }
  std::uint64_t rounds_this_step() const { return rounds_this_step_; }
  std::uint64_t max_rounds_per_step() const { return max_rounds_per_step_; }
  std::uint64_t total_rounds() const { return total_rounds_; }
  std::uint64_t messages_this_step() const { return total_ - total_at_step_start_; }

  void reset();

  /// Multi-line human-readable report.
  std::string report() const;

 private:
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, kNumMessageKinds> kind_{};
  std::array<std::uint64_t, kNumMessageTags> tag_{};
  std::uint64_t steps_ = 0;
  std::uint64_t rounds_this_step_ = 0;
  std::uint64_t max_rounds_per_step_ = 0;
  std::uint64_t total_rounds_ = 0;
  std::uint64_t total_at_step_start_ = 0;
};

}  // namespace topkmon
