// SimContext — the server's only window onto the distributed nodes.
//
// Protocol (server-side) code learns node values exclusively through the
// accounted primitives below; each call books its messages with CommStats.
// Node-side computation (a node evaluating a predicate on its *own* value,
// checking its *own* filter) is free, as in the model of Cormode et al. that
// the paper builds on. Generators and the strict validator may read
// `nodes()` directly — they are the adversary and the referee, not the
// algorithm.
//
// Primitives and their costs:
//   report_value(i)      1 node→server message
//   unicast/set_filter   1 server→node message
//   broadcast(...)       1 broadcast message (all nodes receive)
//   existence(bit)       Lemma 3.1 process, O(1) messages in expectation
//   collect_violations() existence over "my filter is violated"
//   sample_max(pred)     Lemma 2.6, O(log n) messages in expectation
//   probe_top(m)         m × sample_max with exclusion, O(m log n)
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "model/filter.hpp"
#include "model/types.hpp"
#include "protocols/existence.hpp"
#include "sim/comm_stats.hpp"
#include "sim/node.hpp"
#include "telemetry/profiler.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace topkmon {

struct SimParams {
  std::size_t n = 10;
  std::size_t k = 3;
  double epsilon = 0.1;

  /// Threshold bound T for QueryKind::kThreshold protocols (value is public
  /// configuration, like k and ε); ignored by every other protocol.
  Value threshold = 0;
};

/// One node's answer to a probe: its id and the value it reported.
struct ProbeResult {
  NodeId id;
  Value value;
};

/// Cross-query probe batching hook (engine-level work sharing).
///
/// `probe_top(m)` asks for the global top-m by (value, id) — a predicate that
/// is identical for every query monitoring the same fleet within one time
/// step. When a sharer is installed, SimContext routes `probe_top` through it
/// so that one probe round serves all queries of the step; the sharer books
/// the messages once (in its own CommStats), not per calling query.
class ProbeSharer {
 public:
  virtual ~ProbeSharer() = default;

  /// Top-m nodes (descending rank order; shorter if the fleet is smaller).
  /// Must be safe to call from concurrent shards.
  virtual std::vector<ProbeResult> top(std::size_t m) = 0;
};

class SimContext {
 public:
  SimContext(SimParams params, std::uint64_t protocol_seed);

  std::size_t n() const { return nodes_.size(); }
  std::size_t k() const { return params_.k; }
  double epsilon() const { return params_.epsilon; }
  Value threshold() const { return params_.threshold; }
  TimeStep time() const { return time_; }

  /// Read-only node array (values + filters). For generators, validators and
  /// node-side predicates; protocol server logic must use accounted calls.
  std::span<const Node> nodes() const { return {nodes_.data(), nodes_.size()}; }

  // ---- accounted primitives (server side) --------------------------------

  /// Node i sends its current value to the server (1 message).
  Value report_value(NodeId i, MessageTag tag = MessageTag::kProbe);

  /// Server sends a control message to node i (1 message).
  void unicast(NodeId i, MessageTag tag = MessageTag::kOther);

  /// Server assigns a filter to a single node (1 server→node message).
  void set_filter_unicast(NodeId i, const Filter& f,
                          MessageTag tag = MessageTag::kFilterUnicast);

  /// Server broadcasts a control value (1 message); no filter change.
  void broadcast(MessageTag tag = MessageTag::kOther);

  /// Server broadcasts a *rule*; every node derives its filter from it
  /// locally (1 broadcast message total). The rule may depend only on
  /// node-public state (its role previously communicated, its id).
  void broadcast_filters(const std::function<Filter(const Node&)>& rule,
                         MessageTag tag = MessageTag::kFilterBroadcast);

  /// Lemma 3.1 EXISTENCE over the node-side predicate `bit`.
  ExistenceResult existence(const std::function<bool(const Node&)>& bit,
                            MessageTag tag = MessageTag::kExistence);

  /// EXISTENCE over "node observes a filter violation" (Corollary 3.2).
  /// Senders attach their value; the server additionally learns the
  /// violation direction from the value vs the node's (server-known) filter.
  ///
  /// Hot-path note: violation bits are maintained incrementally (observe /
  /// filter writes), so the quiescent case — no node violating — answers in
  /// O(1) with the exact message/round accounting and RNG draws (none) the
  /// full EXISTENCE run would produce on an empty active set.
  ExistenceResult collect_violations();

  /// Nodes currently observing a filter violation (maintained incrementally).
  std::size_t violating_count() const { return violating_count_; }

  using ProbeResult = ::topkmon::ProbeResult;

  /// Lemma 2.6: the node holding the maximum (value, id-tiebreak) among
  /// nodes satisfying `pred`; nullopt if none. O(log n) messages expected.
  std::optional<ProbeResult> sample_max(const std::function<bool(const Node&)>& pred);

  /// The core Lemma 2.6 threshold-sampling loop, shared by sample_max and
  /// the engine's SharedProbe so both book identical costs: existence sends
  /// as node→server kProbe messages (+rounds), one kProbe broadcast per
  /// improvement. `candidate(i, best)` is the node-side activity bit given
  /// the announced best-so-far.
  static std::optional<ProbeResult> sample_max_over(
      std::size_t n,
      const std::function<bool(NodeId, const std::optional<ProbeResult>&)>& candidate,
      const std::function<Value(NodeId)>& value, CommStats& stats, Rng& rng);

  /// Top-m nodes overall by repeated sample_max with exclusion; descending
  /// rank order. O(m log n) messages expected.
  std::vector<ProbeResult> probe_top(std::size_t m);

  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }
  Rng& rng() { return rng_; }

  // ---- simulator plumbing -------------------------------------------------

  /// Installs the observation vector for the next time step.
  void advance_time(const ValueVector& values);

  /// Direct filter write without accounting — simulator/test setup only.
  void set_filter_free(NodeId i, const Filter& f) { install_filter(i, f); }

  /// Installs (or clears, with nullptr) the cross-query probe batching hook;
  /// the sharer must outlive this context. Engine plumbing only.
  void set_probe_sharer(ProbeSharer* sharer) { probe_sharer_ = sharer; }
  ProbeSharer* probe_sharer() const { return probe_sharer_; }

  /// Arms (or clears) the per-phase step profiler: collect_violations times
  /// itself under Phase::kViolationCollect. Simulator plumbing.
  void set_profiler(telemetry::StepProfiler* prof) { profiler_ = prof; }

  // ---- filter-change tracking (net runtime plumbing) ----------------------

  /// Arms per-step dirty-filter tracking: every install_filter (unicast,
  /// broadcast rule, or free write) records the node id, deduped, until the
  /// next advance_time clears the set. The networked coordinator (src/net)
  /// consumes the set to ship filter deltas to node-hosts. Off by default —
  /// untracked contexts pay nothing. Buffers are preallocated here, so
  /// tracked steady-state steps stay allocation-free.
  void enable_filter_tracking() {
    if (!track_filters_) {
      track_filters_ = true;
      filter_dirty_mark_.assign(nodes_.size(), 0);
      filter_dirty_ids_.reserve(nodes_.size());
    }
  }
  bool filter_tracking() const { return track_filters_; }

  /// Node ids whose filter changed since the last advance_time (valid only
  /// with tracking enabled; unspecified order, each id at most once).
  const std::vector<NodeId>& dirty_filters() const { return filter_dirty_ids_; }

 private:
  /// Single write point for node filters: the AoS node copy (node-side
  /// checks), the SoA bound mirrors (the vectorized sweep), and the
  /// violation bit move together.
  void install_filter(NodeId i, const Filter& f) {
    nodes_[i].set_filter(f);
    filter_lo_[i] = f.lo;
    filter_hi_[i] = f.hi;
    refresh_violation(i);
    if (track_filters_ && !filter_dirty_mark_[i]) {
      filter_dirty_mark_[i] = 1;
      filter_dirty_ids_.push_back(i);
    }
  }

  /// Drops the dirty-filter set (tracking enabled only).
  void clear_dirty_filters() {
    for (const NodeId i : filter_dirty_ids_) {
      filter_dirty_mark_[i] = 0;
    }
    filter_dirty_ids_.clear();
  }

  /// Re-derives node i's violation bit after a filter or value write.
  void refresh_violation(NodeId i) {
    const std::uint8_t now = nodes_[i].violating() ? 1 : 0;
    violating_count_ += now;
    violating_count_ -= violating_[i];
    violating_[i] = now;
  }

  SimParams params_;
  std::vector<Node> nodes_;
  CommStats stats_;
  Rng rng_;
  TimeStep time_ = -1;
  ProbeSharer* probe_sharer_ = nullptr;
  telemetry::StepProfiler* profiler_ = nullptr;
  /// SoA violation bits, kept in sync with every observe / filter write so
  /// the per-step violation sweep reads a dense byte array instead of
  /// re-evaluating filters through two std::function hops per node. The
  /// bits are recomputed each advance_time by one vectorized filter-bound
  /// pass (util/simd.hpp) over the SoA bound mirrors below — bit-identical
  /// to Filter::check per node.
  std::vector<std::uint8_t> violating_;
  std::vector<double> filter_lo_;  ///< SoA mirror of nodes_[i].filter().lo
  std::vector<double> filter_hi_;  ///< SoA mirror of nodes_[i].filter().hi
  std::size_t violating_count_ = 0;
  bool track_filters_ = false;  ///< dirty-filter tracking armed (net runtime)
  std::vector<std::uint8_t> filter_dirty_mark_;  ///< per-node dedup bits
  std::vector<NodeId> filter_dirty_ids_;         ///< ids installed this step
  ScratchArena scratch_;  ///< per-step scratch (probe exclusion flags)
};

}  // namespace topkmon
