#include "sim/context.hpp"

#include "util/assert.hpp"

namespace topkmon {

SimContext::SimContext(SimParams params, std::uint64_t protocol_seed)
    : params_(params), rng_(Rng::derive(protocol_seed, /*stream_id=*/0xC0FFEE)) {
  TOPKMON_ASSERT(params.n > 0);
  TOPKMON_ASSERT(params.k >= 1 && params.k <= params.n);
  TOPKMON_ASSERT(params.epsilon >= 0.0 && params.epsilon < 1.0);
  nodes_.reserve(params.n);
  for (NodeId i = 0; i < params.n; ++i) {
    nodes_.emplace_back(i);
  }
}

Value SimContext::report_value(NodeId i, MessageTag tag) {
  TOPKMON_ASSERT(i < nodes_.size());
  stats_.count(MessageKind::kNodeToServer, tag);
  return nodes_[i].value();
}

void SimContext::unicast(NodeId i, MessageTag tag) {
  TOPKMON_ASSERT(i < nodes_.size());
  stats_.count(MessageKind::kServerToNode, tag);
}

void SimContext::set_filter_unicast(NodeId i, const Filter& f, MessageTag tag) {
  TOPKMON_ASSERT(i < nodes_.size());
  stats_.count(MessageKind::kServerToNode, tag);
  nodes_[i].set_filter(f);
}

void SimContext::broadcast(MessageTag tag) {
  stats_.count(MessageKind::kBroadcast, tag);
}

void SimContext::broadcast_filters(const std::function<Filter(const Node&)>& rule,
                                   MessageTag tag) {
  stats_.count(MessageKind::kBroadcast, tag);
  for (auto& node : nodes_) {
    node.set_filter(rule(node));
  }
}

ExistenceResult SimContext::existence(const std::function<bool(const Node&)>& bit,
                                      MessageTag tag) {
  ExistenceResult res = ExistenceProtocol::run(
      nodes_.size(), [&](NodeId i) { return bit(nodes_[i]); },
      [&](NodeId i) { return nodes_[i].value(); }, rng_);
  stats_.count(MessageKind::kNodeToServer, tag, res.messages);
  stats_.add_rounds(res.rounds);
  return res;
}

ExistenceResult SimContext::collect_violations() {
  return existence([](const Node& node) { return node.violating(); },
                   MessageTag::kViolation);
}

std::optional<SimContext::ProbeResult> SimContext::sample_max(
    const std::function<bool(const Node&)>& pred) {
  // Node-side bit: "I satisfy pred and I rank above the announced best".
  return sample_max_over(
      nodes_.size(),
      [&](NodeId i, const std::optional<ProbeResult>& best) {
        const Node& node = nodes_[i];
        if (!pred(node)) return false;
        if (!best) return true;
        return ranks_above(node.value(), node.id(), best->value, best->id);
      },
      [&](NodeId i) { return nodes_[i].value(); }, stats_, rng_);
}

std::optional<SimContext::ProbeResult> SimContext::sample_max_over(
    std::size_t n,
    const std::function<bool(NodeId, const std::optional<ProbeResult>&)>& candidate,
    const std::function<Value(NodeId)>& value, CommStats& stats, Rng& rng) {
  std::optional<ProbeResult> best;
  for (;;) {
    auto res = ExistenceProtocol::run(
        n, [&](NodeId i) { return candidate(i, best); }, value, rng);
    stats.count(MessageKind::kNodeToServer, MessageTag::kProbe, res.messages);
    stats.add_rounds(res.rounds);
    if (!res.any) break;
    for (const auto& hit : res.senders) {
      if (!best || ranks_above(hit.value, hit.id, best->value, best->id)) {
        best = ProbeResult{hit.id, hit.value};
      }
    }
    // Announce the improved threshold so nodes at or below it deactivate.
    stats.count(MessageKind::kBroadcast, MessageTag::kProbe);
  }
  return best;
}

std::vector<SimContext::ProbeResult> SimContext::probe_top(std::size_t m) {
  if (probe_sharer_ != nullptr) {
    // The global top-m is query-independent; one shared probe per step serves
    // every query, and the sharer accounts its cost exactly once.
    return probe_sharer_->top(m);
  }
  std::vector<ProbeResult> out;
  std::vector<bool> excluded(nodes_.size(), false);
  for (std::size_t j = 0; j < m; ++j) {
    auto r = sample_max([&](const Node& node) { return !excluded[node.id()]; });
    if (!r) break;
    excluded[r->id] = true;
    out.push_back(*r);
  }
  return out;
}

void SimContext::advance_time(const ValueVector& values) {
  TOPKMON_ASSERT(values.size() == nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    TOPKMON_ASSERT_MSG(values[i] <= kMaxObservableValue,
                       "generator exceeded kMaxObservableValue");
    nodes_[i].observe(values[i]);
  }
  ++time_;
}

}  // namespace topkmon
