#include "sim/context.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/simd.hpp"

namespace topkmon {

SimContext::SimContext(SimParams params, std::uint64_t protocol_seed)
    : params_(params),
      rng_(Rng::derive(protocol_seed, /*stream_id=*/0xC0FFEE)),
      violating_(params.n, 0),
      filter_lo_(params.n, Filter::all().lo),
      filter_hi_(params.n, Filter::all().hi) {
  TOPKMON_ASSERT(params.n > 0);
  TOPKMON_ASSERT(params.k >= 1 && params.k <= params.n);
  TOPKMON_ASSERT(params.epsilon >= 0.0 && params.epsilon < 1.0);
  nodes_.reserve(params.n);
  for (NodeId i = 0; i < params.n; ++i) {
    nodes_.emplace_back(i);
  }
}

Value SimContext::report_value(NodeId i, MessageTag tag) {
  TOPKMON_ASSERT(i < nodes_.size());
  stats_.count(MessageKind::kNodeToServer, tag);
  return nodes_[i].value();
}

void SimContext::unicast(NodeId i, MessageTag tag) {
  TOPKMON_ASSERT(i < nodes_.size());
  stats_.count(MessageKind::kServerToNode, tag);
}

void SimContext::set_filter_unicast(NodeId i, const Filter& f, MessageTag tag) {
  TOPKMON_ASSERT(i < nodes_.size());
  stats_.count(MessageKind::kServerToNode, tag);
  install_filter(i, f);
}

void SimContext::broadcast(MessageTag tag) {
  stats_.count(MessageKind::kBroadcast, tag);
}

void SimContext::broadcast_filters(const std::function<Filter(const Node&)>& rule,
                                   MessageTag tag) {
  stats_.count(MessageKind::kBroadcast, tag);
  for (auto& node : nodes_) {
    install_filter(node.id(), rule(node));
  }
}

ExistenceResult SimContext::existence(const std::function<bool(const Node&)>& bit,
                                      MessageTag tag) {
  ExistenceResult res = ExistenceProtocol::run(
      nodes_.size(), [&](NodeId i) { return bit(nodes_[i]); },
      [&](NodeId i) { return nodes_[i].value(); }, rng_);
  stats_.count(MessageKind::kNodeToServer, tag, res.messages);
  stats_.add_rounds(res.rounds);
  return res;
}

ExistenceResult SimContext::collect_violations() {
  TOPKMON_PHASE_SCOPE(profiler_, telemetry::Phase::kViolationCollect);
  if (violating_count_ == 0) {
    // Quiescent fast path: with an empty active set the EXISTENCE schedule
    // runs all rounds in silence and draws no randomness — reproduce its
    // result and accounting directly, skipping the O(n) node sweep.
    ExistenceResult res;
    res.rounds = ExistenceProtocol::max_rounds(nodes_.size());
    stats_.count(MessageKind::kNodeToServer, MessageTag::kViolation, 0);
    stats_.add_rounds(res.rounds);
    return res;
  }
  // The incremental bits make the node-side predicate one dense byte read.
  ExistenceResult res = ExistenceProtocol::run(
      nodes_.size(), [&](NodeId i) { return violating_[i] != 0; },
      [&](NodeId i) { return nodes_[i].value(); }, rng_);
  stats_.count(MessageKind::kNodeToServer, MessageTag::kViolation, res.messages);
  stats_.add_rounds(res.rounds);
  return res;
}

std::optional<SimContext::ProbeResult> SimContext::sample_max(
    const std::function<bool(const Node&)>& pred) {
  // Node-side bit: "I satisfy pred and I rank above the announced best".
  return sample_max_over(
      nodes_.size(),
      [&](NodeId i, const std::optional<ProbeResult>& best) {
        const Node& node = nodes_[i];
        if (!pred(node)) return false;
        if (!best) return true;
        return ranks_above(node.value(), node.id(), best->value, best->id);
      },
      [&](NodeId i) { return nodes_[i].value(); }, stats_, rng_);
}

std::optional<SimContext::ProbeResult> SimContext::sample_max_over(
    std::size_t n,
    const std::function<bool(NodeId, const std::optional<ProbeResult>&)>& candidate,
    const std::function<Value(NodeId)>& value, CommStats& stats, Rng& rng) {
  std::optional<ProbeResult> best;
  for (;;) {
    auto res = ExistenceProtocol::run(
        n, [&](NodeId i) { return candidate(i, best); }, value, rng);
    stats.count(MessageKind::kNodeToServer, MessageTag::kProbe, res.messages);
    stats.add_rounds(res.rounds);
    if (!res.any) break;
    for (const auto& hit : res.senders) {
      if (!best || ranks_above(hit.value, hit.id, best->value, best->id)) {
        best = ProbeResult{hit.id, hit.value};
      }
    }
    // Announce the improved threshold so nodes at or below it deactivate.
    stats.count(MessageKind::kBroadcast, MessageTag::kProbe);
  }
  return best;
}

std::vector<SimContext::ProbeResult> SimContext::probe_top(std::size_t m) {
  if (probe_sharer_ != nullptr) {
    // The global top-m is query-independent; one shared probe per step serves
    // every query, and the sharer accounts its cost exactly once.
    return probe_sharer_->top(m);
  }
  std::vector<ProbeResult> out;
  scratch_.reset();
  const std::span<std::uint8_t> excluded = scratch_.get<std::uint8_t>(nodes_.size());
  std::fill(excluded.begin(), excluded.end(), std::uint8_t{0});
  for (std::size_t j = 0; j < m; ++j) {
    auto r = sample_max([&](const Node& node) { return excluded[node.id()] == 0; });
    if (!r) break;
    excluded[r->id] = 1;
    out.push_back(*r);
  }
  return out;
}

void SimContext::advance_time(const ValueVector& values) {
  const std::size_t n = nodes_.size();
  TOPKMON_ASSERT(values.size() == n);
  if (track_filters_) {
    // The dirty set describes one protocol step; a new observation vector
    // starts the next one.
    clear_dirty_filters();
  }
  // The range guard is one vectorized max scan instead of a per-node branch;
  // it also certifies the exactness precondition of the violation pass's
  // u64 → double lane conversion.
  TOPKMON_ASSERT_MSG(simd::max_value(values.data(), n) <= kMaxObservableValue,
                     "generator exceeded kMaxObservableValue");
  for (NodeId i = 0; i < n; ++i) {
    nodes_[i].observe(values[i]);
  }
  // One branchless filter-bound pass over the SoA bound mirrors rederives
  // every node-side violation bit — bit-identical to Filter::check per node.
  // The bit array is what makes the per-step violation sweep
  // (collect_violations) O(1) on quiescent steps.
  violating_count_ = simd::violation_mask(values.data(), filter_lo_.data(),
                                          filter_hi_.data(), n, violating_.data());
  ++time_;
}

}  // namespace topkmon
