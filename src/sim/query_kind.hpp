// QueryKind — the typed query vocabulary of the monitoring service.
//
// The paper's object of study is the top-k-position query, but the same
// filter/violation machinery serves a family of continuous queries over the
// same fleet (Bemmann et al., arXiv:1706.03568). Each kind names one
// correctness contract, checked by the Oracle in strict mode and the fuzz
// harness:
//
//   kTopK      F(t) per Sect. 2: every clearly-larger node included, the
//              rest inside the ε-neighborhood of the k-th value.
//   kKSelect   ε-approximate j-th largest value for every j ≤ k
//              (arXiv:1709.07259): (1−ε)·v_j ≤ v̂_j and (1−ε)·v̂_j ≤ v_j.
//   kCountDistinct  exact count of distinct ε-bands (model/band_ladder.hpp)
//              occupied by the fleet's current values; ε = 0 degenerates to
//              the exact number of distinct values.
//   kThreshold exact alert predicate ∃i: v_i(t) > T plus the exact count of
//              nodes above the bound T.
//
// Protocols advertise which kinds they answer through QueryCapabilities
// (sim/protocol.hpp); QuerySpec (engine/query.hpp) and the CLI `--query`
// flag select kinds by the names below.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace topkmon {

enum class QueryKind : std::uint8_t {
  kTopK = 0,
  kKSelect,
  kCountDistinct,
  kThreshold,
};

inline constexpr std::size_t kNumQueryKinds = 4;

constexpr std::string_view to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::kTopK: return "topk";
    case QueryKind::kKSelect: return "kselect";
    case QueryKind::kCountDistinct: return "distinct";
    case QueryKind::kThreshold: return "threshold";
  }
  return "?";
}

/// The registered kind names, in enum order (the `--list queries` listing).
constexpr std::array<std::string_view, kNumQueryKinds> query_kind_names() {
  return {to_string(QueryKind::kTopK), to_string(QueryKind::kKSelect),
          to_string(QueryKind::kCountDistinct), to_string(QueryKind::kThreshold)};
}

/// Parses a kind name; accepts the canonical names above plus the protocol
/// spellings ("count_distinct", "threshold_alert"). nullopt on no match.
inline std::optional<QueryKind> parse_query_kind(std::string_view name) {
  if (name == "topk" || name == "top_k") return QueryKind::kTopK;
  if (name == "kselect" || name == "k_select") return QueryKind::kKSelect;
  if (name == "distinct" || name == "count_distinct") return QueryKind::kCountDistinct;
  if (name == "threshold" || name == "threshold_alert") return QueryKind::kThreshold;
  return std::nullopt;
}

}  // namespace topkmon
