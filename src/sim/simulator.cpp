#include "sim/simulator.hpp"

#include <algorithm>

#include "model/oracle.hpp"
#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace topkmon {

Simulator::Simulator(SimConfig cfg, std::unique_ptr<StreamGenerator> gen,
                     std::unique_ptr<MonitoringProtocol> protocol)
    : cfg_(cfg),
      gen_(std::move(gen)),
      protocol_(std::move(protocol)),
      ctx_(SimParams{gen_ ? gen_->n() : 0, cfg.k, cfg.epsilon, cfg.threshold},
           cfg.seed),
      gen_rng_(Rng::derive(cfg.seed, /*stream_id=*/0x5EED)),
      fleet_(gen_ ? gen_->n() : 1, cfg.window) {
  TOPKMON_ASSERT(gen_ != nullptr);
  TOPKMON_ASSERT(protocol_ != nullptr);
  if (cfg_.faults) {
    attach_fault_channel(cfg_.faults);
    injector_ = std::make_unique<FaultInjector>(cfg_.faults);
  }
  window_view_ = fleet_.window();
}

Simulator::Simulator(SimConfig cfg, std::size_t n,
                     std::unique_ptr<MonitoringProtocol> protocol)
    : cfg_(cfg),
      gen_(nullptr),
      protocol_(std::move(protocol)),
      ctx_(SimParams{n, cfg.k, cfg.epsilon, cfg.threshold}, cfg.seed),
      gen_rng_(Rng::derive(cfg.seed, /*stream_id=*/0x5EED)),
      fleet_(n, cfg.window) {
  TOPKMON_ASSERT(protocol_ != nullptr);
  if (cfg_.faults) {
    attach_fault_channel(cfg_.faults);
    injector_ = std::make_unique<FaultInjector>(cfg_.faults);
  }
  window_view_ = fleet_.window();
}

void Simulator::attach_window_channel(const WindowedValueModel* model) {
  TOPKMON_ASSERT_MSG(fleet_.window() == nullptr,
                     "window channel conflicts with SimConfig::window");
  TOPKMON_ASSERT_MSG(next_t_ == 0, "window channel must attach before the first step");
  window_view_ = model;
}

void Simulator::attach_fault_channel(FleetSchedulePtr faults) {
  TOPKMON_ASSERT(faults != nullptr);
  TOPKMON_ASSERT_MSG(faults->n() == ctx_.n(), "fault schedule sized for wrong fleet");
  TOPKMON_ASSERT_MSG(next_t_ == 0, "fault channel must attach before the first step");
  faults_ = std::move(faults);
  // p = 0 arms nothing: count() stays draw-free and bit-identical.
  ctx_.stats().enable_loss(faults_->loss(),
                           Rng::derive(cfg_.seed, /*stream_id=*/0x1055));
}

void Simulator::step() {
  TOPKMON_ASSERT_MSG(gen_ != nullptr,
                     "Simulator without generator must be driven via step_with()");
  // The generator writes the raw (true) vector into the fleet's preallocated
  // staging buffer in place.
  {
    TOPKMON_PHASE_SCOPE(profiler_, telemetry::Phase::kGenerator);
    if (next_t_ == 0) {
      gen_->init(fleet_.staging(), gen_rng_);
    } else {
      const AdversaryView view{ctx_.nodes(), &protocol_->output(), cfg_.k,
                               cfg_.epsilon};
      gen_->step(next_t_, view, fleet_.staging(), gen_rng_);
    }
  }
  step_with(fleet_.staging());
}

void Simulator::step_with(const ValueVector& values) {
  // Standalone fault injection: churn/straggler effects rewrite the true
  // vector into what the fleet actually observes, in place inside the
  // fleet's effective buffer. (Engine-driven simulators receive
  // pre-transformed snapshots; their injector_ stays null.)
  const ValueVector* eff = &values;
  if (injector_) {
    TOPKMON_PHASE_SCOPE(profiler_, telemetry::Phase::kFaultInject);
    eff = &injector_->transform(next_t_, values, fleet_);
  }
  // Standalone windowing: nodes report the maximum of what they observed
  // over the last W steps. (Engine-driven simulators receive pre-windowed
  // snapshots; their fleet owns no window model.)
  if (WindowedValueModel* wm = fleet_.window()) {
    TOPKMON_PHASE_SCOPE(profiler_, telemetry::Phase::kWindowMerge);
    eff = &wm->push(next_t_, *eff);
  }

  {
    TOPKMON_PHASE_SCOPE(profiler_, telemetry::Phase::kAdvanceTime);
    ctx_.stats().begin_step();
    ctx_.advance_time(*eff);
  }
  if (injector_) {
    ctx_.stats().add_stale_reads(injector_->last_stale());
  }

  {
    // Protocol rounds (nested collect_violations time is additionally
    // attributed to kViolationCollect — shares are of inclusive time).
    TOPKMON_PHASE_SCOPE(profiler_, telemetry::Phase::kProtocol);
    if (next_t_ == 0) {
      protocol_->start(ctx_);
      force_recovery_ = false;  // start() already (re)validates everything
    } else if ((faults_ && faults_->membership_changed_at(next_t_)) ||
               force_recovery_) {
      force_recovery_ = false;
      protocol_->on_membership_change(ctx_);
      ctx_.stats().add_recovery();
    } else if (window_view_ && window_view_->last_expirations() > 0) {
      protocol_->on_window_expiry(ctx_);
    } else {
      protocol_->on_step(ctx_);
    }
  }

  std::size_t sigma;
  if (sigma_hook_) {
    TOPKMON_PHASE_SCOPE(profiler_, telemetry::Phase::kSigma);
    sigma = sigma_hook_(cfg_.k, cfg_.epsilon);
  } else {
    // Incremental order maintenance: quiescent steps cost one diff pass and
    // two binary searches instead of an O(n log n) sort with allocations.
    // The id-tracking TopKOrder (not the value-only SortedValues) is kept
    // here deliberately: the standalone simulator's fleet view maintains the
    // actual top-k *positions* — the paper's monitored object — and its
    // dense-update rebuild is the same comparator-indirect sort the replaced
    // Oracle::ranking performed, so rank identity costs nothing extra on the
    // paths that matter.
    TopKOrder& order = fleet_.order();
    {
      TOPKMON_PHASE_SCOPE(profiler_, telemetry::Phase::kOrderUpdate);
      order.update(*eff);
    }
    TOPKMON_PHASE_SCOPE(profiler_, telemetry::Phase::kSigma);
    sigma = order.sigma(cfg_.k, cfg_.epsilon);
  }
  max_sigma_ = std::max(max_sigma_, sigma);
  if (cfg_.record_history) {
    // What the algorithm (and the offline OPT it is compared against) saw.
    history_.push_back(*eff);
  }
  if (cfg_.strict) {
    TOPKMON_PHASE_SCOPE(profiler_, telemetry::Phase::kStrictValidate);
    validate_strict(*eff);
  }
  if (telemetry_ != nullptr) {
    publish_telemetry(sigma);
  }
  ++next_t_;
}

void Simulator::attach_telemetry(telemetry::TelemetrySink* sink) {
  TOPKMON_ASSERT(sink != nullptr);
  TOPKMON_ASSERT_MSG(next_t_ == 0, "telemetry must attach before the first step");
  telemetry_ = sink;
  set_profiler(&sink->profiler());

  telemetry::MetricsRegistry& reg = sink->registry();
  ids_.stats = register_stats_metrics(reg);
  ids_.order_repairs = reg.counter("order.repairs");
  ids_.order_rebuilds = reg.counter("order.rebuilds");
  ids_.step = reg.gauge("sim.step");
  ids_.sigma = reg.gauge("sim.sigma");
  ids_.violating = reg.gauge("sim.violating");
  ids_.messages_per_step = reg.histogram("comm.messages_per_step");

  // Default timeseries channels — unless the owner already chose its own.
  if (sink->timeseries().channel_count() == 0) {
    sink->timeseries().add_channel("comm.messages", ids_.stats.messages, reg);
    sink->timeseries().add_channel("comm.rounds", ids_.stats.rounds, reg);
    sink->timeseries().add_channel("sim.sigma", ids_.sigma, reg);
    sink->timeseries().add_channel("sim.violating", ids_.violating, reg);
  }
}

void Simulator::publish_telemetry(std::size_t sigma) {
  // Mirrors the existing deterministic counters into the registry by relaxed
  // stores — no RNG draw, no message, no allocation — so attaching telemetry
  // cannot perturb results.
  telemetry::MetricsRegistry& reg = telemetry_->registry();
  const CommStats& s = ctx_.stats();
  publish_stats(
      reg, ids_.stats,
      StatsSnapshot::from(s, window_view_ ? window_view_->total_expirations() : 0));
  if (const TopKOrder* order = fleet_.order_if_ready()) {
    reg.set(ids_.order_repairs, order->repairs());
    reg.set(ids_.order_rebuilds, order->rebuilds());
  }
  reg.set(ids_.step, static_cast<std::uint64_t>(next_t_));
  reg.set(ids_.sigma, sigma);
  reg.set(ids_.violating, ctx_.violating_count());
  reg.observe(ids_.messages_per_step, s.messages_this_step());
  telemetry_->timeseries().sample(reg, static_cast<std::uint64_t>(next_t_));
}

void Simulator::validate_strict(const ValueVector& values) {
  // Dispatch on the protocol's advertised QueryCapabilities: each kind it
  // serves is checked against its oracle contract. Protocols without
  // capabilities serve exactly top-k positions, the paper's query.
  const QueryCapabilities* caps = protocol_->capabilities();
  const bool topk = serves_topk(*protocol_);
  if (topk) {
    const auto& out = protocol_->output();
    const std::string why = Oracle::explain_invalid(values, cfg_.k, cfg_.epsilon, out);
    TOPKMON_ASSERT_MSG(why.empty(), ("output invalid at t=" + std::to_string(next_t_) +
                                     " [" + std::string(protocol_->name()) + "]: " + why)
                                        .c_str());
  }

  // The filter snapshot is captured lazily — only here, where the validator
  // actually consumes it — and into the reusable arena, not a fresh vector
  // per step.
  strict_arena_.reset();
  const std::span<Filter> filters = strict_arena_.get<Filter>(ctx_.n());
  const std::span<const Node> nodes = ctx_.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    filters[i] = nodes[i].filter();
  }
  if (topk) {
    // Observation 2.2 ties filter validity to the top-k output F(t);
    // non-top-k kinds state their own filter discipline (quiescence below).
    TOPKMON_ASSERT_MSG(
        filters_valid(std::span<const Filter>(filters.data(), filters.size()),
                      protocol_->output(), cfg_.epsilon),
        ("filter set invalid (Obs. 2.2) at t=" + std::to_string(next_t_)).c_str());
  }
  TOPKMON_ASSERT_MSG(
      all_within(std::span<const Filter>(filters.data(), filters.size()),
                 std::span<const Value>(values.data(), values.size())),
      ("protocol left unresolved filter violations at t=" + std::to_string(next_t_))
          .c_str());

  // Protocols that additionally serve k-select must keep every supported
  // rank's estimate inside the oracle's ε-neighborhood.
  if (caps != nullptr && caps->supports(QueryKind::kKSelect)) {
    const std::size_t jmax = std::min(caps->kselect_max_rank(), cfg_.k);
    for (std::size_t j = 1; j <= jmax; ++j) {
      const std::string bad =
          Oracle::explain_kselect_invalid(values, j, cfg_.epsilon, caps->kselect(j));
      TOPKMON_ASSERT_MSG(
          bad.empty(), ("k-select estimate invalid at t=" + std::to_string(next_t_) +
                        " j=" + std::to_string(j) + " [" +
                        std::string(protocol_->name()) + "]: " + bad)
                           .c_str());
    }
  }

  if (caps != nullptr && caps->supports(QueryKind::kCountDistinct)) {
    if (!strict_ladder_ready_) {
      strict_ladder_.reset(cfg_.epsilon);  // ε is fixed per run; build once
      strict_ladder_ready_ = true;
    }
    const std::uint64_t expect = Oracle::distinct_count(
        std::span<const Value>(values.data(), values.size()), strict_ladder_);
    const std::uint64_t got = caps->distinct_count();
    TOPKMON_ASSERT_MSG(
        got == expect,
        ("count-distinct answer wrong at t=" + std::to_string(next_t_) + " [" +
         std::string(protocol_->name()) + "]: got " + std::to_string(got) +
         ", oracle says " + std::to_string(expect))
            .c_str());
  }

  if (caps != nullptr && caps->supports(QueryKind::kThreshold)) {
    const std::uint64_t expect = Oracle::count_above(
        std::span<const Value>(values.data(), values.size()), cfg_.threshold);
    const std::uint64_t got = caps->above_count();
    TOPKMON_ASSERT_MSG(
        got == expect && caps->alert_active() == (expect > 0),
        ("threshold answer wrong at t=" + std::to_string(next_t_) + " [" +
         std::string(protocol_->name()) + "]: got " + std::to_string(got) +
         " above T=" + std::to_string(cfg_.threshold) + ", oracle says " +
         std::to_string(expect))
            .c_str());
  }
}

RunResult Simulator::run(TimeStep steps) {
  for (TimeStep i = 0; i < steps; ++i) {
    step();
  }
  return result();
}

RunResult Simulator::result() const {
  RunResult r;
  const auto& s = ctx_.stats();
  static_cast<StatsSnapshot&>(r) = StatsSnapshot::from(
      s, window_view_ ? window_view_->total_expirations() : 0);
  r.steps = s.steps();
  r.max_rounds_per_step = s.max_rounds_per_step();
  r.max_sigma = max_sigma_;
  r.messages_per_step =
      r.steps == 0 ? 0.0
                   : static_cast<double>(r.messages) / static_cast<double>(r.steps);
  return r;
}

}  // namespace topkmon
