// Bounded event trace for debugging and the example binaries.
//
// Protocols may emit trace events (phase changes, violations handled,
// interval updates); the trace keeps the most recent `capacity` events.
// Disabled (capacity 0) it is a no-op with negligible cost.
//
// Emission is thread-safe: `Trace::global()` is process-wide and the
// shard-parallel MonitoringEngine advances queries from several worker
// threads, so emit/render/clear/snapshot serialize on an internal mutex
// (the enabled() fast path is a single relaxed atomic load). `events()`
// returns a reference into live storage and is for single-threaded use;
// concurrent readers should take `snapshot()`.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "model/types.hpp"

namespace topkmon {

struct TraceEvent {
  TimeStep time = 0;
  std::string category;  ///< e.g. "phase", "violation", "interval"
  std::string detail;
};

class Trace {
 public:
  explicit Trace(std::size_t capacity = 0) : capacity_(capacity) {}

  void set_capacity(std::size_t capacity);
  bool enabled() const { return capacity_.load(std::memory_order_relaxed) > 0; }

  void emit(TimeStep t, std::string category, std::string detail);

  /// Live storage; external synchronization required while writers exist.
  const std::deque<TraceEvent>& events() const { return events_; }

  /// Consistent copy of the current events — safe under concurrent emit().
  std::vector<TraceEvent> snapshot() const;

  std::vector<std::string> render() const;
  void clear();

  /// Process-global trace used by protocols (examples switch it on).
  static Trace& global();

 private:
  void trim_locked();

  std::atomic<std::size_t> capacity_;
  mutable std::mutex mu_;
  std::deque<TraceEvent> events_;
};

}  // namespace topkmon
