// Bounded event trace for debugging and the example binaries.
//
// Protocols may emit trace events (phase changes, violations handled,
// interval updates); the trace keeps the most recent `capacity` events.
// Disabled (capacity 0) it is a no-op with negligible cost.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "model/types.hpp"

namespace topkmon {

struct TraceEvent {
  TimeStep time = 0;
  std::string category;  ///< e.g. "phase", "violation", "interval"
  std::string detail;
};

class Trace {
 public:
  explicit Trace(std::size_t capacity = 0) : capacity_(capacity) {}

  void set_capacity(std::size_t capacity) { capacity_ = capacity; trim(); }
  bool enabled() const { return capacity_ > 0; }

  void emit(TimeStep t, std::string category, std::string detail);

  const std::deque<TraceEvent>& events() const { return events_; }
  std::vector<std::string> render() const;
  void clear() { events_.clear(); }

  /// Process-global trace used by protocols (examples switch it on).
  static Trace& global();

 private:
  void trim();

  std::size_t capacity_;
  std::deque<TraceEvent> events_;
};

}  // namespace topkmon
