// Bounded event trace for debugging and the example binaries.
//
// Protocols may emit trace events (phase changes, violations handled,
// interval updates); the trace keeps the most recent `capacity` events in a
// preallocated ring. Disabled (capacity 0) it is a no-op with negligible
// cost.
//
// An event is an enum category plus a fixed-size detail buffer, written in
// place into its ring slot — emit() allocates nothing and builds no
// std::string, so tracing can stay enabled next to the step loop's
// zero-allocation invariant. Formatting is lazy: render() (or
// TraceEvent::render()) builds the human-readable lines only when asked.
//
// Emission is thread-safe: `Trace::global()` is process-wide and the
// shard-parallel MonitoringEngine advances queries from several worker
// threads, so emit/render/clear/snapshot serialize on an internal mutex
// (the enabled() fast path is a single relaxed atomic load). Concurrent
// readers take `snapshot()`.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "model/types.hpp"

namespace topkmon {

enum class TraceCategory : std::uint8_t {
  kPhase = 0,   ///< protocol phase transitions
  kViolation,   ///< filter violations handled
  kInterval,    ///< interval / filter-bound updates
  kRecovery,    ///< membership-change recoveries
  kWindow,      ///< sliding-window expirations
  kProbe,       ///< probe / sampling rounds
  kOther,
};
const char* to_string(TraceCategory c);

/// Detail text capacity per event (including the NUL); longer details are
/// truncated on emit — the slot is fixed so emission never allocates.
inline constexpr std::size_t kTraceDetailChars = 48;

struct TraceEvent {
  TimeStep time = 0;
  TraceCategory category = TraceCategory::kOther;
  char detail[kTraceDetailChars] = {};  ///< NUL-terminated

  /// Lazy formatting: "t=5 [interval] L=[3,9]".
  std::string render() const;
};

class Trace {
 public:
  explicit Trace(std::size_t capacity = 0) { set_capacity(capacity); }

  /// Preallocates the ring (setup phase; may allocate). Shrinking keeps the
  /// newest events.
  void set_capacity(std::size_t capacity);
  bool enabled() const { return capacity_.load(std::memory_order_relaxed) > 0; }

  /// Records an event into its preallocated ring slot; `detail` is copied
  /// (truncated to kTraceDetailChars - 1) — no allocation, no string build.
  void emit(TimeStep t, TraceCategory category, std::string_view detail = {});

  std::size_t size() const;

  /// Consistent copy of the current events, oldest first — safe under
  /// concurrent emit().
  std::vector<TraceEvent> snapshot() const;

  /// Formatted lines, oldest first (lazy — cost is paid here, not in emit).
  std::vector<std::string> render() const;
  void clear();

  /// Process-global trace used by protocols (examples switch it on).
  static Trace& global();

 private:
  std::atomic<std::size_t> capacity_{0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  ///< preallocated to capacity
  std::size_t head_ = 0;          ///< next slot to write
  std::size_t count_ = 0;         ///< live events (≤ capacity)
};

}  // namespace topkmon
