// topk_node — the node-host binary of the networked runtime.
//
//   $ topk_node --connect 127.0.0.1:7421 --host-index 0 --hosts 2
//
// One node-host owns a contiguous shard of the fleet's data plane. It needs
// ZERO workload flags: the coordinator ships the full RunSpec (stream,
// protocol, window, fault model, seeds) in the Config handshake, so the only
// configuration here is where the coordinator is and which host this is.
// The process connects (retrying while the coordinator is still starting),
// runs the lockstep until Shutdown, prints its report — the coordinator's
// final aggregate statistics plus this link's own transport counters — and
// exits 0 on a clean run.
// Flag parsing, --help and the --markdown/--csv/--json/--telemetry output
// semantics are shared with the other binaries via apps/options.hpp.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "apps/options.hpp"
#include "net/node_host.hpp"
#include "net/transport.hpp"
#include "sim/stats_snapshot.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

using namespace topkmon;

int main(int argc, char** argv) {
  std::string connect = "127.0.0.1";
  std::uint64_t port = 0;
  std::uint64_t host_index = 0;
  std::uint64_t hosts = 1;
  std::uint64_t connect_retries = 100;
  OutputOptions out;

  Options opts("topk_node", "networked-runtime node-host (data plane)");
  opts.add_string("connect", &connect, "coordinator address, HOST or HOST:PORT");
  opts.add_uint("port", &port, "coordinator port (alternative to HOST:PORT)");
  opts.add_uint("host-index", &host_index, "this host's index in [0, hosts)");
  opts.add_uint("hosts", &hosts, "total number of node-hosts");
  opts.add_uint("connect-retries", &connect_retries,
                "connection attempts, 50ms apart, while the coordinator starts");
  add_output_options(opts, out);

  switch (opts.parse(argc, argv)) {
    case Options::ParseResult::kHelp: return 0;
    case Options::ParseResult::kError: return 1;
    case Options::ParseResult::kOk: break;
  }

  const auto colon = connect.rfind(':');
  if (colon != std::string::npos) {
    port = std::strtoull(connect.c_str() + colon + 1, nullptr, 10);
    connect.resize(colon);
  }
  if (port == 0 || port > 65535) {
    std::cerr << "error: no coordinator port (use --connect HOST:PORT or --port)\n";
    return 1;
  }
  if (hosts == 0 || host_index >= hosts) {
    std::cerr << "error: --host-index must lie in [0, --hosts)\n";
    return 1;
  }

  std::unique_ptr<net::Transport> transport;
  for (std::uint64_t attempt = 0; !transport && attempt <= connect_retries;
       ++attempt) {
    transport = net::tcp_connect(connect, static_cast<std::uint16_t>(port));
    if (!transport) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (!transport) {
    std::cerr << "error: cannot connect to " << connect << ":" << port << "\n";
    return 1;
  }

  net::NodeHost node(std::make_unique<net::Link>(std::move(transport)),
                     static_cast<std::uint32_t>(host_index),
                     static_cast<std::uint32_t>(hosts));
  const int status = node.run();
  if (status != 0) {
    std::cerr << "error: " << node.error() << "\n";
    return status;
  }

  const NetChannelStats& link = node.link_stats();
  Table t("topk_node — host " + std::to_string(host_index) + "/" +
          std::to_string(hosts) + " (coordinator " + connect + ":" +
          std::to_string(port) + ")");
  t.header({"metric", "value"});
  t.add_row({"run messages (total)", format_count(node.final_stats().messages)});
  t.add_row({"run recovery rounds",
             format_count(node.final_stats().recovery_rounds)});
  t.add_row({"link frames sent", format_count(link.frames_sent)});
  t.add_row({"link frames recv", format_count(link.frames_recv)});
  t.add_row({"link bytes sent", format_count(link.bytes_sent)});
  t.add_row({"link bytes recv", format_count(link.bytes_recv)});
  t.add_row({"link send retries", format_count(link.send_retries)});
  t.add_row({"link reconnects", format_count(link.reconnects)});
  t.add_row({"quiescence errors", format_count(node.quiescence_errors())});
  print_table(t, out);

  if (!out.telemetry_json.empty() || !out.telemetry_prom.empty()) {
    // The node's telemetry view: the run-wide model counters the coordinator
    // reported at shutdown, with net.* swapped for this link's own counters.
    telemetry::TelemetrySink sink;
    const StatsSnapshotIds ids = register_stats_metrics(sink.registry());
    StatsSnapshot snap = node.final_stats();
    snap.net = link;
    publish_stats(sink.registry(), ids, snap);
    if (!out.telemetry_json.empty() &&
        telemetry::write_text_file(out.telemetry_json,
                                   telemetry::to_json(sink, "topk_node"))) {
      std::cout << "wrote telemetry JSON (" << telemetry::kTelemetrySchema
                << ") to " << out.telemetry_json << "\n";
    }
    if (!out.telemetry_prom.empty() &&
        telemetry::write_text_file(out.telemetry_prom,
                                   telemetry::to_prometheus(sink, "topk_node"))) {
      std::cout << "wrote Prometheus exposition to " << out.telemetry_prom << "\n";
    }
  }
  return node.quiescence_errors() == 0 ? 0 : 1;
}
