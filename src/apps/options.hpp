// Declarative CLI options for the topkmon binaries (header-only).
//
// Before this layer, topk_sim and topk_engine each hand-rolled the same flag
// surface (stream knobs, fault knobs, telemetry paths, output toggles) with
// copy-pasted helpers and no --help beyond `--list`. Options binds each flag
// name to a field once — parse applies every binding, auto-generates the
// --help text from the declarations, and rejects unknown flags instead of
// silently ignoring typos. All four binaries (topk_sim, topk_engine,
// topk_coord, topk_node) declare their surface through the shared groups
// below, so --faults / --window / --telemetry / --json mean the same thing
// everywhere.
//
// Usage:
//   StreamSpec spec;            // caller presets per-binary defaults
//   Options opts("topk_sim", "one protocol on one workload");
//   add_stream_options(opts, spec);
//   opts.add_uint("steps", &steps, "run length in time steps");
//   switch (opts.parse(argc, argv)) {
//     case Options::ParseResult::kHelp: return 0;
//     case Options::ParseResult::kError: return 1;
//     case Options::ParseResult::kOk: break;
//   }
//   finalize_stream_options(opts, spec);   // n-derived defaults
#pragma once

#include <cstdint>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/query.hpp"
#include "faults/registry.hpp"
#include "protocols/registry.hpp"
#include "sim/query_kind.hpp"
#include "streams/registry.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace topkmon {

class Options {
 public:
  Options(std::string program, std::string summary)
      : program_(std::move(program)), summary_(std::move(summary)) {}

  enum class ParseResult { kOk, kHelp, kError };

  // ---- bindings (flag name without the leading "--") ----------------------

  Options& add_string(const std::string& name, std::string* out,
                      const std::string& help) {
    binds_.push_back({name, Kind::kString, out, help, *out});
    return *this;
  }
  Options& add_uint(const std::string& name, std::uint64_t* out,
                    const std::string& help) {
    binds_.push_back({name, Kind::kUint64, out, help, std::to_string(*out)});
    return *this;
  }
  Options& add_size(const std::string& name, std::size_t* out,
                    const std::string& help) {
    binds_.push_back({name, Kind::kSize, out, help, std::to_string(*out)});
    return *this;
  }
  Options& add_int(const std::string& name, std::int64_t* out,
                   const std::string& help) {
    binds_.push_back({name, Kind::kInt64, out, help, std::to_string(*out)});
    return *this;
  }
  Options& add_double(const std::string& name, double* out, const std::string& help) {
    binds_.push_back({name, Kind::kDouble, out, help, format_double(*out, 4)});
    return *this;
  }
  Options& add_bool(const std::string& name, bool* out, const std::string& help) {
    binds_.push_back({name, Kind::kBool, out, help, *out ? "true" : "false"});
    return *this;
  }
  /// --name[=PATH]: "" when absent, `default_path` for the bare flag, else
  /// the given value (the optional-path semantics of --telemetry).
  Options& add_optional_path(const std::string& name, std::string* out,
                             const std::string& default_path,
                             const std::string& help) {
    binds_.push_back({name, Kind::kOptionalPath, out, help, default_path});
    return *this;
  }
  /// Declared-only: accepted and shown in --help, parsed elsewhere (e.g.
  /// fault_config_from_flags reads the fault group off flags() directly).
  Options& note(const std::string& name, const std::string& help,
                const std::string& default_desc = "") {
    binds_.push_back({name, Kind::kNote, nullptr, help, default_desc});
    return *this;
  }

  // ---- parse --------------------------------------------------------------

  ParseResult parse(int argc, char** argv, std::ostream& out = std::cerr) {
    flags_ = Flags(argc, argv);
    if (flags_.has("help")) {
      print_help(out);
      return ParseResult::kHelp;
    }
    if (flags_.has("list")) {
      print_registries(out, flags_.get_string("list", ""));
      return ParseResult::kHelp;
    }
    for (const std::string& given : flags_.names()) {
      if (!known(given)) {
        out << program_ << ": unknown flag --" << given << " (see --help)\n";
        return ParseResult::kError;
      }
    }
    for (const Bind& b : binds_) apply(b);
    return ParseResult::kOk;
  }

  /// The underlying parsed flags — for groups with bespoke parsing (faults).
  const Flags& flags() const { return flags_; }

  void print_help(std::ostream& out) const {
    out << program_ << " — " << summary_ << "\n\nflags:\n";
    for (const Bind& b : binds_) {
      std::string left = "  --" + b.name;
      if (b.kind == Kind::kOptionalPath) left += "[=PATH]";
      if (left.size() < 26) left.resize(26, ' ');
      out << left << b.help;
      if (!b.default_desc.empty()) out << " [" << b.default_desc << "]";
      out << "\n";
    }
    out << "  --list[=GROUP]          registered protocols, streams, faults, queries\n"
        << "  --help                  this text\n";
  }

  static void print_registries(std::ostream& out, const std::string& what = "") {
    if (what == "queries") {
      out << "queries:  ";
      for (const auto& q : query_kind_names()) out << " " << q;
      out << "\n";
      return;
    }
    out << "protocols:";
    for (const auto& p : protocol_names()) out << " " << p;
    out << "\nstreams:  ";
    for (const auto& s : stream_kinds()) out << " " << s;
    out << "\nfaults:   ";
    for (const auto& f : fault_preset_names()) out << " " << f;
    out << "\nqueries:  ";
    for (const auto& q : query_kind_names()) out << " " << q;
    out << "\n";
  }

 private:
  enum class Kind {
    kString,
    kUint64,
    kSize,
    kInt64,
    kDouble,
    kBool,
    kOptionalPath,
    kNote
  };
  struct Bind {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
    std::string default_desc;
  };

  bool known(const std::string& name) const {
    for (const Bind& b : binds_) {
      if (b.name == name) return true;
    }
    return false;
  }

  void apply(const Bind& b) {
    switch (b.kind) {
      case Kind::kString: {
        auto* t = static_cast<std::string*>(b.target);
        *t = flags_.get_string(b.name, *t);
        break;
      }
      case Kind::kUint64: {
        auto* t = static_cast<std::uint64_t*>(b.target);
        *t = flags_.get_uint(b.name, *t);
        break;
      }
      case Kind::kSize: {
        auto* t = static_cast<std::size_t*>(b.target);
        *t = static_cast<std::size_t>(flags_.get_uint(b.name, *t));
        break;
      }
      case Kind::kInt64: {
        auto* t = static_cast<std::int64_t*>(b.target);
        *t = flags_.get_int(b.name, *t);
        break;
      }
      case Kind::kDouble: {
        auto* t = static_cast<double*>(b.target);
        *t = flags_.get_double(b.name, *t);
        break;
      }
      case Kind::kBool: {
        auto* t = static_cast<bool*>(b.target);
        *t = flags_.get_bool(b.name, *t);
        break;
      }
      case Kind::kOptionalPath: {
        auto* t = static_cast<std::string*>(b.target);
        if (!flags_.has(b.name)) {
          *t = "";
        } else {
          const std::string v = flags_.get_string(b.name, b.default_desc);
          *t = (v.empty() || v == "true") ? b.default_desc : v;
        }
        break;
      }
      case Kind::kNote:
        break;
    }
  }

  std::string program_;
  std::string summary_;
  std::vector<Bind> binds_;
  Flags flags_{0, nullptr};
};

// ---------------------------------------------------------------- groups

/// The shared workload surface. Preset `spec` with the binary's defaults
/// first; call finalize_stream_options after parse for n-derived defaults.
inline void add_stream_options(Options& o, StreamSpec& spec) {
  o.add_string("stream", &spec.kind, "stream generator kind");
  o.add_size("n", &spec.n, "fleet size (number of nodes)");
  o.add_size("k", &spec.k, "top-k positions to monitor");
  o.add_double("eps", &spec.epsilon, "approximation parameter ε");
  o.add_uint("delta", &spec.delta, "value scale Δ");
  o.add_size("sigma", &spec.sigma, "neighborhood size for dense/adversary kinds");
  o.add_uint("walk-step", &spec.walk_step, "random-walk step size");
  o.add_double("churn", &spec.churn, "oscillator churn fraction");
  o.add_double("drift", &spec.drift, "oscillating band drift per step");
  o.add_string("trace", &spec.trace_path, "trace file for --stream trace_file");
}

/// n-derived defaults the flag layer cannot express: sigma defaults to
/// n / `sigma_divisor` when not given explicitly.
inline void finalize_stream_options(const Options& o, StreamSpec& spec,
                                    std::size_t sigma_divisor) {
  if (!o.flags().has("sigma")) spec.sigma = spec.n / sigma_divisor;
}

/// The shared fault surface (--faults preset + individual overrides). The
/// flags are declared here for --help and unknown-flag checking; the actual
/// config comes from fault_config_from_flags(o.flags(), horizon) after
/// parse, so the preset/override semantics stay in exactly one place
/// (faults/registry.cpp).
inline void add_fault_options(Options& o) {
  o.note("faults", "fault preset (none, churn, stragglers, lossy, flaky, datacenter)",
         "none");
  o.note("churn-rate", "membership toggles per step");
  o.note("straggler-frac", "fraction of nodes lagging the stream");
  o.note("straggler-delay", "max straggler delay (steps)");
  o.note("loss", "per-message drop probability");
  o.note("fault-seed", "fault-trace seed", "1");
}

/// The shared declarative query surface: every binary that runs monitoring
/// queries accepts the repeatable `--query KIND[:key=value,...]` flag (kinds
/// per `--list queries`; parsed by parse_query_spec in engine/query.hpp) plus
/// the mixed-window toggle that cycles window lengths across the final list.
struct QueryListOptions {
  bool mixed_windows = false;  ///< cycle {inf, 16, 64, 256} across queries
};

inline void add_query_options(Options& o, QueryListOptions& q) {
  o.note("query",
         "repeatable query spec KIND[:k=..,eps=..,window=..,bound=..,proto=..,"
         "seed=..,strict=..,label=..]; kinds per --list queries");
  o.add_bool("mixed-windows", &q.mixed_windows,
             "cycle window lengths across queries");
}

/// Builds an engine's query list: the parsed `--query` specs (or `fallback`
/// when none were given) cycled up to `q_count` queries; q_count = 0 means
/// "one per --query spec". --mixed-windows overwrites windows with the
/// canonical cycle, matching the engine CLI's historical mixed-window runs.
inline std::vector<QuerySpec> build_query_list(const Flags& flags,
                                               const QueryListOptions& qopts,
                                               std::size_t q_count,
                                               const QuerySpec& fallback) {
  std::vector<QuerySpec> base;
  for (const std::string& raw : flags.get_all("query")) {
    base.push_back(parse_query_spec(raw));
  }
  if (base.empty()) base.push_back(fallback);
  if (q_count == 0) q_count = base.size();

  const std::size_t window_cycle[] = {kInfiniteWindow, 16, 64, 256};
  std::vector<QuerySpec> out;
  out.reserve(q_count);
  for (std::size_t i = 0; i < q_count; ++i) {
    QuerySpec qs = base[i % base.size()];
    if (qopts.mixed_windows) {
      qs.window = window_cycle[i % (sizeof(window_cycle) / sizeof(*window_cycle))];
    }
    out.push_back(std::move(qs));
  }
  return out;
}

/// Single-query binaries (topk_sim, topk_coord): the one `--query` spec, or
/// nullopt when the flag is absent. Throws if given more than once.
inline std::optional<QuerySpec> single_query_option(const Flags& flags) {
  const std::vector<std::string> raw = flags.get_all("query");
  if (raw.empty()) return std::nullopt;
  if (raw.size() > 1) {
    throw std::runtime_error("this binary serves one query; give --query once");
  }
  return parse_query_spec(raw.front());
}

/// The shared export/rendering surface.
struct OutputOptions {
  std::string telemetry_json;
  std::string telemetry_prom;
  bool markdown = false;
  bool csv = false;
  bool json = false;
};

inline void add_output_options(Options& o, OutputOptions& out) {
  o.add_optional_path("telemetry", &out.telemetry_json, "telemetry.json",
                      "export telemetry JSON");
  o.add_optional_path("telemetry-prom", &out.telemetry_prom, "telemetry.prom",
                      "export Prometheus exposition");
  o.add_bool("markdown", &out.markdown, "render tables as markdown");
  o.add_bool("csv", &out.csv, "additionally dump tables as CSV");
  o.add_bool("json", &out.json, "render tables as JSON");
}

/// Renders `t` per the shared --markdown/--json/--csv semantics.
inline void print_table(const Table& t, const OutputOptions& out,
                        std::ostream& os = std::cout) {
  if (out.json) {
    os << t.to_json();
  } else if (out.markdown) {
    os << t.to_markdown();
  } else {
    os << t.to_ascii();
  }
  if (out.csv) os << t.to_csv();
}

}  // namespace topkmon
