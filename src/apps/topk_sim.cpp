// topk_sim — the command-line simulation driver.
//
//   $ topk_sim --protocol combined --stream oscillating --n 32 --k 4
//              --eps 0.15 --sigma 12 --steps 1000 --seed 7 [--opt exact|approx]
//              [--query KIND:k=..,eps=..,bound=..] [--window 64] [--strict]
//              [--markdown] [--csv] [--json]
//              [--dump-trace[=out.csv]]
//              [--telemetry[=telemetry.json]] [--telemetry-prom[=telemetry.prom]]
//              [--faults flaky] [--churn-rate 0.02] [--straggler-frac 0.25]
//              [--straggler-delay 8] [--loss 0.05] [--fault-seed 1]
//
// Runs one protocol on one workload, prints the communication report, the
// offline optimum on the observed history, and the competitive ratio.
// Fault flags degrade the fleet (src/faults): churn, stragglers, lossy
// links — individually or via a named preset. `--window W` switches to
// sliding-window monitoring (src/model/window.hpp): the protocol tracks
// top-k over per-node maxima of the last W steps; 0 (default) keeps the
// paper's instantaneous semantics, and the OPT/history/--dump-trace then
// operate on the windowed values the protocol actually saw.
// `--telemetry` exports the run's metrics registry, per-phase step profile
// and per-step timeseries as a versioned JSON document (src/telemetry;
// consumed by scripts/check_bench.py --telemetry); `--telemetry-prom` emits
// the Prometheus text exposition alongside.
// Flag parsing, --help and the --markdown/--csv/--json/--telemetry output
// semantics are shared with the other binaries via apps/options.hpp.
#include <iostream>

#include "apps/options.hpp"
#include "faults/registry.hpp"
#include "offline/kselect_opt.hpp"
#include "offline/opt.hpp"
#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/registry.hpp"
#include "streams/trace_file.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

using namespace topkmon;

int main(int argc, char** argv) {
  StreamSpec spec;
  spec.kind = "random_walk";
  spec.n = 16;
  spec.k = 3;
  spec.delta = 1 << 20;
  spec.walk_step = 64;

  SimConfig cfg;
  cfg.seed = 42;
  cfg.strict = true;
  cfg.window = kInfiniteWindow;
  std::string protocol = "combined";
  std::string opt_kind = "approx";
  std::uint64_t steps_flag = 1000;
  std::string dump_trace;
  OutputOptions out;

  Options opts("topk_sim", "one protocol on one workload, vs the offline OPT");
  add_stream_options(opts, spec);
  opts.add_string("protocol", &protocol, "monitoring protocol to run");
  opts.note("protocol-eps", "protocol's ε when it should differ from the stream's",
            "=eps");
  opts.note("query",
            "query spec KIND[:k=..,eps=..,window=..,bound=..,proto=..]; "
            "overrides --protocol/--k/--window (kinds per --list queries)");
  opts.add_uint("seed", &cfg.seed, "simulation seed");
  opts.add_bool("strict", &cfg.strict, "assert ε-validity of F(t) every step");
  opts.add_size("window", &cfg.window,
                "sliding window W in steps (0 = instantaneous)");
  opts.add_uint("bound", &cfg.threshold,
                "threshold bound T for threshold-alert protocols");
  opts.add_string("opt", &opt_kind, "offline baseline: exact, approx or none");
  opts.note("opt-eps", "ε' for --opt approx", "=protocol-eps");
  opts.add_uint("steps", &steps_flag, "run length in time steps");
  opts.add_optional_path("dump-trace", &dump_trace, "trace.csv",
                         "dump the observed history as CSV");
  add_fault_options(opts);
  add_output_options(opts, out);

  switch (opts.parse(argc, argv)) {
    case Options::ParseResult::kHelp: return 0;
    case Options::ParseResult::kError: return 1;
    case Options::ParseResult::kOk: break;
  }
  finalize_stream_options(opts, spec, 2);
  cfg.k = spec.k;
  cfg.epsilon = opts.flags().get_double("protocol-eps", spec.epsilon);
  cfg.record_history = opt_kind != "none" || !dump_trace.empty();
  const TimeStep steps = static_cast<TimeStep>(steps_flag);

  try {
    // One --query spec overrides the flat protocol/k/ε/window/bound flags —
    // the declarative syntax shared with topk_engine/topk_coord.
    if (const std::optional<QuerySpec> q = single_query_option(opts.flags())) {
      protocol = q->protocol;
      cfg.k = q->k;
      spec.k = q->k;
      cfg.epsilon = q->epsilon;
      cfg.window = q->window;
      cfg.threshold = q->threshold;
      if (q->seed) cfg.seed = *q->seed;
      if (q->strict) cfg.strict = true;
    }
    cfg.faults = make_fleet_schedule(fault_config_from_flags(opts.flags(), steps),
                                     spec.n);
    Simulator sim(cfg, make_stream(spec), make_protocol(protocol));
    telemetry::TelemetrySink sink;
    if (!out.telemetry_json.empty() || !out.telemetry_prom.empty()) {
      sim.attach_telemetry(&sink);
    }
    const RunResult run = sim.run(steps);

    Table t("topk_sim — " + protocol + " on " + spec.kind + " (n=" +
            std::to_string(spec.n) + ", k=" + std::to_string(spec.k) +
            ", ε=" + format_double(cfg.epsilon, 3) + ", steps=" +
            std::to_string(steps) + ", seed=" + std::to_string(cfg.seed) + ")");
    t.header({"metric", "value"});
    t.add_row({"messages (total)", format_count(run.messages)});
    t.add_row({"messages / step", format_double(run.messages_per_step, 3)});
    t.add_row({"node->server", format_count(run.node_to_server)});
    t.add_row({"server->node", format_count(run.server_to_node)});
    t.add_row({"broadcasts", format_count(run.broadcasts)});
    t.add_row({"max rounds / step", format_count(run.max_rounds_per_step)});
    t.add_row({"max sigma observed", format_count(run.max_sigma)});
    if (cfg.window != kInfiniteWindow) {
      t.add_row({"window W (steps)", format_count(cfg.window)});
      t.add_row({"window expirations", format_count(run.window_expirations)});
    }
    if (cfg.faults) {
      t.add_row({"messages lost (links)", format_count(run.messages_lost)});
      t.add_row({"stale reads (fleet)", format_count(run.stale_reads)});
      t.add_row({"recovery rounds", format_count(run.recovery_rounds)});
    }

    if (opt_kind != "none") {
      const double opt_eps = opts.flags().get_double("opt-eps", cfg.epsilon);
      const OptReport opt = opt_kind == "exact"
                                ? OfflineOpt::exact(sim.history(), cfg.k)
                                : OfflineOpt::approx(sim.history(), cfg.k, opt_eps);
      t.add_row({"OPT kind", opt_kind + (opt_kind == "approx"
                                             ? " (ε'=" + format_double(opt_eps, 3) + ")"
                                             : "")});
      t.add_row({"OPT phases", format_count(opt.phases)});
      t.add_row({"OPT messages ((k+1)/phase)", format_count(opt.messages_constructive)});
      t.add_row({"competitive ratio (msgs/phases)",
                 format_double(static_cast<double>(run.messages) /
                                   static_cast<double>(std::max<std::uint64_t>(
                                       1, opt.phases)),
                               2)});
    }

    const auto& final_out = sim.protocol().output();
    std::string out_str = "{";
    for (std::size_t i = 0; i < final_out.size(); ++i) {
      out_str += std::to_string(final_out[i]) + (i + 1 < final_out.size() ? ", " : "");
    }
    t.add_row({"final output F(T)", out_str + "}"});

    if (const QueryCapabilities* q =
            capability_for(sim.protocol(), QueryKind::kKSelect)) {
      t.add_row({"k-select estimate (j=k)", format_count(q->kselect(cfg.k))});
      if (cfg.record_history) {
        const KSelectOptReport kopt =
            KSelectOpt::approx(sim.history(), cfg.k, cfg.epsilon);
        t.add_row({"k-select OPT phases", format_count(kopt.phases)});
      }
    }
    if (const QueryCapabilities* q =
            capability_for(sim.protocol(), QueryKind::kCountDistinct)) {
      t.add_row({"distinct bands (final)", format_count(q->distinct_count())});
    }
    if (const QueryCapabilities* q =
            capability_for(sim.protocol(), QueryKind::kThreshold)) {
      t.add_row({"threshold alert (T=" + format_count(cfg.threshold) + ")",
                 std::string(q->alert_active() ? "ALERT" : "quiet") + " (" +
                     format_count(q->above_count()) + " above)"});
    }

    print_table(t, out);
    if (!dump_trace.empty()) {
      write_trace(dump_trace, sim.history());
      std::cout << "wrote observed trace to " << dump_trace << " ("
                << sim.history().size() << " rows)\n";
    }
    if (!out.telemetry_json.empty() &&
        telemetry::write_text_file(out.telemetry_json,
                                   telemetry::to_json(sink, "topk_sim"))) {
      std::cout << "wrote telemetry JSON (" << telemetry::kTelemetrySchema
                << ") to " << out.telemetry_json << "\n";
    }
    if (!out.telemetry_prom.empty() &&
        telemetry::write_text_file(out.telemetry_prom,
                                   telemetry::to_prometheus(sink, "topk_sim"))) {
      std::cout << "wrote Prometheus exposition to " << out.telemetry_prom << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::cerr << "use --list to see registered protocols and streams\n";
    return 1;
  }
  return 0;
}
