// topk_sim — the command-line simulation driver.
//
//   $ topk_sim --protocol combined --stream oscillating --n 32 --k 4
//              --eps 0.15 --sigma 12 --steps 1000 --seed 7 [--opt exact|approx]
//              [--window 64] [--strict] [--markdown] [--csv]
//              [--dump-trace out.csv]
//              [--telemetry[=telemetry.json]] [--telemetry-prom[=telemetry.prom]]
//              [--faults flaky] [--churn-rate 0.02] [--straggler-frac 0.25]
//              [--straggler-delay 8] [--loss 0.05] [--fault-seed 1]
//
// Runs one protocol on one workload, prints the communication report, the
// offline optimum on the observed history, and the competitive ratio.
// Fault flags degrade the fleet (src/faults): churn, stragglers, lossy
// links — individually or via a named preset. `--window W` switches to
// sliding-window monitoring (src/model/window.hpp): the protocol tracks
// top-k over per-node maxima of the last W steps; 0 (default) keeps the
// paper's instantaneous semantics, and the OPT/history/--dump-trace then
// operate on the windowed values the protocol actually saw.
// `--telemetry` exports the run's metrics registry, per-phase step profile
// and per-step timeseries as a versioned JSON document (src/telemetry;
// consumed by scripts/check_bench.py --telemetry); `--telemetry-prom` emits
// the Prometheus text exposition alongside.
// `--list` enumerates registered protocols, stream kinds and fault presets.
#include <iostream>

#include "faults/registry.hpp"
#include "offline/opt.hpp"
#include "protocols/registry.hpp"
#include "sim/simulator.hpp"
#include "streams/registry.hpp"
#include "streams/trace_file.hpp"
#include "telemetry/telemetry.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace topkmon;

namespace {

/// Path of an optional-value flag: "" when absent, `def` for the bare flag
/// (the parser yields "true"), else the given value.
std::string optional_path_flag(const Flags& flags, const std::string& name,
                               const std::string& def) {
  if (!flags.has(name)) return "";
  const std::string v = flags.get_string(name, def);
  return (v.empty() || v == "true") ? def : v;
}

int list_registry() {
  std::cout << "protocols:";
  for (const auto& p : protocol_names()) std::cout << " " << p;
  std::cout << "\nstreams:  ";
  for (const auto& s : stream_kinds()) std::cout << " " << s;
  std::cout << "\nfaults:   ";
  for (const auto& f : fault_preset_names()) std::cout << " " << f;
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("list") || flags.has("help")) {
    return list_registry();
  }

  StreamSpec spec;
  spec.kind = flags.get_string("stream", "random_walk");
  spec.n = flags.get_uint("n", 16);
  spec.k = flags.get_uint("k", 3);
  spec.epsilon = flags.get_double("eps", 0.1);
  spec.delta = flags.get_uint("delta", 1 << 20);
  spec.sigma = flags.get_uint("sigma", spec.n / 2);
  spec.walk_step = flags.get_uint("walk-step", 64);
  spec.churn = flags.get_double("churn", 1.0);
  spec.drift = flags.get_double("drift", 0.0);
  spec.trace_path = flags.get_string("trace", "");

  SimConfig cfg;
  cfg.k = spec.k;
  cfg.epsilon = flags.get_double("protocol-eps", spec.epsilon);
  cfg.seed = flags.get_uint("seed", 42);
  cfg.strict = flags.get_bool("strict", true);
  cfg.window = flags.get_uint("window", kInfiniteWindow);
  const std::string opt_kind = flags.get_string("opt", "approx");
  cfg.record_history = opt_kind != "none" || flags.has("dump-trace");
  const TimeStep steps = static_cast<TimeStep>(flags.get_uint("steps", 1000));
  const std::string protocol = flags.get_string("protocol", "combined");

  const std::string telemetry_json =
      optional_path_flag(flags, "telemetry", "telemetry.json");
  const std::string telemetry_prom =
      optional_path_flag(flags, "telemetry-prom", "telemetry.prom");

  try {
    cfg.faults = make_fleet_schedule(fault_config_from_flags(flags, steps), spec.n);
    Simulator sim(cfg, make_stream(spec), make_protocol(protocol));
    telemetry::TelemetrySink sink;
    if (!telemetry_json.empty() || !telemetry_prom.empty()) {
      sim.attach_telemetry(&sink);
    }
    const RunResult run = sim.run(steps);

    Table t("topk_sim — " + protocol + " on " + spec.kind + " (n=" +
            std::to_string(spec.n) + ", k=" + std::to_string(spec.k) +
            ", ε=" + format_double(cfg.epsilon, 3) + ", steps=" +
            std::to_string(steps) + ", seed=" + std::to_string(cfg.seed) + ")");
    t.header({"metric", "value"});
    t.add_row({"messages (total)", format_count(run.messages)});
    t.add_row({"messages / step", format_double(run.messages_per_step, 3)});
    t.add_row({"node->server", format_count(run.node_to_server)});
    t.add_row({"server->node", format_count(run.server_to_node)});
    t.add_row({"broadcasts", format_count(run.broadcasts)});
    t.add_row({"max rounds / step", format_count(run.max_rounds_per_step)});
    t.add_row({"max sigma observed", format_count(run.max_sigma)});
    if (cfg.window != kInfiniteWindow) {
      t.add_row({"window W (steps)", format_count(cfg.window)});
      t.add_row({"window expirations", format_count(run.window_expirations)});
    }
    if (cfg.faults) {
      t.add_row({"messages lost (links)", format_count(run.messages_lost)});
      t.add_row({"stale reads (fleet)", format_count(run.stale_reads)});
      t.add_row({"recovery rounds", format_count(run.recovery_rounds)});
    }

    if (opt_kind != "none") {
      const double opt_eps = flags.get_double("opt-eps", cfg.epsilon);
      const OptReport opt = opt_kind == "exact"
                                ? OfflineOpt::exact(sim.history(), cfg.k)
                                : OfflineOpt::approx(sim.history(), cfg.k, opt_eps);
      t.add_row({"OPT kind", opt_kind + (opt_kind == "approx"
                                             ? " (ε'=" + format_double(opt_eps, 3) + ")"
                                             : "")});
      t.add_row({"OPT phases", format_count(opt.phases)});
      t.add_row({"OPT messages ((k+1)/phase)", format_count(opt.messages_constructive)});
      t.add_row({"competitive ratio (msgs/phases)",
                 format_double(static_cast<double>(run.messages) /
                                   static_cast<double>(std::max<std::uint64_t>(
                                       1, opt.phases)),
                               2)});
    }

    const auto& out = sim.protocol().output();
    std::string out_str = "{";
    for (std::size_t i = 0; i < out.size(); ++i) {
      out_str += std::to_string(out[i]) + (i + 1 < out.size() ? ", " : "");
    }
    t.add_row({"final output F(T)", out_str + "}"});

    if (flags.get_bool("markdown", false)) {
      std::cout << t.to_markdown();
    } else {
      std::cout << t.to_ascii();
    }
    if (flags.get_bool("csv", false)) {
      std::cout << t.to_csv();
    }
    if (flags.has("dump-trace")) {
      const std::string path = flags.get_string("dump-trace", "trace.csv");
      write_trace(path, sim.history());
      std::cout << "wrote observed trace to " << path << " (" << sim.history().size()
                << " rows)\n";
    }
    if (!telemetry_json.empty() &&
        telemetry::write_text_file(telemetry_json,
                                   telemetry::to_json(sink, "topk_sim"))) {
      std::cout << "wrote telemetry JSON (" << telemetry::kTelemetrySchema
                << ") to " << telemetry_json << "\n";
    }
    if (!telemetry_prom.empty() &&
        telemetry::write_text_file(telemetry_prom,
                                   telemetry::to_prometheus(sink, "topk_sim"))) {
      std::cout << "wrote Prometheus exposition to " << telemetry_prom << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::cerr << "use --list to see registered protocols and streams\n";
    return 1;
  }
  return 0;
}
