// topk_coord — the coordinator binary of the networked runtime.
//
//   in-process (default):
//     $ topk_coord --hosts 4 --stream oscillating --n 32 --k 4 --steps 2000
//   real sockets:
//     $ topk_coord --listen 7421 --hosts 2 &
//     $ topk_node --connect 127.0.0.1:7421 --host-index 0 --hosts 2 &
//     $ topk_node --connect 127.0.0.1:7421 --host-index 1 --hosts 2
//
// The coordinator is the single configuration source of a networked run: it
// takes the full workload surface (same flags as topk_sim), ships the
// RunSpec to every node-host in the Config handshake, drives the per-step
// lockstep, and runs the *unmodified* monitoring protocol on the assembled
// observation vectors — so its model-level report is bit-identical to the
// in-process Simulator on a loss-free schedule, plus the transport counters
// (net.*) of the real message passing underneath.
//
// `--listen PORT` (0 = ephemeral; the bound port is printed as
// "listening on HOST:PORT") accepts `--hosts` TCP node-host connections.
// Without it the run is in-process: node-hosts run as threads over loopback
// links — same frames, zero sockets.
// `--link-loss P` drops wire frames with probability P (accounting-only
// retransmission, booked as net.send_retries); negative (default) inherits
// the fault model's --loss, so wire frames drop as often as model messages.
// Flag parsing, --help and the --markdown/--csv/--json/--telemetry output
// semantics are shared with the other binaries via apps/options.hpp.
#include <iostream>
#include <memory>
#include <vector>

#include "apps/options.hpp"
#include "faults/registry.hpp"
#include "net/coordinator.hpp"
#include "net/transport.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace topkmon;

namespace {

void report(const RunResult& run, const net::RunSpec& spec,
            std::uint64_t quiescence_errors, const OutputSet& output,
            const std::vector<Value>& kselect_estimates,
            const std::optional<std::uint64_t>& distinct_count,
            const std::optional<std::uint64_t>& threshold_above,
            std::uint32_t hosts, const std::string& mode,
            const OutputOptions& out) {
  Table t("topk_coord — " + spec.protocol + " on " + spec.stream.kind + " (n=" +
          std::to_string(spec.stream.n) + ", k=" + std::to_string(spec.stream.k) +
          ", hosts=" + std::to_string(hosts) + ", steps=" +
          std::to_string(spec.steps) + ", seed=" + std::to_string(spec.seed) +
          ", " + mode + ")");
  t.header({"metric", "value"});
  t.add_row({"messages (total)", format_count(run.messages)});
  t.add_row({"messages / step", format_double(run.messages_per_step, 3)});
  t.add_row({"node->server", format_count(run.node_to_server)});
  t.add_row({"server->node", format_count(run.server_to_node)});
  t.add_row({"broadcasts", format_count(run.broadcasts)});
  t.add_row({"max rounds / step", format_count(run.max_rounds_per_step)});
  if (spec.window != kInfiniteWindow) {
    t.add_row({"window W (steps)", format_count(spec.window)});
    t.add_row({"window expirations", format_count(run.window_expirations)});
  }
  t.add_row({"messages lost (links)", format_count(run.messages_lost)});
  t.add_row({"stale reads (fleet)", format_count(run.stale_reads)});
  t.add_row({"recovery rounds", format_count(run.recovery_rounds)});
  t.add_row({"net frames sent", format_count(run.net.frames_sent)});
  t.add_row({"net frames recv", format_count(run.net.frames_recv)});
  t.add_row({"net bytes sent", format_count(run.net.bytes_sent)});
  t.add_row({"net bytes recv", format_count(run.net.bytes_recv)});
  t.add_row({"net send retries", format_count(run.net.send_retries)});
  t.add_row({"net reconnects", format_count(run.net.reconnects)});
  t.add_row({"quiescence errors", format_count(quiescence_errors)});

  std::string out_str = "{";
  for (std::size_t i = 0; i < output.size(); ++i) {
    out_str += std::to_string(output[i]) + (i + 1 < output.size() ? ", " : "");
  }
  t.add_row({"final output F(T)", out_str + "}"});
  if (!kselect_estimates.empty()) {
    t.add_row({"k-select estimate (j=k)",
               format_count(kselect_estimates.back())});
  }
  if (distinct_count) {
    t.add_row({"distinct bands (final)", format_count(*distinct_count)});
  }
  if (threshold_above) {
    t.add_row({"threshold alert (T=" + format_count(spec.threshold) + ")",
               std::string(*threshold_above > 0 ? "ALERT" : "quiet") + " (" +
                   format_count(*threshold_above) + " above)"});
  }
  print_table(t, out);
}

}  // namespace

int main(int argc, char** argv) {
  net::RunSpec spec;
  spec.stream.kind = "random_walk";
  spec.stream.n = 16;
  spec.stream.k = 3;
  spec.stream.delta = 1 << 20;
  spec.stream.walk_step = 64;

  std::uint64_t hosts = 2;
  std::uint64_t listen_port = 0;
  std::string bind_addr = "127.0.0.1";
  double link_loss = -1.0;
  std::uint64_t steps_flag = 1000;
  OutputOptions out;

  Options opts("topk_coord", "networked-runtime coordinator (control plane)");
  add_stream_options(opts, spec.stream);
  opts.add_string("protocol", &spec.protocol, "monitoring protocol to run");
  opts.note("protocol-eps", "protocol's ε when it should differ from the stream's",
            "=eps");
  opts.note("query",
            "query spec KIND[:k=..,eps=..,window=..,bound=..,proto=..]; "
            "overrides --protocol/--k/--window (kinds per --list queries)");
  opts.add_uint("seed", &spec.seed, "simulation seed");
  opts.add_size("window", &spec.window,
                "sliding window W in steps (0 = instantaneous)");
  opts.add_uint("steps", &steps_flag, "run length in time steps");
  opts.add_uint("hosts", &hosts, "number of node-hosts (shards)");
  opts.note("listen", "accept node-hosts on this TCP port (0 = ephemeral); "
                      "without it node-hosts run in-process");
  opts.add_string("bind", &bind_addr, "listen address for --listen");
  opts.add_double("link-loss", &link_loss,
                  "wire-frame drop probability (negative = inherit --loss)");
  add_fault_options(opts);
  add_output_options(opts, out);

  switch (opts.parse(argc, argv)) {
    case Options::ParseResult::kHelp: return 0;
    case Options::ParseResult::kError: return 1;
    case Options::ParseResult::kOk: break;
  }
  finalize_stream_options(opts, spec.stream, 2);
  spec.protocol_epsilon =
      opts.flags().get_double("protocol-eps", spec.stream.epsilon);
  spec.steps = static_cast<TimeStep>(steps_flag);

  try {
    // One --query spec overrides the flat protocol/k/ε/window/bound flags —
    // the declarative syntax shared with topk_sim/topk_engine. The RunSpec
    // carries everything to the node-hosts, threshold included.
    if (const std::optional<QuerySpec> q = single_query_option(opts.flags())) {
      spec.protocol = q->protocol;
      spec.stream.k = q->k;
      spec.protocol_epsilon = q->epsilon;
      spec.window = q->window;
      spec.threshold = q->threshold;
      if (q->seed) spec.seed = *q->seed;
    }
    spec.faults = fault_config_from_flags(opts.flags(), spec.steps);
    const std::string err = net::validate_run_spec(spec);
    if (!err.empty()) {
      std::cerr << "error: " << err << "\n";
      return 1;
    }
    if (hosts == 0 || hosts > spec.stream.n) {
      std::cerr << "error: --hosts must satisfy 1 <= hosts <= n\n";
      return 1;
    }

    telemetry::TelemetrySink sink;
    const bool want_telemetry =
        !out.telemetry_json.empty() || !out.telemetry_prom.empty();

    RunResult run;
    OutputSet output;
    std::vector<Value> kselect_estimates;
    std::optional<std::uint64_t> distinct_count;
    std::optional<std::uint64_t> threshold_above;
    std::uint64_t quiescence_errors = 0;
    std::string mode;

    if (opts.flags().has("listen")) {
      mode = "tcp";
      listen_port = opts.flags().get_uint("listen", 0);
      net::TcpListener listener;
      if (!listener.listen(static_cast<std::uint16_t>(listen_port), bind_addr)) {
        std::cerr << "error: cannot listen on " << bind_addr << ":" << listen_port
                  << "\n";
        return 1;
      }
      std::cout << "listening on " << bind_addr << ":" << listener.port()
                << " for " << hosts << " node-host(s)\n"
                << std::flush;
      const double loss = link_loss >= 0.0 ? link_loss : spec.faults.loss;
      std::vector<std::unique_ptr<net::Link>> links;
      for (std::uint64_t i = 0; i < hosts; ++i) {
        auto transport = listener.accept();
        if (!transport) {
          std::cerr << "error: accept failed after " << i << " connection(s)\n";
          return 1;
        }
        auto link = std::make_unique<net::Link>(std::move(transport));
        if (loss > 0.0) {
          link->set_loss(loss, Rng::derive(spec.faults.seed,
                                           0xC0020000u + static_cast<std::uint32_t>(i)));
        }
        links.push_back(std::move(link));
      }
      net::NetCoordinator coord(spec, std::move(links));
      if (want_telemetry) coord.attach_telemetry(&sink);
      run = coord.run();
      output = coord.output();
      quiescence_errors = coord.quiescence_errors();
      const MonitoringProtocol& protocol = coord.sim().protocol();
      if (const QueryCapabilities* q =
              capability_for(protocol, QueryKind::kKSelect)) {
        for (std::size_t j = 1; j <= coord.sim().config().k; ++j) {
          kselect_estimates.push_back(q->kselect(j));
        }
      }
      if (const QueryCapabilities* q =
              capability_for(protocol, QueryKind::kCountDistinct)) {
        distinct_count = q->distinct_count();
      }
      if (const QueryCapabilities* q =
              capability_for(protocol, QueryKind::kThreshold)) {
        threshold_above = q->above_count();
      }
    } else {
      mode = "inproc";
      net::InprocNetOptions net_opts;
      net_opts.hosts = static_cast<std::uint32_t>(hosts);
      net_opts.link_loss = link_loss;
      if (want_telemetry) net_opts.sink = &sink;
      net::InprocNetReport rep = net::run_networked_inproc(spec, net_opts);
      for (std::uint32_t h = 0; h < rep.host_exit.size(); ++h) {
        if (rep.host_exit[h] != 0) {
          std::cerr << "error: node-host " << h << " exited with status "
                    << rep.host_exit[h] << "\n";
          return 1;
        }
      }
      run = rep.run;
      output = rep.output;
      kselect_estimates = std::move(rep.kselect_estimates);
      distinct_count = rep.distinct_count;
      threshold_above = rep.threshold_above;
      quiescence_errors = rep.quiescence_errors;
    }

    report(run, spec, quiescence_errors, output, kselect_estimates,
           distinct_count, threshold_above, static_cast<std::uint32_t>(hosts),
           mode, out);

    if (!out.telemetry_json.empty() &&
        telemetry::write_text_file(out.telemetry_json,
                                   telemetry::to_json(sink, "topk_coord"))) {
      std::cout << "wrote telemetry JSON (" << telemetry::kTelemetrySchema
                << ") to " << out.telemetry_json << "\n";
    }
    if (!out.telemetry_prom.empty() &&
        telemetry::write_text_file(out.telemetry_prom,
                                   telemetry::to_prometheus(sink, "topk_coord"))) {
      std::cout << "wrote Prometheus exposition to " << out.telemetry_prom << "\n";
    }
    if (quiescence_errors != 0) {
      std::cerr << "error: " << quiescence_errors << " quiescence error(s)\n";
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
