// topk_engine — the multi-query serving CLI.
//
//   $ topk_engine --q 32 --stream zipf_bursty --n 64 --k 4 --eps 0.1
//                 --protocol combined --steps 1000 --threads 8 --seed 42
//                 [--query KIND:k=..,eps=..,...]... [--window 64] [--mixed]
//                 [--mixed-windows] [--strict] [--no-share] [--per-query]
//                 [--markdown] [--json]
//                 [--telemetry[=telemetry.json]] [--telemetry-prom[=telemetry.prom]]
//                 [--faults flaky] [--churn-rate 0.02] [--straggler-frac 0.25]
//                 [--straggler-delay 8] [--loss 0.05] [--fault-seed 1]
//
// Runs Q concurrent monitoring queries over one fleet through the
// MonitoringEngine and prints the aggregate (and optionally per-query)
// serving report. The repeatable `--query KIND[:key=value,...]` flag
// declares a heterogeneous workload — top-k positions, k-select,
// count-distinct, threshold alerts on one fleet (kinds per `--list
// queries`); the specs cycle up to Q. Without `--query`, all queries share
// the protocol/k/ε flags; `--mixed` instead varies (protocol, k, ε) across
// queries the way a real multi-tenant deployment would (incompatible with
// --query). `--window W` serves every query over per-node window maxima of
// the last W steps (0 = the paper's instantaneous semantics);
// `--mixed-windows` instead cycles window lengths across queries — one
// engine, one fleet, mixed-window serving. `--no-share` disables
// cross-query probe batching (one probe round per query, as in
// one-Simulator-per-query serving).
// Fault flags degrade the fleet (src/faults): churn, stragglers, lossy
// links — individually or via a named preset; every query observes the same
// degraded fleet and books its own loss/recovery metrics.
// `--telemetry` exports the run's metrics registry, per-phase step profile
// (engine loop + merged per-shard profilers) and per-step timeseries as a
// versioned JSON document (src/telemetry); `--telemetry-prom` emits the
// Prometheus text exposition alongside.
// Flag parsing, --help and the --markdown/--csv/--json/--telemetry output
// semantics are shared with the other binaries via apps/options.hpp.
#include <algorithm>
#include <iostream>

#include "apps/options.hpp"
#include "engine/engine.hpp"
#include "faults/registry.hpp"
#include "protocols/registry.hpp"
#include "streams/registry.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

using namespace topkmon;

int main(int argc, char** argv) {
  StreamSpec spec;
  spec.kind = "zipf_bursty";
  spec.n = 64;
  spec.k = 4;
  spec.delta = 1 << 16;

  EngineConfig cfg;
  cfg.threads = 0;
  cfg.seed = 42;
  std::uint64_t q_count = 32;
  std::uint64_t steps_flag = 1000;
  std::string protocol = "combined";
  std::size_t window = kInfiniteWindow;
  bool mixed = false;
  QueryListOptions qopts;
  bool strict = false;
  bool no_share = false;
  bool per_query = false;
  OutputOptions out;

  Options opts("topk_engine", "Q concurrent monitoring queries over one fleet");
  add_stream_options(opts, spec);
  opts.add_uint("q", &q_count, "number of concurrent queries");
  opts.add_string("protocol", &protocol, "protocol for all queries (unless --mixed)");
  opts.note("protocol-eps", "queries' ε when it should differ from the stream's",
            "=eps");
  opts.add_size("threads", &cfg.threads, "worker threads (0 = hardware)");
  opts.add_uint("seed", &cfg.seed, "engine seed");
  opts.add_uint("steps", &steps_flag, "run length in time steps");
  opts.add_size("window", &window,
                "sliding window W in steps (0 = instantaneous)");
  opts.add_bool("mixed", &mixed, "vary (protocol, k, ε) across queries");
  add_query_options(opts, qopts);
  opts.add_bool("strict", &strict, "assert ε-validity per query every step");
  opts.add_bool("no-share", &no_share, "disable cross-query probe batching");
  opts.add_bool("per-query", &per_query, "also print the per-query breakdown");
  add_fault_options(opts);
  add_output_options(opts, out);

  switch (opts.parse(argc, argv)) {
    case Options::ParseResult::kHelp: return 0;
    case Options::ParseResult::kError: return 1;
    case Options::ParseResult::kOk: break;
  }
  finalize_stream_options(opts, spec, 4);
  cfg.share_probes = !no_share;

  const bool has_query_flags = !opts.flags().get_all("query").empty();
  if (mixed && has_query_flags) {
    std::cerr << "error: --mixed and --query are mutually exclusive "
                 "(--query declares the mix itself)\n";
    return 1;
  }
  if (q_count == 0 && !has_query_flags) {
    std::cerr << "error: --q must be at least 1\n";
    return 1;
  }
  if (spec.k == 0 || spec.k >= spec.n) {
    std::cerr << "error: --k must satisfy 1 <= k < n (got k=" << spec.k
              << ", n=" << spec.n << ")\n";
    return 1;
  }
  const TimeStep steps = static_cast<TimeStep>(steps_flag);

  try {
    cfg.faults =
        make_fleet_schedule(fault_config_from_flags(opts.flags(), steps), spec.n);
    MonitoringEngine engine(cfg, make_stream(spec));
    telemetry::TelemetrySink sink;
    if (!out.telemetry_json.empty() || !out.telemetry_prom.empty()) {
      engine.attach_telemetry(&sink);
    }

    if (mixed) {
      const std::vector<std::string> mixed_protocols{"combined", "topk_protocol",
                                                     "half_error", "exact_topk",
                                                     "kselect"};
      const std::vector<std::size_t> window_cycle{kInfiniteWindow, 16, 64, 256};
      for (std::size_t q = 0; q < q_count; ++q) {
        QuerySpec qs;
        qs.protocol = mixed_protocols[q % mixed_protocols.size()];
        qs.kind = qs.protocol == "kselect" ? QueryKind::kKSelect : QueryKind::kTopK;
        qs.k = 2 + q % std::max<std::size_t>(
                           1, std::min<std::size_t>(spec.n - 2, 6));
        qs.epsilon = qs.protocol == "exact_topk" ? 0.0 : 0.05 + 0.05 * (q % 4);
        qs.window =
            qopts.mixed_windows ? window_cycle[q % window_cycle.size()] : window;
        qs.strict = strict;
        engine.add_query(qs);
      }
    } else {
      QuerySpec fallback;
      fallback.protocol = protocol;
      fallback.kind = protocol == "kselect" ? QueryKind::kKSelect : QueryKind::kTopK;
      fallback.k = spec.k;
      fallback.epsilon = opts.flags().get_double("protocol-eps", spec.epsilon);
      fallback.window = window;
      // --query specs own their kind/params; --strict promotes every query.
      for (QuerySpec qs : build_query_list(opts.flags(), qopts, q_count, fallback)) {
        if (strict) qs.strict = true;
        engine.add_query(std::move(qs));
      }
    }
    const std::size_t queries_added = engine.query_count();

    const EngineStats stats = engine.run(steps);

    const Table summary = stats.summary_table(
        "topk_engine — " + std::to_string(queries_added) +
        (mixed ? " mixed" : "") + " queries on " + spec.kind + " (n=" +
        std::to_string(spec.n) + ", steps=" + std::to_string(steps) +
        ", threads=" + std::to_string(cfg.threads) +
        ", seed=" + std::to_string(cfg.seed) + ")");
    print_table(summary, out);

    if (per_query) {
      std::cout << "\n";
      print_table(stats.per_query_table("per-query breakdown"), out);
    }

    // Queries whose protocol answers beyond top-k positions report their
    // final-step answer through QueryCapabilities (empty table elided).
    Table ans("query answers beyond top-k (final step)");
    ans.header({"query", "protocol", "kind", "answer"});
    bool any_ans = false;
    for (std::size_t q = 0; q < queries_added; ++q) {
      const QueryHandle h = static_cast<QueryHandle>(q);
      const std::string proto(engine.query_sim(h).protocol().name());
      if (const QueryCapabilities* sel = engine.capability(h, QueryKind::kKSelect)) {
        const SimConfig& qcfg = engine.query_sim(h).config();
        ans.add_row({std::to_string(q), proto, "kselect (j=k)",
                     format_count(sel->kselect(qcfg.k))});
        any_ans = true;
      }
      if (const QueryCapabilities* sel =
              engine.capability(h, QueryKind::kCountDistinct)) {
        ans.add_row({std::to_string(q), proto, "distinct",
                     format_count(sel->distinct_count())});
        any_ans = true;
      }
      if (const QueryCapabilities* sel =
              engine.capability(h, QueryKind::kThreshold)) {
        ans.add_row({std::to_string(q), proto, "threshold",
                     std::string(sel->alert_active() ? "ALERT" : "quiet") + " (" +
                         format_count(sel->above_count()) + " above)"});
        any_ans = true;
      }
    }
    if (any_ans) {
      std::cout << "\n";
      print_table(ans, out);
    }
    if (!out.telemetry_json.empty() &&
        telemetry::write_text_file(out.telemetry_json,
                                   telemetry::to_json(sink, "topk_engine"))) {
      std::cout << "wrote telemetry JSON (" << telemetry::kTelemetrySchema
                << ") to " << out.telemetry_json << "\n";
    }
    if (!out.telemetry_prom.empty() &&
        telemetry::write_text_file(out.telemetry_prom,
                                   telemetry::to_prometheus(sink, "topk_engine"))) {
      std::cout << "wrote Prometheus exposition to " << out.telemetry_prom << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::cerr << "use --list to see registered protocols and streams\n";
    return 1;
  }
  return 0;
}
