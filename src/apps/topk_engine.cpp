// topk_engine — the multi-query serving CLI.
//
//   $ topk_engine --q 32 --stream zipf_bursty --n 64 --k 4 --eps 0.1
//                 --protocol combined --steps 1000 --threads 8 --seed 42
//                 [--window 64] [--mixed] [--mixed-windows] [--strict]
//                 [--no-share] [--per-query] [--markdown]
//                 [--telemetry[=telemetry.json]] [--telemetry-prom[=telemetry.prom]]
//                 [--faults flaky] [--churn-rate 0.02] [--straggler-frac 0.25]
//                 [--straggler-delay 8] [--loss 0.05] [--fault-seed 1]
//
// Runs Q concurrent top-k-position queries over one fleet through the
// MonitoringEngine and prints the aggregate (and optionally per-query)
// serving report. `--mixed` varies (protocol, k, ε) across queries the way a
// real multi-tenant deployment would; without it all queries share the
// protocol/k/ε flags. `--window W` serves every query over per-node window
// maxima of the last W steps (0 = the paper's instantaneous semantics);
// `--mixed-windows` instead cycles window lengths across queries — one
// engine, one fleet, mixed-window serving. `--no-share` disables
// cross-query probe batching (one probe round per query, as in
// one-Simulator-per-query serving).
// Fault flags degrade the fleet (src/faults): churn, stragglers, lossy
// links — individually or via a named preset; every query observes the same
// degraded fleet and books its own loss/recovery metrics.
// `--telemetry` exports the run's metrics registry, per-phase step profile
// (engine loop + merged per-shard profilers) and per-step timeseries as a
// versioned JSON document (src/telemetry); `--telemetry-prom` emits the
// Prometheus text exposition alongside.
// `--list` enumerates registered protocols, stream kinds and fault presets.
#include <algorithm>
#include <iostream>

#include "engine/engine.hpp"
#include "faults/registry.hpp"
#include "protocols/registry.hpp"
#include "streams/registry.hpp"
#include "telemetry/telemetry.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace topkmon;

namespace {

/// Path of an optional-value flag: "" when absent, `def` for the bare flag
/// (the parser yields "true"), else the given value.
std::string optional_path_flag(const Flags& flags, const std::string& name,
                               const std::string& def) {
  if (!flags.has(name)) return "";
  const std::string v = flags.get_string(name, def);
  return (v.empty() || v == "true") ? def : v;
}

int list_registry() {
  std::cout << "protocols:";
  for (const auto& p : protocol_names()) std::cout << " " << p;
  std::cout << "\nstreams:  ";
  for (const auto& s : stream_kinds()) std::cout << " " << s;
  std::cout << "\nfaults:   ";
  for (const auto& f : fault_preset_names()) std::cout << " " << f;
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("list") || flags.has("help")) {
    return list_registry();
  }

  StreamSpec spec;
  spec.kind = flags.get_string("stream", "zipf_bursty");
  spec.n = flags.get_uint("n", 64);
  spec.k = flags.get_uint("k", 4);
  spec.epsilon = flags.get_double("eps", 0.1);
  spec.delta = flags.get_uint("delta", 1 << 16);
  spec.sigma = flags.get_uint("sigma", spec.n / 4);

  EngineConfig cfg;
  cfg.threads = flags.get_uint("threads", 0);
  cfg.seed = flags.get_uint("seed", 42);
  cfg.share_probes = !flags.get_bool("no-share", false);

  const std::size_t q_count = flags.get_uint("q", 32);
  if (q_count == 0) {
    std::cerr << "error: --q must be at least 1\n";
    return 1;
  }
  if (spec.k == 0 || spec.k >= spec.n) {
    std::cerr << "error: --k must satisfy 1 <= k < n (got k=" << spec.k
              << ", n=" << spec.n << ")\n";
    return 1;
  }
  const TimeStep steps = static_cast<TimeStep>(flags.get_uint("steps", 1000));
  const bool mixed = flags.get_bool("mixed", false);
  const bool strict = flags.get_bool("strict", false);
  const std::string protocol = flags.get_string("protocol", "combined");
  const std::size_t window = flags.get_uint("window", kInfiniteWindow);
  const bool mixed_windows = flags.get_bool("mixed-windows", false);
  const std::vector<std::size_t> window_cycle{kInfiniteWindow, 16, 64, 256};

  const std::string telemetry_json =
      optional_path_flag(flags, "telemetry", "telemetry.json");
  const std::string telemetry_prom =
      optional_path_flag(flags, "telemetry-prom", "telemetry.prom");

  try {
    cfg.faults = make_fleet_schedule(fault_config_from_flags(flags, steps), spec.n);
    MonitoringEngine engine(cfg, make_stream(spec));
    telemetry::TelemetrySink sink;
    if (!telemetry_json.empty() || !telemetry_prom.empty()) {
      engine.attach_telemetry(&sink);
    }

    const std::vector<std::string> mixed_protocols{"combined", "topk_protocol",
                                                   "half_error", "exact_topk"};
    for (std::size_t q = 0; q < q_count; ++q) {
      QuerySpec qs;
      if (mixed) {
        qs.protocol = mixed_protocols[q % mixed_protocols.size()];
        qs.k = 2 + q % std::max<std::size_t>(
                           1, std::min<std::size_t>(spec.n - 2, 6));
        qs.epsilon = qs.protocol == "exact_topk" ? 0.0 : 0.05 + 0.05 * (q % 4);
      } else {
        qs.protocol = protocol;
        qs.k = spec.k;
        qs.epsilon = flags.get_double("protocol-eps", spec.epsilon);
      }
      qs.window = mixed_windows ? window_cycle[q % window_cycle.size()] : window;
      qs.strict = strict;
      engine.add_query(qs);
    }

    const EngineStats stats = engine.run(steps);

    const Table summary = stats.summary_table(
        "topk_engine — " + std::to_string(q_count) + (mixed ? " mixed" : "") +
        " queries on " + spec.kind + " (n=" + std::to_string(spec.n) +
        ", steps=" + std::to_string(steps) + ", threads=" +
        std::to_string(cfg.threads) + ", seed=" + std::to_string(cfg.seed) + ")");
    const bool markdown = flags.get_bool("markdown", false);
    std::cout << (markdown ? summary.to_markdown() : summary.to_ascii());

    if (flags.get_bool("per-query", false)) {
      const Table per_query = stats.per_query_table("per-query breakdown");
      std::cout << "\n" << (markdown ? per_query.to_markdown() : per_query.to_ascii());
    }
    if (!telemetry_json.empty() &&
        telemetry::write_text_file(telemetry_json,
                                   telemetry::to_json(sink, "topk_engine"))) {
      std::cout << "wrote telemetry JSON (" << telemetry::kTelemetrySchema
                << ") to " << telemetry_json << "\n";
    }
    if (!telemetry_prom.empty() &&
        telemetry::write_text_file(telemetry_prom,
                                   telemetry::to_prometheus(sink, "topk_engine"))) {
      std::cout << "wrote Prometheus exposition to " << telemetry_prom << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::cerr << "use --list to see registered protocols and streams\n";
    return 1;
  }
  return 0;
}
