#include "telemetry/timeseries.hpp"

namespace topkmon::telemetry {

TimeseriesRecorder::TimeseriesRecorder(std::size_t capacity)
    : capacity_(capacity < 2 ? 2 : capacity + (capacity & 1)) {}

void TimeseriesRecorder::add_channel(std::string name, MetricId id,
                                     const MetricsRegistry& registry) {
  TOPKMON_ASSERT_MSG(count_ == 0, "timeseries channels are fixed once sampling starts");
  TOPKMON_ASSERT_MSG(registry.kind(id) != MetricKind::kHistogram,
                     "timeseries channels must be counters or gauges");
  names_.push_back(std::move(name));
  ids_.push_back(id);
}

void TimeseriesRecorder::sample(const MetricsRegistry& registry, std::uint64_t step) {
  if (ids_.empty() || step % stride_ != 0) return;
  if (data_.empty()) {
    data_.assign(capacity_ * row_width(), 0);  // one-time; steady state is free
  }
  if (count_ == capacity_) {
    // Downsample in place: keep every other row (the even strides), double
    // the stride. capacity_ is even, so the next incoming multiple of the
    // old stride that survives is exactly capacity_ × stride — the row the
    // caller is about to record continues the doubled grid seamlessly.
    const std::size_t w = row_width();
    for (std::size_t r = 1; r < capacity_ / 2; ++r) {
      for (std::size_t c = 0; c < w; ++c) {
        data_[r * w + c] = data_[2 * r * w + c];
      }
    }
    count_ = capacity_ / 2;
    stride_ *= 2;
    if (step % stride_ != 0) return;
  }
  std::uint64_t* row = &data_[count_ * row_width()];
  row[0] = step;
  for (std::size_t c = 0; c < ids_.size(); ++c) {
    row[1 + c] = registry.value(ids_[c]);
  }
  ++count_;
}

}  // namespace topkmon::telemetry
