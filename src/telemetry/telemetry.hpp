// TelemetrySink — the bundle a run exports: metrics registry + step profiler
// + per-step timeseries, with per-shard profiler slots for the engine.
//
// One sink serves one run (a Simulator, a MonitoringEngine, a bench cell, or
// a sweep). The owner registers metrics and channels at setup, attaches the
// profiler(s) to the step loop, and at the end renders the whole sink as a
// versioned JSON document (kTelemetrySchema) or Prometheus text exposition.
// scripts/check_bench.py consumes the JSON (--telemetry) and refuses unknown
// schema versions, so bump kTelemetrySchema whenever the shape changes.
//
// Concurrency: the registry is shared freely (wait-free updates); profilers
// are single-writer — the engine takes one per shard via shard_profiler(i)
// and export merges them with the main-loop profiler (merged_profiler()).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/timeseries.hpp"

namespace topkmon::telemetry {

/// Version tag of the JSON document; consumers hard-fail on anything else.
inline constexpr std::string_view kTelemetrySchema = "topkmon.telemetry.v1";

class TelemetrySink {
 public:
  explicit TelemetrySink(std::size_t timeseries_capacity = 1024)
      : timeseries_(timeseries_capacity) {}

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  /// The main-loop profiler (the simulator's, or the engine's own phases).
  StepProfiler& profiler() { return profiler_; }
  const StepProfiler& profiler() const { return profiler_; }

  TimeseriesRecorder& timeseries() { return timeseries_; }
  const TimeseriesRecorder& timeseries() const { return timeseries_; }

  /// Engine plumbing: creates `count` single-writer shard profilers. Call
  /// once, before taking any shard_profiler pointer (a later resize would
  /// move them).
  void resize_shard_profilers(std::size_t count) {
    TOPKMON_ASSERT_MSG(shard_profilers_.empty() || shard_profilers_.size() == count,
                       "shard profilers are sized once");
    shard_profilers_.resize(count);
  }
  std::size_t shard_profiler_count() const { return shard_profilers_.size(); }
  StepProfiler& shard_profiler(std::size_t i) { return shard_profilers_[i]; }
  const StepProfiler& shard_profiler(std::size_t i) const {
    return shard_profilers_[i];
  }

  /// Main-loop profiler + every shard profiler, summed (export view).
  StepProfiler merged_profiler() const {
    StepProfiler merged;
    merged.merge(profiler_);
    for (const StepProfiler& p : shard_profilers_) {
      merged.merge(p);
    }
    return merged;
  }

  /// Zeroes values, profilers, and timeseries rows; registrations and
  /// channels survive (sink reuse across bench cells).
  void reset() {
    registry_.reset_values();
    profiler_.reset();
    for (StepProfiler& p : shard_profilers_) {
      p.reset();
    }
    timeseries_.reset();
  }

 private:
  MetricsRegistry registry_;
  StepProfiler profiler_;
  std::vector<StepProfiler> shard_profilers_;
  TimeseriesRecorder timeseries_;
};

/// Renders the sink as the kTelemetrySchema JSON document. `source` names the
/// producing binary/run ("topk_sim", "bench_e13", ...).
std::string to_json(const TelemetrySink& sink, std::string_view source);

/// Renders the sink in Prometheus text exposition format (metrics + per-phase
/// profiler series; the timeseries has no Prometheus analogue and is JSON-only).
std::string to_prometheus(const TelemetrySink& sink, std::string_view source);

/// Writes `content` to `path`; returns false (with a stderr warning) on error.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace topkmon::telemetry
