// MetricsRegistry — the unified metric namespace of the telemetry layer.
//
// Every quantity the repo used to scatter across ad-hoc structs — the
// CommStats kind/tag matrix, EngineStats aggregates, fault metrics
// (stale_reads / messages_lost / recovery_rounds), window_expirations, the
// order-maintenance repair/rebuild counters — is registered here once under
// a dotted name ("comm.messages", "faults.stale_reads", "order.repairs") and
// becomes queryable through one surface: by id on the hot path, by name at
// export time (telemetry/telemetry.hpp renders JSON and Prometheus text).
//
// Registration is a setup-phase operation (it may allocate and is NOT
// thread-safe); it returns a dense MetricId. Hot-path updates go through the
// id and are wait-free: a counter update is one relaxed atomic add, a gauge
// update one relaxed store, a histogram observation one relaxed add into a
// log2 bucket plus count/sum. All slots are preallocated at construction —
// no update ever allocates, so the zero-steady-state-allocation invariant of
// the step loop (util/alloc_counter.hpp) survives with telemetry attached.
//
// Concurrency contract: register first, then share freely. Updates and reads
// from any number of threads are safe (relaxed atomics — counters are
// monotone and independently meaningful; cross-metric snapshots are only
// taken after the run quiesces).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace topkmon::telemetry {

using MetricId = std::uint32_t;
inline constexpr MetricId kInvalidMetric = ~MetricId{0};

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };
const char* to_string(MetricKind kind);

/// Histogram buckets are log2: bucket b counts observations v with
/// bit_width(v) == b, i.e. v in [2^(b-1), 2^b); bucket 0 counts v == 0.
/// Values are ≤ 2^48 (model/types.hpp), so 50 buckets cover the range with
/// room for ns-scale latencies.
inline constexpr std::size_t kHistogramBuckets = 50;

class MetricsRegistry {
 public:
  /// Capacities fix the slot pools up front; registration past them asserts.
  explicit MetricsRegistry(std::size_t scalar_capacity = 192,
                           std::size_t histogram_capacity = 16);

  // ---- setup phase (may allocate; single-threaded) -------------------------

  /// Registers (or looks up, if `name` is already registered with the same
  /// kind) a metric and returns its id. Re-registering a name with a
  /// different kind asserts.
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  MetricId histogram(std::string_view name);

  /// Id of a registered metric; kInvalidMetric when absent.
  MetricId find(std::string_view name) const;

  // ---- hot path (wait-free, allocation-free) -------------------------------

  void add(MetricId id, std::uint64_t delta = 1) {
    scalars_[slots_[id]].fetch_add(delta, std::memory_order_relaxed);
  }
  void set(MetricId id, std::uint64_t value) {
    scalars_[slots_[id]].store(value, std::memory_order_relaxed);
  }
  void observe(MetricId id, std::uint64_t value) {
    std::atomic<std::uint64_t>* h = &hists_[slots_[id] * kHistogramRowWidth];
    h[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    h[kHistogramBuckets].fetch_add(1, std::memory_order_relaxed);       // count
    h[kHistogramBuckets + 1].fetch_add(value, std::memory_order_relaxed);  // sum
  }

  // ---- queries -------------------------------------------------------------

  std::size_t size() const { return names_.size(); }
  const std::string& name(MetricId id) const { return names_[id]; }
  MetricKind kind(MetricId id) const { return kinds_[id]; }

  /// Current value of a counter or gauge.
  std::uint64_t value(MetricId id) const {
    return scalars_[slots_[id]].load(std::memory_order_relaxed);
  }
  std::uint64_t hist_count(MetricId id) const {
    return hist_cell(id, kHistogramBuckets);
  }
  std::uint64_t hist_sum(MetricId id) const {
    return hist_cell(id, kHistogramBuckets + 1);
  }
  std::uint64_t hist_bucket(MetricId id, std::size_t b) const {
    return hist_cell(id, b);
  }

  /// Zeroes every slot; registrations are kept (sink reuse across runs).
  void reset_values();

  /// The log2 bucket an observation lands in.
  static std::size_t bucket_of(std::uint64_t v) {
    std::size_t b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
  }

 private:
  static constexpr std::size_t kHistogramRowWidth = kHistogramBuckets + 2;

  MetricId register_metric(std::string_view name, MetricKind kind);

  std::uint64_t hist_cell(MetricId id, std::size_t cell) const {
    return hists_[slots_[id] * kHistogramRowWidth + cell].load(
        std::memory_order_relaxed);
  }

  std::vector<std::string> names_;        ///< by id
  std::vector<MetricKind> kinds_;         ///< by id
  std::vector<std::uint32_t> slots_;      ///< by id: index into its kind's pool
  std::unique_ptr<std::atomic<std::uint64_t>[]> scalars_;  ///< counters + gauges
  std::unique_ptr<std::atomic<std::uint64_t>[]> hists_;    ///< histogram rows
  std::size_t scalar_capacity_;
  std::size_t histogram_capacity_;
  std::size_t scalar_count_ = 0;
  std::size_t histogram_count_ = 0;
};

}  // namespace topkmon::telemetry
