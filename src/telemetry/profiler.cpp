#include "telemetry/profiler.hpp"

#include <chrono>

namespace topkmon::telemetry {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kGenerator: return "generator";
    case Phase::kFaultInject: return "fault_inject";
    case Phase::kWindowMerge: return "window_merge";
    case Phase::kAdvanceTime: return "advance_time";
    case Phase::kProtocol: return "protocol";
    case Phase::kViolationCollect: return "violation_collect";
    case Phase::kOrderUpdate: return "order_update";
    case Phase::kSigma: return "sigma";
    case Phase::kStrictValidate: return "strict_validate";
    case Phase::kSnapshotBegin: return "snapshot_begin";
    case Phase::kShardAdvance: return "shard_advance";
    case Phase::kCount: break;
  }
  return "?";
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t StepProfiler::grand_total_ns() const {
  std::uint64_t total = 0;
  for (const PhaseStats& s : phases_) {
    total += s.total_ns;
  }
  return total;
}

void StepProfiler::merge(const StepProfiler& other) {
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    phases_[p].total_ns += other.phases_[p].total_ns;
    phases_[p].calls += other.phases_[p].calls;
    for (std::size_t b = 0; b < kLatencyBuckets; ++b) {
      phases_[p].hist[b] += other.phases_[p].hist[b];
    }
  }
}

}  // namespace topkmon::telemetry
