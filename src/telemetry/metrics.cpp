#include "telemetry/metrics.hpp"

namespace topkmon::telemetry {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

MetricsRegistry::MetricsRegistry(std::size_t scalar_capacity,
                                 std::size_t histogram_capacity)
    : scalars_(new std::atomic<std::uint64_t>[scalar_capacity]),
      hists_(new std::atomic<std::uint64_t>[histogram_capacity * kHistogramRowWidth]),
      scalar_capacity_(scalar_capacity),
      histogram_capacity_(histogram_capacity) {
  names_.reserve(scalar_capacity + histogram_capacity);
  kinds_.reserve(scalar_capacity + histogram_capacity);
  slots_.reserve(scalar_capacity + histogram_capacity);
  for (std::size_t i = 0; i < scalar_capacity_; ++i) {
    scalars_[i].store(0, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < histogram_capacity_ * kHistogramRowWidth; ++i) {
    hists_[i].store(0, std::memory_order_relaxed);
  }
}

MetricId MetricsRegistry::counter(std::string_view name) {
  return register_metric(name, MetricKind::kCounter);
}

MetricId MetricsRegistry::gauge(std::string_view name) {
  return register_metric(name, MetricKind::kGauge);
}

MetricId MetricsRegistry::histogram(std::string_view name) {
  return register_metric(name, MetricKind::kHistogram);
}

MetricId MetricsRegistry::find(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<MetricId>(i);
  }
  return kInvalidMetric;
}

MetricId MetricsRegistry::register_metric(std::string_view name, MetricKind kind) {
  const MetricId existing = find(name);
  if (existing != kInvalidMetric) {
    TOPKMON_ASSERT_MSG(kinds_[existing] == kind,
                       "metric re-registered with a different kind");
    return existing;
  }
  std::uint32_t slot;
  if (kind == MetricKind::kHistogram) {
    TOPKMON_ASSERT_MSG(histogram_count_ < histogram_capacity_,
                       "MetricsRegistry histogram capacity exhausted");
    slot = static_cast<std::uint32_t>(histogram_count_++);
  } else {
    TOPKMON_ASSERT_MSG(scalar_count_ < scalar_capacity_,
                       "MetricsRegistry scalar capacity exhausted");
    slot = static_cast<std::uint32_t>(scalar_count_++);
  }
  names_.emplace_back(name);
  kinds_.push_back(kind);
  slots_.push_back(slot);
  return static_cast<MetricId>(names_.size() - 1);
}

void MetricsRegistry::reset_values() {
  for (std::size_t i = 0; i < scalar_count_; ++i) {
    scalars_[i].store(0, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < histogram_count_ * kHistogramRowWidth; ++i) {
    hists_[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace topkmon::telemetry
