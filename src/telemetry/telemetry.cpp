#include "telemetry/telemetry.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>

namespace topkmon::telemetry {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

/// Buckets past the last nonzero carry no information; trim them so the
/// documents stay readable (consumers index what is present).
template <typename GetBucket>
void append_buckets(std::string& out, std::size_t n, GetBucket get) {
  std::size_t last = 0;
  for (std::size_t b = 0; b < n; ++b) {
    if (get(b) != 0) last = b + 1;
  }
  out += "[";
  for (std::size_t b = 0; b < last; ++b) {
    if (b != 0) out += ", ";
    append_u64(out, get(b));
  }
  out += "]";
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted names
/// map dots (and anything else) to underscores under a topkmon_ prefix.
std::string prom_name(std::string_view name) {
  std::string out = "topkmon_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string to_json(const TelemetrySink& sink, std::string_view source) {
  const MetricsRegistry& reg = sink.registry();
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"";
  out += kTelemetrySchema;
  out += "\",\n  \"source\": \"" + json_escape(source) + "\",\n";
  out += "  \"telemetry_enabled\": ";
  out += kTelemetryEnabled ? "true" : "false";
  out += ",\n  \"metrics\": [\n";
  for (MetricId id = 0; id < reg.size(); ++id) {
    out += "    {\"name\": \"" + json_escape(reg.name(id)) + "\", \"kind\": \"";
    out += to_string(reg.kind(id));
    out += "\", ";
    if (reg.kind(id) == MetricKind::kHistogram) {
      out += "\"count\": ";
      append_u64(out, reg.hist_count(id));
      out += ", \"sum\": ";
      append_u64(out, reg.hist_sum(id));
      out += ", \"buckets\": ";
      append_buckets(out, kHistogramBuckets,
                     [&](std::size_t b) { return reg.hist_bucket(id, b); });
    } else {
      out += "\"value\": ";
      append_u64(out, reg.value(id));
    }
    out += id + 1 < reg.size() ? "},\n" : "}\n";
  }
  out += "  ],\n";

  const StepProfiler merged = sink.merged_profiler();
  out += "  \"profiler\": {\"bucket_scale\": \"log2_ns\", \"phases\": [\n";
  bool first = true;
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const auto phase = static_cast<Phase>(p);
    if (merged.calls(phase) == 0) continue;
    if (!first) out += ",\n";
    first = false;
    out += "    {\"phase\": \"";
    out += phase_name(phase);
    out += "\", \"total_ns\": ";
    append_u64(out, merged.total_ns(phase));
    out += ", \"calls\": ";
    append_u64(out, merged.calls(phase));
    out += ", \"latency_buckets\": ";
    const auto hist = merged.latency_histogram(phase);
    append_buckets(out, hist.size(), [&](std::size_t b) { return hist[b]; });
    out += "}";
  }
  out += "\n  ]},\n";

  const TimeseriesRecorder& ts = sink.timeseries();
  out += "  \"timeseries\": {\"stride\": ";
  append_u64(out, ts.stride());
  out += ", \"channels\": [";
  for (std::size_t c = 0; c < ts.channel_count(); ++c) {
    if (c != 0) out += ", ";
    out += "\"" + json_escape(ts.channel_names()[c]) + "\"";
  }
  out += "], \"rows\": [\n";
  for (std::size_t r = 0; r < ts.size(); ++r) {
    out += "    [";
    append_u64(out, ts.step_at(r));
    for (std::size_t c = 0; c < ts.channel_count(); ++c) {
      out += ", ";
      append_u64(out, ts.value_at(r, c));
    }
    out += r + 1 < ts.size() ? "],\n" : "]\n";
  }
  out += "  ]}\n}\n";
  return out;
}

std::string to_prometheus(const TelemetrySink& sink, std::string_view source) {
  const MetricsRegistry& reg = sink.registry();
  const std::string labels = "{source=\"" + std::string(source) + "\"}";
  std::string out;
  out.reserve(4096);
  for (MetricId id = 0; id < reg.size(); ++id) {
    const std::string name = prom_name(reg.name(id));
    if (reg.kind(id) == MetricKind::kHistogram) {
      out += "# TYPE " + name + " histogram\n";
      // Log2 buckets: bucket b counts v with bit_width(v) == b, i.e. the
      // cumulative count through bucket b is the count of v ≤ 2^b - 1.
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        const std::uint64_t c = reg.hist_bucket(id, b);
        if (c == 0 && b != 0) continue;
        cum += c;
        out += name + "_bucket{source=\"" + std::string(source) + "\", le=\"";
        append_u64(out, (std::uint64_t{1} << b) - 1);
        out += "\"} ";
        append_u64(out, cum);
        out += "\n";
      }
      out += name + "_bucket{source=\"" + std::string(source) + "\", le=\"+Inf\"} ";
      append_u64(out, reg.hist_count(id));
      out += "\n" + name + "_sum" + labels + " ";
      append_u64(out, reg.hist_sum(id));
      out += "\n" + name + "_count" + labels + " ";
      append_u64(out, reg.hist_count(id));
      out += "\n";
    } else {
      out += "# TYPE " + name +
             (reg.kind(id) == MetricKind::kCounter ? " counter\n" : " gauge\n");
      out += name + labels + " ";
      append_u64(out, reg.value(id));
      out += "\n";
    }
  }

  const StepProfiler merged = sink.merged_profiler();
  bool any = false;
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    if (merged.calls(static_cast<Phase>(p)) != 0) any = true;
  }
  if (any) {
    out += "# TYPE topkmon_phase_total_ns counter\n";
    out += "# TYPE topkmon_phase_calls counter\n";
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      const auto phase = static_cast<Phase>(p);
      if (merged.calls(phase) == 0) continue;
      const std::string plabels = "{source=\"" + std::string(source) +
                                  "\", phase=\"" + phase_name(phase) + "\"}";
      out += "topkmon_phase_total_ns" + plabels + " ";
      append_u64(out, merged.total_ns(phase));
      out += "\ntopkmon_phase_calls" + plabels + " ";
      append_u64(out, merged.calls(phase));
      out += "\n";
    }
  }
  return out;
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::cerr << "warning: cannot write telemetry file " << path << "\n";
    return false;
  }
  f << content;
  return true;
}

}  // namespace topkmon::telemetry
