// StepProfiler — per-phase wall-time attribution for the step hot path.
//
// The step loop of Simulator::step_with / MonitoringEngine::step decomposes
// into a fixed set of phases (fault injection, window merge, order
// maintenance, σ, protocol rounds, violation collection, …). Scoped RAII
// timers (ScopedPhase, usually via TOPKMON_PHASE_SCOPE) attribute wall time
// to each phase: per-phase ns totals, call counts, and a log2-bucket latency
// histogram — enough to see *which* phase regressed when a bench gate trips,
// not just that the step got slower.
//
// Cost model: a scope is two clock reads plus a handful of plain adds, and
// only when a profiler is attached (a null profiler skips the clock reads
// entirely). The whole machinery compiles out under -DTOPKMON_TELEMETRY=OFF
// (TOPKMON_PHASE_SCOPE becomes a no-op statement); the StepProfiler type
// itself stays defined so export/tests keep building.
//
// Concurrency: a StepProfiler is single-writer — the engine gives each shard
// its own profiler and merges them at export time (TelemetrySink). The clock
// is injectable (ClockFn) so nesting and bucket placement are testable
// against a manual fake.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace topkmon::telemetry {

#if defined(TOPKMON_TELEMETRY_OFF)
inline constexpr bool kTelemetryEnabled = false;
#else
inline constexpr bool kTelemetryEnabled = true;
#endif

enum class Phase : std::uint8_t {
  kGenerator = 0,      ///< stream generator producing the step's raw vector
  kFaultInject,        ///< FaultInjector::transform (churn/straggler rewrite)
  kWindowMerge,        ///< WindowedValueModel::push (sliding-window maxima)
  kAdvanceTime,        ///< SimContext::advance_time (install + violation sweep)
  kProtocol,           ///< protocol dispatch: start/on_step/recovery/expiry
  kViolationCollect,   ///< SimContext::collect_violations (inside kProtocol)
  kOrderUpdate,        ///< TopKOrder::update (diff + repair / radix rebuild)
  kSigma,              ///< σ(t) answer (binary search / partition scan / hook)
  kStrictValidate,     ///< strict-mode output + filter validation
  kSnapshotBegin,      ///< engine: StepSnapshot::begin_step (all window views)
  kShardAdvance,       ///< engine: one shard advancing its queries
  kCount
};
inline constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount);
const char* phase_name(Phase p);

/// Latency histogram buckets are log2 ns: bucket b counts durations d with
/// bit_width(d) == b (bucket 0: d == 0); 40 buckets cover ~18 minutes.
inline constexpr std::size_t kLatencyBuckets = 40;

/// Monotonic wall clock in nanoseconds (std::chrono::steady_clock).
std::uint64_t steady_now_ns();

class StepProfiler {
 public:
  using ClockFn = std::uint64_t (*)();

  /// `clock` = nullptr uses the steady wall clock; tests inject a manual one.
  explicit StepProfiler(ClockFn clock = nullptr)
      : clock_(clock != nullptr ? clock : &steady_now_ns) {}

  std::uint64_t now() const { return clock_(); }

  void record(Phase p, std::uint64_t ns) {
    PhaseStats& s = phases_[static_cast<std::size_t>(p)];
    s.total_ns += ns;
    ++s.calls;
    ++s.hist[bucket_of(ns)];
  }

  std::uint64_t total_ns(Phase p) const {
    return phases_[static_cast<std::size_t>(p)].total_ns;
  }
  std::uint64_t calls(Phase p) const {
    return phases_[static_cast<std::size_t>(p)].calls;
  }
  std::span<const std::uint64_t> latency_histogram(Phase p) const {
    const PhaseStats& s = phases_[static_cast<std::size_t>(p)];
    return {s.hist.data(), s.hist.size()};
  }

  /// Σ total_ns over all phases (nested phases count into each enclosing
  /// scope — shares computed from this are of *inclusive* time).
  std::uint64_t grand_total_ns() const;

  /// Adds another profiler's totals/calls/buckets into this one (export-time
  /// aggregation of per-shard profilers).
  void merge(const StepProfiler& other);

  void reset() { phases_.fill(PhaseStats{}); }

  static std::size_t bucket_of(std::uint64_t ns) {
    std::size_t b = 0;
    while (ns != 0) {
      ++b;
      ns >>= 1;
    }
    return b < kLatencyBuckets ? b : kLatencyBuckets - 1;
  }

 private:
  struct PhaseStats {
    std::uint64_t total_ns = 0;
    std::uint64_t calls = 0;
    std::array<std::uint64_t, kLatencyBuckets> hist{};
  };

  std::array<PhaseStats, kNumPhases> phases_{};
  ClockFn clock_;
};

/// RAII phase timer: measures from construction to scope exit and records
/// into the profiler. A null profiler costs two branches and no clock reads.
class ScopedPhase {
 public:
  ScopedPhase(StepProfiler* prof, Phase phase) : prof_(prof), phase_(phase) {
    if (prof_ != nullptr) start_ = prof_->now();
  }
  ~ScopedPhase() {
    if (prof_ != nullptr) prof_->record(phase_, prof_->now() - start_);
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  StepProfiler* prof_;
  Phase phase_;
  std::uint64_t start_ = 0;
};

#define TOPKMON_TELEM_CONCAT2(a, b) a##b
#define TOPKMON_TELEM_CONCAT(a, b) TOPKMON_TELEM_CONCAT2(a, b)

#if defined(TOPKMON_TELEMETRY_OFF)
#define TOPKMON_PHASE_SCOPE(prof, phase) static_cast<void>(0)
#else
/// Times the rest of the enclosing scope as `phase` of `prof` (a
/// StepProfiler*; null = no-op). Compiled out under TOPKMON_TELEMETRY=OFF.
#define TOPKMON_PHASE_SCOPE(prof, phase)                                      \
  ::topkmon::telemetry::ScopedPhase TOPKMON_TELEM_CONCAT(topkmon_phase_scope_, \
                                                         __LINE__)(prof, phase)
#endif

}  // namespace topkmon::telemetry
