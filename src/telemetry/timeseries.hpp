// TimeseriesRecorder — per-step samples of selected metrics over a run.
//
// Aggregate counters say *how much* a protocol communicated; the recorder
// says *when*: message bursts, repair storms, scan-mode flips, and window
// expiry waves become visible as a per-step series instead of vanishing into
// end-of-run totals.
//
// Channels are registry metrics (counters or gauges) chosen at setup;
// sample(t) reads their current values into a preallocated ring row. The
// ring has fixed capacity: when it fills, it downsamples in place by a
// power of two — every other retained row is dropped and the sampling
// stride doubles, so a T-step run always fits in `capacity` rows with
// uniform spacing and bounded memory. Counters are recorded cumulatively,
// which survives downsampling losslessly (a burst stays visible as a slope
// between surviving rows); gauges are instantaneous samples.
//
// Invariants (tested in tests/test_telemetry.cpp): row count ≤ capacity,
// stride is a power of two, retained steps are exactly the multiples of the
// stride in [0, T], and surviving rows carry the values observed when they
// were first recorded. sample() after the first call allocates nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace topkmon::telemetry {

class TimeseriesRecorder {
 public:
  /// `capacity` rows (rounded up to the next even number ≥ 2); memory is
  /// capacity × (1 + channels) words, allocated on the first sample.
  explicit TimeseriesRecorder(std::size_t capacity = 1024);

  /// Adds a channel (setup phase; before the first sample). The metric must
  /// be a counter or gauge.
  void add_channel(std::string name, MetricId id, const MetricsRegistry& registry);

  std::size_t channel_count() const { return ids_.size(); }
  const std::vector<std::string>& channel_names() const { return names_; }
  std::size_t capacity() const { return capacity_; }

  /// Records the current values of every channel for step `step`. Steps must
  /// be consecutive from 0 (the step loop calls this once per step); steps
  /// off the current stride are skipped.
  void sample(const MetricsRegistry& registry, std::uint64_t step);

  std::size_t size() const { return count_; }
  std::uint64_t stride() const { return stride_; }
  std::uint64_t step_at(std::size_t row) const { return data_[row * row_width()]; }
  std::uint64_t value_at(std::size_t row, std::size_t channel) const {
    return data_[row * row_width() + 1 + channel];
  }

  /// Drops all rows and re-arms stride 1; channels are kept.
  void reset() {
    count_ = 0;
    stride_ = 1;
  }

 private:
  std::size_t row_width() const { return 1 + ids_.size(); }

  std::size_t capacity_;
  std::vector<std::string> names_;
  std::vector<MetricId> ids_;
  std::vector<std::uint64_t> data_;  ///< capacity × (1 + channels), first sample
  std::size_t count_ = 0;
  std::uint64_t stride_ = 1;
};

}  // namespace topkmon::telemetry
