#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace topkmon {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::header(std::vector<std::string> cols) {
  TOPKMON_ASSERT_MSG(rows_.empty(), "header must precede rows");
  header_ = std::move(cols);
  return *this;
}

Table& Table::add_row(std::vector<std::string> cells) {
  TOPKMON_ASSERT_MSG(cells.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::add_row_values(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) {
    row.push_back(format_double(v, precision));
  }
  return add_row(std::move(row));
}

namespace {

std::vector<std::size_t> column_widths(const std::vector<std::string>& header,
                                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> w(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) {
    w[c] = header[c].size();
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      w[c] = std::max(w[c], row[c].size());
    }
  }
  return w;
}

void append_padded(std::string& out, const std::string& s, std::size_t width) {
  out += s;
  out.append(width - s.size(), ' ');
}

}  // namespace

std::string Table::to_ascii() const {
  const auto w = column_widths(header_, rows_);
  std::string sep = "+";
  for (std::size_t c = 0; c < w.size(); ++c) {
    sep.append(w[c] + 2, '-');
    sep += '+';
  }
  std::string out;
  out += "== " + title_ + " ==\n";
  out += sep + "\n|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += ' ';
    append_padded(out, header_[c], w[c]);
    out += " |";
  }
  out += "\n" + sep + "\n";
  for (const auto& row : rows_) {
    out += '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += ' ';
      append_padded(out, row[c], w[c]);
      out += " |";
    }
    out += '\n';
  }
  out += sep + "\n";
  return out;
}

std::string Table::to_markdown() const {
  std::string out = "### " + title_ + "\n\n|";
  for (const auto& h : header_) out += " " + h + " |";
  out += "\n|";
  for (std::size_t c = 0; c < header_.size(); ++c) out += " --- |";
  out += "\n";
  for (const auto& row : rows_) {
    out += '|';
    for (const auto& cell : row) out += " " + cell + " |";
    out += '\n';
  }
  return out;
}

std::string Table::to_csv() const {
  std::string out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += header_[c];
    out += (c + 1 < header_.size()) ? ',' : '\n';
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out += (c + 1 < row.size()) ? ',' : '\n';
    }
  }
  return out;
}

std::string Table::to_json() const {
  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  };
  std::string out = "{\n  \"title\": \"" + escape(title_) + "\",\n  \"rows\": [\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += "    {";
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      out += "\"" + escape(header_[c]) + "\": \"" + escape(rows_[r][c]) + "\"";
      if (c + 1 < rows_[r].size()) out += ", ";
    }
    out += r + 1 < rows_.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

void Table::print(std::ostream& os) const { os << to_ascii() << "\n"; }

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string format_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int c = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (c != 0 && c % 3 == 0) out += ',';
    out += *it;
    ++c;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace topkmon
