#include "util/rng.hpp"

#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace topkmon {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t splitmix_combine(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL * (salt + 1));
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng Rng::derive(std::uint64_t seed, std::uint64_t stream_id) {
  std::uint64_t sm = seed;
  const std::uint64_t a = splitmix64(sm);
  sm ^= 0xd1342543de82ef95ULL * (stream_id + 1);
  const std::uint64_t b = splitmix64(sm);
  return Rng(a ^ rotl(b, 17) ^ (stream_id * 0x9e3779b97f4a7c15ULL));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t n) {
  TOPKMON_ASSERT(n > 0);
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  TOPKMON_ASSERT(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == ~0ULL) {
    return next_u64();
  }
  return lo + below(span + 1);
}

double Rng::uniform01() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform01();
  double u2 = uniform01();
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::uint64_t Rng::geometric(double p) {
  TOPKMON_ASSERT(p > 0.0);
  if (p >= 1.0) return 0;
  const double u = 1.0 - uniform01();  // (0,1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : alpha_(alpha) {
  TOPKMON_ASSERT(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 1; r <= n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r), alpha);
    cdf_[r - 1] = acc;
  }
  for (auto& c : cdf_) {
    c /= acc;
  }
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  // Binary search first cdf_ entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

}  // namespace topkmon
