// Branchless LSD radix sort for the dense-update fallback.
//
// When an order-maintenance step disturbs more than the rebuild fraction of
// the fleet, repairing is hopeless and the order is rebuilt by one sort.
// That sort used to be std::sort with the ranks_above comparator — a
// branch-heavy introsort whose comparisons gather through the id
// indirection. Here it is a stable least-significant-digit radix sort over
// packed keys (util/packed_key.hpp): 8-bit digits, descending bucket order,
// one histogram sweep over all eight digit positions up front, and digit
// positions on which every key agrees are skipped outright — for monitored
// values bounded by 2^48 the two high bytes never pay a pass, and workloads
// confined to a value band skip more.
//
// Both entry points sort *descending* and are *stable*, so:
//   * plain values (SortedValues' fallback) reproduce std::sort(greater<>)
//     exactly — equal values are interchangeable;
//   * (key, id) pairs started in ascending-id order reproduce the unique
//     ranks_above permutation — stability breaks value ties by id.
//
// Scratch is caller-owned (RadixScratch) and sized once, keeping the
// steady-state churn step allocation-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace topkmon {

/// Reusable ping-pong buffers for the radix passes; allocate once per order
/// structure (n entries), reuse every rebuild.
class RadixScratch {
 public:
  explicit RadixScratch(std::size_t n) : keys_(n), ids_(n) {}

  std::size_t n() const { return keys_.size(); }
  std::uint64_t* keys() { return keys_.data(); }
  std::uint32_t* ids() { return ids_.data(); }

 private:
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> ids_;
};

/// Sorts keys[0..n) descending, stable. `scratch.n() >= n` required.
void radix_sort_desc(std::uint64_t* keys, std::size_t n, RadixScratch& scratch);

/// Co-sorts (keys, ids) descending by key, stable — ids started in ascending
/// order yield the ranks_above permutation for keys = values.
void radix_sort_desc(std::uint64_t* keys, std::uint32_t* ids, std::size_t n,
                     RadixScratch& scratch);

}  // namespace topkmon
