// Streaming statistics accumulators for experiment aggregation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace topkmon {

/// Welford online mean/variance plus min/max.
class StreamingMoments {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Keeps all samples; supports exact quantiles. Suitable for the trial counts
/// used in benches (hundreds to thousands of samples per cell).
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Exact empirical quantile, q in [0,1], linear interpolation.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = true;
};

/// Compact description of a sample set for table cells: "mean ± sd".
std::string format_mean_sd(const SampleSet& s, int precision = 2);

}  // namespace topkmon
