// Leveled stderr logger; default level Warn so library output stays quiet
// in tests/benches unless explicitly raised (examples raise it to Info).
#pragma once

#include <sstream>
#include <string>

namespace topkmon {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Process-wide log level; safe to set and read from any thread (the level
/// is a relaxed atomic under the hood).
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

#define TOPKMON_LOG(level, expr)                                           \
  do {                                                                     \
    if (static_cast<int>(level) >= static_cast<int>(::topkmon::log_level())) { \
      std::ostringstream topkmon_log_oss;                                  \
      topkmon_log_oss << expr;                                             \
      ::topkmon::detail::log_emit(level, topkmon_log_oss.str());           \
    }                                                                      \
  } while (false)

#define TOPKMON_LOG_DEBUG(expr) TOPKMON_LOG(::topkmon::LogLevel::Debug, expr)
#define TOPKMON_LOG_INFO(expr) TOPKMON_LOG(::topkmon::LogLevel::Info, expr)
#define TOPKMON_LOG_WARN(expr) TOPKMON_LOG(::topkmon::LogLevel::Warn, expr)
#define TOPKMON_LOG_ERROR(expr) TOPKMON_LOG(::topkmon::LogLevel::Error, expr)

}  // namespace topkmon
