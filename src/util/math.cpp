#include "util/math.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace topkmon {

int ilog2_floor(std::uint64_t x) {
  TOPKMON_ASSERT(x != 0);
  int r = 0;
  while (x >>= 1) {
    ++r;
  }
  return r;
}

int ilog2_ceil(std::uint64_t x) {
  TOPKMON_ASSERT(x != 0);
  const int f = ilog2_floor(x);
  return ((x & (x - 1)) == 0) ? f : f + 1;
}

double log2_clamped(double x, double lo_clamp) {
  return std::log2(x < lo_clamp ? lo_clamp : x);
}

double loglog2(double x) {
  const double inner = std::log2(x < 2.0 ? 2.0 : x);  // >= 1
  return std::log2(inner < 1.0 ? 1.0 : inner);        // >= 0
}

double pow2_saturated(double e, double cap) {
  if (e >= 63.0) return cap;
  const double v = std::exp2(e);
  return v > cap ? cap : v;
}

double midpoint(double lo, double hi) { return lo + (hi - lo) * 0.5; }

bool approx_equal(double a, double b, double tol) {
  const double scale = std::fmax(1.0, std::fmax(std::fabs(a), std::fabs(b)));
  return std::fabs(a - b) <= tol * scale;
}

std::uint64_t round_to_u64(double x) {
  if (x <= 0.0) return 0;
  constexpr double kMax = 9.223372036854775808e18;  // 2^63
  if (x >= kMax) return static_cast<std::uint64_t>(1) << 63;
  return static_cast<std::uint64_t>(std::llround(x));
}

}  // namespace topkmon
