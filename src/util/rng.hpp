// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through `Rng` (xoshiro256**), seeded
// explicitly. Sweep harnesses derive per-cell generators with
// `Rng::derive(seed, stream_id)` (splitmix64 mixing) so that experiment
// tables are bit-identical across runs and machines, and cells can run on a
// thread pool without sharing generator state.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace topkmon {

/// splitmix64 step; used for seeding and for deriving independent streams.
std::uint64_t splitmix64(std::uint64_t& state);

/// Mixes a salt into a master seed (per-trial / per-cell / per-query seed
/// derivation for sweeps and the multi-query engine).
std::uint64_t splitmix_combine(std::uint64_t seed, std::uint64_t salt);

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via splitmix64 of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Independent generator for stream `stream_id` of a master `seed`.
  static Rng derive(std::uint64_t seed, std::uint64_t stream_id);

  std::uint64_t next_u64();

  /// UniformRandomBitGenerator interface (usable with <random> adaptors).
  std::uint64_t operator()() { return next_u64(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);

  /// Uniform integer in [0, n) via Lemire rejection; requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (no cached spare; stateless wrt pairs).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Geometric: number of failures before first success, success prob p>0.
  std::uint64_t geometric(double p);

  const std::array<std::uint64_t, 4>& state() const { return s_; }

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Bounded Zipf(α) sampler over {1, .., n} using precomputed CDF.
/// Intended for workload generation (web-server load skew).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  /// Returns a rank in [1, n]; rank 1 is the most probable.
  std::size_t sample(Rng& rng) const;

  std::size_t n() const { return cdf_.size(); }
  double alpha() const { return alpha_; }

 private:
  std::vector<double> cdf_;
  double alpha_;
};

}  // namespace topkmon
