#include "util/radix.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace topkmon {

namespace {

// 11-bit digits: six positions cover a 64-bit key (the last one holds nine
// live bits). Wider digits mean fewer scatter passes — the pass count, not
// the per-pass bandwidth, is what the sort costs — while 2048 counters per
// position still sit comfortably in L1.
constexpr std::size_t kDigitBits = 11;
constexpr std::size_t kDigits = (64 + kDigitBits - 1) / kDigitBits;
constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;
constexpr std::uint64_t kDigitMask = kBuckets - 1;

/// One sweep builds the histograms of all digit positions; a position where
/// one bucket holds every key needs no pass.
void build_histograms(const std::uint64_t* keys, std::size_t n,
                      std::uint32_t hist[kDigits][kBuckets]) {
  std::memset(hist, 0, kDigits * kBuckets * sizeof(std::uint32_t));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = keys[i];
    for (std::size_t d = 0; d < kDigits; ++d) {
      ++hist[d][(k >> (kDigitBits * d)) & kDigitMask];
    }
  }
}

/// Descending bucket offsets: bucket kBuckets−1 first, so each stable pass
/// orders its digit descending and the final order is descending
/// lexicographic.
void offsets_desc(const std::uint32_t* hist, std::uint32_t* offset) {
  std::uint32_t sum = 0;
  for (std::size_t b = kBuckets; b-- > 0;) {
    offset[b] = sum;
    sum += hist[b];
  }
}

template <bool kWithIds>
void radix_sort_impl(std::uint64_t* keys, std::uint32_t* ids, std::size_t n,
                     RadixScratch& scratch) {
  if (n < 2) return;
  TOPKMON_ASSERT_MSG(scratch.n() >= n, "radix scratch sized for smaller array");

  // 48 KB of counters — static thread-local rather than stack-allocated.
  static thread_local std::uint32_t hist[kDigits][kBuckets];
  build_histograms(keys, n, hist);

  std::uint64_t* src_k = keys;
  std::uint64_t* dst_k = scratch.keys();
  std::uint32_t* src_i = ids;
  std::uint32_t* dst_i = scratch.ids();

  static thread_local std::uint32_t offset[kBuckets];
  for (std::size_t d = 0; d < kDigits; ++d) {
    // Skip positions where every key shares the digit — the pass would be
    // the identity permutation.
    bool trivial = false;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (hist[d][b] == n) {
        trivial = true;
        break;
      }
    }
    if (trivial) continue;

    offsets_desc(hist[d], offset);
    const unsigned shift = static_cast<unsigned>(kDigitBits * d);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t k = src_k[i];
      const std::uint32_t pos = offset[(k >> shift) & kDigitMask]++;
      dst_k[pos] = k;
      if constexpr (kWithIds) {
        dst_i[pos] = src_i[i];
      }
    }
    std::swap(src_k, dst_k);
    if constexpr (kWithIds) {
      std::swap(src_i, dst_i);
    }
  }

  if (src_k != keys) {
    std::memcpy(keys, src_k, n * sizeof(std::uint64_t));
    if constexpr (kWithIds) {
      std::memcpy(ids, src_i, n * sizeof(std::uint32_t));
    }
  }
}

}  // namespace

void radix_sort_desc(std::uint64_t* keys, std::size_t n, RadixScratch& scratch) {
  radix_sort_impl<false>(keys, nullptr, n, scratch);
}

void radix_sort_desc(std::uint64_t* keys, std::uint32_t* ids, std::size_t n,
                     RadixScratch& scratch) {
  radix_sort_impl<true>(keys, ids, n, scratch);
}

}  // namespace topkmon
