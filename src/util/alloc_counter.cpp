#include "util/alloc_counter.hpp"

#include <cstdlib>
#include <new>

namespace topkmon::detail {

// Plain thread_local integers: zero-initialized, no dynamic TLS wrapper, so
// they are safe to touch from inside operator new during static init.
thread_local std::uint64_t tl_alloc_count = 0;
thread_local std::uint64_t tl_alloc_bytes = 0;

}  // namespace topkmon::detail

namespace topkmon {

bool alloc_counting_active() {
#ifdef TOPKMON_COUNT_ALLOCS
  return true;
#else
  return false;
#endif
}

std::uint64_t thread_alloc_count() { return detail::tl_alloc_count; }
std::uint64_t thread_alloc_bytes() { return detail::tl_alloc_bytes; }

}  // namespace topkmon

#ifdef TOPKMON_COUNT_ALLOCS

namespace {

void* counted_alloc(std::size_t size) {
  ++topkmon::detail::tl_alloc_count;
  topkmon::detail::tl_alloc_bytes += size;
  return std::malloc(size);
}

void* counted_alloc(std::size_t size, std::align_val_t align) {
  ++topkmon::detail::tl_alloc_count;
  topkmon::detail::tl_alloc_bytes += size;
  void* p = nullptr;
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  p = std::aligned_alloc(a, rounded);
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc(size, align)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc(size, align)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc(size, align);
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}

#endif  // TOPKMON_COUNT_ALLOCS
