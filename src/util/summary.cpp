#include "util/summary.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace topkmon {

void StreamingMoments::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StreamingMoments::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingMoments::stddev() const { return std::sqrt(variance()); }

void SampleSet::add(double x) {
  samples_.push_back(x);
  dirty_ = true;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

void SampleSet::ensure_sorted() const {
  if (dirty_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
}

double SampleSet::quantile(double q) const {
  TOPKMON_ASSERT(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

std::string format_mean_sd(const SampleSet& s, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f±%.*f", precision, s.mean(), precision,
                s.stddev());
  return buf;
}

}  // namespace topkmon
