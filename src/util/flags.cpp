#include "util/flags.hpp"

#include <cstdlib>

namespace topkmon {

Flags::Flags(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    std::string name, value;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      name = arg;
      value = argv[++i];
    } else {
      name = arg;
      value = "true";
    }
    values_[name] = value;
    all_values_[name].push_back(std::move(value));
  }
}

bool Flags::has(const std::string& name) const { return values_.count(name) != 0; }

std::string Flags::get_string(const std::string& name, std::string def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

std::uint64_t Flags::get_uint(const std::string& name, std::uint64_t def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoull(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

std::vector<std::string> Flags::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [name, value] : values_) out.push_back(name);  // map: sorted
  return out;
}

std::vector<std::string> Flags::get_all(const std::string& name) const {
  const auto it = all_values_.find(name);
  return it == all_values_.end() ? std::vector<std::string>{} : it->second;
}

bool Flags::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace topkmon
