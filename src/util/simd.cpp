#include "util/simd.hpp"

#include <cstring>

#if defined(__x86_64__) && !defined(TOPKMON_SIMD_OFF)
#define TOPKMON_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__) && !defined(TOPKMON_SIMD_OFF)
#define TOPKMON_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace topkmon::simd {

// ---------------------------------------------------------------- scalar
// The reference tier: always compiled, the only tier under TOPKMON_SIMD=OFF,
// and the oracle the vector tiers are fuzzed against. Every loop is written
// so its per-lane result is the exact expression the vector bodies compute.
namespace scalar {

std::size_t count_diff(const Value* a, const Value* b, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += a[i] != b[i];
  }
  return count;
}

std::size_t collect_diff(const Value* a, const Value* b, std::size_t n,
                         std::uint32_t* out) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    out[count] = static_cast<std::uint32_t>(i);
    count += a[i] != b[i];
  }
  return count;
}

std::size_t violation_mask(const Value* values, const double* lo, const double* hi,
                           std::size_t n, std::uint8_t* out) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(values[i]);
    const std::uint8_t v = x > hi[i] || x < lo[i] ? 1 : 0;
    out[i] = v;
    count += v;
  }
  return count;
}

void max_merge(Value* dst, const Value* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = dst[i] < src[i] ? src[i] : dst[i];
  }
}

Value max_value(const Value* values, std::size_t n) {
  Value m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    m = m < values[i] ? values[i] : m;
  }
  return m;
}

Value min_value(const Value* values, std::size_t n) {
  Value m = ~Value{0};
  for (std::size_t i = 0; i < n; ++i) {
    m = values[i] < m ? values[i] : m;
  }
  return m;
}

std::size_t count_lt(const Value* a, const Value* b, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += a[i] < b[i];
  }
  return count;
}

std::size_t count_eq_u32(const std::uint32_t* values, std::uint32_t v, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += values[i] == v;
  }
  return count;
}

std::size_t count_ge(const Value* values, Value bound, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += values[i] >= bound;
  }
  return count;
}

std::size_t count_f64_ge(const Value* values, double bound, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += static_cast<double>(values[i]) >= bound;
  }
  return count;
}

std::size_t count_scaled_gt(const Value* values, double scale, double bound,
                            std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += scale * static_cast<double>(values[i]) > bound;
  }
  return count;
}

}  // namespace scalar

#if defined(TOPKMON_SIMD_X86)

// ------------------------------------------------------------------ SSE2
// SSE2 is part of the x86-64 base ABI, so these bodies need no target
// attribute. 64-bit lane equality is synthesized from 32-bit compares
// (pcmpeqq is SSE4.1); ordered 64-bit compares are not available before
// SSE4.2, so the order-based primitives stay on the scalar tier here.
namespace sse2 {

inline int eq_mask_2xu64(__m128i a, __m128i b) {
  const __m128i eq32 = _mm_cmpeq_epi32(a, b);
  // A 64-bit lane is equal iff both of its 32-bit halves are.
  const __m128i swapped = _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1));
  const __m128i eq64 = _mm_and_si128(eq32, swapped);
  return _mm_movemask_pd(_mm_castsi128_pd(eq64));  // 2 bits, 1 = equal
}

std::size_t count_diff(const Value* a, const Value* b, std::size_t n) {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    count += static_cast<std::size_t>(
        __builtin_popcount(~eq_mask_2xu64(va, vb) & 0x3));
  }
  return count + scalar::count_diff(a + i, b + i, n - i);
}

std::size_t collect_diff(const Value* a, const Value* b, std::size_t n,
                         std::uint32_t* out) {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    int dirty = ~eq_mask_2xu64(va, vb) & 0x3;
    while (dirty != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(dirty));
      out[count++] = static_cast<std::uint32_t>(i + static_cast<std::size_t>(lane));
      dirty &= dirty - 1;
    }
  }
  for (; i < n; ++i) {
    out[count] = static_cast<std::uint32_t>(i);
    count += a[i] != b[i];
  }
  return count;
}

std::size_t violation_mask(const Value* values, const double* lo, const double* hi,
                           std::size_t n, std::uint8_t* out) {
  // Exact u64 → f64 for values < 2^52: OR in the 2^52 exponent bits and
  // subtract 2^52.0 — the mantissa then holds the integer exactly.
  const __m128i exp52 = _mm_set1_epi64x(0x4330000000000000LL);
  const __m128d offset = _mm_castsi128_pd(exp52);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i));
    const __m128d x = _mm_sub_pd(_mm_castsi128_pd(_mm_or_si128(v, exp52)), offset);
    const __m128d vlo = _mm_loadu_pd(lo + i);
    const __m128d vhi = _mm_loadu_pd(hi + i);
    const __m128d bad = _mm_or_pd(_mm_cmpgt_pd(x, vhi), _mm_cmplt_pd(x, vlo));
    const int mask = _mm_movemask_pd(bad);
    out[i] = static_cast<std::uint8_t>(mask & 1);
    out[i + 1] = static_cast<std::uint8_t>((mask >> 1) & 1);
    count += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  return count + scalar::violation_mask(values + i, lo + i, hi + i, n - i, out + i);
}

std::size_t count_eq_u32(const std::uint32_t* values, std::uint32_t v, std::size_t n) {
  const __m128i needle = _mm_set1_epi32(static_cast<int>(v));
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i));
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(x, needle)));
    count += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  return count + scalar::count_eq_u32(values + i, v, n - i);
}

inline __m128d to_f64_2xu64(__m128i v, __m128i exp52, __m128d offset) {
  return _mm_sub_pd(_mm_castsi128_pd(_mm_or_si128(v, exp52)), offset);
}

std::size_t count_f64_ge(const Value* values, double bound, std::size_t n) {
  const __m128i exp52 = _mm_set1_epi64x(0x4330000000000000LL);
  const __m128d offset = _mm_castsi128_pd(exp52);
  const __m128d vb = _mm_set1_pd(bound);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i));
    const int mask = _mm_movemask_pd(_mm_cmpge_pd(to_f64_2xu64(v, exp52, offset), vb));
    count += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  return count + scalar::count_f64_ge(values + i, bound, n - i);
}

std::size_t count_scaled_gt(const Value* values, double scale, double bound,
                            std::size_t n) {
  const __m128i exp52 = _mm_set1_epi64x(0x4330000000000000LL);
  const __m128d offset = _mm_castsi128_pd(exp52);
  const __m128d vs = _mm_set1_pd(scale);
  const __m128d vb = _mm_set1_pd(bound);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i));
    const __m128d x = _mm_mul_pd(vs, to_f64_2xu64(v, exp52, offset));
    count += static_cast<std::size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm_movemask_pd(_mm_cmpgt_pd(x, vb)))));
  }
  return count + scalar::count_scaled_gt(values + i, scale, bound, n - i);
}

}  // namespace sse2

// ------------------------------------------------------------------ AVX2
// Each body carries target("avx2") so the library builds without -mavx2 and
// the tier is chosen at run time via __builtin_cpu_supports.
#define TOPKMON_AVX2 __attribute__((target("avx2")))
namespace avx2 {

TOPKMON_AVX2 inline __m256i flip_sign(__m256i v) {
  return _mm256_xor_si256(v, _mm256_set1_epi64x(static_cast<long long>(1ULL << 63)));
}

TOPKMON_AVX2 std::size_t count_diff(const Value* a, const Value* b, std::size_t n) {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const int eq = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(va, vb)));
    count += static_cast<std::size_t>(__builtin_popcount(~eq & 0xF));
  }
  return count + scalar::count_diff(a + i, b + i, n - i);
}

TOPKMON_AVX2 std::size_t collect_diff(const Value* a, const Value* b, std::size_t n,
                                      std::uint32_t* out) {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const int eq = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(va, vb)));
    int dirty = ~eq & 0xF;
    while (dirty != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(dirty));
      out[count++] = static_cast<std::uint32_t>(i + static_cast<std::size_t>(lane));
      dirty &= dirty - 1;
    }
  }
  for (; i < n; ++i) {
    out[count] = static_cast<std::uint32_t>(i);
    count += a[i] != b[i];
  }
  return count;
}

TOPKMON_AVX2 std::size_t violation_mask(const Value* values, const double* lo,
                                        const double* hi, std::size_t n,
                                        std::uint8_t* out) {
  const __m256i exp52 = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256d offset = _mm256_castsi256_pd(exp52);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const __m256d x =
        _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(v, exp52)), offset);
    const __m256d vlo = _mm256_loadu_pd(lo + i);
    const __m256d vhi = _mm256_loadu_pd(hi + i);
    const __m256d bad = _mm256_or_pd(_mm256_cmp_pd(x, vhi, _CMP_GT_OQ),
                                     _mm256_cmp_pd(x, vlo, _CMP_LT_OQ));
    const int mask = _mm256_movemask_pd(bad);
    out[i] = static_cast<std::uint8_t>(mask & 1);
    out[i + 1] = static_cast<std::uint8_t>((mask >> 1) & 1);
    out[i + 2] = static_cast<std::uint8_t>((mask >> 2) & 1);
    out[i + 3] = static_cast<std::uint8_t>((mask >> 3) & 1);
    count += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  return count + scalar::violation_mask(values + i, lo + i, hi + i, n - i, out + i);
}

TOPKMON_AVX2 void max_merge(Value* dst, const Value* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // Unsigned max via sign-flipped signed compare + blend.
    const __m256i gt = _mm256_cmpgt_epi64(flip_sign(s), flip_sign(d));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_blendv_epi8(d, s, gt));
  }
  scalar::max_merge(dst + i, src + i, n - i);
}

TOPKMON_AVX2 Value max_value(const Value* values, std::size_t n) {
  Value m = 0;
  std::size_t i = 0;
  if (n >= 4) {
    __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values));
    for (i = 4; i + 4 <= n; i += 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
      const __m256i gt = _mm256_cmpgt_epi64(flip_sign(v), flip_sign(acc));
      acc = _mm256_blendv_epi8(acc, v, gt);
    }
    alignas(32) Value lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    m = scalar::max_value(lanes, 4);
  }
  const Value tail = scalar::max_value(values + i, n - i);
  return m < tail ? tail : m;
}

TOPKMON_AVX2 Value min_value(const Value* values, std::size_t n) {
  Value m = ~Value{0};
  std::size_t i = 0;
  if (n >= 4) {
    __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values));
    for (i = 4; i + 4 <= n; i += 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
      const __m256i lt = _mm256_cmpgt_epi64(flip_sign(acc), flip_sign(v));
      acc = _mm256_blendv_epi8(acc, v, lt);
    }
    alignas(32) Value lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    m = scalar::min_value(lanes, 4);
  }
  const Value tail = scalar::min_value(values + i, n - i);
  return tail < m ? tail : m;
}

TOPKMON_AVX2 std::size_t count_lt(const Value* a, const Value* b, std::size_t n) {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const int lt = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(flip_sign(vb), flip_sign(va))));
    count += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(lt)));
  }
  return count + scalar::count_lt(a + i, b + i, n - i);
}

TOPKMON_AVX2 std::size_t count_eq_u32(const std::uint32_t* values, std::uint32_t v,
                                      std::size_t n) {
  const __m256i needle = _mm256_set1_epi32(static_cast<int>(v));
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const int mask =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(x, needle)));
    count += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  return count + scalar::count_eq_u32(values + i, v, n - i);
}

TOPKMON_AVX2 inline __m256d to_f64_4xu64(__m256i v, __m256i exp52, __m256d offset) {
  return _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(v, exp52)), offset);
}

TOPKMON_AVX2 std::size_t count_f64_ge(const Value* values, double bound,
                                      std::size_t n) {
  const __m256i exp52 = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256d offset = _mm256_castsi256_pd(exp52);
  const __m256d vb = _mm256_set1_pd(bound);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(to_f64_4xu64(v, exp52, offset), vb, _CMP_GE_OQ));
    count += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  return count + scalar::count_f64_ge(values + i, bound, n - i);
}

TOPKMON_AVX2 std::size_t count_scaled_gt(const Value* values, double scale,
                                         double bound, std::size_t n) {
  const __m256i exp52 = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256d offset = _mm256_castsi256_pd(exp52);
  const __m256d vs = _mm256_set1_pd(scale);
  const __m256d vb = _mm256_set1_pd(bound);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const __m256d x = _mm256_mul_pd(vs, to_f64_4xu64(v, exp52, offset));
    count += static_cast<std::size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_cmp_pd(x, vb, _CMP_GT_OQ)))));
  }
  return count + scalar::count_scaled_gt(values + i, scale, bound, n - i);
}

TOPKMON_AVX2 std::size_t count_ge(const Value* values, Value bound, std::size_t n) {
  const __m256i vb = flip_sign(_mm256_set1_epi64x(static_cast<long long>(bound)));
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const int lt = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(vb, flip_sign(v))));
    count += 4 - static_cast<std::size_t>(
                     __builtin_popcount(static_cast<unsigned>(lt)));
  }
  return count + scalar::count_ge(values + i, bound, n - i);
}

}  // namespace avx2
#undef TOPKMON_AVX2

#elif defined(TOPKMON_SIMD_NEON)

// ------------------------------------------------------------------ NEON
// aarch64 NEON is always available; no runtime dispatch needed. NEON has
// native unsigned 64-bit compares, so every primitive vectorizes directly.
namespace neon {

std::size_t count_diff(const Value* a, const Value* b, std::size_t n) {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t eq = vceqq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    count += (~vgetq_lane_u64(eq, 0) & 1) + (~vgetq_lane_u64(eq, 1) & 1);
  }
  return count + scalar::count_diff(a + i, b + i, n - i);
}

std::size_t violation_mask(const Value* values, const double* lo, const double* hi,
                           std::size_t n, std::uint8_t* out) {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t x = vcvtq_f64_u64(vld1q_u64(values + i));
    const uint64x2_t bad = vorrq_u64(vcgtq_f64(x, vld1q_f64(hi + i)),
                                     vcltq_f64(x, vld1q_f64(lo + i)));
    const std::uint8_t b0 = static_cast<std::uint8_t>(vgetq_lane_u64(bad, 0) & 1);
    const std::uint8_t b1 = static_cast<std::uint8_t>(vgetq_lane_u64(bad, 1) & 1);
    out[i] = b0;
    out[i + 1] = b1;
    count += b0 + b1;
  }
  return count + scalar::violation_mask(values + i, lo + i, hi + i, n - i, out + i);
}

void max_merge(Value* dst, const Value* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t d = vld1q_u64(dst + i);
    const uint64x2_t s = vld1q_u64(src + i);
    vst1q_u64(dst + i, vbslq_u64(vcgtq_u64(s, d), s, d));
  }
  scalar::max_merge(dst + i, src + i, n - i);
}

}  // namespace neon

#endif  // ISA families

// -------------------------------------------------------------- dispatch
namespace {

struct Impl {
  const char* name;
  std::size_t (*count_diff)(const Value*, const Value*, std::size_t);
  std::size_t (*collect_diff)(const Value*, const Value*, std::size_t, std::uint32_t*);
  std::size_t (*violation_mask)(const Value*, const double*, const double*,
                                std::size_t, std::uint8_t*);
  void (*max_merge)(Value*, const Value*, std::size_t);
  Value (*max_value)(const Value*, std::size_t);
  Value (*min_value)(const Value*, std::size_t);
  std::size_t (*count_lt)(const Value*, const Value*, std::size_t);
  std::size_t (*count_eq_u32)(const std::uint32_t*, std::uint32_t, std::size_t);
  std::size_t (*count_ge)(const Value*, Value, std::size_t);
  std::size_t (*count_f64_ge)(const Value*, double, std::size_t);
  std::size_t (*count_scaled_gt)(const Value*, double, double, std::size_t);
};

constexpr Impl kScalarImpl = {
    "scalar",          scalar::count_diff, scalar::collect_diff,
    scalar::violation_mask, scalar::max_merge,  scalar::max_value,
    scalar::min_value, scalar::count_lt,   scalar::count_eq_u32,
    scalar::count_ge,  scalar::count_f64_ge, scalar::count_scaled_gt,
};

const Impl& select_impl() {
#if defined(TOPKMON_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) {
    static constexpr Impl kAvx2 = {
        "avx2",          avx2::count_diff, avx2::collect_diff,
        avx2::violation_mask, avx2::max_merge,  avx2::max_value,
        avx2::min_value, avx2::count_lt,   avx2::count_eq_u32,
        avx2::count_ge,  avx2::count_f64_ge, avx2::count_scaled_gt,
    };
    return kAvx2;
  }
  static constexpr Impl kSse2 = {
      "sse2",            sse2::count_diff, sse2::collect_diff,
      sse2::violation_mask,   scalar::max_merge, scalar::max_value,
      scalar::min_value, scalar::count_lt, sse2::count_eq_u32,
      scalar::count_ge,  sse2::count_f64_ge, sse2::count_scaled_gt,
  };
  return kSse2;
#elif defined(TOPKMON_SIMD_NEON)
  static constexpr Impl kNeon = {
      "neon",            neon::count_diff, scalar::collect_diff,
      neon::violation_mask,   neon::max_merge,  scalar::max_value,
      scalar::min_value, scalar::count_lt, scalar::count_eq_u32,
      scalar::count_ge,  scalar::count_f64_ge, scalar::count_scaled_gt,
  };
  return kNeon;
#else
  return kScalarImpl;
#endif
}

const Impl& impl() {
  static const Impl& chosen = select_impl();
  return chosen;
}

}  // namespace

const char* active_isa() { return impl().name; }

std::size_t count_diff(const Value* a, const Value* b, std::size_t n) {
  return impl().count_diff(a, b, n);
}

std::size_t collect_diff(const Value* a, const Value* b, std::size_t n,
                         std::uint32_t* out) {
  return impl().collect_diff(a, b, n, out);
}

std::size_t violation_mask(const Value* values, const double* lo, const double* hi,
                           std::size_t n, std::uint8_t* out) {
  return impl().violation_mask(values, lo, hi, n, out);
}

void max_merge(Value* dst, const Value* src, std::size_t n) {
  impl().max_merge(dst, src, n);
}

Value max_value(const Value* values, std::size_t n) {
  return impl().max_value(values, n);
}

Value min_value(const Value* values, std::size_t n) {
  return impl().min_value(values, n);
}

std::size_t count_lt(const Value* a, const Value* b, std::size_t n) {
  return impl().count_lt(a, b, n);
}

std::size_t count_eq_u32(const std::uint32_t* values, std::uint32_t v, std::size_t n) {
  return impl().count_eq_u32(values, v, n);
}

std::size_t count_ge(const Value* values, Value bound, std::size_t n) {
  return impl().count_ge(values, bound, n);
}

std::size_t count_f64_ge(const Value* values, double bound, std::size_t n) {
  return impl().count_f64_ge(values, bound, n);
}

std::size_t count_scaled_gt(const Value* values, double scale, double bound,
                            std::size_t n) {
  return impl().count_scaled_gt(values, scale, bound, n);
}

}  // namespace topkmon::simd
