// Lightweight always-on assertion macros for invariant checking.
//
// Unlike <cassert>, these stay active in release builds: the simulator's
// correctness guarantees (filter validity, output validity) are part of the
// reproduced claims and must never be silently skipped.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace topkmon::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "topkmon assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace topkmon::detail

#define TOPKMON_ASSERT(expr)                                                  \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::topkmon::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);     \
    }                                                                         \
  } while (false)

#define TOPKMON_ASSERT_MSG(expr, msg)                                         \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::topkmon::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));       \
    }                                                                         \
  } while (false)
