// Portable SIMD lane abstraction for the churn-path step kernel.
//
// The batched hot path's non-quiescent cost is a handful of dense passes
// over the fleet's SoA arrays: diffing the new observation vector against a
// shadow copy, extracting the dirty indices, checking every value against
// its filter bounds, merging window rings, and min/max/range scans. Each is
// trivially data-parallel; this header exposes them as flat-array primitives
// so the model/sim/faults layers never touch an intrinsic.
//
// Dispatch has two stages:
//   * compile time — AVX2 and SSE2 bodies are built on x86-64 (SSE2 is part
//     of the base ABI; AVX2 bodies carry `target("avx2")` attributes so the
//     translation unit itself needs no -mavx2), NEON on aarch64, and a plain
//     scalar body everywhere. The TOPKMON_SIMD=OFF CMake toggle (compile
//     definition TOPKMON_SIMD_OFF) forces the scalar body alone — the CI
//     scalar leg runs the differential fuzz suite against it to prove the
//     vector paths are bit-identical.
//   * run time — on x86-64 the implementation table is chosen once per
//     process via __builtin_cpu_supports("avx2"), so one binary serves both
//     ISA tiers at full speed.
//
// Every primitive is *exact*: integer compares, IEEE double compares and
// max/min merges have one correct answer per lane, so the scalar and vector
// paths return bit-identical results by construction (fuzzed in
// tests/test_simd.cpp, and end-to-end by the differential harness).
#pragma once

#include <cstddef>
#include <cstdint>

#include "model/types.hpp"

namespace topkmon::simd {

/// The lane implementation serving this process: "avx2", "sse2", "neon" or
/// "scalar". Decided once (CPUID on x86-64); "scalar" always under
/// TOPKMON_SIMD=OFF.
const char* active_isa();

/// Number of values in a vs b that differ (the order-maintenance diff pass).
std::size_t count_diff(const Value* a, const Value* b, std::size_t n);

/// Writes the indices i with a[i] != b[i] into `out` (caller guarantees room
/// for n entries) and returns how many were written, in ascending order —
/// branchless compare + movemask extraction of the dirty set.
std::size_t collect_diff(const Value* a, const Value* b, std::size_t n,
                         std::uint32_t* out);

/// Per-lane filter-bound violation mask over SoA bounds: out[i] = 1 iff
/// (double)v[i] > hi[i] or (double)v[i] < lo[i], else 0. Returns the number
/// of violating lanes. Values must be ≤ kMaxObservableValue (2^48), so the
/// u64→double conversion is exact in every lane. Comparisons are IEEE
/// doubles — bit-identical to Filter::check on every lane.
std::size_t violation_mask(const Value* values, const double* lo, const double* hi,
                           std::size_t n, std::uint8_t* out);

/// Elementwise maximum merge: dst[i] = max(dst[i], src[i]) — the window-ring
/// row merge.
void max_merge(Value* dst, const Value* src, std::size_t n);

/// Maximum over a value array (0 for n = 0) — range guard scans.
Value max_value(const Value* values, std::size_t n);

/// Minimum over a value array (~0 for n = 0).
Value min_value(const Value* values, std::size_t n);

/// Lanes with a[i] < b[i] — 0 means a dominates b everywhere (the window
/// fast path's "fresh value pops every deque" test).
std::size_t count_lt(const Value* a, const Value* b, std::size_t n);

/// Lanes with values[i] == v — n means the array is constant at v (uniform
/// ring-slot / deque-length tests).
std::size_t count_eq_u32(const std::uint32_t* values, std::uint32_t v, std::size_t n);

/// Partition scan over an *unsorted* array: lanes with values[i] >= bound.
std::size_t count_ge(const Value* values, Value bound, std::size_t n);

/// ε-neighborhood partition scans (the scan-mode σ(t) of Oracle::sigma_scan).
/// Lanes with (double)values[i] >= bound — the "not clearly smaller" count.
/// Values must be ≤ kMaxObservableValue for exact lane conversion.
std::size_t count_f64_ge(const Value* values, double bound, std::size_t n);

/// Lanes with scale·(double)values[i] > bound — the "clearly larger" count,
/// with the multiplication performed per lane exactly as the scalar
/// ε-helpers write it. Values must be ≤ kMaxObservableValue.
std::size_t count_scaled_gt(const Value* values, double scale, double bound,
                            std::size_t n);

}  // namespace topkmon::simd
