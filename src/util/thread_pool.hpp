// Minimal work-stealing-free thread pool + parallel_for.
//
// Used by the bench harness to evaluate independent experiment cells in
// parallel. Each cell derives its own Rng stream, so parallel execution is
// deterministic regardless of scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace topkmon {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency). The worker count
  /// is clamped to ≥ 1 in every case — a zero-worker pool would hang in
  /// wait_idle() — so thread_count() ≥ 1 always holds.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks must not throw (std::terminate otherwise).
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs body(i) for i in [0, count) across the pool; blocks until done.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Convenience: runs on a transient pool sized to hardware concurrency.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

}  // namespace topkmon
