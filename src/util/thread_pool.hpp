// Minimal thread pool + parallel_for, plus a work-stealing indexed loop.
//
// Used by the bench harness to evaluate independent experiment (cell×trial)
// tasks in parallel. Each task derives its own Rng stream, so parallel
// execution is deterministic regardless of scheduling order.
//
// Two loop flavors:
//   * parallel_for        — one queued closure per index; every claim takes
//     the pool's global lock. Fine for a handful of long tasks.
//   * parallel_for_ws     — work-stealing: the index range is pre-split into
//     one contiguous chunk per worker, workers claim from their own chunk
//     with a single CAS and steal half of a victim's remaining range when
//     theirs runs dry. No per-index allocation, no global lock on the claim
//     path, and skewed per-index costs (one slow cell among many fast ones)
//     rebalance automatically. The sweep runner's (cell × trial) grid runs
//     on this.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace topkmon {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency). The worker count
  /// is clamped to ≥ 1 in every case — a zero-worker pool would hang in
  /// wait_idle() — so thread_count() ≥ 1 always holds.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks must not throw (std::terminate otherwise).
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs body(i) for i in [0, count) across the pool; blocks until done.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Convenience: runs on a transient pool sized to hardware concurrency.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

/// Work-stealing variant (see file comment): every index runs exactly once,
/// on some pool worker; blocks until done. `body` must not throw. Requires
/// count < 2^32 (ranges are packed into one atomic word).
void parallel_for_ws(ThreadPool& pool, std::size_t count,
                     const std::function<void(std::size_t)>& body);

}  // namespace topkmon
