// Integer/floating helpers used throughout the protocol implementations.
//
// The paper's phase predicates (P1)-(P4) of TOP-K-PROTOCOL are expressed in
// terms of log log of observed values; these helpers pin down the exact,
// clamped semantics we use (documented per function) so that the predicates
// are total over the uint64 value domain including 0 and 1.
#pragma once

#include <cstdint>

namespace topkmon {

/// floor(log2(x)) for x >= 1; asserts on x == 0.
int ilog2_floor(std::uint64_t x);

/// ceil(log2(x)) for x >= 1; asserts on x == 0. ilog2_ceil(1) == 0.
int ilog2_ceil(std::uint64_t x);

/// log2 clamped from below: log2(max(x, lo_clamp)). Total over x >= 0.
double log2_clamped(double x, double lo_clamp = 1.0);

/// The paper's "log log" with the convention used by phase predicate (P1):
/// loglog2(x) = log2(max(1, log2(max(2, x)))), i.e. 0 for all x <= 4 and
/// strictly increasing beyond. Total over the whole uint64 range.
double loglog2(double x);

/// 2^e saturated to `cap` (default 2^62) to avoid overflow in the A1
/// doubly-exponential probing sequence l0 + 2^(2^r).
double pow2_saturated(double e, double cap = 4.611686018427387904e18);

/// Midpoint of [lo, hi] in doubles (no overflow).
double midpoint(double lo, double hi);

/// True iff |a - b| <= tol * max(1, |a|, |b|).
bool approx_equal(double a, double b, double tol = 1e-9);

/// Round a double to the nearest uint64, clamped to [0, 2^63).
std::uint64_t round_to_u64(double x);

}  // namespace topkmon
