#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace topkmon {

namespace {
// Relaxed atomic: the level is read on every TOPKMON_LOG check, possibly
// from engine worker threads, while tests/examples may flip it — each access
// must be race-free even though no ordering with other data is needed.
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}
LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[topkmon %s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace topkmon
