// ScratchArena — a reusable per-owner bump buffer for per-step scratch.
//
// Hot-path code occasionally needs a short-lived typed buffer whose size
// depends on runtime state (the strict validator's filter snapshot, the
// probe's exclusion flags). Allocating a std::vector per use would break the
// steady-state zero-allocation invariant; a ScratchArena instead hands out
// spans carved from one owned block that is retained across steps. The block
// grows geometrically while the high-water mark is still rising and then
// never again, so steady-state acquisitions are pointer bumps.
//
// Usage pattern (single-threaded per owner — Simulator, SimContext and the
// engine snapshot each own their own arena):
//
//   arena.reset();                       // start of a step/operation
//   auto filters = arena.get<Filter>(n); // uninitialized span, fill it
//
// reset() invalidates all outstanding spans; get() never does (a request
// that would not fit the current block allocates a larger block and, because
// earlier spans of the same cycle may still be live, retires the old block
// at the NEXT reset rather than immediately).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace topkmon {

class ScratchArena {
 public:
  ScratchArena() = default;

  /// An uninitialized span of `count` Ts, valid until the next reset().
  /// T must be trivially destructible (nothing runs destructors).
  template <typename T>
  std::span<T> get(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    const std::size_t bytes = count * sizeof(T);
    std::size_t off = (off_ + alignof(T) - 1) / alignof(T) * alignof(T);
    if (off + bytes > cap_) {
      grow(off + bytes);
      off = (off_ + alignof(T) - 1) / alignof(T) * alignof(T);
    }
    T* p = reinterpret_cast<T*>(block_.get() + off);
    off_ = off + bytes;
    return {p, count};
  }

  /// Recycles the arena: O(1), frees nothing unless the block grew since the
  /// previous reset (then the retired smaller blocks are released).
  void reset() {
    retired_.clear();
    off_ = 0;
  }

  /// Bytes of the live block (high-water capacity).
  std::size_t capacity() const { return cap_; }

 private:
  void grow(std::size_t needed) {
    std::size_t new_cap = cap_ == 0 ? 256 : cap_ * 2;
    while (new_cap < needed) new_cap *= 2;
    auto fresh = std::make_unique<std::byte[]>(new_cap);
    if (block_) {
      retired_.push_back(std::move(block_));  // spans of this cycle stay valid
    }
    block_ = std::move(fresh);
    cap_ = new_cap;
    off_ = 0;
  }

  std::unique_ptr<std::byte[]> block_;
  std::vector<std::unique_ptr<std::byte[]>> retired_;
  std::size_t cap_ = 0;
  std::size_t off_ = 0;
};

}  // namespace topkmon
