// Counting allocator hook — the enforcement arm of the zero-allocation
// invariant.
//
// The batched hot path (Simulator::step_with, StepSnapshot::begin_step,
// EngineShard::advance) is engineered so a steady-state step performs ZERO heap
// allocations: every buffer is preallocated in FleetState / TopKOrder /
// WindowedValueModel / ScratchArena and reused. This header gives tests and
// benches the instrument to *prove* that instead of assuming it.
//
// When the library is configured with TOPKMON_COUNT_ALLOCS (the default for
// Debug builds without sanitizers — see CMakeLists.txt), alloc_counter.cpp
// replaces the global operator new/delete with thin wrappers that bump a
// thread-local counter before delegating to malloc/free. The replacement is
// process-wide, so AllocProbe deltas cover std:: containers, protocol code,
// everything. Under sanitizers the hook stays off (ASan/TSan install their
// own allocator), and alloc_counting_active() reports it so callers can skip
// assertions rather than read a counter that never moves.
//
// Overhead when enabled: one thread-local increment per allocation — cheap
// enough that the release CI leg turns it on for the invariant tests.
#pragma once

#include <cstdint>

namespace topkmon {

/// True when the counting operator new/delete replacement is compiled in.
bool alloc_counting_active();

/// Heap allocations performed by the calling thread so far (monotone;
/// frozen at 0 while the hook is inactive).
std::uint64_t thread_alloc_count();

/// Bytes requested by the calling thread so far (0 while inactive).
std::uint64_t thread_alloc_bytes();

/// Measures allocations on the current thread between construction and
/// delta(). Scope it around a step loop to assert steady-state behavior:
///
///   AllocProbe probe;
///   for (int i = 0; i < 1000; ++i) sim.step_with(v);
///   TOPKMON_ASSERT(!alloc_counting_active() || probe.delta() == 0);
class AllocProbe {
 public:
  AllocProbe()
      : start_count_(thread_alloc_count()), start_bytes_(thread_alloc_bytes()) {}

  std::uint64_t delta() const { return thread_alloc_count() - start_count_; }
  std::uint64_t delta_bytes() const { return thread_alloc_bytes() - start_bytes_; }

  void reset() {
    start_count_ = thread_alloc_count();
    start_bytes_ = thread_alloc_bytes();
  }

 private:
  std::uint64_t start_count_;
  std::uint64_t start_bytes_;
};

}  // namespace topkmon
