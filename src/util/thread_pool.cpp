#include "util/thread_pool.hpp"

#include <algorithm>

namespace topkmon {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
  }
  // Clamp to at least one worker unconditionally: hardware_concurrency() may
  // legitimately report 0, and a pool with zero workers would leave every
  // submitted task queued forever — wait_idle() then hangs instead of failing.
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        cv_idle_.notify_all();
      }
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([i, &body] { body(i); });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body) {
  ThreadPool pool;
  parallel_for(pool, count, body);
}

namespace {

/// One worker's [begin, end) index range packed into a single atomic word so
/// claims and steals are lock-free CAS exchanges. A successful CAS against
/// the *current* value transfers ownership of exactly the indices it names,
/// so no index is ever run twice or lost, whatever the interleaving.
using PackedRange = std::uint64_t;

constexpr PackedRange pack_range(std::uint32_t begin, std::uint32_t end) {
  return (static_cast<PackedRange>(begin) << 32) | end;
}
constexpr std::uint32_t range_begin(PackedRange r) {
  return static_cast<std::uint32_t>(r >> 32);
}
constexpr std::uint32_t range_end(PackedRange r) {
  return static_cast<std::uint32_t>(r);
}

}  // namespace

void parallel_for_ws(ThreadPool& pool, std::size_t count,
                     const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1) {
    // A single index cannot balance; skip the machinery (and keep callers
    // on the exact same worker-thread execution the general path uses).
    parallel_for(pool, 1, body);
    return;
  }
  const std::size_t workers = std::min(pool.thread_count(), count);
  std::vector<std::atomic<PackedRange>> ranges(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    // Contiguous pre-split: chunk w covers [w·count/W, (w+1)·count/W).
    const std::uint32_t begin = static_cast<std::uint32_t>(w * count / workers);
    const std::uint32_t end = static_cast<std::uint32_t>((w + 1) * count / workers);
    ranges[w].store(pack_range(begin, end), std::memory_order_relaxed);
  }

  // Claims one index off the front of `r`; returns false when empty.
  const auto claim_front = [](std::atomic<PackedRange>& r, std::uint32_t* out) {
    PackedRange cur = r.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t b = range_begin(cur);
      const std::uint32_t e = range_end(cur);
      if (b >= e) return false;
      if (r.compare_exchange_weak(cur, pack_range(b + 1, e),
                                  std::memory_order_acq_rel)) {
        *out = b;
        return true;
      }
    }
  };

  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([w, workers, &ranges, &body, &claim_front] {
      std::uint32_t i = 0;
      for (;;) {
        // Drain the own chunk first: contiguous indices, no contention.
        while (claim_front(ranges[w], &i)) {
          body(i);
        }
        // Steal half of the largest remaining victim range (from its tail,
        // so the victim keeps its cache-warm front).
        std::size_t victim = workers;
        std::uint32_t best = 0;
        for (std::size_t v = 0; v < workers; ++v) {
          if (v == w) continue;
          const PackedRange cur = ranges[v].load(std::memory_order_acquire);
          const std::uint32_t avail = range_end(cur) - range_begin(cur);
          if (range_begin(cur) < range_end(cur) && avail > best) {
            best = avail;
            victim = v;
          }
        }
        if (victim == workers) return;  // nothing left anywhere
        PackedRange cur = ranges[victim].load(std::memory_order_acquire);
        const std::uint32_t b = range_begin(cur);
        const std::uint32_t e = range_end(cur);
        if (b >= e) continue;  // drained meanwhile; rescan
        const std::uint32_t take = (e - b + 1) / 2;
        if (!ranges[victim].compare_exchange_strong(
                cur, pack_range(b, e - take), std::memory_order_acq_rel)) {
          continue;  // lost the race; rescan
        }
        // Install the stolen tail as the own chunk (it is empty right now,
        // and an empty chunk admits no concurrent steal), then loop back to
        // drain it — other workers may steal from it in turn.
        ranges[w].store(pack_range(e - take, e), std::memory_order_release);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace topkmon
