#include "util/thread_pool.hpp"

#include <algorithm>

namespace topkmon {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
  }
  // Clamp to at least one worker unconditionally: hardware_concurrency() may
  // legitimately report 0, and a pool with zero workers would leave every
  // submitted task queued forever — wait_idle() then hangs instead of failing.
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        cv_idle_.notify_all();
      }
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([i, &body] { body(i); });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body) {
  ThreadPool pool;
  parallel_for(pool, count, body);
}

}  // namespace topkmon
