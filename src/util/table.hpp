// ASCII / markdown / CSV table emission for benches and examples.
//
// Bench binaries print paper-style tables; EXPERIMENTS.md quotes them
// verbatim, so the format is stable: fixed-width ASCII with a title line,
// plus optional CSV dump for downstream plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace topkmon {

class Table {
 public:
  explicit Table(std::string title);

  /// Sets the header row; must be called before any `add_row`.
  Table& header(std::vector<std::string> cols);

  /// Appends a row; must have the same arity as the header.
  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with the given precision.
  Table& add_row_values(const std::vector<double>& cells, int precision = 2);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }
  const std::string& title() const { return title_; }
  const std::vector<std::string>& header_row() const { return header_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

  /// Fixed-width ASCII rendering with a box around the header.
  std::string to_ascii() const;

  /// GitHub-flavoured markdown rendering.
  std::string to_markdown() const;

  /// RFC-4180-ish CSV (no quoting of separators inside cells needed here).
  std::string to_csv() const;

  /// JSON document: {"title": ..., "rows": [{header: cell, ...}, ...]}.
  /// Cells stay strings (they are pre-formatted for humans); machine
  /// consumers wanting raw numbers should use the telemetry export instead.
  std::string to_json() const;

  /// Prints the ASCII rendering to `os` followed by a blank line.
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with `precision` decimals, trimming trailing zeros.
std::string format_double(double v, int precision = 2);

/// Formats an integer with thousands separators ("1,234,567").
std::string format_count(std::uint64_t v);

}  // namespace topkmon
