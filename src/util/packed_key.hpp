// Order-preserving packed sort keys for the rank order.
//
// The rank order's comparator — `ranks_above`: value descending, node id
// ascending on ties — is a strict total order, so any correct sort produces
// the same unique permutation. Packing one (value, id) pair into a single
// uint64 makes that comparison a branchless integer compare and unlocks the
// LSD radix sort in util/radix.hpp for the dense-update fallback:
//
//   key = (value << 15) | (0x7FFF − id)
//
// Values are ≤ kMaxObservableValue = 2^48 (model/types.hpp), so the shifted
// value occupies bits 15..63 without overflow, and fleets of up to 2^15
// nodes embed the id in the low bits — larger fleets take the key+payload
// pair path in radix.hpp instead. Descending key order is exactly
// ranks_above order: higher values first, and on equal values the smaller id
// holds the larger complemented low bits.
//
// For *floating-point* keyed orders (filter bounds, offline tooling, and the
// packed-key encoding tests), `order_key_f64` embeds an IEEE double into a
// uint64 whose unsigned order matches operator< on NaN-free doubles: the
// classic sign-flip — flip all bits of negatives, set the sign bit of
// non-negatives — with −0.0 first normalized to +0.0 so the two zeros stay
// tied (operator< considers them equal; their raw bit patterns are not).
// Denormals, ±infinity and exact ties all order correctly (covered in
// tests/test_packed_key.cpp).
#pragma once

#include <bit>
#include <cstdint>

#include "model/types.hpp"
#include "util/assert.hpp"

namespace topkmon {

/// Id bits of the single-word packed rank key.
inline constexpr unsigned kRankKeyIdBits = 15;

/// Largest fleet whose (value, id) pairs pack into one uint64.
inline constexpr std::size_t kRankKeyMaxNodes = std::size_t{1} << kRankKeyIdBits;

/// True iff an n-node fleet's rank keys fit the single-word encoding.
constexpr bool rank_key_packable(std::size_t n) { return n <= kRankKeyMaxNodes; }

/// Packs (value, id); descending uint64 order == ranks_above order.
inline std::uint64_t rank_key(Value v, NodeId id) {
  constexpr std::uint64_t id_mask = (std::uint64_t{1} << kRankKeyIdBits) - 1;
  TOPKMON_ASSERT(v <= kMaxObservableValue && id <= id_mask);
  return (v << kRankKeyIdBits) | (id_mask - id);
}

inline Value rank_key_value(std::uint64_t key) { return key >> kRankKeyIdBits; }

inline NodeId rank_key_id(std::uint64_t key) {
  constexpr std::uint64_t id_mask = (std::uint64_t{1} << kRankKeyIdBits) - 1;
  return static_cast<NodeId>(id_mask - (key & id_mask));
}

/// Monotone embedding of NaN-free doubles into uint64: unsigned key order ==
/// double order, with ±0.0 mapped to the same key (see file comment).
inline std::uint64_t order_key_f64(double x) {
  if (x == 0.0) x = 0.0;  // collapse −0.0 onto +0.0: operator< ties them
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  constexpr std::uint64_t sign = std::uint64_t{1} << 63;
  return (bits & sign) != 0 ? ~bits : bits | sign;
}

}  // namespace topkmon
