// Tiny CLI flag parser for examples and bench binaries.
//
// Supported syntax: --name=value, --name value, --flag (boolean true),
// positional arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace topkmon {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name, std::string def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  std::uint64_t get_uint(const std::string& name, std::uint64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Every value the flag was given, in command-line order — the repeatable
  /// flag surface (e.g. `--query` once per monitoring query). Scalar getters
  /// keep last-one-wins semantics. Empty when the flag is absent.
  std::vector<std::string> get_all(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  /// Every flag name that was given on the command line, sorted ascending.
  /// The declarative options layer (apps/options.hpp) uses this to reject
  /// unknown flags instead of silently ignoring typos.
  std::vector<std::string> names() const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, std::vector<std::string>> all_values_;  ///< per-flag, in order
  std::vector<std::string> positional_;
};

}  // namespace topkmon
