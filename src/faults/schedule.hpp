// FleetSchedule — a deterministic script of fleet degradations.
//
// The paper's model assumes a fixed set of n nodes on a perfectly reliable
// broadcast channel. A production fleet is dynamic: nodes join and leave
// (churn), some lag behind the stream (stragglers), and links drop messages.
// A FleetSchedule captures all three as a *script* fixed up front:
//
//   * churn      — a sorted list of membership toggle events (step, node,
//                  join/leave). An offline node's observation freezes at the
//                  last value it held; it resumes tracking the stream on
//                  rejoin. Every membership-change step triggers the
//                  protocols' recovery hook (MonitoringProtocol::
//                  on_membership_change).
//   * stragglers — a per-node constant delay d: the node's observation at
//                  step t is the stream value of step max(0, t−d).
//   * lossy links— a per-message drop probability p. Delivery stays reliable
//                  via retransmission (the protocols' logic is unchanged);
//                  each drop costs one extra message, surfaced as
//                  `messages_lost` in CommStats/RunResult/EngineStats.
//
// Schedules are value types generated deterministically from a FaultConfig
// seed (same seed ⇒ identical fault trace) and are shared read-only between
// the injector, the simulators and the engine, so they are safe to consult
// from concurrent shards. The all-zero schedule is a strict no-op: every
// protocol's outputs and message counts are bit-identical to the fault-free
// path (regression-tested in tests/test_faults.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/types.hpp"

namespace topkmon {

/// Knobs for FleetSchedule::generate. Fields left at zero contribute no
/// faults; the default config scripts none at all.
struct FaultConfig {
  double churn_rate = 0.0;  ///< expected membership toggle events per step
  double straggler_fraction = 0.0;  ///< fraction of nodes that lag the stream
  std::size_t max_delay = 0;        ///< straggler delay upper bound (steps)
  double loss = 0.0;                ///< per-message drop probability
  TimeStep horizon = 1000;          ///< steps over which churn is scripted
  std::uint64_t seed = 1;           ///< fault-trace seed (independent of sim seed)

  friend bool operator==(const FaultConfig&, const FaultConfig&) = default;
};

/// True iff the config scripts no fault of any kind.
bool zero_fault(const FaultConfig& cfg);

/// One membership toggle. `join` records the node's state *after* the event
/// takes effect (at the beginning of `step`).
struct FleetEvent {
  TimeStep step;
  NodeId node;
  bool join;

  friend bool operator==(const FleetEvent&, const FleetEvent&) = default;
};

class FleetSchedule {
 public:
  /// All-zero schedule for an n-node fleet (no churn/stragglers/loss).
  explicit FleetSchedule(std::size_t n);

  /// Scripts a random schedule from `cfg` (deterministic in cfg.seed):
  /// ⌊churn_rate·horizon⌉ membership toggles spread over [1, horizon),
  /// ⌊straggler_fraction·n⌉ distinct nodes with delays in [1, max_delay],
  /// and the per-message loss probability.
  static FleetSchedule generate(const FaultConfig& cfg, std::size_t n);

  std::size_t n() const { return n_; }

  // ---- scripting (tests and custom scenarios) ----------------------------

  /// Appends a membership toggle; steps must be ≥ 1 and non-decreasing.
  /// The node's state flips: online→leave, offline→join.
  void add_event(TimeStep step, NodeId node);

  /// Sets node i's straggler delay (0 = current).
  void set_delay(NodeId i, std::size_t d);

  /// Sets the per-message drop probability in [0, 1).
  void set_loss(double p);

  // ---- queries -----------------------------------------------------------

  /// Is node i a fleet member at step t? (All nodes start online.)
  bool online(NodeId i, TimeStep t) const;

  /// Node i's observation delay in steps.
  std::size_t delay(NodeId i) const { return delays_[i]; }

  /// Largest delay of any node (ring-buffer sizing for the injector).
  std::size_t max_delay() const { return max_delay_; }

  /// Did any node join or leave at the beginning of step t?
  bool membership_changed_at(TimeStep t) const;

  double loss() const { return loss_; }

  /// No churn events, no positive delay, no loss — the identity schedule.
  bool zero_fault() const;

  /// All membership toggles in step order.
  const std::vector<FleetEvent>& events() const { return events_; }

  /// Human-readable deterministic fault trace ("same seed ⇒ identical
  /// trace" is asserted on this string in tests).
  std::string trace() const;

 private:
  std::size_t n_ = 0;
  double loss_ = 0.0;
  std::size_t max_delay_ = 0;
  std::vector<std::size_t> delays_;          ///< per node
  std::vector<FleetEvent> events_;           ///< sorted by step
  std::vector<TimeStep> event_steps_;        ///< sorted; membership lookups
  std::vector<std::vector<TimeStep>> toggles_;  ///< per node, sorted
};

/// Shared read-only handle used across Simulator/Engine plumbing.
using FleetSchedulePtr = std::shared_ptr<const FleetSchedule>;

/// Convenience: generate(cfg, n) wrapped in a shared_ptr, or nullptr when
/// the config is all-zero (callers keep the exact fault-free code path).
FleetSchedulePtr make_fleet_schedule(const FaultConfig& cfg, std::size_t n);

}  // namespace topkmon
