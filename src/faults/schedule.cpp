#include "faults/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace topkmon {

bool zero_fault(const FaultConfig& cfg) {
  return cfg.churn_rate <= 0.0 &&
         (cfg.straggler_fraction <= 0.0 || cfg.max_delay == 0) && cfg.loss <= 0.0;
}

FleetSchedule::FleetSchedule(std::size_t n)
    : n_(n), delays_(n, 0), toggles_(n) {
  TOPKMON_ASSERT(n > 0);
}

void FleetSchedule::add_event(TimeStep step, NodeId node) {
  TOPKMON_ASSERT_MSG(step >= 1, "membership events start at step 1");
  TOPKMON_ASSERT(node < n_);
  TOPKMON_ASSERT_MSG(events_.empty() || events_.back().step <= step,
                     "events must be appended in step order");
  // A node starts online and flips on every toggle recorded so far.
  const bool was_online = toggles_[node].size() % 2 == 0;
  events_.push_back(FleetEvent{step, node, /*join=*/!was_online});
  toggles_[node].push_back(step);
  event_steps_.push_back(step);
}

void FleetSchedule::set_delay(NodeId i, std::size_t d) {
  TOPKMON_ASSERT(i < n_);
  delays_[i] = d;
  max_delay_ = *std::max_element(delays_.begin(), delays_.end());
}

void FleetSchedule::set_loss(double p) {
  TOPKMON_ASSERT(p >= 0.0 && p < 1.0);
  loss_ = p;
}

bool FleetSchedule::online(NodeId i, TimeStep t) const {
  TOPKMON_ASSERT(i < n_);
  const auto& tg = toggles_[i];
  const auto flips = std::upper_bound(tg.begin(), tg.end(), t) - tg.begin();
  return flips % 2 == 0;
}

bool FleetSchedule::membership_changed_at(TimeStep t) const {
  return std::binary_search(event_steps_.begin(), event_steps_.end(), t);
}

bool FleetSchedule::zero_fault() const {
  return events_.empty() && max_delay_ == 0 && loss_ == 0.0;
}

FleetSchedule FleetSchedule::generate(const FaultConfig& cfg, std::size_t n) {
  FleetSchedule sched(n);
  sched.set_loss(cfg.loss);

  // Stragglers: ⌊fraction·n⌉ distinct nodes via partial Fisher-Yates.
  Rng rng = Rng::derive(cfg.seed, /*stream_id=*/0xFA01);
  if (cfg.straggler_fraction > 0.0 && cfg.max_delay > 0) {
    const auto want = static_cast<std::size_t>(
        std::llround(cfg.straggler_fraction * static_cast<double>(n)));
    const std::size_t count = std::min(want, n);
    std::vector<NodeId> ids(n);
    std::iota(ids.begin(), ids.end(), NodeId{0});
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t pick = j + rng.below(n - j);
      std::swap(ids[j], ids[pick]);
      sched.set_delay(ids[j], 1 + rng.below(cfg.max_delay));
    }
  }

  // Churn: ⌊rate·horizon⌉ toggles at sorted random steps in [1, horizon);
  // each toggles a uniformly random node (leave if online, join if not).
  if (cfg.churn_rate > 0.0 && cfg.horizon > 1) {
    const auto events = static_cast<std::size_t>(
        std::llround(cfg.churn_rate * static_cast<double>(cfg.horizon)));
    std::vector<TimeStep> steps;
    steps.reserve(events);
    for (std::size_t e = 0; e < events; ++e) {
      steps.push_back(1 + static_cast<TimeStep>(
                              rng.below(static_cast<std::uint64_t>(cfg.horizon - 1))));
    }
    std::sort(steps.begin(), steps.end());
    for (const TimeStep s : steps) {
      sched.add_event(s, static_cast<NodeId>(rng.below(n)));
    }
  }
  return sched;
}

std::string FleetSchedule::trace() const {
  std::ostringstream oss;
  oss << "fleet n=" << n_ << " loss=" << loss_ << "\n";
  for (NodeId i = 0; i < n_; ++i) {
    if (delays_[i] > 0) {
      oss << "straggler node=" << i << " delay=" << delays_[i] << "\n";
    }
  }
  for (const auto& ev : events_) {
    oss << "t=" << ev.step << " node=" << ev.node << " "
        << (ev.join ? "join" : "leave") << "\n";
  }
  return oss.str();
}

FleetSchedulePtr make_fleet_schedule(const FaultConfig& cfg, std::size_t n) {
  if (zero_fault(cfg)) {
    return nullptr;
  }
  return std::make_shared<FleetSchedule>(FleetSchedule::generate(cfg, n));
}

}  // namespace topkmon
