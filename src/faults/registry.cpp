#include "faults/registry.hpp"

#include <stdexcept>

namespace topkmon {

FaultConfig fault_preset(const std::string& name) {
  FaultConfig cfg;
  if (name == "none" || name.empty()) {
    return cfg;
  }
  if (name == "churn") {
    cfg.churn_rate = 0.02;
    return cfg;
  }
  if (name == "stragglers") {
    cfg.straggler_fraction = 0.25;
    cfg.max_delay = 8;
    return cfg;
  }
  if (name == "lossy") {
    cfg.loss = 0.05;
    return cfg;
  }
  if (name == "flaky") {  // everything at once, moderately
    cfg.churn_rate = 0.01;
    cfg.straggler_fraction = 0.125;
    cfg.max_delay = 4;
    cfg.loss = 0.02;
    return cfg;
  }
  if (name == "datacenter") {  // mild background noise of a healthy fleet
    cfg.churn_rate = 0.002;
    cfg.straggler_fraction = 0.05;
    cfg.max_delay = 2;
    cfg.loss = 0.001;
    return cfg;
  }
  throw std::runtime_error("unknown fault preset: " + name);
}

std::vector<std::string> fault_preset_names() {
  return {"none", "churn", "stragglers", "lossy", "flaky", "datacenter"};
}

FaultConfig fault_config_from_flags(const Flags& flags, TimeStep horizon) {
  FaultConfig cfg = fault_preset(flags.get_string("faults", "none"));
  cfg.churn_rate = flags.get_double("churn-rate", cfg.churn_rate);
  cfg.straggler_fraction = flags.get_double("straggler-frac", cfg.straggler_fraction);
  cfg.max_delay = flags.get_uint("straggler-delay", cfg.max_delay);
  cfg.loss = flags.get_double("loss", cfg.loss);
  cfg.seed = flags.get_uint("fault-seed", cfg.seed);
  cfg.horizon = horizon;
  return cfg;
}

}  // namespace topkmon
