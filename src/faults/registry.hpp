// Named fault-scenario presets for CLI tools, benches and matrix tests —
// the fault-model counterpart of streams/registry and protocols/registry.
#pragma once

#include <string>
#include <vector>

#include "faults/schedule.hpp"
#include "util/flags.hpp"

namespace topkmon {

/// Returns the preset named `name`; throws std::runtime_error for unknown
/// names. Known presets: none, churn, stragglers, lossy, flaky, datacenter.
/// `horizon` and `seed` of the returned config stay at their defaults;
/// callers override them before generating a schedule.
FaultConfig fault_preset(const std::string& name);

/// All registered preset names (for --help output and matrix tests).
std::vector<std::string> fault_preset_names();

/// Shared CLI surface of topk_sim/topk_engine: `--faults <preset>` selects a
/// preset (default "none"), then `--churn-rate`, `--straggler-frac`,
/// `--straggler-delay` (max, steps), `--loss` and `--fault-seed` override
/// individual fields. `horizon` scripts churn over the run length.
FaultConfig fault_config_from_flags(const Flags& flags, TimeStep horizon);

}  // namespace topkmon
