#include "faults/injector.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace topkmon {

FaultInjector::FaultInjector(FleetSchedulePtr schedule)
    : schedule_(std::move(schedule)) {
  TOPKMON_ASSERT(schedule_ != nullptr);
  const std::size_t n = schedule_->n();
  if (schedule_->max_delay() > 0) {
    ring_.assign(schedule_->max_delay() + 1, ValueVector(n, 0));
    for (NodeId i = 0; i < n; ++i) {
      if (schedule_->delay(i) > 0) {
        stragglers_.push_back(i);
      }
    }
  }
  if (!schedule_->events().empty()) {
    offline_.assign(n, 0);
    offline_ids_.reserve(n);
    frozen_.assign(n, 0);
  }
}

const ValueVector& FaultInjector::transform(TimeStep t, const ValueVector& truth) {
  if (!own_fleet_) {
    own_fleet_ = std::make_unique<FleetState>(schedule_->n());
  }
  return transform(t, truth, *own_fleet_);
}

void FaultInjector::advance_membership(TimeStep t) {
  const auto& events = schedule_->events();
  while (event_cursor_ < events.size() && events[event_cursor_].step <= t) {
    const FleetEvent& ev = events[event_cursor_++];
    const std::uint8_t now = ev.join ? 0 : 1;
    if (offline_[ev.node] == now) continue;
    offline_[ev.node] = now;
    const auto it =
        std::lower_bound(offline_ids_.begin(), offline_ids_.end(), ev.node);
    if (now != 0) {
      offline_ids_.insert(it, ev.node);
    } else {
      offline_ids_.erase(it);
    }
  }
}

const ValueVector& FaultInjector::transform(TimeStep t, const ValueVector& truth,
                                            FleetState& fleet) {
  const std::size_t n = schedule_->n();
  TOPKMON_ASSERT(truth.size() == n);
  TOPKMON_ASSERT(fleet.n() == n);
  TOPKMON_ASSERT_MSG(t == next_t_, "injector must see consecutive steps");
  ++next_t_;

  ValueVector& effective = fleet.effective();
  const std::span<std::uint8_t> flags = fleet.fault_flags();

  // The ring was sized from max_delay() at construction; mutating the shared
  // schedule's delays afterwards would make the lookback read (or divide by)
  // the wrong slot count — fail loudly instead.
  TOPKMON_ASSERT_MSG(
      schedule_->max_delay() + 1 <= std::max<std::size_t>(ring_.size(), 1),
      "fault schedule delays changed after the injector was constructed");

  // Retain the true vector for straggler lookback (in place: slot t mod D+1).
  if (!ring_.empty()) {
    std::copy(truth.begin(), truth.end(),
              ring_[static_cast<std::size_t>(t) % ring_.size()].begin());
  }

  last_stale_ = 0;
  if (t == 0) {
    std::copy(truth.begin(), truth.end(), effective.begin());
    std::fill(flags.begin(), flags.end(), std::uint8_t{kFaultNone});
    flags_dirty_ = false;
    return effective;
  }
  if (!offline_.empty()) {
    advance_membership(t);
  }

  // Healthy bulk first: save the frozen observations the copy would clobber,
  // stream truth → effective in one pass, then fix up the (few) degraded
  // nodes in place.
  for (std::size_t j = 0; j < offline_ids_.size(); ++j) {
    frozen_[j] = effective[offline_ids_[j]];
  }
  std::copy(truth.begin(), truth.end(), effective.begin());
  if (flags_dirty_) {
    std::fill(flags.begin(), flags.end(), std::uint8_t{kFaultNone});
    flags_dirty_ = false;
  }
  for (std::size_t j = 0; j < offline_ids_.size(); ++j) {
    const NodeId i = offline_ids_[j];
    // Offline: observation frozen at the previous effective value.
    effective[i] = frozen_[j];
    flags[i] = kFaultOffline | kFaultStale;
    ++last_stale_;
  }
  for (const NodeId i : stragglers_) {
    if (!offline_.empty() && offline_[i] != 0) continue;
    // The ring covers steps (t − max_delay) .. t; clamp to step 0 early on.
    const std::size_t d = schedule_->delay(i);
    const std::size_t back = std::min<std::size_t>(d, static_cast<std::size_t>(t));
    effective[i] = ring_[(static_cast<std::size_t>(t) - back) % ring_.size()][i];
    flags[i] = kFaultStale;
    ++last_stale_;
  }
  flags_dirty_ = last_stale_ > 0;
  total_stale_ += last_stale_;
  return effective;
}

}  // namespace topkmon
