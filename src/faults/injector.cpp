#include "faults/injector.hpp"

#include "util/assert.hpp"

namespace topkmon {

FaultInjector::FaultInjector(FleetSchedulePtr schedule)
    : schedule_(std::move(schedule)) {
  TOPKMON_ASSERT(schedule_ != nullptr);
  effective_.resize(schedule_->n());
}

const ValueVector& FaultInjector::transform(TimeStep t, const ValueVector& truth) {
  TOPKMON_ASSERT(truth.size() == schedule_->n());
  TOPKMON_ASSERT_MSG(t == next_t_, "injector must see consecutive steps");
  ++next_t_;

  ring_.push_back(truth);
  if (ring_.size() > schedule_->max_delay() + 1) {
    ring_.pop_front();
  }

  last_stale_ = 0;
  if (t == 0) {
    effective_ = truth;
    return effective_;
  }
  for (NodeId i = 0; i < truth.size(); ++i) {
    if (!schedule_->online(i, t)) {
      // Offline: observation frozen at the previous effective value.
      ++last_stale_;
      continue;
    }
    const std::size_t d = schedule_->delay(i);
    if (d == 0) {
      effective_[i] = truth[i];
    } else {
      // ring_.back() holds step t; the vector for step t−d (clamped to the
      // ring's oldest entry, which covers max(0, t−d)) sits d slots earlier.
      const std::size_t back = std::min<std::size_t>(d, ring_.size() - 1);
      effective_[i] = ring_[ring_.size() - 1 - back][i];
      ++last_stale_;
    }
  }
  total_stale_ += last_stale_;
  return effective_;
}

}  // namespace topkmon
