#include "faults/injector.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace topkmon {

FaultInjector::FaultInjector(FleetSchedulePtr schedule)
    : schedule_(std::move(schedule)) {
  TOPKMON_ASSERT(schedule_ != nullptr);
  if (schedule_->max_delay() > 0) {
    ring_.assign(schedule_->max_delay() + 1, ValueVector(schedule_->n(), 0));
  }
}

const ValueVector& FaultInjector::transform(TimeStep t, const ValueVector& truth) {
  if (!own_fleet_) {
    own_fleet_ = std::make_unique<FleetState>(schedule_->n());
  }
  return transform(t, truth, *own_fleet_);
}

const ValueVector& FaultInjector::transform(TimeStep t, const ValueVector& truth,
                                            FleetState& fleet) {
  const std::size_t n = schedule_->n();
  TOPKMON_ASSERT(truth.size() == n);
  TOPKMON_ASSERT(fleet.n() == n);
  TOPKMON_ASSERT_MSG(t == next_t_, "injector must see consecutive steps");
  ++next_t_;

  ValueVector& effective = fleet.effective();
  const std::span<std::uint8_t> flags = fleet.fault_flags();

  // The ring was sized from max_delay() at construction; mutating the shared
  // schedule's delays afterwards would make the lookback read (or divide by)
  // the wrong slot count — fail loudly instead.
  TOPKMON_ASSERT_MSG(
      schedule_->max_delay() + 1 <= std::max<std::size_t>(ring_.size(), 1),
      "fault schedule delays changed after the injector was constructed");

  // Retain the true vector for straggler lookback (in place: slot t mod D+1).
  if (!ring_.empty()) {
    std::copy(truth.begin(), truth.end(),
              ring_[static_cast<std::size_t>(t) % ring_.size()].begin());
  }

  last_stale_ = 0;
  if (t == 0) {
    std::copy(truth.begin(), truth.end(), effective.begin());
    std::fill(flags.begin(), flags.end(), std::uint8_t{kFaultNone});
    return effective;
  }
  for (NodeId i = 0; i < n; ++i) {
    if (!schedule_->online(i, t)) {
      // Offline: observation frozen at the previous effective value.
      flags[i] = kFaultOffline | kFaultStale;
      ++last_stale_;
      continue;
    }
    const std::size_t d = schedule_->delay(i);
    if (d == 0) {
      effective[i] = truth[i];
      flags[i] = kFaultNone;
    } else {
      // The ring covers steps (t − max_delay) .. t; clamp to step 0 early on.
      const std::size_t back = std::min<std::size_t>(d, static_cast<std::size_t>(t));
      effective[i] = ring_[(static_cast<std::size_t>(t) - back) % ring_.size()][i];
      flags[i] = kFaultStale;
      ++last_stale_;
    }
  }
  total_stale_ += last_stale_;
  return effective;
}

}  // namespace topkmon
