// FaultInjector — applies a FleetSchedule between Stream and Node.
//
// Generators keep producing the *true* observation vector; the injector
// rewrites it into the *effective* vector the fleet actually holds before it
// reaches the nodes:
//
//   * an offline node's observation freezes at the last effective value it
//     held (its stream stops until it rejoins);
//   * a straggler with delay d holds the true value of step max(0, t−d)
//     (a ring of the last max_delay+1 true vectors is retained);
//   * at t = 0 every node holds the true initial value, so degradation only
//     begins once the fleet is running.
//
// The effective vector is just another value stream, so every protocol runs
// unmodified and its correctness/validity contract (checked in strict mode)
// holds with respect to what the nodes really observed. Each observation
// served from the past (offline freeze or positive delay at t ≥ 1) counts as
// one *stale read* — the fault-awareness metric surfaced through
// CommStats/RunResult/EngineStats — and sets the node's FaultFlag bits in
// the target FleetState's contiguous flag buffer.
//
// Hot-path storage: the ring is a fixed array of max_delay+1 preallocated
// vectors written in place (slot = t mod (max_delay+1)), the effective
// vector lives in the caller's FleetState, and schedules without stragglers
// skip retention entirely. The per-step apply is batched: membership is
// tracked incrementally (the schedule's event list is consumed once, in
// step order, instead of a per-node binary search every step), the healthy
// bulk of the fleet is one contiguous copy of truth → effective, and only
// the currently-degraded nodes — offline freezes and straggler ring reads —
// are fixed up individually. A transform() in steady state allocates
// nothing, and a fault-free step is exactly one memcpy.
//
// The injector is deterministic and RNG-free: with an all-zero schedule,
// transform() is the identity and the fault-free path is reproduced
// bit-identically.
#pragma once

#include <vector>

#include "faults/schedule.hpp"
#include "model/fleet_state.hpp"
#include "model/types.hpp"

namespace topkmon {

class FaultInjector {
 public:
  explicit FaultInjector(FleetSchedulePtr schedule);

  /// Rewrites the step-t true vector into the effective vector, written in
  /// place into `fleet.effective()` (the returned reference); per-node
  /// FaultFlag bits land in `fleet.fault_flags()`. Must be called once per
  /// step with consecutive t starting at 0, always with the same fleet.
  const ValueVector& transform(TimeStep t, const ValueVector& truth,
                               FleetState& fleet);

  /// Convenience for tests and tools without an external FleetState:
  /// transforms into an internally owned fleet (created on first use).
  const ValueVector& transform(TimeStep t, const ValueVector& truth);

  /// Stale reads produced by the most recent transform() call.
  std::uint64_t last_stale() const { return last_stale_; }

  /// Stale reads across all steps so far.
  std::uint64_t total_stale() const { return total_stale_; }

  const FleetSchedule& schedule() const { return *schedule_; }

 private:
  /// Applies the schedule's membership toggles for steps ≤ t to the
  /// incremental offline set.
  void advance_membership(TimeStep t);

  FleetSchedulePtr schedule_;
  std::vector<ValueVector> ring_;  ///< max_delay+1 preallocated slots (empty
                                   ///< when the schedule has no stragglers)
  std::vector<NodeId> stragglers_;       ///< nodes with delay > 0, ascending
  std::vector<std::uint8_t> offline_;    ///< current membership, by node
  std::vector<NodeId> offline_ids_;      ///< currently-offline nodes, ascending
  ValueVector frozen_;                   ///< offline values saved across the bulk copy
  std::size_t event_cursor_ = 0;         ///< next unapplied schedule event
  bool flags_dirty_ = false;  ///< a past step wrote nonzero FaultFlags
  std::unique_ptr<FleetState> own_fleet_;  ///< 2-arg transform() target only
  TimeStep next_t_ = 0;
  std::uint64_t last_stale_ = 0;
  std::uint64_t total_stale_ = 0;
};

}  // namespace topkmon
