// Name-based protocol factory for CLI tools, benches and matrix tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/protocol.hpp"

namespace topkmon {

/// Constructs the monitoring protocol named `name`; throws
/// std::runtime_error for unknown names. Known names: exact_topk,
/// topk_protocol, combined, half_error, naive_central, naive_change.
std::unique_ptr<MonitoringProtocol> make_protocol(const std::string& name);

/// All registered protocol names.
std::vector<std::string> protocol_names();

}  // namespace topkmon
